// Ablation benchmarks for the design choices DESIGN.md calls out: the
// allreduce algorithm, the LARS trust coefficient, warmup, LARC clipping,
// gradient compression, and worker-count speedup. Each reports its effect
// as custom metrics rather than asserting (they are studies, not tests; the
// corresponding invariants live in the package test suites).
package repro

import (
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func ablationDataset() *data.Synth {
	cfg := data.DefaultSynthConfig()
	cfg.TrainSize, cfg.H, cfg.W = 1024, 16, 16
	return data.GenerateSynth(cfg)
}

func ablationFactory() func(uint64) *nn.Network {
	return func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 8, InH: 16, Width: 8, Seed: seed})
	}
}

// BenchmarkAblationAllreduce times one real gradient exchange of a
// ResNet-50-sized buffer under each algorithm at P=8.
func BenchmarkAblationAllreduce(b *testing.B) {
	const p = 8
	n := int(models.ResNet50Spec().ParamCount())
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		b.Run(algo.String(), func(b *testing.B) {
			bufs := make([][]float32, p)
			r := rng.New(1)
			for i := range bufs {
				bufs[i] = make([]float32, n)
				for j := 0; j < n; j += 97 {
					bufs[i][j] = r.NormFloat32()
				}
			}
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var stats dist.CommStats
				dist.Reduce(algo, bufs, &stats)
			}
		})
	}
}

// BenchmarkAblationTrust sweeps the LARS trust coefficient at a large batch
// and reports the resulting accuracies — the sensitivity study behind the
// repo's choice of 0.05 (the paper uses 0.001 at ImageNet scale).
func BenchmarkAblationTrust(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := ablationDataset()
		for _, trust := range []float64{0.01, 0.05, 0.1} {
			res, err := core.Train(core.Config{
				Model: ablationFactory(), Workers: 2, Batch: 512, Epochs: 10,
				Method: core.LARSWarmup, BaseLR: 0.05, BaseBatch: 32,
				WarmupEpochs: 5, Trust: trust, Seed: 1,
			}, ds)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*res.TestAcc, "acc%-trust"+formatTrust(trust))
		}
	}
}

func formatTrust(t float64) string {
	switch t {
	case 0.01:
		return "0.01"
	case 0.05:
		return "0.05"
	default:
		return "0.10"
	}
}

// BenchmarkAblationWarmup compares LARS with and without warmup at a large
// batch: warmup is load-bearing, not a nicety (Table 5/7's lesson).
func BenchmarkAblationWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := ablationDataset()
		run := func(warmup float64) float64 {
			res, err := core.Train(core.Config{
				Model: ablationFactory(), Workers: 2, Batch: 512, Epochs: 10,
				Method: core.LARSWarmup, BaseLR: 0.05, BaseBatch: 32,
				WarmupEpochs: warmup, Trust: 0.05, Seed: 1,
			}, ds)
			if err != nil {
				b.Fatal(err)
			}
			return res.TestAcc
		}
		b.ReportMetric(100*run(5), "acc%-warmup5")
		b.ReportMetric(100*run(0), "acc%-warmup0")
	}
}

// BenchmarkAblationLARC contrasts the raw LARS trust ratio with the LARC
// clipped one on a pathological layer (huge weights, vanishing gradient)
// where unclipped LARS would take an enormous step.
func BenchmarkAblationLARC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mk := func(clip float64) float64 {
			p := nn.NewParam("w", 1024)
			r := rng.New(2)
			p.W.FillNormal(r, 0, 10)
			p.G.FillNormal(r, 0, 1e-5)
			l := opt.NewLARS([]*nn.Param{p}, opt.LARSConfig{Trust: 0.05, Clip: clip, Eps: 1e-12})
			l.Step(0.1)
			return l.TrustRatios()[0]
		}
		b.ReportMetric(mk(0), "raw-ratio")
		b.ReportMetric(mk(1), "larc-capped-ratio")
	}
}

// BenchmarkAblationCompression measures 1-bit gradient compression:
// throughput of encode/decode on a ResNet-50-sized gradient and the
// achieved wire reduction.
func BenchmarkAblationCompression(b *testing.B) {
	n := int(models.ResNet50Spec().ParamCount())
	g := make([]float32, n)
	r := rng.New(3)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	z := compress.NewQuantizer(n)
	out := make([]float32, n)
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		q := z.Encode(g)
		q.Decode(out)
		ratio = q.CompressionRatio()
	}
	b.ReportMetric(ratio, "compression-x")
}

// BenchmarkAblationWorkers measures the real data-parallel speedup of the
// dist engine on this machine (bounded by GOMAXPROCS).
func BenchmarkAblationWorkers(b *testing.B) {
	ds := ablationDataset()
	x, labels := ds.Train.MustGather(seqInts(256))
	for _, workers := range []int{1, 2} {
		b.Run(map[int]string{1: "P1", 2: "P2"}[workers], func(b *testing.B) {
			replicas := make([]*nn.Network, workers)
			for i := range replicas {
				replicas[i] = ablationFactory()(uint64(i))
			}
			e := dist.NewEngine(dist.Config{Algo: dist.Ring}, replicas)
			defer e.Close()
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ComputeGradient(x, labels); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)*256/elapsed, "img/s")
			}
		})
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// BenchmarkConvForward measures the conv stack's forward throughput — the
// compute kernel the paper's t_comp term models.
func BenchmarkConvForward(b *testing.B) {
	net := models.NewMicroAlexNet(models.MicroConfig{Classes: 8, InH: 16, Width: 8, Seed: 1})
	r := rng.New(4)
	x := tensor.RandNormal(r, 1, 64, 3, 16, 16)
	b.SetBytes(64 * 3 * 16 * 16 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

// BenchmarkTrainStep measures one full synchronous training step (forward,
// backward, allreduce, LARS update, broadcast) at batch 64 over 2 workers.
func BenchmarkTrainStep(b *testing.B) {
	ds := ablationDataset()
	x, labels := ds.Train.MustGather(seqInts(64))
	replicas := []*nn.Network{ablationFactory()(1), ablationFactory()(2)}
	e := dist.NewEngine(dist.Config{Algo: dist.Ring}, replicas)
	defer e.Close()
	o := opt.NewLARS(e.Master().Params(), opt.DefaultLARSConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ComputeGradient(x, labels); err != nil {
			b.Fatal(err)
		}
		o.Step(0.05)
		if err := e.BroadcastWeights(); err != nil {
			b.Fatal(err)
		}
	}
}
