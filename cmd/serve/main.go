// Command serve runs the dynamic-batching inference tier over a replica
// fleet and prints the exact scheduler statistics: batches and their flush
// causes, the batch-size histogram, queue depth, rejections, and latency
// percentiles on the deterministic virtual clock (1 tick = 1µs). For
// uniform traffic it cross-checks every counter against the closed-form
// model in comm.ExpectedServeStats — the same measured-versus-analytic
// contract the training engine is held to.
//
// # Traffic flags
//
// -trace selects the seeded generator: uniform (fixed inter-arrival gap,
// the deterministic-clock regime the closed form prices exactly), poisson
// (open-loop exponential gaps) or bursty (on/off: bursts of -burst-len
// requests separated by -burst-idle µs of silence). -rate sets the offered
// load in requests/second (quantized to a whole-tick gap), -requests the
// trace length, and -seed the generator seed — every trace is a pure
// function of its flags, so runs are bit-reproducible.
//
// # Batching window and pool flags
//
// -max-batch (K) flushes the forming batch the moment it holds K requests;
// -max-delay (D, µs) flushes when the oldest queued request has waited D —
// the two triggers of every production model server, so no request ever
// waits more than D before its batch is dispatched (property-tested in
// internal/serve). -replicas sets the pool size a flushed batch fans out
// over; -queue-cap bounds the waiting room (0 = unbounded): an arrival
// beyond the cap is rejected with the typed serve.ErrOverloaded and
// counted, making overload admission control rather than an outage.
//
// -svc-base and -svc-per-image price one batch forward pass on the virtual
// clock: S(b) = base + b·per-image µs, the alpha-beta service model the
// latency percentiles and the closed form share.
//
// # Model flags
//
// By default the pool executes every batch through real model replicas
// (forward pass, eval mode) and reports the predicted-class histogram.
// -model / -width / -classes / -image-size choose the micro model (same
// flags as cmd/train), -precision f32|f16 the GEMM storage precision, and
// -checkpoint loads a checkpoint file produced by checkpoint.Save into
// every replica — the train→serve artifact handoff. -schedule-only skips
// model execution entirely for pure scheduling experiments at large n.
//
// # Worked example: overload
//
// Offer bursts of 64 requests at 100k req/s inside the burst (10µs gaps,
// 10ms idle between bursts) to one replica behind a 32-slot waiting room:
//
//	serve -trace bursty -rate 100000 -requests 4000 -burst-len 64 \
//	      -burst-idle 10000 -max-batch 8 -max-delay 2000 \
//	      -replicas 1 -queue-cap 32
//
// The burst head fills the queue faster than one replica drains it, so the
// tail of each burst is rejected: the stats table shows the shed load in
// the rejected counter (accepted + rejected == offered always holds), the
// queue high-water mark pinned at the cap, and p99 bounded by
// D + dispatch wait + S(K) for the requests that were admitted — overload
// degrades goodput, never latency correctness. Re-run with -replicas 2 to
// watch the same trace admit more: a faster-draining pool rejects less.
//
// # Worked example: closed-form cross-check
//
// Uniform 10k req/s against a 5-wide window:
//
//	serve -trace uniform -rate 10000 -requests 5000 -max-batch 5 \
//	      -max-delay 1000 -replicas 1
//
// prints "closed form: exact" — every counter, bucket and percentile
// matches comm.ExpectedServeStats. Perturb -max-delay by one tick across
// a batch-size boundary and the same line pinpoints the drift.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var (
		traceKind = flag.String("trace", "uniform", "traffic generator: uniform | poisson | bursty")
		rate      = flag.Float64("rate", 10000, "offered load in requests/second (quantized to whole-tick gaps)")
		requests  = flag.Int("requests", 4000, "trace length in requests")
		seed      = flag.Uint64("seed", 1, "trace generator seed")
		burstLen  = flag.Int("burst-len", 32, "requests per burst (bursty trace)")
		burstIdle = flag.Int64("burst-idle", 10000, "idle µs between bursts (bursty trace)")

		maxBatch = flag.Int("max-batch", 8, "flush a batch at this size (K)")
		maxDelay = flag.Int64("max-delay", 2000, "flush when the oldest request has waited this many µs (D)")
		queueCap = flag.Int("queue-cap", 0, "bounded waiting room; arrivals beyond it are rejected (0 = unbounded)")
		replicas = flag.Int("replicas", 1, "model replica pool size")
		svcBase  = flag.Int64("svc-base", 100, "batch service cost: fixed µs per batch")
		svcPer   = flag.Int64("svc-per-image", 25, "batch service cost: µs per image")

		modelName = flag.String("model", "micro-alexnet", "model: micro-alexnet | micro-resnet | mlp")
		width     = flag.Int("width", 8, "model base width")
		classes   = flag.Int("classes", 8, "class count")
		imageSize = flag.Int("image-size", 24, "image height/width")
		precision = flag.String("precision", "f32", "GEMM storage precision: f32 | f16")
		ckptPath  = flag.String("checkpoint", "", "load this checkpoint file into every replica")
		schedOnly = flag.Bool("schedule-only", false, "skip model execution; pure virtual-clock scheduling")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxBatch: *maxBatch,
		MaxDelay: serve.Ticks(*maxDelay),
		QueueCap: *queueCap,
		Replicas: *replicas,
		Service:  serve.ServiceModel{Base: serve.Ticks(*svcBase), PerImage: serve.Ticks(*svcPer)},
	}
	gap := serve.Ticks(serve.TicksPerSecond / *rate)
	if gap < 1 {
		gap = 1
	}

	var trace serve.Trace
	switch *traceKind {
	case "uniform":
		trace = serve.UniformTrace(*requests, gap, *classes)
	case "poisson":
		trace = serve.PoissonTrace(*requests, gap, *classes, *seed)
	case "bursty":
		trace = serve.BurstyTrace(*requests, *burstLen, gap, serve.Ticks(*burstIdle), *classes, *seed)
	default:
		log.Fatalf("unknown trace %q", *traceKind)
	}
	fmt.Printf("trace %s: %d requests, offered %.0f req/s (gap %dµs), seed %d\n",
		trace.Name, len(trace.Requests), trace.Rate(), gap, *seed)
	fmt.Printf("window K=%d D=%dµs, %d replica(s), queue cap %s, S(b) = %d + %d·b µs\n\n",
		cfg.MaxBatch, cfg.MaxDelay, cfg.Replicas, capLabel(cfg.QueueCap), cfg.Service.Base, cfg.Service.PerImage)

	var rep *serve.Report
	if *schedOnly {
		var err error
		rep, err = serve.Simulate(cfg, trace)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		rep = runPool(cfg, trace, *modelName, *width, *classes, *imageSize, *precision, *ckptPath)
	}

	fmt.Print(rep.Stats.String())

	if *traceKind == "uniform" {
		want, err := comm.ExpectedServeStats(cfg, *requests, gap)
		if err != nil {
			fmt.Printf("\nclosed form: not applicable (%v)\n", err)
		} else if rep.Stats.Equal(want) {
			fmt.Printf("\nclosed form: exact (every counter matches comm.ExpectedServeStats)\n")
		} else {
			fmt.Printf("\nclosed form: DRIFT\n%s", rep.Stats.Diff(want))
		}
	}
}

// runPool executes the trace through real model replicas and prints the
// predicted-class histogram alongside the schedule.
func runPool(cfg serve.Config, trace serve.Trace, modelName string, width, classes, imageSize int, precision, ckptPath string) *serve.Report {
	mcfg := models.MicroConfig{Classes: classes, InH: imageSize, InW: imageSize, Width: width, Seed: 1}
	var factory func() *nn.Network
	switch modelName {
	case "micro-alexnet":
		factory = func() *nn.Network { return models.NewMicroAlexNet(mcfg) }
	case "micro-resnet":
		factory = func() *nn.Network { return models.NewMicroResNet(mcfg) }
	case "mlp":
		factory = func() *nn.Network { return models.NewMLP(mcfg) }
	default:
		log.Fatalf("unknown model %q", modelName)
	}

	var pool *serve.Pool
	var err error
	if ckptPath != "" {
		var c *checkpoint.Checkpoint
		if c, err = checkpoint.Load(ckptPath); err != nil {
			log.Fatal(err)
		}
		if pool, err = serve.PoolFromCheckpoint(cfg, factory, c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded checkpoint %s (step %d) into %d replica(s)\n\n", ckptPath, c.Step, pool.Size())
	} else if pool, err = serve.NewPool(cfg, factory); err != nil {
		log.Fatal(err)
	}
	prec, err := tensor.ParsePrecision(precision)
	if err != nil {
		log.Fatal(err)
	}
	pool.SetPrecision(prec)

	synth := data.GenerateSynth(data.SynthConfig{
		Classes: classes, TrainSize: 2, TestSize: max(classes, 8),
		C: 3, H: imageSize, W: imageSize, Noise: 0.3, MaxShift: 2, Seed: 20180901,
	})
	idx := make([]int, synth.Test.Len())
	for i := range idx {
		idx[i] = i
	}
	images, _ := synth.Test.MustGather(idx)

	// Requests index images modulo the set; rewrite out-of-range ids.
	for i := range trace.Requests {
		trace.Requests[i].Image %= images.Dim(0)
	}
	rep, preds, err := pool.Run(trace, images)
	if err != nil {
		log.Fatal(err)
	}
	hist := make([]int, classes)
	served := 0
	for _, p := range preds {
		if p >= 0 {
			hist[p]++
			served++
		}
	}
	fmt.Printf("executed %d forward(s) over %d image(s) at %s; predicted-class histogram: %v\n\n",
		len(rep.Batches), served, prec, hist)
	return rep
}

func capLabel(c int) string {
	if c == 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", c)
}
