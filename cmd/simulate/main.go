// Command simulate prices a training configuration on the paper's hardware
// using the calibrated cluster model:
//
//	simulate -model resnet50 -batch 32768 -nodes 2048 -machine knl -epochs 90
//
// It prints the iteration count, per-iteration compute/communication split,
// sustained throughput and total wall-clock, and can sweep node counts to
// show the scaling curve.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")

	var (
		model   = flag.String("model", "resnet50", "model: alexnet | alexnet-bn | resnet50")
		machine = flag.String("machine", "knl", "device: k20 | m40 | p100 | knl | cpu")
		network = flag.String("network", "opa", "fabric: fdr | qdr | 10gbe | opa | nvlink")
		algo    = flag.String("algo", "ring", "allreduce: central | tree | ring")
		nodes   = flag.Int("nodes", 2048, "device count")
		batch   = flag.Int("batch", 32768, "global batch size")
		epochs  = flag.Int("epochs", 90, "epoch budget")
		dataset = flag.Int("dataset", 1280000, "dataset size (ImageNet-1k default)")
		overlap = flag.Bool("overlap", false, "overlap communication with computation")
		sweep   = flag.Bool("sweep", false, "sweep node counts 1x..16x and print the scaling curve")
	)
	flag.Parse()

	var spec *models.ModelSpec
	switch *model {
	case "alexnet":
		spec = models.AlexNetSpec()
	case "alexnet-bn":
		spec = models.AlexNetBNSpec()
	case "resnet50":
		spec = models.ResNet50Spec()
	default:
		log.Fatalf("unknown model %q", *model)
	}

	var m cluster.Machine
	switch *machine {
	case "k20":
		m = cluster.TeslaK20
	case "m40":
		m = cluster.TeslaM40
	case "p100":
		m = cluster.TeslaP100
	case "knl":
		m = cluster.KNL7250
	case "cpu":
		m = cluster.Xeon8160
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	var net comm.Network
	switch *network {
	case "fdr":
		net = comm.MellanoxFDR
	case "qdr":
		net = comm.IntelQDR
	case "10gbe":
		net = comm.Intel10GbE
	case "opa":
		net = cluster.OmniPath
	case "nvlink":
		net = cluster.NVLinkHybrid
	default:
		log.Fatalf("unknown network %q", *network)
	}

	var a dist.Algorithm
	switch *algo {
	case "central":
		a = dist.Central
	case "tree":
		a = dist.Tree
	case "ring":
		a = dist.Ring
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}

	run := func(n int) cluster.Estimate {
		c := cluster.Cluster{Machine: m, Count: n, Network: net, Algo: a, Overlap: *overlap}
		return cluster.Simulate(c, spec, *batch, *epochs, *dataset)
	}

	if *sweep {
		fmt.Printf("%-8s %-12s %-12s %-12s %-12s %-14s %-10s\n", "nodes", "comp/iter", "comm/iter", "total", "img/s", "msgs/iter", "rounds")
		for n := *nodes; n <= 16**nodes && n <= *batch; n *= 2 {
			e := run(n)
			if e.OOM {
				fmt.Printf("%-8d OOM\n", n)
				continue
			}
			fmt.Printf("%-8d %-12.4fs %-12.4fs %-12s %-12.0f %-14d %-10d\n",
				n, e.CompSec, e.CommSec, e.Duration().Round(1e9), e.ImagesSec, e.Comm.Messages, e.Comm.Steps)
		}
		return
	}

	e := run(*nodes)
	if e.OOM {
		log.Fatalf("%s does not fit on %s even at batch 1", spec.Name, m.Name)
	}
	fmt.Printf("model:       %s (|W|=%.1fMB, %.2f GFLOPs/image)\n", spec.Name, float64(spec.WeightBytes())/1e6, float64(spec.FLOPsPerImage())/1e9)
	fmt.Printf("cluster:     %d x %s over %s (%s allreduce)\n", *nodes, m.Name, net.Name, a)
	fmt.Printf("batch:       %d global, %d/device (compute micro-batch %d)\n", *batch, e.LocalBatch, e.MicroBatch)
	fmt.Printf("iterations:  %d (%d epochs of %d images)\n", e.Iterations, *epochs, *dataset)
	fmt.Printf("iteration:   %.4fs compute + %.4fs communication\n", e.CompSec, e.CommSec)
	fmt.Printf("allreduce:   %d messages, %.1f MB aggregate, %d latency rounds per iteration (%s)\n",
		e.Comm.Messages, float64(e.Comm.Bytes)/1e6, e.Comm.Steps, a)
	fmt.Printf("throughput:  %.0f images/sec\n", e.ImagesSec)
	fmt.Printf("total:       %s\n", e.Duration().Round(1e9))
}
