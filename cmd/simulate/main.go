// Command simulate prices a training configuration on the paper's hardware
// using the calibrated cluster model:
//
//	simulate -model resnet50 -batch 32768 -nodes 2048 -machine knl -epochs 90
//
// It prints the iteration count, per-iteration compute/communication split,
// sustained throughput and total wall-clock, and can sweep node counts to
// show the scaling curve (-sweep).
//
// -overlap prices communication/computation overlap at bucket granularity:
// the gradient is split into -overlap-buckets buckets, each ready at its
// share of the backward pass (tail of the network first), and the bucket
// allreduces pipeline against the remaining backward — on hierarchical
// clusters with the inter exchange of bucket k overlapping the intra reduce
// of bucket k+1. The report then adds a per-bucket exposed/hidden timeline
// and the hidden/exposed split of the iteration's communication.
//
// -per-node groups the devices into nodes of that size and prices the
// allreduce hierarchically: -intra-algo over the -intra-network fabric
// inside each node, feeding -algo over -network across the node leaders,
// with the per-tier schedule reported separately. A multi-chassis DGX-1
// deployment, for example:
//
//	simulate -model resnet50 -batch 8192 -nodes 32 -machine p100 \
//	         -per-node 8 -intra-network nvlink -intra-algo ring \
//	         -network fdr -algo tree
//
// -evict prices a degrading (preemptible) fleet: each comma-separated
// fraction loses one device at that share of the run's iterations, the
// survivors absorb the work (the engine's elastic membership at cluster
// scale), and the report adds an eviction timeline — per-phase world size,
// iteration cost and throughput — plus the time-to-accuracy cost versus
// the healthy fleet. Losing a quarter and half way through a 64-node run:
//
//	simulate -model resnet50 -batch 32768 -nodes 64 -machine knl \
//	         -epochs 90 -evict 0.25,0.5
//
// -sync-sweep prices the local-SGD tradeoff: a comma-separated list of
// synchronization periods H (e.g. "1,2,4,8"), each priced with the same
// compute model but the allreduce paid only every H-th step
// (cluster.SimulateLocalSGD) — communication volume exactly 1/H of the
// every-step run, throughput climbing toward the compute-bound ceiling.
// The ResNet-50/KNL configuration of the paper's Table 8, swept:
//
//	simulate -model resnet50 -batch 32768 -nodes 2048 -machine knl \
//	         -epochs 90 -sync-sweep 1,2,4,8,16
//
// -autoscale replays a traffic/preemption trace through the autoscaling
// control plane (cluster.SimulateAutoscale) instead of pricing a fixed
// run. The trace is a comma-separated list of "LOADxN" segments — N
// intervals of offered load at LOAD times the starting fleet's healthy
// throughput — with an optional "!P" suffix preempting P devices at the
// segment's first interval. The policy knobs ride alongside:
// -target-util (scale up past this utilization, down when the smaller
// fleet stays under it), -max-backlog (a queue older than this many
// seconds forces a scale-up), -scale-min/-scale-max bounds, -cooldown
// intervals of hysteresis, -interval seconds per trace step and -usd-hour
// per-device pricing. The report shows the world-size timeline, the
// membership churn, the mean reaction time and the dollar bill against
// pinning -scale-max devices. A day-shaped surge with a mid-surge spot
// reclaim on an 8-node fleet allowed to double:
//
//	simulate -model resnet50 -batch 2048 -nodes 8 -machine knl \
//	         -autoscale "0.3x4,1.5x4!1,1.5x4,0.3x8" -scale-max 16
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")

	var (
		model      = flag.String("model", "resnet50", "model: alexnet | alexnet-bn | resnet50")
		machine    = flag.String("machine", "knl", "device: k20 | m40 | p100 | knl | cpu")
		network    = flag.String("network", "opa", "fabric: fdr | qdr | 10gbe | opa | nvlink (cross-node tier when -per-node is set)")
		algo       = flag.String("algo", "ring", "allreduce: central | tree | ring (cross-node tier when -per-node is set)")
		nodes      = flag.Int("nodes", 2048, "device count")
		batch      = flag.Int("batch", 32768, "global batch size")
		epochs     = flag.Int("epochs", 90, "epoch budget")
		dataset    = flag.Int("dataset", 1280000, "dataset size (ImageNet-1k default)")
		overlap    = flag.Bool("overlap", false, "overlap bucket allreduces with the backward pass (bucket-level pipeline model)")
		obuckets   = flag.Int("overlap-buckets", 0, "gradient buckets for the overlap pipeline (0 = default 16)")
		sweep      = flag.Bool("sweep", false, "sweep node counts 1x..16x and print the scaling curve")
		evict      = flag.String("evict", "", "degrading fleet: comma-separated run fractions, one device lost at each (e.g. \"0.25,0.5\")")
		syncSweep  = flag.String("sync-sweep", "", "local-SGD sweep: comma-separated synchronization periods H (e.g. \"1,2,4,8\"); allreduce paid every H-th step")
		autoscale  = flag.String("autoscale", "", "replay a traffic trace through the autoscaler: \"LOADxN[!P]\" segments, LOAD relative to the healthy fleet (e.g. \"0.3x4,1.5x8!1,0.3x8\")")
		targetUtil = flag.Float64("target-util", 0.8, "autoscaler utilization target (0 disables the utilization rule)")
		maxBacklog = flag.Float64("max-backlog", 0, "autoscaler backlog SLO in seconds (0 disables the queue-depth rule)")
		scaleMin   = flag.Int("scale-min", 1, "autoscaler fleet floor")
		scaleMax   = flag.Int("scale-max", 0, "autoscaler fleet ceiling (0 = -nodes; flat clusters may exceed -nodes)")
		cooldown   = flag.Int("cooldown", 0, "autoscaler intervals of hysteresis after each scale event")
		interval   = flag.Float64("interval", 60, "autoscaler trace resolution in seconds")
		usdHour    = flag.Float64("usd-hour", 3, "autoscaler per-device-hour price for the cost accounting")
		perNode    = flag.Int("per-node", 0, "devices per node for two-tier hierarchical pricing (0 = flat; must divide -nodes)")
		intraNet   = flag.String("intra-network", "nvlink", "within-node fabric when -per-node is set: fdr | qdr | 10gbe | opa | nvlink")
		intraAlg   = flag.String("intra-algo", "ring", "within-node allreduce when -per-node is set: central | tree | ring")
	)
	flag.Parse()

	var spec *models.ModelSpec
	switch *model {
	case "alexnet":
		spec = models.AlexNetSpec()
	case "alexnet-bn":
		spec = models.AlexNetBNSpec()
	case "resnet50":
		spec = models.ResNet50Spec()
	default:
		log.Fatalf("unknown model %q", *model)
	}

	var m cluster.Machine
	switch *machine {
	case "k20":
		m = cluster.TeslaK20
	case "m40":
		m = cluster.TeslaM40
	case "p100":
		m = cluster.TeslaP100
	case "knl":
		m = cluster.KNL7250
	case "cpu":
		m = cluster.Xeon8160
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	parseNet := func(name string) comm.Network {
		switch name {
		case "fdr":
			return comm.MellanoxFDR
		case "qdr":
			return comm.IntelQDR
		case "10gbe":
			return comm.Intel10GbE
		case "opa":
			return cluster.OmniPath
		case "nvlink":
			return cluster.NVLinkHybrid
		default:
			log.Fatalf("unknown network %q", name)
			panic("unreachable")
		}
	}
	parseAlgo := func(name string) dist.Algorithm {
		switch name {
		case "central":
			return dist.Central
		case "tree":
			return dist.Tree
		case "ring":
			return dist.Ring
		default:
			log.Fatalf("unknown algorithm %q", name)
			panic("unreachable")
		}
	}
	net := parseNet(*network)
	a := parseAlgo(*algo)

	buildCluster := func(n int) cluster.Cluster {
		c := cluster.Cluster{Machine: m, Count: n, Network: net, Algo: a, Overlap: *overlap, OverlapBuckets: *obuckets}
		if *perNode > 0 {
			if n%*perNode != 0 {
				log.Fatalf("-per-node %d does not divide %d devices", *perNode, n)
			}
			c.PerNode = *perNode
			c.IntraNetwork = parseNet(*intraNet)
			c.IntraAlgo = parseAlgo(*intraAlg)
		}
		return c
	}
	run := func(n int) cluster.Estimate {
		return cluster.Simulate(buildCluster(n), spec, *batch, *epochs, *dataset)
	}

	if *sweep && *evict != "" {
		log.Fatal("-evict is not supported with -sweep")
	}
	if *sweep {
		fmt.Printf("%-8s %-12s %-12s %-12s %-12s %-14s %-10s\n", "nodes", "comp/iter", "comm/iter", "total", "img/s", "msgs/iter", "rounds")
		for n := *nodes; n <= 16**nodes && n <= *batch; n *= 2 {
			e := run(n)
			if e.OOM {
				fmt.Printf("%-8d OOM\n", n)
				continue
			}
			fmt.Printf("%-8d %-12.4fs %-12.4fs %-12s %-12.0f %-14d %-10d\n",
				n, e.CompSec, e.CommSec, e.Duration().Round(1e9), e.ImagesSec, e.Comm.Messages, e.Comm.Steps)
		}
		return
	}

	e := run(*nodes)
	if e.OOM {
		log.Fatalf("%s does not fit on %s even at batch 1", spec.Name, m.Name)
	}
	fmt.Printf("model:       %s (|W|=%.1fMB, %.2f GFLOPs/image)\n", spec.Name, float64(spec.WeightBytes())/1e6, float64(spec.FLOPsPerImage())/1e9)
	if h, ok := e.Cluster.Hierarchy(); ok {
		fmt.Printf("cluster:     %d x %s as %d nodes of %d: %s %s intra, %s %s inter\n",
			*nodes, m.Name, h.Nodes, h.PerNode, e.Cluster.IntraNetwork.Name, h.Intra, net.Name, h.Inter)
	} else {
		fmt.Printf("cluster:     %d x %s over %s (%s allreduce)\n", *nodes, m.Name, net.Name, a)
	}
	fmt.Printf("batch:       %d global, %d/device (compute micro-batch %d)\n", *batch, e.LocalBatch, e.MicroBatch)
	fmt.Printf("iterations:  %d (%d epochs of %d images)\n", e.Iterations, *epochs, *dataset)
	fmt.Printf("iteration:   %.4fs compute + %.4fs communication\n", e.CompSec, e.CommSec)
	fmt.Printf("allreduce:   %d messages, %.1f MB aggregate, %d latency rounds per iteration (%s)\n",
		e.Comm.Messages, float64(e.Comm.Bytes)/1e6, e.Comm.Steps, a)
	if _, ok := e.Cluster.Hierarchy(); ok {
		fmt.Printf("  intra tier: %d messages, %.1f MB, %d rounds (concurrent across nodes)\n",
			e.TierComm.Intra.Messages, float64(e.TierComm.Intra.Bytes)/1e6, e.TierComm.Intra.Steps)
		fmt.Printf("  inter tier: %d messages, %.1f MB, %d rounds (node leaders)\n",
			e.TierComm.Inter.Messages, float64(e.TierComm.Inter.Bytes)/1e6, e.TierComm.Inter.Steps)
	}
	if *overlap {
		fmt.Printf("overlap:     backward window %.4fs, comm %.4fs hidden + %.4fs exposed over %d buckets\n",
			e.BackwardSec, e.HiddenCommSec, e.CommSec, len(e.Buckets))
		fmt.Printf("  %-8s %-10s %-10s %-10s %-10s %s\n", "bucket", "MB", "ready", "start", "done", "exposure")
		for j := len(e.Buckets) - 1; j >= 0; j-- { // pipeline order: tail of the gradient first
			b := e.Buckets[j]
			status := "hidden"
			if !b.Hidden {
				status = fmt.Sprintf("exposed %.4fs", b.DoneSec-e.BackwardSec)
			}
			fmt.Printf("  %-8d %-10.2f %-10.4f %-10.4f %-10.4f %s\n",
				j, float64(b.Bytes)/1e6, b.ReadySec, b.StartSec, b.DoneSec, status)
		}
	}
	fmt.Printf("throughput:  %.0f images/sec\n", e.ImagesSec)
	fmt.Printf("total:       %s\n", e.Duration().Round(1e9))

	if *evict != "" {
		var fracs []float64
		for _, s := range strings.Split(*evict, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || f < 0 || f > 1 {
				log.Fatalf("bad -evict fraction %q: want numbers in [0,1]", s)
			}
			fracs = append(fracs, f)
		}
		if len(fracs) >= *nodes {
			log.Fatalf("-evict loses %d devices, fleet has %d", len(fracs), *nodes)
		}
		el := cluster.SimulateElastic(buildCluster(*nodes), spec, *batch, *epochs, *dataset, fracs)
		fmt.Printf("\neviction timeline (%d devices lost; fixed %d-epoch budget, serial communication):\n", len(fracs), *epochs)
		fmt.Printf("  %-8s %-12s %-12s %-12s %-12s\n", "world", "iterations", "comp/iter", "comm/iter", "img/s")
		for _, p := range el.Phases {
			fmt.Printf("  %-8d %-12d %-12s %-12s %-12.0f\n",
				p.Devices, p.Iterations,
				fmt.Sprintf("%.4fs", p.CompSec), fmt.Sprintf("%.4fs", p.CommSec), p.ImagesSec)
		}
		fmt.Printf("  healthy fleet:  %s (%.0f img/s)\n", el.Healthy.Duration().Round(1e9), el.Healthy.ImagesSec)
		fmt.Printf("  degraded fleet: %s (%.0f img/s avg), time-to-accuracy +%.1f%%\n",
			el.Duration().Round(1e9), el.ImagesSec, el.SlowdownPct())
	}

	if *syncSweep != "" {
		var hs []int
		for _, s := range strings.Split(*syncSweep, ",") {
			h, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || h < 1 {
				log.Fatalf("bad -sync-sweep period %q: want integers >= 1", s)
			}
			hs = append(hs, h)
		}
		curve := cluster.LocalSGDCurve(buildCluster(*nodes), spec, *batch, *epochs, *dataset, hs)
		fmt.Printf("\nlocal-SGD sweep (weight average every H steps; comm volume scales as 1/H):\n")
		fmt.Printf("  %-6s %-12s %-12s %-12s %-12s %-10s %-10s\n",
			"H", "rounds", "step", "img/s", "total", "speedup", "comm GB")
		for _, p := range curve {
			fmt.Printf("  %-6d %-12d %-12s %-12.0f %-12s %-10s %-10.1f\n",
				p.SyncEvery, p.SyncRounds,
				fmt.Sprintf("%.4fs", p.StepSec), p.ImagesSec,
				p.Duration().Round(1e9), fmt.Sprintf("%.2fx", p.Speedup),
				float64(p.Comm.Bytes)/(1<<30))
		}
	}

	if *autoscale != "" {
		var trace []cluster.TrafficPoint
		for _, seg := range strings.Split(*autoscale, ",") {
			seg = strings.TrimSpace(seg)
			preempt := 0
			if body, p, ok := strings.Cut(seg, "!"); ok {
				n, err := strconv.Atoi(p)
				if err != nil || n < 0 {
					log.Fatalf("bad -autoscale segment %q: preemption count %q", seg, p)
				}
				seg, preempt = body, n
			}
			loadStr, nStr, ok := strings.Cut(seg, "x")
			load, err1 := strconv.ParseFloat(strings.TrimSpace(loadStr), 64)
			n, err2 := strconv.Atoi(strings.TrimSpace(nStr))
			if !ok || err1 != nil || err2 != nil || load < 0 || n < 1 {
				log.Fatalf("bad -autoscale segment %q: want \"LOADxN[!P]\"", seg)
			}
			for i := 0; i < n; i++ {
				tp := cluster.TrafficPoint{OfferedImagesSec: load * e.ImagesSec}
				if i == 0 {
					tp.Preemptions = preempt
				}
				trace = append(trace, tp)
			}
		}
		pol := cluster.AutoscalePolicy{
			Min: *scaleMin, Max: *scaleMax,
			TargetUtilization: *targetUtil, MaxBacklogSec: *maxBacklog,
			CooldownIntervals: *cooldown, USDPerDeviceHour: *usdHour,
		}
		est := cluster.SimulateAutoscale(buildCluster(*nodes), spec, *batch, *interval, trace, pol)
		fmt.Printf("\nautoscale replay (%d intervals of %.0fs; load relative to the healthy %.0f img/s):\n",
			len(trace), *interval, e.ImagesSec)
		fmt.Printf("  world timeline: %s\n", est.Timeline)
		fmt.Printf("  joins=%d evictions=%d (preempted %d) reaction=%.1f intervals final_backlog=%.0fs\n",
			est.Joins, est.Evictions, est.Preempted, est.ReactionIntervals, est.FinalBacklogSec)
		fmt.Printf("  cost: $%.2f elastic vs $%.2f static-max (%.0f%% saved)\n",
			est.TotalUSD, est.StaticUSD, est.SavingsPct())
	}
}
