// Command train runs one large-batch training experiment on SynthImageNet
// and prints per-epoch metrics. It exposes every knob of the paper's recipe
// (model, batch, epoch budget, method, warmup, LARS trust) and of the
// synchronous data-parallel engine underneath it.
//
// # Recipe flags
//
// -method selects the training recipe: sgd (momentum SGD at the base rate,
// the small-batch baseline), linear (Goyal et al.'s linear scaling +
// warmup), or lars (the paper's LARS + warmup recipe). -base-lr and
// -base-batch anchor the linear-scaling rule, -warmup sets the ramp in
// epochs, -trust the LARS trust coefficient, -wd the weight decay.
//
// # Engine flags
//
// -workers sets the physical worker (replica) count and -algo the
// allreduce topology it communicates over: central (parameter-server
// star), tree (binomial, ⌈log₂P⌉ rounds) or ring (bandwidth-optimal
// chunked ring).
//
// -per-node arranges the workers into a two-tier node hierarchy of that
// many workers per node (it must divide -workers; 0 keeps the flat
// topology). Gradients then reduce intra-node first under -intra-algo
// (default ring), node leaders exchange across the cluster fabric under
// -algo, and the final report splits the communication counters per fabric
// tier. The trajectory is bit-identical to the flat run — the hierarchy
// changes only the schedule and its accounting.
//
// -shards fixes the logical gradient shard split, which — not the worker
// count — determines the numerical result: pin it across runs to get
// bit-identical trajectories for any -workers. -bucket chunks the gradient
// into reduction buckets of at most that many float32 coordinates (0 = one
// bucket). -overlap fires each bucket's reduction as soon as its gradients
// are final on every shard — inside the backward pass, while earlier layers
// are still back-propagating — instead of after the full backward; the
// trajectory is bit-identical, and the final report adds an overlap line
// splitting the communication rounds and bytes into hidden (reduced inside
// the backward) versus exposed (the first layers' bucket, weight broadcasts,
// recovery traffic). Pair -overlap with -bucket: a single bucket cannot
// hide. -codec compresses reduction payloads on the wire: fp16 (half
// precision) or 1bit (Seide et al.'s 1-bit SGD with error feedback).
// -fault-drop and -fault-stall inject deterministic payload drops and
// stragglers at the given per-(step,worker) probability; recovery is exact
// (values unaffected, retries and stalls accounted).
//
// # Hot-loop knobs
//
// -reduction selects the gradient-reduction arithmetic: canonical (the
// default — strict float64 accumulation in canonical shard order) or
// pairwise (the fixed-tree float32 kernel in internal/kernel — faster, and
// still bit-identical across -workers, topologies and -overlap for a
// pinned -shards split, because the summation tree's shape depends only on
// the shard count). -profile turns on the per-step phase profiler: the
// final report adds a line splitting hot-loop wall time into
// gemm/im2col/convert/reduce/codec/other shares that sum exactly to the
// profiled wall time — the measured answer to "is this run compute- or
// reduction-bound?".
//
// # Mixed precision
//
// -precision f16 switches the conv/fc hot path to binary16 storage: GEMM
// operands (weights, im2col panels, activations and their gradients) are
// packed to IEEE half precision and every product accumulates in float32,
// while the optimizer, gradient reduction and weight broadcast keep float32
// master values — the paper's NVIDIA half-precision recipe. Small gradients
// would flush to zero in binary16, so the trainer runs dynamic loss
// scaling: the loss gradient is multiplied by a power-of-two scale
// (-loss-scale sets the starting point, default 2^16) before backward,
// master gradients are unscaled exactly after reduction, and a step whose
// gradients overflow to Inf/NaN is skipped while the scale halves; after a
// stable stretch the scale doubles again. The final report adds a precision
// line with the scaler's end state. The f16 trajectory keeps the engine's
// bit-identity contract across -workers, topologies and -overlap for a
// pinned -shards split; it differs from the f32 trajectory by construction.
//
// # Progressive resolution (the ENTR curriculum)
//
// -resolutions trains under a per-epoch input-resolution schedule — the
// progressive-resolution curriculum: early epochs see small (cheap) inputs,
// later epochs the full size. The syntax is comma-separated phases of
// "HxW@epochs" with inclusive epoch ranges: "12x12@0-4,24x24@5+" trains
// epochs 0–4 at 12x12 and every epoch from 5 on at 24x24 (a bare "HxW"
// pins the whole run). Batches are resized at materialization with the
// deterministic area/bilinear kernel (area when shrinking, bilinear when
// growing); shard assignments and the engine schedule are untouched, and
// every replica derives the epoch's resolution from the same schedule, so
// the trajectory keeps the bit-identity contract across -workers,
// topologies and -overlap for a pinned -shards split. Evaluation always
// runs at the native -image-size. The schedule needs a model whose weight
// count does not depend on the input size — a GAP-headed net (micro-convnet
// or micro-resnet); micro-alexnet and mlp bake the canonical H×W into their
// classifier and are rejected. The per-epoch report gains a res column, and
// cluster.SimulateProgressive prices the same schedule analytically.
//
// # Local SGD (trading communication for computation)
//
// -sync-every H switches the engine from every-step gradient allreduce to
// local SGD: every worker runs H private optimizer steps — the same recipe
// as the master, momentum SGD or LARS per -method — on its own shard
// gradients, and the fleet averages weights only at every H-th step. The
// communication volume scales by exactly 1/H (the final report's comm
// counters match comm.ExpectedLocalSGDStats counter-for-counter), bought
// with inter-sync weight drift; H=1 is bit-identical to not passing the
// flag at all. With -per-node set, -intra-sync-every Hi adds cheap
// intra-node weight averages every Hi steps between the rare full rounds
// (Hi must divide H), attributed to the intra tier in the tiers line.
// Elastic membership composes: evictions and joins land only on window
// boundaries, the sole steps at which the fleet is weight-coherent.
//
// Worked comm-bound example: micro-alexnet at width 8 carries ~0.18M
// parameters, so one ring round at P=4 moves ~2.6 MB through the engine
// (2(P−1)/P reduce + broadcast legs per worker). At batch 256 a step
// computes in a few ms, so on a slow fabric the allreduce dominates the
// step; -sync-every 8 cuts the wire volume 8x and turns the run
// compute-bound while the loss trajectory stays within the drift budget
// the LocalSGD study tables (EXPERIMENTS.md) quantify:
//
//	train -model micro-alexnet -batch 256 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -algo ring -sync-every 8
//
// The hierarchical schedule on a simulated two-node cluster — intra-node
// averages every 2 steps on the cheap fabric, full averages every 8:
//
//	train -model micro-alexnet -batch 256 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -per-node 2 -algo tree \
//	      -sync-every 8 -intra-sync-every 2
//
// # Elastic membership (preemptible fleets)
//
// -fault-dead kills workers permanently: "3@40" makes worker 3 answer
// nothing from step 40 on (comma-separate for several, e.g. "2@40,3@40").
// A dead worker cannot be recovered, so by default the run aborts with a
// typed worker-dead error when the death bites. -elastic instead turns on
// elastic membership: after -evict-after consecutive failed recoveries the
// engine evicts the dead worker, rebalances the logical shard spans over
// the surviving P−1 workers, shrinks the topology (a hierarchy node losing
// all its workers leaves the inter tier), re-broadcasts the weights, and
// keeps training in lockstep at the smaller world size. -fault-join is the
// mirror image: "3@60" admits worker 3 at the step-60 boundary — a fresh
// replica starts pending and joins warm-started from a weight broadcast; a
// worker that is also in -fault-dead at an earlier step rejoins after its
// outage (preempted capacity coming back). The spans rebalance upward over
// P+1, a refilled hierarchy node rejoins the inter tier, and the final
// report's membership line covers both directions: evictions, joins,
// rebalanced shards, resync/warm-start bytes, the steps spent at each
// world size, and the signed event timeline ("-3@41 +3@60"). Given the
// same fault plan and policy the resizing run is bit-identical across
// -algo choices, every post-eviction step is bit-identical to a fresh run
// at the smaller world started from the rebalanced weights, and every
// post-join step to a fresh run at the grown world started from the
// broadcast weights.
//
// # Worked examples
//
// The paper's recipe at batch 1024 on 4 workers with ring allreduce,
// reporting per-epoch loss/accuracy and the communication counters:
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -algo ring
//
// The same run on a simulated two-node cluster (2 workers per node, ring
// inside the node, tree across node leaders), with fp16 wire compression
// and a 1% straggler rate — the final line adds per-tier message/byte/round
// counters for the intra and inter fabrics:
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -per-node 2 -intra-algo ring -algo tree \
//	      -codec fp16 -fault-stall 0.01
//
// The paper's recipe with gradient reduction overlapped with the backward
// pass, 4096-coordinate buckets firing as their layers' gradients land:
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -algo ring -bucket 4096 -overlap
//
// A preemptible fleet: worker 3 is reclaimed at step 40, declared dead
// after 3 missed recoveries, and evicted; the run finishes on the three
// survivors and reports the world-size timeline:
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -algo ring -fault-dead 3@40 \
//	      -elastic -evict-after 3
//
// The same preemption with the capacity coming back: worker 3 is reclaimed
// at step 40, evicted, then readmitted at the step-60 boundary — the
// membership line reports one eviction, one join and the "-3@43 +3@60"
// event timeline, and the run finishes back at full strength:
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -algo ring -fault-dead 3@40 \
//	      -fault-join 3@60 -elastic -evict-after 3
//
// The paper's recipe on the fast reduction kernel, with the hot loop
// profiled — the final lines report the phase shares and pin the run to
// the pairwise-f32 summation tree (bit-identical for any -workers at this
// -shards split):
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -shards 4 -algo ring \
//	      -reduction pairwise -profile
//
// The paper's recipe on the binary16 compute path with the hot loop
// profiled — the profile line's convert share is the packing overhead, the
// gemm share shrinks against the f32 run, and the closing precision line
// reports the dynamic loss scaler's end state (scale, skipped steps,
// growths):
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -shards 4 -algo ring \
//	      -precision f16 -profile
//
// The ENTR curriculum on the GAP-headed conv net: the first five epochs
// train at 4/9-area 16x16 inputs (~2.25x fewer FLOPs per image per conv
// layer), the rest at the native 24x24 — same epoch budget, less wall
// time, and still bit-identical for any -workers at this -shards split:
//
//	train -model micro-convnet -batch 1024 -epochs 15 -method lars \
//	      -warmup 2 -workers 4 -shards 4 -algo ring \
//	      -resolutions 16x16@0-4,24x24@5+
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")

	var (
		modelName   = flag.String("model", "micro-alexnet", "model: micro-alexnet | micro-alexnet-lrn | micro-convnet | micro-resnet | mlp")
		batch       = flag.Int("batch", 32, "global batch size")
		epochs      = flag.Int("epochs", 15, "fixed epoch budget")
		method      = flag.String("method", "lars", "recipe: sgd | linear | lars")
		baseLR      = flag.Float64("base-lr", 0.05, "learning rate at the base batch")
		baseBatch   = flag.Int("base-batch", 32, "reference batch for linear scaling")
		warmup      = flag.Float64("warmup", 2, "warmup epochs (linear/lars)")
		trust       = flag.Float64("trust", 0.01, "LARS trust coefficient")
		wd          = flag.Float64("wd", 0.0005, "weight decay")
		workers     = flag.Int("workers", 2, "data-parallel workers")
		algo        = flag.String("algo", "ring", "allreduce topology: central | tree | ring (cross-node tier when -per-node is set)")
		perNode     = flag.Int("per-node", 0, "workers per node for the two-tier hierarchical allreduce (0 = flat; must divide -workers)")
		intraAlgo   = flag.String("intra-algo", "ring", "within-node allreduce when -per-node is set: central | tree | ring")
		shards      = flag.Int("shards", 0, "logical gradient shards (0 = one per worker; pin across runs for bit-identical results)")
		bucket      = flag.Int("bucket", 0, "gradient bucket size in float32 coords (0 = one bucket)")
		overlap     = flag.Bool("overlap", false, "fire bucket reductions inside the backward pass (bit-identical; adds hidden/exposed accounting)")
		reduction   = flag.String("reduction", "canonical", "gradient reduction arithmetic: canonical (f64 canonical order) | pairwise (fixed-tree f32 kernel)")
		profile     = flag.Bool("profile", false, "profile the hot loop per step and report gemm/im2col/convert/reduce/codec/other wall-time shares")
		precision   = flag.String("precision", "f32", "compute precision: f32 | f16 (binary16 GEMM operands, float32 accumulation and masters)")
		lossScale   = flag.Float64("loss-scale", 0, "initial dynamic loss scale under -precision f16 (0 = 2^16; rounded to a power of two)")
		codec       = flag.String("codec", "", "gradient payload codec: \"\" (raw) | fp16 | 1bit")
		dropRate    = flag.Float64("fault-drop", 0, "per-(step,worker) payload drop probability (deterministic, exact recovery)")
		stallRate   = flag.Float64("fault-stall", 0, "per-(step,worker) straggler probability")
		faultDead   = flag.String("fault-dead", "", "permanently kill workers: \"w@step\" pairs, comma-separated (e.g. \"3@40,2@60\")")
		faultJoin   = flag.String("fault-join", "", "admit workers at a step boundary: \"w@step\" pairs, comma-separated (requires -elastic; a worker also in -fault-dead rejoins after its outage)")
		elastic     = flag.Bool("elastic", false, "evict persistently dead workers and continue on the survivors (elastic membership)")
		evictAfter  = flag.Int("evict-after", 0, "consecutive failed recoveries before eviction (0 = default 3; needs -elastic)")
		syncEvery   = flag.Int("sync-every", 0, "local SGD period H: private optimizer steps between weight averages (0/1 = synchronous every-step path)")
		intraSync   = flag.Int("intra-sync-every", 0, "intra-node weight-average period Hi under -per-node (must divide -sync-every; 0 = off)")
		resolutions = flag.String("resolutions", "", "per-epoch input-resolution schedule, e.g. \"12x12@0-4,24x24@5+\" (needs a GAP-headed model: micro-convnet | micro-resnet)")
		width       = flag.Int("width", 8, "model base width")
		augment     = flag.Bool("augment", false, "enable weak data augmentation")
		seed        = flag.Uint64("seed", 1, "experiment seed")
		trainSize   = flag.Int("train-size", 4096, "synthetic training set size")
		classes     = flag.Int("classes", 8, "synthetic class count")
		imageSize   = flag.Int("image-size", 24, "synthetic image height/width")
		quiet       = flag.Bool("quiet", false, "print only the final summary line")
	)
	flag.Parse()

	var m core.Method
	switch *method {
	case "sgd":
		m = core.BaselineSGD
	case "linear":
		m = core.LinearScalingWarmup
	case "lars":
		m = core.LARSWarmup
	default:
		log.Fatalf("unknown method %q", *method)
	}

	synCfg := data.DefaultSynthConfig()
	synCfg.TrainSize = *trainSize
	synCfg.Classes = *classes
	synCfg.H, synCfg.W = *imageSize, *imageSize
	ds := data.GenerateSynth(synCfg)

	mcfg := models.MicroConfig{Classes: *classes, InH: *imageSize, InW: *imageSize, Width: *width}
	var factory func(seed uint64) *nn.Network
	switch *modelName {
	case "micro-alexnet":
		factory = func(s uint64) *nn.Network { c := mcfg; c.Seed = s; return models.NewMicroAlexNet(c) }
	case "micro-alexnet-lrn":
		factory = func(s uint64) *nn.Network {
			c := mcfg
			c.Seed = s
			c.UseLRN = true
			return models.NewMicroAlexNet(c)
		}
	case "micro-convnet":
		factory = func(s uint64) *nn.Network { c := mcfg; c.Seed = s; return models.NewMicroConvNet(c) }
	case "micro-resnet":
		factory = func(s uint64) *nn.Network { c := mcfg; c.Seed = s; return models.NewMicroResNet(c) }
	case "mlp":
		factory = func(s uint64) *nn.Network { c := mcfg; c.Seed = s; return models.NewMLP(c) }
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	if *shards != 0 && *shards < *workers {
		log.Fatalf("-shards %d cannot feed -workers %d: need shards >= workers (or 0 for one per worker)", *shards, *workers)
	}

	parseAlgo := func(name string) dist.Algorithm {
		switch name {
		case "central":
			return dist.Central
		case "tree":
			return dist.Tree
		case "ring":
			return dist.Ring
		default:
			log.Fatalf("unknown algorithm %q", name)
			panic("unreachable")
		}
	}
	a := parseAlgo(*algo)

	var topology *dist.Hierarchy
	if *perNode > 0 {
		if *workers%*perNode != 0 {
			log.Fatalf("-per-node %d does not divide -workers %d", *perNode, *workers)
		}
		topology = &dist.Hierarchy{
			Nodes: *workers / *perNode, PerNode: *perNode,
			Intra: parseAlgo(*intraAlgo), Inter: a,
		}
	}

	if *syncEvery < 0 {
		log.Fatalf("-sync-every %d must be >= 0", *syncEvery)
	}
	if *intraSync > 0 {
		if topology == nil {
			log.Fatal("-intra-sync-every needs -per-node (the intra tier averages inside a node)")
		}
		if *syncEvery <= 1 || *syncEvery%*intraSync != 0 {
			log.Fatalf("-intra-sync-every %d must divide -sync-every %d (> 1)", *intraSync, *syncEvery)
		}
	}

	prec, err := tensor.ParsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	if *lossScale != 0 && prec != tensor.F16 {
		log.Fatal("-loss-scale needs -precision f16")
	}

	var sched *data.ResolutionSchedule
	if *resolutions != "" {
		switch *modelName {
		case "micro-convnet", "micro-resnet":
		default:
			log.Fatalf("-resolutions needs a GAP-headed model (micro-convnet | micro-resnet): %s bakes the %dx%d input size into its classifier weights",
				*modelName, *imageSize, *imageSize)
		}
		sched, err = data.ParseResolutionSchedule(*resolutions)
		if err != nil {
			log.Fatal(err)
		}
	}

	var reductionPolicy dist.Reduction
	switch *reduction {
	case "canonical":
		reductionPolicy = dist.CanonicalF64
	case "pairwise":
		reductionPolicy = dist.PairwiseF32
	default:
		log.Fatalf("unknown reduction %q", *reduction)
	}

	var payloadCodec dist.Codec
	switch *codec {
	case "":
	case "fp16":
		payloadCodec = dist.FP16Codec{}
	case "1bit":
		payloadCodec = dist.NewOneBitCodec()
	default:
		log.Fatalf("unknown codec %q", *codec)
	}

	var dead map[int]int64
	if *faultDead != "" {
		dead = make(map[int]int64)
		for _, spec := range strings.Split(*faultDead, ",") {
			var w int
			var step int64
			if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%d@%d", &w, &step); err != nil {
				log.Fatalf("bad -fault-dead entry %q: want \"worker@step\"", spec)
			}
			if w <= 0 || w >= *workers {
				log.Fatalf("-fault-dead worker %d out of range (1..%d; the master cannot die)", w, *workers-1)
			}
			dead[w] = step
		}
	}
	var join map[int]int64
	if *faultJoin != "" {
		if !*elastic {
			log.Fatalf("-fault-join requires -elastic (admission is an elastic-membership move)")
		}
		join = make(map[int]int64)
		for _, spec := range strings.Split(*faultJoin, ",") {
			var w int
			var step int64
			if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%d@%d", &w, &step); err != nil {
				log.Fatalf("bad -fault-join entry %q: want \"worker@step\"", spec)
			}
			if w <= 0 || w >= *workers {
				log.Fatalf("-fault-join worker %d out of range (1..%d; the master is always a member)", w, *workers-1)
			}
			join[w] = step
		}
	}
	var faults *dist.FaultPlan
	if *dropRate > 0 || *stallRate > 0 || dead != nil || join != nil {
		faults = &dist.FaultPlan{Seed: *seed, DropRate: *dropRate, StallRate: *stallRate, Dead: dead, Join: join}
	}
	var policy *dist.Elastic
	if *elastic {
		policy = &dist.Elastic{EvictAfter: *evictAfter}
	} else if *evictAfter != 0 {
		log.Fatal("-evict-after needs -elastic")
	}

	cfg := core.Config{
		Model:          factory,
		Workers:        *workers,
		Algo:           a,
		Topology:       topology,
		Shards:         *shards,
		Bucket:         *bucket,
		Overlap:        *overlap,
		Reduction:      reductionPolicy,
		Profile:        *profile,
		Precision:      prec,
		LossScale:      *lossScale,
		Codec:          payloadCodec,
		Faults:         faults,
		Elastic:        policy,
		Batch:          *batch,
		Epochs:         *epochs,
		Method:         m,
		BaseLR:         *baseLR,
		BaseBatch:      *baseBatch,
		WarmupEpochs:   *warmup,
		Trust:          *trust,
		WeightDecay:    *wd,
		Augment:        *augment,
		Resolutions:    sched,
		SyncEvery:      *syncEvery,
		IntraSyncEvery: *intraSync,
		Seed:           *seed,
	}

	res, err := core.Train(cfg, ds)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Printf("# %s batch=%d epochs=%d method=%v target-lr=%.4f workers=%d",
			*modelName, *batch, *epochs, m, cfg.TargetLR(), *workers)
		if sched != nil {
			fmt.Printf(" resolutions=%s", sched)
		}
		fmt.Println()
		if sched != nil {
			fmt.Printf("%-6s %-8s %-10s %-8s %-8s\n", "epoch", "res", "loss", "test-acc", "lr")
		} else {
			fmt.Printf("%-6s %-10s %-8s %-8s\n", "epoch", "loss", "test-acc", "lr")
		}
		for _, e := range res.History {
			acc := "-"
			if !math.IsNaN(e.TestAcc) {
				acc = fmt.Sprintf("%.4f", e.TestAcc)
			}
			if sched != nil {
				fmt.Printf("%-6d %-8s %-10.4f %-8s %-8.4f\n",
					e.Epoch, fmt.Sprintf("%dx%d", e.ResH, e.ResW), e.TrainLoss, acc, e.LR)
			} else {
				fmt.Printf("%-6d %-10.4f %-8s %-8.4f\n", e.Epoch, e.TrainLoss, acc, e.LR)
			}
		}
	}
	status := "ok"
	if res.Diverged {
		status = "DIVERGED"
	}
	fmt.Printf("final: acc=%.4f best=%.4f loss=%.4f iters=%d wall=%s comm_msgs=%d comm_bytes=%d comm_rounds=%d retries=%d stalls=%d status=%s\n",
		res.TestAcc, res.BestAcc, res.FinalLoss, res.Iterations, res.Wall.Round(1e7),
		res.Comm.Messages, res.Comm.Bytes, res.Comm.Steps, res.Comm.Retries, res.Comm.Stalls, status)
	if topology != nil {
		fmt.Printf("tiers: topology=%v intra_msgs=%d intra_bytes=%d intra_rounds=%d inter_msgs=%d inter_bytes=%d inter_rounds=%d\n",
			*topology,
			res.TierComm.Intra.Messages, res.TierComm.Intra.Bytes, res.TierComm.Intra.Steps,
			res.TierComm.Inter.Messages, res.TierComm.Inter.Bytes, res.TierComm.Inter.Steps)
	}
	if *syncEvery > 1 {
		fmt.Printf("localsgd: H=%d Hi=%d local_steps=%d sync_rounds=%d intra_rounds=%d\n",
			*syncEvery, *intraSync,
			res.LocalSGD.LocalSteps, res.LocalSGD.SyncRounds, res.LocalSGD.IntraRounds)
	}
	if *overlap {
		fmt.Printf("overlap: hidden_rounds=%d exposed_rounds=%d hidden_bytes=%d exposed_bytes=%d hidden_frac=%.1f%%\n",
			res.Overlap.HiddenRounds, res.Overlap.ExposedRounds,
			res.Overlap.HiddenBytes, res.Overlap.ExposedBytes,
			100*res.Overlap.HiddenByteFrac())
	}
	if *elastic {
		fmt.Printf("membership: evictions=%d joins=%d rebalanced_shards=%d resync_bytes=%d joined_bytes=%d world_timeline=%s events=%s\n",
			res.Membership.Evictions, res.Membership.Joins,
			res.Membership.RebalancedShards, res.Membership.RebalancedBytes,
			res.Membership.JoinedBytes, res.Membership.Timeline(),
			res.Membership.EventTimeline())
	}
	if *profile {
		fmt.Printf("profile: %s\n", res.Profile)
	}
	if prec == tensor.F16 {
		fmt.Printf("precision: f16 loss_scale=%g overflows=%d growths=%d\n",
			res.Scale.Scale, res.Scale.Overflows, res.Scale.Growths)
	}
	if res.Diverged {
		os.Exit(2)
	}
}
