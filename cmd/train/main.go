// Command train runs one large-batch training experiment on SynthImageNet
// and prints per-epoch metrics. It exposes every knob of the paper's recipe:
//
//	train -model micro-alexnet -batch 1024 -epochs 15 -method lars -warmup 2
//
// Methods: sgd (baseline), linear (linear scaling + warmup), lars (the
// paper's LARS + warmup recipe).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")

	var (
		modelName = flag.String("model", "micro-alexnet", "model: micro-alexnet | micro-alexnet-lrn | micro-resnet | mlp")
		batch     = flag.Int("batch", 32, "global batch size")
		epochs    = flag.Int("epochs", 15, "fixed epoch budget")
		method    = flag.String("method", "lars", "recipe: sgd | linear | lars")
		baseLR    = flag.Float64("base-lr", 0.05, "learning rate at the base batch")
		baseBatch = flag.Int("base-batch", 32, "reference batch for linear scaling")
		warmup    = flag.Float64("warmup", 2, "warmup epochs (linear/lars)")
		trust     = flag.Float64("trust", 0.01, "LARS trust coefficient")
		wd        = flag.Float64("wd", 0.0005, "weight decay")
		workers   = flag.Int("workers", 2, "data-parallel workers")
		algo      = flag.String("algo", "ring", "allreduce topology: central | tree | ring")
		shards    = flag.Int("shards", 0, "logical gradient shards (0 = one per worker; pin across runs for bit-identical results)")
		bucket    = flag.Int("bucket", 0, "gradient bucket size in float32 coords (0 = one bucket)")
		codec     = flag.String("codec", "", "gradient payload codec: \"\" (raw) | fp16 | 1bit")
		dropRate  = flag.Float64("fault-drop", 0, "per-(step,worker) payload drop probability (deterministic, exact recovery)")
		stallRate = flag.Float64("fault-stall", 0, "per-(step,worker) straggler probability")
		width     = flag.Int("width", 8, "model base width")
		augment   = flag.Bool("augment", false, "enable weak data augmentation")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		trainSize = flag.Int("train-size", 4096, "synthetic training set size")
		classes   = flag.Int("classes", 8, "synthetic class count")
		imageSize = flag.Int("image-size", 24, "synthetic image height/width")
		quiet     = flag.Bool("quiet", false, "print only the final summary line")
	)
	flag.Parse()

	var m core.Method
	switch *method {
	case "sgd":
		m = core.BaselineSGD
	case "linear":
		m = core.LinearScalingWarmup
	case "lars":
		m = core.LARSWarmup
	default:
		log.Fatalf("unknown method %q", *method)
	}

	synCfg := data.DefaultSynthConfig()
	synCfg.TrainSize = *trainSize
	synCfg.Classes = *classes
	synCfg.H, synCfg.W = *imageSize, *imageSize
	ds := data.GenerateSynth(synCfg)

	mcfg := models.MicroConfig{Classes: *classes, InH: *imageSize, InW: *imageSize, Width: *width}
	var factory func(seed uint64) *nn.Network
	switch *modelName {
	case "micro-alexnet":
		factory = func(s uint64) *nn.Network { c := mcfg; c.Seed = s; return models.NewMicroAlexNet(c) }
	case "micro-alexnet-lrn":
		factory = func(s uint64) *nn.Network {
			c := mcfg
			c.Seed = s
			c.UseLRN = true
			return models.NewMicroAlexNet(c)
		}
	case "micro-resnet":
		factory = func(s uint64) *nn.Network { c := mcfg; c.Seed = s; return models.NewMicroResNet(c) }
	case "mlp":
		factory = func(s uint64) *nn.Network { c := mcfg; c.Seed = s; return models.NewMLP(c) }
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	if *shards != 0 && *shards < *workers {
		log.Fatalf("-shards %d cannot feed -workers %d: need shards >= workers (or 0 for one per worker)", *shards, *workers)
	}

	var a dist.Algorithm
	switch *algo {
	case "central":
		a = dist.Central
	case "tree":
		a = dist.Tree
	case "ring":
		a = dist.Ring
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}

	var payloadCodec dist.Codec
	switch *codec {
	case "":
	case "fp16":
		payloadCodec = dist.FP16Codec{}
	case "1bit":
		payloadCodec = dist.NewOneBitCodec()
	default:
		log.Fatalf("unknown codec %q", *codec)
	}

	var faults *dist.FaultPlan
	if *dropRate > 0 || *stallRate > 0 {
		faults = &dist.FaultPlan{Seed: *seed, DropRate: *dropRate, StallRate: *stallRate}
	}

	cfg := core.Config{
		Model:        factory,
		Workers:      *workers,
		Algo:         a,
		Shards:       *shards,
		Bucket:       *bucket,
		Codec:        payloadCodec,
		Faults:       faults,
		Batch:        *batch,
		Epochs:       *epochs,
		Method:       m,
		BaseLR:       *baseLR,
		BaseBatch:    *baseBatch,
		WarmupEpochs: *warmup,
		Trust:        *trust,
		WeightDecay:  *wd,
		Augment:      *augment,
		Seed:         *seed,
	}

	res, err := core.Train(cfg, ds)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Printf("# %s batch=%d epochs=%d method=%v target-lr=%.4f workers=%d\n",
			*modelName, *batch, *epochs, m, cfg.TargetLR(), *workers)
		fmt.Printf("%-6s %-10s %-8s %-8s\n", "epoch", "loss", "test-acc", "lr")
		for _, e := range res.History {
			acc := "-"
			if !math.IsNaN(e.TestAcc) {
				acc = fmt.Sprintf("%.4f", e.TestAcc)
			}
			fmt.Printf("%-6d %-10.4f %-8s %-8.4f\n", e.Epoch, e.TrainLoss, acc, e.LR)
		}
	}
	status := "ok"
	if res.Diverged {
		status = "DIVERGED"
	}
	fmt.Printf("final: acc=%.4f best=%.4f loss=%.4f iters=%d wall=%s comm_msgs=%d comm_bytes=%d comm_rounds=%d retries=%d stalls=%d status=%s\n",
		res.TestAcc, res.BestAcc, res.FinalLoss, res.Iterations, res.Wall.Round(1e7),
		res.Comm.Messages, res.Comm.Bytes, res.Comm.Steps, res.Comm.Retries, res.Comm.Stalls, status)
	if res.Diverged {
		os.Exit(2)
	}
}
