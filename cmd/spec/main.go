// Command spec prints the layer-by-layer architecture tables — parameters,
// MACs and output shapes — for the paper's models, the numbers behind
// Table 6 and the communication analysis.
//
//	spec                 # summary of every model
//	spec -model resnet50 # full layer table for one model
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/models"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spec: ")
	model := flag.String("model", "", "alexnet | alexnet-bn | resnet18 | resnet34 | resnet50 (empty = summary of all)")
	flag.Parse()

	specs := map[string]*models.ModelSpec{
		"alexnet":    models.AlexNetSpec(),
		"alexnet-bn": models.AlexNetBNSpec(),
		"resnet18":   models.ResNet18Spec(),
		"resnet34":   models.ResNet34Spec(),
		"resnet50":   models.ResNet50Spec(),
	}

	if *model != "" {
		s, ok := specs[*model]
		if !ok {
			log.Fatalf("unknown model %q", *model)
		}
		fmt.Print(s.String())
		return
	}

	fmt.Printf("%-12s %14s %16s %16s %10s\n", "model", "params", "flops/image", "train flops/img", "comp/comm")
	for _, name := range []string{"alexnet", "alexnet-bn", "resnet18", "resnet34", "resnet50"} {
		s := specs[name]
		fmt.Printf("%-12s %14d %16d %16d %10.1f\n",
			name, s.ParamCount(), s.FLOPsPerImage(), s.TrainFLOPsPerImage(), s.ScalingRatio())
	}
	fmt.Println("\ncomp/comm is Table 6's scaling ratio: flops per image / parameters.")
	fmt.Println("Run with -model <name> for the full layer table.")
}
