// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark runs as machine-readable
// artifacts (BENCH_gemm.json) instead of scraping logs.
//
//	go test ./internal/kernel -run '^$' -bench . | go run ./cmd/benchjson -o BENCH_gemm.json
//
// Besides the raw per-benchmark numbers it pairs every f32/f16 sub-benchmark
// split (names differing only in a trailing "/f32" vs "/f16") and records
// the speedup ratio — the number the mixed-precision acceptance criterion
// (f16 GEMM at least 1.2x f32) is checked against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units beyond the standard four —
	// e.g. the local-SGD sweep's "img/s" and "commMB/step" columns.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Speedup pairs an f32 baseline with its f16 counterpart.
type Speedup struct {
	Name    string  `json:"name"` // shared prefix, without the /f32 suffix
	F32Ns   float64 `json:"f32_ns_per_op"`
	F16Ns   float64 `json:"f16_ns_per_op"`
	Speedup float64 `json:"speedup"` // f32 / f16, >1 means f16 is faster
}

// Report is the document benchjson emits.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	rep, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(rep.Benchmarks))
}

// parse consumes go-test bench output: header context lines followed by
// result lines of the form
//
//	BenchmarkName-8   	 1234	 5678 ns/op	 90.1 MB/s	 12 B/op	 3 allocs/op
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		bm := Benchmark{Name: trimProcs(fields[0])}
		var err error
		if bm.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if bm.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "MB/s":
				bm.MBPerS = v
			case "B/op":
				bm.BytesPerOp = v
			case "allocs/op":
				bm.AllocsOp = v
			default:
				if bm.Extra == nil {
					bm.Extra = make(map[string]float64)
				}
				bm.Extra[fields[i+1]] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, bm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Speedups = pairSpeedups(rep.Benchmarks)
	return rep, nil
}

// trimProcs drops the trailing -GOMAXPROCS suffix go test appends.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// pairSpeedups matches every ".../f32" benchmark with its ".../f16" twin.
func pairSpeedups(bms []Benchmark) []Speedup {
	byName := make(map[string]float64, len(bms))
	for _, bm := range bms {
		byName[bm.Name] = bm.NsPerOp
	}
	var out []Speedup
	for _, bm := range bms {
		base, ok := strings.CutSuffix(bm.Name, "/f32")
		if !ok {
			continue
		}
		f16, ok := byName[base+"/f16"]
		if !ok || f16 == 0 {
			continue
		}
		out = append(out, Speedup{Name: base, F32Ns: bm.NsPerOp, F16Ns: f16, Speedup: bm.NsPerOp / f16})
	}
	return out
}
