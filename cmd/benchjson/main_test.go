package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/kernel
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGemm/square/256x256x256/f32-8         	      50	   7121087 ns/op	4711.98 MB/s
BenchmarkGemm/square/256x256x256/f16-8         	     195	   1774555 ns/op	18908.64 MB/s
BenchmarkReduction/pairwise-f32-8              	     433	    774181 ns/op	10835.46 MB/s
BenchmarkLocalSGD/H4-8                         	    1000	      1042 ns/op	       0 B/op	       0 allocs/op	   2175432 img/s	     24.41 commMB/step
some unrelated line
PASS
ok  	repro/internal/kernel	3.848s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "repro/internal/kernel" {
		t.Fatalf("context not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	bm := rep.Benchmarks[0]
	if bm.Name != "BenchmarkGemm/square/256x256x256/f32" || bm.Iterations != 50 || bm.NsPerOp != 7121087 || bm.MBPerS != 4711.98 {
		t.Fatalf("first benchmark parsed wrong: %+v", bm)
	}
	// The trailing "-f32" of the reduction bench is a policy name, not a
	// GOMAXPROCS suffix; only the numeric "-8" must be trimmed.
	if rep.Benchmarks[2].Name != "BenchmarkReduction/pairwise-f32" {
		t.Fatalf("procs suffix trimmed wrong: %q", rep.Benchmarks[2].Name)
	}
	// Custom ReportMetric units land in Extra instead of being dropped.
	lsgd := rep.Benchmarks[3]
	if lsgd.Name != "BenchmarkLocalSGD/H4" || lsgd.Extra["img/s"] != 2175432 || lsgd.Extra["commMB/step"] != 24.41 {
		t.Fatalf("custom metrics parsed wrong: %+v", lsgd)
	}
	if rep.Benchmarks[0].Extra != nil {
		t.Fatalf("standard-unit benchmark grew an Extra map: %+v", rep.Benchmarks[0])
	}
	if len(rep.Speedups) != 1 {
		t.Fatalf("found %d speedup pairs, want 1", len(rep.Speedups))
	}
	s := rep.Speedups[0]
	if s.Name != "BenchmarkGemm/square/256x256x256" || s.Speedup < 4.0 || s.Speedup > 4.02 {
		t.Fatalf("speedup pair wrong: %+v", s)
	}
}
