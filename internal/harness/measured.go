package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
)

// Setup fixes the measured-experiment configuration: the SynthImageNet task
// and the tuned micro-AlexNet recipe. The defaults are the calibration used
// throughout EXPERIMENTS.md; benches shrink Epochs for speed.
type Setup struct {
	Classes   int
	ImageSize int
	TrainSize int
	Width     int
	Epochs    int
	BaseLR    float64
	BaseBatch int
	Workers   int
	Seed      uint64

	ds *data.Synth
}

// DefaultSetup returns the tuned measured-experiment configuration:
// 8-class 16x16 SynthImageNet (2048 train / 1024 test), micro-AlexNet-BN
// width 8, a 20-epoch budget, base rate 0.05 at batch 32.
func DefaultSetup() *Setup {
	return &Setup{
		Classes: 8, ImageSize: 16, TrainSize: 2048, Width: 8,
		Epochs: 20, BaseLR: 0.05, BaseBatch: 32, Workers: 2, Seed: 1,
	}
}

// Dataset lazily generates (and caches) the synthetic dataset.
func (s *Setup) Dataset() *data.Synth {
	if s.ds == nil {
		cfg := data.DefaultSynthConfig()
		cfg.Classes = s.Classes
		cfg.H, cfg.W = s.ImageSize, s.ImageSize
		cfg.TrainSize = s.TrainSize
		s.ds = data.GenerateSynth(cfg)
	}
	return s.ds
}

// Factory builds micro-AlexNet replicas for this setup.
func (s *Setup) Factory() func(seed uint64) *nn.Network {
	return func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{
			Classes: s.Classes, InH: s.ImageSize, Width: s.Width, Seed: seed,
		})
	}
}

// SweepBatches returns the large-batch ladder used by Figure 1 and Table 7,
// expressed as fractions of the training set (1/8, 1/4, 1/2, 1/1) so the
// sweep scales with the dataset. At the default 2048-example set this is
// {256, 512, 1024, 2048}, which the EXPERIMENTS.md mapping aligns with the
// paper's 8K/16K/32K/64K columns.
func (s *Setup) SweepBatches() []int {
	return []int{s.TrainSize / 8, s.TrainSize / 4, s.TrainSize / 2, s.TrainSize}
}

// LargeBatch is the "32K analog": half the training set, the largest batch
// at which LARS still recovers baseline accuracy.
func (s *Setup) LargeBatch() int { return s.TrainSize / 2 }

// WarmupFor mirrors the paper's per-batch warmup tuning (Table 7: 13 epochs
// at 4K, 8 at 8K, 5 at 32K): the more extreme the batch relative to the
// dataset, the longer the ramp.
func (s *Setup) WarmupFor(batch int) float64 {
	switch {
	case batch <= s.BaseBatch:
		return 0
	case batch <= s.TrainSize/8:
		return 2
	case batch <= s.TrainSize/2:
		return 5
	default:
		return 12
	}
}

// TrustFor returns the LARS trust coefficient for a batch size. The paper
// uses 0.001 at ImageNet scale; the micro models want a larger coefficient
// (fewer layers, larger relative gradient noise), tuned once and fixed.
func (s *Setup) TrustFor(batch int) float64 {
	if batch >= s.TrainSize {
		return 0.03
	}
	return 0.05
}

// run executes one training configuration.
func (s *Setup) run(method core.Method, batch int, epochs int) (*core.Result, error) {
	cfg := core.Config{
		Model:        s.Factory(),
		Workers:      s.Workers,
		Batch:        batch,
		Epochs:       epochs,
		Method:       method,
		BaseLR:       s.BaseLR,
		BaseBatch:    s.BaseBatch,
		WarmupEpochs: s.WarmupFor(batch),
		Trust:        s.TrustFor(batch),
		Seed:         s.Seed,
	}
	if method == core.BaselineSGD {
		cfg.WarmupEpochs = 0
	}
	return core.Train(cfg, s.Dataset())
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// Figure1 runs the measured accuracy-vs-batch-size comparison: LARS +
// warmup versus linear scaling + warmup, under the fixed epoch budget.
// This is the repository's analog of the paper's headline Figure 1 (and the
// 16K/32K columns of Table 10).
func Figure1(s *Setup) (*Table, error) {
	t := &Table{
		ID: "Figure 1", Title: "Top-1 accuracy vs batch size (measured on SynthImageNet)",
		Header: []string{"batch", "batch/dataset", "linear+warmup", "LARS+warmup", "paper analog"},
	}
	base, err := s.run(core.BaselineSGD, s.BaseBatch, s.Epochs)
	if err != nil {
		return nil, err
	}
	t.Add(fmt.Sprintf("%d (baseline)", s.BaseBatch),
		fmt.Sprintf("%.1f%%", 100*float64(s.BaseBatch)/float64(s.TrainSize)),
		pct(base.TestAcc), pct(base.TestAcc), "B=256 baseline: 73.0%/76.3%")
	paperAnalog := []string{
		"B=8K: both fine (75.3% vs 76.2%)",
		"B=16K: LARS 75.3% vs FB 75.2%",
		"B=32K: LARS 75.4% vs FB 72.4%",
		"B=64K: LARS 73.2% vs FB 66.0%",
	}
	for i, b := range s.SweepBatches() {
		lin, err := s.run(core.LinearScalingWarmup, b, s.Epochs)
		if err != nil {
			return nil, err
		}
		lars, err := s.run(core.LARSWarmup, b, s.Epochs)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", b),
			fmt.Sprintf("%.0f%%", 100*float64(b)/float64(s.TrainSize)),
			pct(lin.TestAcc), pct(lars.TestAcc), paperAnalog[i])
	}
	t.Note("Fixed %d-epoch budget; the batch/dataset column maps batch sizes onto the paper's regime (32K/1.28M = 2.6%%).", s.Epochs)
	t.Note("Shape match: linear scaling collapses once the batch passes ~25%% of the dataset; LARS holds accuracy well past it.")
	return t, nil
}

// Table5 runs the measured learning-rate sweep at a large batch without
// LARS: the paper's Table 5 shows accuracy topping out well below baseline
// and collapsing to 0.1% once the linear-scaled rate is reached.
func Table5(s *Setup) (*Table, error) {
	batch := s.LargeBatch() // the "4096" analog
	t := &Table{
		ID: "Table 5", Title: fmt.Sprintf("Linear scaling + warmup at batch %d: base-LR sweep (no LARS)", batch),
		Header: []string{"base LR", "effective LR", "warmup", "epochs", "test accuracy"},
	}
	for _, mult := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8} {
		lr := s.BaseLR * mult
		cfg := core.Config{
			Model: s.Factory(), Workers: s.Workers, Batch: batch, Epochs: s.Epochs,
			Method: core.LinearScalingWarmup, BaseLR: lr, BaseBatch: s.BaseBatch,
			WarmupEpochs: s.WarmupFor(batch), Seed: s.Seed,
		}
		res, err := core.Train(cfg, s.Dataset())
		if err != nil {
			return nil, err
		}
		acc := pct(res.TestAcc)
		if res.Diverged {
			acc += " (diverged)"
		}
		t.Add(fmt.Sprintf("%.4f", lr), fmt.Sprintf("%.2f", cfg.TargetLR()),
			fmt.Sprintf("%.0f ep", cfg.WarmupEpochs), fmt.Sprintf("%d", s.Epochs), acc)
	}
	t.Note("Paper's Table 5 (AlexNet B=4096): best 53.1%% far below the 58%% baseline, and 0.1%% at LR >= 0.07.")
	t.Note("Shape match: the prescribed linearly-scaled rate collapses, and large rates hit chance (the 0.1%% analog). " +
		"Difference: at this micro scale a hand-tuned sub-scaled rate can still come close to baseline, where the paper's full-scale task cannot.")
	return t, nil
}

// Table7 runs the measured LARS sweep: with per-batch warmup, accuracy
// stays flat across batch sizes (the paper's 0.583/0.584/0.583/0.585).
func Table7(s *Setup) (*Table, error) {
	t := &Table{
		ID: "Table 7", Title: "LARS + warmup across batch sizes (measured)",
		Header: []string{"batch", "LR rule", "warmup", "epochs", "test accuracy"},
	}
	base, err := s.run(core.BaselineSGD, s.BaseBatch, s.Epochs)
	if err != nil {
		return nil, err
	}
	t.Add(fmt.Sprintf("%d", s.BaseBatch), "regular", "N/A", fmt.Sprintf("%d", s.Epochs), pct(base.TestAcc))
	for _, b := range s.SweepBatches() {
		res, err := s.run(core.LARSWarmup, b, s.Epochs)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", b), "LARS",
			fmt.Sprintf("%.0f epochs", s.WarmupFor(b)),
			fmt.Sprintf("%d", s.Epochs), pct(res.TestAcc))
	}
	t.Note("Paper's Table 7 (AlexNet-BN): 58.3-58.5%% from B=512 through B=32K with LARS.")
	return t, nil
}

// Figure4 runs the measured per-epoch accuracy curves at a large batch,
// with and without LARS — the paper's Figure 4 (a)/(b).
func Figure4(s *Setup) (*Table, error) {
	batch := s.LargeBatch()
	lin, err := s.run(core.LinearScalingWarmup, batch, s.Epochs)
	if err != nil {
		return nil, err
	}
	lars, err := s.run(core.LARSWarmup, batch, s.Epochs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "Figure 4", Title: fmt.Sprintf("Test accuracy vs epoch at batch %d (measured)", batch),
		Header: []string{"epoch", "linear+warmup", "LARS+warmup"},
	}
	for e := 0; e < s.Epochs; e++ {
		linAcc, larsAcc := math.NaN(), math.NaN()
		if e < len(lin.History) {
			linAcc = lin.History[e].TestAcc
		}
		if e < len(lars.History) {
			larsAcc = lars.History[e].TestAcc
		}
		t.Add(fmt.Sprintf("%d", e), pct(linAcc), pct(larsAcc))
	}
	t.Note("Paper's Figure 4: without LARS the 16K/32K runs plateau ~10 points low; with LARS they track the baseline.")
	return t, nil
}

// Figure5and6 runs the fixed-budget curves: a small-batch baseline and a
// large LARS batch reach the same accuracy in the same number of epochs
// (Figure 5), and therefore in the same number of floating-point operations
// (Figure 6).
func Figure5and6(s *Setup) (*Table, error) {
	small, err := s.run(core.BaselineSGD, s.BaseBatch, s.Epochs)
	if err != nil {
		return nil, err
	}
	largeB := s.TrainSize / 4
	large, err := s.run(core.LARSWarmup, largeB, s.Epochs)
	if err != nil {
		return nil, err
	}
	spec := models.MicroAlexNetSpec(models.MicroConfig{
		Classes: s.Classes, InH: s.ImageSize, Width: s.Width,
	})
	flopsPerEpoch := float64(spec.TrainFLOPsPerImage()) * float64(s.TrainSize)
	t := &Table{
		ID: "Figures 5 & 6", Title: fmt.Sprintf("Accuracy vs epochs and vs flops (B=%d baseline, B=%d LARS)", s.BaseBatch, largeB),
		Header: []string{"epoch", "train GFLOPs", fmt.Sprintf("B=%d", s.BaseBatch), fmt.Sprintf("B=%d LARS", largeB)},
	}
	for e := 0; e < s.Epochs; e++ {
		sa, la := math.NaN(), math.NaN()
		if e < len(small.History) {
			sa = small.History[e].TestAcc
		}
		if e < len(large.History) {
			la = large.History[e].TestAcc
		}
		t.Add(fmt.Sprintf("%d", e), fmt.Sprintf("%.1f", float64(e+1)*flopsPerEpoch/1e9), pct(sa), pct(la))
	}
	t.Note("Fixed epochs = fixed flops: the large batch needs no extra operations to match the baseline (Figure 6).")
	return t, nil
}
