package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/models"
)

// simRow renders one simulated configuration against a paper wall-clock.
func simRow(t *Table, label string, est cluster.Estimate, paper string, accuracy string) {
	if est.OOM {
		t.Add(label, fmt.Sprintf("%d", est.Batch), accuracy, "OOM", paper)
		return
	}
	t.Add(label,
		fmt.Sprintf("%d", est.Batch),
		accuracy,
		fmtSeconds(est.TotalSec),
		paper)
}

func fmtSeconds(sec float64) string {
	switch {
	case sec >= 48*3600:
		return fmt.Sprintf("%.1fd", sec/86400)
	case sec >= 3600:
		h := int(sec / 3600)
		m := int(sec/60) - 60*h
		return fmt.Sprintf("%dh%02dm", h, m)
	case sec >= 60:
		return fmt.Sprintf("%.0fm", sec/60)
	default:
		return fmt.Sprintf("%.0fs", sec)
	}
}

// Table1 regenerates the state-of-the-art comparison: Akiba et al.'s 15
// minutes versus the paper's 14 minutes at 64 epochs, both at batch 32K.
func Table1() *Table {
	t := &Table{
		ID: "Table 1", Title: "State-of-the-art ImageNet training speed with ResNet-50",
		Header: []string{"work", "batch", "test accuracy", "simulated time", "paper time"},
	}
	resnet := models.ResNet50Spec()
	akiba := cluster.P100Cluster(1024)
	simRow(t, "Akiba et al. (1024 P100)", cluster.Simulate(akiba, resnet, 32768, 90, imageNetSize), "15m", "74.9%")
	ours := cluster.KNLCluster(2048)
	simRow(t, "You et al. 64 epochs (2048 KNL)", cluster.Simulate(ours, resnet, 32768, 64, imageNetSize), "14m", "74.9%")
	t.Note("Accuracies are the published values; times are this repo's calibrated simulator.")
	return t
}

// Table8 regenerates the AlexNet wall-clock table.
func Table8() *Table {
	t := &Table{
		ID: "Table 8", Title: "100-epoch ImageNet/AlexNet training time",
		Header: []string{"hardware", "batch", "paper top-1", "simulated time", "paper time"},
	}
	alex := models.AlexNetSpec()
	alexBN := models.AlexNetBNSpec()
	simRow(t, "8-core CPU + K20", cluster.Simulate(cluster.SingleDevice(cluster.TeslaK20), alex, 256, 100, imageNetSize), "144h", "58.7%")
	simRow(t, "DGX-1 station", cluster.Simulate(cluster.DGX1(), alex, 512, 100, imageNetSize), "6h10m", "58.8%")
	simRow(t, "DGX-1 station", cluster.Simulate(cluster.DGX1(), alex, 4096, 100, imageNetSize), "2h19m", "58.4%")
	simRow(t, "512 KNLs", cluster.Simulate(cluster.KNLCluster(512), alexBN, 32768, 100, imageNetSize), "24m", "58.5%")
	simRow(t, "1024 CPUs", cluster.Simulate(cluster.CPUCluster(1024), alexBN, 32768, 100, imageNetSize), "11m", "58.6%")
	t.Note("Batch 32K rows use the AlexNet-BN spec (LRN replaced by batch norm), as in the paper.")
	return t
}

// Table9 regenerates the ResNet-50 wall-clock table.
func Table9() *Table {
	t := &Table{
		ID: "Table 9", Title: "90-epoch ImageNet/ResNet-50 training time",
		Header: []string{"hardware", "batch", "paper top-1", "simulated time", "paper time"},
	}
	resnet := models.ResNet50Spec()
	rows := []struct {
		label string
		c     cluster.Cluster
		batch int
		ep    int
		acc   string
		paper string
	}{
		{"DGX-1 station", cluster.DGX1(), 256, 90, "73.0%", "21h"},
		{"16 KNLs", cluster.KNLCluster(16), 256, 90, "75.3%", "45h"},
		{"DGX-1 station", cluster.DGX1(), 8192, 90, "72.7%", "21h"},
		{"32 CPUs + 256 P100s", cluster.P100Cluster(256), 8192, 90, "75.3%", "1h"},
		{"1024 CPUs", cluster.CPUCluster(1024), 16384, 90, "75.3%", "52m"},
		{"1600 CPUs", cluster.CPUCluster(1600), 16000, 90, "75.3%", "31m"},
		{"512 KNLs", cluster.KNLCluster(512), 32768, 90, "75.4%", "1h"},
		{"1024 CPUs", cluster.CPUCluster(1024), 32768, 90, "75.4%", "48m"},
		{"2048 KNLs", cluster.KNLCluster(2048), 32768, 90, "75.4%", "20m"},
		{"2048 KNLs (64 epochs)", cluster.KNLCluster(2048), 32768, 64, "74.9%", "14m"},
	}
	for _, r := range rows {
		simRow(t, r.label, cluster.Simulate(r.c, resnet, r.batch, r.ep, imageNetSize), r.paper, r.acc)
	}
	t.Note("The B=8192 DGX-1 row runs via memory-driven micro-batching (gradient accumulation), as it must on 16GB devices.")
	return t
}

// Figure3 regenerates the single-device throughput-vs-batch curve.
func Figure3() *Table {
	t := &Table{
		ID: "Figure 3", Title: "AlexNet throughput vs per-device batch size (M40, simulated)",
		Header: []string{"batch/device", "images/sec", "status"},
	}
	curve := cluster.ThroughputCurve(cluster.TeslaM40, models.AlexNetSpec(),
		[]int{16, 32, 64, 128, 256, 512, 1024})
	for _, p := range curve {
		if p.OOM {
			t.Add(fmt.Sprintf("%d", p.Batch), "—", "out of memory")
		} else {
			t.Add(fmt.Sprintf("%d", p.Batch), fmt.Sprintf("%.0f", p.ImagesSec), "ok")
		}
	}
	t.Note("Throughput saturates with batch size and batch 1024 exceeds the 12GB card, matching Figure 3.")
	return t
}

// Figure7 regenerates the time-to-accuracy comparison: large batch trains
// much faster on the same hardware for the same epoch budget.
func Figure7() *Table {
	t := &Table{
		ID: "Figure 7", Title: "Time to 58% accuracy, AlexNet-BN on one DGX-1 (simulated)",
		Header: []string{"batch", "iterations", "iteration time", "total"},
	}
	alex := models.AlexNetSpec()
	for _, b := range []int{512, 4096} {
		est := cluster.Simulate(cluster.DGX1(), alex, b, 100, imageNetSize)
		t.Add(fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", est.Iterations),
			fmt.Sprintf("%.3fs", est.CompSec+est.CommSec),
			fmtSeconds(est.TotalSec))
	}
	t.Note("Paper: ~6h at batch 512 vs ~2h at batch 4096 — same flops, better device efficiency and less communication.")
	return t
}
