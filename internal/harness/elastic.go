package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
)

// elasticStudySteps is the study's step budget: two healthy steps, the
// death at step 2, two failed recoveries (EvictAfter = 2) closing step 3
// with the eviction, and two clean steps on the shrunken world.
const elasticStudySteps = 6

// ElasticityStudy drives the engine's elastic membership (dist.Config.
// Elastic) through a scripted preemption for one fleet per topology: a
// worker (for the hierarchy: a whole node) dies permanently at step 2, is
// evicted after two consecutive failed recoveries, the shards rebalance
// over the survivors, and training continues at the smaller world size. The
// table reports the steps-to-eviction, the world-size timeline, the
// per-step schedule at P versus the degraded world (cross-checked against
// comm.ExpectedStatsAt / comm.ExpectedDegradedTierStats), and the
// comm-bound throughput of both worlds on FDR InfiniBand. Everything is
// deterministic — exact schedule arithmetic on a seeded micro model — so
// the docs-drift job regenerates this section bit-identically alongside
// the analytic exhibits.
func ElasticityStudy() (*Table, error) {
	const workers, batch = 4, 64
	t := &Table{
		ID: "Elasticity study", Title: fmt.Sprintf("Evicting a dead worker and continuing on the survivors (P=%d, evict after 2 failed recoveries)", workers),
		Header: []string{"topology", "dead", "evicted at", "world timeline", "rounds @P", "rounds degraded", "model", "FDR img/s @P -> degraded"},
	}
	ds := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 64,
		C: 3, H: 8, W: 8, Noise: 0.25, MaxShift: 1, Seed: 7,
	})
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Train.MustGather(idx)
	factory := func(seed uint64) *nn.Network {
		return models.NewMLP(models.MicroConfig{Classes: 4, InC: 3, InH: 8, InW: 8, Width: 4, Seed: seed})
	}
	var payload int64

	hier := dist.NewHierarchy(2, 2)
	row := func(label string, topology *dist.Hierarchy, algo dist.Algorithm, dead map[int]int64, deadLabel string) error {
		replicas := make([]*nn.Network, workers)
		for i := range replicas {
			replicas[i] = factory(1 + uint64(i)*7919)
		}
		payload = int64(4 * replicas[0].NumParams())
		e := dist.NewEngine(dist.Config{
			Algo: algo, Topology: topology,
			Faults:  &dist.FaultPlan{Dead: dead},
			Elastic: &dist.Elastic{EvictAfter: 2},
		}, replicas)
		defer e.Close()
		evictStep := -1
		var healthy, degraded dist.CommStats
		var degradedTiers dist.TierStats
		for step := 0; step < elasticStudySteps; step++ {
			before := e.LiveWorkers()
			if _, err := e.ComputeGradient(x, labels); err != nil {
				return err
			}
			if err := e.BroadcastWeights(); err != nil {
				return err
			}
			if e.LiveWorkers() < before && evictStep < 0 {
				evictStep = step
			}
			switch step {
			case 1: // last clean full-strength step
				healthy = e.StepStats()
			case elasticStudySteps - 1: // clean step on the survivors
				degraded = e.StepStats()
				degradedTiers = e.StepTierStats()
			}
		}
		m := e.Membership()
		world := e.LiveWorkers()
		match := "exact"
		if topology != nil {
			sizes := make([]int, 0, 2)
			for n := 0; n < topology.Nodes; n++ {
				if size := world - n*topology.PerNode; size > 0 {
					if size > topology.PerNode {
						size = topology.PerNode
					}
					sizes = append(sizes, size)
				}
			}
			if want := comm.ExpectedDegradedTierStats(*topology, sizes, payload); degradedTiers != want {
				match = fmt.Sprintf("DRIFT: want %+v", want)
			}
		} else if want := comm.ExpectedStatsAt(algo, workers, workers-world, payload); degraded != want {
			match = fmt.Sprintf("DRIFT: want %+v", want)
		}
		fdr := func(s dist.CommStats) float64 {
			return float64(batch) / comm.MellanoxFDR.TimeFromStats(s) / 1e6
		}
		t.Add(label,
			deadLabel,
			fmt.Sprintf("step %d", evictStep),
			m.Timeline(),
			fmt.Sprintf("%d", healthy.Steps),
			fmt.Sprintf("%d", degraded.Steps),
			match,
			fmt.Sprintf("%.2fM -> %.2fM", fdr(healthy), fdr(degraded)))
		return nil
	}
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		if err := row(algo.String(), nil, algo, map[int]int64{3: 2}, "worker 3 @ step 2"); err != nil {
			return nil, err
		}
	}
	if err := row(hier.String(), &hier, dist.Tree, map[int]int64{2: 2, 3: 2}, "node 1 @ step 2"); err != nil {
		return nil, err
	}
	t.Note("A dead worker fails recovery for 2 consecutive steps and is evicted at the end of the second; the shard spans rebalance over the survivors (data.Spans) and the master re-broadcasts the weights, so every later step is bit-identical to a fresh run at the smaller world size (tested).")
	t.Note("The hierarchical row kills both workers of node 1: the drained node leaves the inter tier, so the degraded schedule is a single node's intra ring with no leader exchange.")
	t.Note("The model column cross-checks the degraded step against comm.ExpectedStatsAt (flat) / comm.ExpectedDegradedTierStats (hierarchical); \"exact\" means every counter matches.")
	t.Note("FDR column: comm-bound millions of images/sec (batch %d over the alpha-beta step time) before the death and after the eviction — the surviving fleet's smaller collective claws back some of the lost capacity.", batch)
	return t, nil
}
