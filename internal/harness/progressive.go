package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
)

// ProgressiveResolutionStudy measures the ENTR hypothesis end to end on the
// synthetic task: train the GAP-headed micro conv net at a fixed native
// resolution and under a progressive schedule that spends the early epochs
// at reduced-area inputs, then compare time-to-accuracy. For each
// schedule it (a) verifies the dynamic-shape identity contract — a run that
// switches resolution mid-training must reproduce the P=1 trajectory
// bit-identically at P=4 flat, P=4 hierarchical and P=4 overlapped with a
// pinned shard split — (b) trains to completion at P=4 and reports accuracy
// and measured wall clock, and (c) prices the same curriculum analytically
// with cluster.SimulateProgressive, whose per-phase FLOP curve comes from
// the spec replayed at each phase resolution (models.ModelSpec.At). A
// negative control confirms the progressive trajectory differs bitwise from
// the fixed one — without it the identity column could pass with the
// schedule dead.
//
// Identity cells are exact reproducible arithmetic; the wall cells are
// measured, so the table is Volatile (docs-drift compares its
// digit-normalized shape).
func ProgressiveResolutionStudy() (*Table, error) {
	t := &Table{
		ID:       "ProgressiveResolution study",
		Title:    "Progressive-resolution training: dynamic input shapes end to end (P=4, micro conv net)",
		Header:   []string{"schedule", "identity (P, topology)", "test acc", "final loss", "train wall", "train flops/img by phase", "analytic wall", "analytic flop savings"},
		Volatile: true,
	}
	ds := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 128,
		C: 3, H: 24, W: 24, Noise: 0.25, MaxShift: 1, Seed: 7,
	})
	spec := models.MicroConvNetSpec(models.MicroConfig{Classes: 4, InC: 3, InH: 24, InW: 24, Width: 4})
	const epochs, batch = 10, 64

	rows := []struct {
		label, schedule string
		// identitySchedule is a short variant whose resolution switch lands
		// inside the 3-epoch identity runs.
		identitySchedule string
	}{
		{"fixed 24x24", "24x24", "24x24"},
		{"progressive 16→24", "16x16@0-3,24x24@4+", "16x16@0-0,24x24@1+"},
	}
	var trajectories [2][]float64
	for i, row := range rows {
		sched, err := data.ParseResolutionSchedule(row.schedule)
		if err != nil {
			return nil, err
		}
		identity, err := progressiveIdentity(row.identitySchedule, ds)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		res, err := core.Train(core.Config{
			Model: progressiveNet, Workers: 4, Resolutions: sched,
			Batch: batch, Epochs: epochs, Method: core.BaselineSGD,
			BaseLR: 0.1, Seed: 1,
		}, ds)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		trajectories[i] = make([]float64, len(res.History))
		for e, h := range res.History {
			trajectories[i][e] = h.TrainLoss
		}

		est := cluster.SimulateProgressive(cluster.KNLCluster(4), spec, batch, epochs, ds.Train.Len(), sched)
		var phases []string
		for _, p := range est.Phases {
			phases = append(phases, fmt.Sprintf("%dx%d: %.2fM", p.H, p.W, float64(p.TrainFLOPsPerImage)/1e6))
		}
		t.Add(row.label, identity,
			fmt.Sprintf("%.3f", res.TestAcc),
			fmt.Sprintf("%.4f", res.FinalLoss),
			fmt.Sprintf("%.2fs", wall.Seconds()),
			strings.Join(phases, ", "),
			fmt.Sprintf("%.2fms", est.TotalSec*1e3),
			fmt.Sprintf("%.1f%%", est.FLOPSavingsPct()))
	}

	// Negative control: the curriculum must not share the fixed trajectory.
	same := len(trajectories[0]) == len(trajectories[1])
	if same {
		for e := range trajectories[0] {
			if trajectories[0][e] != trajectories[1][e] {
				same = false
				break
			}
		}
	}
	if same {
		return nil, fmt.Errorf("harness: progressive trajectory is bit-identical to fixed — the resolution schedule is not reaching the trainer")
	}

	entrSched, err := data.ParseResolutionSchedule("112x112@0-29,224x224@30+")
	if err != nil {
		return nil, err
	}
	entr := cluster.SimulateProgressive(cluster.DGXPod(4), models.ResNet50Spec(), 2048, 90, 1281167, entrSched)
	t.Note("Identity column is exact: a 3-epoch run whose input resolution switches mid-training (16x16 for epoch 0, native 24x24 after) must reproduce the P=1 loss trajectory bitwise at P=4 flat, P=4 hierarchical (2x2) and P=4 overlapped (pinned Shards=4). Every replica derives the epoch's (h,w) from the same schedule and batches are resized with the deterministic area/bilinear kernel before dispatch, so decomposition stays invisible while shapes change. A negative control confirms progressive ≠ fixed bitwise.")
	t.Note("Time-to-accuracy is the ENTR claim: early epochs at reduced-area inputs cost proportionally fewer per-image FLOPs (the phase column replays the spec at each resolution — conv cost scales with the output area, GAP head so |W| never changes), so the curriculum — the first four of ten epochs at 16x16, 4/9 of the native area, mirroring ENTR's 112x112 opening third — should approach the fixed run's accuracy in less wall time. Downscale gently: a 12x12 opening (quarter area) overfits scale-specific features that do not survive the switch on this micro task.")
	t.Note("Analytic columns price the same schedules with cluster.SimulateProgressive (communication stays at the canonical weight volume; compute is repriced per phase). At paper scale the curriculum 112x112@0-29,224x224@30+ on ResNet-50 (DGX pod of 4, B=2048, 90 epochs) prices %.0f%% faster than fixed 224x224 with %.0f%% of the training FLOPs avoided.", entr.SpeedupPct(), entr.FLOPSavingsPct())
	return t, nil
}

// progressiveNet builds the GAP-headed all-conv micro model the study
// trains: its parameter count is resolution-invariant (the schedule's
// precondition), and it has no batch norm or dropout, so cross-P
// bit-identity is attainable.
func progressiveNet(seed uint64) *nn.Network {
	return models.NewMicroConvNet(models.MicroConfig{
		Classes: 4, InC: 3, InH: 24, InW: 24, Width: 4, Seed: seed,
	})
}

// progressiveIdentity runs the dynamic-shape determinism contract for one
// schedule: the 3-epoch trajectory at P=1 must reproduce bitwise across
// P=4 decompositions even when the resolution switches between epochs.
func progressiveIdentity(schedule string, ds *data.Synth) (string, error) {
	sched, err := data.ParseResolutionSchedule(schedule)
	if err != nil {
		return "", err
	}
	hier := dist.NewHierarchy(2, 2)
	run := func(workers int, topology *dist.Hierarchy, bucket int, overlap bool) ([]float64, error) {
		res, err := core.Train(core.Config{
			Model: progressiveNet, Workers: workers, Shards: 4,
			Algo: dist.Ring, Topology: topology, Bucket: bucket, Overlap: overlap,
			Resolutions: sched,
			Batch:       64, Epochs: 3, Method: core.BaselineSGD, BaseLR: 0.1, Seed: 9,
		}, ds)
		if err != nil {
			return nil, err
		}
		traj := make([]float64, len(res.History))
		for i, h := range res.History {
			traj[i] = h.TrainLoss
		}
		return traj, nil
	}
	ref, err := run(1, nil, 0, false)
	if err != nil {
		return "", err
	}
	for _, tc := range []struct {
		label   string
		workers int
		topo    *dist.Hierarchy
		bucket  int
		overlap bool
	}{
		{"P=4 flat", 4, nil, 0, false},
		{"P=4 hier", 4, &hier, 0, false},
		{"P=4 overlap", 4, nil, 33, true},
	} {
		got, err := run(tc.workers, tc.topo, tc.bucket, tc.overlap)
		if err != nil {
			return "", err
		}
		for e := range ref {
			if got[e] != ref[e] {
				return fmt.Sprintf("DRIFT at %s epoch %d", tc.label, e), nil
			}
		}
	}
	return "exact", nil
}
