package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/nn"
)

// AllreduceStudy drives the real synchronous engine — shard forward/
// backward, gradient allreduce, weight broadcast — for one training step
// under each topology and tabulates the observed per-step CommStats next
// to internal/comm's closed-form schedule and its alpha-beta price on FDR
// InfiniBand. It is the measured companion of Table 11 and Figure 9: the
// counters the analytic exhibits model, recorded from execution.
func AllreduceStudy(s *Setup, workers int) (*Table, error) {
	if workers <= 0 {
		workers = 4
	}
	t := &Table{
		ID: "Allreduce study", Title: fmt.Sprintf("One measured engine step per topology (P=%d, micro-AlexNet)", workers),
		Header: []string{"algorithm", "messages", "payload MB", "latency rounds", "model msgs", "model rounds", "FDR time"},
	}
	ds := s.Dataset()
	idx := make([]int, min(256, ds.Train.Len()))
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Train.MustGather(idx)
	newReplicas := func() []*nn.Network {
		replicas := make([]*nn.Network, workers)
		for i := range replicas {
			replicas[i] = s.Factory()(s.Seed + uint64(i)*7919)
		}
		return replicas
	}
	row := func(label string, step dist.CommStats, modelMsgs, modelSteps int64, sec float64) {
		t.Add(label,
			fmt.Sprintf("%d", step.Messages),
			fmt.Sprintf("%.2f", float64(step.Bytes)/1e6),
			fmt.Sprintf("%d", step.Steps),
			fmt.Sprintf("%d", modelMsgs),
			fmt.Sprintf("%d", modelSteps),
			fmt.Sprintf("%.2fms", 1e3*sec))
	}
	var weightBytes int64
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		replicas := newReplicas()
		weightBytes = int64(4 * replicas[0].NumParams())
		e := dist.NewEngine(dist.Config{Algo: algo}, replicas)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			e.Close()
			return nil, err
		}
		if err := e.BroadcastWeights(); err != nil {
			e.Close()
			return nil, err
		}
		step := e.StepStats()
		e.Close()
		model := comm.ExpectedStats(algo, workers, weightBytes)
		row(algo.String(), step, model.Messages, model.Steps, comm.MellanoxFDR.TimeFromStats(step))
	}
	if workers >= 4 && workers%2 == 0 {
		// The composed two-tier schedule over the same workers: ring
		// inside each of two nodes, tree across the node leaders. The
		// reduced values are bit-identical to the flat rows (tested);
		// only the accounting splits by fabric.
		h := dist.NewHierarchy(2, workers/2)
		e := dist.NewEngine(dist.Config{Topology: &h}, newReplicas())
		if _, err := e.ComputeGradient(x, labels); err != nil {
			e.Close()
			return nil, err
		}
		if err := e.BroadcastWeights(); err != nil {
			e.Close()
			return nil, err
		}
		tiers := e.StepTierStats()
		e.Close()
		model := comm.ExpectedTierStats(h, weightBytes)
		row(fmt.Sprintf("%v intra", h), tiers.Intra, model.Intra.Messages, model.Intra.Steps,
			comm.MellanoxFDR.TimeFromStats(tiers.Intra))
		row(fmt.Sprintf("%v inter", h), tiers.Inter, model.Inter.Messages, model.Inter.Steps,
			comm.MellanoxFDR.TimeFromStats(tiers.Inter))
		total := tiers.Total()
		mt := model.Total()
		row(fmt.Sprintf("%v total", h), total, mt.Messages, mt.Steps, comm.MellanoxFDR.TimeFromStats(total))
	}
	t.Note("Observed counters come from the executed schedule (internal/dist); the model columns are comm.ExpectedStats / comm.ExpectedTierStats closed forms.")
	t.Note("Ring trades P× more (small) messages for per-link payloads 1/P the size — the bandwidth optimality of Table 2's systems.")
	t.Note("Hierarchical rows split one composed allreduce by fabric tier; on real clusters the intra tier rides a faster local fabric (NVLink/on-node), which is the point of the split — the FDR column prices both tiers on one fabric only for comparability.")
	return t, nil
}
