package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/nn"
)

// AllreduceStudy drives the real synchronous engine — shard forward/
// backward, gradient allreduce, weight broadcast — for one training step
// under each topology and tabulates the observed per-step CommStats next
// to internal/comm's closed-form schedule and its alpha-beta price on FDR
// InfiniBand. It is the measured companion of Table 11 and Figure 9: the
// counters the analytic exhibits model, recorded from execution.
func AllreduceStudy(s *Setup, workers int) (*Table, error) {
	if workers <= 0 {
		workers = 4
	}
	t := &Table{
		ID: "Allreduce study", Title: fmt.Sprintf("One measured engine step per topology (P=%d, micro-AlexNet)", workers),
		Header: []string{"algorithm", "messages", "payload MB", "latency rounds", "model msgs", "model rounds", "FDR time"},
	}
	ds := s.Dataset()
	idx := make([]int, min(256, ds.Train.Len()))
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Train.Gather(idx)
	var weightBytes int64
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		replicas := make([]*nn.Network, workers)
		for i := range replicas {
			replicas[i] = s.Factory()(s.Seed + uint64(i)*7919)
		}
		weightBytes = int64(4 * replicas[0].NumParams())
		e := dist.NewEngine(dist.Config{Algo: algo}, replicas)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			e.Close()
			return nil, err
		}
		e.BroadcastWeights()
		step := e.StepStats()
		e.Close()
		model := comm.ExpectedStats(algo, workers, weightBytes)
		t.Add(algo.String(),
			fmt.Sprintf("%d", step.Messages),
			fmt.Sprintf("%.2f", float64(step.Bytes)/1e6),
			fmt.Sprintf("%d", step.Steps),
			fmt.Sprintf("%d", model.Messages),
			fmt.Sprintf("%d", model.Steps),
			fmt.Sprintf("%.2fms", 1e3*comm.MellanoxFDR.TimeFromStats(step)))
	}
	t.Note("Observed counters come from the executed schedule (internal/dist); the model columns are comm.ExpectedStats' closed forms.")
	t.Note("Ring trades P× more (small) messages for per-link payloads 1/P the size — the bandwidth optimality of Table 2's systems.")
	return t, nil
}
