package harness

import (
	"fmt"
	"math"

	"repro/internal/async"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
)

// LocalSGDStudy places the engine on the synchronization spectrum the
// SyncEvery knob opens up: fully synchronous SGD at one end (every step a
// weight-coherent allreduce), local SGD in the middle (H private optimizer
// steps between weight averages, communication scaled by exactly 1/H),
// hierarchical local SGD (cheap intra-node averages between rare full
// rounds), and Downpour-style asynchronous SGD at the far end (no
// collective at all, staleness instead of drift). Every row trains the
// same seeded micro task for the same step budget; the table reports the
// measured communication volume against the closed form
// (comm.ExpectedLocalSGDStats / ExpectedLocalSGDTierStats — "exact" means
// counter-for-counter equality), the volume ratio against the synchronous
// baseline, the final training loss and test accuracy, and the L2 distance
// of the final weights from the synchronous run's — the divergence-vs-H
// tradeoff the communication savings buy. Deterministic end to end (the
// async simulator runs on a virtual clock), so the docs-drift job
// regenerates this section bit-identically.
func LocalSGDStudy() (*Table, error) {
	const workers, batch, epochs = 4, 64, 2
	t := &Table{
		ID:     "LocalSGD study",
		Title:  fmt.Sprintf("The synchronous <-> local <-> asynchronous spectrum (P=%d, B=%d, %d epochs)", workers, batch, epochs),
		Header: []string{"mode", "comm bytes", "vs sync", "closed form", "sync rounds", "final loss", "test acc", "||w - w_sync||"},
	}
	ds := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 64,
		C: 3, H: 8, W: 8, Noise: 0.25, MaxShift: 1, Seed: 7,
	})

	// Capture each run's first-built replica: core.Train's replica 0 is the
	// master (and at window-closing step counts every replica agrees with
	// it); async.Train's first factory call builds the parameter server.
	capturing := func(first **nn.Network) func(uint64) *nn.Network {
		return func(seed uint64) *nn.Network {
			net := models.NewMLP(models.MicroConfig{Classes: 4, InC: 3, InH: 8, InW: 8, Width: 4, Seed: seed})
			if *first == nil {
				*first = net
			}
			return net
		}
	}
	flat := func(net *nn.Network) []float32 {
		var out []float32
		for _, p := range net.Params() {
			out = append(out, p.W.Data...)
		}
		return out
	}
	l2 := func(a, b []float32) float64 {
		var sum float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			sum += d * d
		}
		return math.Sqrt(sum)
	}

	baseCfg := func(first **nn.Network) core.Config {
		return core.Config{
			Model: capturing(first), Workers: workers, Algo: dist.Ring,
			Batch: batch, Epochs: epochs, Method: core.BaselineSGD,
			BaseLR: 0.1, Seed: 11,
		}
	}

	// Synchronous baseline: the reference weights and communication volume.
	var syncNet *nn.Network
	syncRes, err := core.Train(baseCfg(&syncNet), ds)
	if err != nil {
		return nil, err
	}
	syncW := flat(syncNet)
	steps := syncRes.Iterations
	nelems := 0
	for _, p := range syncNet.Params() {
		nelems += p.Numel()
	}
	// Every run pays one construction broadcast before step 0; the closed
	// forms price the steps, so add it on their side of the comparison.
	initFlat := dist.BroadcastSchedule(dist.Ring, workers, 4*int64(nelems))
	initHier := func(h dist.Hierarchy) dist.TierStats {
		return dist.HierBroadcastSchedule(h, 4*int64(nelems))
	}

	addRow := func(label string, res *core.Result, want dist.CommStats, w []float32) {
		match := "exact"
		if res.Comm != want {
			match = fmt.Sprintf("DRIFT: want %+v", want)
		}
		rounds := res.LocalSGD.SyncRounds
		if res.LocalSGD.LocalSteps == 0 {
			rounds = res.Iterations // synchronous: every step is a round
		}
		t.Add(label,
			fmt.Sprintf("%d", res.Comm.Bytes),
			fmt.Sprintf("%.3f", float64(res.Comm.Bytes)/float64(syncRes.Comm.Bytes)),
			match,
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%.4f", res.FinalLoss),
			fmt.Sprintf("%.3f", res.TestAcc),
			fmt.Sprintf("%.4f", l2(w, syncW)))
	}

	syncWant := comm.ExpectedLocalSGDStats(dist.Ring, workers, 1, steps, nelems, 0, nil)
	syncWant.Add(initFlat)
	addRow("sync (H=1)", syncRes, syncWant, syncW)

	// Local SGD at increasing synchronization periods.
	for _, h := range []int{2, 4, 8} {
		var net *nn.Network
		cfg := baseCfg(&net)
		cfg.SyncEvery = h
		res, err := core.Train(cfg, ds)
		if err != nil {
			return nil, err
		}
		want := comm.ExpectedLocalSGDStats(dist.Ring, workers, h, steps, nelems, 0, nil)
		want.Add(initFlat)
		addRow(fmt.Sprintf("local (H=%d)", h), res, want, flat(net))
	}

	// Hierarchical local SGD: rare full rounds, cheap intra-node averages
	// in between; the closed-form check runs per tier.
	hier := dist.NewHierarchy(2, 2)
	var hierNet *nn.Network
	hierCfg := baseCfg(&hierNet)
	hierCfg.Topology = &hier
	hierCfg.SyncEvery = 8
	hierCfg.IntraSyncEvery = 2
	hierRes, err := core.Train(hierCfg, ds)
	if err != nil {
		return nil, err
	}
	wantTiers := comm.ExpectedLocalSGDTierStats(hier, 8, 2, steps, nelems, 0, nil)
	wantTiers.Add(initHier(hier))
	match := "exact"
	if hierRes.TierComm != wantTiers {
		match = fmt.Sprintf("DRIFT: want %+v", wantTiers)
	}
	t.Add("hier local (H=8, Hi=2)",
		fmt.Sprintf("%d", hierRes.Comm.Bytes),
		fmt.Sprintf("%.3f", float64(hierRes.Comm.Bytes)/float64(syncRes.Comm.Bytes)),
		match,
		fmt.Sprintf("%d+%di", hierRes.LocalSGD.SyncRounds, hierRes.LocalSGD.IntraRounds),
		fmt.Sprintf("%.4f", hierRes.FinalLoss),
		fmt.Sprintf("%.3f", hierRes.TestAcc),
		fmt.Sprintf("%.4f", l2(flat(hierNet), syncW)))

	// The far end of the spectrum: Downpour-style async, same number of
	// server updates as the others took steps, no collective at all. Its
	// traffic is point-to-point — one gradient push plus one weight pull
	// per update, priced analytically (the simulator moves no bytes).
	var asyncNet *nn.Network
	asyncRes, err := async.Train(async.Config{
		Model: capturing(&asyncNet), Workers: workers, Batch: batch,
		Updates: int(steps), BaseLR: 0.1, Momentum: 0.9, Seed: 11,
	}, ds)
	if err != nil {
		return nil, err
	}
	asyncBytes := steps * 2 * 4 * int64(nelems)
	t.Add("async (Downpour)",
		fmt.Sprintf("%d", asyncBytes),
		fmt.Sprintf("%.3f", float64(asyncBytes)/float64(syncRes.Comm.Bytes)),
		"modeled",
		"0",
		fmt.Sprintf("%.4f", asyncRes.FinalLoss),
		fmt.Sprintf("%.3f", asyncRes.TestAcc),
		fmt.Sprintf("%.4f", l2(flat(asyncNet), syncW)))

	t.Note("comm bytes include the one-time construction broadcast; the closed forms add it before comparing.")
	t.Note("||w - w_sync|| is the L2 distance of the final weights from the synchronous run's — the drift the 1/H communication savings buy. %d steps, so every H divides the run and the last step closes its window.", steps)
	t.Note("async staleness: mean %.2f, max %d — the async row trades the drift column for staleness.", asyncRes.MeanStaleness, asyncRes.MaxStaleness)
	return t, nil
}
