package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/models"
)

// AutoscaleStudy replays one deterministic day-shaped traffic trace — idle,
// a surge to 1.5x the starting fleet's capacity with a spot preemption in
// the middle, then a quiet tail — through cluster.SimulateAutoscale under
// several control laws, against the static-Max fleet as the cost baseline.
// The table reports each policy's world-size timeline, its membership churn
// (joins, evictions, how many were involuntary), its reaction time in
// trace intervals, the worst backlog it let build, and the dollar bill
// against the baseline. The model column cross-checks every phase's
// closed-form schedule (comm.ExpectedStatsAt with evicted running negative
// at grown worlds) — the same identity the engine's measured counters
// satisfy after joins. Everything is exact arithmetic on a fixed trace, so
// the docs-drift job regenerates this section bit-identically.
func AutoscaleStudy() (*Table, error) {
	const (
		batch       = 1024
		intervalSec = 60
		datasetSize = 1_281_167
		usdPerHour  = 3.0
	)
	c := cluster.KNLCluster(4)
	spec := models.ResNet50Spec()
	base := cluster.Simulate(c, spec, batch, 1, datasetSize)

	// The trace: 4 idle intervals at 30% of the starting fleet's capacity,
	// 8 surge intervals at 150% (one device preempted mid-surge), then 8
	// quiet intervals back at 30%.
	var trace []cluster.TrafficPoint
	for i := 0; i < 20; i++ {
		tp := cluster.TrafficPoint{OfferedImagesSec: 0.3 * base.ImagesSec}
		if i >= 4 && i < 12 {
			tp.OfferedImagesSec = 1.5 * base.ImagesSec
		}
		if i == 8 {
			tp.Preemptions = 1
		}
		trace = append(trace, tp)
	}

	t := &Table{
		ID: "Autoscale study",
		Title: fmt.Sprintf("Autoscaling a %d-device %s fleet through a surge+preemption trace (ResNet-50, B=%d, %ds intervals)",
			c.Count, c.Machine.Name, batch, intervalSec),
		Header: []string{"policy", "world timeline", "joins", "evicted (preempted)", "react (ivals)", "max backlog", "USD", "vs static", "model"},
	}
	policies := []struct {
		label string
		pol   cluster.AutoscalePolicy
	}{
		{"max, no control law", cluster.AutoscalePolicy{Min: 8, Max: 8, USDPerDeviceHour: usdPerHour}},
		{"util 0.8", cluster.AutoscalePolicy{Min: 2, Max: 8, TargetUtilization: 0.8, USDPerDeviceHour: usdPerHour}},
		{"util 0.8, cooldown 2", cluster.AutoscalePolicy{Min: 2, Max: 8, TargetUtilization: 0.8, CooldownIntervals: 2, USDPerDeviceHour: usdPerHour}},
		{"backlog 30s", cluster.AutoscalePolicy{Min: 2, Max: 8, MaxBacklogSec: 30, USDPerDeviceHour: usdPerHour}},
	}
	for _, p := range policies {
		est := cluster.SimulateAutoscale(c, spec, batch, intervalSec, trace, p.pol)
		match := "exact"
		maxBacklog := 0.0
		for _, ph := range est.Phases {
			if want := comm.ExpectedStatsAt(c.Algo, c.Count, c.Count-ph.Devices, spec.WeightBytes()); ph.Comm != want {
				match = fmt.Sprintf("DRIFT @%d: want %+v", ph.Interval, want)
			}
			if ph.BacklogSec > maxBacklog {
				maxBacklog = ph.BacklogSec
			}
		}
		react := "-"
		if est.ReactionIntervals > 0 || est.Joins > 0 {
			react = fmt.Sprintf("%.1f", est.ReactionIntervals)
		}
		t.Add(p.label,
			est.Timeline,
			fmt.Sprintf("%d", est.Joins),
			fmt.Sprintf("%d (%d)", est.Evictions, est.Preempted),
			react,
			fmt.Sprintf("%.0fs", maxBacklog),
			fmt.Sprintf("$%.2f", est.TotalUSD),
			fmt.Sprintf("%+.0f%%", -est.SavingsPct()),
			match)
	}
	t.Note("Capacity at every world size is the same per-iteration phase pricing SimulateElastic uses (efficiency curve + alpha-beta collective), so growing from %d devices buys sublinear throughput — the collective's cost grows with the world.", c.Count)
	t.Note("The first row pins Min = Max with no scaling rule: the preempted device is never replaced, so even a \"static\" fleet needs the control plane to hold its size — and it still runs 8%% under the static-Max bill it is benchmarked against.")
	t.Note("The preemption at interval 8 lands mid-surge: the utilization policies replace the lost device at the next decision, the cluster-scale mirror of the engine's evict-then-join grid (tested bit-identical there).")
	t.Note("The model column replays every interval against comm.ExpectedStatsAt at that world — evicted runs negative once the fleet grows past its starting size — and \"exact\" means every counter matches.")
	t.Note("vs static: dollar cost relative to pinning Max devices for the whole trace; the gap is what the control plane is worth on this trace.")
	return t, nil
}
