package harness

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/kernel"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// HotLoopStudy profiles the training hot loop under both reduction
// policies: for each of CanonicalF64 and PairwiseF32 it (a) verifies the
// policy's determinism contract for real — one engine step at P=2 vs P=4
// (pinned shards) and flat vs hierarchical must reduce bit-identically —
// and (b) measures the raw reduction kernel's throughput plus a profiled
// engine step's phase shares (gemm/im2col/convert/reduce/codec/other, which sum
// exactly to the step wall time by the profiler's construction).
//
// The table's *shape* is deterministic — fixed rows, fixed columns, and
// the identity column is exact schedule/value arithmetic — while the
// throughput and share cells are measured timings, so the table is marked
// Volatile: the docs-drift job compares its digit-normalized shape rather
// than exact bytes.
func HotLoopStudy() (*Table, error) {
	const workers = 4
	t := &Table{
		ID:       "HotLoop study",
		Title:    fmt.Sprintf("Reduction policies and per-step phase profile (P=%d, micro-AlexNet)", workers),
		Header:   []string{"reduction", "identity (P, topology)", "reduce GB/s", "step wall", "gemm", "im2col", "convert", "reduce", "codec", "other"},
		Volatile: true,
	}
	ds := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 64,
		C: 3, H: 16, W: 16, Noise: 0.25, MaxShift: 1, Seed: 7,
	})
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Train.MustGather(idx)
	factory := func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 4, InH: 16, Width: 4, Seed: seed})
	}

	for _, policy := range []dist.Reduction{dist.CanonicalF64, dist.PairwiseF32} {
		identity, err := reductionIdentity(policy, x, labels)
		if err != nil {
			return nil, err
		}
		gbps := reduceThroughput(policy)
		prof, err := profiledStep(policy, x, labels, factory)
		if err != nil {
			return nil, err
		}
		pct := func(ns int64) string { return fmt.Sprintf("%.1f%%", 100*prof.Share(ns)) }
		t.Add(policy.String(), identity,
			fmt.Sprintf("%.2f", gbps),
			fmt.Sprintf("%.1fms", float64(prof.WallNS)/1e6),
			pct(prof.GemmNS), pct(prof.Im2colNS), pct(prof.ConvertNS), pct(prof.ReduceNS), pct(prof.CodecNS), pct(prof.OtherNS))
	}
	t.Note("Identity column is exact (dropout-free MLP, Shards pinned to 4): one engine step at P=2, P=4 and flat-vs-hierarchical P=4 must produce bitwise-equal reduced gradients under the policy — the fixed-tree pairwise kernel keeps this true in float32 because its tree shape depends only on the live shard count.")
	t.Note("Reduce GB/s times the bare summation kernel (8 shards x 1M coords, input bytes/sec): the pairwise-f32 kernel's unrolled multi-accumulator float32 loops beat the canonical float64 chain — the ROADMAP's \"vectorizable f32 pairwise summation\" item.")
	t.Note("Phase columns come from one profiled engine step (dist.ProfileStats): exclusive attribution guarantees the six shares sum to the step wall (convert is zero here: float32 operands never pack through binary16). GEMM dominating is Table 6's scaling-ratio story measured from execution; the reduce share is what the policy column shrinks.")
	return t, nil
}

// reductionIdentity runs the policy's determinism contract and reports
// "exact" only if every configuration reduces to the same bits. The model
// is the dropout-free MLP: dropout masks are drawn from each replica's own
// RNG, so they — not the reduction — would break cross-P identity (the
// same modeling choice the engine's bit-identity tests make).
func reductionIdentity(policy dist.Reduction, x *tensor.Tensor, labels []int) (string, error) {
	factory := func(seed uint64) *nn.Network {
		return models.NewMLP(models.MicroConfig{Classes: 4, InC: 3, InH: 16, InW: 16, Width: 4, Seed: seed})
	}
	hier := dist.NewHierarchy(2, 2)
	ref, err := reducedGrad(dist.Config{Algo: dist.Ring, Shards: 4, Reduction: policy}, 2, x, labels, factory)
	if err != nil {
		return "", err
	}
	for _, cfg := range []struct {
		label   string
		workers int
		cfg     dist.Config
	}{
		{"P=4 ring", 4, dist.Config{Algo: dist.Ring, Shards: 4, Reduction: policy}},
		{"P=4 hier", 4, dist.Config{Topology: &hier, Shards: 4, Reduction: policy}},
	} {
		got, err := reducedGrad(cfg.cfg, cfg.workers, x, labels, factory)
		if err != nil {
			return "", err
		}
		for i := range got {
			if got[i] != ref[i] {
				return fmt.Sprintf("DRIFT at %s coord %d", cfg.label, i), nil
			}
		}
	}
	return "exact", nil
}

// reducedGrad runs one engine step and returns the master's flat gradient.
func reducedGrad(cfg dist.Config, workers int, x *tensor.Tensor, labels []int, factory func(uint64) *nn.Network) ([]float32, error) {
	replicas := make([]*nn.Network, workers)
	for i := range replicas {
		replicas[i] = factory(1 + uint64(i)*7919)
	}
	e := dist.NewEngine(cfg, replicas)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		return nil, err
	}
	var out []float32
	for _, p := range e.Master().Params() {
		out = append(out, p.G.Data...)
	}
	return out, nil
}

// reduceThroughput times the bare summation kernel of one policy over an
// 8-shard, 1M-coordinate buffer set and returns input GB/s.
func reduceThroughput(policy dist.Reduction) float64 {
	const shards, n, iters = 8, 1 << 20, 6
	r := rng.New(1)
	srcs := make([][]float32, shards)
	for s := range srcs {
		srcs[s] = make([]float32, n)
		for i := range srcs[s] {
			srcs[s][i] = r.NormFloat32()
		}
	}
	dst := make([]float32, n)
	run := func() {
		if policy == dist.PairwiseF32 {
			kernel.PairwiseAccumulate(dst, srcs, nil)
		} else {
			kernel.CanonicalAccumulate(dst, srcs, nil)
		}
	}
	run() // warm the scratch pools
	start := time.Now()
	for i := 0; i < iters; i++ {
		run()
	}
	sec := time.Since(start).Seconds()
	return float64(iters) * float64(shards) * float64(4*n) / sec / 1e9
}

// profiledStep runs one profiled engine step (gradient + weight broadcast,
// fp16 codec so every phase is populated) and returns its phase profile.
func profiledStep(policy dist.Reduction, x *tensor.Tensor, labels []int, factory func(uint64) *nn.Network) (dist.ProfileStats, error) {
	replicas := make([]*nn.Network, 4)
	for i := range replicas {
		replicas[i] = factory(1 + uint64(i)*7919)
	}
	e := dist.NewEngine(dist.Config{
		Algo: dist.Ring, Reduction: policy, Codec: dist.FP16Codec{}, Profile: true,
	}, replicas)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		return dist.ProfileStats{}, err
	}
	if err := e.BroadcastWeights(); err != nil {
		return dist.ProfileStats{}, err
	}
	prof := e.StepProfile()
	if prof.Accounted() != prof.WallNS {
		return dist.ProfileStats{}, fmt.Errorf("harness: profile shares (%d ns) do not sum to step wall (%d ns)", prof.Accounted(), prof.WallNS)
	}
	return prof, nil
}
