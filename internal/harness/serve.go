package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/models"
	"repro/internal/serve"
)

// ServeStudy drives the dynamic-batching inference tier across its regimes
// on the virtual clock: uniform arrivals at three batch windows
// (cross-checked counter-for-counter against comm.ExpectedServeStats),
// seeded Poisson and bursty traffic, and an overload scenario where the
// bounded queue rejects with ErrOverloaded instead of melting down. Two
// in-study controls guard the exhibit: a negative control perturbs
// MaxDelay by one tick across the batch-size boundary and must be detected
// by the analytic twin, and every row is re-run at a different replica
// count and must reproduce its stats exactly (batch formation is
// replica-invariant; latency is too under the capacity condition). The
// final rows size a P100 fleet with cluster.SimulateServe.
//
// Everything is exact integer arithmetic over the virtual clock — no wall
// time anywhere — so the docs-drift job regenerates this section
// bit-identically alongside the analytic exhibits.
func ServeStudy() (*Table, error) {
	t := &Table{
		ID:     "Serve study",
		Title:  "Dynamic-batching inference: measured scheduler vs closed form (service S(b) = 100 + 25b µs)",
		Header: []string{"trace", "rate req/s", "K", "D µs", "R", "cap", "batches (size/deadline)", "mean b", "rejected", "p50 µs", "p99 µs", "model"},
	}
	svc := serve.ServiceModel{Base: 100, PerImage: 25}
	const n = 4000

	type scenario struct {
		label string
		cfg   serve.Config
		trace serve.Trace
		gap   serve.Ticks // > 0 marks the deterministic-clock regime
	}
	scenarios := []scenario{
		{"uniform/size-limited", serve.Config{MaxBatch: 8, MaxDelay: 2000, Replicas: 2, Service: svc}, serve.UniformTrace(n, 100, 8), 100},
		{"uniform/deadline-limited", serve.Config{MaxBatch: 32, MaxDelay: 500, Replicas: 2, Service: svc}, serve.UniformTrace(n, 100, 8), 100},
		{"uniform/near-idle", serve.Config{MaxBatch: 8, MaxDelay: 300, Replicas: 1, Service: svc}, serve.UniformTrace(n, 900, 8), 900},
		{"poisson", serve.Config{MaxBatch: 8, MaxDelay: 2000, Replicas: 2, Service: svc}, serve.PoissonTrace(n, 100, 8, 2018), 0},
		{"bursty", serve.Config{MaxBatch: 8, MaxDelay: 2000, Replicas: 2, Service: svc}, serve.BurstyTrace(n, 40, 50, 20000, 8, 2018), 0},
		{"bursty/overload cap=24", serve.Config{MaxBatch: 8, MaxDelay: 2000, QueueCap: 24, Replicas: 1, Service: svc}, serve.BurstyTrace(n, 200, 10, 30000, 8, 2018), 0},
	}
	for _, sc := range scenarios {
		rep, err := serve.Simulate(sc.cfg, sc.trace)
		if err != nil {
			return nil, err
		}
		model := "—"
		if sc.gap > 0 {
			want, err := comm.ExpectedServeStats(sc.cfg, n, sc.gap)
			if err != nil {
				return nil, fmt.Errorf("harness: serve model refused %s: %w", sc.label, err)
			}
			if rep.Stats.Equal(want) {
				model = "exact"
			} else {
				model = "DRIFT: " + firstLine(rep.Stats.Diff(want))
			}
		}
		// Replica-invariance control: with an unbounded queue, batch
		// formation never consults the pool, so a larger pool must
		// reproduce the batch histogram exactly — and, when no batch ever
		// waits for a replica, the full stats. With admission control the
		// invariance deliberately breaks the other way: a faster-draining
		// pool admits more, so rejections may only shrink.
		bigger := sc.cfg
		bigger.Replicas += 2
		rep2, err := serve.Simulate(bigger, sc.trace)
		if err != nil {
			return nil, err
		}
		if sc.cfg.QueueCap == 0 {
			for i := range rep.Stats.Hist {
				if rep.Stats.Hist[i] != rep2.Stats.Hist[i] {
					return nil, fmt.Errorf("harness: %s batch histogram not replica-invariant at bucket %d", sc.label, i)
				}
			}
		} else if rep2.Stats.Rejected > rep.Stats.Rejected {
			return nil, fmt.Errorf("harness: %s rejected more with more replicas: %d -> %d", sc.label, rep.Stats.Rejected, rep2.Stats.Rejected)
		}
		if sc.gap > 0 && !rep.Stats.Equal(rep2.Stats) {
			return nil, fmt.Errorf("harness: %s stats not replica-invariant under capacity:\n%s", sc.label, rep.Stats.Diff(rep2.Stats))
		}

		capCell := "∞"
		if sc.cfg.QueueCap > 0 {
			capCell = fmt.Sprintf("%d", sc.cfg.QueueCap)
		}
		s := rep.Stats
		t.Add(sc.label,
			fmt.Sprintf("%.0f", sc.trace.Rate()),
			fmt.Sprintf("%d", sc.cfg.MaxBatch),
			fmt.Sprintf("%d", sc.cfg.MaxDelay),
			fmt.Sprintf("%d", sc.cfg.Replicas),
			capCell,
			fmt.Sprintf("%d (%d/%d)", s.Batches, s.SizeFlushes, s.DeadlineFlushes),
			fmt.Sprintf("%.2f", s.MeanBatch()),
			fmt.Sprintf("%d", s.Rejected),
			fmt.Sprintf("%d", s.P50),
			fmt.Sprintf("%d", s.P99),
			model)
	}

	// Negative control: perturbing MaxDelay one tick across the batch-size
	// boundary (deadline-limited row at gap 100: D=500 → b = ⌊500/100⌋+1 = 6,
	// D=499 → b=5) must be caught by the twin.
	ctrl := scenarios[1].cfg
	ctrl.MaxDelay--
	rep, err := serve.Simulate(scenarios[1].cfg, scenarios[1].trace)
	if err != nil {
		return nil, err
	}
	perturbed, err := comm.ExpectedServeStats(ctrl, n, 100)
	if err != nil {
		return nil, err
	}
	if rep.Stats.Equal(perturbed) {
		return nil, fmt.Errorf("harness: serve negative control failed — the twin did not detect a MaxDelay perturbation")
	}

	// Fleet sizing from the same closed form: replicas a P100 needs for the
	// offered rate at a p99 target.
	spec := models.MicroAlexNetSpec(models.MicroConfig{Classes: 8, InH: 24, Width: 8})
	for _, rate := range []float64{50_000, 250_000, 1_000_000} {
		est, err := cluster.SimulateServe(cluster.TeslaP100, spec, rate, 16, 800, 2_000)
		if err != nil {
			return nil, err
		}
		verdict := "p99 ok"
		if !est.Feasible {
			verdict = "p99 MISS"
		}
		t.Add(fmt.Sprintf("sizing/P100 @ %.0fk req/s", rate/1000),
			fmt.Sprintf("%.0f", est.Rate),
			"16", "800",
			fmt.Sprintf("%d", est.Replicas),
			"∞",
			fmt.Sprintf("%d (%d/%d)", est.Stats.Batches, est.Stats.SizeFlushes, est.Stats.DeadlineFlushes),
			fmt.Sprintf("%.2f", est.Stats.MeanBatch()),
			"0",
			fmt.Sprintf("%d", est.Stats.P50),
			fmt.Sprintf("%d", est.Stats.P99),
			verdict)
	}

	t.Note("The scheduler runs on a virtual clock (1 tick = 1µs): arrivals come from seeded traces, batches flush at MaxBatch (K) or when the head request has waited MaxDelay (D), and a flushed batch takes the lowest free replica. Every counter is exact integer arithmetic, bit-reproducible across runs and replica counts.")
	t.Note("The model column matches comm.ExpectedServeStats counter-for-counter (batches, flush causes, histogram, busy ticks, every percentile) in the uniform-gap regime; \"exact\" means all of them. Poisson/bursty rows have no closed form (—).")
	t.Note("In-study controls: a one-tick MaxDelay perturbation (500→499 at gap 100 moves the steady batch from 6 to 5) must be flagged by the twin, and every row re-runs with two extra replicas — unbounded-queue rows must reproduce their batch histogram (and, under capacity, their full stats) exactly, while the bounded-queue row may only reject fewer (a faster-draining pool admits more).")
	t.Note("Overload row: the bounded queue (cap 24) sheds the burst excess as typed ErrOverloaded rejections — admission control, not an outage; accepted + rejected == offered is property-tested in internal/serve.")
	t.Note("Sizing rows price a TeslaP100 fleet for the micro AlexNet with cluster.SimulateServe: replicas = ⌈S(b)/(b·gap)⌉ from the same service model, p99 from the same closed form against a 2ms target.")
	return t, nil
}

// firstLine truncates a multi-line diff to its first line.
func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
