package harness

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

// Commentary returns the closing section of EXPERIMENTS.md: a short
// residual analysis of the reproduction against the paper's communication
// tables (Table 2, Table 11, Figures 8-10) and the calibrated simulator's
// anchors. Every number in it is recomputed from the analytic models, so a
// full regeneration reproduces the section bit-identically. (The docs-drift
// CI job compares only the "### " table sections, not this commentary —
// refresh it with a full `experiments -markdown -o EXPERIMENTS.md` run
// whenever the underlying constants change.)
func Commentary(markdown bool) string {
	resnet := models.ResNet50Spec()
	const epochs, imagenet = 100, 1280000

	// Table 2's iteration arithmetic is an identity (E·n/B), so the
	// residual is exactly zero; quote one row as the anchor.
	iters4096 := comm.Iterations(epochs, imagenet, 4096)

	// Figure 9/10 arithmetic: messages and volume are proportional to
	// iterations; quote the 64x volume collapse from B=512 to B=32768.
	volSmall := comm.TotalVolumeBytes(resnet.WeightBytes(), epochs, imagenet, 512)
	volLarge := comm.TotalVolumeBytes(resnet.WeightBytes(), epochs, imagenet, 32768)

	// Hierarchical pricing: one ResNet-50 allreduce over 64 workers, flat
	// 10GbE ring versus 8x8 NVLink-intra + 10GbE-inter composition.
	h := dist.Hierarchy{Nodes: 8, PerNode: 8, Intra: dist.Ring, Inter: dist.Ring}
	flatMS := 1e3 * comm.Intel10GbE.AllreduceTime(dist.Ring, 64, resnet.WeightBytes())
	hierMS := 1e3 * comm.HierarchicalAllreduceTime(cluster.NVLinkHybrid, comm.Intel10GbE, h, resnet.WeightBytes())

	// Overlap pricing: the paper's 512-KNL ResNet-50 row with bucket
	// reductions pipelined against the backward pass, versus serial
	// communication and versus the old half-compute heuristic.
	knl := cluster.KNLCluster(512)
	plain := cluster.Simulate(knl, resnet, 32768, 90, 1280000)
	knl.Overlap = true
	over := cluster.Simulate(knl, resnet, 32768, 90, 1280000)
	oldBound := plain.CommSec - plain.CompSec/2
	if oldBound < 0 {
		oldBound = 0
	}

	var b strings.Builder
	if markdown {
		b.WriteString("## Commentary — residuals vs the paper's communication tables\n\n")
	} else {
		b.WriteString("== Commentary: residuals vs the paper's communication tables ==\n")
	}
	fmt.Fprintf(&b, `The analytic exhibits reproduce the paper's communication arithmetic
exactly, because they are the same closed forms: Table 2's iteration
count is the identity E*n/B (B=4096 gives %d iterations, the paper's
31,250 — zero residual), Table 11 quotes the published alpha-beta fabric
constants verbatim, and Figures 8-10 are proportionality identities on
top of them (communication volume falls %.0fx from B=512 to B=32768 at
fixed epochs, the paper's headline argument for large batches).

The measured Allreduce study is the one place the schedule is executed
rather than priced: internal/dist's counters match comm's closed forms
exactly (zero residual, enforced by tests), including the hierarchical
rows, whose per-tier counters match comm.ExpectedTierStats. Residuals
against the paper's *wall-clock* tables live entirely in the calibrated
simulator (Tables 1, 8, 9): efficiency curves are fitted per
device/model family against published anchors, and the anchor tests
accept a 0.55-1.6x band — see the simulated sections above for the
per-row numbers.

Two-tier composition prices what the paper's fastest clusters actually
do (reduce inside the node before touching the cluster fabric): one
ResNet-50 allreduce over 64 workers costs %.1f ms as a flat 10GbE ring
but %.1f ms as 8 nodes of 8 with an NVLink-class intra tier — the inter
fabric then only carries the 8-leader exchange. The paper reports no
per-tier breakdown to diff against; the closed forms are instead
cross-checked against the executing engine, which is the stronger check
available in a reproduction.

Overlap, new in this revision, moves the minutes-scale claim from
"communication is small" to "communication is hidden": the engine fires
each bucket's reduction the moment its layers' gradients are final on
every shard, while earlier layers are still back-propagating, and the
Overlap study shows the measured hidden/exposed split matching
comm.ExpectedOverlapStats counter-for-counter. Only the bucket covering
the first layers — ready exactly when the backward ends — plus weight
broadcasts and recovery traffic stay exposed. Priced on the paper's
512-KNL ResNet-50 row (B=32K), the serial allreduce costs %.1f ms per
iteration; the old max(0, t_comm − t_comp/2) heuristic called %.1f ms
of it exposed, while the bucket-level pipeline exposes %.1f ms —
never more than the old bound when that bound is positive, and honest
about the unhideable tail (the old heuristic rounded it to zero) when
it is not.
`, iters4096, float64(volSmall)/float64(volLarge), flatMS, hierMS,
		1e3*plain.CommSec, 1e3*oldBound, 1e3*over.CommSec)
	return b.String()
}
