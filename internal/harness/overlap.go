package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
)

// overlapBuckets is the bucket count the study splits the gradient into —
// enough granularity that all but the first layers' bucket can hide.
const overlapBuckets = 8

// OverlapStudy drives the engine's overlap scheduler (dist.Config.Overlap)
// for one training step per topology — bucket reductions firing inside the
// backward pass as their layers' gradients land — and tabulates the measured
// hidden/exposed split of the schedule next to comm's closed-form twin
// (ExpectedOverlapStats) and the alpha-beta pipeline price of the same
// bucket layout on FDR InfiniBand. Everything here is deterministic: the
// counters are exact schedule arithmetic (seeded micro model, one step) and
// the timing columns closed forms, so the docs-drift job regenerates this
// section bit-identically alongside the analytic exhibits.
func OverlapStudy() (*Table, error) {
	const workers = 4
	t := &Table{
		ID: "Overlap study", Title: fmt.Sprintf("Bucket reductions overlapped with the backward pass (P=%d, micro-AlexNet, %d buckets)", workers, overlapBuckets),
		Header: []string{"topology", "hidden rounds", "exposed rounds", "hidden KB", "exposed KB", "hidden bytes", "model", "FDR exposed (vs serial)"},
	}
	ds := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 64,
		C: 3, H: 16, W: 16, Noise: 0.25, MaxShift: 1, Seed: 7,
	})
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Train.MustGather(idx)
	// Micro-AlexNet rather than the test MLP: its first conv is tiny, so
	// nearly every bucket is overlap-eligible — the convnet shape the
	// overlap argument is about (early layers cheap, late layers heavy).
	factory := func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 4, InH: 16, Width: 4, Seed: seed})
	}
	var paramElems []int
	nparams := 0
	for _, p := range factory(1).Params() {
		paramElems = append(paramElems, p.Numel())
		nparams += p.Numel()
	}
	bucketElems := (nparams + overlapBuckets - 1) / overlapBuckets
	var bucketBytes []int64
	for _, b := range dist.BucketRanges(nparams, bucketElems) {
		bucketBytes = append(bucketBytes, 4*int64(b[1]-b[0]))
	}

	hier := dist.NewHierarchy(2, workers/2)
	row := func(label string, topology *dist.Hierarchy, algo dist.Algorithm) error {
		replicas := make([]*nn.Network, workers)
		for i := range replicas {
			replicas[i] = factory(1 + uint64(i)*7919)
		}
		e := dist.NewEngine(dist.Config{
			Algo: algo, Topology: topology, BucketElems: bucketElems, Overlap: true,
		}, replicas)
		defer e.Close()
		if _, err := e.ComputeGradient(x, labels); err != nil {
			return err
		}
		if err := e.BroadcastWeights(); err != nil {
			return err
		}
		got := e.StepOverlapStats()
		var want dist.OverlapStats
		var serial, exposed float64
		// The FDR columns price the same bucket layout with a backward
		// window equal to the serial allreduce time, so the pipeline's
		// effect is visible regardless of compute calibration.
		if topology != nil {
			want = comm.ExpectedHierOverlapStats(*topology, paramElems, bucketElems)
			for _, b := range bucketBytes {
				serial += comm.HierarchicalAllreduceTime(comm.MellanoxFDR, comm.MellanoxFDR, *topology, b)
			}
			exposed = comm.OverlappedHierAllreduceTime(comm.MellanoxFDR, comm.MellanoxFDR, *topology, bucketBytes, serial)
		} else {
			want = comm.ExpectedOverlapStats(algo, workers, paramElems, bucketElems)
			for _, b := range bucketBytes {
				serial += comm.MellanoxFDR.AllreduceTime(algo, workers, b)
			}
			exposed = comm.MellanoxFDR.OverlappedAllreduceTime(algo, workers, bucketBytes, serial)
		}
		match := "exact"
		if got != want {
			match = fmt.Sprintf("DRIFT: want %+v", want)
		}
		t.Add(label,
			fmt.Sprintf("%d", got.HiddenRounds),
			fmt.Sprintf("%d", got.ExposedRounds),
			fmt.Sprintf("%.1f", float64(got.HiddenBytes)/1e3),
			fmt.Sprintf("%.1f", float64(got.ExposedBytes)/1e3),
			fmt.Sprintf("%.0f%%", 100*got.HiddenByteFrac()),
			match,
			fmt.Sprintf("%.3fms (%.3fms)", 1e3*exposed, 1e3*serial))
		return nil
	}
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		if err := row(algo.String(), nil, algo); err != nil {
			return nil, err
		}
	}
	if err := row(hier.String(), &hier, dist.Tree); err != nil {
		return nil, err
	}
	t.Note("Measured columns come from one engine step with Config.Overlap: bucket reductions fire inside the backward pass as their parameters' gradients land; the bucket covering the first layers is only ready when the backward ends, so its reduction — plus the weight broadcast — is exposed.")
	t.Note("The model column cross-checks comm.ExpectedOverlapStats against the measured split; \"exact\" means every counter matches.")
	t.Note("FDR column: exposed time of the pipelined bucket allreduces with a backward window equal to the serial allreduce time (in parentheses) — what replaces the old max(0, t_comm - t_comp/2) heuristic in cluster.Simulate.")
	return t, nil
}
