package harness

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

const (
	imageNetSize = 1280000
	alexEpochs   = 100
	resnetEpochs = 90
	alexTarget   = "58%"   // Table 3 (Iandola et al. 2016)
	resnetTarget = "75.3%" // Table 3 (He et al. 2016)
)

// Table3 reproduces the standard ImageNet benchmark targets.
func Table3() *Table {
	t := &Table{
		ID: "Table 3", Title: "Standard benchmarks for ImageNet training",
		Header: []string{"model", "epochs", "test top-1 accuracy"},
	}
	t.Add("AlexNet", "100", alexTarget)
	t.Add("ResNet-50", "90", resnetTarget)
	t.Note("Constants from the paper; the measured analog appears in Figure 1/Table 7.")
	return t
}

// Table4 reproduces the paper's survey of prior large-batch results.
func Table4() *Table {
	t := &Table{
		ID: "Table 4", Title: "State-of-the-art large-batch training (prior work)",
		Header: []string{"team", "model", "baseline batch", "large batch", "baseline acc", "large-batch acc"},
	}
	t.Add("Google (Krizhevsky 2014)", "AlexNet", "128", "1024", "57.7%", "56.7%")
	t.Add("Amazon (Li 2017)", "ResNet-152", "256", "5120", "77.8%", "77.8%")
	t.Add("Facebook (Goyal et al. 2017)", "ResNet-50", "256", "8192", "76.40%", "76.26%")
	return t
}

// Table6 regenerates the scaling-ratio analysis from this repository's own
// model specs, next to the paper's rounded numbers.
func Table6() *Table {
	t := &Table{
		ID: "Table 6", Title: "Scaling ratio (computation/communication) for AlexNet and ResNet-50",
		Header: []string{"model", "params (ours)", "paper", "flops/image (ours)", "paper", "ratio (ours)", "paper"},
	}
	a := models.AlexNetSpec()
	r := models.ResNet50Spec()
	t.Add("AlexNet",
		fmt.Sprintf("%.1fM", float64(a.ParamCount())/1e6), "61M",
		fmt.Sprintf("%.2fG", float64(a.FLOPsPerImage())/1e9), "1.5G",
		fmt.Sprintf("%.1f", a.ScalingRatio()), "24.6")
	t.Add("ResNet-50",
		fmt.Sprintf("%.1fM", float64(r.ParamCount())/1e6), "25M",
		fmt.Sprintf("%.2fG", float64(r.FLOPsPerImage())/1e9), "7.7G",
		fmt.Sprintf("%.1f", r.ScalingRatio()), "308")
	t.Note("Ours computed from exact layer graphs (internal/models); ResNet-50/AlexNet ratio = %.1fx (paper: 12.5x).",
		r.ScalingRatio()/a.ScalingRatio())
	return t
}

// Table11 reproduces the network constants and adds the allreduce cost of
// one ResNet-50 gradient exchange on each fabric.
func Table11() *Table {
	t := &Table{
		ID: "Table 11", Title: "Network latency and bandwidth (alpha-beta model)",
		Header: []string{"network", "alpha (latency)", "beta (1/bandwidth)", "ring allreduce of ResNet-50 grads, P=512"},
	}
	w := models.ResNet50Spec().WeightBytes()
	for _, n := range comm.Table11() {
		t.Add(n.Name,
			fmt.Sprintf("%.1es", n.Alpha),
			fmt.Sprintf("%.1es/B", n.Beta),
			fmt.Sprintf("%.1fms", 1e3*n.AllreduceTime(dist.Ring, 512, w)))
	}
	t.Note("Communication is much slower than computation: time-per-flop ~1e-13s << beta << alpha.")
	return t
}

// Table12 reproduces the 45nm energy table and prices one ResNet-50
// iteration's compute against its weight movement.
func Table12() *Table {
	t := &Table{
		ID: "Table 12", Title: "Energy per operation (45nm CMOS, Horowitz)",
		Header: []string{"operation", "type", "energy (pJ)"},
	}
	for _, op := range comm.Table12() {
		t.Add(op.Name, op.Kind, fmt.Sprintf("%g", op.PJ))
	}
	spec := models.ResNet50Spec()
	flops := int64(256) * spec.TrainFLOPsPerImage()
	dram := comm.DRAMAccessesPerIteration(spec.ParamCount())
	perFlop := comm.EnergyEstimate(2, 0) / 2
	perWord := comm.EnergyEstimate(0, 1)
	t.Note("One B=256 ResNet-50 iteration: compute %.1fJ, weight DRAM traffic %.2fJ; per-word movement costs %.0fx one flop.",
		comm.EnergyEstimate(flops, 0), comm.EnergyEstimate(0, dram), perWord/perFlop)
	return t
}

// Table2 regenerates the iteration-scaling table with the paper's
// log(P)·t_comm model: batch grows with the device count, iterations fall,
// iteration time grows only logarithmically.
func Table2(tcompSec, tcommSec float64) *Table {
	t := &Table{
		ID: "Table 2", Title: "Fixed-epoch scaling with batch size (t_comp + log2(P)*t_comm model)",
		Header: []string{"batch", "epochs", "iterations", "GPUs", "iteration time", "total time"},
	}
	for _, row := range []struct {
		batch, gpus int
	}{
		{512, 1}, {1024, 2}, {2048, 4}, {4096, 8}, {8192, 16}, {1280000, 2500},
	} {
		iters := comm.Iterations(alexEpochs, imageNetSize, row.batch)
		log2p := 0
		for v := 1; v < row.gpus; v *= 2 {
			log2p++
		}
		iterTime := tcompSec + float64(log2p)*tcommSec
		t.Add(
			fmt.Sprintf("%d", row.batch),
			fmt.Sprintf("%d", alexEpochs),
			fmt.Sprintf("%d", iters),
			fmt.Sprintf("%d", row.gpus),
			fmt.Sprintf("tcomp+log2(%d)*tcomm = %.3fs", row.gpus, iterTime),
			fmt.Sprintf("%.0fs", float64(iters)*iterTime),
		)
	}
	t.Note("tcomp=%.3fs, tcomm=%.3fs; the total falls nearly linearly in P because iterations fall as 1/B.", tcompSec, tcommSec)
	return t
}

// Figure8 regenerates iterations-vs-batch (fixed 90 epochs).
func Figure8() *Table {
	t := &Table{
		ID: "Figure 8", Title: "Iterations vs batch size (E*n/B, 90 epochs of ImageNet)",
		Header: []string{"batch", "iterations"},
	}
	for b := 512; b <= 65536; b *= 2 {
		t.Add(fmt.Sprintf("%d", b), fmt.Sprintf("%d", comm.Iterations(resnetEpochs, imageNetSize, b)))
	}
	return t
}

// Figure9 regenerates messages-vs-batch for a 512-node tree allreduce.
func Figure9() *Table {
	t := &Table{
		ID: "Figure 9", Title: "Messages sent vs batch size (tree allreduce, P=512, 90 epochs)",
		Header: []string{"batch", "iterations", "total messages"},
	}
	for b := 512; b <= 65536; b *= 2 {
		iters := comm.Iterations(resnetEpochs, imageNetSize, b)
		msgs := comm.TotalMessages(dist.Tree, 512, resnetEpochs, imageNetSize, b)
		t.Add(fmt.Sprintf("%d", b), fmt.Sprintf("%d", iters), fmt.Sprintf("%d", msgs))
	}
	t.Note("Messages are linear in the iteration count: larger batches send proportionally fewer.")
	return t
}

// Figure10 regenerates communication-volume-vs-batch for ResNet-50.
func Figure10() *Table {
	t := &Table{
		ID: "Figure 10", Title: "Communication volume vs batch size (|W|*E*n/B, ResNet-50, 90 epochs)",
		Header: []string{"batch", "volume (TB)"},
	}
	w := models.ResNet50Spec().WeightBytes()
	for b := 512; b <= 65536; b *= 2 {
		vol := comm.TotalVolumeBytes(w, resnetEpochs, imageNetSize, b)
		t.Add(fmt.Sprintf("%d", b), fmt.Sprintf("%.2f", float64(vol)/1e12))
	}
	t.Note("|W| = %.1f MB for ResNet-50; volume falls as 1/B at fixed epochs.", float64(w)/1e6)
	return t
}

// Table10 reproduces the paper's cross-team 90-epoch accuracy comparison
// (reference constants; the measured analog is Figure 1).
func Table10() *Table {
	t := &Table{
		ID: "Table 10", Title: "90-epoch ResNet-50 top-1 accuracy by batch size (paper's comparison)",
		Header: []string{"team", "256", "8K", "16K", "32K", "64K", "note"},
	}
	t.Add("MSRA", "75.3%", "75.3%", "—", "—", "—", "weak augmentation")
	t.Add("IBM", "—", "75.0%", "—", "—", "—", "—")
	t.Add("SURFsara", "—", "75.3%", "—", "—", "—", "—")
	t.Add("Facebook", "76.3%", "76.2%", "75.2%", "72.4%", "66.0%", "heavy augmentation")
	t.Add("You et al. (no aug)", "73.0%", "72.7%", "72.7%", "72.6%", "70.0%", "no augmentation")
	t.Add("You et al. (weak aug)", "75.3%", "75.3%", "75.3%", "75.4%", "73.2%", "weak augmentation")
	t.Note("LARS holds accuracy through 32K where the linear-scaling recipes fall off; see Figure 1 for this repo's measured analog.")
	return t
}
