// Package harness regenerates every table and figure of the paper's
// evaluation, one function per exhibit. Three kinds of experiment feed it:
//
//   - measured: real training runs of the reduced models on SynthImageNet
//     (Figures 1, 4, 5, 6; Tables 5, 7, and the measured columns of 3/10),
//   - simulated: the calibrated cluster model (Tables 1, 2, 8, 9; Figures
//     3, 7),
//   - analytic: closed-form counts and constants (Tables 6, 11, 12;
//     Figures 8, 9, 10; Table 4's prior-work rows).
//
// Every function returns a Table that renders as aligned text or Markdown;
// cmd/experiments stitches them into EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID     string // e.g. "Table 7", "Figure 4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Volatile marks a table whose numeric cells are measured timings
	// rather than deterministic arithmetic. Markdown output then carries
	// the VolatileMarker comment, which tells the docs-drift check to
	// compare the section's shape (every digit run normalized) instead of
	// its exact bytes — so timing tables can ride in the drift-checked
	// document without failing on every machine.
	Volatile bool
}

// VolatileMarker is the comment line Markdown emits for Volatile tables;
// cmd/docsdrift switches to shape comparison when it sees it.
const VolatileMarker = "<!-- volatile: measured timings; docs-drift compares shape only -->"

// Add appends one row; cell counts should match the header.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted cells.
func (t *Table) Addf(format string, cells ...any) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	t.Rows = append(t.Rows, parts)
}

// Note records a caption line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// widths returns the maximum cell width per column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(w) {
				w = append(w, len(c))
			} else if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Volatile {
		b.WriteString(VolatileMarker + "\n\n")
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}
