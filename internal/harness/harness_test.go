package harness

import (
	"fmt"
	"strings"
	"testing"
)

// fastSetup shrinks the measured experiments to seconds for unit tests;
// the full tuned configuration runs in cmd/experiments and the benches.
func fastSetup() *Setup {
	s := DefaultSetup()
	s.TrainSize = 512
	s.ImageSize = 12
	s.Width = 4
	s.Epochs = 3
	return s
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "Table X", Title: "demo", Header: []string{"a", "bb"}}
	tbl.Add("1", "2")
	tbl.Note("hello %d", 42)
	s := tbl.String()
	for _, want := range []string{"Table X", "a", "bb", "hello 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("text rendering missing %q:\n%s", want, s)
		}
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("markdown rendering malformed:\n%s", md)
	}
}

// TestAllreduceStudyMechanics drives the engine-backed exhibit at test
// scale: one row per flat topology plus the two-tier hierarchical split
// (intra, inter, total), and the observed message/round columns must equal
// the closed-form model columns (they share the table).
func TestAllreduceStudyMechanics(t *testing.T) {
	tbl, err := AllreduceStudy(fastSetup(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows, want 3 flat topologies + 3 hierarchical (intra/inter/total)", len(tbl.Rows))
	}
	if tbl.Rows[3][0] != "2x2 ring/tree intra" || tbl.Rows[4][0] != "2x2 ring/tree inter" {
		t.Fatalf("hierarchical rows mislabelled: %q, %q", tbl.Rows[3][0], tbl.Rows[4][0])
	}
	for _, row := range tbl.Rows {
		if row[1] != row[4] {
			t.Errorf("%s: observed %s messages vs model %s", row[0], row[1], row[4])
		}
		if row[3] != row[5] {
			t.Errorf("%s: observed %s rounds vs model %s", row[0], row[3], row[5])
		}
	}
}

func TestAnalyticTables(t *testing.T) {
	cases := []struct {
		tbl      *Table
		wantRows int
		wantCell string
	}{
		{Table3(), 2, "75.3%"},
		{Table4(), 3, "Facebook (Goyal et al. 2017)"},
		{Table6(), 2, "61M"},
		{Table10(), 6, "75.4%"},
		{Table11(), 3, "Mellanox 56Gb/s FDR IB"},
		{Table12(), 7, "640"},
		{Figure8(), 8, "225000"},
		{Figure9(), 8, ""},
		{Figure10(), 8, ""},
	}
	for _, tc := range cases {
		if len(tc.tbl.Rows) != tc.wantRows {
			t.Errorf("%s: %d rows, want %d", tc.tbl.ID, len(tc.tbl.Rows), tc.wantRows)
		}
		if tc.wantCell != "" && !strings.Contains(tc.tbl.String(), tc.wantCell) {
			t.Errorf("%s: missing cell %q", tc.tbl.ID, tc.wantCell)
		}
	}
}

func TestTable2Model(t *testing.T) {
	tbl := Table2(0.1, 0.01)
	if len(tbl.Rows) != 6 {
		t.Fatalf("Table 2 has %d rows", len(tbl.Rows))
	}
	// First row: 250,000 iterations at batch 512 (the paper's exact value).
	if tbl.Rows[0][2] != "250000" {
		t.Fatalf("Table 2 row 0 iterations = %s", tbl.Rows[0][2])
	}
	// Last row: the extreme 1.28M batch on 2500 GPUs, 100 iterations.
	if tbl.Rows[5][2] != "100" {
		t.Fatalf("Table 2 extreme row iterations = %s", tbl.Rows[5][2])
	}
}

func TestSimulatedTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 2 {
		t.Fatalf("Table 1 rows = %d", len(t1.Rows))
	}
	t8 := Table8()
	if len(t8.Rows) != 5 {
		t.Fatalf("Table 8 rows = %d", len(t8.Rows))
	}
	t9 := Table9()
	if len(t9.Rows) != 10 {
		t.Fatalf("Table 9 rows = %d", len(t9.Rows))
	}
	f3 := Figure3()
	if !strings.Contains(f3.String(), "out of memory") {
		t.Error("Figure 3 must show the OOM point")
	}
	f7 := Figure7()
	if len(f7.Rows) != 2 {
		t.Fatalf("Figure 7 rows = %d", len(f7.Rows))
	}
	// No simulated row may be OOM except where the paper itself hit limits.
	for _, tbl := range []*Table{t1, t8, t9} {
		for _, row := range tbl.Rows {
			for _, cell := range row {
				if cell == "OOM" {
					t.Errorf("%s: unexpected OOM row %v", tbl.ID, row)
				}
			}
		}
	}
}

func TestMeasuredFigure1Mechanics(t *testing.T) {
	s := fastSetup()
	tbl, err := Figure1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("Figure 1 rows = %d, want 5", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "baseline") {
		t.Error("Figure 1 must include the baseline row")
	}
}

func TestMeasuredTable7Mechanics(t *testing.T) {
	s := fastSetup()
	tbl, err := Table7(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("Table 7 rows = %d, want 5", len(tbl.Rows))
	}
}

func TestMeasuredFigure4Mechanics(t *testing.T) {
	s := fastSetup()
	tbl, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != s.Epochs {
		t.Fatalf("Figure 4 rows = %d, want %d", len(tbl.Rows), s.Epochs)
	}
}

func TestMeasuredFigure5and6Mechanics(t *testing.T) {
	s := fastSetup()
	tbl, err := Figure5and6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != s.Epochs {
		t.Fatalf("Figures 5&6 rows = %d, want %d", len(tbl.Rows), s.Epochs)
	}
	// GFLOPs column must be monotonically increasing.
	prev := ""
	for _, row := range tbl.Rows {
		if row[1] <= prev && prev != "" && len(row[1]) == len(prev) {
			t.Errorf("flops column not increasing: %s after %s", row[1], prev)
		}
		prev = row[1]
	}
}

func TestMeasuredTable5Mechanics(t *testing.T) {
	if testing.Short() {
		t.Skip("7 training runs")
	}
	s := fastSetup()
	tbl, err := Table5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("Table 5 rows = %d, want 7", len(tbl.Rows))
	}
}

func TestWarmupForMirrorsPaper(t *testing.T) {
	s := DefaultSetup()
	if s.WarmupFor(256) >= s.WarmupFor(1024) {
		t.Error("warmup should grow with batch size")
	}
	if s.WarmupFor(2048) != 12 {
		t.Errorf("extreme batch warmup = %v, want 12", s.WarmupFor(2048))
	}
}

// TestElasticityStudyDeterministic: the elasticity exhibit rides in the
// docs-drift-checked analytic subset, so two generations must render
// bit-identically, every model cross-check must be exact, and the scripted
// preemption must actually evict.
func TestElasticityStudyDeterministic(t *testing.T) {
	a, err := ElasticityStudy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ElasticityStudy()
	if err != nil {
		t.Fatal(err)
	}
	if a.Markdown() != b.Markdown() {
		t.Fatal("ElasticityStudy does not regenerate bit-identically")
	}
	if len(a.Rows) != 4 {
		t.Fatalf("study has %d rows, want central/tree/ring/hierarchy", len(a.Rows))
	}
	for _, row := range a.Rows {
		if row[6] != "exact" {
			t.Fatalf("%s: degraded schedule drifted from the closed form: %s", row[0], row[6])
		}
		if row[2] == "step -1" {
			t.Fatalf("%s: the scripted death never led to an eviction", row[0])
		}
	}
}

// TestHotLoopStudyMechanics: the hot-loop exhibit produces one row per
// reduction policy, verifies both policies' determinism contracts for real
// (the identity column must read "exact"), and its Markdown carries the
// volatile marker so docsdrift compares shape rather than timings.
func TestHotLoopStudyMechanics(t *testing.T) {
	tab, err := HotLoopStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("HotLoop study has %d rows, want 2 (one per policy)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "exact" {
			t.Fatalf("policy %s identity check failed: %q", row[0], row[1])
		}
	}
	if !tab.Volatile {
		t.Fatal("HotLoop study must be marked volatile (its timing cells vary per machine)")
	}
	if md := tab.Markdown(); !strings.Contains(md, VolatileMarker) {
		t.Fatal("volatile table's Markdown lacks the drift marker")
	}
}

// TestMixedPrecisionStudyMechanics: the mixed-precision exhibit produces one
// row per precision, both identity contracts must hold bitwise (with the
// f16-vs-f32 negative control enforced inside the study), the f16 row must
// report loss-scaler activity, and the table is volatile.
func TestMixedPrecisionStudyMechanics(t *testing.T) {
	tab, err := MixedPrecisionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("MixedPrecision study has %d rows, want 2 (one per precision)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "exact" {
			t.Fatalf("precision %s identity check failed: %q", row[0], row[1])
		}
	}
	if tab.Rows[0][4] != "—" {
		t.Fatalf("f32 row reports a loss scale: %q", tab.Rows[0][4])
	}
	if !strings.HasPrefix(tab.Rows[1][4], "2^") {
		t.Fatalf("f16 row's loss scale %q is not a power of two", tab.Rows[1][4])
	}
	if !tab.Volatile {
		t.Fatal("MixedPrecision study must be marked volatile (its timing cells vary per machine)")
	}
}

// TestProgressiveResolutionStudyMechanics: the progressive-resolution
// exhibit produces one row per schedule, both dynamic-shape identity
// contracts must hold bitwise (with the progressive-vs-fixed negative
// control enforced inside the study), the progressive row must report a
// two-phase FLOP curve with positive analytic savings, and the table is
// volatile.
func TestProgressiveResolutionStudyMechanics(t *testing.T) {
	tab, err := ProgressiveResolutionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("ProgressiveResolution study has %d rows, want 2 (one per schedule)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "exact" {
			t.Fatalf("schedule %s identity check failed: %q", row[0], row[1])
		}
	}
	if strings.Contains(tab.Rows[0][5], ",") {
		t.Fatalf("fixed row reports multiple phases: %q", tab.Rows[0][5])
	}
	if !strings.Contains(tab.Rows[1][5], "16x16") || !strings.Contains(tab.Rows[1][5], "24x24") {
		t.Fatalf("progressive row's phase curve %q lacks both resolutions", tab.Rows[1][5])
	}
	if tab.Rows[0][7] != "0.0%" {
		t.Fatalf("fixed row should save no FLOPs, got %q", tab.Rows[0][7])
	}
	if tab.Rows[1][7] == "0.0%" || strings.HasPrefix(tab.Rows[1][7], "-") {
		t.Fatalf("progressive row's analytic savings %q should be positive", tab.Rows[1][7])
	}
	if !tab.Volatile {
		t.Fatal("ProgressiveResolution study must be marked volatile (its wall cells vary per machine)")
	}
}

// TestServeStudyDeterministic: the serve exhibit runs entirely on the
// virtual clock, so it rides the byte-exact analytic subset: two
// generations must render bit-identically, every uniform-regime row's
// model cross-check must be exact, the overload row must actually reject,
// and the in-study controls (MaxDelay negative control, replica
// invariance) are enforced inside ServeStudy itself — an error here means
// one of them fired.
func TestServeStudyDeterministic(t *testing.T) {
	a, err := ServeStudy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if a.Markdown() != b.Markdown() {
		t.Fatal("ServeStudy does not regenerate bit-identically")
	}
	if a.Volatile {
		t.Fatal("ServeStudy is exact virtual-clock arithmetic; it must not be volatile")
	}
	uniform, rejected := 0, false
	for _, row := range a.Rows {
		switch {
		case strings.HasPrefix(row[0], "uniform/"):
			uniform++
			if row[len(row)-1] != "exact" {
				t.Fatalf("%s: model drifted: %s", row[0], row[len(row)-1])
			}
		case strings.Contains(row[0], "overload"):
			if row[8] == "0" {
				t.Fatalf("%s: overload row rejected nothing", row[0])
			}
			rejected = true
		case strings.HasPrefix(row[0], "sizing/"):
			if row[len(row)-1] != "p99 ok" {
				t.Fatalf("%s: fleet sizing misses its latency target: %s", row[0], row[len(row)-1])
			}
		}
	}
	if uniform != 3 {
		t.Fatalf("study has %d uniform rows, want 3", uniform)
	}
	if !rejected {
		t.Fatal("study has no overload row")
	}
}

// TestLocalSGDStudyDeterministic: the local-SGD exhibit rides in the
// docs-drift-checked analytic subset — two generations must render
// bit-identically, every closed-form cross-check must be exact, the
// communication ratio must fall monotonically along the spectrum, and the
// synchronous baseline's drift column must be exactly zero.
func TestLocalSGDStudyDeterministic(t *testing.T) {
	a, err := LocalSGDStudy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalSGDStudy()
	if err != nil {
		t.Fatal(err)
	}
	if a.Markdown() != b.Markdown() {
		t.Fatal("LocalSGDStudy does not regenerate bit-identically")
	}
	if len(a.Rows) != 6 {
		t.Fatalf("study has %d rows, want sync + 3 local + hier + async", len(a.Rows))
	}
	for _, row := range a.Rows[:5] {
		if row[3] != "exact" {
			t.Fatalf("%s: measured counters drifted from the closed form: %s", row[0], row[3])
		}
	}
	if a.Rows[0][7] != "0.0000" {
		t.Fatalf("the synchronous baseline drifted from itself: %s", a.Rows[0][7])
	}
	prev := 2.0
	for _, row := range a.Rows[:4] { // sync then H=2,4,8: ratio strictly falls
		var ratio float64
		if _, err := fmt.Sscanf(row[2], "%f", &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio >= prev {
			t.Fatalf("%s: comm ratio %v did not fall below %v", row[0], ratio, prev)
		}
		prev = ratio
	}
}
