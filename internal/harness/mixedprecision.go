package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MixedPrecisionStudy exercises the binary16 compute path against the
// float32 baseline on the synthetic task: for each precision it (a) verifies
// the trainer-level identity contract — the loss trajectory at P=1 must
// reproduce bit-identically at P=4 flat, P=4 hierarchical and P=4
// overlapped with a pinned shard split — (b) trains to completion and
// reports accuracy (parity is the acceptance criterion) plus the dynamic
// loss scaler's final scale, and (c) profiles one engine step, where the
// convert column is the packing overhead the f16 GEMM speedup has to beat.
// A negative control confirms the f16 trajectory differs bitwise from f32 —
// without it the identity column could pass with the precision switch dead.
//
// Identity and accuracy cells are exact reproducible arithmetic; the wall
// and share cells are measured, so the table is Volatile (docs-drift
// compares its digit-normalized shape).
func MixedPrecisionStudy() (*Table, error) {
	t := &Table{
		ID:       "MixedPrecision study",
		Title:    "Mixed-precision training: f16 storage, f32 accumulation (P=4, micro conv net)",
		Header:   []string{"precision", "identity (P, topology)", "test acc", "final loss", "loss scale", "step wall", "gemm", "im2col", "convert", "reduce", "codec", "other"},
		Volatile: true,
	}
	ds := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 128,
		C: 3, H: 8, W: 8, Noise: 0.25, MaxShift: 1, Seed: 7,
	})

	var trajectories [2][]float64
	for i, prec := range []tensor.Precision{tensor.F32, tensor.F16} {
		identity, traj, err := precisionIdentity(prec, ds)
		if err != nil {
			return nil, err
		}
		trajectories[i] = traj

		res, err := core.Train(core.Config{
			Model: precisionNet, Batch: 32, Epochs: 8, Method: core.BaselineSGD,
			BaseLR: 0.1, Seed: 1, Precision: prec,
		}, ds)
		if err != nil {
			return nil, err
		}
		scale := "—"
		if prec == tensor.F16 {
			scale = fmt.Sprintf("2^%d", int(math.Log2(res.Scale.Scale)))
		}

		prof, err := precisionProfiledStep(prec, ds)
		if err != nil {
			return nil, err
		}
		pct := func(ns int64) string { return fmt.Sprintf("%.1f%%", 100*prof.Share(ns)) }
		t.Add(prec.String(), identity,
			fmt.Sprintf("%.3f", res.TestAcc),
			fmt.Sprintf("%.4f", res.FinalLoss),
			scale,
			fmt.Sprintf("%.1fms", float64(prof.WallNS)/1e6),
			pct(prof.GemmNS), pct(prof.Im2colNS), pct(prof.ConvertNS),
			pct(prof.ReduceNS), pct(prof.CodecNS), pct(prof.OtherNS))
	}

	// Negative control: the two precisions must not share a trajectory.
	same := len(trajectories[0]) == len(trajectories[1])
	if same {
		for e := range trajectories[0] {
			if trajectories[0][e] != trajectories[1][e] {
				same = false
				break
			}
		}
	}
	if same {
		return nil, fmt.Errorf("harness: f16 trajectory is bit-identical to f32 — the precision switch is not reaching the kernels")
	}

	t.Note("Identity column is exact: the 2-epoch loss trajectory at P=1 must reproduce bitwise at P=4 flat, P=4 hierarchical (2x2) and P=4 overlapped (pinned Shards=4) — the f16 kernels keep the fixed-tree accumulation discipline, so decomposition stays invisible at half precision too. A negative control confirms f16 ≠ f32 bitwise.")
	t.Note("Accuracy parity on SynthImageNet is the paper's mixed-precision claim: binary16 GEMM operands with float32 accumulation and float32 master weights, plus dynamic loss scaling (grow-on-stable, halve-on-overflow), match the full-precision run within noise. The loss-scale column is the scaler's final power of two.")
	t.Note("Phase columns profile one P=4 engine step (fp16 wire codec, so every bucket is live): convert is the binary16 packing the f16 path adds; the f16 gemm share shrinks because the SSE half kernels beat the f32 GEMM at these shapes (BenchmarkGemm records the ratio in BENCH_gemm.json).")
	return t, nil
}

// precisionNet builds the dropout-free, BN-free conv net the study trains:
// per-replica RNG and batch statistics would break cross-P bit-identity for
// any precision, which would mask a precision-specific drift.
func precisionNet(seed uint64) *nn.Network {
	r := rng.New(seed)
	return nn.NewNetwork("mp-conv",
		nn.NewConv("conv1", r, 3, 4, 3, 1, 1, nn.ConvOpts{}),
		nn.NewReLU("relu1"),
		nn.NewMaxPool("pool1", 2, 2, 0),
		nn.NewFlatten(),
		nn.NewLinear("fc", r, 4*4*4, 4),
	)
}

// precisionIdentity runs the trainer-level determinism contract for one
// precision and returns the reference loss trajectory for the study's
// negative control.
func precisionIdentity(prec tensor.Precision, ds *data.Synth) (string, []float64, error) {
	hier := dist.NewHierarchy(2, 2)
	run := func(workers int, topology *dist.Hierarchy, bucket int, overlap bool) ([]float64, error) {
		res, err := core.Train(core.Config{
			Model: precisionNet, Workers: workers, Shards: 4,
			Algo: dist.Ring, Topology: topology, Bucket: bucket, Overlap: overlap,
			Precision: prec,
			Batch:     64, Epochs: 2, Method: core.BaselineSGD, BaseLR: 0.1, Seed: 9,
		}, ds)
		if err != nil {
			return nil, err
		}
		traj := make([]float64, len(res.History))
		for i, h := range res.History {
			traj[i] = h.TrainLoss
		}
		return traj, nil
	}
	ref, err := run(1, nil, 0, false)
	if err != nil {
		return "", nil, err
	}
	for _, tc := range []struct {
		label   string
		workers int
		topo    *dist.Hierarchy
		bucket  int
		overlap bool
	}{
		{"P=4 flat", 4, nil, 0, false},
		{"P=4 hier", 4, &hier, 0, false},
		{"P=4 overlap", 4, nil, 33, true},
	} {
		got, err := run(tc.workers, tc.topo, tc.bucket, tc.overlap)
		if err != nil {
			return "", nil, err
		}
		for e := range ref {
			if got[e] != ref[e] {
				return fmt.Sprintf("DRIFT at %s epoch %d", tc.label, e), ref, nil
			}
		}
	}
	return "exact", ref, nil
}

// precisionProfiledStep profiles one P=4 engine step under the given
// precision (fp16 wire codec so the codec bucket is live too).
func precisionProfiledStep(prec tensor.Precision, ds *data.Synth) (dist.ProfileStats, error) {
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Train.MustGather(idx)
	replicas := make([]*nn.Network, 4)
	for i := range replicas {
		replicas[i] = precisionNet(1 + uint64(i)*7919)
		replicas[i].SetPrecision(prec)
	}
	e := dist.NewEngine(dist.Config{
		Algo: dist.Ring, Codec: dist.FP16Codec{}, Profile: true,
	}, replicas)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		return dist.ProfileStats{}, err
	}
	if err := e.BroadcastWeights(); err != nil {
		return dist.ProfileStats{}, err
	}
	prof := e.StepProfile()
	if prof.Accounted() != prof.WallNS {
		return dist.ProfileStats{}, fmt.Errorf("harness: profile shares (%d ns) do not sum to step wall (%d ns)", prof.Accounted(), prof.WallNS)
	}
	return prof, nil
}
