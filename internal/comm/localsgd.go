package comm

// Local-SGD closed forms: the analytic twins of a dist engine driven
// through Engine.LocalStep (Config.SyncEvery = H). Workers communicate
// only at sync boundaries — floor(steps/H) full weight-averaging rounds,
// each a reduce plus a broadcast of the flat parameter vector — so every
// counter scales by exactly 1/H relative to the every-step path whenever H
// divides the step count. The hierarchical variant adds intra-node-only
// rounds between full boundaries, accounted on the intra tier alone.
//
// The formulas mirror the engine's executed schedules bucket by bucket
// (dist.BucketRanges splits the payload identically on both sides), so
// measured CommStats/TierStats match these counter-for-counter for clean
// runs — the same contract ExpectedStats carries for the gradient path.
// Fault-recovery traffic and membership broadcasts are extra on the
// measured side, exactly as they are for every other closed form here.

import "repro/internal/dist"

// WireSizer maps a payload's float32 element count to its on-wire byte
// size under a codec. nil means raw float32.
type WireSizer func(elems int) int64

// RawWire prices a payload exchanged as raw float32: 4 bytes/coordinate.
func RawWire(elems int) int64 { return 4 * int64(elems) }

// FP16Wire prices a payload exchanged through dist.FP16Codec: 2
// bytes/coordinate.
func FP16Wire(elems int) int64 { return 2 * int64(elems) }

// LocalSGDSyncRounds returns the number of full weight-averaging rounds a
// local-SGD run of the given length performs: floor(steps/syncEvery), one
// round per closed window. syncEvery < 1 is the every-step path.
func LocalSGDSyncRounds(steps int64, syncEvery int) int64 {
	if syncEvery < 1 {
		syncEvery = 1
	}
	return steps / int64(syncEvery)
}

// LocalSGDIntraRounds returns the number of intra-node-only averaging
// rounds: every intraSyncEvery-th step that is not also a full boundary,
// floor(steps/intraSyncEvery) − floor(steps/syncEvery). 0 when the
// intermediate tier is disabled.
func LocalSGDIntraRounds(steps int64, syncEvery, intraSyncEvery int) int64 {
	if intraSyncEvery < 1 {
		return 0
	}
	return steps/int64(intraSyncEvery) - LocalSGDSyncRounds(steps, syncEvery)
}

// scaleStats multiplies every counter of one round's schedule by the round
// count.
func scaleStats(s dist.CommStats, rounds int64) dist.CommStats {
	return dist.CommStats{
		Messages: s.Messages * rounds,
		Bytes:    s.Bytes * rounds,
		Steps:    s.Steps * rounds,
		Retries:  s.Retries * rounds,
		Stalls:   s.Stalls * rounds,
	}
}

// ExpectedLocalSGDStats returns the closed-form communication counters of
// a flat local-SGD run: steps local steps across p workers with
// synchronization period syncEvery, the nelems-coordinate parameter vector
// bucketed into bucketElems chunks (0 = one bucket), each worker's payload
// priced by wire (nil = raw float32). Per full round every bucket costs
// one reduce of the wire payload plus one broadcast of the raw float32
// weights — the exact schedules the engine records — and the run performs
// floor(steps/syncEvery) rounds:
//
//	stats(H) = floor(steps/H) · Σ_buckets [reduce(algo, p, wire(n_b)) + bcast(algo, p, 4·n_b)]
//
// so bytes scale as 1/H whenever H divides steps. At syncEvery = 1 this
// equals the measured counters of the every-step gradient path with the
// same bucketing (weight averages and gradient reductions run the same
// schedule — only the payload's meaning differs).
func ExpectedLocalSGDStats(algo dist.Algorithm, p, syncEvery int, steps int64, nelems, bucketElems int, wire WireSizer) dist.CommStats {
	if wire == nil {
		wire = RawWire
	}
	var round dist.CommStats
	for _, b := range dist.BucketRanges(nelems, bucketElems) {
		n := b[1] - b[0]
		round.Add(dist.ReduceSchedule(algo, p, wire(n)))
		round.Add(dist.BroadcastSchedule(algo, p, 4*int64(n)))
	}
	return scaleStats(round, LocalSGDSyncRounds(steps, syncEvery))
}

// ExpectedLocalSGDTierStats returns the closed-form per-tier counters of a
// hierarchical local-SGD run: full two-tier averaging rounds every
// syncEvery steps plus intra-node-only rounds every intraSyncEvery steps
// in between (0 disables them). A full round prices the two-tier reduce of
// the wire payload plus the two-tier broadcast of the raw weights, bucket
// by bucket; an intra-only round prices the same round's intra components
// exclusively — the leaders never exchange, so the inter tier accumulates
// nothing between full boundaries.
func ExpectedLocalSGDTierStats(h dist.Hierarchy, syncEvery, intraSyncEvery int, steps int64, nelems, bucketElems int, wire WireSizer) dist.TierStats {
	if wire == nil {
		wire = RawWire
	}
	var full, intra dist.TierStats
	for _, b := range dist.BucketRanges(nelems, bucketElems) {
		n := b[1] - b[0]
		r := dist.HierReduceSchedule(h, wire(n))
		bc := dist.HierBroadcastSchedule(h, 4*int64(n))
		full.Add(r)
		full.Add(bc)
		intra.Add(dist.TierStats{Intra: r.Intra})
		intra.Add(dist.TierStats{Intra: bc.Intra})
	}
	fullRounds := LocalSGDSyncRounds(steps, syncEvery)
	intraRounds := LocalSGDIntraRounds(steps, syncEvery, intraSyncEvery)
	return dist.TierStats{
		Intra: addStats(scaleStats(full.Intra, fullRounds), scaleStats(intra.Intra, intraRounds)),
		Inter: scaleStats(full.Inter, fullRounds),
	}
}

// addStats sums two schedules.
func addStats(a, b dist.CommStats) dist.CommStats {
	a.Add(b)
	return a
}

// LocalSGDStepTime prices the amortized per-step wall time of a local-SGD
// configuration on one fabric: compSec of computation every step plus one
// full allreduce of `bytes` every syncEvery steps,
//
//	t(H) = compSec + AllreduceTime(algo, p, bytes)/H
//
// — the communication-for-computation tradeoff cmd/simulate sweeps. No
// overlap term: sync rounds are barriers, nothing hides.
func (n Network) LocalSGDStepTime(algo dist.Algorithm, p int, bytes int64, syncEvery int, compSec float64) float64 {
	if syncEvery < 1 {
		syncEvery = 1
	}
	return compSec + n.AllreduceTime(algo, p, bytes)/float64(syncEvery)
}
