package comm

import "repro/internal/dist"

// ExpectedStatsAt returns the closed-form dist.CommStats of one full
// allreduce (gradient sum + weight broadcast) after `evicted` workers have
// left a flat p-worker collective: the post-eviction schedule is exactly
// the full-strength schedule at world size p−evicted, which is the analytic
// twin of what the engine records once elastic membership shrinks the
// fleet (cross-checked in tests). A negative evicted counts admissions —
// the schedule at the grown world p+joined after elastic scale-up — so one
// closed form prices every point of a grow-shrink-grow timeline. It
// complements ExpectedStats the way the engine's membership machine
// complements its construction: pure schedule surgery, no change to the
// reduced values.
func ExpectedStatsAt(algo dist.Algorithm, p, evicted int, payloadBytes int64) dist.CommStats {
	world := p - evicted
	if world < 1 {
		world = 1
	}
	return ExpectedStats(algo, world, payloadBytes)
}

// ExpectedDegradedTierStats returns the closed-form per-tier schedule of
// one full hierarchical allreduce over a degraded fleet, sizes listing the
// live-worker count of every surviving (non-empty) node: concurrent
// intra-node phases sized by each node's survivors (latency rounds are the
// slowest node's), and an inter tier among the len(sizes) surviving
// leaders — a node that lost all its workers has left the leader exchange.
// With a full fleet (h.Nodes entries of h.PerNode) this is exactly
// ExpectedTierStats; after evictions it is the analytic twin of the
// engine's degraded counters, and after joins refill a node the restored
// sizes price the re-formed tiers the same way — restoration is
// degradation run backwards (both cross-checked in tests).
func ExpectedDegradedTierStats(h dist.Hierarchy, sizes []int, payloadBytes int64) dist.TierStats {
	t := dist.DegradedHierReduceSchedule(h, sizes, payloadBytes)
	t.Add(dist.DegradedHierBroadcastSchedule(h, sizes, payloadBytes))
	return t
}

// DegradedHierarchicalAllreduceTime prices one two-tier allreduce over a
// degraded fleet: the slowest surviving node's intra phase (nodes run
// concurrently on disjoint fabrics, so the largest one paces the tier)
// plus the leader exchange among the surviving nodes. With a full fleet it
// equals HierarchicalAllreduceTime.
func DegradedHierarchicalAllreduceTime(intra, inter Network, h dist.Hierarchy, sizes []int, bytes int64) float64 {
	largest := 0
	for _, p := range sizes {
		if p > largest {
			largest = p
		}
	}
	return intra.AllreduceTime(h.Intra, largest, bytes) + inter.AllreduceTime(h.Inter, len(sizes), bytes)
}
