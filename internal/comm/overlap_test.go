package comm

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// TestExpectedOverlapStatsClosedForm checks the split against hand-written
// arithmetic: params of 10/50/40 coordinates in 4 buckets of 25 — bucket 0
// covers param 0 (exposed), buckets 1-3 do not (hidden); all broadcasts
// exposed.
func TestExpectedOverlapStatsClosedForm(t *testing.T) {
	paramElems := []int{10, 50, 40}
	const p, bucketElems = 4, 25
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		got := ExpectedOverlapStats(algo, p, paramElems, bucketElems)
		var want dist.OverlapStats
		for _, b := range dist.BucketRanges(100, bucketElems) {
			payload := 4 * int64(b[1]-b[0])
			r := dist.ReduceSchedule(algo, p, payload)
			if b[0] >= 10 { // past param 0: hidden
				want.HiddenRounds += r.Steps
				want.HiddenBytes += r.Bytes
			} else {
				want.ExposedRounds += r.Steps
				want.ExposedBytes += r.Bytes
			}
			bc := dist.BroadcastSchedule(algo, p, payload)
			want.ExposedRounds += bc.Steps
			want.ExposedBytes += bc.Bytes
		}
		if got != want {
			t.Errorf("%v: %+v, want %+v", algo, got, want)
		}
		// The split partitions the full allreduce closed form.
		full := ExpectedStats(algo, p, 0)
		var rounds int64
		for range dist.BucketRanges(100, bucketElems) {
			rounds += full.Steps
		}
		if got.Rounds() != rounds {
			t.Errorf("%v: split rounds %d != bucketed allreduce rounds %d", algo, got.Rounds(), rounds)
		}
		if got.TotalBytes() != ExpectedStats(algo, p, 4*100).Bytes {
			t.Errorf("%v: split bytes %d != allreduce bytes", algo, got.TotalBytes())
		}
	}
}

// TestExpectedHierOverlapStatsPartition: the hierarchical split's totals
// must equal the bucketed two-tier schedule's aggregate.
func TestExpectedHierOverlapStatsPartition(t *testing.T) {
	h := dist.NewHierarchy(2, 4)
	paramElems := []int{16, 64, 20}
	const bucketElems = 30
	got := ExpectedHierOverlapStats(h, paramElems, bucketElems)
	var wantRounds, wantBytes int64
	for _, b := range dist.BucketRanges(100, bucketElems) {
		payload := 4 * int64(b[1]-b[0])
		tot := dist.HierReduceSchedule(h, payload).Total()
		bc := dist.HierBroadcastSchedule(h, payload).Total()
		wantRounds += tot.Steps + bc.Steps
		wantBytes += tot.Bytes + bc.Bytes
	}
	if got.Rounds() != wantRounds || got.TotalBytes() != wantBytes {
		t.Fatalf("split %+v does not partition the two-tier schedule (%d rounds, %d bytes)", got, wantRounds, wantBytes)
	}
	if got.HiddenBytes == 0 {
		t.Fatal("buckets past param 0 should hide")
	}
}

// TestOverlapSchedulePipeline pins the pipeline mechanics: readiness runs
// from the tail of the gradient, allreduces serialize on the fabric, and
// the exposed remainder is exactly the last completion past the backward.
func TestOverlapSchedulePipeline(t *testing.T) {
	n := Network{Name: "test", Alpha: 1e-6, Beta: 1e-9}
	buckets := EqualBuckets(40e6, 8)
	const backward = 0.050
	tl := OverlapSchedule(n, dist.Ring, 64, buckets, backward)
	if len(tl) != 8 {
		t.Fatalf("timeline has %d buckets, want 8", len(tl))
	}
	for j := range tl {
		b := tl[j]
		if b.StartSec < b.ReadySec {
			t.Fatalf("bucket %d started before its gradients were ready", j)
		}
		if b.DoneSec <= b.StartSec {
			t.Fatalf("bucket %d has no communication time", j)
		}
		if j+1 < len(tl) && tl[j].ReadySec <= tl[j+1].ReadySec {
			t.Fatalf("bucket %d ready no later than bucket %d: backward runs tail-first", j, j+1)
		}
		if b.Hidden != (b.DoneSec <= backward) {
			t.Fatalf("bucket %d hidden flag inconsistent with its completion", j)
		}
	}
	// Bucket 0 covers the first layers: ready exactly when backward ends,
	// so it is always exposed.
	if tl[0].ReadySec != backward || tl[0].Hidden {
		t.Fatalf("bucket 0 must be ready at the backward's end and exposed: %+v", tl[0])
	}
	exposed := ExposedTime(tl, backward)
	if exposed <= 0 {
		t.Fatal("bucket 0's allreduce is always exposed")
	}
	var serial float64
	for _, b := range buckets {
		serial += n.AllreduceTime(dist.Ring, 64, b)
	}
	if exposed >= serial {
		t.Fatalf("pipeline hid nothing: exposed %.6f vs serial %.6f", exposed, serial)
	}
}

// TestOverlappedBeatsOldHeuristic is the simulator acceptance bound: the
// bucket-level exposure is never negative, never exceeds the serial
// allreduce time, and wherever the old max(0, t_comm − t_comp/2) heuristic
// reported exposure at all, the bucket-level model reports no more — the
// backward window (2/3 of compute) is wider than the old t_comp/2 and the
// pipeline fills it. Where the old heuristic reported zero it was simply
// wrong: the first layers' bucket is only ready when the backward ends, so
// its allreduce is always exposed — the mispricing this model fixes.
func TestOverlappedBeatsOldHeuristic(t *testing.T) {
	const p = 512
	payload := int64(100e6)
	buckets := EqualBuckets(payload, 16)
	for _, n := range []Network{MellanoxFDR, IntelQDR, Intel10GbE} {
		for _, algo := range []dist.Algorithm{dist.Tree, dist.Ring} {
			serial := n.AllreduceTime(algo, p, payload)
			// Sweep compute from comm-bound through compute-bound.
			for _, comp := range []float64{serial / 4, serial / 2, serial, 1.5 * serial, 4 * serial} {
				backward := 2.0 / 3 * comp
				exposed := n.OverlappedAllreduceTime(algo, p, buckets, backward)
				if exposed < 0 {
					t.Fatalf("%s %v: negative exposure %v", n.Name, algo, exposed)
				}
				if exposed > serial {
					t.Fatalf("%s %v: exposure %.6fs exceeds the serial allreduce %.6fs", n.Name, algo, exposed, serial)
				}
				if old := serial - comp/2; old > 0 && exposed > old {
					t.Errorf("%s %v comp=%.4fs: bucket-level exposure %.6fs exceeds old heuristic %.6fs",
						n.Name, algo, comp, exposed, old)
				}
			}
		}
	}
}

// TestHierOverlapCrossTierPipelining: with the inter exchange of bucket k
// overlapping the intra reduce of bucket k+1, the exposed time must be at
// most the serial two-tier cost and strictly less when the backward window
// is meaningful.
func TestHierOverlapCrossTierPipelining(t *testing.T) {
	h := dist.NewHierarchy(8, 8)
	intra := Network{Name: "fast", Alpha: 5e-6, Beta: 0.0125e-9}
	inter := MellanoxFDR
	buckets := EqualBuckets(100e6, 16)
	var serial float64
	for _, b := range buckets {
		serial += HierarchicalAllreduceTime(intra, inter, h, b)
	}
	// Even with a zero backward window the cross-tier pipeline beats the
	// serial composition: tier k+1's intra reduce rides under tier k's
	// inter exchange.
	zeroWin := OverlappedHierAllreduceTime(intra, inter, h, buckets, 0)
	if zeroWin >= serial {
		t.Fatalf("cross-tier pipelining saved nothing: %.6f vs serial %.6f", zeroWin, serial)
	}
	withWin := OverlappedHierAllreduceTime(intra, inter, h, buckets, serial)
	if withWin >= zeroWin {
		t.Fatalf("a backward window must hide more: %.6f vs %.6f", withWin, zeroWin)
	}
	if withWin <= 0 {
		t.Fatal("the first layers' bucket is always exposed")
	}
	if math.IsNaN(withWin) || math.IsInf(withWin, 0) {
		t.Fatalf("degenerate exposure %v", withWin)
	}
}

// TestEqualBuckets: the split must cover the payload exactly with
// near-equal buckets, degenerating to one bucket for tiny payloads.
func TestEqualBuckets(t *testing.T) {
	b := EqualBuckets(103, 4)
	if len(b) != 4 {
		t.Fatalf("got %d buckets, want 4", len(b))
	}
	var sum int64
	for _, x := range b {
		sum += x
		if x < 25 || x > 26 {
			t.Fatalf("uneven bucket %d", x)
		}
	}
	if sum != 103 {
		t.Fatalf("buckets sum to %d, want 103", sum)
	}
	if one := EqualBuckets(3, 8); len(one) != 1 || one[0] != 3 {
		t.Fatalf("tiny payload should stay one bucket: %v", one)
	}
}
