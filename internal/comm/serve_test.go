package comm

import (
	"strings"
	"testing"

	"repro/internal/serve"
)

// The closed form must reproduce every measured counter exactly across the
// deterministic-clock regime: size- and deadline-triggered steady states,
// trigger ties, partial final batches, single-request runs, zero delay,
// multi-replica pools, and the capacity-equality boundary.
func TestExpectedServeStatsCounterForCounter(t *testing.T) {
	cases := []struct {
		name string
		cfg  serve.Config
		n    int
		gap  serve.Ticks
	}{
		{"size-regime", serve.Config{MaxBatch: 4, MaxDelay: 500, Replicas: 1, Service: serve.ServiceModel{Base: 50, PerImage: 20}}, 64, 100},
		{"deadline-regime", serve.Config{MaxBatch: 16, MaxDelay: 400, Replicas: 1, Service: serve.ServiceModel{Base: 50, PerImage: 20}}, 64, 100},
		{"trigger-tie", serve.Config{MaxBatch: 5, MaxDelay: 400, Replicas: 1, Service: serve.ServiceModel{Base: 50, PerImage: 20}}, 60, 100},
		{"partial-tail", serve.Config{MaxBatch: 4, MaxDelay: 900, Replicas: 1, Service: serve.ServiceModel{Base: 50, PerImage: 20}}, 63, 100},
		{"fewer-than-one-batch", serve.Config{MaxBatch: 16, MaxDelay: 5000, Replicas: 2, Service: serve.ServiceModel{Base: 50, PerImage: 20}}, 7, 100},
		{"single-request", serve.Config{MaxBatch: 8, MaxDelay: 250, Replicas: 1, Service: serve.ServiceModel{Base: 50, PerImage: 20}}, 1, 100},
		{"zero-delay", serve.Config{MaxBatch: 8, MaxDelay: 0, Replicas: 2, Service: serve.ServiceModel{Base: 10, PerImage: 5}}, 40, 100},
		{"batch-of-one", serve.Config{MaxBatch: 1, MaxDelay: 700, Replicas: 1, Service: serve.ServiceModel{Base: 10, PerImage: 5}}, 40, 100},
		{"multi-replica", serve.Config{MaxBatch: 8, MaxDelay: 700, Replicas: 3, Service: serve.ServiceModel{Base: 400, PerImage: 100}}, 96, 100},
		{"capacity-equality", serve.Config{MaxBatch: 4, MaxDelay: 300, Replicas: 2, Service: serve.ServiceModel{Base: 0, PerImage: 200}}, 48, 100},
		{"bounded-queue-ok", serve.Config{MaxBatch: 4, MaxDelay: 300, QueueCap: 4, Replicas: 1, Service: serve.ServiceModel{Base: 40, PerImage: 10}}, 32, 100},
		{"coarse-gap", serve.Config{MaxBatch: 6, MaxDelay: 500, Replicas: 1, Service: serve.ServiceModel{Base: 30, PerImage: 15}}, 25, 700},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := serve.Simulate(tc.cfg, serve.UniformTrace(tc.n, tc.gap, 4))
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			want, err := ExpectedServeStats(tc.cfg, tc.n, tc.gap)
			if err != nil {
				t.Fatalf("ExpectedServeStats: %v", err)
			}
			if !rep.Stats.Equal(want) {
				t.Fatalf("measured != model:\n%s", rep.Stats.Diff(want))
			}
		})
	}
}

// Negative control: perturbing MaxDelay by one tick crosses the batch-size
// boundary (g=100, D=400 → b=5; D=399 → b=4), and the twin must detect it —
// the perturbed model may not match the unperturbed measurement.
func TestExpectedServeStatsNegativeControl(t *testing.T) {
	cfg := serve.Config{MaxBatch: 16, MaxDelay: 400, Replicas: 1,
		Service: serve.ServiceModel{Base: 50, PerImage: 20}}
	const n, gap = 100, 100

	if b := ServeBatchSize(cfg, gap); b != 5 {
		t.Fatalf("baseline batch size %d, want 5", b)
	}
	rep, err := serve.Simulate(cfg, serve.UniformTrace(n, gap, 4))
	if err != nil {
		t.Fatal(err)
	}

	perturbed := cfg
	perturbed.MaxDelay = 399
	if b := ServeBatchSize(perturbed, gap); b != 4 {
		t.Fatalf("perturbed batch size %d, want 4", b)
	}
	wrong, err := ExpectedServeStats(perturbed, n, gap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Equal(wrong) {
		t.Fatal("perturbed model matched unperturbed measurement — the twin is not sensitive to MaxDelay")
	}
	diff := rep.Stats.Diff(wrong)
	if !strings.Contains(diff, "Batches") || !strings.Contains(diff, "Hist[") {
		t.Fatalf("perturbation should move batch counters, diff:\n%s", diff)
	}
	// And the perturbed measurement matches the perturbed model: the twin
	// tracks the real boundary, it doesn't just differ from everything.
	rep2, err := serve.Simulate(perturbed, serve.UniformTrace(n, gap, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Stats.Equal(wrong) {
		t.Fatalf("perturbed measured != perturbed model:\n%s", rep2.Stats.Diff(wrong))
	}
}

// The model refuses regimes it does not cover instead of guessing.
func TestExpectedServeStatsRefusals(t *testing.T) {
	base := serve.Config{MaxBatch: 4, MaxDelay: 300, Replicas: 1,
		Service: serve.ServiceModel{Base: 50, PerImage: 20}}

	rejecting := base
	rejecting.QueueCap = 3 // below steady batch size 4
	if _, err := ExpectedServeStats(rejecting, 32, 100); err == nil {
		t.Fatal("model accepted a rejecting regime")
	}

	saturated := base
	saturated.Service = serve.ServiceModel{Base: 500, PerImage: 200} // S(4)=1300 > 400
	if _, err := ExpectedServeStats(saturated, 32, 100); err == nil {
		t.Fatal("model accepted a saturated regime")
	}
	// ...but the same service model with enough replicas is fine.
	saturated.Replicas = 4 // R·b·g = 1600 >= 1300
	rep, err := serve.Simulate(saturated, serve.UniformTrace(32, 100, 4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedServeStats(saturated, 32, 100)
	if err != nil {
		t.Fatalf("model refused a feasible multi-replica regime: %v", err)
	}
	if !rep.Stats.Equal(want) {
		t.Fatalf("measured != model:\n%s", rep.Stats.Diff(want))
	}

	if _, err := ExpectedServeStats(base, 10, 0); err == nil {
		t.Fatal("model accepted gap 0")
	}
}

// Saturation rate: one replica at batch 4 with S(4)=1300µs sustains
// 4/1300µs ≈ 3076.9 req/s.
func TestServeSaturationRate(t *testing.T) {
	m := serve.ServiceModel{Base: 500, PerImage: 200}
	got := ServeSaturationRate(m, 4)
	want := 4.0 / (1300.0 / serve.TicksPerSecond)
	if got != want {
		t.Fatalf("saturation rate %v, want %v", got, want)
	}
	if ServeSaturationRate(serve.ServiceModel{}, 4) != 0 {
		t.Fatal("zero service model should price to 0")
	}
}
