package comm

import "repro/internal/dist"

// This file is the analytic twin of the engine's overlap scheduler
// (dist.Config.Overlap): the closed-form hidden/exposed split of one
// overlapped training step, and the alpha-beta timing model that pipelines
// bucketed allreduces against the backward pass — the bucket-level
// replacement for the crude max(0, t_comm − t_comp/2) exposure heuristic.

// ExpectedOverlapStats returns the closed-form dist.OverlapStats of one
// overlapped training step (bucketed gradient reduce plus weight broadcast)
// of a raw-float32 gradient across p workers — the analytic twin of
// Engine.StepOverlapStats under Config.Overlap, cross-checked exactly in
// tests. paramElems lists the per-parameter coordinate counts in Params()
// order and bucketElems the engine's Config.BucketElems; the split follows
// the engine's structural rule: a bucket's reduction hides inside the
// backward pass unless the bucket covers parameter 0, whose gradient is the
// last to land; broadcasts are always exposed.
func ExpectedOverlapStats(algo dist.Algorithm, p int, paramElems []int, bucketElems int) dist.OverlapStats {
	return expectedOverlap(paramElems, bucketElems,
		func(payload int64) dist.CommStats { return dist.ReduceSchedule(algo, p, payload) },
		func(payload int64) dist.CommStats { return dist.BroadcastSchedule(algo, p, payload) })
}

// ExpectedHierOverlapStats is ExpectedOverlapStats for a two-tier
// hierarchical engine (Config.Topology): per bucket the aggregate of the
// per-tier reduce schedule hides, the hierarchical broadcast is exposed.
func ExpectedHierOverlapStats(h dist.Hierarchy, paramElems []int, bucketElems int) dist.OverlapStats {
	return expectedOverlap(paramElems, bucketElems,
		func(payload int64) dist.CommStats { return dist.HierReduceSchedule(h, payload).Total() },
		func(payload int64) dist.CommStats { return dist.HierBroadcastSchedule(h, payload).Total() })
}

// expectedOverlap walks the engine's bucket layout classifying each bucket
// by the structural rule shared with Engine.mapBuckets.
func expectedOverlap(paramElems []int, bucketElems int, reduce, broadcast func(int64) dist.CommStats) dist.OverlapStats {
	total := 0
	for _, n := range paramElems {
		total += n
	}
	var o dist.OverlapStats
	for _, b := range dist.BucketRanges(total, bucketElems) {
		payload := 4 * int64(b[1]-b[0])
		// Hidden unless the bucket covers parameter 0 (the last gradient
		// to land): its low coordinate falls inside the first parameter.
		hidden := len(paramElems) > 0 && b[0] >= paramElems[0]
		r := reduce(payload)
		if hidden {
			o.HiddenRounds += r.Steps
			o.HiddenBytes += r.Bytes
		} else {
			o.ExposedRounds += r.Steps
			o.ExposedBytes += r.Bytes
		}
		bc := broadcast(payload)
		o.ExposedRounds += bc.Steps
		o.ExposedBytes += bc.Bytes
	}
	return o
}

// EqualBuckets splits totalBytes into k near-equal bucket payloads (the
// leading buckets carry the remainder), the bucket layout the simulator's
// overlap model pipelines. k <= 1 returns the whole payload as one bucket.
func EqualBuckets(totalBytes int64, k int) []int64 {
	if k <= 1 || int64(k) > totalBytes {
		return []int64{totalBytes}
	}
	base, rem := totalBytes/int64(k), totalBytes%int64(k)
	out := make([]int64, k)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// BucketTiming is one bucket's slot in the overlapped reduction pipeline.
// Buckets are indexed like the engine's (bucket 0 covers the first layers);
// the backward pass produces gradients in reverse, so the highest-indexed
// bucket is ready first and bucket 0 only at the end of the backward.
type BucketTiming struct {
	// Bytes is the bucket's gradient payload.
	Bytes int64
	// ReadySec is when the backward pass finishes the bucket's gradients
	// (its share of the backward, accumulated from the tail).
	ReadySec float64
	// StartSec is when the bucket's allreduce launches: ready, and the
	// fabric free of earlier buckets.
	StartSec float64
	// DoneSec is when the bucket's allreduce completes (for hierarchical
	// schedules: when its inter-tier exchange completes).
	DoneSec float64
	// Hidden marks buckets whose allreduce completed before the backward
	// pass ended — fully overlapped communication.
	Hidden bool
}

// OverlapSchedule pipelines the bucketed allreduces of one iteration
// against a backward pass of backwardSec seconds on a single fabric. Each
// bucket's backward share is proportional to its payload; buckets become
// ready from the tail of the gradient forwards (the order backward
// produces them) and their allreduces serialize on the fabric in that
// order. A bucket's communication is priced as its byte share of the
// full-payload AllreduceTime: consecutive buckets pipeline their latency
// rounds back-to-back on the fabric, so bucketing amortizes the alpha terms
// rather than multiplying them — the bucket costs sum exactly to the serial
// allreduce time, and splitting finer only enables overlap, never adds
// cost. The returned timeline is in bucket index order; ExposedTime gives
// the exposed remainder.
func OverlapSchedule(n Network, algo dist.Algorithm, p int, bucketBytes []int64, backwardSec float64) []BucketTiming {
	full := n.AllreduceTime(algo, p, sumBytes(bucketBytes))
	return overlapSchedule(bucketBytes, backwardSec,
		func(share float64) (float64, float64) { return 0, full * share })
}

// HierOverlapSchedule is OverlapSchedule for a two-tier hierarchy with each
// tier priced on its own fabric: bucket k's intra-node reduce runs on the
// intra fabric, its leader exchange on the inter fabric, and — the
// pipelining the composed topology enables — the inter exchange of bucket k
// overlaps the intra reduce of bucket k+1, since the two tiers occupy
// disjoint fabrics. As in OverlapSchedule, each tier's per-bucket cost is
// the bucket's byte share of that tier's full-payload time.
func HierOverlapSchedule(intra, inter Network, h dist.Hierarchy, bucketBytes []int64, backwardSec float64) []BucketTiming {
	total := sumBytes(bucketBytes)
	fullIntra := intra.AllreduceTime(h.Intra, h.PerNode, total)
	fullInter := inter.AllreduceTime(h.Inter, h.Nodes, total)
	return overlapSchedule(bucketBytes, backwardSec,
		func(share float64) (float64, float64) { return fullIntra * share, fullInter * share })
}

// sumBytes totals a bucket layout's payload.
func sumBytes(bucketBytes []int64) int64 {
	var total int64
	for _, b := range bucketBytes {
		total += b
	}
	return total
}

// overlapSchedule runs the two-stage pipeline: stage one (intra, zero for
// flat schedules) and stage two (inter / the whole flat allreduce) each
// serialize on their own fabric, buckets flowing through in readiness
// order. price maps a bucket's byte share of the payload to its two stage
// costs.
func overlapSchedule(bucketBytes []int64, backwardSec float64, price func(float64) (float64, float64)) []BucketTiming {
	total := sumBytes(bucketBytes)
	out := make([]BucketTiming, len(bucketBytes))
	var produced int64
	var stage1Free, stage2Free float64
	for j := len(bucketBytes) - 1; j >= 0; j-- {
		produced += bucketBytes[j]
		ready := backwardSec
		share := 1.0
		if total > 0 {
			ready = backwardSec * float64(produced) / float64(total)
			share = float64(bucketBytes[j]) / float64(total)
		}
		c1, c2 := price(share)
		start := ready
		if stage1Free > start {
			start = stage1Free
		}
		stage1Free = start + c1
		s2 := stage1Free
		if stage2Free > s2 {
			s2 = stage2Free
		}
		stage2Free = s2 + c2
		out[j] = BucketTiming{
			Bytes:    bucketBytes[j],
			ReadySec: ready,
			StartSec: start,
			DoneSec:  stage2Free,
			Hidden:   stage2Free <= backwardSec,
		}
	}
	return out
}

// ExposedTime returns the communication a timeline leaves exposed beyond
// the backward pass: the last completion minus backwardSec, never negative.
func ExposedTime(timeline []BucketTiming, backwardSec float64) float64 {
	var last float64
	for _, t := range timeline {
		if t.DoneSec > last {
			last = t.DoneSec
		}
	}
	if last <= backwardSec {
		return 0
	}
	return last - backwardSec
}

// OverlappedAllreduceTime prices the exposed communication of one bucketed
// gradient allreduce overlapped with a backwardSec backward pass on a
// single fabric — the bucket-level replacement for the old
// max(0, t_comm − t_comp/2) heuristic. The whole backward, not half the
// iteration's compute, is the hideable window, and only what the pipeline
// cannot fit inside it (at minimum the bucket covering the first layers,
// which is ready only when the backward ends) is exposed.
func (n Network) OverlappedAllreduceTime(algo dist.Algorithm, p int, bucketBytes []int64, backwardSec float64) float64 {
	return ExposedTime(OverlapSchedule(n, algo, p, bucketBytes, backwardSec), backwardSec)
}

// OverlappedHierAllreduceTime is OverlappedAllreduceTime for a two-tier
// hierarchy with per-fabric pricing and cross-tier bucket pipelining.
func OverlappedHierAllreduceTime(intra, inter Network, h dist.Hierarchy, bucketBytes []int64, backwardSec float64) float64 {
	return ExposedTime(HierOverlapSchedule(intra, inter, h, bucketBytes, backwardSec), backwardSec)
}
