package comm

import (
	"fmt"

	"repro/internal/serve"
)

// This file prices the serving tier the way the rest of comm prices
// training: closed forms for the dynamic batcher's steady state in the
// deterministic-clock regime — a uniform inter-arrival gap g, the trace
// serve.UniformTrace generates. In that regime every quantity the scheduler
// measures is exact arithmetic:
//
//	b = K                 if (K−1)·g ≤ D   (size trigger wins)
//	    ⌊D/g⌋ + 1         otherwise        (deadline trigger wins)
//	w = min(D, (K−1)·g)                    (head's wait at flush)
//
// Note w uses K, not b: when the deadline wins, the head waits the full D
// even though only b = ⌊D/g⌋+1 requests arrive inside the window.
//
// with K = MaxBatch, D = MaxDelay. Full batch j (0-indexed) heads at
// j·b·g, flushes at j·b·g + w; a final partial batch of r = n mod b
// requests flushes at its head's deadline. Under the capacity condition
// S(b) ≤ R·b·g (service of a full batch fits inside R batch periods)
// dispatch is immediate, so member m of a full batch sees latency
// w − m·g + S(b). Steady-state mean batch size is b and throughput equals
// the offered rate 1/g; saturation throughput per replica is b/S(b).

// ServeBatchSize returns the steady-state batch size b of the
// deterministic-clock regime for the given batch window and inter-arrival
// gap (gap >= 1).
func ServeBatchSize(cfg serve.Config, gap serve.Ticks) int {
	k := cfg.MaxBatch
	if serve.Ticks(k-1)*gap <= cfg.MaxDelay {
		return k
	}
	return int(cfg.MaxDelay/gap) + 1
}

// ServeSaturationRate returns the maximum sustainable request rate of one
// replica at batch size b, in requests per second: b / S(b).
func ServeSaturationRate(m serve.ServiceModel, b int) float64 {
	s := m.BatchTicks(b)
	if s == 0 {
		return 0
	}
	return float64(b) / (float64(s) / serve.TicksPerSecond)
}

// ExpectedServeStats prices a run of n uniform-gap requests exactly,
// counter-for-counter: the returned Stats must Equal the measured stats of
// serve.Simulate(cfg, serve.UniformTrace(n, gap, …)) — percentiles,
// histogram, flush causes, busy ticks and all. It refuses regimes the
// closed form does not cover: gap < 1, admission-control rejections
// (QueueCap below the steady batch size), or insufficient capacity
// (S(b) > Replicas·b·gap with more batches than replicas, where flushed
// batches would queue for dispatch).
func ExpectedServeStats(cfg serve.Config, n int, gap serve.Ticks) (serve.Stats, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	var st serve.Stats
	if cfg.MaxBatch < 1 || gap < 1 || n < 0 {
		return st, fmt.Errorf("comm: serve model wants MaxBatch >= 1, gap >= 1, n >= 0")
	}
	st.Hist = make([]int64, cfg.MaxBatch+1)
	st.Offered = int64(n)
	if n == 0 {
		return st, nil
	}

	b := ServeBatchSize(cfg, gap)
	w := cfg.MaxDelay
	fullCause := serve.DeadlineFlush
	if hw := serve.Ticks(cfg.MaxBatch-1) * gap; hw <= cfg.MaxDelay {
		w = hw
		fullCause = serve.SizeFlush
	}

	minNeeded := n
	if b < minNeeded {
		minNeeded = b
	}
	if cfg.QueueCap > 0 && cfg.QueueCap < minNeeded {
		return st, fmt.Errorf("comm: QueueCap %d below steady batch size %d — rejections are outside the closed form", cfg.QueueCap, minNeeded)
	}

	nFull := n / b
	r := n % b
	totalBatches := nFull
	if r > 0 {
		totalBatches++
	}
	svcFull := cfg.Service.BatchTicks(b)
	if totalBatches > cfg.Replicas && svcFull > serve.Ticks(cfg.Replicas)*serve.Ticks(b)*gap {
		return st, fmt.Errorf("comm: capacity violated: S(%d)=%d > R·b·g=%d — batches queue for dispatch, outside the closed form",
			b, svcFull, serve.Ticks(cfg.Replicas)*serve.Ticks(b)*gap)
	}

	st.Accepted = int64(n)
	st.Completed = int64(n)
	st.Batches = int64(totalBatches)
	st.QueueHWM = minNeeded
	if fullCause == serve.SizeFlush {
		st.SizeFlushes = int64(nFull)
		st.DeadlineFlushes = st.Batches - st.SizeFlushes
	} else {
		st.DeadlineFlushes = st.Batches
	}
	st.Hist[b] += int64(nFull)
	if r > 0 {
		st.Hist[r]++
	}

	latencies := make([]serve.Ticks, 0, n)
	for j := 0; j < nFull; j++ {
		head := serve.Ticks(j) * serve.Ticks(b) * gap
		done := head + w + svcFull
		if done > st.Makespan {
			st.Makespan = done
		}
		for m := 0; m < b; m++ {
			lat := w - serve.Ticks(m)*gap + svcFull
			latencies = append(latencies, lat)
			st.SumLatency += lat
		}
	}
	st.BusyTicks = serve.Ticks(nFull) * svcFull
	if r > 0 {
		head := serve.Ticks(nFull) * serve.Ticks(b) * gap
		svc := cfg.Service.BatchTicks(r)
		done := head + cfg.MaxDelay + svc
		if done > st.Makespan {
			st.Makespan = done
		}
		st.BusyTicks += svc
		for m := 0; m < r; m++ {
			lat := cfg.MaxDelay - serve.Ticks(m)*gap + svc
			latencies = append(latencies, lat)
			st.SumLatency += lat
		}
	}
	st.FillPercentiles(latencies)
	return st, nil
}
