package comm_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
)

// TestExpectedStatsAtIsSmallerWorld: the post-eviction closed form is the
// full-strength closed form at the shrunken world size, floored at one
// worker (no communication).
func TestExpectedStatsAtIsSmallerWorld(t *testing.T) {
	const payload = 1 << 20
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		for p := 2; p <= 8; p++ {
			for evicted := 0; evicted < p; evicted++ {
				got := comm.ExpectedStatsAt(algo, p, evicted, payload)
				want := comm.ExpectedStats(algo, p-evicted, payload)
				if got != want {
					t.Fatalf("%v P=%d evicted=%d: %+v, want %+v", algo, p, evicted, got, want)
				}
			}
		}
		if got := comm.ExpectedStatsAt(algo, 4, 7, payload); got != (dist.CommStats{}) {
			t.Fatalf("%v: over-evicted world should move nothing, got %+v", algo, got)
		}
	}
}

// TestExpectedDegradedTierStatsFullFleet: with every node at full strength
// the degraded closed form collapses to ExpectedTierStats.
func TestExpectedDegradedTierStatsFullFleet(t *testing.T) {
	const payload = 4096
	h := dist.NewHierarchy(3, 4)
	sizes := []int{4, 4, 4}
	if got, want := comm.ExpectedDegradedTierStats(h, sizes, payload), comm.ExpectedTierStats(h, payload); got != want {
		t.Fatalf("full-fleet degraded stats %+v, want %+v", got, want)
	}
}

// TestExpectedDegradedTierStatsShrunkenInter: losing a whole node shrinks
// the inter tier; losing every node but one empties it.
func TestExpectedDegradedTierStatsShrunkenInter(t *testing.T) {
	const payload = 4096
	h := dist.NewHierarchy(3, 4)
	twoNodes := comm.ExpectedDegradedTierStats(h, []int{4, 3}, payload)
	if want := comm.ExpectedStats(h.Inter, 2, payload); twoNodes.Inter != want {
		t.Fatalf("two-node inter tier %+v, want flat P=2 %+v", twoNodes.Inter, want)
	}
	// Intra latency rounds follow the slowest surviving node.
	if want := comm.ExpectedStats(h.Intra, 4, payload).Steps; twoNodes.Intra.Steps != want {
		t.Fatalf("intra rounds %d, want the largest node's %d", twoNodes.Intra.Steps, want)
	}
	oneNode := comm.ExpectedDegradedTierStats(h, []int{2}, payload)
	if oneNode.Inter != (dist.CommStats{}) {
		t.Fatalf("single surviving node still prices an inter tier: %+v", oneNode.Inter)
	}
}

// TestDegradedHierarchicalAllreduceTime: full fleet matches the uniform
// price; shrinking the fleet never makes the allreduce slower.
func TestDegradedHierarchicalAllreduceTime(t *testing.T) {
	const payload = 100 << 20
	h := dist.NewHierarchy(4, 8)
	intra, inter := comm.MellanoxFDR, comm.Intel10GbE
	full := comm.DegradedHierarchicalAllreduceTime(intra, inter, h, []int{8, 8, 8, 8}, payload)
	if want := comm.HierarchicalAllreduceTime(intra, inter, h, payload); full != want {
		t.Fatalf("full-fleet degraded time %v, want %v", full, want)
	}
	degraded := comm.DegradedHierarchicalAllreduceTime(intra, inter, h, []int{8, 8, 8, 5}, payload)
	if degraded > full {
		t.Fatalf("losing workers made the allreduce slower: %v > %v", degraded, full)
	}
	collapsed := comm.DegradedHierarchicalAllreduceTime(intra, inter, h, []int{8}, payload)
	if collapsed >= degraded {
		t.Fatalf("losing the inter tier should shed its cost: %v >= %v", collapsed, degraded)
	}
}
