package comm

// EnergyOp is one row of the paper's Table 12 (Horowitz's 45nm CMOS energy
// table): the energy of a single operation in picojoules, classified as
// computation or communication (data movement).
type EnergyOp struct {
	Name string
	Kind string // "computation" or "communication"
	PJ   float64
}

// Table12 returns the energy table in the paper's order.
func Table12() []EnergyOp {
	return []EnergyOp{
		{"32 bit int add", "computation", 0.1},
		{"32 bit float add", "computation", 0.9},
		{"32 bit register access", "communication", 1.0},
		{"32 bit int multiply", "computation", 3.1},
		{"32 bit float multiply", "computation", 3.7},
		{"32 bit SRAM access", "communication", 5.0},
		{"32 bit DRAM access", "communication", 640},
	}
}

// Energy constants (picojoules) used by the estimator.
const (
	pjFloatAdd   = 0.9
	pjFloatMul   = 3.7
	pjSRAMAccess = 5.0
	pjDRAMAccess = 640
)

// EnergyEstimate prices a training computation in joules: flops are split
// evenly between float adds and multiplies (a multiply-accumulate is one of
// each), and every word moved through DRAM costs a Table 12 DRAM access.
// The estimate exists to reproduce the paper's qualitative point that
// communication (data movement) dominates energy: a single DRAM access
// costs as much as ~700 float adds.
func EnergyEstimate(flops, dramWordAccesses int64) float64 {
	pj := float64(flops)/2*(pjFloatAdd+pjFloatMul) + float64(dramWordAccesses)*pjDRAMAccess
	return pj * 1e-12
}

// DRAMAccessesPerIteration approximates the words moved to/from DRAM per
// training iteration: weights and gradients are each read and written once
// (4|W|), and the batch's activations are assumed cache-resident (the
// favourable case; real traffic is higher, which only strengthens the
// conclusion that movement dominates).
func DRAMAccessesPerIteration(weights int64) int64 {
	return 4 * weights
}
