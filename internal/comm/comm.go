// Package comm implements the paper's communication analysis: the
// alpha-beta (latency/bandwidth) cost model over the network fabrics of
// Table 11, per-algorithm allreduce cost formulas, the iteration/message/
// volume arithmetic behind Table 2 and Figures 8-10, and the energy model
// of Table 12.
//
// The package is purely analytic — it prices communication patterns that
// internal/dist executes for real — so the measured byte/message counters
// from dist can be cross-checked against these formulas in tests.
//
// Every closed form here is independent of the engine's reduction policy
// (dist.Config.Reduction): CanonicalF64 and PairwiseF32 change only the
// summation arithmetic inside a worker, never the message schedule, so the
// same ExpectedStats/ExpectedTierStats/ExpectedOverlapStats twins hold for
// both. The *compute* side of the hot loop is measured, not modeled: the
// per-step phase profiler (dist.ProfileStats, the HotLoop study) reports
// where step wall time actually goes.
package comm

import (
	"fmt"

	"repro/internal/dist"
)

// Network is an alpha-beta fabric profile: sending an m-byte message costs
// Alpha + m·Beta seconds.
type Network struct {
	Name  string
	Alpha float64 // latency, seconds per message
	Beta  float64 // inverse bandwidth, seconds per byte
}

// The paper's Table 11 fabrics.
var (
	MellanoxFDR = Network{Name: "Mellanox 56Gb/s FDR IB", Alpha: 0.7e-6, Beta: 0.2e-9}
	IntelQDR    = Network{Name: "Intel 40Gb/s QDR IB", Alpha: 1.2e-6, Beta: 0.3e-9}
	Intel10GbE  = Network{Name: "Intel 10GbE NetEffect NE020", Alpha: 7.2e-6, Beta: 0.9e-9}
)

// Table11 returns the fabric profiles in the paper's order.
func Table11() []Network {
	return []Network{MellanoxFDR, IntelQDR, Intel10GbE}
}

// PointToPoint returns the time to move one message of the given size.
func (n Network) PointToPoint(bytes int64) float64 {
	return n.Alpha + float64(bytes)*n.Beta
}

// AllreduceTime prices one gradient allreduce of `bytes` payload across p
// workers under the given algorithm:
//
//	Central: 2(P−1)·(α + Bβ)        — serialized at the parameter server
//	Tree:    2·⌈log₂P⌉·(α + Bβ)     — Table 2's log(P) model
//	Ring:    2(P−1)·α + 2·(P−1)/P·Bβ — bandwidth optimal
//
// The factor 2 covers the paper's two phases: gradient sum and weight
// broadcast (or reduce-scatter + allgather for the ring).
func (n Network) AllreduceTime(algo dist.Algorithm, p int, bytes int64) float64 {
	if p <= 1 {
		return 0
	}
	b := float64(bytes)
	switch algo {
	case dist.Central:
		return 2 * float64(p-1) * (n.Alpha + b*n.Beta)
	case dist.Tree:
		return 2 * float64(ceilLog2(p)) * (n.Alpha + b*n.Beta)
	case dist.Ring:
		return 2*float64(p-1)*n.Alpha + 2*float64(p-1)/float64(p)*b*n.Beta
	default:
		panic(fmt.Sprintf("comm: unknown algorithm %v", algo))
	}
}

// ceilLog2 returns ⌈log₂ p⌉ for p >= 1.
func ceilLog2(p int) int {
	n, v := 0, 1
	for v < p {
		v *= 2
		n++
	}
	return n
}

// MessagesPerAllreduce returns the total point-to-point message count of
// one allreduce (sum + broadcast) under the algorithm, matching what
// internal/dist's counters record. It is the Messages column of
// ExpectedStats (Central/Tree: 2(P−1); Ring: reduce-scatter and allgather
// at P messages per step for 2(P−1) steps, plus the paired binomial
// weight broadcast).
func MessagesPerAllreduce(algo dist.Algorithm, p int) int64 {
	return ExpectedStats(algo, p, 0).Messages
}

// ExpectedStats returns the closed-form dist.CommStats of one full
// allreduce (gradient sum + weight broadcast) of a payloadBytes payload
// across p workers — the analytic twin of the counters internal/dist
// records while executing the same schedule, cross-checked in tests:
//
//	Central: msgs 2(P−1), bytes 2(P−1)·B, steps 2(P−1)
//	Tree:    msgs 2(P−1), bytes 2(P−1)·B, steps 2⌈log₂P⌉
//	Ring:    msgs 2P(P−1)+(P−1), bytes 3(P−1)·B, steps 2(P−1)+⌈log₂P⌉
//
// (Ring's reduce-scatter + allgather moves 2(P−1)·B aggregate bytes in
// 2(P−1) rounds of P concurrent chunk messages; its paired binomial weight
// broadcast adds (P−1) messages of the full payload.)
func ExpectedStats(algo dist.Algorithm, p int, payloadBytes int64) dist.CommStats {
	if p <= 1 {
		return dist.CommStats{}
	}
	pm := int64(p - 1)
	switch algo {
	case dist.Central:
		return dist.CommStats{Messages: 2 * pm, Bytes: 2 * pm * payloadBytes, Steps: 2 * pm}
	case dist.Tree:
		return dist.CommStats{Messages: 2 * pm, Bytes: 2 * pm * payloadBytes, Steps: 2 * int64(ceilLog2(p))}
	case dist.Ring:
		return dist.CommStats{
			Messages: 2*int64(p)*pm + pm,
			Bytes:    3 * pm * payloadBytes,
			Steps:    2*pm + int64(ceilLog2(p)),
		}
	default:
		panic(fmt.Sprintf("comm: unknown algorithm %v", algo))
	}
}

// ExpectedTierStats returns the closed-form per-tier schedule of one full
// hierarchical allreduce (intra-node reduce, inter-node exchange among the
// node leaders, broadcast back down) of a payloadBytes payload — the
// analytic twin of the per-tier counters internal/dist records when
// executing the same composed schedule, cross-checked exactly in tests.
//
// Each tier is the closed form of its own flat allreduce: the intra tier
// is ExpectedStats(h.Intra, h.PerNode, B) with messages and bytes summed
// over the h.Nodes concurrent per-node groups (latency rounds counted
// once — the nodes run on disjoint fabrics), and the inter tier is
// ExpectedStats(h.Inter, h.Nodes, B) among the leaders.
func ExpectedTierStats(h dist.Hierarchy, payloadBytes int64) dist.TierStats {
	intra := ExpectedStats(h.Intra, h.PerNode, payloadBytes)
	intra.Messages *= int64(h.Nodes)
	intra.Bytes *= int64(h.Nodes)
	return dist.TierStats{Intra: intra, Inter: ExpectedStats(h.Inter, h.Nodes, payloadBytes)}
}

// HierarchicalAllreduceTime prices one two-tier allreduce of `bytes`
// payload: the intra-node phases (reduce on the way up, fan-out on the way
// down) on the intra fabric, concurrently across nodes, plus the leader
// exchange on the inter fabric —
//
//	T = T_intra(h.Intra, h.PerNode) + T_inter(h.Inter, h.Nodes)
//
// with each term the corresponding flat AllreduceTime. This is the
// composition the paper's fastest clusters exploit: the P-worker flat cost
// on the slow fabric is replaced by a PerNode-sized cost on the fast local
// fabric plus an Nodes-sized cost on the slow one.
func HierarchicalAllreduceTime(intra, inter Network, h dist.Hierarchy, bytes int64) float64 {
	return intra.AllreduceTime(h.Intra, h.PerNode, bytes) + inter.AllreduceTime(h.Inter, h.Nodes, bytes)
}

// TimeFromTierStats prices a recorded (or expected) two-tier schedule with
// each tier on its own fabric, using the same aggregate alpha-beta view as
// TimeFromStats.
func TimeFromTierStats(intra, inter Network, t dist.TierStats) float64 {
	return intra.TimeFromStats(t.Intra) + inter.TimeFromStats(t.Inter)
}

// TimeFromStats prices a recorded (or expected) schedule on the fabric
// using the aggregate alpha-beta view: every latency round costs Alpha and
// every payload byte costs Beta. It complements AllreduceTime, which models
// the per-worker critical path rather than the aggregate traffic.
func (n Network) TimeFromStats(s dist.CommStats) float64 {
	return float64(s.Steps)*n.Alpha + float64(s.Bytes)*n.Beta
}

// Iterations returns the paper's analytic E·n/B iteration count (Table 2,
// Figure 8), rounding the exact ratio. Table 2's rows (e.g. B=4096 →
// 31,250) use this idealized arithmetic even when B does not divide n.
func Iterations(epochs, datasetSize, batch int) int64 {
	exact := float64(epochs) * float64(datasetSize) / float64(batch)
	return int64(exact + 0.5)
}

// IterationsCeil returns the iteration count of a real epoch-based loader
// that rounds each epoch up to whole batches.
func IterationsCeil(epochs, datasetSize, batch int) int64 {
	perEpoch := (datasetSize + batch - 1) / batch
	return int64(epochs) * int64(perEpoch)
}

// TotalMessages returns Figure 9's series: the number of messages a full
// training run sends. Message count per iteration is algorithm- and
// P-dependent; the paper's simplified analysis treats it as proportional to
// iterations, which holds for fixed algorithm and P.
func TotalMessages(algo dist.Algorithm, p, epochs, datasetSize, batch int) int64 {
	return Iterations(epochs, datasetSize, batch) * MessagesPerAllreduce(algo, p)
}

// TotalVolumeBytes returns Figure 10's series: the paper's communication
// volume |W|·E·n/B, in bytes (weightBytes = 4|W|).
func TotalVolumeBytes(weightBytes int64, epochs, datasetSize, batch int) int64 {
	return Iterations(epochs, datasetSize, batch) * weightBytes
}
