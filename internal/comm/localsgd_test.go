package comm

import (
	"testing"

	"repro/internal/dist"
)

// TestLocalSGDStatsH1MatchesEveryStep: at H=1 a local-SGD run syncs every
// step, so its closed form is exactly steps × the every-step allreduce
// closed form (reduce plus broadcast — ExpectedStats' two phases) for
// every algorithm and bucketing.
func TestLocalSGDStatsH1MatchesEveryStep(t *testing.T) {
	const p, nelems, steps = 8, 10_000, 12
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		perStep := ExpectedStats(algo, p, 4*int64(nelems))
		got := ExpectedLocalSGDStats(algo, p, 1, steps, nelems, 0, nil)
		want := dist.CommStats{
			Messages: perStep.Messages * steps,
			Bytes:    perStep.Bytes * steps,
			Steps:    perStep.Steps * steps,
		}
		if got != want {
			t.Fatalf("%v: H=1 closed form %+v, want steps×ExpectedStats %+v", algo, got, want)
		}
	}
}

// TestLocalSGDStatsScaleAsOneOverH: whenever H divides the step count,
// every counter is exactly 1/H of the H=1 run — the tentpole's comm-volume
// claim in closed form, bucketed and unbucketed.
func TestLocalSGDStatsScaleAsOneOverH(t *testing.T) {
	const p, nelems, steps = 4, 9_999, 24
	for _, bucketElems := range []int{0, 1000} {
		base := ExpectedLocalSGDStats(dist.Ring, p, 1, steps, nelems, bucketElems, nil)
		for _, h := range []int{2, 3, 4, 6, 8, 12, 24} {
			got := ExpectedLocalSGDStats(dist.Ring, p, h, steps, nelems, bucketElems, nil)
			if got.Bytes*int64(h) != base.Bytes || got.Messages*int64(h) != base.Messages {
				t.Fatalf("H=%d (buckets %d): %+v is not exactly 1/H of %+v", h, bucketElems, got, base)
			}
		}
	}
}

// TestLocalSGDRoundCounts pins the floor arithmetic of the round helpers,
// including steps H does not divide and the intra/full split.
func TestLocalSGDRoundCounts(t *testing.T) {
	if got := LocalSGDSyncRounds(10, 4); got != 2 {
		t.Fatalf("10 steps at H=4: %d sync rounds, want 2", got)
	}
	if got := LocalSGDSyncRounds(10, 0); got != 10 {
		t.Fatalf("H=0 is the every-step path: %d rounds, want 10", got)
	}
	if got := LocalSGDIntraRounds(16, 8, 2); got != 6 {
		t.Fatalf("16 steps at H=8, Hi=2: %d intra rounds, want 6", got)
	}
	if got := LocalSGDIntraRounds(16, 8, 0); got != 0 {
		t.Fatalf("intra disabled: %d rounds, want 0", got)
	}
	if got := LocalSGDIntraRounds(16, 8, 8); got != 0 {
		t.Fatalf("Hi=H: every intra boundary is a full boundary, got %d", got)
	}
}

// TestLocalSGDTierStatsNesting: the hierarchical closed form nests — with
// the intra tier disabled it is fullRounds × the two-tier round, adding
// intra rounds grows Intra only, and the FP16 wire halves the reduce bytes
// while the broadcast stays raw.
func TestLocalSGDTierStatsNesting(t *testing.T) {
	h := dist.NewHierarchy(4, 8)
	const nelems, steps = 25_000, 16

	plain := ExpectedLocalSGDTierStats(h, 8, 0, steps, nelems, 0, nil)
	round := dist.HierReduceSchedule(h, 4*int64(nelems))
	round.Add(dist.HierBroadcastSchedule(h, 4*int64(nelems)))
	want := dist.TierStats{
		Intra: dist.CommStats{Messages: round.Intra.Messages * 2, Bytes: round.Intra.Bytes * 2, Steps: round.Intra.Steps * 2},
		Inter: dist.CommStats{Messages: round.Inter.Messages * 2, Bytes: round.Inter.Bytes * 2, Steps: round.Inter.Steps * 2},
	}
	if plain != want {
		t.Fatalf("no-intra closed form %+v, want 2 full rounds %+v", plain, want)
	}

	layered := ExpectedLocalSGDTierStats(h, 8, 2, steps, nelems, 0, nil)
	if layered.Inter != plain.Inter {
		t.Fatalf("intra rounds leaked onto the inter tier: %+v vs %+v", layered.Inter, plain.Inter)
	}
	if layered.Intra.Bytes <= plain.Intra.Bytes {
		t.Fatalf("intra rounds added no intra traffic: %+v vs %+v", layered.Intra, plain.Intra)
	}

	fp16 := ExpectedLocalSGDTierStats(h, 8, 0, steps, nelems, 0, FP16Wire)
	if fp16.Inter.Bytes >= plain.Inter.Bytes || fp16.Intra.Bytes >= plain.Intra.Bytes {
		t.Fatalf("fp16 wire did not shrink the schedule: %+v vs %+v", fp16, plain)
	}
}

// TestLocalSGDStepTime: the amortized step-time model divides only the
// communication term by H, so it decreases monotonically toward the
// compute floor.
func TestLocalSGDStepTime(t *testing.T) {
	const comp = 0.050
	bytes := int64(100 << 20)
	prev := MellanoxFDR.LocalSGDStepTime(dist.Ring, 64, bytes, 1, comp)
	every := comp + MellanoxFDR.AllreduceTime(dist.Ring, 64, bytes)
	if prev != every {
		t.Fatalf("H=1 step time %v, want the every-step %v", prev, every)
	}
	for _, h := range []int{2, 4, 8, 64} {
		cur := MellanoxFDR.LocalSGDStepTime(dist.Ring, 64, bytes, h, comp)
		if cur >= prev || cur <= comp {
			t.Fatalf("H=%d step time %v not between compute floor %v and previous %v", h, cur, comp, prev)
		}
		prev = cur
	}
}
