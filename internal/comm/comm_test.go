package comm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/rng"
)

func TestTable11Profiles(t *testing.T) {
	nets := Table11()
	if len(nets) != 3 {
		t.Fatalf("Table 11 has %d rows, want 3", len(nets))
	}
	// Exact constants from the paper.
	if MellanoxFDR.Alpha != 0.7e-6 || MellanoxFDR.Beta != 0.2e-9 {
		t.Error("Mellanox FDR constants wrong")
	}
	if Intel10GbE.Alpha != 7.2e-6 || Intel10GbE.Beta != 0.9e-9 {
		t.Error("10GbE constants wrong")
	}
	// The paper's ordering claim: latency >> 1/bandwidth per byte, i.e.
	// alpha is thousands of betas.
	for _, n := range nets {
		if n.Alpha/n.Beta < 1000 {
			t.Errorf("%s: alpha/beta = %v, expected latency-dominated small messages", n.Name, n.Alpha/n.Beta)
		}
	}
}

func TestPointToPoint(t *testing.T) {
	got := IntelQDR.PointToPoint(1000)
	want := 1.2e-6 + 1000*0.3e-9
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("PointToPoint = %v, want %v", got, want)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 2048: 11}
	for p, want := range cases {
		if got := ceilLog2(p); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestAllreduceTimeSingleWorkerFree(t *testing.T) {
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		if got := MellanoxFDR.AllreduceTime(algo, 1, 1<<20); got != 0 {
			t.Errorf("%v: single-worker allreduce cost %v, want 0", algo, got)
		}
	}
}

// Property: for large messages the ring is never slower than tree or
// central (bandwidth optimality), and for P=2 all algorithms are within a
// small factor.
func TestRingBandwidthOptimalProperty(t *testing.T) {
	f := func(pp uint8, mb uint8) bool {
		p := int(pp%63) + 2
		bytes := (int64(mb) + 1) * 10 << 20 // 10MB..2.6GB: bandwidth-dominated
		ring := MellanoxFDR.AllreduceTime(dist.Ring, p, bytes)
		tree := MellanoxFDR.AllreduceTime(dist.Tree, p, bytes)
		central := MellanoxFDR.AllreduceTime(dist.Central, p, bytes)
		return ring <= tree*1.01 && ring <= central*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeBeatsCentralLargeP(t *testing.T) {
	bytes := int64(100 << 20)
	tree := IntelQDR.AllreduceTime(dist.Tree, 1024, bytes)
	central := IntelQDR.AllreduceTime(dist.Central, 1024, bytes)
	if tree >= central {
		t.Fatalf("tree (%v) should beat central (%v) at P=1024", tree, central)
	}
	// Table 2's model: tree cost grows like log2(P).
	t256 := IntelQDR.AllreduceTime(dist.Tree, 256, bytes)
	t512 := IntelQDR.AllreduceTime(dist.Tree, 512, bytes)
	ratio := (t512 - t256) / t256 // one extra round over 8 → 1/8
	if math.Abs(ratio-1.0/8) > 0.01 {
		t.Fatalf("tree scaling not logarithmic: grew %v from 256 to 512", ratio)
	}
}

func TestIterationsTable2(t *testing.T) {
	// Table 2 exact rows: 1.28M images, 100 epochs.
	cases := []struct {
		batch int
		want  int64
	}{
		{512, 250000},
		{1024, 125000},
		{2048, 62500},
		{4096, 31250},
		{8192, 15625},
	}
	for _, tc := range cases {
		if got := Iterations(100, 1280000, tc.batch); got != tc.want {
			t.Errorf("Iterations(B=%d) = %d, want %d", tc.batch, got, tc.want)
		}
	}
}

func TestIterationsInverseInBatch(t *testing.T) {
	// Figure 8: doubling the batch halves the iterations (up to rounding).
	f := func(bb uint8) bool {
		b := (int(bb%10) + 1) * 512
		i1 := Iterations(90, 1280000, b)
		i2 := Iterations(90, 1280000, 2*b)
		return i2 <= i1/2+90 // rounding slack: one per epoch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalVolumeFigure10(t *testing.T) {
	// Figure 10: volume = |W|·E·n/B. AlexNet at B=512 vs B=32768: the large
	// batch moves 64x less data.
	w := models.AlexNetSpec().WeightBytes()
	small := TotalVolumeBytes(w, 100, 1280000, 512)
	large := TotalVolumeBytes(w, 100, 1280000, 32768)
	if small/large != 62 && small/large != 64 && small/large != 63 {
		t.Fatalf("volume ratio = %d, want ~64x reduction", small/large)
	}
}

func TestTotalMessagesFigure9(t *testing.T) {
	// Messages are proportional to iterations for fixed algorithm and P.
	m512 := TotalMessages(dist.Tree, 64, 100, 1280000, 512)
	m1024 := TotalMessages(dist.Tree, 64, 100, 1280000, 1024)
	if m512 != 2*m1024 {
		t.Fatalf("messages should halve when batch doubles: %d vs %d", m512, m1024)
	}
}

// TestMessagesMatchDistCounters cross-checks the analytic message count
// against the real data movement performed by internal/dist.
func TestMessagesMatchDistCounters(t *testing.T) {
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		for _, p := range []int{2, 3, 4, 8} {
			bufs := make([][]float32, p)
			r := rng.New(uint64(p))
			for i := range bufs {
				bufs[i] = make([]float32, 50)
				for j := range bufs[i] {
					bufs[i][j] = r.NormFloat32()
				}
			}
			var stats dist.CommStats
			dist.Reduce(algo, bufs, &stats)
			dist.Broadcast(algo, bufs, &stats)
			if got, want := stats.Messages, MessagesPerAllreduce(algo, p); got != want {
				t.Errorf("%v P=%d: dist moved %d messages, model says %d", algo, p, got, want)
			}
		}
	}
}

// TestExpectedStatsMatchDistCounters cross-checks the full closed-form
// schedule — messages, bytes and latency rounds — against the counters the
// executing layer records for one allreduce.
func TestExpectedStatsMatchDistCounters(t *testing.T) {
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		for _, p := range []int{2, 3, 4, 8, 16} {
			const n = 80
			bufs := make([][]float32, p)
			for i := range bufs {
				bufs[i] = make([]float32, n)
			}
			var stats dist.CommStats
			dist.Reduce(algo, bufs, &stats)
			dist.Broadcast(algo, bufs, &stats)
			if want := ExpectedStats(algo, p, 4*n); stats != want {
				t.Errorf("%v P=%d: dist recorded %+v, model says %+v", algo, p, stats, want)
			}
		}
	}
}

// TestExpectedTierStatsMatchHierCollectives cross-checks the hierarchical
// closed forms against the per-tier counters the executing layer records
// for one composed allreduce, over varied layouts and algorithm pairings.
func TestExpectedTierStatsMatchHierCollectives(t *testing.T) {
	layouts := []dist.Hierarchy{
		dist.NewHierarchy(2, 2),
		dist.NewHierarchy(2, 4),
		dist.NewHierarchy(4, 2),
		dist.NewHierarchy(3, 2),
		{Nodes: 2, PerNode: 3, Intra: dist.Central, Inter: dist.Ring},
		{Nodes: 4, PerNode: 1, Intra: dist.Ring, Inter: dist.Tree},
		{Nodes: 1, PerNode: 4, Intra: dist.Ring, Inter: dist.Tree},
	}
	const n = 60
	for _, h := range layouts {
		bufs := make([][]float32, h.Workers())
		for i := range bufs {
			bufs[i] = make([]float32, n)
		}
		var tiers dist.TierStats
		dist.HierReduce(h, bufs, &tiers)
		dist.HierBroadcast(h, bufs, &tiers)
		if want := ExpectedTierStats(h, 4*n); tiers != want {
			t.Errorf("%v: dist recorded %+v, model says %+v", h, tiers, want)
		}
	}
}

// TestHierarchicalAllreduceTimeComposes pins the two-fabric price to the
// sum of its per-tier flat prices.
func TestHierarchicalAllreduceTimeComposes(t *testing.T) {
	h := dist.NewHierarchy(8, 4)
	const bytes = 10 << 20
	got := HierarchicalAllreduceTime(MellanoxFDR, Intel10GbE, h, bytes)
	want := MellanoxFDR.AllreduceTime(dist.Ring, 4, bytes) + Intel10GbE.AllreduceTime(dist.Tree, 8, bytes)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("HierarchicalAllreduceTime = %v, want %v", got, want)
	}
}

// TestHierarchyBeatsFlatOnSlowInterFabric is the paper's motivation for
// composing fabrics: 64 workers as 8 nodes of 8 on a fast local fabric
// (NVLink-like) plus a slow cluster fabric must out-price the flat 64-way
// ring that pushes every round through the slow fabric, in both the
// latency-bound (small payload) and bandwidth-bound (large payload) regimes.
func TestHierarchyBeatsFlatOnSlowInterFabric(t *testing.T) {
	nvlink := Network{Name: "NVLink-like", Alpha: 5.0e-6, Beta: 0.0125e-9}
	h := dist.Hierarchy{Nodes: 8, PerNode: 8, Intra: dist.Ring, Inter: dist.Ring}
	for _, bytes := range []int64{1 << 10, 100 << 20} {
		flat := Intel10GbE.AllreduceTime(dist.Ring, 64, bytes)
		hier := HierarchicalAllreduceTime(nvlink, Intel10GbE, h, bytes)
		if hier >= flat {
			t.Errorf("bytes=%d: hierarchical %v should beat flat %v on the slow fabric", bytes, hier, flat)
		}
	}
}

// TestTimeFromTierStatsPricesPerFabric: each tier must be priced on its own
// alpha-beta profile.
func TestTimeFromTierStatsPricesPerFabric(t *testing.T) {
	ts := dist.TierStats{
		Intra: dist.CommStats{Steps: 4, Bytes: 1 << 20},
		Inter: dist.CommStats{Steps: 6, Bytes: 2 << 20},
	}
	want := MellanoxFDR.TimeFromStats(ts.Intra) + Intel10GbE.TimeFromStats(ts.Inter)
	if got := TimeFromTierStats(MellanoxFDR, Intel10GbE, ts); math.Abs(got-want) > 1e-15 {
		t.Fatalf("TimeFromTierStats = %v, want %v", got, want)
	}
}

// TestTimeFromStatsPricesSchedule pins the aggregate alpha-beta pricing.
func TestTimeFromStatsPricesSchedule(t *testing.T) {
	s := dist.CommStats{Steps: 10, Bytes: 1 << 20}
	want := 10*IntelQDR.Alpha + float64(1<<20)*IntelQDR.Beta
	if got := IntelQDR.TimeFromStats(s); math.Abs(got-want) > 1e-15 {
		t.Fatalf("TimeFromStats = %v, want %v", got, want)
	}
	// More latency rounds on a latency-bound fabric must cost more.
	central := ExpectedStats(dist.Central, 64, 1000)
	tree := ExpectedStats(dist.Tree, 64, 1000)
	if Intel10GbE.TimeFromStats(central) <= Intel10GbE.TimeFromStats(tree) {
		t.Fatal("central's 2(P-1) rounds should out-price tree's 2log2(P)")
	}
}

func TestTable12Energy(t *testing.T) {
	rows := Table12()
	if len(rows) != 7 {
		t.Fatalf("Table 12 has %d rows, want 7", len(rows))
	}
	// DRAM access must dwarf float add (the paper's headline comparison).
	var dram, fadd float64
	for _, r := range rows {
		switch r.Name {
		case "32 bit DRAM access":
			dram = r.PJ
		case "32 bit float add":
			fadd = r.PJ
		}
	}
	if dram/fadd < 500 {
		t.Fatalf("DRAM/float-add energy ratio %v, want >> 1", dram/fadd)
	}
}

func TestEnergyEstimateCommunicationDominates(t *testing.T) {
	// One ResNet-50 iteration at batch 256: ~256·23 GFLOPs of compute vs
	// 4|W| DRAM words. Compute energy should dominate DRAM traffic for
	// weights — but per *weight word moved*, communication is far more
	// expensive than one flop.
	w := models.ResNet50Spec()
	flops := int64(256) * w.TrainFLOPsPerImage()
	dram := DRAMAccessesPerIteration(w.ParamCount())
	total := EnergyEstimate(flops, dram)
	commOnly := EnergyEstimate(0, dram)
	compOnly := EnergyEstimate(flops, 0)
	if total <= commOnly || total <= compOnly {
		t.Fatal("energy must be additive")
	}
	perFlop := compOnly / float64(flops)
	perWord := commOnly / float64(dram)
	if perWord/perFlop < 100 {
		t.Fatalf("per-word movement energy should dwarf per-flop energy: ratio %v", perWord/perFlop)
	}
}
