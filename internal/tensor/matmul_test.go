package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// naiveGemm is the reference implementation against which the optimized
// kernel is validated.
func naiveGemm(transA, transB bool, alpha float32, a, b *Tensor, beta float32, c *Tensor) {
	get := func(t *Tensor, trans bool, i, j int) float32 {
		if trans {
			return t.Data[j*t.Shape[1]+i]
		}
		return t.Data[i*t.Shape[1]+j]
	}
	m, n := c.Shape[0], c.Shape[1]
	k := a.Shape[1]
	if transA {
		k = a.Shape[0]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += get(a, transA, i, l) * get(b, transB, l, j)
			}
			c.Data[i*n+j] = beta*c.Data[i*n+j] + alpha*s
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := RandNormal(r, 1, 5, 5)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(1, i, i)
	}
	c := MatMul(a, eye)
	for i := range a.Data {
		if !almostEq(float64(c.Data[i]), float64(a.Data[i]), 1e-6) {
			t.Fatalf("A·I != A at %d: %v vs %v", i, c.Data[i], a.Data[i])
		}
	}
}

func TestGemmAllTransposeVariants(t *testing.T) {
	r := rng.New(7)
	const m, k, n = 9, 11, 6
	for _, tc := range []struct{ ta, tb bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		ash := []int{m, k}
		if tc.ta {
			ash = []int{k, m}
		}
		bsh := []int{k, n}
		if tc.tb {
			bsh = []int{n, k}
		}
		a := RandNormal(r, 1, ash...)
		b := RandNormal(r, 1, bsh...)
		c1 := RandNormal(r, 1, m, n)
		c2 := c1.Clone()
		Gemm(tc.ta, tc.tb, 0.7, a, b, 0.3, c1)
		naiveGemm(tc.ta, tc.tb, 0.7, a, b, 0.3, c2)
		for i := range c1.Data {
			if !almostEq(float64(c1.Data[i]), float64(c2.Data[i]), 1e-4) {
				t.Fatalf("transA=%v transB=%v: mismatch at %d: %v vs %v", tc.ta, tc.tb, i, c1.Data[i], c2.Data[i])
			}
		}
	}
}

func TestGemmBetaZeroOverwritesGarbage(t *testing.T) {
	// beta=0 must overwrite pre-existing NaN, not multiply it.
	a := Ones(2, 2)
	b := Ones(2, 2)
	c := Full(float32(math.NaN()), 2, 2)
	Gemm(false, false, 1, a, b, 0, c)
	for i, v := range c.Data {
		if v != 2 {
			t.Fatalf("C[%d] = %v, want 2", i, v)
		}
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Gemm shape mismatch")
	Gemm(false, false, 1, New(2, 3), New(4, 2), 0, New(2, 2))
}

// Property: Gemm agrees with the naive triple loop on random shapes.
func TestGemmMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, mm, kk, nn uint8) bool {
		m, k, n := int(mm%12)+1, int(kk%12)+1, int(nn%12)+1
		r := rng.New(seed)
		a := RandNormal(r, 1, m, k)
		b := RandNormal(r, 1, k, n)
		c1 := New(m, n)
		c2 := New(m, n)
		Gemm(false, false, 1, a, b, 0, c1)
		naiveGemm(false, false, 1, a, b, 0, c2)
		for i := range c1.Data {
			if !almostEq(float64(c1.Data[i]), float64(c2.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeIdentityProperty(t *testing.T) {
	f := func(seed uint64, mm, kk, nn uint8) bool {
		m, k, n := int(mm%8)+1, int(kk%8)+1, int(nn%8)+1
		r := rng.New(seed)
		a := RandNormal(r, 1, m, k)
		b := RandNormal(r, 1, k, n)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		for i := range left.Data {
			if !almostEq(float64(left.Data[i]), float64(right.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float32{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.Data[0] != -2 || y.Data[1] != -2 {
		t.Fatalf("MatVec = %v", y.Data)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(3)
	a := RandNormal(r, 1, 4, 7)
	b := Transpose(Transpose(a))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("transpose is not an involution")
		}
	}
}

func BenchmarkGemm128(b *testing.B) {
	r := rng.New(1)
	x := RandNormal(r, 1, 128, 128)
	y := RandNormal(r, 1, 128, 128)
	c := New(128, 128)
	b.SetBytes(2 * 128 * 128 * 128 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, 1, x, y, 0, c)
	}
}
