package tensor

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randHalfT(r *rng.Rand, rows, cols int) (*Half, *Tensor) {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = r.NormFloat32()
	}
	h := NewHalf(rows, cols)
	PackHalf(h, t)
	return h, h.Float()
}

func tensorBitsEqual(t *testing.T, label string, got, want *Tensor) {
	t.Helper()
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: coord %d: %v vs %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestGemmHalfMatchesWidenedGemm: every transpose case of the half dispatch
// is bit-identical to the float32 Gemm over the widened operands, including
// under the par row decomposition.
func TestGemmHalfMatchesWidenedGemm(t *testing.T) {
	r := rng.New(21)
	const m, n, k = 13, 9, 300
	for _, tc := range []struct {
		name           string
		transA, transB bool
		aShape, bShape [2]int
	}{
		{"NN", false, false, [2]int{m, k}, [2]int{k, n}},
		{"TN", true, false, [2]int{k, m}, [2]int{k, n}},
		{"NT", false, true, [2]int{m, k}, [2]int{n, k}},
		{"TT", true, true, [2]int{k, m}, [2]int{n, k}},
	} {
		ah, af := randHalfT(r, tc.aShape[0], tc.aShape[1])
		bh, bf := randHalfT(r, tc.bShape[0], tc.bShape[1])
		got := New(m, n)
		for i := range got.Data {
			got.Data[i] = r.NormFloat32()
		}
		want := got.Clone()
		GemmHalf(tc.transA, tc.transB, 0.8, ah, bh, 0.4, got)
		Gemm(tc.transA, tc.transB, 0.8, af, bf, 0.4, want)
		tensorBitsEqual(t, tc.name, got, want)
	}
}

func TestMatVecHalfMatchesWidened(t *testing.T) {
	r := rng.New(22)
	const m, n = 37, 300
	ah, af := randHalfT(r, m, n)
	x := New(n)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	tensorBitsEqual(t, "MatVecHalf", MatVecHalf(ah, x), MatVec(af, x))
}

// TestPackHalfReusesStorage: repacking a different shape into the same Half
// must not allocate when capacity suffices, and must track the new shape —
// the layers repack activation scratch every step.
func TestPackHalfReusesStorage(t *testing.T) {
	h := NewHalf(4, 8)
	big := New(2, 16)
	for i := range big.Data {
		big.Data[i] = float32(i)
	}
	PackHalf(h, big)
	if h.Shape[0] != 2 || h.Shape[1] != 16 {
		t.Fatalf("shape not updated: %v", h.Shape)
	}
	small := New(3, 2)
	small.Fill(1.5)
	PackHalf(h, small)
	if h.Numel() != 6 {
		t.Fatalf("numel after shrink: %d", h.Numel())
	}
	f := h.Float()
	for i, v := range f.Data {
		if v != 1.5 {
			t.Fatalf("coord %d: %v after repack", i, v)
		}
	}
}

// TestPackHalfRounds: packing applies exactly one round-to-nearest-even per
// element (the only lossy step of the F16 path).
func TestPackHalfRounds(t *testing.T) {
	src := FromSlice([]float32{1, 1.0009765625, 1.0006, 65504, 1e-7, -2.5}, 6)
	h := NewHalf(6)
	PackHalf(h, src)
	f := h.Float()
	// 1e-7 lands between half subnormals; nearest is 2·2^-24 ≈ 1.19e-7.
	want := []float32{1, 1.0009765625, 1.0009765625, 65504, 1.1920929e-07, -2.5}
	for i := range want {
		diff := math.Abs(float64(f.Data[i]-want[i]) / (1e-30 + math.Abs(float64(want[i]))))
		if diff > 1e-4 {
			t.Fatalf("coord %d: %v, want ≈%v", i, f.Data[i], want[i])
		}
	}
}

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		err  bool
	}{
		{"f32", F32, false}, {"", F32, false}, {"f16", F16, false},
		{"half", F16, false}, {"fp16", F16, false}, {"f64", F32, true},
	} {
		got, err := ParsePrecision(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", tc.in, got, err)
		}
	}
	if F32.String() != "f32" || F16.String() != "f16" {
		t.Fatal("Precision.String mismatch")
	}
}
