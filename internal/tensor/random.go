package tensor

import (
	"math"

	"repro/internal/rng"
)

// FillNormal fills t with N(mean, std²) variates drawn from r.
func (t *Tensor) FillNormal(r *rng.Rand, mean, std float32) {
	for i := range t.Data {
		t.Data[i] = mean + std*r.NormFloat32()
	}
}

// FillUniform fills t with uniform variates in [lo, hi).
func (t *Tensor) FillUniform(r *rng.Rand, lo, hi float32) {
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*r.Float32()
	}
}

// RandNormal returns a new tensor of the given shape filled with N(0, std²).
func RandNormal(r *rng.Rand, std float32, shape ...int) *Tensor {
	t := New(shape...)
	t.FillNormal(r, 0, std)
	return t
}

// HeStd returns the He/Kaiming initialization standard deviation
// sqrt(2/fanIn), appropriate for ReLU networks such as AlexNet and ResNet.
func HeStd(fanIn int) float32 {
	return float32(math.Sqrt(2 / float64(fanIn)))
}

// XavierStd returns the Glorot/Xavier standard deviation sqrt(2/(fanIn+fanOut)).
func XavierStd(fanIn, fanOut int) float32 {
	return float32(math.Sqrt(2 / float64(fanIn+fanOut)))
}
