// Package tensor implements dense float32 tensors and the numerical kernels
// (GEMM, im2col convolution lowering, reductions, elementwise arithmetic)
// that the neural-network layers in this repository are built on.
//
// Tensors are contiguous and row-major. The package deliberately keeps the
// representation transparent — Data is an exported []float32 — because the
// optimizer, the distributed gradient reduction and the benchmark harness all
// want zero-copy access to flat parameter and gradient buffers.
//
// Heavy kernels (matrix multiply, im2col) parallelize across goroutines via
// internal/par; everything is deterministic for a fixed GOMAXPROCS-independent
// result because parallel loops only split elementwise or per-row work whose
// results do not depend on execution order.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
type Tensor struct {
	// Shape holds the extent of each dimension. A scalar has Shape []int{}.
	Shape []int
	// Data holds the elements in row-major order; len(Data) == Numel().
	Data []float32
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := numel(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it must have exactly numel(shape) elements.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != numel(shape) {
		panic(fmt.Sprintf("tensor: FromSlice: %d elements for shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies u's data into t. Shapes must match in element count.
func (t *Tensor) CopyFrom(u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(u.Data)))
	}
	copy(t.Data, u.Data)
}

// Reshape returns a view of t with a new shape (sharing Data). The new shape
// must have the same number of elements. A single -1 dimension is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = len(t.Data) / known
		known *= shape[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v for shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if t.Numel() <= 16 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor%v%v", t.Shape, t.Data)
		return b.String()
	}
	return fmt.Sprintf("Tensor%v[%d elements, l2=%.4g]", t.Shape, t.Numel(), t.Norm2())
}

// HasNaN reports whether any element is NaN or infinite. The training loop
// uses it to detect divergence (the paper's 0.001-accuracy rows in Table 5
// correspond to exactly this failure mode).
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}
