package tensor

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/par"
)

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW    int // input channels and spatial extent
	KH, KW           int // kernel extent
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Check panics if the geometry is degenerate.
func (g ConvGeom) Check() {
	if g.StrideH <= 0 || g.StrideW <= 0 || g.KH <= 0 || g.KW <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields empty output", g))
	}
}

// Im2Col lowers one image (CHW layout, shape [InC*InH*InW]) into a patch
// matrix of shape [InC*KH*KW, OutH*OutW] written into col. Each column holds
// the receptive field of one output position, so a convolution becomes a
// GEMM between the [outC, InC*KH*KW] filter matrix and this patch matrix.
// Out-of-bounds (padding) positions contribute zeros.
func Im2Col(g ConvGeom, src []float32, col []float32) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	rows := g.InC * g.KH * g.KW
	if len(src) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col src has %d elements, want %d", len(src), g.InC*g.InH*g.InW))
	}
	if len(col) != rows*cols {
		panic(fmt.Sprintf("tensor: Im2Col col has %d elements, want %d", len(col), rows*cols))
	}
	defer kernel.StartPhase(kernel.PhaseIm2col).End()
	par.ForGrain(rows, 8, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			c := r / (g.KH * g.KW)
			rem := r % (g.KH * g.KW)
			kh := rem / g.KW
			kw := rem % g.KW
			dst := col[r*cols : (r+1)*cols]
			plane := src[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
			idx := 0
			for oh := 0; oh < outH; oh++ {
				ih := oh*g.StrideH - g.PadH + kh
				if ih < 0 || ih >= g.InH {
					for ow := 0; ow < outW; ow++ {
						dst[idx] = 0
						idx++
					}
					continue
				}
				rowBase := ih * g.InW
				iw := -g.PadW + kw
				for ow := 0; ow < outW; ow++ {
					if iw >= 0 && iw < g.InW {
						dst[idx] = plane[rowBase+iw]
					} else {
						dst[idx] = 0
					}
					idx++
					iw += g.StrideW
				}
			}
		}
	})
}

// Col2Im accumulates a patch matrix (the gradient of Im2Col's output) back
// into an image gradient of CHW layout. It is the exact adjoint of Im2Col:
// positions that were read k times receive the sum of k contributions, and
// padding positions are dropped.
func Col2Im(g ConvGeom, col []float32, dst []float32) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	rows := g.InC * g.KH * g.KW
	if len(dst) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im dst has %d elements, want %d", len(dst), g.InC*g.InH*g.InW))
	}
	if len(col) != rows*cols {
		panic(fmt.Sprintf("tensor: Col2Im col has %d elements, want %d", len(col), rows*cols))
	}
	defer kernel.StartPhase(kernel.PhaseIm2col).End()
	// Parallelize over input channels: every destination element belongs to
	// exactly one channel, so channel-partitioned writes never race.
	par.ForGrain(g.InC, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			plane := dst[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					r := (c*g.KH+kh)*g.KW + kw
					src := col[r*cols : (r+1)*cols]
					idx := 0
					for oh := 0; oh < outH; oh++ {
						ih := oh*g.StrideH - g.PadH + kh
						if ih < 0 || ih >= g.InH {
							idx += outW
							continue
						}
						rowBase := ih * g.InW
						iw := -g.PadW + kw
						for ow := 0; ow < outW; ow++ {
							if iw >= 0 && iw < g.InW {
								plane[rowBase+iw] += src[idx]
							}
							idx++
							iw += g.StrideW
						}
					}
				}
			}
		}
	})
}
