package tensor

import (
	"fmt"

	"repro/internal/par"
)

// MatMul returns C = A·B for A of shape [m,k] and B of shape [k,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := mustMatrix("MatMul A", a)
	k2, n := mustMatrix("MatMul B", b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d vs %d", k, k2))
	}
	c := New(m, n)
	Gemm(false, false, 1, a, b, 0, c)
	return c
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C where op transposes its
// argument when the corresponding flag is set. A is [m,k] (or [k,m] when
// transA), B is [k,n] (or [n,k] when transB) and C must be [m,n].
//
// The kernel parallelizes over blocks of rows of C; each row of C is written
// by exactly one goroutine, so results are deterministic regardless of the
// worker count. The inner loops are ordered i-k-j so the innermost traversal
// is unit-stride over both B and C, which lets the compiler keep the hot path
// in registers — this is the single most performance-critical routine in the
// repository (conv layers lower onto it via im2col).
func Gemm(transA, transB bool, alpha float32, a, b *Tensor, beta float32, c *Tensor) {
	ra, ca := mustMatrix("Gemm A", a)
	rb, cb := mustMatrix("Gemm B", b)
	rc, cc := mustMatrix("Gemm C", c)
	m, k := ra, ca
	if transA {
		m, k = ca, ra
	}
	kb, n := rb, cb
	if transB {
		kb, n = cb, rb
	}
	if k != kb || rc != m || cc != n {
		panic(fmt.Sprintf("tensor: Gemm shape mismatch op(A)=[%d,%d] op(B)=[%d,%d] C=[%d,%d]", m, k, kb, n, rc, cc))
	}
	ad, bd, cd := a.Data, b.Data, c.Data

	// Choose a row granularity that gives each worker a few thousand
	// multiply-adds at minimum.
	grain := 1
	if work := k * n; work > 0 && work < 4096 {
		grain = 4096/work + 1
	}

	switch {
	case !transA && !transB:
		par.ForGrain(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				crow := cd[i*n : (i+1)*n]
				if beta == 0 {
					for j := range crow {
						crow[j] = 0
					}
				} else if beta != 1 {
					for j := range crow {
						crow[j] *= beta
					}
				}
				arow := ad[i*k : (i+1)*k]
				for l, av := range arow {
					if av == 0 {
						continue
					}
					s := alpha * av
					brow := bd[l*n : (l+1)*n]
					for j, bv := range brow {
						crow[j] += s * bv
					}
				}
			}
		})
	case transA && !transB:
		par.ForGrain(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				crow := cd[i*n : (i+1)*n]
				if beta == 0 {
					for j := range crow {
						crow[j] = 0
					}
				} else if beta != 1 {
					for j := range crow {
						crow[j] *= beta
					}
				}
				for l := 0; l < k; l++ {
					av := ad[l*ca+i]
					if av == 0 {
						continue
					}
					s := alpha * av
					brow := bd[l*n : (l+1)*n]
					for j, bv := range brow {
						crow[j] += s * bv
					}
				}
			}
		})
	case !transA && transB:
		par.ForGrain(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				crow := cd[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					brow := bd[j*k : (j+1)*k]
					var s float32
					for l, av := range arow {
						s += av * brow[l]
					}
					if beta == 0 {
						crow[j] = alpha * s
					} else {
						crow[j] = beta*crow[j] + alpha*s
					}
				}
			}
		})
	default: // transA && transB
		par.ForGrain(m, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				crow := cd[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					var s float32
					for l := 0; l < k; l++ {
						s += ad[l*ca+i] * bd[j*cb+l]
					}
					if beta == 0 {
						crow[j] = alpha * s
					} else {
						crow[j] = beta*crow[j] + alpha*s
					}
				}
			}
		})
	}
}

// MatVec returns y = A·x for A [m,n] and x [n].
func MatVec(a, x *Tensor) *Tensor {
	m, n := mustMatrix("MatVec A", a)
	if x.Numel() != n {
		panic(fmt.Sprintf("tensor: MatVec: A is [%d,%d], x has %d elements", m, n, x.Numel()))
	}
	y := New(m)
	ad, xd, yd := a.Data, x.Data, y.Data
	par.ForGrain(m, 32, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := ad[i*n : (i+1)*n]
			var s float32
			for j, v := range row {
				s += v * xd[j]
			}
			yd[i] = s
		}
	})
	return y
}

// Transpose returns a new [n,m] tensor holding the transpose of a [m,n].
func Transpose(a *Tensor) *Tensor {
	m, n := mustMatrix("Transpose", a)
	t := New(n, m)
	ad, td := a.Data, t.Data
	par.ForGrain(m, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				td[j*m+i] = ad[i*n+j]
			}
		}
	})
	return t
}

func mustMatrix(op string, t *Tensor) (rows, cols int) {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s: want matrix, got shape %v", op, t.Shape))
	}
	return t.Shape[0], t.Shape[1]
}
