package tensor

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/par"
)

// MatMul returns C = A·B for A of shape [m,k] and B of shape [k,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := mustMatrix("MatMul A", a)
	k2, n := mustMatrix("MatMul B", b)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d vs %d", k, k2))
	}
	c := New(m, n)
	Gemm(false, false, 1, a, b, 0, c)
	return c
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C where op transposes its
// argument when the corresponding flag is set. A is [m,k] (or [k,m] when
// transA), B is [k,n] (or [n,k] when transB) and C must be [m,n].
//
// The heavy lifting lives in internal/kernel's blocked micro-kernels
// (k-tiled, register-blocked, panel-packed for the transposed-A case);
// this wrapper validates shapes, parallelizes over blocks of rows of C and
// accounts the call to the profiler's gemm phase. Each row of C is written
// by exactly one goroutine and accumulated in a fixed order, so results
// are deterministic regardless of the worker count — this is the single
// most performance-critical routine in the repository (conv layers lower
// onto it via im2col).
func Gemm(transA, transB bool, alpha float32, a, b *Tensor, beta float32, c *Tensor) {
	ra, ca := mustMatrix("Gemm A", a)
	rb, cb := mustMatrix("Gemm B", b)
	rc, cc := mustMatrix("Gemm C", c)
	m, k := ra, ca
	if transA {
		m, k = ca, ra
	}
	kb, n := rb, cb
	if transB {
		kb, n = cb, rb
	}
	if k != kb || rc != m || cc != n {
		panic(fmt.Sprintf("tensor: Gemm shape mismatch op(A)=[%d,%d] op(B)=[%d,%d] C=[%d,%d]", m, k, kb, n, rc, cc))
	}
	defer kernel.StartPhase(kernel.PhaseGemm).End()
	ad, bd, cd := a.Data, b.Data, c.Data

	// Choose a row granularity that gives each worker a few thousand
	// multiply-adds at minimum.
	grain := 1
	if work := k * n; work > 0 && work < 4096 {
		grain = 4096/work + 1
	}

	switch {
	case !transA && !transB:
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmNN(hi-lo, n, k, alpha, ad[lo*k:hi*k], bd, beta, cd[lo*n:hi*n])
		})
	case transA && !transB:
		// op(A) row i is column i of the [k, m] array ad (row stride ca).
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmTN(hi-lo, n, k, alpha, ad, ca, lo, bd, beta, cd[lo*n:hi*n])
		})
	case !transA && transB:
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmNT(hi-lo, n, k, alpha, ad[lo*k:hi*k], bd, beta, cd[lo*n:hi*n])
		})
	default: // transA && transB
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmTT(hi-lo, n, k, alpha, ad, ca, lo, bd, cb, beta, cd[lo*n:hi*n])
		})
	}
}

// MatVec returns y = A·x for A [m,n] and x [n]. Each output element is one
// fixed-tree kernel dot product, so y is deterministic for any chunking.
func MatVec(a, x *Tensor) *Tensor {
	m, n := mustMatrix("MatVec A", a)
	if x.Numel() != n {
		panic(fmt.Sprintf("tensor: MatVec: A is [%d,%d], x has %d elements", m, n, x.Numel()))
	}
	defer kernel.StartPhase(kernel.PhaseGemm).End()
	y := New(m)
	ad, xd, yd := a.Data, x.Data, y.Data
	par.ForGrain(m, 32, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yd[i] = kernel.PairwiseDot(ad[i*n:(i+1)*n], xd)
		}
	})
	return y
}

// Transpose returns a new [n,m] tensor holding the transpose of a [m,n].
func Transpose(a *Tensor) *Tensor {
	m, n := mustMatrix("Transpose", a)
	t := New(n, m)
	ad, td := a.Data, t.Data
	par.ForGrain(m, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				td[j*m+i] = ad[i*n+j]
			}
		}
	})
	return t
}

func mustMatrix(op string, t *Tensor) (rows, cols int) {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s: want matrix, got shape %v", op, t.Shape))
	}
	return t.Shape[0], t.Shape[1]
}
