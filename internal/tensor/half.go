package tensor

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/par"
)

// Precision selects the storage precision of a layer's compute path. The
// trainer always holds float32 master weights; F16 only changes how GEMM
// operands are stored while they flow through the kernels (binary16 storage,
// float32 accumulation), following the mixed-precision recipe of Akiba et
// al. that the paper cites for NVIDIA's half-precision DGX-1 result.
type Precision int

const (
	// F32 is the default full-precision path.
	F32 Precision = iota
	// F16 stores GEMM/MatVec operands as binary16 and accumulates in
	// float32. Deterministic: a fixed one-rounding pack per operand plus
	// the kernels' fixed accumulation order, so results are bit-identical
	// under any worker count, chunking or topology — but (deliberately)
	// not equal to the F32 path's bits.
	F16
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case F32:
		return "f32"
	case F16:
		return "f16"
	default:
		return fmt.Sprintf("precision(%d)", int(p))
	}
}

// ParsePrecision converts a flag string to a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f32", "fp32", "float32", "":
		return F32, nil
	case "f16", "fp16", "half":
		return F16, nil
	default:
		return F32, fmt.Errorf("tensor: unknown precision %q (want f32 or f16)", s)
	}
}

// Half is a dense, contiguous, row-major binary16 buffer with a shape — the
// storage type of the F16 compute path. It deliberately mirrors Tensor's
// transparent representation; layers keep a Half scratch per operand and
// repack it each step.
type Half struct {
	Shape []int
	Data  []uint16
}

// NewHalf allocates a zero-filled half buffer with the given shape.
func NewHalf(shape ...int) *Half {
	return &Half{Shape: append([]int(nil), shape...), Data: make([]uint16, numel(shape))}
}

// Numel returns the number of elements.
func (h *Half) Numel() int { return len(h.Data) }

// PackHalf rounds src into h (round-to-nearest-even, one rounding per
// element), resizing h to src's shape and reusing its storage when possible.
// The conversion is accounted to the profiler's convert phase.
func PackHalf(h *Half, src *Tensor) {
	defer kernel.StartPhase(kernel.PhaseConvert).End()
	n := len(src.Data)
	h.Shape = append(h.Shape[:0], src.Shape...)
	if cap(h.Data) < n {
		h.Data = make([]uint16, n)
	}
	h.Data = h.Data[:n]
	kernel.EncodeHalf(h.Data, src.Data)
}

// Float widens h into a new float32 tensor (exact), accounted to the convert
// phase.
func (h *Half) Float() *Tensor {
	defer kernel.StartPhase(kernel.PhaseConvert).End()
	t := New(h.Shape...)
	kernel.DecodeHalf(t.Data, h.Data)
	return t
}

// GemmHalf computes C = alpha·op(A)·op(B) + beta·C where A and B are stored
// as binary16 and C is float32 — the F16 twin of Gemm, with the identical
// shape contract and parallel row decomposition. Accumulation runs in
// float32 inside the half kernels, and results are bit-identical to Gemm
// over the widened operands for every transpose case, under any worker
// count or chunking.
func GemmHalf(transA, transB bool, alpha float32, a, b *Half, beta float32, c *Tensor) {
	ra, ca := mustHalfMatrix("GemmHalf A", a)
	rb, cb := mustHalfMatrix("GemmHalf B", b)
	rc, cc := mustMatrix("GemmHalf C", c)
	m, k := ra, ca
	if transA {
		m, k = ca, ra
	}
	kb, n := rb, cb
	if transB {
		kb, n = cb, rb
	}
	if k != kb || rc != m || cc != n {
		panic(fmt.Sprintf("tensor: GemmHalf shape mismatch op(A)=[%d,%d] op(B)=[%d,%d] C=[%d,%d]", m, k, kb, n, rc, cc))
	}
	defer kernel.StartPhase(kernel.PhaseGemm).End()
	ad, bd, cd := a.Data, b.Data, c.Data

	// Same row-granularity heuristic as Gemm.
	grain := 1
	if work := k * n; work > 0 && work < 4096 {
		grain = 4096/work + 1
	}

	switch {
	case !transA && !transB:
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmNNHalf(hi-lo, n, k, alpha, ad[lo*k:hi*k], bd, beta, cd[lo*n:hi*n])
		})
	case transA && !transB:
		// op(A) row i is column i of the [k, m] array ad (row stride ca).
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmTNHalf(hi-lo, n, k, alpha, ad, ca, lo, bd, beta, cd[lo*n:hi*n])
		})
	case !transA && transB:
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmNTHalf(hi-lo, n, k, alpha, ad[lo*k:hi*k], bd, beta, cd[lo*n:hi*n])
		})
	default: // transA && transB: no layer lowers onto it; widen and fall back
		af, bf := a.Float(), b.Float()
		par.ForGrain(m, grain, func(lo, hi int) {
			kernel.GemmTT(hi-lo, n, k, alpha, af.Data, ca, lo, bf.Data, cb, beta, cd[lo*n:hi*n])
		})
	}
}

// MatVecHalf returns y = A·x for a binary16 A [m,n] and float32 x [n]. Each
// output element is one fixed-tree PairwiseDotHalf — bit-identical to MatVec
// over the widened A, deterministic for any chunking.
func MatVecHalf(a *Half, x *Tensor) *Tensor {
	m, n := mustHalfMatrix("MatVecHalf A", a)
	if x.Numel() != n {
		panic(fmt.Sprintf("tensor: MatVecHalf: A is [%d,%d], x has %d elements", m, n, x.Numel()))
	}
	defer kernel.StartPhase(kernel.PhaseGemm).End()
	y := New(m)
	ad, xd, yd := a.Data, x.Data, y.Data
	par.ForGrain(m, 32, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yd[i] = kernel.PairwiseDotHalf(ad[i*n:(i+1)*n], xd)
		}
	})
	return y
}

func mustHalfMatrix(op string, h *Half) (rows, cols int) {
	if len(h.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s: want matrix, got shape %v", op, h.Shape))
	}
	return h.Shape[0], h.Shape[1]
}
