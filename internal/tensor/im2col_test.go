package tensor

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// naiveConvOut computes one output position of a convolution directly, for
// validating the im2col lowering.
func naiveConvOut(g ConvGeom, src, filter []float32, oh, ow int) float32 {
	var s float32
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				ih := oh*g.StrideH - g.PadH + kh
				iw := ow*g.StrideW - g.PadW + kw
				if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
					continue
				}
				s += src[(c*g.InH+ih)*g.InW+iw] * filter[(c*g.KH+kh)*g.KW+kw]
			}
		}
	}
	return s
}

func TestConvGeomOutput(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 224, InW: 224, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	if g.OutH() != 112 || g.OutW() != 112 {
		t.Fatalf("ResNet conv1 geometry: got %dx%d, want 112x112", g.OutH(), g.OutW())
	}
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 2, PadH: 1, PadW: 1}
	g.Check()
	r := rng.New(11)
	src := RandNormal(r, 1, g.InC*g.InH*g.InW)
	filter := RandNormal(r, 1, g.InC*g.KH*g.KW)
	rows := g.InC * g.KH * g.KW
	cols := g.OutH() * g.OutW()
	col := make([]float32, rows*cols)
	Im2Col(g, src.Data, col)
	// filterᵀ · col should equal the direct convolution at every position.
	fm := FromSlice(filter.Data, 1, rows)
	cm := FromSlice(col, rows, cols)
	out := MatMul(fm, cm)
	for oh := 0; oh < g.OutH(); oh++ {
		for ow := 0; ow < g.OutW(); ow++ {
			want := naiveConvOut(g, src.Data, filter.Data, oh, ow)
			got := out.Data[oh*g.OutW()+ow]
			if !almostEq(float64(got), float64(want), 1e-4) {
				t.Fatalf("conv mismatch at (%d,%d): %v vs %v", oh, ow, got, want)
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. <Im2Col(x), y> == <x, Col2Im(y)>
// for all x, y. This is exactly the condition for the conv backward pass to
// compute correct input gradients.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed uint64, s1, s2 uint8) bool {
		g := ConvGeom{
			InC: int(s1%3) + 1, InH: int(s2%5) + 3, InW: int(s1%4) + 3,
			KH: 3, KW: 2, StrideH: int(s2%2) + 1, StrideW: 1, PadH: 1, PadW: 1,
		}
		g.Check()
		r := rng.New(seed)
		rows := g.InC * g.KH * g.KW
		cols := g.OutH() * g.OutW()
		x := RandNormal(r, 1, g.InC*g.InH*g.InW)
		y := RandNormal(r, 1, rows*cols)
		colX := make([]float32, rows*cols)
		Im2Col(g, x.Data, colX)
		imY := make([]float32, g.InC*g.InH*g.InW)
		Col2Im(g, y.Data, imY)
		lhs := FromSlice(colX, rows*cols).Dot(y.Reshape(rows * cols))
		rhs := x.Dot(FromSlice(imY, g.InC*g.InH*g.InW))
		return almostEq(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImAccumulates(t *testing.T) {
	// With a 2x2 kernel, stride 1, no padding on a 3x3 input, the center
	// pixel is read by all four output positions; Col2Im of all-ones must
	// therefore put 4 there.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	cols := g.OutH() * g.OutW()
	col := make([]float32, g.KH*g.KW*cols)
	for i := range col {
		col[i] = 1
	}
	img := make([]float32, 9)
	Col2Im(g, col, img)
	if img[4] != 4 {
		t.Fatalf("center accumulation = %v, want 4", img[4])
	}
	if img[0] != 1 {
		t.Fatalf("corner accumulation = %v, want 1", img[0])
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := ConvGeom{InC: 16, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	r := rng.New(1)
	src := RandNormal(r, 1, g.InC*g.InH*g.InW)
	col := make([]float32, g.InC*g.KH*g.KW*g.OutH()*g.OutW())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(g, src.Data, col)
	}
}
