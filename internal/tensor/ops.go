package tensor

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Add computes t += u elementwise.
func (t *Tensor) Add(u *Tensor) {
	checkSameLen("Add", t, u)
	a, b := t.Data, u.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] += b[i]
		}
	})
}

// Sub computes t -= u elementwise.
func (t *Tensor) Sub(u *Tensor) {
	checkSameLen("Sub", t, u)
	a, b := t.Data, u.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] -= b[i]
		}
	})
}

// Mul computes t *= u elementwise (Hadamard product).
func (t *Tensor) Mul(u *Tensor) {
	checkSameLen("Mul", t, u)
	a, b := t.Data, u.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] *= b[i]
		}
	})
}

// Scale computes t *= s.
func (t *Tensor) Scale(s float32) {
	a := t.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] *= s
		}
	})
}

// AddScalar computes t += s elementwise.
func (t *Tensor) AddScalar(s float32) {
	a := t.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] += s
		}
	})
}

// Axpy computes t += alpha*u (the BLAS axpy primitive). It is the workhorse
// of every optimizer update in internal/opt.
func (t *Tensor) Axpy(alpha float32, u *Tensor) {
	checkSameLen("Axpy", t, u)
	a, b := t.Data, u.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] += alpha * b[i]
		}
	})
}

// Lerp sets t = t*beta + u*alpha, used for momentum-style blends.
func (t *Tensor) Lerp(beta, alpha float32, u *Tensor) {
	checkSameLen("Lerp", t, u)
	a, b := t.Data, u.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = a[i]*beta + alpha*b[i]
		}
	})
}

// Apply replaces each element x with f(x). The function must be pure.
func (t *Tensor) Apply(f func(float32) float32) {
	a := t.Data
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = f(a[i])
		}
	})
}

// Sum returns the sum of all elements, accumulated in float64 for stability.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Dot returns the inner product <t, u> accumulated in float64.
func (t *Tensor) Dot(u *Tensor) float64 {
	checkSameLen("Dot", t, u)
	var s float64
	for i, v := range t.Data {
		s += float64(v) * float64(u.Data[i])
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm of t. LARS is built on this: the
// per-layer trust ratio is ‖w‖ / (‖∇w‖ + λ‖w‖).
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		f := float64(v)
		s += f * f
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the largest element of a 1-D view of t.
func (t *Tensor) ArgMax() int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// ArgMaxRows treats t as [rows, cols] and returns the argmax of each row.
// It is used to turn logits into class predictions.
func (t *Tensor) ArgMaxRows() []int {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows on shape %v", t.Shape))
	}
	rows, cols := t.Shape[0], t.Shape[1]
	out := make([]int, rows)
	par.ForGrain(rows, 64, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := t.Data[r*cols : (r+1)*cols]
			best, bestV := 0, float32(math.Inf(-1))
			for c, v := range row {
				if v > bestV {
					best, bestV = c, v
				}
			}
			out[r] = best
		}
	})
	return out
}

func checkSameLen(op string, t, u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic(fmt.Sprintf("tensor: %s: size mismatch %v vs %v", op, t.Shape, u.Shape))
	}
}
