package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewZeroFilled(t *testing.T) {
	x := New(3, 4)
	if x.Numel() != 12 {
		t.Fatalf("Numel = %d, want 12", x.Numel())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Data[0] = 42
	if d[0] != 42 {
		t.Fatal("FromSlice must not copy data")
	}
}

func TestFromSliceBadLenPanics(t *testing.T) {
	defer expectPanic(t, "FromSlice with wrong length")
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeInference(t *testing.T) {
	x := New(2, 3, 4)
	y := x.Reshape(6, -1)
	if y.Shape[0] != 6 || y.Shape[1] != 4 {
		t.Fatalf("Reshape(6,-1) gave %v", y.Shape)
	}
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("Reshape must share data")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer expectPanic(t, "Reshape changing element count")
	New(2, 3).Reshape(4, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(5, 1, 2)
	if got := x.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	if x.Data[1*3+2] != 5 {
		t.Fatal("Set wrote to wrong offset")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{10, 20, 30, 40}, 4)
	a.Add(b)
	want := []float32{11, 22, 33, 44}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Add: got %v", a.Data)
		}
	}
	a.Sub(b)
	for i, v := range []float32{1, 2, 3, 4} {
		if a.Data[i] != v {
			t.Fatalf("Sub: got %v", a.Data)
		}
	}
	a.Mul(b)
	for i, v := range []float32{10, 40, 90, 160} {
		if a.Data[i] != v {
			t.Fatalf("Mul: got %v", a.Data)
		}
	}
	a.Scale(0.5)
	for i, v := range []float32{5, 20, 45, 80} {
		if a.Data[i] != v {
			t.Fatalf("Scale: got %v", a.Data)
		}
	}
}

func TestAxpy(t *testing.T) {
	x := FromSlice([]float32{1, 1, 1}, 3)
	y := FromSlice([]float32{1, 2, 3}, 3)
	x.Axpy(2, y)
	for i, v := range []float32{3, 5, 7} {
		if x.Data[i] != v {
			t.Fatalf("Axpy: got %v", x.Data)
		}
	}
}

func TestLerp(t *testing.T) {
	v := FromSlice([]float32{10, 20}, 2)
	g := FromSlice([]float32{1, 2}, 2)
	v.Lerp(0.9, 0.1, g) // v = 0.9 v + 0.1 g
	if !almostEq(float64(v.Data[0]), 9.1, 1e-6) || !almostEq(float64(v.Data[1]), 18.2, 1e-6) {
		t.Fatalf("Lerp: got %v", v.Data)
	}
}

func TestSumDotNorm(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	if x.Sum() != 7 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Dot(x) != 25 {
		t.Fatalf("Dot = %v", x.Dot(x))
	}
	if x.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestHasNaN(t *testing.T) {
	x := New(3)
	if x.HasNaN() {
		t.Fatal("zero tensor has no NaN")
	}
	x.Data[1] = float32(math.NaN())
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
	x.Data[1] = float32(math.Inf(1))
	if !x.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

// Property: Sum is linear — Sum(a)+Sum(b) == Sum(a+b).
func TestSumLinearityProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%32) + 1
		r := rng.New(seed)
		a := RandNormal(r, 1, m)
		b := RandNormal(r, 1, m)
		sa, sb := a.Sum(), b.Sum()
		a.Add(b)
		return almostEq(a.Sum(), sa+sb, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2 is absolutely homogeneous — ‖s·x‖ == |s|·‖x‖.
func TestNormHomogeneityProperty(t *testing.T) {
	f := func(seed uint64, scale int8) bool {
		r := rng.New(seed)
		x := RandNormal(r, 1, 37)
		n0 := x.Norm2()
		s := float32(scale) / 16
		x.Scale(s)
		return almostEq(x.Norm2(), math.Abs(float64(s))*n0, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
