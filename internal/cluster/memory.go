package cluster

import "repro/internal/models"

// ActivationBytesPerImage estimates per-image activation memory during
// training: every materializing layer output (conv, fc, pooling) is held for
// the backward pass together with its gradient (factor 2), at 4 bytes per
// float. Elementwise layers (ReLU, BN, LRN, dropout) run in place in
// production frameworks and are not counted.
func ActivationBytesPerImage(spec *models.ModelSpec) int64 {
	var floats int64
	for _, l := range spec.Layers {
		switch l.Kind {
		case "conv", "fc", "pool", "gap":
			floats += int64(l.OutC) * int64(l.OutH) * int64(l.OutW)
		}
	}
	return floats * 4 * 2
}

// WorkspaceBytesPerImage estimates the im2col lowering buffers of the
// convolution layers (Caffe keeps one per layer). For a conv layer the patch
// matrix has MACs/outC elements per image.
func WorkspaceBytesPerImage(spec *models.ModelSpec) int64 {
	var floats int64
	for _, l := range spec.Layers {
		if l.Kind == "conv" && l.OutC > 0 {
			floats += l.MACs / int64(l.OutC)
		}
	}
	return floats * 4
}

// WeightMemoryBytes is the resident parameter state: weights, gradients and
// momentum, 4 bytes each.
func WeightMemoryBytes(spec *models.ModelSpec) int64 {
	return 3 * 4 * spec.ParamCount()
}

// PerImageBytes is the total per-image training footprint.
func PerImageBytes(spec *models.ModelSpec) int64 {
	return ActivationBytesPerImage(spec) + WorkspaceBytesPerImage(spec)
}

// MaxBatch returns the largest per-device batch that fits in the machine's
// memory, or 0 if not even a single image fits. This models Figure 3's
// out-of-memory point (AlexNet on M40: batch 512 fits, 1024 does not) and
// the micro-batching fallback for oversized local batches.
func MaxBatch(m Machine, spec *models.ModelSpec) int {
	avail := m.MemoryBytes - WeightMemoryBytes(spec)
	if avail <= 0 {
		return 0
	}
	per := PerImageBytes(spec)
	if per <= 0 {
		return 1 << 20
	}
	return int(avail / per)
}
