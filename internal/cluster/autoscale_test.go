package cluster

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/models"
)

// rampTrace builds a load trace that idles, surges past the fleet's
// capacity, then falls back — the canonical shape an autoscaler must track.
func rampTrace(lowIPS, highIPS float64, idle, surge, tail int) []TrafficPoint {
	var tr []TrafficPoint
	for i := 0; i < idle; i++ {
		tr = append(tr, TrafficPoint{OfferedImagesSec: lowIPS})
	}
	for i := 0; i < surge; i++ {
		tr = append(tr, TrafficPoint{OfferedImagesSec: highIPS})
	}
	for i := 0; i < tail; i++ {
		tr = append(tr, TrafficPoint{OfferedImagesSec: lowIPS})
	}
	return tr
}

// TestAutoscaleTracksLoad: a surge past the target utilization grows the
// fleet, the tail shrinks it back, and every phase's closed-form Comm is
// the full-strength schedule at that world size — the same identity the
// engine's measured counters satisfy after joins and evictions.
func TestAutoscaleTracksLoad(t *testing.T) {
	c := KNLCluster(4)
	spec := models.ResNet50Spec()
	base := Simulate(c, spec, 1024, 1, imagenetSize)
	low, high := 0.3*base.ImagesSec, 1.5*base.ImagesSec
	pol := AutoscalePolicy{
		Min: 2, Max: 8, TargetUtilization: 0.8, USDPerDeviceHour: 3.0,
	}
	est := SimulateAutoscale(c, spec, 1024, 60, rampTrace(low, high, 3, 6, 6), pol)

	if est.Joins == 0 {
		t.Fatalf("surge produced no joins: timeline %q", est.Timeline)
	}
	if est.Evictions == 0 {
		t.Fatalf("idle tail produced no scale-down: timeline %q", est.Timeline)
	}
	peak, last := 0, 0
	for _, ph := range est.Phases {
		if ph.Devices > peak {
			peak = ph.Devices
		}
		last = ph.Devices
		want := comm.ExpectedStats(c.Algo, ph.Devices, spec.WeightBytes())
		if ph.Comm != want {
			t.Fatalf("interval %d: phase Comm %+v != closed form at world %d %+v",
				ph.Interval, ph.Comm, ph.Devices, want)
		}
		if ph.Devices < pol.Min || ph.Devices > pol.Max {
			t.Fatalf("interval %d: world %d outside [%d,%d]", ph.Interval, ph.Devices, pol.Min, pol.Max)
		}
	}
	if peak <= c.Count {
		t.Fatalf("peak world %d never grew past the starting %d", peak, c.Count)
	}
	if last >= peak {
		t.Fatalf("fleet never shrank back: last %d, peak %d (timeline %q)", last, peak, est.Timeline)
	}
	if est.TotalUSD >= est.StaticUSD {
		t.Fatalf("elastic fleet cost %.2f, static-Max %.2f — autoscaling saved nothing", est.TotalUSD, est.StaticUSD)
	}
	if est.SavingsPct() <= 0 {
		t.Fatalf("savings %.1f%%, want positive", est.SavingsPct())
	}
	if est.FinalBacklogSec != 0 {
		t.Fatalf("backlog %.1fs left after the surge ended", est.FinalBacklogSec)
	}
	if len(strings.Fields(est.Timeline)) < 3 {
		t.Fatalf("timeline %q too flat for a grow-shrink trace", est.Timeline)
	}
}

// TestAutoscalePreemptionRecovery: preempted devices register as
// involuntary evictions and the policy grows the fleet back — the
// cluster-scale mirror of the engine's evict-then-join grid.
func TestAutoscalePreemptionRecovery(t *testing.T) {
	c := KNLCluster(6)
	spec := models.ResNet50Spec()
	base := Simulate(c, spec, 1024, 1, imagenetSize)
	load := 0.75 * base.ImagesSec // near target at the full fleet
	tr := []TrafficPoint{
		{OfferedImagesSec: load},
		{OfferedImagesSec: load, Preemptions: 2},
		{OfferedImagesSec: load},
		{OfferedImagesSec: load},
		{OfferedImagesSec: load},
		{OfferedImagesSec: load},
	}
	est := SimulateAutoscale(c, spec, 1024, 60, tr, AutoscalePolicy{
		Min: 1, Max: 6, TargetUtilization: 0.8, USDPerDeviceHour: 3.0,
	})
	if est.Preempted != 2 || est.Evictions < 2 {
		t.Fatalf("preempted=%d evictions=%d, want 2 involuntary evictions", est.Preempted, est.Evictions)
	}
	if est.Joins == 0 {
		t.Fatalf("policy never replaced the preempted devices: timeline %q", est.Timeline)
	}
	if got := est.Phases[1].Devices; got != 4 {
		t.Fatalf("interval 1 world %d, want 4 after losing 2 of 6", got)
	}
	if last := est.Phases[len(est.Phases)-1].Devices; last <= 4 {
		t.Fatalf("fleet never recovered: final world %d (timeline %q)", last, est.Timeline)
	}
	if est.ReactionIntervals < 0 {
		t.Fatalf("negative reaction time %v", est.ReactionIntervals)
	}
}

// TestAutoscaleQueueDepthPolicy: with TargetUtilization zeroed the backlog
// SLO alone drives scale-up, and the queue drains once the fleet grows.
func TestAutoscaleQueueDepthPolicy(t *testing.T) {
	c := KNLCluster(2)
	spec := models.ResNet50Spec()
	base := Simulate(c, spec, 1024, 1, imagenetSize)
	est := SimulateAutoscale(c, spec, 1024, 60,
		rampTrace(0, 1.4*base.ImagesSec, 0, 5, 5),
		AutoscalePolicy{Min: 2, Max: 6, MaxBacklogSec: 30, USDPerDeviceHour: 3.0})
	if est.Joins == 0 {
		t.Fatalf("backlog never triggered a join: timeline %q", est.Timeline)
	}
	maxBacklog := 0.0
	for _, ph := range est.Phases {
		if ph.BacklogSec > maxBacklog {
			maxBacklog = ph.BacklogSec
		}
	}
	if maxBacklog <= 30 {
		t.Fatalf("trace never breached the 30s SLO (max backlog %.1fs) — test is vacuous", maxBacklog)
	}
	if est.FinalBacklogSec != 0 {
		t.Fatalf("queue never drained: %.1fs left", est.FinalBacklogSec)
	}
}

// TestAutoscaleTimelineMerging: the chronological timeline merges equal
// neighbours and sums to the trace length.
func TestAutoscaleTimelineMerging(t *testing.T) {
	phases := []AutoscalePhase{
		{Devices: 8}, {Devices: 8}, {Devices: 6}, {Devices: 8}, {Devices: 8}, {Devices: 8},
	}
	if got := autoscaleTimeline(phases); got != "8x2 6x1 8x3" {
		t.Fatalf("timeline %q, want %q", got, "8x2 6x1 8x3")
	}
	if got := autoscaleTimeline(nil); got != "-" {
		t.Fatalf("empty timeline %q, want -", got)
	}
}

// TestAutoscaleHierarchicalCap: hierarchical clusters cannot scale past
// their node grid — the policy must reject Max > Count loudly.
func TestAutoscaleHierarchicalCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max past a hierarchical fleet did not panic")
		}
	}()
	SimulateAutoscale(DGXPod(2), models.ResNet50Spec(), 1024, 60,
		rampTrace(100, 200, 1, 1, 1), AutoscalePolicy{Max: 24})
}

// BenchmarkAutoscale measures the control plane's replay speed — the
// autoscaler's reaction time in the engineering sense: how long deciding a
// 1440-interval (one day at minute resolution) trace takes, per decision.
func BenchmarkAutoscale(b *testing.B) {
	c := KNLCluster(8)
	spec := models.ResNet50Spec()
	base := Simulate(c, spec, 2048, 1, imagenetSize)
	tr := make([]TrafficPoint, 1440)
	for i := range tr {
		// Deterministic diurnal-ish load: two surges and a preemption.
		frac := float64(i%720) / 720
		tr[i].OfferedImagesSec = base.ImagesSec * (0.4 + 1.1*frac)
		if i == 360 || i == 1080 {
			tr[i].Preemptions = 1
		}
	}
	pol := AutoscalePolicy{Min: 4, Max: 16, TargetUtilization: 0.8,
		CooldownIntervals: 3, USDPerDeviceHour: 3.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := SimulateAutoscale(c, spec, 2048, 60, tr, pol)
		if len(est.Phases) != len(tr) {
			b.Fatal("short replay")
		}
	}
}
