package cluster

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

// TrafficPoint is one interval of an offered-load trace: the work arriving
// during the interval and the devices the provider preempts out from under
// the fleet while it runs. A trace of these is what the autoscaler replays
// — the cluster-scale twin of the engine's FaultPlan, with load instead of
// per-step deaths.
type TrafficPoint struct {
	// OfferedImagesSec is the sustained arrival rate over the interval.
	OfferedImagesSec float64
	// Preemptions is the number of devices involuntarily lost at the start
	// of the interval (spot reclaims, hardware faults). The policy sees the
	// shrunken fleet and reacts like the engine's eviction machinery: the
	// work is unchanged, the world absorbs it.
	Preemptions int
}

// AutoscalePolicy is the control law SimulateAutoscale replays a trace
// through. It is target-utilization driven (scale up when offered load
// exceeds TargetUtilization of capacity, down when the smaller fleet would
// still sit below it) and optionally queue-depth driven on top: a backlog
// older than MaxBacklogSec forces a scale-up even at low utilization, the
// way latency SLOs override efficiency targets. Set TargetUtilization to 0
// for a purely queue-depth policy.
type AutoscalePolicy struct {
	// Min and Max bound the fleet. Min defaults to 1; Max defaults to the
	// cluster's Count. For flat clusters Max may exceed Count — the grown
	// worlds are priced by the same closed forms, evicted running negative
	// (comm.ExpectedStatsAt). Hierarchical clusters are capped at Count.
	Min, Max int
	// TargetUtilization is the offered/capacity ratio the policy steers to
	// (0 disables utilization-driven decisions).
	TargetUtilization float64
	// MaxBacklogSec forces a scale-up whenever the queued work exceeds this
	// many seconds at current capacity (0 disables the queue-depth rule).
	MaxBacklogSec float64
	// Step is the number of devices added or removed per decision
	// (default 1).
	Step int
	// CooldownIntervals is how many intervals must pass after a scale event
	// before the policy may act again — the hysteresis that keeps a noisy
	// trace from thrashing the fleet.
	CooldownIntervals int
	// USDPerDeviceHour prices the fleet for the cost accounting (0 leaves
	// the dollar fields zero).
	USDPerDeviceHour float64
}

func (p AutoscalePolicy) withDefaults(c Cluster) AutoscalePolicy {
	if p.Min <= 0 {
		p.Min = 1
	}
	if p.Max <= 0 {
		p.Max = c.Count
	}
	if p.Step <= 0 {
		p.Step = 1
	}
	return p
}

// AutoscalePhase is one interval of the replay: the fleet the policy held,
// what it could do, what arrived, and what it cost.
type AutoscalePhase struct {
	Interval int
	Devices  int
	// CapacityImagesSec is the fleet's sustained throughput at this world
	// size — batch over the phaseCost iteration time, the same pricing
	// SimulateElastic uses.
	CapacityImagesSec float64
	OfferedImagesSec  float64
	// Utilization is offered/capacity (may exceed 1 while overloaded).
	Utilization float64
	// BacklogSec is the queued work at the end of the interval, in seconds
	// of current capacity.
	BacklogSec float64
	// Comm is the closed-form schedule of one allreduce at this world size:
	// comm.ExpectedStatsAt(algo, Count, Count−Devices) — evicted negative
	// when the fleet has grown past its starting size — which the engine's
	// measured counters must match bit-for-bit at the same world.
	Comm dist.CommStats
	USD  float64
}

// AutoscaleEstimate is the replay's output: the per-interval phases, the
// membership timeline, the reaction-time statistics, and the dollar cost
// against the static-fleet baseline.
type AutoscaleEstimate struct {
	Phases []AutoscalePhase
	// Timeline is the chronological world-size history, "8x4 6x2 8x6"
	// meaning 4 intervals at 8 devices, then 2 at 6, then 6 back at 8 —
	// the cluster-scale mirror of MembershipStats.Timeline, which sorts
	// instead (a fleet only shrinks under the engine; here it grows back).
	Timeline string
	// Joins and Evictions count devices added and removed across the
	// replay; Preempted of the evictions were involuntary.
	Joins, Evictions, Preempted int
	// ReactionIntervals is the mean number of intervals between an overload
	// signal (utilization or backlog breach) first appearing and the policy
	// scaling up — the autoscaler's reaction time in units of the trace's
	// resolution. Zero when no breach occurred.
	ReactionIntervals float64
	// TotalUSD prices the elastic fleet; StaticUSD prices holding Max
	// devices for the whole trace. The difference is what the control
	// plane is worth.
	TotalUSD, StaticUSD float64
	// FinalBacklogSec is the queue left when the trace ends (unserved work
	// the fleet never caught up on).
	FinalBacklogSec float64
}

// SavingsPct returns how much cheaper the elastic fleet was than the
// static-Max baseline, in percent.
func (e AutoscaleEstimate) SavingsPct() float64 {
	if e.StaticUSD == 0 {
		return 0
	}
	return 100 * (e.StaticUSD - e.TotalUSD) / e.StaticUSD
}

// SimulateAutoscale replays a traffic/preemption trace through the
// autoscaling control law: each interval the fleet absorbs its preemptions,
// serves the offered load (queueing what it cannot), and the policy decides
// the next interval's world size. Capacity at every world is priced by the
// same per-iteration phase cost SimulateElastic uses — the efficiency curve
// for compute, the alpha-beta collective for communication — so the replay
// and the engine agree on what a world of p is worth, and each phase's
// closed-form Comm schedule is the analytic twin of the counters a real
// engine at that world records. intervalSec is the trace resolution; batch
// is the global batch the fleet trains at (capacity scales with world size
// through the collective's cost, not just the device count).
func SimulateAutoscale(c Cluster, spec *models.ModelSpec, batch int, intervalSec float64, trace []TrafficPoint, pol AutoscalePolicy) AutoscaleEstimate {
	if batch <= 0 || intervalSec <= 0 {
		panic("cluster: invalid autoscale parameters")
	}
	pol = pol.withDefaults(c)
	if _, hier := c.Hierarchy(); hier && pol.Max > c.Count {
		panic(fmt.Sprintf("cluster: hierarchical autoscale cannot grow past the %d-device fleet", c.Count))
	}
	c.Overlap = false
	capacityAt := func(world int) float64 {
		comp, commSec := phaseCost(c, spec, batch, world)
		return float64(batch) / (comp + commSec)
	}

	var out AutoscaleEstimate
	world := c.Count
	if world > pol.Max {
		world = pol.Max
	}
	if world < pol.Min {
		world = pol.Min
	}
	backlogImages := 0.0
	cooldown := 0
	breachStart := -1
	var reactions []int
	for i, tp := range trace {
		// Preemptions land first: the provider does not wait for cooldowns.
		if tp.Preemptions > 0 {
			lost := tp.Preemptions
			if world-lost < 1 {
				lost = world - 1
			}
			world -= lost
			out.Evictions += lost
			out.Preempted += lost
		}
		capacity := capacityAt(world)
		backlogImages += (tp.OfferedImagesSec - capacity) * intervalSec
		if backlogImages < 0 {
			backlogImages = 0
		}
		ph := AutoscalePhase{
			Interval: i, Devices: world,
			CapacityImagesSec: capacity,
			OfferedImagesSec:  tp.OfferedImagesSec,
			Utilization:       tp.OfferedImagesSec / capacity,
			BacklogSec:        backlogImages / capacity,
			Comm:              comm.ExpectedStatsAt(c.Algo, c.Count, c.Count-world, spec.WeightBytes()),
			USD:               float64(world) * intervalSec / 3600 * pol.USDPerDeviceHour,
		}
		out.Phases = append(out.Phases, ph)
		out.TotalUSD += ph.USD

		// The overload signal: utilization past target, or a backlog past
		// the SLO. Track when it first appears so the scale-up that answers
		// it yields a reaction-time sample.
		overloaded := (pol.TargetUtilization > 0 && ph.Utilization > pol.TargetUtilization) ||
			(pol.MaxBacklogSec > 0 && ph.BacklogSec > pol.MaxBacklogSec)
		if overloaded && breachStart < 0 {
			breachStart = i
		}
		if cooldown > 0 {
			cooldown--
		} else if overloaded && world < pol.Max {
			add := pol.Step
			if world+add > pol.Max {
				add = pol.Max - world
			}
			world += add
			out.Joins += add
			cooldown = pol.CooldownIntervals
			reactions = append(reactions, i-breachStart)
			breachStart = -1
		} else if !overloaded && backlogImages == 0 && world > pol.Min &&
			pol.TargetUtilization > 0 &&
			tp.OfferedImagesSec/capacityAt(max(world-pol.Step, pol.Min)) < pol.TargetUtilization {
			// Scale down only when the smaller fleet would still sit under
			// target — projected, not current, utilization, so the policy
			// does not oscillate around the threshold.
			drop := pol.Step
			if world-drop < pol.Min {
				drop = world - pol.Min
			}
			world -= drop
			out.Evictions += drop
			cooldown = pol.CooldownIntervals
		}
		if !overloaded {
			breachStart = -1
		}
	}
	if n := len(out.Phases); n > 0 {
		out.FinalBacklogSec = out.Phases[n-1].BacklogSec
	}
	if len(reactions) > 0 {
		sum := 0
		for _, r := range reactions {
			sum += r
		}
		out.ReactionIntervals = float64(sum) / float64(len(reactions))
	}
	out.StaticUSD = float64(pol.Max) * float64(len(trace)) * intervalSec / 3600 * pol.USDPerDeviceHour
	out.Timeline = autoscaleTimeline(out.Phases)
	return out
}

// autoscaleTimeline renders the chronological world-size history, merging
// consecutive intervals at the same world: "8x4 6x2 8x6".
func autoscaleTimeline(phases []AutoscalePhase) string {
	if len(phases) == 0 {
		return "-"
	}
	var b strings.Builder
	world, count := phases[0].Devices, 0
	flush := func() {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%dx%d", world, count)
	}
	for _, ph := range phases {
		if ph.Devices != world {
			flush()
			world, count = ph.Devices, 0
		}
		count++
	}
	flush()
	return b.String()
}
