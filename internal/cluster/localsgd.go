package cluster

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

// Local-SGD pricing: the communication-for-computation tradeoff of
// dist.Config.SyncEvery, priced on the same machine/fabric model Simulate
// uses for the every-step path. Workers step locally and synchronize
// weights every H steps, so the per-iteration communication term is
// amortized by 1/H while the compute term is unchanged; hierarchical
// clusters can additionally average inside each node every Hi steps,
// priced on the intra fabric alone. Sync rounds are barriers — nothing
// overlaps with the backward pass — so the Overlap fields of the cluster
// are ignored here and every communication second is exposed.

// LocalSGDEstimate is the priced outcome of one local-SGD training run.
type LocalSGDEstimate struct {
	Cluster Cluster
	Model   string
	Batch   int
	Epochs  int

	// SyncEvery is H: local optimizer steps per full weight-averaging
	// round. IntraSyncEvery is the optional intra-node period Hi
	// (0 disables the intermediate tier).
	SyncEvery      int
	IntraSyncEvery int

	Iterations int64
	// SyncRounds and IntraRounds are the closed-form round counts the
	// engine's LocalSGDStats reports for the same run length.
	SyncRounds  int64
	IntraRounds int64

	LocalBatch int
	MicroBatch int
	OOM        bool

	CompSec  float64 // per-step computation, same model as Simulate
	SyncSec  float64 // one full weight-averaging round, all tiers
	IntraSec float64 // one intra-node-only round (0 unless IntraSyncEvery)
	// StepSec is the amortized wall time per local step:
	// CompSec + SyncSec/H + IntraSec·(intra rounds per step).
	StepSec   float64
	TotalSec  float64
	ImagesSec float64

	// Comm is the whole-run closed-form communication schedule —
	// floor(Iterations/H) full rounds (plus intra rounds for
	// hierarchical clusters), exactly what a dist engine driven through
	// LocalStep records. For hierarchical clusters it is TierComm.Total().
	Comm dist.CommStats
	// TierComm splits Comm by fabric tier for hierarchical clusters.
	TierComm dist.TierStats

	// Speedup is ImagesSec relative to the same cluster at H=1 (the
	// every-step baseline); 1 at H=1 by construction.
	Speedup float64
}

// Duration returns the total time as a time.Duration.
func (e LocalSGDEstimate) Duration() time.Duration {
	return time.Duration(e.TotalSec * float64(time.Second))
}

// String renders a compact sweep row.
func (e LocalSGDEstimate) String() string {
	if e.OOM {
		return fmt.Sprintf("%s B=%d H=%d on %dx %s: OOM", e.Model, e.Batch, e.SyncEvery, e.Cluster.Count, e.Cluster.Machine.Name)
	}
	return fmt.Sprintf("%s B=%d H=%d on %dx %s: %s (%.0f img/s, %.2fx, comm %.1f GB)",
		e.Model, e.Batch, e.SyncEvery, e.Cluster.Count, e.Cluster.Machine.Name,
		formatDuration(e.TotalSec), e.ImagesSec, e.Speedup, float64(e.Comm.Bytes)/(1<<30))
}

// SimulateLocalSGD prices one fixed-epoch local-SGD run of spec on c:
// syncEvery local steps between full weight averages, optionally an
// intra-node average every intraSyncEvery steps on hierarchical clusters.
// syncEvery = 1 (with intraSyncEvery = 0) reproduces the non-overlapped
// every-step Estimate exactly — same compute model, same per-round
// schedule, communication amortized by 1/1.
func SimulateLocalSGD(c Cluster, spec *models.ModelSpec, batch, epochs, datasetSize, syncEvery, intraSyncEvery int) LocalSGDEstimate {
	if c.Count <= 0 || batch <= 0 || epochs <= 0 || datasetSize <= 0 {
		panic("cluster: invalid simulation parameters")
	}
	if syncEvery < 1 {
		panic("cluster: SimulateLocalSGD requires syncEvery >= 1")
	}
	if intraSyncEvery < 0 || (intraSyncEvery > 0 && syncEvery%intraSyncEvery != 0) {
		panic("cluster: intraSyncEvery must divide syncEvery")
	}
	e := LocalSGDEstimate{
		Cluster: c, Model: spec.Name, Batch: batch, Epochs: epochs,
		SyncEvery: syncEvery, IntraSyncEvery: intraSyncEvery,
		Iterations: comm.Iterations(epochs, datasetSize, batch),
	}
	h, hier := c.Hierarchy()
	if intraSyncEvery > 0 && !hier {
		panic("cluster: intraSyncEvery requires a hierarchical cluster (PerNode > 1)")
	}
	e.SyncRounds = comm.LocalSGDSyncRounds(e.Iterations, syncEvery)
	e.IntraRounds = comm.LocalSGDIntraRounds(e.Iterations, syncEvery, intraSyncEvery)

	e.LocalBatch = (batch + c.Count - 1) / c.Count
	fit := MaxBatch(c.Machine, spec)
	if fit == 0 {
		e.OOM = true
		return e
	}
	e.MicroBatch = e.LocalBatch
	if e.MicroBatch > fit {
		e.MicroBatch = fit
	}

	nelems := int(spec.WeightBytes() / 4)
	if hier {
		e.TierComm = comm.ExpectedLocalSGDTierStats(h, syncEvery, intraSyncEvery, e.Iterations, nelems, 0, nil)
		e.Comm = e.TierComm.Total()
		e.SyncSec = comm.HierarchicalAllreduceTime(c.IntraNetwork, c.Network, h, spec.WeightBytes())
		if intraSyncEvery > 0 {
			e.IntraSec = c.IntraNetwork.AllreduceTime(c.IntraAlgo, h.PerNode, spec.WeightBytes())
		}
	} else {
		e.Comm = comm.ExpectedLocalSGDStats(c.Algo, c.Count, syncEvery, e.Iterations, nelems, 0, nil)
		e.SyncSec = c.Network.AllreduceTime(c.Algo, c.Count, spec.WeightBytes())
	}

	prof := c.Machine.ProfileFor(spec.Name)
	eff := prof.Efficiency(float64(e.MicroBatch))
	e.CompSec = float64(e.LocalBatch) * float64(spec.TrainFLOPsPerImage()) / (c.Machine.PeakFLOPS * eff)

	// Sync rounds are barriers: total time is every step's compute plus
	// every round's exposed communication, nothing hidden.
	e.TotalSec = float64(e.Iterations)*e.CompSec +
		float64(e.SyncRounds)*e.SyncSec + float64(e.IntraRounds)*e.IntraSec
	if e.Iterations > 0 {
		e.StepSec = e.TotalSec / float64(e.Iterations)
		e.ImagesSec = float64(batch) / e.StepSec
	}

	// Speedup against the every-step baseline on the same cluster: at
	// H=1 the amortized step is CompSec + SyncSec, the non-overlapped
	// synchronous iteration.
	base := e.CompSec + e.SyncSec
	if base > 0 && e.StepSec > 0 {
		e.Speedup = base / e.StepSec
	}
	return e
}

// LocalSGDCurve sweeps the synchronization period: one estimate per H in
// hs, no intermediate tier — the throughput-vs-H curve cmd/simulate and
// the commstudy example print.
func LocalSGDCurve(c Cluster, spec *models.ModelSpec, batch, epochs, datasetSize int, hs []int) []LocalSGDEstimate {
	out := make([]LocalSGDEstimate, 0, len(hs))
	for _, h := range hs {
		out = append(out, SimulateLocalSGD(c, spec, batch, epochs, datasetSize, h, 0))
	}
	return out
}
