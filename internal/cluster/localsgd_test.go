package cluster

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/models"
)

// TestSimulateLocalSGDMatchesSimulateAtH1: with H=1 every step syncs, so
// the local-SGD estimate degenerates to the non-overlapped every-step
// Estimate — same compute, same per-round communication, same throughput.
func TestSimulateLocalSGDMatchesSimulateAtH1(t *testing.T) {
	c := KNLCluster(64)
	spec := models.ResNet50Spec()
	sim := Simulate(c, spec, 2048, 1, imagenetSize)
	loc := SimulateLocalSGD(c, spec, 2048, 1, imagenetSize, 1, 0)
	if loc.CompSec != sim.CompSec {
		t.Fatalf("compute model diverged: %v vs %v", loc.CompSec, sim.CompSec)
	}
	if loc.SyncSec != sim.CommSec {
		t.Fatalf("per-round comm diverged: %v vs %v", loc.SyncSec, sim.CommSec)
	}
	if loc.ImagesSec != sim.ImagesSec || loc.TotalSec != sim.TotalSec {
		t.Fatalf("H=1 throughput %v/%v, want the every-step %v/%v",
			loc.ImagesSec, loc.TotalSec, sim.ImagesSec, sim.TotalSec)
	}
	if loc.Speedup != 1 {
		t.Fatalf("H=1 speedup %v, want exactly 1", loc.Speedup)
	}
	if loc.SyncRounds != loc.Iterations || loc.IntraRounds != 0 {
		t.Fatalf("H=1 rounds %d/%d for %d iterations", loc.SyncRounds, loc.IntraRounds, loc.Iterations)
	}
}

// TestSimulateLocalSGDCommScalesAsOneOverH: on a comm-bound cluster the
// whole-run communication bytes are exactly 1/H of the every-step run
// whenever H divides the iteration count, and throughput rises
// monotonically toward the compute-bound ceiling.
func TestSimulateLocalSGDCommScalesAsOneOverH(t *testing.T) {
	c := KNLCluster(64)
	spec := models.ResNet50Spec()
	const batch, epochs = 2048, 1
	dataset := batch * 64 // 64 iterations: divisible by every H below
	base := SimulateLocalSGD(c, spec, batch, epochs, dataset, 1, 0)
	prev := base
	for _, h := range []int{2, 4, 8} {
		est := SimulateLocalSGD(c, spec, batch, epochs, dataset, h, 0)
		if est.Comm.Bytes*int64(h) != base.Comm.Bytes {
			t.Fatalf("H=%d: comm bytes %d not exactly 1/H of %d", h, est.Comm.Bytes, base.Comm.Bytes)
		}
		if est.ImagesSec <= prev.ImagesSec || est.Speedup <= prev.Speedup {
			t.Fatalf("H=%d did not improve on H=%d: %v vs %v img/s", h, prev.SyncEvery, est.ImagesSec, prev.ImagesSec)
		}
		// The amortized step never beats the compute floor.
		if est.StepSec <= est.CompSec {
			t.Fatalf("H=%d amortized step %v at or below compute floor %v", h, est.StepSec, est.CompSec)
		}
		// Closed-form consistency with the engine's round counters.
		if est.SyncRounds != comm.LocalSGDSyncRounds(est.Iterations, h) {
			t.Fatalf("H=%d sync rounds %d, want %d", h, est.SyncRounds, comm.LocalSGDSyncRounds(est.Iterations, h))
		}
		prev = est
	}
}

// TestSimulateLocalSGDHierarchical: on a pod the tier split accounts for
// everything (Total == Comm), and enabling the intra tier adds intra-fabric
// rounds — time and bytes — without touching the inter tier.
func TestSimulateLocalSGDHierarchical(t *testing.T) {
	c := DGXPod(4)
	spec := models.ResNet50Spec()
	const batch, epochs = 1024, 1
	dataset := batch * 32

	flat := SimulateLocalSGD(c, spec, batch, epochs, dataset, 8, 0)
	if flat.TierComm.Total() != flat.Comm {
		t.Fatalf("tier split %+v does not sum to %+v", flat.TierComm, flat.Comm)
	}
	if flat.IntraSec != 0 || flat.IntraRounds != 0 {
		t.Fatalf("intra tier disabled but priced: %v sec x %d rounds", flat.IntraSec, flat.IntraRounds)
	}

	layered := SimulateLocalSGD(c, spec, batch, epochs, dataset, 8, 2)
	if layered.TierComm.Inter != flat.TierComm.Inter {
		t.Fatalf("intra rounds leaked onto the inter tier: %+v vs %+v", layered.TierComm.Inter, flat.TierComm.Inter)
	}
	if layered.TierComm.Intra.Bytes <= flat.TierComm.Intra.Bytes {
		t.Fatalf("intra rounds added no intra bytes: %+v vs %+v", layered.TierComm.Intra, flat.TierComm.Intra)
	}
	if layered.IntraSec <= 0 || layered.TotalSec <= flat.TotalSec {
		t.Fatalf("intra rounds cost nothing: %v sec, total %v vs %v", layered.IntraSec, layered.TotalSec, flat.TotalSec)
	}
	if want := comm.LocalSGDIntraRounds(layered.Iterations, 8, 2); layered.IntraRounds != want {
		t.Fatalf("intra rounds %d, want %d", layered.IntraRounds, want)
	}
}

// TestSimulateLocalSGDValidation pins the parameter contract: H >= 1, the
// intra period divides H, and the intermediate tier needs a hierarchy.
func TestSimulateLocalSGDValidation(t *testing.T) {
	spec := models.ResNet50Spec()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("syncEvery=0", func() { SimulateLocalSGD(KNLCluster(4), spec, 256, 1, 25600, 0, 0) })
	mustPanic("Hi does not divide H", func() { SimulateLocalSGD(DGXPod(2), spec, 256, 1, 25600, 4, 3) })
	mustPanic("intra tier on flat cluster", func() { SimulateLocalSGD(KNLCluster(4), spec, 256, 1, 25600, 4, 2) })
}

// TestLocalSGDCurve: the sweep emits one estimate per requested period, in
// order, with no intermediate tier.
func TestLocalSGDCurve(t *testing.T) {
	hs := []int{1, 2, 4, 8, 16}
	curve := LocalSGDCurve(KNLCluster(64), models.ResNet50Spec(), 2048, 1, imagenetSize, hs)
	if len(curve) != len(hs) {
		t.Fatalf("%d points for %d periods", len(curve), len(hs))
	}
	for i, est := range curve {
		if est.SyncEvery != hs[i] || est.IntraSyncEvery != 0 {
			t.Fatalf("point %d carries H=%d Hi=%d, want H=%d Hi=0", i, est.SyncEvery, est.IntraSyncEvery, hs[i])
		}
	}
}

// BenchmarkLocalSGD prices the H-sweep the paper's tradeoff hinges on —
// ResNet-50 on a 64-node KNL cluster — and reports the two quantities the
// bench trajectory tracks: sustained throughput and per-step communication
// volume. Sub-benchmarks per synchronization period feed BENCH_localsgd.json.
func BenchmarkLocalSGD(b *testing.B) {
	c := KNLCluster(64)
	spec := models.ResNet50Spec()
	for _, h := range []int{1, 2, 4, 8} {
		b.Run(benchName(h), func(b *testing.B) {
			var est LocalSGDEstimate
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est = SimulateLocalSGD(c, spec, 2048, 1, imagenetSize, h, 0)
				if est.OOM || est.ImagesSec <= 0 {
					b.Fatal("degenerate estimate")
				}
			}
			b.ReportMetric(est.ImagesSec, "img/s")
			b.ReportMetric(float64(est.Comm.Bytes)/float64(est.Iterations)/(1<<20), "commMB/step")
		})
	}
}

func benchName(h int) string {
	switch h {
	case 1:
		return "H1"
	case 2:
		return "H2"
	case 4:
		return "H4"
	default:
		return "H8"
	}
}
