package cluster

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/models"
)

// ProgressivePhase is one constant-resolution segment of a
// progressive-resolution run: Epochs epochs trained at H×W input.
type ProgressivePhase struct {
	H, W       int
	Epochs     int
	Iterations int64
	CompSec    float64 // per-iteration computation at this resolution
	CommSec    float64 // per-iteration communication (resolution-invariant)
	ImagesSec  float64 // sustained throughput during the phase
	// TrainFLOPsPerImage is the forward+backward cost per image at this
	// phase's resolution — the analytic curve the study plots.
	TrainFLOPsPerImage int64
}

// IterSec returns the phase's per-iteration time.
func (p ProgressivePhase) IterSec() float64 { return p.CompSec + p.CommSec }

// ProgressiveEstimate prices a fixed-epoch run under a resolution schedule
// — the simulator twin of core.Config.Resolutions, mirroring how
// ElasticEstimate prices worlds. The epoch budget and iteration count are
// unchanged by the curriculum; what changes is each phase's per-image
// compute, so TotalSec versus Fixed.TotalSec is the analytic wall-clock
// saving of the ENTR hypothesis (assuming the curriculum reaches the same
// accuracy — the measured study's question).
type ProgressiveEstimate struct {
	// Fixed is the same configuration priced at the spec's canonical
	// resolution for every epoch.
	Fixed Estimate
	// Phases is the resolution timeline in schedule order.
	Phases []ProgressivePhase
	// TotalSec is the scheduled run's wall clock; ImagesSec its average
	// sustained throughput.
	TotalSec  float64
	ImagesSec float64
	// TrainFLOPs and FixedTrainFLOPs are the total training FLOPs of the
	// scheduled and fixed runs (per full pass over the iteration budget).
	TrainFLOPs      float64
	FixedTrainFLOPs float64
}

// Duration returns the scheduled total time as a time.Duration.
func (e ProgressiveEstimate) Duration() time.Duration {
	return time.Duration(e.TotalSec * float64(time.Second))
}

// SpeedupPct returns how much faster the scheduled run is than the fixed
// baseline, in percent of the fixed wall clock.
func (e ProgressiveEstimate) SpeedupPct() float64 {
	if e.Fixed.TotalSec == 0 {
		return 0
	}
	return 100 * (e.Fixed.TotalSec - e.TotalSec) / e.Fixed.TotalSec
}

// FLOPSavingsPct returns the fraction of training FLOPs the curriculum
// avoids, in percent.
func (e ProgressiveEstimate) FLOPSavingsPct() float64 {
	if e.FixedTrainFLOPs == 0 {
		return 0
	}
	return 100 * (e.FixedTrainFLOPs - e.TrainFLOPs) / e.FixedTrainFLOPs
}

// SimulateProgressive prices one fixed-epoch training run of spec on c
// under a per-epoch resolution schedule. Each phase reprices compute with
// the spec replayed at the phase resolution (models.ModelSpec.At — memory
// fit and micro-batching included, since activation footprints shrink with
// the input), while communication stays at the canonical weight volume:
// the schedule requires |W| to be resolution-invariant (a GAP-headed
// model), and it panics otherwise, because a resolution-dependent weight
// vector cannot train under a lockstep schedule at all. Communication is
// priced serially, mirroring SimulateElastic (Overlap is ignored).
func SimulateProgressive(c Cluster, spec *models.ModelSpec, batch, epochs, datasetSize int, sched *data.ResolutionSchedule) ProgressiveEstimate {
	c.Overlap = false
	out := ProgressiveEstimate{Fixed: Simulate(c, spec, batch, epochs, datasetSize)}
	if out.Fixed.OOM {
		return out
	}
	phases := sched.PhasesIn(epochs)
	for _, p := range phases {
		if got, want := spec.ParamCountAt(p.H, p.W), spec.ParamCount(); got != want {
			panic(fmt.Sprintf("cluster: %s has %d params at %dx%d but %d at canonical — a resolution schedule needs a GAP-headed (resolution-invariant) model",
				spec.Name, got, p.H, p.W, want))
		}
	}
	// Phase iteration counts are cumulative-boundary differences so they
	// sum exactly to Fixed.Iterations regardless of rounding.
	itersBy := func(epoch int) int64 { return comm.Iterations(epoch, datasetSize, batch) }
	localBatch := out.Fixed.LocalBatch
	var rawComm float64
	if h, hier := c.Hierarchy(); hier {
		rawComm = comm.HierarchicalAllreduceTime(c.IntraNetwork, c.Network, h, spec.WeightBytes())
	} else {
		rawComm = c.Network.AllreduceTime(c.Algo, c.Count, spec.WeightBytes())
	}
	fixedIterFLOPs := float64(batch) * float64(spec.TrainFLOPsPerImage())
	for _, p := range phases {
		phaseSpec := spec.At(p.H, p.W)
		iters := itersBy(p.From+p.Epochs(epochs)) - itersBy(p.From)
		micro := localBatch
		if fit := MaxBatch(c.Machine, phaseSpec); micro > fit {
			micro = fit
		}
		prof := c.Machine.ProfileFor(spec.Name)
		eff := prof.Efficiency(float64(micro))
		compSec := float64(localBatch) * float64(phaseSpec.TrainFLOPsPerImage()) / (c.Machine.PeakFLOPS * eff)
		iterSec := compSec + rawComm
		out.Phases = append(out.Phases, ProgressivePhase{
			H: p.H, W: p.W, Epochs: p.Epochs(epochs), Iterations: iters,
			CompSec: compSec, CommSec: rawComm,
			ImagesSec:          float64(batch) / iterSec,
			TrainFLOPsPerImage: phaseSpec.TrainFLOPsPerImage(),
		})
		out.TotalSec += float64(iters) * iterSec
		out.TrainFLOPs += float64(iters) * float64(batch) * float64(phaseSpec.TrainFLOPsPerImage())
		out.FixedTrainFLOPs += float64(iters) * fixedIterFLOPs
	}
	if out.TotalSec > 0 {
		out.ImagesSec = float64(batch) * float64(out.Fixed.Iterations) / out.TotalSec
	}
	return out
}
