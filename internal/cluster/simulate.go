package cluster

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

// Cluster is a homogeneous set of devices joined by one fabric — or, when
// PerNode groups them, by two: a fast intra-node fabric and the cluster
// fabric across nodes.
type Cluster struct {
	Machine Machine
	Count   int
	// Network is the cluster fabric: the only fabric when flat, the
	// inter-node (leader-exchange) fabric when PerNode > 1.
	Network comm.Network
	// Algo is the allreduce pattern on Network: the whole collective when
	// flat, the cross-node leader exchange when PerNode > 1.
	Algo dist.Algorithm
	// Overlap models communication/computation overlap (Das et al. 2016;
	// Goyal et al. 2017) at bucket granularity, mirroring the engine's
	// overlap scheduler (dist.Config.Overlap): the gradient is split into
	// OverlapBuckets near-equal buckets, each becomes ready at its share
	// of the backward pass (from the tail of the network forwards), and
	// the bucket allreduces pipeline against the remaining backward — for
	// hierarchical clusters with the inter exchange of bucket k
	// overlapping the intra reduce of bucket k+1 on the disjoint fabrics.
	// The exposed communication per iteration is what the pipeline cannot
	// hide (at minimum the first layers' bucket, which is only ready when
	// the backward ends); Estimate.Buckets reports the per-bucket
	// timeline.
	Overlap bool
	// OverlapBuckets is the number of gradient buckets the overlap model
	// pipelines; 0 defaults to DefaultOverlapBuckets. Ignored unless
	// Overlap is set.
	OverlapBuckets int

	// PerNode groups the devices into nodes of this size; > 1 prices the
	// allreduce hierarchically — IntraAlgo over IntraNetwork inside each
	// node feeding Algo over Network across the node leaders — matching
	// the two-tier schedule internal/dist executes. It must divide Count.
	// 0 or 1 keeps the flat single-fabric model.
	PerNode int
	// IntraNetwork is the within-node fabric (e.g. NVLink inside a
	// DGX-1) used when PerNode > 1.
	IntraNetwork comm.Network
	// IntraAlgo is the within-node allreduce pattern when PerNode > 1
	// (Ring is the usual choice on fast local fabrics).
	IntraAlgo dist.Algorithm
}

// DefaultOverlapBuckets is the bucket count the overlap model uses when
// Cluster.OverlapBuckets is zero — fine enough that the unhideable first
// bucket is a small fraction of the payload, coarse enough that per-bucket
// latency (the alpha terms) does not dominate.
const DefaultOverlapBuckets = 16

// backwardShare is the fraction of an iteration's compute spent in the
// backward pass — the window communication can hide in. Training costs
// roughly one forward plus two forward-equivalents of backward (weight and
// input gradients), hence 2/3; the old heuristic's t_comp/2 window was
// smaller, which is one of the two ways it overpriced exposure (the other:
// it ignored that the first layers' bucket can never hide).
const backwardShare = 2.0 / 3

// Hierarchy returns the two-tier layout the cluster prices and true when
// PerNode groups the devices (PerNode > 1); it panics if PerNode does not
// divide Count. Flat clusters return false.
func (c Cluster) Hierarchy() (dist.Hierarchy, bool) {
	if c.PerNode <= 1 {
		return dist.Hierarchy{}, false
	}
	if c.Count%c.PerNode != 0 {
		panic(fmt.Sprintf("cluster: %d devices do not fill nodes of %d", c.Count, c.PerNode))
	}
	return dist.Hierarchy{Nodes: c.Count / c.PerNode, PerNode: c.PerNode, Intra: c.IntraAlgo, Inter: c.Algo}, true
}

// Predefined clusters matching the paper's experiments.

// DGX1 is one NVIDIA DGX-1 station: 8 P100s on NVLink.
func DGX1() Cluster {
	return Cluster{Machine: TeslaP100, Count: 8, Network: NVLinkHybrid, Algo: dist.Ring}
}

// SingleDevice is a one-device "cluster" (no communication).
func SingleDevice(m Machine) Cluster {
	return Cluster{Machine: m, Count: 1, Network: OmniPath, Algo: dist.Ring}
}

// KNLCluster is n Stampede-2 KNL nodes on Omni-Path.
func KNLCluster(n int) Cluster {
	return Cluster{Machine: KNL7250, Count: n, Network: OmniPath, Algo: dist.Ring}
}

// CPUCluster is n Skylake nodes on Omni-Path.
func CPUCluster(n int) Cluster {
	return Cluster{Machine: Xeon8160, Count: n, Network: OmniPath, Algo: dist.Ring}
}

// P100Cluster is n P100 GPUs on FDR InfiniBand (Facebook's setup).
func P100Cluster(n int) Cluster {
	return Cluster{Machine: TeslaP100, Count: n, Network: comm.MellanoxFDR, Algo: dist.Ring}
}

// DGXPod is n DGX-1 stations priced hierarchically: a ring over the eight
// P100s on NVLink inside each chassis, a tree over the station leaders on
// FDR InfiniBand — the two-tier composition the paper's multi-node GPU
// systems (and Goyal et al.'s 32x DGX-1 setup) use.
func DGXPod(n int) Cluster {
	return Cluster{
		Machine: TeslaP100, Count: 8 * n, Network: comm.MellanoxFDR, Algo: dist.Tree,
		PerNode: 8, IntraNetwork: NVLinkHybrid, IntraAlgo: dist.Ring,
	}
}

// Estimate is the simulator's output for one training configuration.
type Estimate struct {
	Cluster    Cluster
	Model      string
	Batch      int
	Epochs     int
	Iterations int64
	LocalBatch int
	// MicroBatch is the per-device compute batch after memory-driven
	// micro-batching; equal to LocalBatch when everything fits.
	MicroBatch int
	// OOM marks configurations where even a single image does not fit.
	OOM       bool
	CompSec   float64 // per-iteration computation
	CommSec   float64 // per-iteration exposed communication
	TotalSec  float64
	ImagesSec float64 // sustained throughput
	// Comm is the closed-form schedule of one gradient allreduce under
	// the cluster's algorithm — the same counters internal/dist records
	// when executing the exchange for real. For hierarchical clusters it
	// is the aggregate across both tiers, TierComm.Total().
	Comm dist.CommStats
	// TierComm splits Comm by fabric tier for hierarchical clusters
	// (PerNode > 1): intra-node traffic priced on IntraNetwork, inter-node
	// on Network. Zero for flat clusters.
	TierComm dist.TierStats
	// BackwardSec is the backward-pass share of CompSec, the window the
	// overlap model hides communication in. Zero unless Overlap.
	BackwardSec float64
	// HiddenCommSec is the per-iteration communication hidden behind the
	// backward pass: the serial bucketed allreduce time minus the exposed
	// CommSec, never negative. Zero unless Overlap.
	HiddenCommSec float64
	// Buckets is the overlap pipeline's per-bucket timeline (bucket 0
	// covers the first layers and is ready last). Nil unless Overlap.
	Buckets []comm.BucketTiming
}

// Duration returns the total time as a time.Duration.
func (e Estimate) Duration() time.Duration { return time.Duration(e.TotalSec * float64(time.Second)) }

// String renders a compact summary row.
func (e Estimate) String() string {
	if e.OOM {
		return fmt.Sprintf("%s B=%d on %dx %s: OOM", e.Model, e.Batch, e.Cluster.Count, e.Cluster.Machine.Name)
	}
	return fmt.Sprintf("%s B=%d on %dx %s: %s (%.0f img/s, comm %.0f%%)",
		e.Model, e.Batch, e.Cluster.Count, e.Cluster.Machine.Name,
		formatDuration(e.TotalSec), e.ImagesSec, 100*e.CommSec/(e.CompSec+e.CommSec+1e-30))
}

// formatDuration renders seconds as the paper's "21h" / "24m" style.
func formatDuration(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= 48*time.Hour:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	case d >= time.Hour:
		h := int(d.Hours())
		m := int(d.Minutes()) - 60*h
		return fmt.Sprintf("%dh%02dm", h, m)
	case d >= time.Minute:
		return fmt.Sprintf("%.0fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// Simulate prices one fixed-epoch training run of spec on c with global
// batch size batch over a dataset of datasetSize images.
func Simulate(c Cluster, spec *models.ModelSpec, batch, epochs, datasetSize int) Estimate {
	if c.Count <= 0 || batch <= 0 || epochs <= 0 || datasetSize <= 0 {
		panic("cluster: invalid simulation parameters")
	}
	e := Estimate{
		Cluster: c, Model: spec.Name, Batch: batch, Epochs: epochs,
		Iterations: comm.Iterations(epochs, datasetSize, batch),
	}
	// The largest shard sets the lockstep iteration time, so price
	// ceil(batch/Count): truncating would silently drop batch mod Count
	// samples, underpricing compute and overstating throughput whenever
	// the global batch does not divide the device count. (More devices
	// than samples degenerates to one image on the busiest devices.)
	e.LocalBatch = (batch + c.Count - 1) / c.Count
	fit := MaxBatch(c.Machine, spec)
	if fit == 0 {
		e.OOM = true
		return e
	}
	e.MicroBatch = e.LocalBatch
	if e.MicroBatch > fit {
		e.MicroBatch = fit // gradient accumulation in micro-batches
	}
	var rawComm float64
	h, hier := c.Hierarchy()
	if hier {
		e.TierComm = comm.ExpectedTierStats(h, spec.WeightBytes())
		e.Comm = e.TierComm.Total()
		rawComm = comm.HierarchicalAllreduceTime(c.IntraNetwork, c.Network, h, spec.WeightBytes())
	} else {
		e.Comm = comm.ExpectedStats(c.Algo, c.Count, spec.WeightBytes())
		rawComm = c.Network.AllreduceTime(c.Algo, c.Count, spec.WeightBytes())
	}
	prof := c.Machine.ProfileFor(spec.Name)
	eff := prof.Efficiency(float64(e.MicroBatch))
	flopsPerIter := float64(e.LocalBatch) * float64(spec.TrainFLOPsPerImage())
	e.CompSec = flopsPerIter / (c.Machine.PeakFLOPS * eff)
	if c.Overlap {
		// Bucket-level overlap: pipeline the bucket allreduces against
		// the backward pass (per fabric for hierarchical clusters) and
		// expose only what the pipeline cannot hide.
		k := c.OverlapBuckets
		if k <= 0 {
			k = DefaultOverlapBuckets
		}
		bucketBytes := comm.EqualBuckets(spec.WeightBytes(), k)
		e.BackwardSec = backwardShare * e.CompSec
		if hier {
			e.Buckets = comm.HierOverlapSchedule(c.IntraNetwork, c.Network, h, bucketBytes, e.BackwardSec)
		} else {
			e.Buckets = comm.OverlapSchedule(c.Network, c.Algo, c.Count, bucketBytes, e.BackwardSec)
		}
		e.CommSec = comm.ExposedTime(e.Buckets, e.BackwardSec)
		// The bucket costs sum exactly to rawComm (latency amortizes
		// across the pipelined buckets), so the hidden remainder is the
		// serial cost minus what stayed exposed.
		e.HiddenCommSec = rawComm - e.CommSec
	} else {
		e.CommSec = rawComm
	}
	iterSec := e.CompSec + e.CommSec
	e.TotalSec = float64(e.Iterations) * iterSec
	e.ImagesSec = float64(batch) / iterSec
	return e
}

// ThroughputPoint is one x/y pair of Figure 3: per-device batch size versus
// sustained images/second on a single device (0 marks out-of-memory).
type ThroughputPoint struct {
	Batch     int
	ImagesSec float64
	OOM       bool
}

// ThroughputCurve regenerates Figure 3's shape for one device and model.
func ThroughputCurve(m Machine, spec *models.ModelSpec, batches []int) []ThroughputPoint {
	fit := MaxBatch(m, spec)
	prof := m.ProfileFor(spec.Name)
	out := make([]ThroughputPoint, 0, len(batches))
	for _, b := range batches {
		if b > fit {
			out = append(out, ThroughputPoint{Batch: b, OOM: true})
			continue
		}
		eff := prof.Efficiency(float64(b))
		ips := m.PeakFLOPS * eff / float64(spec.TrainFLOPsPerImage())
		out = append(out, ThroughputPoint{Batch: b, ImagesSec: ips})
	}
	return out
}
