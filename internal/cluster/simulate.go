package cluster

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

// Cluster is a homogeneous set of devices joined by one fabric.
type Cluster struct {
	Machine Machine
	Count   int
	Network comm.Network
	Algo    dist.Algorithm
	// Overlap models communication/computation overlap (Das et al. 2016;
	// Goyal et al. 2017): the exposed communication per iteration is the
	// part not hidden behind the backward pass, approximated as
	// max(0, t_comm − t_comp/2).
	Overlap bool
}

// Predefined clusters matching the paper's experiments.

// DGX1 is one NVIDIA DGX-1 station: 8 P100s on NVLink.
func DGX1() Cluster {
	return Cluster{Machine: TeslaP100, Count: 8, Network: NVLinkHybrid, Algo: dist.Ring}
}

// SingleDevice is a one-device "cluster" (no communication).
func SingleDevice(m Machine) Cluster {
	return Cluster{Machine: m, Count: 1, Network: OmniPath, Algo: dist.Ring}
}

// KNLCluster is n Stampede-2 KNL nodes on Omni-Path.
func KNLCluster(n int) Cluster {
	return Cluster{Machine: KNL7250, Count: n, Network: OmniPath, Algo: dist.Ring}
}

// CPUCluster is n Skylake nodes on Omni-Path.
func CPUCluster(n int) Cluster {
	return Cluster{Machine: Xeon8160, Count: n, Network: OmniPath, Algo: dist.Ring}
}

// P100Cluster is n P100 GPUs on FDR InfiniBand (Facebook's setup).
func P100Cluster(n int) Cluster {
	return Cluster{Machine: TeslaP100, Count: n, Network: comm.MellanoxFDR, Algo: dist.Ring}
}

// Estimate is the simulator's output for one training configuration.
type Estimate struct {
	Cluster    Cluster
	Model      string
	Batch      int
	Epochs     int
	Iterations int64
	LocalBatch int
	// MicroBatch is the per-device compute batch after memory-driven
	// micro-batching; equal to LocalBatch when everything fits.
	MicroBatch int
	// OOM marks configurations where even a single image does not fit.
	OOM       bool
	CompSec   float64 // per-iteration computation
	CommSec   float64 // per-iteration exposed communication
	TotalSec  float64
	ImagesSec float64 // sustained throughput
	// Comm is the closed-form schedule of one gradient allreduce under
	// the cluster's algorithm — the same counters internal/dist records
	// when executing the exchange for real.
	Comm dist.CommStats
}

// Duration returns the total time as a time.Duration.
func (e Estimate) Duration() time.Duration { return time.Duration(e.TotalSec * float64(time.Second)) }

// String renders a compact summary row.
func (e Estimate) String() string {
	if e.OOM {
		return fmt.Sprintf("%s B=%d on %dx %s: OOM", e.Model, e.Batch, e.Cluster.Count, e.Cluster.Machine.Name)
	}
	return fmt.Sprintf("%s B=%d on %dx %s: %s (%.0f img/s, comm %.0f%%)",
		e.Model, e.Batch, e.Cluster.Count, e.Cluster.Machine.Name,
		formatDuration(e.TotalSec), e.ImagesSec, 100*e.CommSec/(e.CompSec+e.CommSec+1e-30))
}

// formatDuration renders seconds as the paper's "21h" / "24m" style.
func formatDuration(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= 48*time.Hour:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	case d >= time.Hour:
		h := int(d.Hours())
		m := int(d.Minutes()) - 60*h
		return fmt.Sprintf("%dh%02dm", h, m)
	case d >= time.Minute:
		return fmt.Sprintf("%.0fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// Simulate prices one fixed-epoch training run of spec on c with global
// batch size batch over a dataset of datasetSize images.
func Simulate(c Cluster, spec *models.ModelSpec, batch, epochs, datasetSize int) Estimate {
	if c.Count <= 0 || batch <= 0 || epochs <= 0 || datasetSize <= 0 {
		panic("cluster: invalid simulation parameters")
	}
	e := Estimate{
		Cluster: c, Model: spec.Name, Batch: batch, Epochs: epochs,
		Iterations: comm.Iterations(epochs, datasetSize, batch),
	}
	e.LocalBatch = batch / c.Count
	if e.LocalBatch == 0 {
		e.LocalBatch = 1 // more devices than samples: P = batch effectively
	}
	fit := MaxBatch(c.Machine, spec)
	if fit == 0 {
		e.OOM = true
		return e
	}
	e.MicroBatch = e.LocalBatch
	if e.MicroBatch > fit {
		e.MicroBatch = fit // gradient accumulation in micro-batches
	}
	e.Comm = comm.ExpectedStats(c.Algo, c.Count, spec.WeightBytes())
	prof := c.Machine.ProfileFor(spec.Name)
	eff := prof.Efficiency(float64(e.MicroBatch))
	flopsPerIter := float64(e.LocalBatch) * float64(spec.TrainFLOPsPerImage())
	e.CompSec = flopsPerIter / (c.Machine.PeakFLOPS * eff)
	rawComm := c.Network.AllreduceTime(c.Algo, c.Count, spec.WeightBytes())
	if c.Overlap {
		exposed := rawComm - e.CompSec/2
		if exposed < 0 {
			exposed = 0
		}
		e.CommSec = exposed
	} else {
		e.CommSec = rawComm
	}
	iterSec := e.CompSec + e.CommSec
	e.TotalSec = float64(e.Iterations) * iterSec
	e.ImagesSec = float64(batch) / iterSec
	return e
}

// ThroughputPoint is one x/y pair of Figure 3: per-device batch size versus
// sustained images/second on a single device (0 marks out-of-memory).
type ThroughputPoint struct {
	Batch     int
	ImagesSec float64
	OOM       bool
}

// ThroughputCurve regenerates Figure 3's shape for one device and model.
func ThroughputCurve(m Machine, spec *models.ModelSpec, batches []int) []ThroughputPoint {
	fit := MaxBatch(m, spec)
	prof := m.ProfileFor(spec.Name)
	out := make([]ThroughputPoint, 0, len(batches))
	for _, b := range batches {
		if b > fit {
			out = append(out, ThroughputPoint{Batch: b, OOM: true})
			continue
		}
		eff := prof.Efficiency(float64(b))
		ips := m.PeakFLOPS * eff / float64(spec.TrainFLOPsPerImage())
		out = append(out, ThroughputPoint{Batch: b, ImagesSec: ips})
	}
	return out
}
