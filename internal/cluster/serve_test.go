package cluster

import (
	"testing"

	"repro/internal/models"
	"repro/internal/serve"
)

func microSpec() *models.ModelSpec {
	return models.MicroAlexNetSpec(models.MicroConfig{Classes: 8, InH: 24, Width: 8})
}

// The derived service model anchors both curve points: S(1) matches the
// b=1 efficiency, PerImage the saturated marginal cost, and Base >= 0.
func TestServeServiceModel(t *testing.T) {
	m := ServeServiceModel(TeslaP100, microSpec())
	if m.PerImage < 1 || m.Base < 0 {
		t.Fatalf("degenerate service model: %+v", m)
	}
	if m.BatchTicks(64)-m.BatchTicks(63) != m.PerImage {
		t.Fatal("marginal cost should be PerImage")
	}
}

// Fleet sizing is the capacity condition solved for R, and its answer must
// be tight: the sized fleet satisfies the closed-form regime, one replica
// fewer violates it (checked against the measured scheduler, not just the
// model).
func TestSimulateServeSizesFleet(t *testing.T) {
	spec := microSpec()
	est, err := SimulateServe(TeslaP100, spec, 50_000, 16, 800, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if est.BatchSize < 1 || est.BatchSize > 16 {
		t.Fatalf("batch size %d outside window", est.BatchSize)
	}
	if est.Replicas < 1 {
		t.Fatalf("replicas %d", est.Replicas)
	}
	// Capacity holds at the answer and fails one below.
	period := serve.Ticks(est.BatchSize) * est.Gap
	if est.ServiceTicks > serve.Ticks(est.Replicas)*period {
		t.Fatalf("sized fleet violates capacity: %+v", est)
	}
	if est.Replicas > 1 && est.ServiceTicks <= serve.Ticks(est.Replicas-1)*period {
		t.Fatalf("fleet oversized: %+v", est)
	}

	// The sizing answer agrees with a measured run at that fleet size.
	cfg := serve.Config{MaxBatch: 16, MaxDelay: 800, Replicas: est.Replicas, Service: est.Service}
	rep, err := serve.Simulate(cfg, serve.UniformTrace(100*est.BatchSize, est.Gap, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stats.Equal(est.Stats) {
		t.Fatalf("sizing stats diverge from measured run:\n%s", rep.Stats.Diff(est.Stats))
	}
	if est.P99 != rep.Stats.P99 {
		t.Fatalf("p99 %d vs measured %d", est.P99, rep.Stats.P99)
	}
}

// Higher offered rate can only need more replicas, never fewer; and a
// latency target below the single-batch service time is infeasible at any
// fleet size.
func TestSimulateServeMonotoneAndInfeasible(t *testing.T) {
	spec := microSpec()
	prev := 0
	for _, rate := range []float64{10_000, 50_000, 200_000, 1_000_000} {
		est, err := SimulateServe(TeslaP100, spec, rate, 16, 800, 1<<40)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if est.Replicas < prev {
			t.Fatalf("replicas shrank with rate: %d after %d at %v req/s", est.Replicas, prev, rate)
		}
		prev = est.Replicas
	}

	est, err := SimulateServe(TeslaP100, spec, 50_000, 16, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Feasible {
		t.Fatal("1µs p99 target should be infeasible")
	}
	if _, err := SimulateServe(TeslaP100, spec, 0, 16, 800, 1000); err == nil {
		t.Fatal("rate 0 accepted")
	}
}
