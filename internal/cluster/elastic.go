package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/models"
)

// ElasticPhase is one constant-world segment of a degrading run: the fleet
// held Devices live devices for Iterations iterations at the given
// per-iteration cost.
type ElasticPhase struct {
	Devices    int
	Iterations int64
	CompSec    float64 // per-iteration computation at this world size
	CommSec    float64 // per-iteration communication at this world size
	ImagesSec  float64 // sustained throughput during the phase
}

// IterSec returns the phase's per-iteration time.
func (p ElasticPhase) IterSec() float64 { return p.CompSec + p.CommSec }

// ElasticEstimate prices a fixed-epoch run whose fleet shrinks
// mid-training — the simulator twin of the engine's elastic membership.
// The epoch budget (and with it the optimizer trajectory, hence the
// accuracy) is unchanged by evictions; what degrades is the wall clock, so
// TotalSec versus Healthy.TotalSec is the time-to-accuracy cost of running
// on a shrinking world.
type ElasticEstimate struct {
	// Healthy is the same configuration priced with the fleet intact.
	Healthy Estimate
	// Phases is the world-size timeline, full fleet first.
	Phases []ElasticPhase
	// TotalSec is the degraded run's wall clock; ImagesSec its average
	// sustained throughput.
	TotalSec  float64
	ImagesSec float64
}

// Duration returns the degraded total time as a time.Duration.
func (e ElasticEstimate) Duration() time.Duration {
	return time.Duration(e.TotalSec * float64(time.Second))
}

// SlowdownPct returns how much slower the degraded run is than the healthy
// fleet, in percent.
func (e ElasticEstimate) SlowdownPct() float64 {
	if e.Healthy.TotalSec == 0 {
		return 0
	}
	return 100 * (e.TotalSec - e.Healthy.TotalSec) / e.Healthy.TotalSec
}

// SimulateElastic prices one fixed-epoch training run of spec on c during
// which the fleet degrades: each entry of evictAtFrac is the fraction of
// total iterations completed when one device is permanently lost and
// evicted (the engine's Elastic policy at cluster scale). The global batch
// and iteration count stay fixed — the survivors absorb the work — so each
// post-eviction phase pays a larger local batch and a (slightly) cheaper
// collective. Hierarchical clusters (PerNode > 1) lose devices from the
// last node first, the node emptying out of the inter tier exactly as the
// engine's membership machine shrinks it. Communication is priced serially
// (the overlap pipeline is a healthy-fleet refinement; Overlap is ignored
// here), and the phase boundaries round down to whole iterations.
func SimulateElastic(c Cluster, spec *models.ModelSpec, batch, epochs, datasetSize int, evictAtFrac []float64) ElasticEstimate {
	c.Overlap = false
	out := ElasticEstimate{Healthy: Simulate(c, spec, batch, epochs, datasetSize)}
	if out.Healthy.OOM {
		return out
	}
	if len(evictAtFrac) >= c.Count {
		panic(fmt.Sprintf("cluster: cannot evict %d of %d devices", len(evictAtFrac), c.Count))
	}
	fracs := append([]float64(nil), evictAtFrac...)
	sort.Float64s(fracs)
	total := out.Healthy.Iterations

	// Phase boundaries in iterations; clamp and deduplicate implicitly by
	// allowing zero-length phases to drop out.
	start, world := int64(0), c.Count
	addPhase := func(end int64) {
		if end <= start {
			return
		}
		comp, commSec := phaseCost(c, spec, batch, world)
		iterSec := comp + commSec
		out.Phases = append(out.Phases, ElasticPhase{
			Devices: world, Iterations: end - start,
			CompSec: comp, CommSec: commSec,
			ImagesSec: float64(batch) / iterSec,
		})
		out.TotalSec += float64(end-start) * iterSec
		start = end
	}
	for _, f := range fracs {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		addPhase(int64(f * float64(total)))
		world--
	}
	addPhase(total)
	out.ImagesSec = float64(batch) * float64(total) / out.TotalSec
	return out
}

// phaseCost returns the per-iteration compute and (serial) communication
// cost of the configuration at the given live device count.
func phaseCost(c Cluster, spec *models.ModelSpec, batch, world int) (compSec, commSec float64) {
	localBatch := (batch + world - 1) / world
	micro := localBatch
	if fit := MaxBatch(c.Machine, spec); micro > fit {
		micro = fit
	}
	prof := c.Machine.ProfileFor(spec.Name)
	eff := prof.Efficiency(float64(micro))
	compSec = float64(localBatch) * float64(spec.TrainFLOPsPerImage()) / (c.Machine.PeakFLOPS * eff)
	if h, hier := c.Hierarchy(); hier {
		commSec = comm.DegradedHierarchicalAllreduceTime(c.IntraNetwork, c.Network, h,
			degradedNodeSizes(h.Nodes, h.PerNode, world), spec.WeightBytes())
	} else {
		commSec = c.Network.AllreduceTime(c.Algo, world, spec.WeightBytes())
	}
	return compSec, commSec
}

// degradedNodeSizes distributes world live devices over nodes of perNode,
// filling from the front — equivalent to evicting devices from the last
// node first, so nodes empty (and leave the inter tier) one at a time.
func degradedNodeSizes(nodes, perNode, world int) []int {
	var sizes []int
	for i := 0; i < nodes && world > 0; i++ {
		s := perNode
		if s > world {
			s = world
		}
		sizes = append(sizes, s)
		world -= s
	}
	return sizes
}
