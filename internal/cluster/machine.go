// Package cluster implements the performance simulator that regenerates the
// paper's wall-clock results (Tables 1, 2, 8, 9 and Figures 3 and 7) without
// the authors' hardware.
//
// The model is the same one the paper itself reasons with (Table 2):
//
//	iterations = E·n/B
//	iterTime   = t_comp(localBatch) + t_comm(P, |W|)
//	total      = iterations · iterTime
//
// t_comp comes from a per-device profile — peak single-precision FLOPS
// derated by a batch-efficiency curve eff(b) = E∞·b/(b+h) (the saturating
// shape of Figure 3) — and t_comm from the alpha-beta allreduce costs in
// internal/comm. E∞ and h are calibrated per (device, model family) against
// the paper's own published runs; EXPERIMENTS.md records the residual error
// for every anchor row. Device memory limits model Figure 3's out-of-memory
// point and force micro-batching for oversized local batches.
package cluster

import (
	"fmt"
	"strings"

	"repro/internal/comm"
)

// Profile is one batch-efficiency curve: achieved fraction of peak FLOPS is
// EffInf·b/(b+HalfBatch) for per-device batch b.
type Profile struct {
	EffInf    float64
	HalfBatch float64
}

// Efficiency evaluates the curve at per-device batch b.
func (p Profile) Efficiency(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return p.EffInf * b / (b + p.HalfBatch)
}

// Machine describes one compute device.
type Machine struct {
	Name string
	// PeakFLOPS is the single-precision peak (the paper compares devices
	// on this basis: P100 10.6 TFLOPS, KNL 6 TFLOPS).
	PeakFLOPS float64
	// MemoryBytes is the device memory available for weights, activations
	// and convolution workspace.
	MemoryBytes int64
	// Families maps a model family ("alexnet", "resnet", "default") to its
	// calibrated efficiency curve on this device.
	Families map[string]Profile
}

// ProfileFor returns the efficiency curve for a model name, falling back to
// the "default" family.
func (m Machine) ProfileFor(modelName string) Profile {
	name := strings.ToLower(modelName)
	for fam, p := range m.Families {
		if fam != "default" && strings.Contains(name, fam) {
			return p
		}
	}
	if p, ok := m.Families["default"]; ok {
		return p
	}
	panic(fmt.Sprintf("cluster: machine %s has no profile for %q", m.Name, modelName))
}

// The paper's devices. Efficiency curves are calibrated against the
// publication's own timing anchors (see package comment); peaks and memory
// are the published device specs.
var (
	// TeslaK20 is the FireCaffe-era GPU of Table 8's first row.
	TeslaK20 = Machine{
		Name: "NVIDIA K20", PeakFLOPS: 3.52e12, MemoryBytes: 5 << 30,
		Families: map[string]Profile{
			"alexnet": {EffInf: 0.45, HalfBatch: 130},
			"resnet":  {EffInf: 0.30, HalfBatch: 12},
			"default": {EffInf: 0.35, HalfBatch: 64},
		},
	}
	// TeslaM40 is Figure 3's device and the paper's "14 days" baseline.
	TeslaM40 = Machine{
		Name: "NVIDIA M40", PeakFLOPS: 6.8e12, MemoryBytes: 12 << 30,
		Families: map[string]Profile{
			"alexnet": {EffInf: 0.95, HalfBatch: 130},
			"resnet":  {EffInf: 0.40, HalfBatch: 12},
			"default": {EffInf: 0.5, HalfBatch: 64},
		},
	}
	// TeslaP100 is the DGX-1 / Facebook device (10.6 TFLOPS per the paper).
	TeslaP100 = Machine{
		Name: "NVIDIA P100", PeakFLOPS: 10.6e12, MemoryBytes: 16 << 30,
		Families: map[string]Profile{
			"alexnet": {EffInf: 0.95, HalfBatch: 130},
			"resnet":  {EffInf: 0.578, HalfBatch: 12},
			"default": {EffInf: 0.6, HalfBatch: 64},
		},
	}
	// KNL7250 is the Stampede-2 Xeon Phi (6 TFLOPS per the paper).
	KNL7250 = Machine{
		Name: "Intel KNL 7250", PeakFLOPS: 6.0e12, MemoryBytes: 192 << 30,
		Families: map[string]Profile{
			"alexnet": {EffInf: 0.586, HalfBatch: 100},
			"resnet":  {EffInf: 0.30, HalfBatch: 12},
			"default": {EffInf: 0.35, HalfBatch: 48},
		},
	}
	// Xeon8160 is the Skylake CPU of the paper's "1024 CPUs" runs.
	Xeon8160 = Machine{
		Name: "Intel Xeon Platinum 8160", PeakFLOPS: 3.07e12, MemoryBytes: 192 << 30,
		Families: map[string]Profile{
			"alexnet": {EffInf: 0.95, HalfBatch: 18},
			"resnet":  {EffInf: 0.342, HalfBatch: 4},
			"default": {EffInf: 0.45, HalfBatch: 12},
		},
	}
)

// Fabrics beyond Table 11 that the paper's clusters used.
var (
	// OmniPath approximates Stampede-2's 100Gb/s Intel Omni-Path fabric.
	OmniPath = comm.Network{Name: "Intel 100Gb/s Omni-Path", Alpha: 1.0e-6, Beta: 0.1e-9}
	// NVLinkHybrid approximates intra-DGX-1 NVLink collective performance.
	NVLinkHybrid = comm.Network{Name: "NVLink (DGX-1)", Alpha: 5.0e-6, Beta: 0.0125e-9}
)
