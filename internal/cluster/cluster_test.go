package cluster

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
)

const (
	imagenetSize = 1280000
	hour         = 3600.0
	minute       = 60.0
)

// anchor checks a simulated time against a paper-published wall-clock time.
// The simulator is calibrated, not fitted per-row, so a generous band is
// allowed; EXPERIMENTS.md reports exact residuals.
func anchor(t *testing.T, name string, est Estimate, paperSec float64) {
	t.Helper()
	if est.OOM {
		t.Errorf("%s: unexpected OOM", name)
		return
	}
	ratio := est.TotalSec / paperSec
	if ratio < 0.55 || ratio > 1.6 {
		t.Errorf("%s: simulated %.0fs vs paper %.0fs (ratio %.2f)", name, est.TotalSec, paperSec, ratio)
	}
}

// TestTable8AlexNetAnchors replays Table 8's AlexNet rows.
func TestTable8AlexNetAnchors(t *testing.T) {
	alex := models.AlexNetSpec()
	alexBN := models.AlexNetBNSpec()
	anchor(t, "B=256 K20 144h",
		Simulate(SingleDevice(TeslaK20), alex, 256, 100, imagenetSize), 144*hour)
	anchor(t, "B=512 DGX-1 6h10m",
		Simulate(DGX1(), alex, 512, 100, imagenetSize), 6*hour+10*minute)
	anchor(t, "B=4096 DGX-1 2h19m",
		Simulate(DGX1(), alex, 4096, 100, imagenetSize), 2*hour+19*minute)
	anchor(t, "B=32K 512 KNL 24m",
		Simulate(KNLCluster(512), alexBN, 32768, 100, imagenetSize), 24*minute)
	anchor(t, "B=32K 1024 CPU 11m",
		Simulate(CPUCluster(1024), alexBN, 32768, 100, imagenetSize), 11*minute)
}

// TestTable9ResNetAnchors replays Table 9's ResNet-50 rows.
func TestTable9ResNetAnchors(t *testing.T) {
	resnet := models.ResNet50Spec()
	anchor(t, "B=256 DGX-1 21h",
		Simulate(DGX1(), resnet, 256, 90, imagenetSize), 21*hour)
	anchor(t, "B=256 16 KNL 45h",
		Simulate(KNLCluster(16), resnet, 256, 90, imagenetSize), 45*hour)
	anchor(t, "B=8192 DGX-1 21h",
		Simulate(DGX1(), resnet, 8192, 90, imagenetSize), 21*hour)
	anchor(t, "B=8192 256 P100 1h",
		Simulate(P100Cluster(256), resnet, 8192, 90, imagenetSize), 1*hour)
	anchor(t, "B=16384 1024 CPU 52m",
		Simulate(CPUCluster(1024), resnet, 16384, 90, imagenetSize), 52*minute)
	anchor(t, "B=16000 1600 CPU 31m",
		Simulate(CPUCluster(1600), resnet, 16000, 90, imagenetSize), 31*minute)
	anchor(t, "B=32K 512 KNL 1h",
		Simulate(KNLCluster(512), resnet, 32768, 90, imagenetSize), 1*hour)
	anchor(t, "B=32K 1024 CPU 48m",
		Simulate(CPUCluster(1024), resnet, 32768, 90, imagenetSize), 48*minute)
	anchor(t, "B=32K 2048 KNL 20m",
		Simulate(KNLCluster(2048), resnet, 32768, 90, imagenetSize), 20*minute)
	anchor(t, "B=32K 64ep 2048 KNL 14m (Table 1)",
		Simulate(KNLCluster(2048), resnet, 32768, 64, imagenetSize), 14*minute)
}

// TestM40FourteenDays replays the paper's opening claim: 90-epoch ResNet-50
// on one M40 takes 14 days.
func TestM40FourteenDays(t *testing.T) {
	est := Simulate(SingleDevice(TeslaM40), models.ResNet50Spec(), 256, 90, imagenetSize)
	anchor(t, "M40 14 days", est, 14*24*hour)
}

// TestFigure3ThroughputShape checks Figure 3: single-M40 AlexNet throughput
// rises with per-device batch and hits OOM at 1024.
func TestFigure3ThroughputShape(t *testing.T) {
	curve := ThroughputCurve(TeslaM40, models.AlexNetSpec(), []int{32, 64, 128, 256, 512, 1024})
	for i := 1; i < len(curve); i++ {
		if curve[i].OOM {
			continue
		}
		if curve[i].ImagesSec <= curve[i-1].ImagesSec {
			t.Errorf("throughput not increasing at batch %d", curve[i].Batch)
		}
	}
	if curve[4].OOM {
		t.Error("batch 512 should fit on the M40 (Figure 3's peak point)")
	}
	if !curve[5].OOM {
		t.Error("batch 1024 should be out of memory on the M40 (Figure 3)")
	}
}

// TestWeakScalingShape: with batch scaled with the node count, the time
// keeps dropping (Table 2's promise) until communication saturates it.
func TestWeakScalingShape(t *testing.T) {
	resnet := models.ResNet50Spec()
	prev := Simulate(KNLCluster(64), resnet, 64*64, 90, imagenetSize).TotalSec
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		cur := Simulate(KNLCluster(n), resnet, 64*n, 90, imagenetSize).TotalSec
		if cur >= prev {
			t.Errorf("weak scaling broke at %d nodes: %.0fs -> %.0fs", n, prev, cur)
		}
		prev = cur
	}
}

// TestAlexNetScalesWorseThanResNet: the comm fraction at equal node count
// must be higher for AlexNet (scaling ratio 24.6) than for ResNet-50 (308).
func TestAlexNetScalesWorseThanResNet(t *testing.T) {
	alex := Simulate(KNLCluster(512), models.AlexNetBNSpec(), 32768, 100, imagenetSize)
	res := Simulate(KNLCluster(512), models.ResNet50Spec(), 32768, 90, imagenetSize)
	alexComm := alex.CommSec / (alex.CompSec + alex.CommSec)
	resComm := res.CommSec / (res.CompSec + res.CommSec)
	if alexComm <= resComm {
		t.Errorf("AlexNet comm fraction %.3f should exceed ResNet's %.3f", alexComm, resComm)
	}
}

// TestLargeBatchReducesCommunication: Figure 7/Table 2's core claim — same
// hardware, bigger batch, fewer iterations, less total communication, less
// total time.
func TestLargeBatchReducesCommunication(t *testing.T) {
	c := P100Cluster(64)
	small := Simulate(c, models.ResNet50Spec(), 512, 90, imagenetSize)
	large := Simulate(c, models.ResNet50Spec(), 8192, 90, imagenetSize)
	if large.TotalSec >= small.TotalSec {
		t.Errorf("large batch slower: %.0fs vs %.0fs", large.TotalSec, small.TotalSec)
	}
	smallCommTotal := small.CommSec * float64(small.Iterations)
	largeCommTotal := large.CommSec * float64(large.Iterations)
	if largeCommTotal >= smallCommTotal {
		t.Errorf("large batch communicated more: %.0fs vs %.0fs", largeCommTotal, smallCommTotal)
	}
}

// TestLocalBatchPricesLargestShard pins the local-batch fix: when the
// global batch does not divide the device count, the busiest device holds
// ceil(batch/Count) images and sets the lockstep iteration time —
// truncation was silently dropping batch mod Count samples and overstating
// throughput.
func TestLocalBatchPricesLargestShard(t *testing.T) {
	resnet := models.ResNet50Spec()
	c := KNLCluster(8)
	est := Simulate(c, resnet, 100, 90, imagenetSize) // 100/8 = 12.5 -> 13
	if est.LocalBatch != 13 {
		t.Fatalf("LocalBatch = %d, want ceil(100/8) = 13", est.LocalBatch)
	}
	if est.MicroBatch != 13 {
		t.Fatalf("MicroBatch = %d, want 13 (fits)", est.MicroBatch)
	}
	// Compute must be priced on the 13-image busiest shard: B=100 and
	// B=104 over 8 devices share it, so their iteration compute matches.
	even := Simulate(c, resnet, 104, 90, imagenetSize) // 13 each, same shard
	if est.CompSec != even.CompSec {
		t.Fatalf("B=100 and B=104 on 8 devices share the 13-image busiest shard: CompSec %v vs %v", est.CompSec, even.CompSec)
	}
	// Throughput stays consistent with the priced iteration time.
	if want := 100 / (est.CompSec + est.CommSec); math.Abs(est.ImagesSec-want) > 1e-9*want {
		t.Fatalf("ImagesSec %v inconsistent with iteration time (want %v)", est.ImagesSec, want)
	}
	// More devices than samples degenerates to one image per busy device.
	tiny := Simulate(KNLCluster(256), resnet, 100, 90, imagenetSize)
	if tiny.LocalBatch != 1 {
		t.Fatalf("LocalBatch = %d with more devices than samples, want 1", tiny.LocalBatch)
	}
}

// TestOverlapBucketModel pins the bucket-level overlap pricing that
// replaced the max(0, t_comm − t_comp/2) heuristic: exposure is never
// negative, never exceeds the serial communication, stays at or below the
// old bound whenever that bound was positive, and the per-bucket timeline
// accounts every bucket with the first-layers bucket exposed.
func TestOverlapBucketModel(t *testing.T) {
	resnet := models.ResNet50Spec()
	for _, base := range []Cluster{KNLCluster(512), KNLCluster(2048), CPUCluster(1024), P100Cluster(256)} {
		plain := Simulate(base, resnet, 32768, 90, imagenetSize)
		over := base
		over.Overlap = true
		est := Simulate(over, resnet, 32768, 90, imagenetSize)
		if est.CommSec < 0 {
			t.Fatalf("%dx %s: negative exposed comm", base.Count, base.Machine.Name)
		}
		if est.CommSec > plain.CommSec {
			t.Fatalf("%dx %s: exposure %.6fs exceeds serial comm %.6fs", base.Count, base.Machine.Name, est.CommSec, plain.CommSec)
		}
		if old := plain.CommSec - plain.CompSec/2; old > 0 && est.CommSec > old {
			t.Errorf("%dx %s: bucket-level exposure %.6fs exceeds old heuristic bound %.6fs",
				base.Count, base.Machine.Name, est.CommSec, old)
		}
		if est.HiddenCommSec < 0 {
			t.Fatalf("%dx %s: negative hidden comm %.6fs", base.Count, base.Machine.Name, est.HiddenCommSec)
		}
		if got := est.HiddenCommSec + est.CommSec; math.Abs(got-plain.CommSec) > 1e-12+1e-9*plain.CommSec {
			t.Fatalf("%dx %s: hidden+exposed %.9fs != serial %.9fs", base.Count, base.Machine.Name, got, plain.CommSec)
		}
		if len(est.Buckets) != DefaultOverlapBuckets {
			t.Fatalf("timeline has %d buckets, want %d", len(est.Buckets), DefaultOverlapBuckets)
		}
		if est.Buckets[0].Hidden {
			t.Fatal("the first layers' bucket can never hide")
		}
		if est.BackwardSec <= 0 || est.BackwardSec >= est.CompSec {
			t.Fatalf("backward window %.6fs outside (0, CompSec=%.6fs)", est.BackwardSec, est.CompSec)
		}
	}
	// Hierarchical: the cross-tier pipeline (inter exchange of bucket k
	// over the intra reduce of bucket k+1) plus the backward window must
	// beat the serial two-tier composition.
	pod := DGXPod(8)
	plain := Simulate(pod, resnet, 8192, 90, imagenetSize)
	pod.Overlap = true
	est := Simulate(pod, resnet, 8192, 90, imagenetSize)
	if est.CommSec >= plain.CommSec {
		t.Fatalf("hierarchical overlap hid nothing: %.6fs vs serial %.6fs", est.CommSec, plain.CommSec)
	}
	if est.CommSec <= 0 {
		t.Fatal("the first layers' bucket stays exposed under hierarchy too")
	}
}

// TestOverlapBucketCountKnob: a finer bucket split can only expose less.
func TestOverlapBucketCountKnob(t *testing.T) {
	resnet := models.ResNet50Spec()
	prev := math.Inf(1)
	for _, k := range []int{1, 4, 16, 64} {
		c := KNLCluster(512)
		c.Overlap = true
		c.OverlapBuckets = k
		est := Simulate(c, resnet, 32768, 90, imagenetSize)
		if est.CommSec > prev+1e-12 {
			t.Fatalf("%d buckets exposed more than fewer buckets: %.6fs > %.6fs", k, est.CommSec, prev)
		}
		prev = est.CommSec
		if len(est.Buckets) != k {
			t.Fatalf("OverlapBuckets=%d produced %d buckets", k, len(est.Buckets))
		}
	}
}

// TestOverlapHidesCommunication: enabling overlap must never make an
// estimate slower, and must strictly help when comm is a visible fraction.
func TestOverlapHidesCommunication(t *testing.T) {
	base := KNLCluster(2048)
	over := base
	over.Overlap = true
	plain := Simulate(base, models.ResNet50Spec(), 32768, 90, imagenetSize)
	hidden := Simulate(over, models.ResNet50Spec(), 32768, 90, imagenetSize)
	if hidden.TotalSec > plain.TotalSec {
		t.Error("overlap made things slower")
	}
	if hidden.CommSec >= plain.CommSec {
		t.Error("overlap did not reduce exposed communication")
	}
}

// TestMicroBatchingKeepsOversizedBatchesRunning: Table 9's B=8192 single
// DGX-1 row requires gradient accumulation, not OOM failure.
func TestMicroBatchingKeepsOversizedBatches(t *testing.T) {
	est := Simulate(DGX1(), models.ResNet50Spec(), 8192, 90, imagenetSize)
	if est.OOM {
		t.Fatal("micro-batching should avoid OOM")
	}
	if est.MicroBatch >= est.LocalBatch {
		t.Fatalf("expected micro-batch < local batch 1024, got %d", est.MicroBatch)
	}
}

func TestMaxBatchPositive(t *testing.T) {
	for _, m := range []Machine{TeslaK20, TeslaM40, TeslaP100, KNL7250, Xeon8160} {
		for _, spec := range []*models.ModelSpec{models.AlexNetSpec(), models.ResNet50Spec()} {
			if MaxBatch(m, spec) < 16 {
				t.Errorf("%s cannot fit a small %s batch", m.Name, spec.Name)
			}
		}
	}
}

func TestProfileForFallsBack(t *testing.T) {
	p := KNL7250.ProfileFor("mlp-h64")
	if p != KNL7250.Families["default"] {
		t.Error("unknown model should use the default profile")
	}
	if KNL7250.ProfileFor("micro-resnet-w8") != KNL7250.Families["resnet"] {
		t.Error("micro-resnet should match the resnet family")
	}
}

func TestEfficiencyCurveMonotone(t *testing.T) {
	p := Profile{EffInf: 0.9, HalfBatch: 64}
	prev := 0.0
	for b := 1; b <= 4096; b *= 2 {
		e := p.Efficiency(float64(b))
		if e <= prev || e > p.EffInf {
			t.Fatalf("efficiency curve broken at b=%d: %v", b, e)
		}
		prev = e
	}
}

func TestEstimateStringRenders(t *testing.T) {
	est := Simulate(KNLCluster(2048), models.ResNet50Spec(), 32768, 90, imagenetSize)
	if est.String() == "" || est.Duration() <= 0 {
		t.Fatal("estimate rendering broken")
	}
}

// TestCentralBottleneck: at scale the parameter-server pattern must be far
// slower than ring allreduce (why the paper's systems use collectives).
func TestCentralBottleneck(t *testing.T) {
	ring := KNLCluster(1024)
	central := ring
	central.Algo = dist.Central
	r := Simulate(ring, models.ResNet50Spec(), 32768, 90, imagenetSize)
	c := Simulate(central, models.ResNet50Spec(), 32768, 90, imagenetSize)
	if c.CommSec < 10*r.CommSec {
		t.Errorf("central comm %.3fs should dwarf ring %.3fs at P=1024", c.CommSec, r.CommSec)
	}
}

// TestFiveSecondIdeal reproduces the introduction's thought experiment: at
// the fastest supercomputer's 2e17 FLOPS, 90-epoch ResNet-50 takes ~5s.
func TestFiveSecondIdeal(t *testing.T) {
	spec := models.ResNet50Spec()
	flops := float64(spec.FLOPsPerImage()) * 90 * float64(imagenetSize)
	sec := flops / 2e17
	if sec < 3 || sec > 7 {
		t.Errorf("ideal supercomputer time %.1fs, paper says ~5s", sec)
	}
}

var _ = comm.Table11 // keep the comm import for documentation linkage

// TestHierarchicalEstimate: a hierarchical cluster's schedule must match
// the closed-form two-tier counters, its aggregate their sum, and its
// communication time the two-fabric composition.
func TestHierarchicalEstimate(t *testing.T) {
	resnet := models.ResNet50Spec()
	c := DGXPod(4) // 32 P100s: 4 nodes x 8, NVLink ring intra, FDR tree inter
	est := Simulate(c, resnet, 8192, 90, imagenetSize)
	h, ok := c.Hierarchy()
	if !ok {
		t.Fatal("DGXPod should be hierarchical")
	}
	if h.Nodes != 4 || h.PerNode != 8 || h.Intra != dist.Ring || h.Inter != dist.Tree {
		t.Fatalf("DGXPod hierarchy = %+v", h)
	}
	if want := comm.ExpectedTierStats(h, resnet.WeightBytes()); est.TierComm != want {
		t.Fatalf("TierComm = %+v, want %+v", est.TierComm, want)
	}
	if est.Comm != est.TierComm.Total() {
		t.Fatalf("Comm %+v != TierComm total %+v", est.Comm, est.TierComm.Total())
	}
	want := comm.HierarchicalAllreduceTime(c.IntraNetwork, c.Network, h, resnet.WeightBytes())
	if est.CommSec != want {
		t.Fatalf("CommSec = %v, want two-fabric price %v", est.CommSec, want)
	}
}

// TestHierarchyCheaperThanFlatOnSameFabric: grouping the same devices into
// NVLink nodes must lower the per-iteration communication versus pushing
// the flat ring through FDR alone.
func TestHierarchyCheaperThanFlatOnSameFabric(t *testing.T) {
	resnet := models.ResNet50Spec()
	flat := Simulate(P100Cluster(32), resnet, 8192, 90, imagenetSize)
	pod := DGXPod(4)
	pod.IntraAlgo, pod.Algo = dist.Ring, dist.Ring
	hier := Simulate(pod, resnet, 8192, 90, imagenetSize)
	if hier.CommSec >= flat.CommSec {
		t.Fatalf("hierarchical comm %.4fs should beat flat FDR ring %.4fs", hier.CommSec, flat.CommSec)
	}
	if hier.CompSec != flat.CompSec {
		t.Fatalf("grouping must not change compute: %v vs %v", hier.CompSec, flat.CompSec)
	}
}

// TestFlatClusterHasZeroTierComm: flat estimates leave the tier split empty.
func TestFlatClusterHasZeroTierComm(t *testing.T) {
	est := Simulate(P100Cluster(8), models.ResNet50Spec(), 2048, 90, imagenetSize)
	if est.TierComm != (dist.TierStats{}) {
		t.Fatalf("flat cluster recorded tier stats %+v", est.TierComm)
	}
}

// TestHierarchyIndivisiblePanics: PerNode must divide Count.
func TestHierarchyIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 10 devices in nodes of 4")
		}
	}()
	c := DGXPod(1)
	c.Count = 10
	c.PerNode = 4
	c.Hierarchy()
}

// TestSimulateElasticHealthyFleet: with no evictions the elastic simulator
// reduces to one phase matching the plain (serial-communication) estimate.
func TestSimulateElasticHealthyFleet(t *testing.T) {
	c := KNLCluster(64)
	spec := models.ResNet50Spec()
	e := SimulateElastic(c, spec, 8192, 90, imagenetSize, nil)
	if len(e.Phases) != 1 {
		t.Fatalf("healthy run priced %d phases, want 1", len(e.Phases))
	}
	if e.Phases[0].Devices != 64 || e.Phases[0].Iterations != e.Healthy.Iterations {
		t.Fatalf("phase %+v does not cover the whole run at full strength", e.Phases[0])
	}
	if math.Abs(e.TotalSec-e.Healthy.TotalSec) > 1e-9*e.Healthy.TotalSec {
		t.Fatalf("healthy elastic total %.2fs != plain estimate %.2fs", e.TotalSec, e.Healthy.TotalSec)
	}
	if e.SlowdownPct() > 1e-9 {
		t.Fatalf("healthy run reports %.2f%% slowdown", e.SlowdownPct())
	}
}

// TestSimulateElasticDegradedRunSlower: losing devices mid-run costs wall
// clock (time-to-accuracy grows) and the phase timeline is consistent —
// iterations sum to the budget, worlds shrink by one per eviction,
// per-iteration time never improves as the fleet shrinks.
func TestSimulateElasticDegradedRunSlower(t *testing.T) {
	c := KNLCluster(64)
	spec := models.ResNet50Spec()
	e := SimulateElastic(c, spec, 8192, 90, imagenetSize, []float64{0.25, 0.5})
	if len(e.Phases) != 3 {
		t.Fatalf("2 evictions priced %d phases, want 3", len(e.Phases))
	}
	var iters int64
	for i, p := range e.Phases {
		iters += p.Iterations
		if want := 64 - i; p.Devices != want {
			t.Fatalf("phase %d at %d devices, want %d", i, p.Devices, want)
		}
		if i > 0 && p.IterSec() < e.Phases[i-1].IterSec() {
			t.Fatalf("phase %d got faster per iteration after losing a device: %v < %v",
				i, p.IterSec(), e.Phases[i-1].IterSec())
		}
	}
	if iters != e.Healthy.Iterations {
		t.Fatalf("phase iterations sum to %d, want the fixed budget %d", iters, e.Healthy.Iterations)
	}
	if e.TotalSec <= e.Healthy.TotalSec {
		t.Fatalf("degraded run %.2fs not slower than healthy %.2fs", e.TotalSec, e.Healthy.TotalSec)
	}
	if e.ImagesSec >= e.Healthy.ImagesSec {
		t.Fatalf("degraded throughput %.0f img/s not below healthy %.0f", e.ImagesSec, e.Healthy.ImagesSec)
	}
}

// TestSimulateElasticHierarchicalNodeDrain: draining a whole chassis from a
// DGX pod removes its node from the inter tier; the degraded phase is still
// cheaper in communication than pricing the same world flat on the cluster
// fabric.
func TestSimulateElasticHierarchicalNodeDrain(t *testing.T) {
	c := DGXPod(4) // 32 devices in 4 nodes of 8
	spec := models.ResNet50Spec()
	evict := make([]float64, 8) // lose all of the last chassis at half-time
	for i := range evict {
		evict[i] = 0.5
	}
	e := SimulateElastic(c, spec, 8192, 90, imagenetSize, evict)
	last := e.Phases[len(e.Phases)-1]
	if last.Devices != 24 {
		t.Fatalf("final world %d, want 24 (one chassis drained)", last.Devices)
	}
	want := comm.DegradedHierarchicalAllreduceTime(c.IntraNetwork, c.Network,
		dist.Hierarchy{Nodes: 4, PerNode: 8, Intra: c.IntraAlgo, Inter: c.Algo},
		[]int{8, 8, 8}, spec.WeightBytes())
	if math.Abs(last.CommSec-want) > 1e-12 {
		t.Fatalf("drained-chassis comm %.6fs, want degraded three-node price %.6fs", last.CommSec, want)
	}
	flat := c.Network.AllreduceTime(c.Algo, 24, spec.WeightBytes())
	if last.CommSec >= flat {
		t.Fatalf("hierarchical degraded comm %.6fs not cheaper than flat %.6fs on the cluster fabric", last.CommSec, flat)
	}
}
