package cluster

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
)

func mustSchedule(t *testing.T, s string) *data.ResolutionSchedule {
	t.Helper()
	sched, err := data.ParseResolutionSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// A constant schedule at the canonical resolution prices identically to the
// plain (non-overlapped) simulator — same wall clock, same FLOPs.
func TestSimulateProgressiveConstantMatchesSimulate(t *testing.T) {
	c := DGXPod(2)
	c.Overlap = false
	spec := models.ResNet50Spec()
	est := SimulateProgressive(c, spec, 1024, 90, 1281167, mustSchedule(t, "224x224"))
	if len(est.Phases) != 1 {
		t.Fatalf("constant schedule produced %d phases", len(est.Phases))
	}
	if math.Abs(est.TotalSec-est.Fixed.TotalSec) > 1e-9*est.Fixed.TotalSec {
		t.Errorf("constant schedule TotalSec %g != fixed %g", est.TotalSec, est.Fixed.TotalSec)
	}
	if est.SpeedupPct() != 0 || math.Abs(est.FLOPSavingsPct()) > 1e-12 {
		t.Errorf("constant schedule should save nothing: speedup %g%%, flops %g%%",
			est.SpeedupPct(), est.FLOPSavingsPct())
	}
	if est.Phases[0].Iterations != est.Fixed.Iterations {
		t.Errorf("phase iterations %d != fixed %d", est.Phases[0].Iterations, est.Fixed.Iterations)
	}
}

// The ENTR curriculum on ResNet-50 — half resolution for the first third of
// the budget — must price cheaper than fixed 224x224, phase iterations must
// tile the fixed budget exactly, and the low-resolution phase must run
// roughly 4x cheaper per image.
func TestSimulateProgressiveENTRCurriculum(t *testing.T) {
	c := DGXPod(4)
	spec := models.ResNet50Spec()
	sched := mustSchedule(t, "112x112@0-29,224x224@30+")
	est := SimulateProgressive(c, spec, 2048, 90, 1281167, sched)
	if len(est.Phases) != 2 {
		t.Fatalf("want 2 phases, got %d", len(est.Phases))
	}
	var iters int64
	for _, p := range est.Phases {
		iters += p.Iterations
		if p.CommSec != est.Phases[0].CommSec {
			t.Error("communication must be resolution-invariant across phases")
		}
	}
	if iters != est.Fixed.Iterations {
		t.Errorf("phase iterations sum %d != fixed %d", iters, est.Fixed.Iterations)
	}
	if est.TotalSec >= est.Fixed.TotalSec {
		t.Errorf("curriculum %gs should beat fixed %gs", est.TotalSec, est.Fixed.TotalSec)
	}
	if s := est.SpeedupPct(); s <= 0 || s >= 100 {
		t.Errorf("speedup %g%% out of range", s)
	}
	ratio := float64(est.Phases[1].TrainFLOPsPerImage) / float64(est.Phases[0].TrainFLOPsPerImage)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("per-image FLOP ratio across phases = %.2f, want ~4", ratio)
	}
	// A third of the epochs at ~quarter cost saves roughly a quarter of
	// the FLOPs.
	if s := est.FLOPSavingsPct(); s < 15 || s > 35 {
		t.Errorf("FLOP savings %g%%, want ~25%%", s)
	}
}

// Flatten→fc models cannot train under a resolution schedule (|W| changes
// with the input); the simulator rejects them loudly.
func TestSimulateProgressiveRejectsResolutionDependentParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for resolution-dependent parameter count")
		}
	}()
	spec := models.MicroAlexNetSpec(models.MicroConfig{Classes: 8, InH: 24, Width: 8})
	SimulateProgressive(KNLCluster(4), spec, 256, 10, 4096, mustSchedule(t, "12x12@0-4,24x24@5+"))
}

// The micro-convnet curriculum the measured study runs: sanity-check phase
// accounting on the toy scale too.
func TestSimulateProgressiveMicroConvNet(t *testing.T) {
	spec := models.MicroConvNetSpec(models.MicroConfig{Classes: 8, InH: 24, Width: 8})
	est := SimulateProgressive(KNLCluster(4), spec, 256, 12, 4096, mustSchedule(t, "12x12@0-5,24x24@6+"))
	if len(est.Phases) != 2 || est.Phases[0].H != 12 || est.Phases[1].H != 24 {
		t.Fatalf("unexpected phases %+v", est.Phases)
	}
	if est.Phases[0].CompSec >= est.Phases[1].CompSec {
		t.Error("12x12 phase should compute faster than 24x24")
	}
	if est.TotalSec >= est.Fixed.TotalSec {
		t.Error("curriculum should be cheaper than fixed")
	}
}
