package cluster

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/models"
	"repro/internal/serve"
)

// ServeServiceModel derives the serving tier's batch-cost model for running
// spec inference on m, anchored to the machine's efficiency curve at two
// points: PerImage is the saturated marginal cost per image (peak FLOPS at
// EffInf), and Base absorbs the rest of the single-image cost so S(1)
// matches the b=1 point of the curve — the same amortize-the-overhead shape
// as Figure 3, linearized into serve's alpha-beta form.
func ServeServiceModel(m Machine, spec *models.ModelSpec) serve.ServiceModel {
	prof := m.ProfileFor(spec.Name)
	flops := float64(spec.FLOPsPerImage())
	perImage := flops / (m.PeakFLOPS * prof.EffInf)
	single := flops / (m.PeakFLOPS * prof.Efficiency(1))
	toTicks := func(sec float64) serve.Ticks {
		t := serve.Ticks(sec * serve.TicksPerSecond)
		if t < 1 {
			t = 1
		}
		return t
	}
	base := toTicks(single) - toTicks(perImage)
	if base < 0 {
		base = 0
	}
	return serve.ServiceModel{Base: base, PerImage: toTicks(perImage)}
}

// ServeEstimate answers the fleet-sizing question: how many replicas of m
// does rate R need, and does the batch window meet the latency target?
type ServeEstimate struct {
	// Gap is the offered rate quantized to the virtual clock (ticks between
	// requests); Rate the rate that gap realizes.
	Gap  serve.Ticks
	Rate float64
	// Service is the derived batch-cost model, BatchSize the steady-state
	// batch the window settles at, ServiceTicks the cost of that batch.
	Service      serve.ServiceModel
	BatchSize    int
	ServiceTicks serve.Ticks
	// Replicas is the minimum pool satisfying the capacity condition
	// S(b) <= Replicas·b·gap — the fleet answer.
	Replicas int
	// Stats is the closed-form steady state at that fleet size (a window of
	// whole batches, so percentiles are the steady-state ones).
	Stats serve.Stats
	// Feasible reports P99 <= the target. Infeasibility cannot be bought
	// back with replicas — under the capacity condition latency is
	// replica-invariant — it means the batch window itself (MaxBatch,
	// MaxDelay) is too wide for the target.
	Feasible bool
	P99      serve.Ticks
}

// String renders the sizing answer in one line.
func (e ServeEstimate) String() string {
	verdict := "meets"
	if !e.Feasible {
		verdict = "misses"
	}
	return fmt.Sprintf("%.0f req/s: batch %d (S=%dµs), %d replica(s), p99 %dµs (%s target)",
		e.Rate, e.BatchSize, e.ServiceTicks, e.Replicas, e.P99, verdict)
}

// SimulateServe sizes a replica fleet of m for offered rate ratePerSec
// under the (maxBatch, maxDelay) batching window, against a p99 latency
// target in ticks. It is entirely closed-form: the arrival gap is the
// rate quantized to the virtual clock, the steady batch size and latency
// percentiles come from comm.ExpectedServeStats over a window of whole
// batches, and the replica count is the capacity condition solved for R:
//
//	Replicas = ⌈S(b) / (b·gap)⌉
//
// the serving analogue of Table 2's "how many workers for this epoch
// budget". The same numbers are testable against serve.Simulate measured
// counters — see the harness Serve study.
func SimulateServe(m Machine, spec *models.ModelSpec, ratePerSec float64, maxBatch int, maxDelay, p99Target serve.Ticks) (ServeEstimate, error) {
	if ratePerSec <= 0 {
		return ServeEstimate{}, fmt.Errorf("cluster: serve rate %v, want > 0", ratePerSec)
	}
	gap := serve.Ticks(serve.TicksPerSecond/ratePerSec + 0.5)
	if gap < 1 {
		gap = 1
	}
	est := ServeEstimate{
		Gap:     gap,
		Rate:    serve.TicksPerSecond / float64(gap),
		Service: ServeServiceModel(m, spec),
	}
	cfg := serve.Config{MaxBatch: maxBatch, MaxDelay: maxDelay, Service: est.Service}
	est.BatchSize = comm.ServeBatchSize(cfg, gap)
	est.ServiceTicks = est.Service.BatchTicks(est.BatchSize)

	period := serve.Ticks(est.BatchSize) * gap
	est.Replicas = int((est.ServiceTicks + period - 1) / period)
	if est.Replicas < 1 {
		est.Replicas = 1
	}
	cfg.Replicas = est.Replicas

	// A window of whole batches makes the percentiles the steady-state
	// per-batch distribution.
	n := 100 * est.BatchSize
	stats, err := comm.ExpectedServeStats(cfg, n, gap)
	if err != nil {
		return ServeEstimate{}, fmt.Errorf("cluster: sized fleet fell outside the serve model: %w", err)
	}
	est.Stats = stats
	est.P99 = stats.P99
	est.Feasible = est.P99 <= p99Target
	return est, nil
}
