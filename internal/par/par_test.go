package par

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	const n = 100000
	hits := make([]int32, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(lo, hi int) { called = true })
	For(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body must not run for empty ranges")
	}
}

func TestForSmallRunsInline(t *testing.T) {
	calls := 0
	ForGrain(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("inline call got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("small range split into %d calls", calls)
	}
}

// Property: chunks returned by ForGrain are disjoint, ordered within
// themselves, and cover [0, n) for arbitrary n and grain.
func TestForGrainPartitionProperty(t *testing.T) {
	f := func(nn uint16, gg uint8) bool {
		n := int(nn % 5000)
		grain := int(gg)
		var mu sync.Mutex
		covered := make([]bool, n)
		ok := true
		ForGrain(n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				ok = false
				return
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				if covered[i] {
					ok = false
				}
				covered[i] = true
			}
			mu.Unlock()
		})
		if !ok {
			return false
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDoRunsAll(t *testing.T) {
	var n int32
	Do(
		func() { atomic.AddInt32(&n, 1) },
		func() { atomic.AddInt32(&n, 10) },
		func() { atomic.AddInt32(&n, 100) },
	)
	if n != 111 {
		t.Fatalf("Do: n = %d, want 111", n)
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Fatal("MaxWorkers must be >= 1")
	}
}

// TestForGrainGrainExceedsN: a grain larger than the range must collapse
// to one inline call covering the whole range.
func TestForGrainGrainExceedsN(t *testing.T) {
	for _, tc := range []struct{ n, grain int }{{1, 2}, {10, 11}, {100, 1 << 20}, {5, 5}} {
		var calls [][2]int
		ForGrain(tc.n, tc.grain, func(lo, hi int) {
			calls = append(calls, [2]int{lo, hi})
		})
		if len(calls) != 1 || calls[0] != [2]int{0, tc.n} {
			t.Fatalf("n=%d grain=%d: calls %v, want one inline [0,%d)", tc.n, tc.grain, calls, tc.n)
		}
	}
}

// TestForGrainEmptyRange: n == 0 (and negative n) must not invoke the body
// for any grain, including degenerate ones.
func TestForGrainEmptyRange(t *testing.T) {
	for _, grain := range []int{-1, 0, 1, 1000} {
		ForGrain(0, grain, func(lo, hi int) { t.Fatalf("body ran for n=0, grain=%d", grain) })
		ForGrain(-3, grain, func(lo, hi int) { t.Fatalf("body ran for n=-3, grain=%d", grain) })
	}
}

// TestForGrainRounding pins the chunk geometry: chunks are contiguous,
// ascending once sorted, all but the last share one size (the rounded-up
// n/chunks), and the chunk count never exceeds MaxWorkers — the grain
// rounding cases (grain dividing n, grain not dividing n, grain of 1).
func TestForGrainRounding(t *testing.T) {
	for _, tc := range []struct{ n, grain int }{
		{100, 10}, {100, 7}, {101, 10}, {99, 100}, {4096, 1}, {5000, 2048}, {2049, 2048},
	} {
		var mu sync.Mutex
		var spans [][2]int
		ForGrain(tc.n, tc.grain, func(lo, hi int) {
			mu.Lock()
			spans = append(spans, [2]int{lo, hi})
			mu.Unlock()
		})
		sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
		if spans[0][0] != 0 || spans[len(spans)-1][1] != tc.n {
			t.Fatalf("n=%d grain=%d: spans %v do not cover [0,%d)", tc.n, tc.grain, spans, tc.n)
		}
		if len(spans) > MaxWorkers() {
			t.Fatalf("n=%d grain=%d: %d chunks exceed MaxWorkers %d", tc.n, tc.grain, len(spans), MaxWorkers())
		}
		size := spans[0][1] - spans[0][0]
		for i, s := range spans {
			if s[1] <= s[0] {
				t.Fatalf("n=%d grain=%d: empty span %v", tc.n, tc.grain, s)
			}
			if i > 0 && s[0] != spans[i-1][1] {
				t.Fatalf("n=%d grain=%d: gap between %v and %v", tc.n, tc.grain, spans[i-1], s)
			}
			if i < len(spans)-1 && s[1]-s[0] != size {
				t.Fatalf("n=%d grain=%d: non-final span %v has size %d, want %d", tc.n, tc.grain, s, s[1]-s[0], size)
			}
		}
		if last := spans[len(spans)-1]; last[1]-last[0] > size {
			t.Fatalf("n=%d grain=%d: final span %v larger than the others (%d)", tc.n, tc.grain, last, size)
		}
	}
}
