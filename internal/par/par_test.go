package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	const n = 100000
	hits := make([]int32, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(lo, hi int) { called = true })
	For(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body must not run for empty ranges")
	}
}

func TestForSmallRunsInline(t *testing.T) {
	calls := 0
	ForGrain(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("inline call got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("small range split into %d calls", calls)
	}
}

// Property: chunks returned by ForGrain are disjoint, ordered within
// themselves, and cover [0, n) for arbitrary n and grain.
func TestForGrainPartitionProperty(t *testing.T) {
	f := func(nn uint16, gg uint8) bool {
		n := int(nn % 5000)
		grain := int(gg)
		var mu sync.Mutex
		covered := make([]bool, n)
		ok := true
		ForGrain(n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				ok = false
				return
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				if covered[i] {
					ok = false
				}
				covered[i] = true
			}
			mu.Unlock()
		})
		if !ok {
			return false
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDoRunsAll(t *testing.T) {
	var n int32
	Do(
		func() { atomic.AddInt32(&n, 1) },
		func() { atomic.AddInt32(&n, 10) },
		func() { atomic.AddInt32(&n, 100) },
	)
	if n != 111 {
		t.Fatalf("Do: n = %d, want 111", n)
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Fatal("MaxWorkers must be >= 1")
	}
}
