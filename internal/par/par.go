// Package par provides tiny data-parallel loop helpers used by the tensor
// and neural-network packages.
//
// The helpers split an index range into contiguous chunks and run each chunk
// on its own goroutine, mirroring the "launch one piece per CPU and drain a
// channel" idiom. Work is only parallelized when the range is large enough to
// amortize goroutine startup, so small tensors stay on the caller's
// goroutine and remain cheap.
package par

import (
	"runtime"
	"sync"
)

// minParallel is the smallest range size worth splitting across goroutines.
// Below this the synchronization overhead dominates any speedup.
const minParallel = 2048

// MaxWorkers reports the degree of parallelism used by For: the number of
// usable CPUs as configured by GOMAXPROCS.
func MaxWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs body(lo, hi) over disjoint subranges covering [0, n). The body
// must be safe to call concurrently on disjoint ranges. For small n the body
// is invoked once on the calling goroutine.
func For(n int, body func(lo, hi int)) {
	ForGrain(n, minParallel, body)
}

// ForGrain is For with an explicit minimum chunk size. grain <= 0 means use
// the default.
func ForGrain(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = minParallel
	}
	workers := MaxWorkers()
	if workers <= 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > workers {
		chunks = workers
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs every task concurrently and waits for all of them. It is used for
// coarse-grained fan-out such as per-worker gradient computation.
func Do(tasks ...func()) {
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t func()) {
			defer wg.Done()
			t()
		}(t)
	}
	wg.Wait()
}
