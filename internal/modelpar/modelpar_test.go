package modelpar

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// densePair builds a sharded layer and an equivalent dense layer sharing
// the exact same weights.
func densePair(seed uint64, in, out, p int) (*ShardedLinear, *nn.Linear) {
	r := rng.New(seed)
	sharded := NewShardedLinear("mp", r, in, out, p)
	dense := nn.NewLinear("dense", rng.New(seed+1), in, out)
	w, b := sharded.DenseWeights()
	dense.Weight.W.CopyFrom(w)
	dense.Bias.W.CopyFrom(b)
	return sharded, dense
}

func TestForwardMatchesDense(t *testing.T) {
	sharded, dense := densePair(1, 7, 10, 3)
	r := rng.New(2)
	x := tensor.RandNormal(r, 1, 4, 7)
	ys := sharded.Forward(x, true)
	yd := dense.Forward(x, true)
	for i := range yd.Data {
		if math.Abs(float64(ys.Data[i]-yd.Data[i])) > 1e-5 {
			t.Fatalf("forward mismatch at %d: %v vs %v", i, ys.Data[i], yd.Data[i])
		}
	}
}

// Property: forward and backward of the sharded layer match the dense layer
// for arbitrary shapes and shard counts.
func TestShardedEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, inB, outB, pB, nB uint8) bool {
		in := int(inB%12) + 1
		out := int(outB%12) + 1
		p := int(pB%uint8(out))%4 + 1
		if p > out {
			p = out
		}
		n := int(nB%6) + 1
		sharded, dense := densePair(seed, in, out, p)
		r := rng.New(seed ^ 0xabc)
		x := tensor.RandNormal(r, 1, n, in)
		ys := sharded.Forward(x, true)
		yd := dense.Forward(x, true)
		for i := range yd.Data {
			if math.Abs(float64(ys.Data[i]-yd.Data[i])) > 1e-4 {
				return false
			}
		}
		dout := tensor.RandNormal(r, 1, n, out)
		dxs := sharded.Backward(dout.Clone())
		dxd := dense.Backward(dout.Clone())
		for i := range dxd.Data {
			if math.Abs(float64(dxs.Data[i]-dxd.Data[i])) > 1e-4 {
				return false
			}
		}
		// Weight gradients: reassemble shard grads and compare.
		off := 0
		for _, shard := range sharded.shards {
			sw := shard.Weight.G
			for j := range sw.Data {
				if math.Abs(float64(sw.Data[j]-dense.Weight.G.Data[off+j])) > 1e-4 {
					return false
				}
			}
			off += sw.Numel()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedInNetworkTrains(t *testing.T) {
	// A sharded layer must be usable as a drop-in nn.Layer inside a model.
	r := rng.New(5)
	net := nn.NewNetwork("mp-mlp",
		nn.NewFlatten(),
		NewShardedLinear("fc1", r, 16, 12, 3),
		nn.NewReLU("relu"),
		NewShardedLinear("fc2", r, 12, 2, 2),
	)
	x := tensor.RandNormal(rng.New(6), 1, 16, 1, 4, 4)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 2
		for j := 0; j < 16; j++ {
			x.Data[i*16+j] += float32(labels[i]) * 2
		}
	}
	var loss nn.SoftmaxCrossEntropy
	first := 0.0
	for step := 0; step < 40; step++ {
		logits := net.Forward(x, true)
		l := loss.Forward(logits, labels)
		if step == 0 {
			first = l
		}
		net.ZeroGrad()
		net.Backward(loss.Backward())
		for _, p := range net.Params() {
			p.W.Axpy(-0.1, p.G)
		}
	}
	logits := net.Forward(x, false)
	final := loss.Forward(logits, labels)
	if final > first/2 {
		t.Fatalf("model-parallel network failed to learn: %v -> %v", first, final)
	}
}

func TestUnevenShardBounds(t *testing.T) {
	// 10 outputs over 4 shards: 3,3,2,2.
	sharded, _ := densePair(3, 5, 10, 4)
	sizes := []int{}
	for s := 0; s < sharded.Shards(); s++ {
		sizes = append(sizes, sharded.bounds[s+1]-sharded.bounds[s])
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("shard sizes %v, want %v", sizes, want)
		}
	}
}

func TestCommAccounting(t *testing.T) {
	sharded, _ := densePair(7, 8, 12, 4)
	r := rng.New(8)
	x := tensor.RandNormal(r, 1, 5, 8)
	y := sharded.Forward(x, true)
	sharded.Backward(tensor.RandNormal(r, 1, y.Shape...))
	st := sharded.Stats()
	// Forward: N*Out*(P-1)/P floats; backward: N*In*(P-1) floats.
	wantFwd := int64(5*12) * 4 * 3 / 4
	wantBwd := int64(5*8) * 4 * 3
	if st.AllgatherBytes != wantFwd {
		t.Errorf("allgather bytes %d, want %d", st.AllgatherBytes, wantFwd)
	}
	if st.ReduceBytes != wantBwd {
		t.Errorf("reduce bytes %d, want %d", st.ReduceBytes, wantBwd)
	}
	if st.Total() != wantFwd+wantBwd {
		t.Error("Total() inconsistent")
	}
}

// TestPaperGranularityArgument quantifies the Background section's claim:
// for AlexNet's fc7 (4096x4096) at practical batch sizes, data parallelism
// moves more bytes per step than model parallelism — but model parallelism
// runs out of useful per-device work long before P reaches cluster scale,
// which is why the paper (and everyone since) scales via data parallelism
// plus larger batches.
func TestPaperGranularityArgument(t *testing.T) {
	const in, out = 4096, 4096
	// At P=2 the per-shard GEMM is still large.
	small := CompareStrategies(in, out, 512, 2)
	if small.ShardFlops < 1e9 {
		t.Fatalf("P=2 shard work %d flops — unexpectedly small", small.ShardFlops)
	}
	// At P=512 each shard's GEMM is tiny: 1/256 of the P=2 work.
	big := CompareStrategies(in, out, 512, 512)
	if big.ShardFlops*200 > small.ShardFlops {
		t.Fatalf("granularity should collapse with P: %d vs %d", big.ShardFlops, small.ShardFlops)
	}
	// And model-parallel activation traffic grows with P (the dx reduce),
	// while data-parallel traffic saturates at 2|W|.
	if big.ModelParallelBytes < small.ModelParallelBytes {
		t.Fatal("model-parallel traffic should grow with P")
	}
	ratio := float64(big.DataParallelBytes) / float64(small.DataParallelBytes)
	if ratio > 2.01 {
		t.Fatalf("data-parallel traffic should saturate: grew %.2fx", ratio)
	}
}

func TestBadShardCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p > out")
		}
	}()
	NewShardedLinear("x", rng.New(1), 4, 2, 5)
}
