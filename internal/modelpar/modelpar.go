// Package modelpar implements model parallelism — the alternative to data
// parallelism that the paper's Figure 2(b) illustrates and its Background
// section argues against for ImageNet-scale networks.
//
// A ShardedLinear partitions a fully-connected layer's output units across
// P shards. Each shard holds a [out/P, in] weight slice and computes its
// piece of the output from the full input; the forward pass allgathers the
// output slices and the backward pass reduces the partial input gradients —
// exactly the boundary-edge communication of the paper's figure. The
// arithmetic is bit-compatible with the dense layer (the tests build a
// dense layer from the concatenated shard weights and verify equality), so
// model parallelism here is purely an execution strategy.
//
// CompareStrategies prices both strategies' per-step communication, making
// the paper's argument quantitative: data-parallel traffic is proportional
// to the weight count |W| but independent of the batch, while model-parallel
// traffic grows with the batch; and the per-shard GEMM shrinks with P,
// starving devices of useful work ("parallelizing a 2048x1024x1024 matrix
// multiplication only needs one or two machines").
package modelpar

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// CommStats counts the activation traffic of sharded execution.
type CommStats struct {
	// AllgatherBytes is the forward-pass output exchange.
	AllgatherBytes int64
	// ReduceBytes is the backward-pass input-gradient reduction.
	ReduceBytes int64
}

// Total returns all bytes moved.
func (s CommStats) Total() int64 { return s.AllgatherBytes + s.ReduceBytes }

// ShardedLinear is a fully-connected layer partitioned output-wise over P
// shards. It implements nn.Layer and is drop-in interchangeable with
// nn.Linear of shape [out, in].
type ShardedLinear struct {
	name    string
	In, Out int
	shards  []*nn.Linear
	bounds  []int // shard s owns output units [bounds[s], bounds[s+1])
	stats   CommStats
}

// NewShardedLinear constructs a sharded layer with He initialization. The
// initialization stream is per-shard, so the weights differ from an
// identically-seeded dense layer; use SetFromDense for exact comparisons.
func NewShardedLinear(name string, r *rng.Rand, in, out, p int) *ShardedLinear {
	if p <= 0 || p > out {
		panic(fmt.Sprintf("modelpar: %d shards for %d outputs", p, out))
	}
	l := &ShardedLinear{name: name, In: in, Out: out, bounds: make([]int, p+1)}
	base, rem := out/p, out%p
	off := 0
	for s := 0; s < p; s++ {
		size := base
		if s < rem {
			size++
		}
		l.bounds[s] = off
		shard := nn.NewLinear(fmt.Sprintf("%s.shard%d", name, s), r.Split(), in, size)
		l.shards = append(l.shards, shard)
		off += size
	}
	l.bounds[p] = off
	return l
}

// Shards returns the number of partitions.
func (l *ShardedLinear) Shards() int { return len(l.shards) }

// Name implements nn.Layer.
func (l *ShardedLinear) Name() string { return l.name }

// Params implements nn.Layer.
func (l *ShardedLinear) Params() []*nn.Param {
	var ps []*nn.Param
	for _, s := range l.shards {
		ps = append(ps, s.Params()...)
	}
	return ps
}

// Stats returns accumulated activation traffic.
func (l *ShardedLinear) Stats() CommStats { return l.stats }

// SetFromDense loads weights from a dense [out, in] weight matrix and [out]
// bias, splitting them across the shards.
func (l *ShardedLinear) SetFromDense(weight, bias *tensor.Tensor) {
	if weight.Shape[0] != l.Out || weight.Shape[1] != l.In || bias.Numel() != l.Out {
		panic("modelpar: SetFromDense shape mismatch")
	}
	for s, shard := range l.shards {
		lo, hi := l.bounds[s], l.bounds[s+1]
		copy(shard.Weight.W.Data, weight.Data[lo*l.In:hi*l.In])
		copy(shard.Bias.W.Data, bias.Data[lo:hi])
	}
}

// DenseWeights concatenates the shard weights back into dense form.
func (l *ShardedLinear) DenseWeights() (weight, bias *tensor.Tensor) {
	weight = tensor.New(l.Out, l.In)
	bias = tensor.New(l.Out)
	for s, shard := range l.shards {
		lo, hi := l.bounds[s], l.bounds[s+1]
		copy(weight.Data[lo*l.In:hi*l.In], shard.Weight.W.Data)
		copy(bias.Data[lo:hi], shard.Bias.W.Data)
	}
	return weight, bias
}

// Forward implements nn.Layer: every shard sees the full input (already
// resident from the previous layer or broadcast once), computes its output
// slice concurrently, and the slices are allgathered into [N, Out].
func (l *ShardedLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	outs := make([]*tensor.Tensor, len(l.shards))
	tasks := make([]func(), len(l.shards))
	for s := range l.shards {
		s := s
		tasks[s] = func() { outs[s] = l.shards[s].Forward(x, train) }
	}
	par.Do(tasks...)
	y := tensor.New(n, l.Out)
	for s := range l.shards {
		lo, hi := l.bounds[s], l.bounds[s+1]
		w := hi - lo
		for i := 0; i < n; i++ {
			copy(y.Data[i*l.Out+lo:i*l.Out+hi], outs[s].Data[i*w:(i+1)*w])
		}
		// Each shard contributes its slice to every other machine:
		// (P-1)/P of the output crosses a partition boundary.
	}
	p := int64(len(l.shards))
	l.stats.AllgatherBytes += int64(n) * int64(l.Out) * 4 * (p - 1) / p
	return y
}

// Backward implements nn.Layer: the output gradient is scattered to the
// owning shards, each computes its weight gradients and partial input
// gradient, and the partial input gradients are summed (a reduce across the
// partition boundary).
func (l *ShardedLinear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := dout.Shape[0]
	partials := make([]*tensor.Tensor, len(l.shards))
	tasks := make([]func(), len(l.shards))
	for s := range l.shards {
		s := s
		lo, hi := l.bounds[s], l.bounds[s+1]
		w := hi - lo
		slice := tensor.New(n, w)
		for i := 0; i < n; i++ {
			copy(slice.Data[i*w:(i+1)*w], dout.Data[i*l.Out+lo:i*l.Out+hi])
		}
		tasks[s] = func() { partials[s] = l.shards[s].Backward(slice) }
	}
	par.Do(tasks...)
	dx := partials[0]
	for _, pTensor := range partials[1:] {
		dx.Add(pTensor)
	}
	p := int64(len(l.shards))
	l.stats.ReduceBytes += int64(n) * int64(l.In) * 4 * (p - 1)
	return dx
}

// StrategyCost prices one training step of a [out, in] fully-connected
// layer at batch n over p machines under both parallelization strategies.
type StrategyCost struct {
	// DataParallelBytes: gradients the size of the weights cross the
	// network each step (allreduce ~ 2|W| with a ring).
	DataParallelBytes int64
	// ModelParallelBytes: forward allgather + backward reduce of
	// activations.
	ModelParallelBytes int64
	// ShardFlops is the per-device GEMM work under model parallelism —
	// when this falls below a device's efficient minimum, extra machines
	// add nothing (the paper's granularity argument).
	ShardFlops int64
}

// CompareStrategies evaluates both strategies for a linear layer.
func CompareStrategies(in, out, batch, p int) StrategyCost {
	weights := int64(in)*int64(out) + int64(out)
	return StrategyCost{
		DataParallelBytes:  2 * weights * 4 * int64(p-1) / int64(p),
		ModelParallelBytes: int64(batch) * (int64(out)*(int64(p)-1)/int64(p) + int64(in)*(int64(p)-1)) * 4,
		ShardFlops:         2 * int64(batch) * int64(in) * int64(out) / int64(p),
	}
}
