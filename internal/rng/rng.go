// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository.
//
// Reproducibility is a hard requirement for the experiments in this repo:
// every dataset, weight initialization, shuffle and augmentation must be a
// pure function of an explicit seed so that training runs, multi-worker runs
// and property tests are replayable bit-for-bit. The standard library's
// math/rand/v2 would work, but a local SplitMix64 keeps the sequence stable
// across Go releases and lets us derive independent child streams cheaply.
package rng

import "math"

// Rand is a deterministic pseudo-random generator based on SplitMix64.
// The zero value is a valid generator seeded with 0; prefer New.
type Rand struct {
	state uint64
	// spare holds a cached second output of the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent child generator from r. The child's stream is
// decorrelated from the parent's by mixing the parent's next output with a
// distinct odd constant, so workers seeded via successive Split calls do not
// share sequences.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormFloat32 returns a standard normal variate as a float32.
func (r *Rand) NormFloat32() float32 {
	return float32(r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place using a Fisher-Yates shuffle.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}
