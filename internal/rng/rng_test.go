package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between independent streams", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits must not coincide")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

// Property: Perm always returns a permutation of [0, n).
func TestPermIsPermutationProperty(t *testing.T) {
	f := func(seed uint64, nn uint8) bool {
		n := int(nn%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse chi-square sanity check over 16 buckets.
	r := New(123)
	const n, buckets = 160000, 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 40 {
		t.Fatalf("chi-square %v too large; generator badly non-uniform", chi2)
	}
}
