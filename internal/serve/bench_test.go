package serve

import (
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BenchmarkServeSchedule measures the pure scheduler: events per second of
// virtual time processed, no model forwards. This is the dispatch-path hot
// loop a real frontend would run per request.
func BenchmarkServeSchedule(b *testing.B) {
	cfg := Config{MaxBatch: 16, MaxDelay: 400, Replicas: 4,
		Service: ServiceModel{Base: 100, PerImage: 25}}
	trace := PoissonTrace(2000, 80, 16, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeForward measures one batch forward pass through the serve
// pool's replica at each batch size, at f32 and f16 storage — the second
// trajectory curve BENCH_serve.json archives beyond GEMM. The /f32-/f16
// sub-benchmark naming is what cmd/benchjson pairs into speedup ratios.
func BenchmarkServeForward(b *testing.B) {
	net := models.NewMicroAlexNet(models.MicroConfig{Classes: 8, InH: 24, Width: 8, Seed: 3})
	synth := data.GenerateSynth(data.SynthConfig{
		Classes: 8, TrainSize: 4, TestSize: 32, C: 3, H: 24, W: 24,
		Noise: 0.3, MaxShift: 2, Seed: 17,
	})
	idx := make([]int, synth.Test.Len())
	for i := range idx {
		idx[i] = i
	}
	images, _ := synth.Test.MustGather(idx)
	rowLen := images.Numel() / images.Dim(0)
	for _, size := range []int{1, 4, 16} {
		x := tensor.New(append([]int{size}, images.Shape[1:]...)...)
		for row := 0; row < size; row++ {
			img := row % images.Dim(0)
			copy(x.Data[row*rowLen:(row+1)*rowLen], images.Data[img*rowLen:(img+1)*rowLen])
		}
		for _, prec := range []tensor.Precision{tensor.F32, tensor.F16} {
			net.SetPrecision(prec)
			b.Run(fmt.Sprintf("b%d/%s", size, prec), func(b *testing.B) {
				benchForward(b, net, x, size)
			})
		}
	}
	net.SetPrecision(tensor.F32)
}

func benchForward(b *testing.B, net *nn.Network, x *tensor.Tensor, size int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Forward(x, false)
	}
	b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "img/s")
}
