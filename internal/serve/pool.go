package serve

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Pool couples the scheduler to a fleet of real model replicas: Run
// simulates the batching schedule on the virtual clock, then executes every
// dispatched batch's forward pass (train=false) on its assigned replica and
// returns per-request argmax predictions. All replicas carry identical
// weights, and because every layer's inference path is per-sample
// independent (BatchNorm uses running statistics in eval mode; the GEMM
// kernels fix each output row's accumulation order), a request's prediction
// is bit-identical whichever batch or replica it lands on — dynamic
// batching is invisible to clients.
type Pool struct {
	cfg      Config
	replicas []*nn.Network
}

// NewPool builds cfg.Replicas replicas with the factory and copies replica
// 0's weights into the rest so the fleet is coherent even when the factory
// initializes randomly.
func NewPool(cfg Config, factory func() *nn.Network) (*Pool, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, replicas: make([]*nn.Network, cfg.Replicas)}
	for i := range p.replicas {
		p.replicas[i] = factory()
		if i > 0 {
			p.replicas[i].CopyWeightsFrom(p.replicas[0])
		}
	}
	return p, nil
}

// PoolFromCheckpoint builds the pool and loads the training checkpoint into
// every replica — the artifact handoff that closes the train→serve loop.
func PoolFromCheckpoint(cfg Config, factory func() *nn.Network, c *checkpoint.Checkpoint) (*Pool, error) {
	p, err := NewPool(cfg, factory)
	if err != nil {
		return nil, err
	}
	if err := c.ApplyToReplicas(p.replicas...); err != nil {
		return nil, err
	}
	return p, nil
}

// SetPrecision selects the storage precision of every replica's GEMM
// operands (f32 masters retained), mirroring nn.SetPrecision.
func (p *Pool) SetPrecision(prec tensor.Precision) {
	for _, r := range p.replicas {
		r.SetPrecision(prec)
	}
}

// Replica returns replica i (tests compare pool output against a direct
// forward on the same weights).
func (p *Pool) Replica(i int) *nn.Network { return p.replicas[i] }

// Size returns the replica count.
func (p *Pool) Size() int { return len(p.replicas) }

// Run schedules the trace, executes every batch's forward pass on its
// replica, and returns the report plus per-request predicted classes (-1
// for rejected requests). images is the row-indexed image set requests
// reference (dim 0 indexes images).
func (p *Pool) Run(trace Trace, images *tensor.Tensor) (*Report, []int, error) {
	if images == nil || images.Dims() < 2 || images.Dim(0) == 0 {
		return nil, nil, fmt.Errorf("serve: images must have at least 2 dims and a nonzero dim 0")
	}
	rep, err := Simulate(p.cfg, trace)
	if err != nil {
		return nil, nil, err
	}
	preds := make([]int, len(trace.Requests))
	for i := range preds {
		preds[i] = -1
	}
	rowLen := images.Numel() / images.Dim(0)
	for _, b := range rep.Batches {
		shape := append([]int{len(b.Members)}, images.Shape[1:]...)
		x := tensor.New(shape...)
		for row, r := range b.Members {
			img := trace.Requests[r].Image
			if img < 0 || img >= images.Dim(0) {
				return nil, nil, fmt.Errorf("serve: request %d wants image %d of %d", r, img, images.Dim(0))
			}
			copy(x.Data[row*rowLen:(row+1)*rowLen], images.Data[img*rowLen:(img+1)*rowLen])
		}
		logits := p.replicas[b.Replica].Forward(x, false)
		classes := logits.Numel() / len(b.Members)
		for row, r := range b.Members {
			preds[r] = argmax(logits.Data[row*classes : (row+1)*classes])
		}
	}
	return rep, preds, nil
}

// argmax returns the index of the largest value, lowest index on ties —
// the same rule dist.EvalAccuracy applies.
func argmax(row []float32) int {
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}
