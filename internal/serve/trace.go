package serve

import (
	"math"

	"repro/internal/rng"
)

// Trace is a named arrival sequence: requests sorted by arrival tick, each
// naming the image it wants classified. Traces are pure functions of their
// generator parameters and seed, so a (Config, Trace) pair replays
// bit-identically anywhere.
type Trace struct {
	Name     string
	Requests []Request
}

// Rate returns the mean offered load in requests per second over the
// trace's span (1 tick = 1µs).
func (t Trace) Rate() float64 {
	if len(t.Requests) < 2 {
		return 0
	}
	span := t.Requests[len(t.Requests)-1].Arrive - t.Requests[0].Arrive
	if span == 0 {
		return 0
	}
	return float64(len(t.Requests)-1) / (float64(span) / TicksPerSecond)
}

// UniformTrace is the deterministic-clock trace: n requests with a fixed
// inter-arrival gap, request i arriving at tick i·gap wanting image i mod
// images (images <= 0 means image 0 for all). This is the regime the
// closed forms in comm.ExpectedServeStats price exactly.
func UniformTrace(n int, gap Ticks, images int) Trace {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Image: imageFor(i, images), Arrive: Ticks(i) * gap}
	}
	return Trace{Name: "uniform", Requests: reqs}
}

// PoissonTrace is open-loop Poisson traffic: n requests with exponential
// inter-arrival gaps of the given mean, quantized to whole ticks, seeded so
// the trace is bit-reproducible.
func PoissonTrace(n int, meanGap Ticks, images int, seed uint64) Trace {
	r := rng.New(seed)
	reqs := make([]Request, n)
	var t Ticks
	for i := range reqs {
		reqs[i] = Request{Image: imageFor(i, images), Arrive: t}
		t += expGap(r, meanGap)
	}
	return Trace{Name: "poisson", Requests: reqs}
}

// BurstyTrace is on/off traffic: alternating bursts of onLen requests with
// exponential gaps of mean onGap, separated by idle periods of offGap
// ticks. It stresses the deadline trigger (bursts fill batches, idle tails
// strand partial ones) and, with a bounded queue, the admission control.
func BurstyTrace(n, onLen int, onGap, offGap Ticks, images int, seed uint64) Trace {
	if onLen < 1 {
		onLen = 1
	}
	r := rng.New(seed)
	reqs := make([]Request, n)
	var t Ticks
	for i := range reqs {
		reqs[i] = Request{Image: imageFor(i, images), Arrive: t}
		if (i+1)%onLen == 0 {
			t += offGap
		} else {
			t += expGap(r, onGap)
		}
	}
	return Trace{Name: "bursty", Requests: reqs}
}

func imageFor(i, images int) int {
	if images <= 0 {
		return 0
	}
	return i % images
}

// expGap draws an exponential inter-arrival gap with the given mean,
// quantized to whole ticks, never below 1 so arrivals stay strictly
// ordered in time on average-one-per-tick loads.
func expGap(r *rng.Rand, mean Ticks) Ticks {
	// Inverse-CDF sampling; Float64 is in [0,1), so 1-u is in (0,1].
	u := 1 - r.Float64()
	g := Ticks(-float64(mean) * math.Log(u))
	if g < 1 {
		g = 1
	}
	return g
}
