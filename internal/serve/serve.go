// Package serve is the inference tier over the replica fleet: a
// deterministic request scheduler that accepts single-image inference
// requests, coalesces them into batches, and fans the batches out across a
// pool of model replicas.
//
// The paper's whole argument is throughput-per-dollar at scale, and batch
// size is the lever hardware efficiency pulls — in serving exactly as in
// training. A production model server therefore batches dynamically: a
// request waits a bounded time for companions, the batch flushes when it is
// full (MaxBatch) or when its oldest member has waited MaxDelay, and the
// flushed batch runs on whichever replica frees up first. This package
// implements that scheduler as a discrete-event simulation over a virtual
// clock (integer Ticks, 1 tick = 1µs by convention):
//
//   - arrivals come from seeded synthetic traces (UniformTrace,
//     PoissonTrace, BurstyTrace — all pure functions of their seed),
//   - batch formation depends only on the admitted arrival sequence and
//     the batch window, never on the replica pool, so with an unbounded
//     queue batch compositions and the batch-size histogram are
//     replica-count-invariant by construction (with admission control the
//     pool matters exactly once, at the door: a faster-draining pool
//     admits more),
//   - service time is priced by a deterministic ServiceModel (alpha-beta,
//     like comm.Network: Base + PerImage·size ticks), so every latency,
//     percentile and counter in Stats is exact reproducible arithmetic —
//     the same run replays bit-identically anywhere,
//   - overload is a scenario, not an outage: the waiting room is bounded
//     (Config.QueueCap) and requests beyond it are rejected with the typed
//     ErrOverloaded, counted in Stats.Rejected.
//
// Simulate runs the scheduler alone (pure virtual time); Pool couples it to
// real nn replicas loaded from a training checkpoint and executes each
// batch's forward pass for real. Because every layer's inference path is
// per-sample independent (BatchNorm uses running statistics in eval mode
// and the GEMM kernels fix each output row's accumulation order), a
// request's prediction is bit-identical whatever batch it lands in — the
// property that makes dynamic batching transparent to clients, tested
// end-to-end against the training engine's forward.
//
// The analytic twin lives in comm.ExpectedServeStats: in the
// deterministic-clock regime (uniform inter-arrival gap, capacity
// sufficient) it reproduces every counter of Stats exactly — the same
// closed-form-versus-measured contract the training engine's communication
// schedule is held to. cluster.SimulateServe answers fleet sizing questions
// from the same model.
package serve

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// Ticks is virtual time in integer ticks; by convention 1 tick = 1
// microsecond (TicksPerSecond). All scheduling, service and latency
// arithmetic is integral so runs are bit-reproducible.
type Ticks int64

// TicksPerSecond converts between ticks and seconds (1 tick = 1µs).
const TicksPerSecond = 1e6

// ErrOverloaded is the typed admission-control error: the request arrived
// with Config.QueueCap requests already waiting and was rejected rather
// than queued. Rejected requests appear in Stats.Rejected and carry this
// error in their Outcome.
var ErrOverloaded = errors.New("serve: queue full, request rejected")

// ServiceModel prices one batch forward pass in virtual ticks, alpha-beta
// style: Base covers the per-batch fixed cost (dispatch, kernel launch,
// weight access) and PerImage the marginal per-row cost of the batched
// GEMMs. Larger batches amortize Base — the same economics that make large
// training batches efficient (Figure 3).
type ServiceModel struct {
	Base     Ticks
	PerImage Ticks
}

// BatchTicks returns the service time of a batch of the given size.
func (m ServiceModel) BatchTicks(size int) Ticks {
	return m.Base + Ticks(size)*m.PerImage
}

// Config describes one serving configuration.
type Config struct {
	// MaxBatch flushes the forming batch the moment it reaches this many
	// requests (the size trigger). Must be >= 1.
	MaxBatch int
	// MaxDelay flushes the forming batch when its oldest member has waited
	// this long (the deadline trigger), bounding the batching wait of every
	// request. 0 flushes each request immediately in its own batch (unless
	// same-tick companions join it).
	MaxDelay Ticks
	// QueueCap bounds the number of requests waiting (forming batch plus
	// flushed batches not yet dispatched). An arrival beyond the cap is
	// rejected with ErrOverloaded. 0 means unbounded (no admission
	// control).
	QueueCap int
	// Replicas is the model replica pool size; a flushed batch waits for a
	// free replica. 0 defaults to 1.
	Replicas int
	// Service prices a batch forward pass in virtual ticks.
	Service ServiceModel
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	return c
}

func (c Config) validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch %d, want >= 1", c.MaxBatch)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("serve: negative MaxDelay %d", c.MaxDelay)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("serve: negative QueueCap %d", c.QueueCap)
	}
	if c.Replicas < 1 {
		return fmt.Errorf("serve: Replicas %d, want >= 1", c.Replicas)
	}
	if c.Service.Base < 0 || c.Service.PerImage < 0 {
		return fmt.Errorf("serve: negative service model %+v", c.Service)
	}
	return nil
}

// Request is one single-image inference request: Image indexes a row of the
// image set the pool serves, Arrive is its arrival time on the virtual
// clock.
type Request struct {
	Image  int
	Arrive Ticks
}

// FlushCause records which trigger closed a batch.
type FlushCause uint8

// Flush triggers.
const (
	// SizeFlush: the batch reached Config.MaxBatch.
	SizeFlush FlushCause = iota
	// DeadlineFlush: the oldest member waited Config.MaxDelay.
	DeadlineFlush
)

// String implements fmt.Stringer.
func (c FlushCause) String() string {
	if c == SizeFlush {
		return "size"
	}
	return "deadline"
}

// Batch is one dispatched batch: which requests it carried and its
// flush/start/completion times on the virtual clock.
type Batch struct {
	// Members are request indices into the trace, in arrival order.
	Members []int
	// Replica executed the batch.
	Replica int
	// Flush is when the batcher closed the batch; Start is when a replica
	// picked it up (equal to Flush unless every replica was busy); Done is
	// Start plus the service time.
	Flush, Start, Done Ticks
	Cause              FlushCause
}

// Outcome is the per-request result of a run.
type Outcome struct {
	// Err is ErrOverloaded for rejected requests, nil otherwise.
	Err error
	// Batch indexes Report.Batches (-1 when rejected).
	Batch int
	// Latency is completion minus arrival on the virtual clock (0 when
	// rejected).
	Latency Ticks
}

// Report is the full outcome of one scheduler run.
type Report struct {
	Config   Config
	Stats    Stats
	Batches  []Batch
	Outcomes []Outcome
}

// Event kinds, in same-tick processing order: completions free replicas
// first, then arrivals join the forming batch, then deadline checks fire —
// so a request arriving exactly at the deadline instant still makes the
// flushing batch, and a replica freed at a flush instant takes the batch
// immediately.
const (
	evCompletion = iota
	evArrival
	evDeadline
)

type event struct {
	at   Ticks
	kind int
	seq  int // FIFO tie-break within (at, kind)
	// request index for arrivals; the head request a deadline guards; the
	// replica id for completions.
	arg int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulate runs the scheduler over the trace on the virtual clock and
// returns the full report: per-request outcomes, per-batch records and the
// exact counters. It is a pure function of (cfg, trace) — no wall clock, no
// goroutines — so repeated runs are bit-identical; with an unbounded queue
// batch formation never consults the replica pool, so batch compositions
// (hence the histogram and flush counters) are identical across replica
// counts too, and latencies match across replica counts whenever capacity
// keeps dispatch immediate. Under admission control (QueueCap > 0) the
// pool size feeds back into who is admitted — a faster-draining pool
// rejects less — which is the behavior a bounded waiting room should have.
func Simulate(cfg Config, trace Trace) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	for i := 1; i < len(trace.Requests); i++ {
		if trace.Requests[i].Arrive < trace.Requests[i-1].Arrive {
			return nil, fmt.Errorf("serve: trace %q not sorted at request %d", trace.Name, i)
		}
	}

	rep := &Report{Config: cfg, Outcomes: make([]Outcome, len(trace.Requests))}
	st := &rep.Stats
	st.Hist = make([]int64, cfg.MaxBatch+1)
	st.Offered = int64(len(trace.Requests))

	var events eventHeap
	seq := 0
	push := func(at Ticks, kind, arg int) {
		heap.Push(&events, event{at: at, kind: kind, seq: seq, arg: arg})
		seq++
	}
	for i, r := range trace.Requests {
		if r.Arrive < 0 {
			return nil, fmt.Errorf("serve: trace %q request %d arrives at negative tick %d", trace.Name, i, r.Arrive)
		}
		push(r.Arrive, evArrival, i)
	}

	var (
		pending   []int // the forming batch: request indices in arrival order
		dispatch  []int // flushed batches (indices into rep.Batches) awaiting a replica
		freeMask  = make([]bool, cfg.Replicas)
		freeCount = cfg.Replicas
		waiting   = 0 // requests in pending + in undispatched batches
	)
	for i := range freeMask {
		freeMask[i] = true
	}
	takeReplica := func() int { // lowest free id, deterministic
		for i, free := range freeMask {
			if free {
				freeMask[i] = false
				freeCount--
				return i
			}
		}
		panic("serve: takeReplica with none free")
	}

	tryDispatch := func(now Ticks) {
		for len(dispatch) > 0 && freeCount > 0 {
			bi := dispatch[0]
			dispatch = dispatch[1:]
			b := &rep.Batches[bi]
			b.Replica = takeReplica()
			b.Start = now
			svc := cfg.Service.BatchTicks(len(b.Members))
			b.Done = now + svc
			st.BusyTicks += svc
			waiting -= len(b.Members)
			push(b.Done, evCompletion, bi)
		}
	}
	flush := func(now Ticks, cause FlushCause) {
		members := pending
		pending = nil
		st.Batches++
		st.Hist[len(members)]++
		if cause == SizeFlush {
			st.SizeFlushes++
		} else {
			st.DeadlineFlushes++
		}
		bi := len(rep.Batches)
		rep.Batches = append(rep.Batches, Batch{Members: members, Flush: now, Cause: cause})
		for _, r := range members {
			rep.Outcomes[r].Batch = bi
		}
		dispatch = append(dispatch, bi)
		tryDispatch(now)
	}

	latencies := make([]Ticks, 0, len(trace.Requests))
	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		switch e.kind {
		case evCompletion:
			b := &rep.Batches[e.arg]
			freeMask[b.Replica] = true
			freeCount++
			for _, r := range b.Members {
				lat := b.Done - trace.Requests[r].Arrive
				rep.Outcomes[r].Latency = lat
				latencies = append(latencies, lat)
				st.SumLatency += lat
				st.Completed++
			}
			if b.Done > st.Makespan {
				st.Makespan = b.Done
			}
			tryDispatch(e.at)
		case evArrival:
			if cfg.QueueCap > 0 && waiting >= cfg.QueueCap {
				rep.Outcomes[e.arg] = Outcome{Err: ErrOverloaded, Batch: -1}
				st.Rejected++
				continue
			}
			st.Accepted++
			pending = append(pending, e.arg)
			waiting++
			if waiting > st.QueueHWM {
				st.QueueHWM = waiting
			}
			if len(pending) == 1 {
				// New head: its deadline bounds the whole batch's wait.
				push(e.at+cfg.MaxDelay, evDeadline, e.arg)
			}
			if len(pending) == cfg.MaxBatch {
				flush(e.at, SizeFlush)
			}
		case evDeadline:
			// Stale guard: a size flush may have closed the batch this
			// deadline was scheduled for; only fire if its request still
			// heads the forming batch.
			if len(pending) > 0 && pending[0] == e.arg {
				flush(e.at, DeadlineFlush)
			}
		}
	}
	st.FillPercentiles(latencies)
	return rep, nil
}

// FillPercentiles computes the exact nearest-rank latency percentiles
// (P50/P95/P99/MaxLatency) over the per-request latencies. Exported so the
// analytic twin in comm applies the identical percentile definition to its
// closed-form latency list; latencies may arrive in any order.
func (s *Stats) FillPercentiles(latencies []Ticks) {
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	s.P50 = nearestRank(latencies, 0.50)
	s.P95 = nearestRank(latencies, 0.95)
	s.P99 = nearestRank(latencies, 0.99)
	s.MaxLatency = latencies[len(latencies)-1]
}

// nearestRank returns the q-th percentile of sorted (ascending) values
// using the nearest-rank definition: the ⌈q·n⌉-th smallest value.
func nearestRank(sorted []Ticks, q float64) Ticks {
	idx := int(float64(len(sorted))*q+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
