package serve_test

import (
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// TestTrainCheckpointServeBitIdentical closes the training↔serving loop the
// PR is about: train a micro-model for a few steps on the dist engine,
// capture the result with checkpoint.FromNetwork, round-trip it through the
// on-disk format, load it into a serve pool, and assert every served
// prediction is bit-identical to a direct single-image forward on the same
// weights — at f32 and at f16 storage precision. The serving tier must add
// exactly zero numerical surface over EvalAccuracy-style inference.
func TestTrainCheckpointServeBitIdentical(t *testing.T) {
	synth := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 64, TestSize: 24, C: 3, H: 16, W: 16,
		Noise: 0.3, MaxShift: 2, Seed: 9,
	})
	factory := func() *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 4, InH: 16, Width: 4, Seed: 77})
	}

	// Train: three SGD steps across two data-parallel workers.
	replicas := []*nn.Network{factory(), factory()}
	engine := dist.NewEngine(dist.Config{Algo: dist.Ring}, replicas)
	defer engine.Close()
	idx := make([]int, 32)
	for i := range idx {
		idx[i] = i
	}
	xb, labels := synth.Train.MustGather(idx)
	for step := 0; step < 3; step++ {
		if _, err := engine.ComputeGradient(xb, labels); err != nil {
			t.Fatalf("train step %d: %v", step, err)
		}
		for _, p := range engine.Master().Params() {
			p.W.Axpy(-0.05, p.G)
		}
		if err := engine.BroadcastWeights(); err != nil {
			t.Fatalf("broadcast step %d: %v", step, err)
		}
	}

	// Checkpoint: through the real on-disk format, not just the struct.
	path := filepath.Join(t.TempDir(), "trained.ckpt")
	if err := checkpoint.FromNetwork(engine.Master(), engine.Steps()).Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != 3 {
		t.Fatalf("checkpoint step = %d, want 3", loaded.Step)
	}

	// Sanity: training moved the weights, so the test is not comparing two
	// identical fresh initializations.
	trained := factory()
	if err := loaded.ApplyToNetwork(trained); err != nil {
		t.Fatal(err)
	}
	if weightsEqual(trained, factory()) {
		t.Fatal("checkpoint weights identical to fresh init; training had no effect")
	}

	testIdx := make([]int, synth.Test.Len())
	for i := range testIdx {
		testIdx[i] = i
	}
	images, _ := synth.Test.MustGather(testIdx)
	rowLen := images.Numel() / images.Dim(0)

	for _, prec := range []tensor.Precision{tensor.F32, tensor.F16} {
		cfg := serve.Config{MaxBatch: 6, MaxDelay: 150, Replicas: 2,
			Service: serve.ServiceModel{Base: 40, PerImage: 15}}
		pool, err := serve.PoolFromCheckpoint(cfg, factory, loaded)
		if err != nil {
			t.Fatal(err)
		}
		pool.SetPrecision(prec)

		ref := factory()
		if err := loaded.ApplyToNetwork(ref); err != nil {
			t.Fatal(err)
		}
		ref.SetPrecision(prec)

		trace := serve.PoissonTrace(48, 50, images.Dim(0), 3)
		rep, preds, err := pool.Run(trace, images)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Completed != int64(len(trace.Requests)) {
			t.Fatalf("%v: completed %d of %d requests", prec, rep.Stats.Completed, len(trace.Requests))
		}
		for r, req := range trace.Requests {
			x := tensor.New(append([]int{1}, images.Shape[1:]...)...)
			copy(x.Data, images.Data[req.Image*rowLen:(req.Image+1)*rowLen])
			logits := ref.Forward(x, false)
			if want := argmaxOf(logits.Data); preds[r] != want {
				t.Fatalf("%v: request %d served prediction %d, direct forward on checkpoint weights %d",
					prec, r, preds[r], want)
			}
		}
	}
}

// argmaxOf mirrors the pool's prediction rule: lowest index wins ties.
func argmaxOf(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func weightsEqual(a, b *nn.Network) bool {
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				return false
			}
		}
	}
	return true
}
