package serve

import (
	"testing"
	"testing/quick"
)

// The batcher invariants, property-tested over arbitrary seeded traces and
// configurations via testing/quick. quick generates the raw integers; we
// fold them into bounded configs and one of the three trace generators, so
// every counterexample is a reproducible (config, seed) pair.
func TestBatcherInvariantsQuick(t *testing.T) {
	prop := func(seed uint64, rawN uint16, rawBatch, rawDelay, rawGap, rawCap, rawReplicas, kind uint8) bool {
		cfg := Config{
			MaxBatch: 1 + int(rawBatch%16),
			MaxDelay: Ticks(rawDelay) * 4,
			QueueCap: int(rawCap % 64), // 0 = unbounded, exercised too
			Replicas: 1 + int(rawReplicas%4),
			Service:  ServiceModel{Base: 20, PerImage: 7},
		}
		n := 1 + int(rawN%512)
		gap := Ticks(1 + rawGap%200)
		var trace Trace
		switch kind % 3 {
		case 0:
			trace = UniformTrace(n, gap, 8)
		case 1:
			trace = PoissonTrace(n, gap, 8, seed)
		default:
			trace = BurstyTrace(n, 1+int(rawBatch%20), gap, gap*50, 8, seed)
		}

		rep, err := Simulate(cfg, trace)
		if err != nil {
			t.Logf("Simulate error: %v", err)
			return false
		}
		s := rep.Stats

		// Conservation: every offered request is accepted or rejected, every
		// accepted request completes (the run drains), and outcomes agree
		// with the counters.
		if s.Accepted+s.Rejected != s.Offered || s.Offered != int64(n) {
			t.Logf("conservation: %+v", s)
			return false
		}
		if s.Completed != s.Accepted {
			t.Logf("drain: completed %d != accepted %d", s.Completed, s.Accepted)
			return false
		}

		// Histogram: bucket counts sum to Batches, weighted sum to total
		// completed requests; no bucket beyond MaxBatch, no empty batches.
		var nb, nr int64
		for size, count := range s.Hist {
			if count < 0 || (size == 0 && count != 0) {
				t.Logf("hist bucket %d = %d", size, count)
				return false
			}
			nb += count
			nr += int64(size) * count
		}
		if nb != s.Batches || nr != s.Completed {
			t.Logf("hist sums: batches %d vs %d, requests %d vs %d", nb, s.Batches, nr, s.Completed)
			return false
		}
		if s.SizeFlushes+s.DeadlineFlushes != s.Batches {
			t.Logf("flush split: %+v", s)
			return false
		}

		// Per-batch: size bound, flush-wait bound, service pricing, members
		// in arrival order.
		seen := make(map[int]bool)
		for _, b := range rep.Batches {
			if len(b.Members) == 0 || len(b.Members) > cfg.MaxBatch {
				t.Logf("batch size %d outside (0, %d]", len(b.Members), cfg.MaxBatch)
				return false
			}
			if b.Done-b.Start != cfg.Service.BatchTicks(len(b.Members)) || b.Start < b.Flush {
				t.Logf("batch timing: %+v", b)
				return false
			}
			prev := Ticks(-1)
			for _, r := range b.Members {
				if seen[r] {
					t.Logf("request %d in two batches", r)
					return false
				}
				seen[r] = true
				arrive := trace.Requests[r].Arrive
				if arrive < prev {
					t.Logf("batch members out of arrival order: %+v", b)
					return false
				}
				prev = arrive
				if wait := b.Flush - arrive; wait < 0 || wait > cfg.MaxDelay {
					t.Logf("request %d flush wait %d outside [0, %d]", r, wait, cfg.MaxDelay)
					return false
				}
			}
		}
		if int64(len(seen)) != s.Accepted {
			t.Logf("batched %d requests, accepted %d", len(seen), s.Accepted)
			return false
		}

		// Queue bound: with admission control on, the waiting-room
		// high-water mark respects the cap.
		if cfg.QueueCap > 0 && s.QueueHWM > cfg.QueueCap {
			t.Logf("QueueHWM %d > QueueCap %d", s.QueueHWM, cfg.QueueCap)
			return false
		}

		// Outcomes mirror counters: rejected carry the typed error and no
		// batch; accepted carry nonnegative latency >= service floor.
		var rejected int64
		for i, o := range rep.Outcomes {
			if o.Err != nil {
				rejected++
				if o.Err != ErrOverloaded || o.Batch != -1 {
					t.Logf("outcome %d: %+v", i, o)
					return false
				}
				continue
			}
			if o.Latency < cfg.Service.BatchTicks(1) {
				t.Logf("outcome %d latency %d below single-image service", i, o.Latency)
				return false
			}
		}
		return rejected == s.Rejected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
