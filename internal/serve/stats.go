package serve

import (
	"fmt"
	"strings"
)

// Stats holds the exact counters of one scheduler run. Every field is
// integral arithmetic over the virtual clock, so two runs of the same
// (Config, Trace) produce byte-identical Stats; this is what the
// closed-form twin in comm.ExpectedServeStats matches counter-for-counter
// in the deterministic-clock regime.
type Stats struct {
	// Offered = Accepted + Rejected; Completed counts requests whose batch
	// finished (== Accepted once the run drains).
	Offered, Accepted, Rejected, Completed int64
	// Batches dispatched, split by flush trigger.
	Batches, SizeFlushes, DeadlineFlushes int64
	// Hist[k] counts batches of size k (len MaxBatch+1; Hist[0] unused).
	Hist []int64
	// QueueHWM is the high-water mark of requests waiting (forming batch
	// plus flushed-but-undispatched batches).
	QueueHWM int
	// BusyTicks is total replica service time; Makespan the completion time
	// of the last batch.
	BusyTicks, Makespan Ticks
	// SumLatency accumulates per-request latency (arrival to batch
	// completion); P50/P95/P99 are exact nearest-rank percentiles over the
	// same per-request latencies, MaxLatency the worst case.
	SumLatency                Ticks
	P50, P95, P99, MaxLatency Ticks
}

// MeanBatch is the mean dispatched batch size.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Batches)
}

// MeanLatency is the mean per-request latency in ticks.
func (s Stats) MeanLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.SumLatency) / float64(s.Completed)
}

// Throughput is completed requests per second of makespan (1 tick = 1µs).
func (s Stats) Throughput() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.Completed) / (float64(s.Makespan) / TicksPerSecond)
}

// Equal reports whether every counter, percentile and histogram bucket
// matches exactly — the cross-check the analytic twin is held to.
func (s Stats) Equal(o Stats) bool {
	if s.Offered != o.Offered || s.Accepted != o.Accepted ||
		s.Rejected != o.Rejected || s.Completed != o.Completed ||
		s.Batches != o.Batches || s.SizeFlushes != o.SizeFlushes ||
		s.DeadlineFlushes != o.DeadlineFlushes ||
		s.QueueHWM != o.QueueHWM ||
		s.BusyTicks != o.BusyTicks || s.Makespan != o.Makespan ||
		s.SumLatency != o.SumLatency ||
		s.P50 != o.P50 || s.P95 != o.P95 || s.P99 != o.P99 ||
		s.MaxLatency != o.MaxLatency {
		return false
	}
	if len(s.Hist) != len(o.Hist) {
		return false
	}
	for i := range s.Hist {
		if s.Hist[i] != o.Hist[i] {
			return false
		}
	}
	return true
}

// Diff returns a human-readable list of mismatching fields against o, empty
// when Equal. Tests and the drift-checked study use it to say *which*
// counter the analytic twin missed.
func (s Stats) Diff(o Stats) string {
	var b strings.Builder
	line := func(name string, got, want any) {
		fmt.Fprintf(&b, "%s: measured %v, model %v\n", name, got, want)
	}
	if s.Offered != o.Offered {
		line("Offered", s.Offered, o.Offered)
	}
	if s.Accepted != o.Accepted {
		line("Accepted", s.Accepted, o.Accepted)
	}
	if s.Rejected != o.Rejected {
		line("Rejected", s.Rejected, o.Rejected)
	}
	if s.Completed != o.Completed {
		line("Completed", s.Completed, o.Completed)
	}
	if s.Batches != o.Batches {
		line("Batches", s.Batches, o.Batches)
	}
	if s.SizeFlushes != o.SizeFlushes {
		line("SizeFlushes", s.SizeFlushes, o.SizeFlushes)
	}
	if s.DeadlineFlushes != o.DeadlineFlushes {
		line("DeadlineFlushes", s.DeadlineFlushes, o.DeadlineFlushes)
	}
	if s.QueueHWM != o.QueueHWM {
		line("QueueHWM", s.QueueHWM, o.QueueHWM)
	}
	if s.BusyTicks != o.BusyTicks {
		line("BusyTicks", s.BusyTicks, o.BusyTicks)
	}
	if s.Makespan != o.Makespan {
		line("Makespan", s.Makespan, o.Makespan)
	}
	if s.SumLatency != o.SumLatency {
		line("SumLatency", s.SumLatency, o.SumLatency)
	}
	if s.P50 != o.P50 {
		line("P50", s.P50, o.P50)
	}
	if s.P95 != o.P95 {
		line("P95", s.P95, o.P95)
	}
	if s.P99 != o.P99 {
		line("P99", s.P99, o.P99)
	}
	if s.MaxLatency != o.MaxLatency {
		line("MaxLatency", s.MaxLatency, o.MaxLatency)
	}
	for i := 0; i < len(s.Hist) || i < len(o.Hist); i++ {
		var a, c int64
		if i < len(s.Hist) {
			a = s.Hist[i]
		}
		if i < len(o.Hist) {
			c = o.Hist[i]
		}
		if a != c {
			line(fmt.Sprintf("Hist[%d]", i), a, c)
		}
	}
	return b.String()
}

// String renders the stats table cmd/serve prints.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests     offered %d  accepted %d  rejected %d  completed %d\n",
		s.Offered, s.Accepted, s.Rejected, s.Completed)
	fmt.Fprintf(&b, "batches      %d (size-flush %d, deadline-flush %d)  mean size %.2f\n",
		s.Batches, s.SizeFlushes, s.DeadlineFlushes, s.MeanBatch())
	fmt.Fprintf(&b, "queue        high-water mark %d\n", s.QueueHWM)
	fmt.Fprintf(&b, "latency µs   mean %.1f  p50 %d  p95 %d  p99 %d  max %d\n",
		s.MeanLatency(), s.P50, s.P95, s.P99, s.MaxLatency)
	fmt.Fprintf(&b, "throughput   %.0f req/s over makespan %d µs (busy %d µs)\n",
		s.Throughput(), s.Makespan, s.BusyTicks)
	fmt.Fprintf(&b, "histogram    %s\n", histString(s.Hist))
	return b.String()
}

func histString(hist []int64) string {
	var parts []string
	for size, n := range hist {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d×b%d", n, size))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}
