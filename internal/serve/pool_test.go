package serve

import (
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func poolFixture(t *testing.T) (func() *nn.Network, *tensor.Tensor) {
	t.Helper()
	factory := func() *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 4, InH: 16, Width: 4, Seed: 77})
	}
	synth := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 4, TestSize: 24, C: 3, H: 16, W: 16,
		Noise: 0.3, MaxShift: 2, Seed: 5,
	})
	idx := make([]int, synth.Test.Len())
	for i := range idx {
		idx[i] = i
	}
	images, _ := synth.Test.MustGather(idx)
	return factory, images
}

// Dynamic batching is invisible to clients: whatever batch a request lands
// in, its prediction is bit-identical to a direct single-image forward on
// the same weights — at f32 and at f16 storage precision.
func TestPoolBatchingTransparent(t *testing.T) {
	factory, images := poolFixture(t)
	for _, prec := range []tensor.Precision{tensor.F32, tensor.F16} {
		cfg := Config{MaxBatch: 5, MaxDelay: 120, Replicas: 3,
			Service: ServiceModel{Base: 40, PerImage: 15}}
		pool, err := NewPool(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		pool.SetPrecision(prec)

		ref := factory()
		ref.CopyWeightsFrom(pool.Replica(0))
		ref.SetPrecision(prec)

		trace := PoissonTrace(60, 40, images.Dim(0), 11)
		rep, preds, err := pool.Run(trace, images)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Completed != int64(len(trace.Requests)) {
			t.Fatalf("%v: completed %d of %d", prec, rep.Stats.Completed, len(trace.Requests))
		}
		rowLen := images.Numel() / images.Dim(0)
		for r, req := range trace.Requests {
			x := tensor.New(append([]int{1}, images.Shape[1:]...)...)
			copy(x.Data, images.Data[req.Image*rowLen:(req.Image+1)*rowLen])
			logits := ref.Forward(x, false)
			if want := argmax(logits.Data); preds[r] != want {
				t.Fatalf("%v: request %d predicted %d, direct forward %d", prec, r, preds[r], want)
			}
		}
	}
}

// Pool output is invariant across replica counts: same trace, same
// predictions, same stats.
func TestPoolReplicaInvariance(t *testing.T) {
	factory, images := poolFixture(t)
	cfg := Config{MaxBatch: 4, MaxDelay: 200, Replicas: 1,
		Service: ServiceModel{Base: 30, PerImage: 10}}
	trace := UniformTrace(40, 100, images.Dim(0))

	p1, err := NewPool(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	rep1, preds1, err := p1.Run(trace, images)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replicas = 3
	p3, err := NewPool(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	rep3, preds3, err := p3.Run(trace, images)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Stats.Equal(rep3.Stats) {
		t.Fatalf("stats diverge across replica counts:\n%s", rep1.Stats.Diff(rep3.Stats))
	}
	for i := range preds1 {
		if preds1[i] != preds3[i] {
			t.Fatalf("prediction %d diverges: %d vs %d", i, preds1[i], preds3[i])
		}
	}
}
