package serve

import (
	"errors"
	"testing"
)

func mustSimulate(t *testing.T, cfg Config, trace Trace) *Report {
	t.Helper()
	rep, err := Simulate(cfg, trace)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return rep
}

// A run is a pure function of (Config, Trace): repeated runs are
// bit-identical, counters, percentiles, batches and all.
func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxDelay: 500, Replicas: 2,
		Service: ServiceModel{Base: 100, PerImage: 30}}
	trace := PoissonTrace(400, 120, 10, 42)
	a := mustSimulate(t, cfg, trace)
	b := mustSimulate(t, cfg, trace)
	if !a.Stats.Equal(b.Stats) {
		t.Fatalf("repeated runs diverge:\n%s", a.Stats.Diff(b.Stats))
	}
	if len(a.Batches) != len(b.Batches) {
		t.Fatalf("batch counts diverge: %d vs %d", len(a.Batches), len(b.Batches))
	}
	for i := range a.Batches {
		ba, bb := a.Batches[i], b.Batches[i]
		if ba.Flush != bb.Flush || ba.Start != bb.Start || ba.Done != bb.Done ||
			ba.Replica != bb.Replica || ba.Cause != bb.Cause || len(ba.Members) != len(bb.Members) {
			t.Fatalf("batch %d diverges: %+v vs %+v", i, ba, bb)
		}
	}
}

// Batch formation never consults the replica pool, so compositions and the
// histogram are replica-invariant; under sufficient capacity dispatch is
// immediate on every pool size, so the full Stats (percentiles included)
// match across replica counts.
func TestReplicaCountInvariance(t *testing.T) {
	base := Config{MaxBatch: 4, MaxDelay: 300, Replicas: 1,
		Service: ServiceModel{Base: 50, PerImage: 25}} // S(4)=150 <= 1*4*100
	trace := UniformTrace(200, 100, 10)
	ref := mustSimulate(t, base, trace)
	for _, r := range []int{2, 3, 5} {
		cfg := base
		cfg.Replicas = r
		got := mustSimulate(t, cfg, trace)
		if !got.Stats.Equal(ref.Stats) {
			t.Fatalf("replicas=%d stats diverge from replicas=1:\n%s", r, got.Stats.Diff(ref.Stats))
		}
	}
	// Even when one replica is saturated and batches queue for dispatch,
	// the histogram and flush counters stay invariant.
	slow := base
	slow.Service = ServiceModel{Base: 300, PerImage: 200} // S(4)=1100 > 400
	one := mustSimulate(t, slow, trace)
	slow.Replicas = 4
	many := mustSimulate(t, slow, trace)
	if one.Stats.Batches != many.Stats.Batches ||
		one.Stats.SizeFlushes != many.Stats.SizeFlushes ||
		one.Stats.DeadlineFlushes != many.Stats.DeadlineFlushes {
		t.Fatalf("flush counters not replica-invariant under overload: %+v vs %+v", one.Stats, many.Stats)
	}
	for i := range one.Stats.Hist {
		if one.Stats.Hist[i] != many.Stats.Hist[i] {
			t.Fatalf("Hist[%d] not replica-invariant: %d vs %d", i, one.Stats.Hist[i], many.Stats.Hist[i])
		}
	}
	if one.Stats.Makespan <= many.Stats.Makespan {
		t.Fatalf("saturated single replica should finish later: %d vs %d", one.Stats.Makespan, many.Stats.Makespan)
	}
}

// Handcrafted size-flush run, every counter checked against hand-derived
// values: 6 requests at gap 10, MaxBatch 4, generous deadline. Batches:
// [0..3] size-flushed at t=30, [4,5] deadline-flushed at t=40+200.
func TestExactCountersSizeThenDeadline(t *testing.T) {
	cfg := Config{MaxBatch: 4, MaxDelay: 200, Replicas: 1,
		Service: ServiceModel{Base: 100, PerImage: 10}}
	trace := UniformTrace(6, 10, 1)
	rep := mustSimulate(t, cfg, trace)
	s := rep.Stats

	if s.Offered != 6 || s.Accepted != 6 || s.Rejected != 0 || s.Completed != 6 {
		t.Fatalf("request counters: %+v", s)
	}
	if s.Batches != 2 || s.SizeFlushes != 1 || s.DeadlineFlushes != 1 {
		t.Fatalf("flush counters: %+v", s)
	}
	if s.Hist[4] != 1 || s.Hist[2] != 1 {
		t.Fatalf("histogram: %v", s.Hist)
	}
	if s.QueueHWM != 4 {
		t.Fatalf("QueueHWM = %d, want 4", s.QueueHWM)
	}
	b0, b1 := rep.Batches[0], rep.Batches[1]
	if b0.Flush != 30 || b0.Cause != SizeFlush || b0.Start != 30 || b0.Done != 30+140 {
		t.Fatalf("batch 0: %+v", b0)
	}
	// Head of batch 1 arrives at t=40; deadline fires at 240.
	if b1.Flush != 240 || b1.Cause != DeadlineFlush || b1.Start != 240 || b1.Done != 240+120 {
		t.Fatalf("batch 1: %+v", b1)
	}
	// Latencies: batch 0 done 170 minus arrivals 0,10,20,30; batch 1 done
	// 360 minus arrivals 40,50.
	want := []Ticks{170, 160, 150, 140, 320, 310}
	for i, o := range rep.Outcomes {
		if o.Err != nil || o.Latency != want[i] {
			t.Fatalf("outcome %d = %+v, want latency %d", i, o, want[i])
		}
	}
	if s.BusyTicks != 140+120 || s.Makespan != 360 {
		t.Fatalf("busy/makespan: %+v", s)
	}
	if s.MaxLatency != 320 || s.P99 != 320 || s.P50 != 160 {
		t.Fatalf("percentiles: %+v", s)
	}
}

// MaxDelay 0 flushes every request in its own batch at its arrival tick.
func TestZeroDelayImmediateFlush(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxDelay: 0, Replicas: 3,
		Service: ServiceModel{Base: 10, PerImage: 5}}
	trace := UniformTrace(9, 100, 3)
	rep := mustSimulate(t, cfg, trace)
	if rep.Stats.Batches != 9 || rep.Stats.Hist[1] != 9 {
		t.Fatalf("want 9 singleton batches: %+v", rep.Stats)
	}
	for _, b := range rep.Batches {
		if b.Flush != trace.Requests[b.Members[0]].Arrive {
			t.Fatalf("batch flushed late: %+v", b)
		}
	}
	if rep.Stats.P99 != 15 || rep.Stats.P50 != 15 {
		t.Fatalf("all latencies should be S(1)=15: %+v", rep.Stats)
	}
}

// Bounded queue: a same-tick burst beyond QueueCap is rejected with the
// typed error; accepted+rejected == offered; rejected requests carry
// Batch=-1 and appear nowhere in any batch.
func TestAdmissionControl(t *testing.T) {
	cfg := Config{MaxBatch: 16, MaxDelay: 1000, QueueCap: 5, Replicas: 1,
		Service: ServiceModel{Base: 100, PerImage: 10}}
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = Request{Image: 0, Arrive: 0} // all at once
	}
	rep := mustSimulate(t, cfg, Trace{Name: "burst", Requests: reqs})
	s := rep.Stats
	if s.Accepted != 5 || s.Rejected != 7 || s.Accepted+s.Rejected != s.Offered {
		t.Fatalf("admission counters: %+v", s)
	}
	seen := 0
	for _, b := range rep.Batches {
		seen += len(b.Members)
	}
	if seen != 5 {
		t.Fatalf("batched %d members, want 5", seen)
	}
	for i, o := range rep.Outcomes {
		if o.Err != nil {
			if !errors.Is(o.Err, ErrOverloaded) {
				t.Fatalf("outcome %d error %v, want ErrOverloaded", i, o.Err)
			}
			if o.Batch != -1 {
				t.Fatalf("rejected outcome %d has batch %d", i, o.Batch)
			}
		}
	}
}

// The deadline trigger bounds every accepted request's batching wait at
// MaxDelay, on stochastic traces too.
func TestFlushWithinMaxDelay(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxDelay: 250, Replicas: 2,
		Service: ServiceModel{Base: 80, PerImage: 20}}
	for _, trace := range []Trace{
		PoissonTrace(500, 60, 7, 1),
		BurstyTrace(500, 20, 15, 2000, 7, 2),
	} {
		rep := mustSimulate(t, cfg, trace)
		for _, b := range rep.Batches {
			for _, r := range b.Members {
				if wait := b.Flush - trace.Requests[r].Arrive; wait > cfg.MaxDelay {
					t.Fatalf("%s: request %d waited %d > MaxDelay %d", trace.Name, r, wait, cfg.MaxDelay)
				}
			}
			if len(b.Members) > cfg.MaxBatch {
				t.Fatalf("%s: batch of %d > MaxBatch %d", trace.Name, len(b.Members), cfg.MaxBatch)
			}
		}
	}
}

// Trace generators are pure functions of their seed.
func TestTraceDeterminism(t *testing.T) {
	a := PoissonTrace(100, 50, 4, 9)
	b := PoissonTrace(100, 50, 4, 9)
	c := PoissonTrace(100, 50, 4, 10)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed, different lengths")
	}
	same := true
	diff := false
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			same = false
		}
		if a.Requests[i] != c.Requests[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different traces")
	}
	if !diff {
		t.Fatal("different seeds produced identical traces")
	}
	bu := BurstyTrace(100, 10, 20, 1500, 4, 9)
	bv := BurstyTrace(100, 10, 20, 1500, 4, 9)
	for i := range bu.Requests {
		if bu.Requests[i] != bv.Requests[i] {
			t.Fatal("bursty trace not deterministic")
		}
	}
}

// Bursty idle periods strand partial batches on the deadline trigger.
func TestBurstyDeadlineFlushes(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxDelay: 300, Replicas: 2,
		Service: ServiceModel{Base: 50, PerImage: 10}}
	trace := BurstyTrace(300, 13, 10, 5000, 5, 3) // bursts of 13 don't divide by 8
	rep := mustSimulate(t, cfg, trace)
	if rep.Stats.DeadlineFlushes == 0 {
		t.Fatal("bursty trace produced no deadline flushes")
	}
	if rep.Stats.SizeFlushes == 0 {
		t.Fatal("bursty trace produced no size flushes")
	}
}

// Config validation rejects nonsense.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxBatch: 0},
		{MaxBatch: 4, MaxDelay: -1},
		{MaxBatch: 4, QueueCap: -2},
		{MaxBatch: 4, Replicas: -1},
		{MaxBatch: 4, Service: ServiceModel{Base: -5}},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg, UniformTrace(1, 1, 1)); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Simulate(Config{MaxBatch: 1}, Trace{Requests: []Request{{Arrive: 10}, {Arrive: 5}}}); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}
