package async

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
)

func testDataset() *data.Synth {
	return data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 512, TestSize: 256,
		C: 3, H: 8, W: 8, Noise: 0.3, MaxShift: 1, Flip: false, Seed: 11,
	})
}

func factory() func(uint64) *nn.Network {
	return func(seed uint64) *nn.Network {
		return models.NewMLP(models.MicroConfig{Classes: 4, InC: 3, InH: 8, InW: 8, Width: 4, Seed: seed})
	}
}

func TestAsyncSingleWorkerLearns(t *testing.T) {
	// One worker means no staleness: async degenerates to plain SGD.
	ds := testDataset()
	res, err := Train(Config{
		Model: factory(), Workers: 1, Batch: 32, Updates: 160,
		BaseLR: 0.1, Seed: 1,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("single-worker async diverged")
	}
	if res.MeanStaleness != 0 {
		t.Fatalf("single worker staleness = %v, want 0", res.MeanStaleness)
	}
	if res.TestAcc < 0.75 {
		t.Fatalf("accuracy %v, want >= 0.75", res.TestAcc)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	ds := testDataset()
	cfg := Config{Model: factory(), Workers: 4, Batch: 32, Updates: 60,
		BaseLR: 0.1, JitterStd: 0.2, Seed: 5}
	a, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if a.TestAcc != b.TestAcc || a.MeanStaleness != b.MeanStaleness {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestStalenessGrowsWithWorkers(t *testing.T) {
	// Steady-state staleness of a FCFS parameter server is ~P-1.
	ds := testDataset()
	for _, p := range []int{2, 4, 8} {
		res, err := Train(Config{
			Model: factory(), Workers: p, Batch: 16, Updates: 80,
			BaseLR: 0.05, Seed: 3,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(p - 1)
		if res.MeanStaleness < want*0.6 || res.MeanStaleness > want*1.4+0.5 {
			t.Errorf("P=%d: mean staleness %.2f, want ~%.0f", p, res.MeanStaleness, want)
		}
	}
}

func TestJitterIncreasesStalenessSpread(t *testing.T) {
	ds := testDataset()
	run := func(jitter float64) *Result {
		res, err := Train(Config{
			Model: factory(), Workers: 6, Batch: 16, Updates: 120,
			BaseLR: 0.05, JitterStd: jitter, Seed: 7,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	regular := run(0)
	noisy := run(0.5)
	if noisy.MaxStaleness <= regular.MaxStaleness {
		t.Errorf("jitter should widen the staleness tail: max %d vs %d",
			noisy.MaxStaleness, regular.MaxStaleness)
	}
}

// TestAsyncUnstableAtHighRateVsSync reproduces the paper's motivation for
// synchronous SGD: at an aggressive learning rate with momentum, stale
// gradients degrade final accuracy relative to a synchronous run that
// touches the same number of examples with the same rate schedule.
func TestAsyncUnstableAtHighRateVsSync(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison needs full-length runs")
	}
	ds := testDataset()
	const lr, updates, batch = 0.2, 160, 32

	asyncRes, err := Train(Config{
		Model: factory(), Workers: 8, Batch: batch, Updates: updates,
		BaseLR: lr, Momentum: 0.9, Seed: 2,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}

	// Synchronous counterpart: same per-update batch and schedule
	// (updates*batch = 10 epochs of 512 examples).
	syncRes, err := core.Train(core.Config{
		Model: factory(), Workers: 1, Batch: batch,
		Epochs: updates * batch / 512, Method: core.BaselineSGD,
		BaseLR: lr, Seed: 2,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sync acc=%.3f, async acc=%.3f (staleness mean %.1f)",
		syncRes.TestAcc, asyncRes.TestAcc, asyncRes.MeanStaleness)
	syncOK := !syncRes.Diverged && syncRes.TestAcc > 0.9
	asyncWorse := asyncRes.Diverged || asyncRes.TestAcc < syncRes.TestAcc-0.1
	if !syncOK {
		t.Fatalf("sync baseline itself failed (acc %.3f)", syncRes.TestAcc)
	}
	if !asyncWorse {
		t.Errorf("expected staleness to hurt at lr=%.1f: sync %.3f vs async %.3f",
			lr, syncRes.TestAcc, asyncRes.TestAcc)
	}
}

func TestDescribe(t *testing.T) {
	r := &Result{TestAcc: 0.5, MeanStaleness: 3, MaxStaleness: 7, Updates: 10}
	if r.Describe() == "" {
		t.Fatal("empty description")
	}
}
