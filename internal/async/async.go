// Package async implements the asynchronous parameter-server baseline the
// paper's Background section contrasts with synchronous SGD (Downpour-style
// first-come-first-serve updates; Dean et al. 2012, Recht et al. 2011).
//
// The paper's argument for synchronous SGD is stability: "The asynchronous
// methods using parameter server are not guaranteed to be stable on
// large-scale systems" (citing Chen et al. 2016). This package makes that
// claim testable. Workers compute real gradients against a snapshot of the
// server weights taken at dispatch time; by the time a gradient is applied,
// the server has moved on, so the update is stale by roughly P−1 versions —
// the classic gradient-staleness model, with the momentum interaction of
// Mitliagkas et al. 2016 emerging naturally.
//
// The event loop is a deterministic discrete-event simulation (virtual
// completion times with seeded jitter), so runs are exactly reproducible —
// unlike wall-clock async training, but with identical update dynamics.
package async

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// Config configures one asynchronous run.
type Config struct {
	// Model builds one worker replica (same contract as core.Config.Model).
	Model func(seed uint64) *nn.Network

	Workers int
	// Batch is the per-worker batch size: each push to the server is a
	// gradient over this many examples (Downpour semantics — there is no
	// global batch).
	Batch int
	// Updates is the total number of server updates. Comparisons against
	// synchronous SGD hold Updates × Batch (examples touched) fixed.
	Updates int

	BaseLR    float64
	PolyPower float64
	Momentum  float64

	// JitterStd is the standard deviation of per-gradient compute time
	// around 1.0 virtual seconds. Zero means perfectly regular workers
	// (staleness exactly P−1 in steady state); larger values model the
	// heterogeneous clusters where async was thought to win.
	JitterStd float64

	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Updates == 0 {
		c.Updates = 100
	}
	if c.BaseLR == 0 {
		c.BaseLR = 0.05
	}
	if c.PolyPower == 0 {
		c.PolyPower = 2
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	return c
}

// Result summarizes an asynchronous run.
type Result struct {
	TestAcc       float64
	FinalLoss     float64
	MeanStaleness float64
	MaxStaleness  int
	Diverged      bool
	Updates       int
}

// event is one in-flight gradient computation.
type event struct {
	completeAt float64
	worker     int
	seq        int64 // FIFO tiebreak for equal times (determinism)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].completeAt != h[j].completeAt {
		return h[i].completeAt < h[j].completeAt
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event   { return h[0] }

var _ heap.Interface = (*eventHeap)(nil)

// Train runs Downpour-style asynchronous SGD and returns the result.
func Train(cfg Config, ds *data.Synth) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		panic("async: Config.Model is required")
	}
	server := cfg.Model(cfg.Seed)
	serverParams := server.Params()
	optimizer := opt.NewSGD(serverParams, opt.SGDConfig{Momentum: cfg.Momentum})
	sched := opt.Poly{Base: cfg.BaseLR, Power: cfg.PolyPower}

	type workerState struct {
		replica *nn.Network
		loss    nn.SoftmaxCrossEntropy
		// grads holds the flattened gradient awaiting application.
		grads [][]float32
		// version is the server version the in-flight gradient was
		// computed against.
		version int64
		sampler *rng.Rand
	}

	workers := make([]*workerState, cfg.Workers)
	jr := rng.New(cfg.Seed ^ 0x5a5a5a5a5a5a5a5a)
	for i := range workers {
		rep := cfg.Model(cfg.Seed + uint64(i)*104729)
		rep.CopyWeightsFrom(server)
		ws := &workerState{replica: rep, sampler: rng.New(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)}
		for _, p := range rep.Params() {
			ws.grads = append(ws.grads, make([]float32, p.Numel()))
		}
		workers[i] = ws
	}

	res := &Result{}
	var serverVersion int64
	var seq int64
	var stalenessSum float64

	compute := func(w *workerState) error {
		// Pull: snapshot current server weights.
		w.replica.CopyWeightsFrom(server)
		w.version = serverVersion
		// Draw a batch uniformly from the worker's view of the data.
		idx := make([]int, cfg.Batch)
		for j := range idx {
			idx[j] = w.sampler.Intn(ds.Train.Len())
		}
		x, labels := ds.Train.MustGather(idx)
		w.replica.ZeroGrad()
		logits := w.replica.Forward(x, true)
		loss := w.loss.Forward(logits, labels)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			res.Diverged = true
		}
		res.FinalLoss = loss
		w.replica.Backward(w.loss.Backward())
		for pi, p := range w.replica.Params() {
			copy(w.grads[pi], p.G.Data)
		}
		return nil
	}

	h := &eventHeap{}
	now := 0.0
	dispatch := func(i int) error {
		if err := compute(workers[i]); err != nil {
			return err
		}
		dur := 1.0
		if cfg.JitterStd > 0 {
			dur += cfg.JitterStd * jr.NormFloat64()
			if dur < 0.1 {
				dur = 0.1
			}
		}
		heap.Push(h, event{completeAt: now + dur, worker: i, seq: seq})
		seq++
		return nil
	}
	for i := range workers {
		if err := dispatch(i); err != nil {
			return nil, err
		}
	}

	for int(serverVersion) < cfg.Updates && !res.Diverged {
		e := heap.Pop(h).(event)
		now = e.completeAt
		w := workers[e.worker]
		// Push: apply the (stale) gradient at the current schedule rate.
		staleness := serverVersion - w.version
		stalenessSum += float64(staleness)
		if int(staleness) > res.MaxStaleness {
			res.MaxStaleness = int(staleness)
		}
		for pi, p := range serverParams {
			copy(p.G.Data, w.grads[pi])
		}
		optimizer.Step(sched.LR(int(serverVersion), cfg.Updates))
		serverVersion++
		if int(serverVersion) >= cfg.Updates {
			break
		}
		if err := dispatch(e.worker); err != nil {
			return nil, err
		}
	}
	res.Updates = int(serverVersion)
	if serverVersion > 0 {
		res.MeanStaleness = stalenessSum / float64(serverVersion)
	}
	// Recalibrate batch-norm running statistics before evaluating: the
	// server's weights were only ever written by optimizer pushes, so its
	// normalization statistics never saw data (workers keep theirs local,
	// as in real parameter-server systems). A short forward-only pass over
	// training batches fixes inference without touching the weights.
	calRNG := rng.New(cfg.Seed ^ 0x0badcafe)
	for i := 0; i < 12 && !res.Diverged; i++ {
		size := 2 * cfg.Batch
		if size > ds.Train.Len() {
			size = ds.Train.Len()
		}
		idx := make([]int, size)
		for j := range idx {
			idx[j] = calRNG.Intn(ds.Train.Len())
		}
		x, _ := ds.Train.MustGather(idx)
		server.Forward(x, true)
	}
	// Final evaluation on the server weights.
	res.TestAcc = evalAccuracy(server, ds)
	return res, nil
}

func evalAccuracy(net *nn.Network, ds *data.Synth) float64 {
	n := ds.Test.Len()
	correct := 0
	const chunk = 256
	imLen := ds.Test.Images.Numel() / n
	_ = imLen
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, labels := ds.Test.MustGather(idx)
		logits := net.Forward(x, false)
		preds := logits.ArgMaxRows()
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

// Describe renders a one-line summary.
func (r *Result) Describe() string {
	status := "ok"
	if r.Diverged {
		status = "DIVERGED"
	}
	return fmt.Sprintf("async: acc=%.4f staleness(mean=%.1f,max=%d) updates=%d %s",
		r.TestAcc, r.MeanStaleness, r.MaxStaleness, r.Updates, status)
}
