package dist

// Local SGD (Config.SyncEvery): workers run H local optimizer steps
// between collectives, then average *weights* — Codreanu et al.'s periodic
// parameter averaging, trading a 1/H cut in communication volume for the
// statistical cost of divergence between averages. The hierarchical
// variant (Config.IntraSyncEvery) layers frequent cheap intra-node
// averages under the rare full rounds, the natural extension of Hierarchy.
//
// The engine contract carries over unchanged: every averaging round's
// schedule is accounted into CommStats/TierStats (exposed — sync rounds
// are barriers, nothing hides inside a backward pass), codecs round the
// weight payloads through their wire format exactly as they round
// gradients, measured counters match comm.ExpectedLocalSGDStats
// counter-for-counter, and runs are deterministic at any H. Sync
// boundaries are the only legal membership-change points: joins admit at
// window starts, fault rolls (and hence the eviction clock) fire in sync
// rounds, and a window always closes at the world size it opened at.

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/kernel"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/tensor"
)

// Stepper is the optimizer-facing hook of a local-SGD worker: one Step per
// local gradient, advancing the worker's replica in place. opt.Optimizer
// satisfies it structurally — dist never imports the optimizer package,
// mirroring how the synchronous loop keeps the master optimizer outside
// the engine.
type Stepper interface {
	Step(lr float64)
}

// LocalSGDStats counts the local-SGD activity of an engine driven through
// LocalStep: local optimizer steps and the averaging rounds that
// synchronized them, per tier. The counters conserve steps exactly — for a
// fresh engine after S calls with period H,
//
//	LocalSteps = S
//	SyncRounds = floor(S/H)
//	IntraRounds = floor(S/Hi) − floor(S/H)   (Hi = IntraSyncEvery, else 0)
//
// so SyncRounds·H local steps are fully synchronized and S mod H ride in
// the still-open window.
type LocalSGDStats struct {
	// LocalSteps is the number of local optimizer steps executed (one per
	// LocalStep call; every active worker steps once per call).
	LocalSteps int64
	// SyncRounds is the number of full weight-averaging rounds: every
	// SyncEvery-th step all active workers average into the master, which
	// rebroadcasts the result.
	SyncRounds int64
	// IntraRounds is the number of intra-node-only averaging rounds:
	// every IntraSyncEvery-th step that is not also a full boundary, each
	// Topology node averages among its own members over the intra fabric.
	IntraRounds int64
}

// Add accumulates o into s.
func (s *LocalSGDStats) Add(o LocalSGDStats) {
	s.LocalSteps += o.LocalSteps
	s.SyncRounds += o.SyncRounds
	s.IntraRounds += o.IntraRounds
}

// LocalSGD returns the cumulative local-SGD counters. Zero unless the
// engine is driven through LocalStep.
func (e *Engine) LocalSGD() LocalSGDStats { return e.localsgd }

// StepLocalSGD returns the local-SGD counters of the most recent
// LocalStep: one local step plus whatever averaging round closed it.
func (e *Engine) StepLocalSGD() LocalSGDStats { return e.lastLocal }

// SetLocalSteppers installs one local optimizer per replica — the workers
// step them inside LocalStep, each on its own replica's parameters. Must
// be called before the first LocalStep. Call it between steps only, like
// SetLossScale: the job channels provide the happens-before edge.
func (e *Engine) SetLocalSteppers(steppers []Stepper) {
	if len(steppers) != len(e.replicas) {
		panic(fmt.Sprintf("dist: %d local steppers for %d replicas (one per worker)", len(steppers), len(e.replicas)))
	}
	for w, s := range steppers {
		if s == nil {
			panic(fmt.Sprintf("dist: local stepper %d is nil", w))
		}
	}
	e.localSteppers = steppers
	if e.localBuf == nil {
		e.localBuf = make([][]float32, len(e.replicas))
		for w := range e.localBuf {
			e.localBuf[w] = make([]float32, e.nparams)
		}
	}
}

// LocalStep runs one local-SGD step: every active worker forward/backwards
// its shards of the global batch (exactly as ComputeGradient shards it),
// reduces the gradient over its own shards only, and steps its local
// optimizer at the given learning rate — no collective runs. At window
// boundaries the collectives fire: every SyncEvery-th step all active
// workers' weights are averaged (codec-rounded on the wire, uniformly
// weighted, canonical order) into the master and rebroadcast; every
// IntraSyncEvery-th step in between, each Topology node averages among its
// members on the intra fabric only. Fault rolls and membership changes
// happen at full boundaries exclusively — joins admit when a window opens,
// evictions close one — so a window always runs whole at one world size.
// It returns the batch-mean loss over all shards.
//
// With SyncEvery == 1 every step is a boundary: local SGD degenerates to
// per-step weight averaging, whose schedule (and therefore CommStats) is
// identical to the every-step gradient path's. SetLocalSteppers must have
// installed the local optimizers. An engine is driven through either
// LocalStep or ComputeGradient, never both: the two paths key codec slots
// differently (per worker here, per shard there).
func (e *Engine) LocalStep(x *tensor.Tensor, labels []int, lr float64) (float64, error) {
	h := e.cfg.SyncEvery
	if h < 1 {
		panic("dist: LocalStep needs Config.SyncEvery >= 1 (set the synchronization period)")
	}
	if e.localSteppers == nil {
		panic("dist: LocalStep before SetLocalSteppers (the workers have no local optimizers)")
	}
	b := x.Shape[0]
	if b == 0 {
		panic("dist: LocalStep on an empty batch")
	}
	if len(labels) != b {
		panic(fmt.Sprintf("dist: %d labels for batch of %d", len(labels), b))
	}
	if err := e.checkDead(e.steps); err != nil {
		return 0, err
	}
	e.lastStep = CommStats{}
	e.lastTiers = TierStats{}
	e.lastOverlap = OverlapStats{}
	e.lastMembership = MembershipStats{StepsAtWorld: make([]int64, len(e.replicas)+1)}
	e.lastLocal = LocalSGDStats{}
	if e.cfg.Profile && e.profActive {
		e.lastProfile = ProfileStats{}
	}
	// Window start: sync boundaries are the only legal membership-change
	// points, so a join the plan scheduled for a step inside the previous
	// window was deferred to this boundary.
	if e.steps%int64(h) == 0 {
		if err := e.admitJoins(); err != nil {
			return 0, err
		}
	}
	var profBase [kernel.NumPhases]int64
	var profStart int64
	if e.cfg.Profile && e.profActive {
		profBase, profStart = kernel.ProfileSnapshot()
	}
	spans := data.Spans(b, e.shards)
	active := e.activeIDs(e.steps)
	slots := e.slotOwners(active)
	if err := e.dispatch(active, func(w int) job {
		return job{kind: jobLocal, x: x, labels: labels, spans: spans, slots: slots[w], lr: lr}
	}); err != nil {
		return 0, err
	}
	e.localsgd.LocalSteps++
	e.lastLocal.LocalSteps++
	done := e.steps + 1
	closed := done%int64(h) == 0
	if closed {
		if err := e.syncRound(active); err != nil {
			return 0, err
		}
	} else if hi := int64(e.cfg.IntraSyncEvery); hi > 0 && done%hi == 0 {
		e.intraSyncRound(active)
	}
	if e.cfg.Profile && e.profActive {
		d := profileDelta(profBase, profStart)
		e.lastProfile.Add(d)
		e.profile.Add(d)
	}
	e.noteStep(e.world) // filed at the world size the whole window runs at
	e.steps++
	if closed {
		if err := e.evictDead(); err != nil {
			return 0, err
		}
	}
	var loss float64
	for s, span := range spans {
		if span[0] == span[1] {
			continue
		}
		loss += float64(span[1]-span[0]) / float64(b) * e.losses[s]
	}
	return loss, nil
}

// localReduceStep is the worker-side tail of a jobLocal: reduce the
// gradients of the worker's own shards — sample-weighted over the rows it
// computed, canonical slot order — into its replica's parameter gradients,
// then step its local optimizer. Runs on the worker goroutine; it touches
// only worker-owned state (its shards' gradients, its scratch, its
// replica, its stepper).
func (e *Engine) localReduceStep(w int, j job) {
	var owned int
	var live []int
	for _, slot := range j.slots {
		if n := j.spans[slot][1] - j.spans[slot][0]; n > 0 {
			owned += n
			live = append(live, slot)
		}
	}
	if owned == 0 {
		return // no rows landed on this worker this step: nothing to step on
	}
	buf := e.localBuf[w]
	srcs := make([][]float32, len(live))
	for i, s := range live {
		srcs[i] = e.grads[s]
	}
	// One sequential kernel call is the canonical chunking — the same bits
	// any parallel decomposition would produce.
	if e.cfg.Reduction == PairwiseF32 {
		scales := make([]float32, len(live))
		for i, s := range live {
			scales[i] = float32(float64(j.spans[s][1]-j.spans[s][0]) / float64(owned))
		}
		kernel.PairwiseAccumulate(buf, srcs, scales)
	} else {
		scales := make([]float64, len(live))
		for i, s := range live {
			scales[i] = float64(j.spans[s][1]-j.spans[s][0]) / float64(owned)
		}
		kernel.CanonicalAccumulate(buf, srcs, scales)
	}
	off := 0
	for _, p := range e.params[w] {
		copy(p.G.Data, buf[off:off+p.Numel()])
		off += p.Numel()
	}
	e.localSteppers[w].Step(j.lr)
}

// syncRound runs one full weight-averaging round over the active workers:
// flatten every worker's parameters, pass each payload through the codec's
// wire format (per bucket, accounting the reduce schedule exactly like a
// gradient reduction), average uniformly in canonical worker order into
// the master, roll the fault plan — the only point the eviction clock
// ticks in local mode — and rebroadcast. All of it is exposed: a sync
// round is a barrier, there is no backward pass to hide inside.
func (e *Engine) syncRound(active []int) error {
	e.localsgd.SyncRounds++
	e.lastLocal.SyncRounds++
	for _, w := range active {
		flattenWeights(e.params[w], e.localBuf[w])
	}
	payloads := make([]int64, len(e.buckets))
	for bi := range e.buckets {
		payloads[bi] = e.averageBucket(bi, active)
	}
	scatterWeights(e.reduced, e.params[0])
	e.injectFaults(payloads)
	return e.BroadcastWeights()
}

// averageBucket averages one bucket of the active workers' flattened
// weights into e.reduced: the optional codec rounds every worker's payload
// through its wire format (slots keyed per worker, disjoint from nothing —
// local engines never run the shard-keyed gradient reduction), the reduce
// schedule of the configured topology is accounted, and the uniform mean
// lands in the scratch vector. Returns the rounded mean wire payload so
// fault recovery prices resends consistently, mirroring reduceBucket.
func (e *Engine) averageBucket(bi int, active []int) int64 {
	lo, hi := e.buckets[bi][0], e.buckets[bi][1]
	n := len(active)
	wireTotal := 4 * int64(hi-lo) * int64(n)
	if e.cfg.Codec != nil {
		wireTotal = e.transformWeights(bi, active)
	}
	e.recordReduce(wireTotal, n, false)
	sp := kernel.StartPhase(kernel.PhaseReduce)
	srcs := make([][]float32, n)
	for i, w := range active {
		srcs[i] = e.localBuf[w][lo:hi]
	}
	e.averageSegment(e.reduced[lo:hi], srcs)
	sp.End()
	n64 := int64(n)
	return (wireTotal + n64/2) / n64
}

// transformWeights rounds every active worker's flattened weights of one
// bucket through the codec's wire format in place, returning the summed
// wire bytes. Slots are keyed by worker — each worker compresses its own
// weights, so stateful codecs (1-bit error feedback) carry per-worker
// residuals across averaging rounds.
func (e *Engine) transformWeights(bi int, active []int) int64 {
	lo, hi := e.buckets[bi][0], e.buckets[bi][1]
	sp := kernel.StartPhase(kernel.PhaseCodec)
	wires := make([]int64, len(active))
	tasks := make([]func(), len(active))
	for i, w := range active {
		slot := w*len(e.buckets) + bi
		seg := e.localBuf[w][lo:hi]
		i := i
		tasks[i] = func() { wires[i] = e.cfg.Codec.Transform(slot, seg) }
	}
	par.Do(tasks...)
	var total int64
	for _, wb := range wires {
		total += wb
	}
	sp.End()
	return total
}

// averageSegment writes the uniform mean of the source vectors into dst
// using the configured reduction arithmetic. The kernels are
// chunking-invariant, so the parallel decomposition never affects the
// averaged bits.
func (e *Engine) averageSegment(dst []float32, srcs [][]float32) {
	uniform := 1.0 / float64(len(srcs))
	if e.cfg.Reduction == PairwiseF32 {
		scales := make([]float32, len(srcs))
		for i := range scales {
			scales[i] = float32(uniform)
		}
		par.ForGrain(len(dst), 2048, func(l, h int) {
			sub := make([][]float32, len(srcs))
			for i := range srcs {
				sub[i] = srcs[i][l:h]
			}
			kernel.PairwiseAccumulate(dst[l:h], sub, scales)
		})
		return
	}
	scales := make([]float64, len(srcs))
	for i := range scales {
		scales[i] = uniform
	}
	par.ForGrain(len(dst), 2048, func(l, h int) {
		sub := make([][]float32, len(srcs))
		for i := range srcs {
			sub[i] = srcs[i][l:h]
		}
		kernel.CanonicalAccumulate(dst[l:h], sub, scales)
	})
}

// intraSyncRound runs one intra-node-only averaging round: each Topology
// node's active members average their weights among themselves over the
// intra fabric — leaders never exchange, so the inter tier stays silent.
// The schedule is the intra half of the two-tier round (reduce plus
// broadcast, priced at the live node sizes like every hierarchical
// schedule), accounted exposed on TierStats.Intra only.
func (e *Engine) intraSyncRound(active []int) {
	e.localsgd.IntraRounds++
	e.lastLocal.IntraRounds++
	activeSet := make(map[int]bool, len(active))
	for _, w := range active {
		activeSet[w] = true
	}
	groups := make([][]int, 0, len(e.nodes))
	for _, members := range e.nodes {
		var g []int
		for _, m := range members {
			if activeSet[m] {
				g = append(g, m)
			}
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	for _, w := range active {
		flattenWeights(e.params[w], e.localBuf[w])
	}
	h := e.cfg.Topology
	sizes := e.nodeSizes()
	n := int64(len(active))
	for bi, b := range e.buckets {
		lo, hi := b[0], b[1]
		wireTotal := 4 * int64(hi-lo) * n
		if e.cfg.Codec != nil {
			wireTotal = e.transformWeights(bi, active)
		}
		r := degradedHierReduceSchedule(*h, sizes, 0)
		var t TierStats
		t.Intra = r.Intra
		t.Intra.Bytes = degradedIntraBytesFactor(*h, sizes) * wireTotal / n
		t.Intra.Add(degradedHierBroadcastSchedule(*h, sizes, 4*int64(hi-lo)).Intra)
		e.recordTiers(t, false)
	}
	sp := kernel.StartPhase(kernel.PhaseReduce)
	for _, g := range groups {
		srcs := make([][]float32, len(g))
		for i, m := range g {
			srcs[i] = e.localBuf[m]
		}
		e.averageSegment(e.reduced, srcs)
		for _, m := range g {
			scatterWeights(e.reduced, e.params[m])
		}
	}
	sp.End()
}

// flattenWeights copies every parameter's weights into one flat vector.
func flattenWeights(params []*nn.Param, dst []float32) {
	off := 0
	for _, p := range params {
		copy(dst[off:off+p.Numel()], p.W.Data)
		off += p.Numel()
	}
}

// scatterWeights copies a flat weight vector back into the parameters.
func scatterWeights(src []float32, params []*nn.Param) {
	off := 0
	for _, p := range params {
		copy(p.W.Data, src[off:off+p.Numel()])
		off += p.Numel()
	}
}

// EvalAccuracyLocal evaluates top-1 accuracy on a single live replica — the
// lowest-numbered active worker — chunking the test set into batches of the
// given size. Between sync boundaries local-SGD replicas legitimately
// disagree, so the fleet-wide EvalAccuracy (which farms spans across all
// live workers) would grade different test spans with different models;
// pinning one replica keeps the metric well-defined and deterministic at
// any point in the window.
func (e *Engine) EvalAccuracyLocal(images *tensor.Tensor, labels []int, batch int) (float64, error) {
	n := images.Shape[0]
	if n == 0 {
		return 0, nil
	}
	if batch <= 0 || batch > n {
		batch = n
	}
	var spans [][2]int
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{lo, hi})
	}
	w := e.activeIDs(e.steps)[0]
	slots := make([]int, len(spans))
	for i := range slots {
		slots[i] = i
	}
	if err := e.dispatch([]int{w}, func(int) job {
		return job{kind: jobEval, x: images, labels: labels, spans: spans, slots: slots}
	}); err != nil {
		return 0, err
	}
	return float64(e.evalOK[w]) / float64(n), nil
}
