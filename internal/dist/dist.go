// Package dist is the synchronous data-parallel engine: the layer the paper
// (and Akiba et al. 2017 before it) identifies as the scaling bottleneck of
// large-batch SGD. It provides
//
//   - package-level collectives (Reduce, Broadcast) over raw float32
//     buffers under three allreduce topologies — Central (parameter-server
//     star), Tree (binomial ⌈log₂P⌉ rounds, Table 2's model) and Ring
//     (bandwidth-optimal chunked reduce-scatter + allgather) — with exact
//     per-topology accounting of messages, payload bytes and latency rounds
//     in CommStats, cross-checked against internal/comm's closed forms;
//
//   - a composed two-tier collective (Hierarchy, HierReduce and
//     HierBroadcast): workers arranged into nodes reduce intra-node first
//     (default ring), node leaders exchange across the cluster fabric
//     (default tree), and the result fans back down — the KNL/Skylake
//     fabric split of the paper's fastest runs, with the schedule
//     accounted per tier (TierStats) so each fabric is priced on its own
//     alpha-beta profile;
//
//   - an Engine that drives W persistent worker goroutines in lockstep over
//     per-worker batch shards: forward/backward on each worker's replica,
//     gradient averaging through the selected topology, weight broadcast,
//     data-parallel evaluation, gradient bucketing (chunked reduction, the
//     overlap-friendly granularity real frameworks use), bucket reductions
//     overlapped with the backward pass (Config.Overlap: each bucket's
//     allreduce fires the moment its last covering parameter's gradient
//     lands, driven by nn.Network's gradient-ready notification, with the
//     schedule split into hidden vs exposed in OverlapStats), optional
//     payload compression (internal/compress 1-bit SGD or FP16 via the
//     Codec hook) and deterministic fault injection (dropped payloads are
//     re-requested, straggling workers are awaited) for scenario diversity;
//
//   - elastic membership (Config.Elastic): when the fault plan kills a
//     worker permanently (FaultPlan.Dead — the preemptible-node scenario),
//     the engine evicts it after EvictAfter consecutive failed recoveries,
//     rebalances the logical shards over the surviving P−1 workers
//     (data.Spans), shrinks the topology (a hierarchy node losing all its
//     workers leaves the inter tier), resynchronizes the weights, and
//     continues lockstep at the smaller world — with the whole episode
//     accounted in MembershipStats. Without Elastic a permanently dead
//     worker surfaces a typed *WorkerDeadError instead of being retried
//     forever.
//
// # Reproducibility contract
//
// The engine executes the reduction arithmetic once per coordinate — under
// the default CanonicalF64 policy a strict canonical-shard-order float64
// accumulation, under PairwiseF32 a fixed-shape pairwise float32 tree
// whose shape depends only on the live shard count (Config.Reduction; both
// implemented in internal/kernel) — and separately accounts the message
// schedule of the selected topology. Consequences, all tested for both
// policies:
//
//   - the three algorithms — and any two-tier Hierarchy composed from
//     them — produce bitwise-identical reductions (real collectives do not
//     have this property; a reproduction harness wants it, so topology
//     choice is a pure cost/accounting decision);
//
//   - the numerical result depends only on Config.Shards — the logical
//     batch split — never on the physical worker count, so a Workers=4 run
//     with Shards=4 is bit-identical to a Workers=1 run with Shards=4;
//
//   - fault injection perturbs only the schedule accounting (retries,
//     stalls), never the reduced values, so a faulty run recovers to the
//     bitwise result of a fault-free run;
//
//   - elastic eviction is pure schedule surgery: given the same fault plan
//     and policy, a degrading run is bit-identical across topologies, and
//     every post-eviction step is bit-identical to a fresh P−1 run started
//     from the rebalanced weights (the default per-worker shard split
//     follows the world size down, so the degraded engine and the fresh
//     small one compute the very same shard spans).
package dist

import "fmt"

// Algorithm selects the allreduce communication pattern.
type Algorithm int

// The three topologies the paper's analysis compares (Table 2, Figure 9).
const (
	// Central is the parameter-server star: every worker sends to the
	// root, which reduces and sends back. Serialized at the root, so both
	// message count and latency rounds grow linearly in P.
	Central Algorithm = iota
	// Tree is the binomial tree: ⌈log₂P⌉ combining rounds up, the same
	// back down. P−1 messages each way, logarithmic latency.
	Tree
	// Ring is the bandwidth-optimal chunked ring: a reduce-scatter
	// followed by an allgather, 2(P−1) rounds of P concurrent chunk
	// messages; each link carries only ~1/P of the payload per round.
	Ring
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Central:
		return "central"
	case Tree:
		return "tree"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// CommStats counts the data movement of the executed schedules. The
// aggregate view (total messages and bytes across all links) is what
// internal/comm's Figure 9/10 arithmetic models; Steps counts latency
// rounds, the α terms of the alpha-beta cost model.
type CommStats struct {
	// Messages is the number of point-to-point messages sent.
	Messages int64
	// Bytes is the total payload moved, summed over all messages.
	Bytes int64
	// Steps is the number of serialized communication rounds: messages
	// that can fly concurrently (a ring round, one binomial-tree level)
	// count as one step.
	Steps int64
	// Retries counts dropped payloads that were re-requested and resent
	// by the fault-recovery path.
	Retries int64
	// Stalls counts lockstep rounds that waited on an injected straggler.
	Stalls int64
}

// Add accumulates o into s.
func (s *CommStats) Add(o CommStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Steps += o.Steps
	s.Retries += o.Retries
	s.Stalls += o.Stalls
}

// OverlapStats splits a schedule's latency rounds and payload bytes into the
// part hidden behind the backward pass and the exposed remainder — the
// accounting view of communication/computation overlap (Das et al. 2016;
// Goyal et al. 2017). Under Config.Overlap the engine classifies each
// gradient bucket structurally: a bucket whose reduction launches while some
// worker is still back-propagating earlier layers is hidden; the bucket
// covering the network's first parameter — which only becomes ready when the
// backward pass ends — is exposed, as are weight broadcasts and
// fault-recovery traffic (both happen at the step barrier). The invariant
// HiddenRounds+ExposedRounds == CommStats.Steps and HiddenBytes+ExposedBytes
// == CommStats.Bytes holds for every step; with Overlap disabled everything
// is exposed.
type OverlapStats struct {
	// HiddenRounds and HiddenBytes count the latency rounds and payload of
	// bucket reductions that fired inside the backward pass.
	HiddenRounds, HiddenBytes int64
	// ExposedRounds and ExposedBytes count everything the step waits on:
	// the final bucket's reduction, weight broadcasts, recovery resends.
	ExposedRounds, ExposedBytes int64
}

// Add accumulates p into o.
func (o *OverlapStats) Add(p OverlapStats) {
	o.HiddenRounds += p.HiddenRounds
	o.HiddenBytes += p.HiddenBytes
	o.ExposedRounds += p.ExposedRounds
	o.ExposedBytes += p.ExposedBytes
}

// add files one schedule under the hidden or exposed side of the split.
func (o *OverlapStats) add(s CommStats, hidden bool) {
	if hidden {
		o.HiddenRounds += s.Steps
		o.HiddenBytes += s.Bytes
		return
	}
	o.ExposedRounds += s.Steps
	o.ExposedBytes += s.Bytes
}

// Rounds returns the total latency rounds across both sides, which equals
// the matching CommStats.Steps.
func (o OverlapStats) Rounds() int64 { return o.HiddenRounds + o.ExposedRounds }

// TotalBytes returns the total payload across both sides, which equals the
// matching CommStats.Bytes.
func (o OverlapStats) TotalBytes() int64 { return o.HiddenBytes + o.ExposedBytes }

// HiddenByteFrac returns the fraction of payload bytes hidden behind the
// backward pass (0 when nothing moved).
func (o OverlapStats) HiddenByteFrac() float64 {
	total := o.TotalBytes()
	if total == 0 {
		return 0
	}
	return float64(o.HiddenBytes) / float64(total)
}

// ceilLog2 returns ⌈log₂ p⌉ for p >= 1.
func ceilLog2(p int) int64 {
	var n int64
	for v := 1; v < p; v *= 2 {
		n++
	}
	return n
}

// reduceSchedule returns the schedule cost of one reduction of a
// payloadBytes payload across p workers: the gradient-sum phase only
// (pair with broadcastSchedule for a full allreduce). For Ring the
// "reduction" is a reduce-scatter plus allgather, which already leaves the
// result on every worker; its paired broadcast is the binomial weight
// broadcast the engine issues after the optimizer step.
func reduceSchedule(algo Algorithm, p int, payloadBytes int64) CommStats {
	if p <= 1 {
		return CommStats{}
	}
	switch algo {
	case Central:
		// P−1 workers each send their full payload to the root, which
		// applies them serially.
		return CommStats{
			Messages: int64(p - 1),
			Bytes:    int64(p-1) * payloadBytes,
			Steps:    int64(p - 1),
		}
	case Tree:
		// Binomial combine: every non-root node sends exactly once, in
		// ⌈log₂P⌉ concurrent levels.
		return CommStats{
			Messages: int64(p - 1),
			Bytes:    int64(p-1) * payloadBytes,
			Steps:    ceilLog2(p),
		}
	case Ring:
		// Reduce-scatter then allgather: 2(P−1) rounds, each moving all
		// P chunks (~1/P of the payload each) concurrently around the
		// ring. Aggregate bytes per round ≈ the payload; per-link bytes
		// are 1/P of it, which is where the bandwidth optimality lives.
		return CommStats{
			Messages: 2 * int64(p) * int64(p-1),
			Bytes:    2 * int64(p-1) * payloadBytes,
			Steps:    2 * int64(p-1),
		}
	default:
		panic(fmt.Sprintf("dist: unknown algorithm %v", algo))
	}
}

// broadcastSchedule returns the schedule cost of distributing a
// payloadBytes payload from the root to the other p−1 workers.
func broadcastSchedule(algo Algorithm, p int, payloadBytes int64) CommStats {
	if p <= 1 {
		return CommStats{}
	}
	switch algo {
	case Central:
		// The server sends P−1 full copies, serially.
		return CommStats{
			Messages: int64(p - 1),
			Bytes:    int64(p-1) * payloadBytes,
			Steps:    int64(p - 1),
		}
	case Tree, Ring:
		// Binomial broadcast: the set of informed workers doubles each
		// round. Ring pairs its allreduce with the same binomial weight
		// broadcast (matching comm.MessagesPerAllreduce's arithmetic).
		return CommStats{
			Messages: int64(p - 1),
			Bytes:    int64(p-1) * payloadBytes,
			Steps:    ceilLog2(p),
		}
	default:
		panic(fmt.Sprintf("dist: unknown algorithm %v", algo))
	}
}

// reduceBytesFactor returns the schedule's aggregate bytes per payload byte:
// reduceSchedule(algo, p, B).Bytes == reduceBytesFactor(algo, p) * B. The
// engine's codec accounting uses it to price non-uniform wire payloads
// exactly (multiply the summed wire bytes first, divide by the shard count
// last) instead of truncating a per-shard mean.
func reduceBytesFactor(algo Algorithm, p int) int64 {
	if p <= 1 {
		return 0
	}
	switch algo {
	case Central, Tree:
		return int64(p - 1)
	case Ring:
		return 2 * int64(p-1)
	default:
		panic(fmt.Sprintf("dist: unknown algorithm %v", algo))
	}
}

// ReduceSchedule returns the closed-form schedule of the gradient-sum phase
// of one reduction of a payloadBytes payload across p workers — exactly the
// counters the engine records per bucket. Pair with BroadcastSchedule for a
// full allreduce.
func ReduceSchedule(algo Algorithm, p int, payloadBytes int64) CommStats {
	return reduceSchedule(algo, p, payloadBytes)
}

// BroadcastSchedule returns the closed-form schedule of distributing a
// payloadBytes payload from the root to the other p−1 workers.
func BroadcastSchedule(algo Algorithm, p int, payloadBytes int64) CommStats {
	return broadcastSchedule(algo, p, payloadBytes)
}

// senderShare returns the message and byte count a single non-root worker
// originates in one reduceSchedule — the unit of loss re-requested by the
// fault-recovery path when that worker's payload is dropped.
func senderShare(algo Algorithm, p int, payloadBytes int64) (msgs, bytes int64) {
	if p <= 1 {
		return 0, 0
	}
	switch algo {
	case Central, Tree:
		return 1, payloadBytes
	case Ring:
		// A ring participant forwards one chunk per round for 2(P−1)
		// rounds; restarting its pass resends all of them.
		return 2 * int64(p-1), 2 * int64(p-1) * payloadBytes / int64(p)
	default:
		panic(fmt.Sprintf("dist: unknown algorithm %v", algo))
	}
}
