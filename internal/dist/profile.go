package dist

import (
	"fmt"

	"repro/internal/kernel"
)

// ProfileStats decomposes training-step wall time into the hot-loop phases
// the paper's throughput analysis cares about: GEMM (the conv/linear
// compute the batch feeds), im2col/col2im lowering, the gradient reduction
// arithmetic, codec transforms, and the unattributed remainder (layer
// glue, pooling, activations, scheduling). All values are nanoseconds.
//
// The decomposition is exact by construction: the profiler attributes
// every instant of the step window to at most one phase (when phases
// overlap across goroutines — a reduction firing inside the backward pass
// under Config.Overlap — the higher-priority phase wins), and OtherNS is
// the window remainder, so
//
//	GemmNS + Im2colNS + ConvertNS + ReduceNS + CodecNS + OtherNS == WallNS
//
// holds for every step. Populated only when Config.Profile is set; the
// profiler is process-global, so profile one engine at a time.
type ProfileStats struct {
	// GemmNS is wall time inside the GEMM/MatVec kernels.
	GemmNS int64
	// Im2colNS is wall time inside the im2col/col2im lowering.
	Im2colNS int64
	// ConvertNS is wall time inside precision conversions — the binary16
	// packing/unpacking of the mixed-precision path. Zero under F32.
	ConvertNS int64
	// ReduceNS is wall time inside the gradient-reduction arithmetic.
	ReduceNS int64
	// CodecNS is wall time inside payload codec transforms.
	CodecNS int64
	// OtherNS is the unattributed remainder of the step window.
	OtherNS int64
	// WallNS is the measured step wall time, the sum of the six phases.
	WallNS int64
}

// Add accumulates o into p.
func (p *ProfileStats) Add(o ProfileStats) {
	p.GemmNS += o.GemmNS
	p.Im2colNS += o.Im2colNS
	p.ConvertNS += o.ConvertNS
	p.ReduceNS += o.ReduceNS
	p.CodecNS += o.CodecNS
	p.OtherNS += o.OtherNS
	p.WallNS += o.WallNS
}

// Accounted returns the sum of the six phase buckets, which equals WallNS.
func (p ProfileStats) Accounted() int64 {
	return p.GemmNS + p.Im2colNS + p.ConvertNS + p.ReduceNS + p.CodecNS + p.OtherNS
}

// Share returns ns as a fraction of the wall time (0 when nothing ran).
func (p ProfileStats) Share(ns int64) float64 {
	if p.WallNS == 0 {
		return 0
	}
	return float64(ns) / float64(p.WallNS)
}

// String renders the phase shares as a compact report line.
func (p ProfileStats) String() string {
	return fmt.Sprintf("wall=%.1fms gemm=%.1f%% im2col=%.1f%% convert=%.1f%% reduce=%.1f%% codec=%.1f%% other=%.1f%%",
		float64(p.WallNS)/1e6,
		100*p.Share(p.GemmNS), 100*p.Share(p.Im2colNS), 100*p.Share(p.ConvertNS),
		100*p.Share(p.ReduceNS), 100*p.Share(p.CodecNS), 100*p.Share(p.OtherNS))
}

// profileDelta converts a pair of profiler snapshots into ProfileStats:
// the per-phase deltas plus the unattributed remainder of the window. The
// profiler's exclusive attribution guarantees the deltas never exceed the
// window, so OtherNS is non-negative.
func profileDelta(base [kernel.NumPhases]int64, startNS int64) ProfileStats {
	acc, now := kernel.ProfileSnapshot()
	p := ProfileStats{
		GemmNS:    acc[kernel.PhaseGemm] - base[kernel.PhaseGemm],
		Im2colNS:  acc[kernel.PhaseIm2col] - base[kernel.PhaseIm2col],
		ConvertNS: acc[kernel.PhaseConvert] - base[kernel.PhaseConvert],
		ReduceNS:  acc[kernel.PhaseReduce] - base[kernel.PhaseReduce],
		CodecNS:   acc[kernel.PhaseCodec] - base[kernel.PhaseCodec],
		WallNS:    now - startNS,
	}
	if other := p.WallNS - (p.GemmNS + p.Im2colNS + p.ConvertNS + p.ReduceNS + p.CodecNS); other > 0 {
		p.OtherNS = other
	}
	return p
}
