package dist_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// stepOnce runs one full training step on the engine: gradient, a toy
// weight update so successive steps differ, and the weight broadcast.
func stepOnce(t *testing.T, e *dist.Engine, x *tensor.Tensor, labels []int) float64 {
	t.Helper()
	loss, err := e.ComputeGradient(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range e.Master().Params() {
		p.W.Axpy(-0.05, p.G)
	}
	if err := e.BroadcastWeights(); err != nil {
		t.Fatal(err)
	}
	return loss
}

// TestEvictionRebalanceIdentity is the elastic determinism contract at
// engine level: after a persistently dead worker is evicted, every
// subsequent step is bit-identical to a fresh P−1 engine started from the
// rebalanced weights — the eviction left no numerical trace beyond the
// world size.
func TestEvictionRebalanceIdentity(t *testing.T) {
	x, labels, factory := testTask(64)
	plan := &dist.FaultPlan{Dead: map[int]int64{2: 2}}
	elastic := newEngine(dist.Config{
		Algo: dist.Ring, Faults: plan, Elastic: &dist.Elastic{EvictAfter: 2},
	}, 4, factory)
	defer elastic.Close()

	// Steps 0-1 healthy, steps 2-3 with worker 2 dead (failed recoveries),
	// eviction at the end of step 3.
	for step := 0; step < 4; step++ {
		stepOnce(t, elastic, x, labels)
	}
	if got := elastic.LiveWorkers(); got != 3 {
		t.Fatalf("world size after eviction = %d, want 3", got)
	}
	if got := elastic.Shards(); got != 3 {
		t.Fatalf("shard count after eviction = %d, want 3 (world-tracking split)", got)
	}

	// A fresh 3-worker engine seeded from the rebalanced weights.
	replicas := make([]*nn.Network, 3)
	for i := range replicas {
		replicas[i] = factory(100 + uint64(i)*7919)
	}
	replicas[0].CopyWeightsFrom(elastic.Master())
	fresh := dist.NewEngine(dist.Config{Algo: dist.Ring}, replicas)
	defer fresh.Close()

	for step := 4; step < 8; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, fresh, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: degraded loss %v differs bitwise from fresh P-1 loss %v", step, gotLoss, wantLoss)
		}
		got, want := flatGrad(elastic), flatGrad(fresh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: grad coord %d differs between degraded and fresh P-1 run", step, i)
			}
		}
	}
}

// TestElasticBitIdenticalAcrossTopologies: the same fault plan and eviction
// policy produce bitwise-identical trajectories — and the same membership
// timeline — whichever topology carries the schedule.
func TestElasticBitIdenticalAcrossTopologies(t *testing.T) {
	x, labels, factory := testTask(64)
	hier := dist.NewHierarchy(2, 2)
	run := func(algo dist.Algorithm, topo *dist.Hierarchy) ([]float64, []float32, dist.MembershipStats) {
		e := newEngine(dist.Config{
			Algo: algo, Topology: topo,
			Faults:  &dist.FaultPlan{Seed: 5, DropRate: 0.2, StallRate: 0.2, Dead: map[int]int64{3: 1}},
			Elastic: &dist.Elastic{EvictAfter: 2},
		}, 4, factory)
		defer e.Close()
		var losses []float64
		for step := 0; step < 6; step++ {
			losses = append(losses, stepOnce(t, e, x, labels))
		}
		return losses, flatGrad(e), e.Membership()
	}
	refLoss, refGrad, refM := run(dist.Central, nil)
	for _, variant := range []struct {
		name string
		algo dist.Algorithm
		topo *dist.Hierarchy
	}{{"tree", dist.Tree, nil}, {"ring", dist.Ring, nil}, {"hier", dist.Tree, &hier}} {
		losses, grad, m := run(variant.algo, variant.topo)
		for s := range refLoss {
			if losses[s] != refLoss[s] {
				t.Fatalf("%s: step %d loss differs bitwise across topologies", variant.name, s)
			}
		}
		for i := range refGrad {
			if grad[i] != refGrad[i] {
				t.Fatalf("%s: grad coord %d differs bitwise across topologies", variant.name, i)
			}
		}
		if m.Evictions != refM.Evictions || m.Timeline() != refM.Timeline() {
			t.Fatalf("%s: membership timeline %q (evictions %d) differs from %q (%d)",
				variant.name, m.Timeline(), m.Evictions, refM.Timeline(), refM.Evictions)
		}
	}
	if refM.Evictions != 1 {
		t.Fatalf("expected exactly one eviction, got %d", refM.Evictions)
	}
}

// TestHierarchyTierShrinkOnEviction: a node losing all its workers leaves
// the inter tier — post-eviction steps move no leader-exchange traffic and
// match the degraded closed form exactly.
func TestHierarchyTierShrinkOnEviction(t *testing.T) {
	x, labels, factory := testTask(64)
	h := dist.NewHierarchy(2, 2)
	e := newEngine(dist.Config{
		Topology: &h,
		Faults:   &dist.FaultPlan{Dead: map[int]int64{2: 1, 3: 1}},
		Elastic:  &dist.Elastic{EvictAfter: 2},
	}, 4, factory)
	defer e.Close()
	payload := int64(4 * factory(1).NumParams())

	// Both of node 1's workers die at step 1 and are evicted together at
	// the end of step 2, shrinking the inter tier from 2 nodes to 1.
	for step := 0; step < 3; step++ {
		stepOnce(t, e, x, labels)
	}
	if got := e.LiveWorkers(); got != 2 {
		t.Fatalf("world size = %d, want 2 (node 1 fully evicted)", got)
	}
	stepOnce(t, e, x, labels) // first clean step of the degraded fleet
	tiers := e.StepTierStats()
	if tiers.Inter != (dist.CommStats{}) {
		t.Fatalf("inter tier still carries traffic after its only peer node left: %+v", tiers.Inter)
	}
	want := comm.ExpectedDegradedTierStats(h, []int{2}, payload)
	if tiers != want {
		t.Fatalf("degraded tier stats %+v, want closed form %+v", tiers, want)
	}
}

// TestOverlapCoverMapRebuildAfterEviction: the overlap scheduler survives
// an eviction — the evicted replica's notify hook is unhooked, the bucket
// cover maps (which depend only on the parameter layout) stay valid, and
// the per-step countdowns rescale to the surviving shard count — so bucket
// reductions keep firing inside the backward pass with values bit-identical
// to the sequential degraded engine.
func TestOverlapCoverMapRebuildAfterEviction(t *testing.T) {
	x, labels, _ := testTask(60)
	// A convnet rather than the test MLP: its first conv is tiny, so most
	// buckets do not cover parameter 0 and stay overlap-eligible.
	factory := func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 4, InH: 8, InW: 8, Width: 4, Seed: seed})
	}
	n := factory(1).NumParams()
	mk := func(overlap bool) *dist.Engine {
		return newEngine(dist.Config{
			Algo: dist.Ring, BucketElems: n/4 + 1, Overlap: overlap,
			Faults:  &dist.FaultPlan{Dead: map[int]int64{1: 1}},
			Elastic: &dist.Elastic{EvictAfter: 1},
		}, 3, factory)
	}
	ov, seq := mk(true), mk(false)
	defer ov.Close()
	defer seq.Close()
	for step := 0; step < 5; step++ {
		ovLoss := stepOnce(t, ov, x, labels)
		seqLoss := stepOnce(t, seq, x, labels)
		if ovLoss != seqLoss {
			t.Fatalf("step %d: overlap loss %v differs from sequential %v", step, ovLoss, seqLoss)
		}
		got, want := flatGrad(ov), flatGrad(seq)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: overlap changed grad coord %d after eviction", step, i)
			}
		}
	}
	if ov.LiveWorkers() != 2 {
		t.Fatalf("world size = %d, want 2", ov.LiveWorkers())
	}
	post := ov.StepOverlapStats()
	if post.HiddenRounds == 0 {
		t.Fatalf("post-eviction overlap scheduler hid nothing: %+v", post)
	}
	if seqStats := seq.StepStats(); post.Rounds() != seqStats.Steps || post.TotalBytes() != seqStats.Bytes {
		t.Fatalf("post-eviction overlap split %+v does not cover the sequential schedule %+v", post, seqStats)
	}
}

// TestWorkerDeadErrorWithoutElasticity pins the no-forever-retry fix: with
// elasticity off, a permanently dead worker surfaces a typed error from the
// step loop instead of being recovered in place every step.
func TestWorkerDeadErrorWithoutElasticity(t *testing.T) {
	x, labels, factory := testTask(32)
	e := newEngine(dist.Config{
		Faults: &dist.FaultPlan{Dead: map[int]int64{1: 2}},
	}, 2, factory)
	defer e.Close()
	for step := 0; step < 2; step++ {
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatalf("step %d before the death: %v", step, err)
		}
	}
	_, err := e.ComputeGradient(x, labels)
	var dead *dist.WorkerDeadError
	if !errors.As(err, &dead) {
		t.Fatalf("expected *WorkerDeadError at the death step, got %v", err)
	}
	if dead.Worker != 1 || dead.Step != 2 {
		t.Fatalf("WorkerDeadError{Worker: %d, Step: %d}, want worker 1 at step 2", dead.Worker, dead.Step)
	}
}

// TestHierarchyNodeDeadErrorWithoutElasticity is the whole-node variant of
// the no-forever-retry contract: when every worker of a hierarchy node dies
// with elasticity off, the step must surface the same typed *WorkerDeadError
// instead of the intra tier retrying forever for a leader that can never
// form. The goroutine-plus-timeout guard turns a regression back into a
// hang into a fast, explicit failure rather than a test-suite deadlock.
func TestHierarchyNodeDeadErrorWithoutElasticity(t *testing.T) {
	x, labels, factory := testTask(32)
	h := dist.NewHierarchy(2, 2)
	e := newEngine(dist.Config{
		Topology: &h,
		Faults:   &dist.FaultPlan{Dead: map[int]int64{2: 1, 3: 1}},
	}, 4, factory)
	defer e.Close()

	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatalf("healthy step 0: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := e.ComputeGradient(x, labels)
		done <- err
	}()
	select {
	case err := <-done:
		var dead *dist.WorkerDeadError
		if !errors.As(err, &dead) {
			t.Fatalf("expected *WorkerDeadError when node 1 died wholesale, got %v", err)
		}
		if dead.Step != 1 || (dead.Worker != 2 && dead.Worker != 3) {
			t.Fatalf("WorkerDeadError{Worker: %d, Step: %d}, want one of node 1's workers {2, 3} at step 1",
				dead.Worker, dead.Step)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("step with a wholly dead hierarchy node hung instead of returning *WorkerDeadError")
	}

	// The engine is still usable for inspection after the refusal: the
	// typed error is a report, not a crash.
	if got := e.LiveWorkers(); got != 4 {
		t.Fatalf("world size after refused step = %d, want 4 (nobody was evicted without Elastic)", got)
	}
}

// TestUnevenSpansRebalanceSmallWorld: rebalancing at small P with a batch
// that divides neither world size still satisfies the identity contract —
// data.Spans' uneven split after eviction matches a fresh small engine's.
func TestUnevenSpansRebalanceSmallWorld(t *testing.T) {
	x, labels, factory := testTask(50) // 50 rows: 17/17/16 at P=3, 25/25 at P=2
	elastic := newEngine(dist.Config{
		Algo: dist.Tree, Faults: &dist.FaultPlan{Dead: map[int]int64{2: 0}},
		Elastic: &dist.Elastic{EvictAfter: 1},
	}, 3, factory)
	defer elastic.Close()
	stepOnce(t, elastic, x, labels) // worker 2 dead at step 0, evicted immediately

	replicas := make([]*nn.Network, 2)
	for i := range replicas {
		replicas[i] = factory(100 + uint64(i)*7919)
	}
	replicas[0].CopyWeightsFrom(elastic.Master())
	fresh := dist.NewEngine(dist.Config{Algo: dist.Tree}, replicas)
	defer fresh.Close()
	for step := 0; step < 3; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, fresh, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: degraded loss differs from fresh P-1 on uneven spans", step)
		}
		got, want := flatGrad(elastic), flatGrad(fresh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: grad coord %d differs on uneven spans", step, i)
			}
		}
	}
}

// TestMembershipAccounting: MembershipStats counts evictions, rebalanced
// shards and resynchronization bytes, files every step under the world size
// it executed at, and the post-eviction schedule matches ExpectedStatsAt.
func TestMembershipAccounting(t *testing.T) {
	x, labels, factory := testTask(64)
	payload := int64(4 * factory(1).NumParams())
	e := newEngine(dist.Config{
		Algo: dist.Tree, Faults: &dist.FaultPlan{Dead: map[int]int64{3: 1}},
		Elastic: &dist.Elastic{EvictAfter: 2},
	}, 4, factory)
	defer e.Close()
	// Steps 0-2 at world 4 (dead at 1 and 2, evicted closing step 2),
	// steps 3-4 at world 3.
	for step := 0; step < 5; step++ {
		stepOnce(t, e, x, labels)
	}
	m := e.Membership()
	if m.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", m.Evictions)
	}
	if m.RebalancedShards != 1 {
		t.Fatalf("rebalanced shards = %d, want 1 (worker 3 owned one of four shards)", m.RebalancedShards)
	}
	// The resync broadcast ran tree-shaped at the new world size 3:
	// (P−1) copies of the full weight payload.
	if want := 2 * payload; m.RebalancedBytes != want {
		t.Fatalf("rebalanced bytes = %d, want %d (tree broadcast at P=3)", m.RebalancedBytes, want)
	}
	if m.StepsAtWorld[4] != 3 || m.StepsAtWorld[3] != 2 {
		t.Fatalf("world histogram %v, want 3 steps at P=4 and 2 at P=3", m.StepsAtWorld)
	}
	if m.Steps() != e.Steps() {
		t.Fatalf("membership steps %d != engine steps %d", m.Steps(), e.Steps())
	}
	if got, want := m.Timeline(), "4x3 3x2"; got != want {
		t.Fatalf("timeline %q, want %q", got, want)
	}
	// A clean post-eviction step prices exactly like a fresh P−1 fleet.
	if got, want := e.StepStats(), comm.ExpectedStatsAt(dist.Tree, 4, 1, payload); got != want {
		t.Fatalf("post-eviction step stats %+v, want ExpectedStatsAt %+v", got, want)
	}
	sm := e.StepMembership()
	if sm.Evictions != 0 || sm.StepsAtWorld[3] != 1 {
		t.Fatalf("step membership %+v, want one clean step at world 3", sm)
	}
}

// TestEvictionStepAccountsResync: the step that closes with an eviction
// carries the resynchronization broadcast in its StepStats and reports the
// eviction in StepMembership.
func TestEvictionStepAccountsResync(t *testing.T) {
	x, labels, factory := testTask(64)
	payload := int64(4 * factory(1).NumParams())
	e := newEngine(dist.Config{
		Algo: dist.Tree, Faults: &dist.FaultPlan{Dead: map[int]int64{2: 0}},
		Elastic: &dist.Elastic{EvictAfter: 1},
	}, 3, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	sm := e.StepMembership()
	if sm.Evictions != 1 || sm.RebalancedBytes == 0 {
		t.Fatalf("eviction step membership %+v, want 1 eviction with resync bytes", sm)
	}
	// Reduce at nominal world 3 minus the dead sender's share, plus its
	// failed-recovery resend, plus the post-eviction resync broadcast at
	// world 2 — the broadcast part must be visible in the step counters.
	step := e.StepStats()
	resync := dist.BroadcastSchedule(dist.Tree, 2, payload)
	if step.Bytes < resync.Bytes {
		t.Fatalf("step bytes %d do not even cover the resync broadcast %d", step.Bytes, resync.Bytes)
	}
	if sm.RebalancedBytes != resync.Bytes {
		t.Fatalf("rebalanced bytes %d, want the P=2 tree broadcast %d", sm.RebalancedBytes, resync.Bytes)
	}
}

// TestPinnedShardsStayPinnedAcrossEviction: an explicitly pinned Shards —
// even one equal to the worker count — must not be un-pinned by an
// eviction: the shard split (and with it every reduced bit) stays exactly
// what the pin promised, and only the shard→worker assignment rebalances.
func TestPinnedShardsStayPinnedAcrossEviction(t *testing.T) {
	x, labels, factory := testTask(64)
	elastic := newEngine(dist.Config{
		Algo: dist.Ring, Shards: 4,
		Faults:  &dist.FaultPlan{Dead: map[int]int64{2: 1}},
		Elastic: &dist.Elastic{EvictAfter: 1},
	}, 4, factory)
	defer elastic.Close()
	clean := newEngine(dist.Config{Algo: dist.Ring, Shards: 4}, 4, factory)
	defer clean.Close()
	for step := 0; step < 4; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, clean, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: pinned-shard degraded loss differs from the clean pinned run", step)
		}
		got, want := flatGrad(elastic), flatGrad(clean)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: eviction changed grad coord %d despite the pinned shard split", step, i)
			}
		}
	}
	if elastic.LiveWorkers() != 3 || elastic.Shards() != 4 {
		t.Fatalf("world %d shards %d, want the world to shrink to 3 with the split pinned at 4",
			elastic.LiveWorkers(), elastic.Shards())
	}
}

// TestCodecSlotsStableAcrossEviction: a slot-keyed codec (1-bit error
// feedback) pins the shard split across evictions, so no residual is ever
// applied to a different shard's data — the degraded run stays bit-identical
// to a clean run with the same codec and split.
func TestCodecSlotsStableAcrossEviction(t *testing.T) {
	x, labels, factory := testTask(60)
	mk := func(faulty bool) *dist.Engine {
		cfg := dist.Config{Algo: dist.Central, Codec: dist.NewOneBitCodec()}
		if faulty {
			cfg.Faults = &dist.FaultPlan{Dead: map[int]int64{2: 1}}
			cfg.Elastic = &dist.Elastic{EvictAfter: 1}
		}
		return newEngine(cfg, 3, factory)
	}
	elastic, clean := mk(true), mk(false)
	defer elastic.Close()
	defer clean.Close()
	for step := 0; step < 5; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, clean, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: eviction perturbed the 1-bit error-feedback trajectory", step)
		}
		got, want := flatGrad(elastic), flatGrad(clean)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: codec residual remapped across the eviction (grad coord %d)", step, i)
			}
		}
	}
	if elastic.LiveWorkers() != 2 || elastic.Shards() != 3 {
		t.Fatalf("world %d shards %d, want world 2 with the codec-pinned split at 3",
			elastic.LiveWorkers(), elastic.Shards())
	}
}
