package dist_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
)

// TestJoinRebalanceIdentity is the elastic scale-up contract at engine
// level, the mirror of TestEvictionRebalanceIdentity: after a fresh worker
// joins, every subsequent step — including the join step itself — is
// bit-identical to a fresh P+1 engine started from the broadcast weights.
func TestJoinRebalanceIdentity(t *testing.T) {
	x, labels, factory := testTask(64)
	plan := &dist.FaultPlan{Join: map[int]int64{3: 3}}
	elastic := newEngine(dist.Config{
		Algo: dist.Ring, Faults: plan, Elastic: &dist.Elastic{},
	}, 4, factory)
	defer elastic.Close()

	if got := elastic.LiveWorkers(); got != 3 {
		t.Fatalf("world size before the join = %d, want 3 (worker 3 pending)", got)
	}
	if got := elastic.Shards(); got != 3 {
		t.Fatalf("shard count before the join = %d, want 3 (world-tracking split)", got)
	}
	// Steps 0-2 at world 3; worker 3 is admitted at the step-3 boundary.
	for step := 0; step < 3; step++ {
		stepOnce(t, elastic, x, labels)
	}

	// A fresh 4-worker engine seeded from the weights the admission
	// broadcast will distribute (the master's, at the join boundary).
	replicas := make([]*nn.Network, 4)
	for i := range replicas {
		replicas[i] = factory(100 + uint64(i)*7919)
	}
	replicas[0].CopyWeightsFrom(elastic.Master())
	fresh := dist.NewEngine(dist.Config{Algo: dist.Ring}, replicas)
	defer fresh.Close()

	for step := 3; step < 7; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, fresh, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: grown loss %v differs bitwise from fresh P+1 loss %v", step, gotLoss, wantLoss)
		}
		got, want := flatGrad(elastic), flatGrad(fresh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: grad coord %d differs between grown and fresh P+1 run", step, i)
			}
		}
	}
	if elastic.LiveWorkers() != 4 || elastic.Shards() != 4 {
		t.Fatalf("world %d shards %d after the join, want 4 and 4", elastic.LiveWorkers(), elastic.Shards())
	}
	m := elastic.Membership()
	if m.Joins != 1 || m.Evictions != 0 {
		t.Fatalf("joins = %d evictions = %d, want exactly one join", m.Joins, m.Evictions)
	}
	if m.JoinedShards != 1 {
		t.Fatalf("joined shards = %d, want 1 (worker 3 owns one of four shards)", m.JoinedShards)
	}
	if got, want := m.Timeline(), "4x4 3x3"; got != want {
		t.Fatalf("timeline %q, want %q", got, want)
	}
	if got, want := m.EventTimeline(), "+3@3"; got != want {
		t.Fatalf("event timeline %q, want %q", got, want)
	}
}

// TestRejoinAfterEvictionIdentity: a preempted worker that was already
// evicted returns — the full preemptible-node round trip. Post-rejoin
// steps are bit-identical to a fresh engine at the restored world size,
// and the clean post-rejoin schedule matches ExpectedStatsAt with a
// negative eviction count (the grown-world closed form).
func TestRejoinAfterEvictionIdentity(t *testing.T) {
	x, labels, factory := testTask(64)
	payload := int64(4 * factory(1).NumParams())
	elastic := newEngine(dist.Config{
		Algo:    dist.Tree,
		Faults:  &dist.FaultPlan{Dead: map[int]int64{3: 1}, Join: map[int]int64{3: 5}},
		Elastic: &dist.Elastic{EvictAfter: 2},
	}, 4, factory)
	defer elastic.Close()

	// Steps 0-2 at world 4 (dead at 1 and 2, evicted closing step 2),
	// steps 3-4 at world 3, rejoin at the step-5 boundary.
	for step := 0; step < 5; step++ {
		stepOnce(t, elastic, x, labels)
	}
	if got := elastic.LiveWorkers(); got != 3 {
		t.Fatalf("world size before the rejoin = %d, want 3", got)
	}

	replicas := make([]*nn.Network, 4)
	for i := range replicas {
		replicas[i] = factory(200 + uint64(i)*7919)
	}
	replicas[0].CopyWeightsFrom(elastic.Master())
	fresh := dist.NewEngine(dist.Config{Algo: dist.Tree}, replicas)
	defer fresh.Close()

	for step := 5; step < 9; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, fresh, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: rejoined loss differs bitwise from fresh restored-world loss", step)
		}
		got, want := flatGrad(elastic), flatGrad(fresh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: grad coord %d differs after the rejoin", step, i)
			}
		}
	}
	// Steps 6-8 were clean steps at the restored world 4: the measured
	// schedule is the grown-world closed form (one worker "evicted" from a
	// notional world of 3 — i.e. evicted = −1).
	if got, want := elastic.StepStats(), comm.ExpectedStatsAt(dist.Tree, 3, -1, payload); got != want {
		t.Fatalf("post-rejoin step stats %+v, want grown-world closed form %+v", got, want)
	}
	m := elastic.Membership()
	if m.Evictions != 1 || m.Joins != 1 {
		t.Fatalf("evictions = %d joins = %d, want one of each", m.Evictions, m.Joins)
	}
	if got, want := m.EventTimeline(), "-3@3 +3@5"; got != want {
		t.Fatalf("event timeline %q, want %q", got, want)
	}
	if got, want := m.Timeline(), "4x7 3x2"; got != want {
		t.Fatalf("timeline %q, want %q (steps 0-2 and 5-8 at P=4, 3-4 at P=3)", got, want)
	}
}

// TestGrowShrinkGrowClosedForms walks a full grow-shrink-grow membership
// timeline and checks that comm's one closed form — ExpectedStatsAt with
// positive, zero and negative eviction counts — matches the measured step
// counters exactly at every world size, and that the membership histogram
// stays consistent throughout.
func TestGrowShrinkGrowClosedForms(t *testing.T) {
	x, labels, factory := testTask(80)
	payload := int64(4 * factory(1).NumParams())
	e := newEngine(dist.Config{
		Algo: dist.Tree,
		Faults: &dist.FaultPlan{
			Dead: map[int]int64{1: 4},
			Join: map[int]int64{1: 7, 4: 2},
		},
		Elastic: &dist.Elastic{EvictAfter: 1},
	}, 5, factory)
	defer e.Close()

	// Worlds by step: 0-1 at 4 (worker 4 pending), 2-3 at 5 (worker 4
	// joined), 4 at 5 with worker 1 dead (evicted closing step 4), 5-6 at
	// 4, 7-9 at 5 again (worker 1 rejoined). Clean steps measure the pure
	// schedule; the closed form is phrased from the 5-replica fleet, so
	// a world of w is "5−w evicted" — negative once joins outgrow it.
	wantWorld := map[int64]int{1: 4, 3: 5, 6: 4, 9: 5}
	for step := int64(0); step < 10; step++ {
		stepOnce(t, e, x, labels)
		w, check := wantWorld[step]
		if !check {
			continue
		}
		if got := e.LiveWorkers(); got != w {
			t.Fatalf("step %d: world %d, want %d", step, got, w)
		}
		if got, want := e.StepStats(), comm.ExpectedStatsAt(dist.Tree, 5, 5-w, payload); got != want {
			t.Fatalf("step %d (world %d): step stats %+v, want closed form %+v", step, w, got, want)
		}
	}
	// The grown-world closed form is the full-strength schedule at p+|k|.
	if got, want := comm.ExpectedStatsAt(dist.Tree, 4, -1, payload), comm.ExpectedStats(dist.Tree, 5, payload); got != want {
		t.Fatalf("ExpectedStatsAt(4, -1) = %+v, want ExpectedStats(5) = %+v", got, want)
	}
	m := e.Membership()
	if m.Joins != 2 || m.Evictions != 1 {
		t.Fatalf("joins = %d evictions = %d, want 2 and 1", m.Joins, m.Evictions)
	}
	if got, want := m.EventTimeline(), "+4@2 -1@5 +1@7"; got != want {
		t.Fatalf("event timeline %q, want %q", got, want)
	}
	if got, want := m.Timeline(), "5x6 4x4"; got != want {
		t.Fatalf("timeline %q, want %q", got, want)
	}
	if m.Steps() != e.Steps() {
		t.Fatalf("membership steps %d != engine steps %d", m.Steps(), e.Steps())
	}
}

// TestJoinStepAccountsWarmStart: the step that opens with an admission
// carries the warm-start broadcast in its StepStats — priced at the grown
// world size — and reports the join in StepMembership.
func TestJoinStepAccountsWarmStart(t *testing.T) {
	x, labels, factory := testTask(64)
	payload := int64(4 * factory(1).NumParams())
	e := newEngine(dist.Config{
		Algo: dist.Tree, Faults: &dist.FaultPlan{Join: map[int]int64{2: 1}},
		Elastic: &dist.Elastic{},
	}, 3, factory)
	defer e.Close()
	stepOnce(t, e, x, labels) // step 0 at world 2
	stepOnce(t, e, x, labels) // step 1: join, then compute at world 3
	sm := e.StepMembership()
	if sm.Joins != 1 || sm.JoinedBytes == 0 {
		t.Fatalf("join step membership %+v, want 1 join with warm-start bytes", sm)
	}
	warm := dist.BroadcastSchedule(dist.Tree, 3, payload)
	if sm.JoinedBytes != warm.Bytes {
		t.Fatalf("joined bytes %d, want the P=3 tree broadcast %d (grown world size)", sm.JoinedBytes, warm.Bytes)
	}
	// The join step's total = the full-strength P=3 allreduce plus the
	// extra warm-start broadcast.
	var want dist.CommStats
	want.Add(comm.ExpectedStats(dist.Tree, 3, payload))
	want.Add(warm)
	if got := e.StepStats(); got != want {
		t.Fatalf("join step stats %+v, want schedule-plus-warm-start %+v", got, want)
	}
	if sm.StepsAtWorld[3] != 1 {
		t.Fatalf("join step filed under %v, want one step at world 3", sm.StepsAtWorld)
	}
}

// TestHierarchyNodeRejoinRestoresInterTier: a node that emptied out of the
// inter tier returns when its workers rejoin — leadership restores to the
// lowest live index, the restored per-tier schedule equals the
// full-strength closed form exactly, and post-rejoin values are
// bit-identical to a fresh full-hierarchy engine started from the
// broadcast weights.
func TestHierarchyNodeRejoinRestoresInterTier(t *testing.T) {
	x, labels, factory := testTask(64)
	h := dist.NewHierarchy(2, 2)
	payload := int64(4 * factory(1).NumParams())
	e := newEngine(dist.Config{
		Topology: &h,
		Faults:   &dist.FaultPlan{Dead: map[int]int64{2: 1, 3: 1}, Join: map[int]int64{2: 5, 3: 5}},
		Elastic:  &dist.Elastic{EvictAfter: 2},
	}, 4, factory)
	defer e.Close()

	// Node 1 dies at step 1 and leaves the inter tier at the end of step
	// 2; both members return at the step-5 boundary.
	for step := 0; step < 4; step++ {
		stepOnce(t, e, x, labels)
	}
	if got := e.LiveWorkers(); got != 2 {
		t.Fatalf("world size with node 1 evicted = %d, want 2", got)
	}
	if tiers := e.StepTierStats(); tiers.Inter != (dist.CommStats{}) {
		t.Fatalf("inter tier still carries traffic while node 1 is gone: %+v", tiers.Inter)
	}
	stepOnce(t, e, x, labels) // step 4, still degraded

	// Seed a fresh full-hierarchy engine from the weights the warm-start
	// broadcast will distribute at the step-5 join boundary: the master's
	// post-step-4 weights.
	replicas := make([]*nn.Network, 4)
	for i := range replicas {
		replicas[i] = factory(300 + uint64(i)*7919)
	}
	replicas[0].CopyWeightsFrom(e.Master())
	fresh := dist.NewEngine(dist.Config{Topology: &h}, replicas)
	defer fresh.Close()

	for step := 5; step < 8; step++ {
		gotLoss := stepOnce(t, e, x, labels)
		wantLoss := stepOnce(t, fresh, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: restored-hierarchy loss differs bitwise from the fresh full hierarchy", step)
		}
		got, want := flatGrad(e), flatGrad(fresh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: grad coord %d differs after the node rejoined", step, i)
			}
		}
	}
	if got := e.LiveWorkers(); got != 4 {
		t.Fatalf("world size after the node rejoined = %d, want 4", got)
	}
	// The restored fleet's per-tier schedule is exactly the full-strength
	// closed form — and the degraded closed form at restored sizes agrees.
	tiers := e.StepTierStats()
	if want := comm.ExpectedTierStats(h, payload); tiers != want {
		t.Fatalf("restored tier stats %+v, want full-strength closed form %+v", tiers, want)
	}
	if want := comm.ExpectedDegradedTierStats(h, []int{2, 2}, payload); tiers != want {
		t.Fatalf("restored tier stats %+v, want degraded closed form at restored sizes %+v", tiers, want)
	}
}

// TestOverlapRescaleAfterJoin: the overlap scheduler survives an admission
// — the joiner's notify hook is installed, the bucket cover maps stay
// valid, and the per-step countdowns rescale to the grown shard count — so
// bucket reductions keep firing inside the backward pass with values
// bit-identical to the sequential grown engine.
func TestOverlapRescaleAfterJoin(t *testing.T) {
	x, labels, _ := testTask(60)
	factory := func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 4, InH: 8, InW: 8, Width: 4, Seed: seed})
	}
	n := factory(1).NumParams()
	mk := func(overlap bool) *dist.Engine {
		return newEngine(dist.Config{
			Algo: dist.Ring, BucketElems: n/4 + 1, Overlap: overlap,
			Faults:  &dist.FaultPlan{Join: map[int]int64{2: 2}},
			Elastic: &dist.Elastic{},
		}, 3, factory)
	}
	ov, seq := mk(true), mk(false)
	defer ov.Close()
	defer seq.Close()
	for step := 0; step < 5; step++ {
		ovLoss := stepOnce(t, ov, x, labels)
		seqLoss := stepOnce(t, seq, x, labels)
		if ovLoss != seqLoss {
			t.Fatalf("step %d: overlap loss %v differs from sequential %v", step, ovLoss, seqLoss)
		}
		got, want := flatGrad(ov), flatGrad(seq)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: overlap changed grad coord %d after the join", step, i)
			}
		}
	}
	if ov.LiveWorkers() != 3 {
		t.Fatalf("world size = %d, want 3 after the join", ov.LiveWorkers())
	}
	post := ov.StepOverlapStats()
	if post.HiddenRounds == 0 {
		t.Fatalf("post-join overlap scheduler hid nothing: %+v", post)
	}
	if seqStats := seq.StepStats(); post.Rounds() != seqStats.Steps || post.TotalBytes() != seqStats.Bytes {
		t.Fatalf("post-join overlap split %+v does not cover the sequential schedule %+v", post, seqStats)
	}
}

// TestSuspectedReturnResyncs: a worker whose outage ends before the evict
// threshold fires returns to the collective with a resynchronizing
// broadcast — without it, the broadcasts it missed while suspected would
// leave it computing on stale weights. The whole run stays bit-identical
// to a clean engine (the world-tracking split never moved: the worker was
// suspected, not evicted).
func TestSuspectedReturnResyncs(t *testing.T) {
	x, labels, factory := testTask(48)
	elastic := newEngine(dist.Config{
		Algo:    dist.Ring,
		Faults:  &dist.FaultPlan{Dead: map[int]int64{1: 1}, Join: map[int]int64{1: 3}},
		Elastic: &dist.Elastic{EvictAfter: 5},
	}, 3, factory)
	defer elastic.Close()
	clean := newEngine(dist.Config{Algo: dist.Ring}, 3, factory)
	defer clean.Close()
	for step := 0; step < 6; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, clean, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: suspected-return run diverged from the clean run", step)
		}
		got, want := flatGrad(elastic), flatGrad(clean)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: grad coord %d diverged across the suspected return", step, i)
			}
		}
	}
	m := elastic.Membership()
	if m.Evictions != 0 || m.Joins != 1 {
		t.Fatalf("evictions = %d joins = %d, want a return with no eviction", m.Evictions, m.Joins)
	}
	if elastic.LiveWorkers() != 3 || elastic.Shards() != 3 {
		t.Fatalf("world %d shards %d, want 3 and 3 throughout", elastic.LiveWorkers(), elastic.Shards())
	}
}

// TestCodecSlotsStableAcrossJoin: a slot-keyed codec (1-bit error
// feedback) pins the shard split across joins exactly as it does across
// evictions — the admission only reassigns owners, so no residual is ever
// applied to a different shard's data and the grown run stays
// bit-identical to a clean run with the same codec and split.
func TestCodecSlotsStableAcrossJoin(t *testing.T) {
	x, labels, factory := testTask(60)
	mk := func(joining bool) *dist.Engine {
		cfg := dist.Config{Algo: dist.Central, Codec: dist.NewOneBitCodec()}
		if joining {
			cfg.Faults = &dist.FaultPlan{Join: map[int]int64{2: 2}}
			cfg.Elastic = &dist.Elastic{}
		}
		return newEngine(cfg, 3, factory)
	}
	elastic, clean := mk(true), mk(false)
	defer elastic.Close()
	defer clean.Close()
	if got := elastic.Shards(); got != 3 {
		t.Fatalf("codec run shards = %d before the join, want the pinned 3", got)
	}
	for step := 0; step < 5; step++ {
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, clean, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("step %d: join perturbed the 1-bit error-feedback trajectory", step)
		}
		got, want := flatGrad(elastic), flatGrad(clean)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: codec residual remapped across the join (grad coord %d)", step, i)
			}
		}
	}
	if elastic.LiveWorkers() != 3 || elastic.Shards() != 3 {
		t.Fatalf("world %d shards %d, want world 3 with the codec-pinned split still at 3",
			elastic.LiveWorkers(), elastic.Shards())
	}

	// Negative control: without the codec the default split does grow —
	// the pin above is a codec property, not a blanket rule.
	control := newEngine(dist.Config{
		Algo:    dist.Central,
		Faults:  &dist.FaultPlan{Join: map[int]int64{2: 2}},
		Elastic: &dist.Elastic{},
	}, 3, factory)
	defer control.Close()
	if got := control.Shards(); got != 2 {
		t.Fatalf("default split shards = %d before the join, want 2", got)
	}
	stepOnce(t, control, x, labels)
	stepOnce(t, control, x, labels)
	stepOnce(t, control, x, labels) // step 2 admits the joiner at its boundary
	if got := control.Shards(); got != 3 {
		t.Fatalf("default split shards = %d after the join, want 3 (world-tracking split grows)", got)
	}
}

// TestJoinPlanValidation: NewEngine rejects join plans that cannot mean
// anything — joins without Elastic, joins of the master, out-of-range
// workers, step-0 joins, and a same-step death-and-join.
func TestJoinPlanValidation(t *testing.T) {
	_, _, factory := testTask(8)
	replicas := func(n int) []*nn.Network {
		out := make([]*nn.Network, n)
		for i := range out {
			out[i] = factory(1 + uint64(i))
		}
		return out
	}
	cases := []struct {
		name string
		cfg  dist.Config
	}{
		{"join without elastic", dist.Config{Faults: &dist.FaultPlan{Join: map[int]int64{1: 2}}}},
		{"join of the master", dist.Config{Faults: &dist.FaultPlan{Join: map[int]int64{0: 2}}, Elastic: &dist.Elastic{}}},
		{"join out of range", dist.Config{Faults: &dist.FaultPlan{Join: map[int]int64{7: 2}}, Elastic: &dist.Elastic{}}},
		{"join at step 0", dist.Config{Faults: &dist.FaultPlan{Join: map[int]int64{1: 0}}, Elastic: &dist.Elastic{}}},
		{"dead and joining at the same step", dist.Config{
			Faults:  &dist.FaultPlan{Dead: map[int]int64{1: 3}, Join: map[int]int64{1: 3}},
			Elastic: &dist.Elastic{},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEngine accepted an invalid join plan (%s)", tc.name)
				}
			}()
			e := dist.NewEngine(tc.cfg, replicas(2))
			e.Close()
		})
	}
}
