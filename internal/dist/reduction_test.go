package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// TestReduceWithPairwiseIdenticalAcrossAlgorithms: the pairwise-f32 policy
// keeps the collective's core contract — topology choice is pure
// accounting, the reduced bits are identical under all three algorithms.
func TestReduceWithPairwiseIdenticalAcrossAlgorithms(t *testing.T) {
	const workers, n = 6, 5000
	mkBufs := func() [][]float32 {
		r := rng.New(5)
		bufs := make([][]float32, workers)
		for w := range bufs {
			bufs[w] = make([]float32, n)
			for i := range bufs[w] {
				bufs[w][i] = r.NormFloat32()
			}
		}
		return bufs
	}
	var ref []float32
	for _, algo := range algorithms {
		bufs := mkBufs()
		dist.ReduceWith(algo, dist.PairwiseF32, bufs, nil)
		if ref == nil {
			ref = bufs[0]
			continue
		}
		for i := range ref {
			if bufs[0][i] != ref[i] {
				t.Fatalf("%v: pairwise reduction differs at coord %d", algo, i)
			}
		}
	}
	// And it is a different rounding than canonical (the policies are
	// distinct arithmetics, not aliases).
	bufs := mkBufs()
	dist.ReduceWith(dist.Central, dist.CanonicalF64, bufs, nil)
	same := true
	for i := range ref {
		if bufs[0][i] != ref[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pairwise-f32 and canonical-f64 agree bitwise on random data — policy plumbing is vacuous")
	}
}

// TestPairwiseGradientIndependentOfWorkerCount extends the engine's
// reproducibility contract to the pairwise policy: with the shard count
// pinned, the physical worker count does not change a bit.
func TestPairwiseGradientIndependentOfWorkerCount(t *testing.T) {
	x, labels, factory := testTask(64)
	const shards = 4
	var refGrad []float32
	var refLoss float64
	for _, workers := range []int{1, 2, 4} {
		e := newEngine(dist.Config{Algo: dist.Ring, Shards: shards, Reduction: dist.PairwiseF32}, workers, factory)
		loss, err := e.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		grad := flatGrad(e)
		e.Close()
		if refGrad == nil {
			refGrad, refLoss = grad, loss
			continue
		}
		if loss != refLoss {
			t.Fatalf("W=%d: loss %v differs bitwise from W=1's %v", workers, loss, refLoss)
		}
		for i := range grad {
			if grad[i] != refGrad[i] {
				t.Fatalf("W=%d: pairwise grad coord %d differs bitwise from W=1", workers, i)
			}
		}
	}
}

// TestPairwiseBitIdenticalAcrossTopologiesBucketsOverlap: under the
// pairwise policy one shard split reduces to the same bits whatever the
// topology, the bucket layout, or whether the reductions fire inside the
// backward pass — the full invariance matrix of the acceptance criteria.
func TestPairwiseBitIdenticalAcrossTopologiesBucketsOverlap(t *testing.T) {
	x, labels, factory := testTask(64)
	hier := dist.NewHierarchy(2, 2)
	configs := []struct {
		label   string
		workers int
		cfg     dist.Config
	}{
		{"flat central", 4, dist.Config{Algo: dist.Central, Shards: 4, Reduction: dist.PairwiseF32}},
		{"flat tree", 4, dist.Config{Algo: dist.Tree, Shards: 4, Reduction: dist.PairwiseF32}},
		{"flat ring", 4, dist.Config{Algo: dist.Ring, Shards: 4, Reduction: dist.PairwiseF32}},
		{"hierarchical", 4, dist.Config{Topology: &hier, Shards: 4, Reduction: dist.PairwiseF32}},
		{"two workers", 2, dist.Config{Algo: dist.Ring, Shards: 4, Reduction: dist.PairwiseF32}},
		{"small buckets", 4, dist.Config{Algo: dist.Ring, Shards: 4, BucketElems: 33, Reduction: dist.PairwiseF32}},
		{"overlap", 4, dist.Config{Algo: dist.Ring, Shards: 4, BucketElems: 64, Overlap: true, Reduction: dist.PairwiseF32}},
		{"overlap hier", 4, dist.Config{Topology: &hier, Shards: 4, BucketElems: 64, Overlap: true, Reduction: dist.PairwiseF32}},
	}
	var ref []float32
	for _, tc := range configs {
		e := newEngine(tc.cfg, tc.workers, factory)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		grad := flatGrad(e)
		e.Close()
		if ref == nil {
			ref = grad
			continue
		}
		for i := range grad {
			if grad[i] != ref[i] {
				t.Fatalf("%s: pairwise grad coord %d differs from reference config", tc.label, i)
			}
		}
	}
}

// TestPairwiseFaultRecoveryExact: fault injection stays value-free under
// the pairwise policy — a faulty run recovers to the bitwise result of a
// clean one, with only the schedule accounting differing.
func TestPairwiseFaultRecoveryExact(t *testing.T) {
	x, labels, factory := testTask(64)
	clean := newEngine(dist.Config{Algo: dist.Tree, Shards: 4, Reduction: dist.PairwiseF32}, 4, factory)
	if _, err := clean.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	want := flatGrad(clean)
	clean.Close()

	faulty := newEngine(dist.Config{
		Algo: dist.Tree, Shards: 4, Reduction: dist.PairwiseF32,
		Faults: &dist.FaultPlan{Seed: 9, DropRate: 0.5, StallRate: 0.5},
	}, 4, factory)
	defer faulty.Close()
	if _, err := faulty.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	got := flatGrad(faulty)
	if s := faulty.Stats(); s.Retries == 0 && s.Stalls == 0 {
		t.Fatal("fault plan injected nothing — the exactness check is vacuous")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("faulty pairwise run diverged at coord %d", i)
		}
	}
}

// TestProfileStatsSumToStepWall is the profiler's acceptance criterion:
// the five phase buckets of a profiled step sum exactly to the measured
// step wall time, and the compute phases are actually populated.
func TestProfileStatsSumToStepWall(t *testing.T) {
	x, labels, factory := testTask(64)
	e := newEngine(dist.Config{
		Algo: dist.Ring, Codec: dist.FP16Codec{}, Profile: true,
	}, 2, factory)
	defer e.Close()
	var cumulative dist.ProfileStats
	for step := 0; step < 3; step++ {
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatal(err)
		}
		if err := e.BroadcastWeights(); err != nil {
			t.Fatal(err)
		}
		p := e.StepProfile()
		if p.WallNS <= 0 {
			t.Fatalf("step %d: no wall time profiled: %+v", step, p)
		}
		if p.Accounted() != p.WallNS {
			t.Fatalf("step %d: phases sum to %d ns, wall is %d ns", step, p.Accounted(), p.WallNS)
		}
		if p.GemmNS <= 0 {
			t.Fatalf("step %d: GEMM phase empty: %+v", step, p)
		}
		if p.CodecNS <= 0 {
			t.Fatalf("step %d: codec phase empty despite fp16 codec: %+v", step, p)
		}
		if p.ReduceNS <= 0 {
			t.Fatalf("step %d: reduce phase empty: %+v", step, p)
		}
		cumulative.Add(p)
	}
	if e.Profile() != cumulative {
		t.Fatalf("cumulative profile %+v != sum of step profiles %+v", e.Profile(), cumulative)
	}
}

// TestProfileOffLeavesStatsZero: without Config.Profile the engine reports
// zero profiles and pays no accounting.
func TestProfileOffLeavesStatsZero(t *testing.T) {
	x, labels, factory := testTask(32)
	e := newEngine(dist.Config{Algo: dist.Ring}, 2, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	if e.Profile() != (dist.ProfileStats{}) || e.StepProfile() != (dist.ProfileStats{}) {
		t.Fatalf("unprofiled engine accumulated profile stats: %+v", e.Profile())
	}
}

// TestReductionString pins the flag/report names.
func TestReductionString(t *testing.T) {
	if dist.CanonicalF64.String() != "canonical-f64" || dist.PairwiseF32.String() != "pairwise-f32" {
		t.Fatalf("unexpected Reduction names: %v, %v", dist.CanonicalF64, dist.PairwiseF32)
	}
}

// TestCanonicalUnchangedBySeed guards the refactor onto the kernel layer:
// the default policy must still match the historical per-coordinate
// float64 loop bit for bit (the engine-level twin of the kernel's
// bit-compat test).
func TestCanonicalUnchangedBySeed(t *testing.T) {
	const workers, n = 5, 3000
	r := rng.New(8)
	bufs := make([][]float32, workers)
	want := make([]float64, n)
	for w := range bufs {
		bufs[w] = make([]float32, n)
		for i := range bufs[w] {
			bufs[w][i] = r.NormFloat32()
		}
	}
	for i := 0; i < n; i++ {
		acc := float64(bufs[0][i])
		for w := 1; w < workers; w++ {
			acc += float64(bufs[w][i])
		}
		want[i] = acc
	}
	dist.Reduce(dist.Tree, bufs, nil)
	for i := range want {
		if bufs[0][i] != float32(want[i]) {
			t.Fatalf("canonical reduction drifted from the seed semantics at coord %d", i)
		}
	}
}
