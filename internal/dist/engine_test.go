package dist_test

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// testTask builds a tiny classification batch and an MLP replica factory.
func testTask(batch int) (*tensor.Tensor, []int, func(seed uint64) *nn.Network) {
	ds := data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 256, TestSize: 64,
		C: 3, H: 8, W: 8, Noise: 0.25, MaxShift: 1, Seed: 7,
	})
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = i
	}
	x, labels := ds.Train.MustGather(idx)
	factory := func(seed uint64) *nn.Network {
		return models.NewMLP(models.MicroConfig{Classes: 4, InC: 3, InH: 8, InW: 8, Width: 4, Seed: seed})
	}
	return x, labels, factory
}

func newEngine(cfg dist.Config, workers int, factory func(uint64) *nn.Network) *dist.Engine {
	replicas := make([]*nn.Network, workers)
	for i := range replicas {
		replicas[i] = factory(1 + uint64(i)*7919)
	}
	return dist.NewEngine(cfg, replicas)
}

// flatGrad flattens the master's parameter gradients.
func flatGrad(e *dist.Engine) []float32 {
	var out []float32
	for _, p := range e.Master().Params() {
		out = append(out, p.G.Data...)
	}
	return out
}

// TestGradientIndependentOfWorkerCount is the engine's reproducibility
// contract: with the logical shard count pinned, the physical worker count
// does not change a single bit of the reduced gradient or the loss.
func TestGradientIndependentOfWorkerCount(t *testing.T) {
	x, labels, factory := testTask(64)
	const shards = 4
	var refGrad []float32
	var refLoss float64
	for _, workers := range []int{1, 2, 4} {
		e := newEngine(dist.Config{Algo: dist.Ring, Shards: shards}, workers, factory)
		loss, err := e.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		grad := flatGrad(e)
		e.Close()
		if refGrad == nil {
			refGrad, refLoss = grad, loss
			continue
		}
		if loss != refLoss {
			t.Fatalf("W=%d: loss %v differs bitwise from W=1's %v", workers, loss, refLoss)
		}
		for i := range grad {
			if grad[i] != refGrad[i] {
				t.Fatalf("W=%d: grad coord %d = %v differs bitwise from W=1's %v", workers, i, grad[i], refGrad[i])
			}
		}
	}
}

// TestGradientIdenticalAcrossAlgorithms: topology choice is pure cost
// accounting; the reduced gradient is bitwise the same.
func TestGradientIdenticalAcrossAlgorithms(t *testing.T) {
	x, labels, factory := testTask(64)
	var ref []float32
	for _, algo := range algorithms {
		e := newEngine(dist.Config{Algo: algo}, 4, factory)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatal(err)
		}
		grad := flatGrad(e)
		e.Close()
		if ref == nil {
			ref = grad
			continue
		}
		for i := range grad {
			if grad[i] != ref[i] {
				t.Fatalf("%v: grad coord %d differs across algorithms", algo, i)
			}
		}
	}
}

// TestEngineMatchesDirectComputation: a single-worker, single-shard engine
// reduces to plain forward/backward on the master network.
func TestEngineMatchesDirectComputation(t *testing.T) {
	x, labels, factory := testTask(32)
	e := newEngine(dist.Config{}, 1, factory)
	defer e.Close()
	gotLoss, err := e.ComputeGradient(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	got := flatGrad(e)

	net := factory(1)
	loss := &nn.SoftmaxCrossEntropy{}
	net.ZeroGrad()
	wantLoss := loss.Forward(net.Forward(x, true), labels)
	net.Backward(loss.Backward())
	var want []float32
	for _, p := range net.Params() {
		want = append(want, p.G.Data...)
	}
	if gotLoss != wantLoss {
		t.Fatalf("engine loss %v, direct %v", gotLoss, wantLoss)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grad coord %d: engine %v, direct %v", i, got[i], want[i])
		}
	}
}

// TestBucketingPreservesValuesAndScalesMessages: buckets multiply the
// collective count without touching the reduced values.
func TestBucketingPreservesValuesAndScalesMessages(t *testing.T) {
	x, labels, factory := testTask(64)
	whole := newEngine(dist.Config{Algo: dist.Tree}, 4, factory)
	if _, err := whole.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	wholeGrad := flatGrad(whole)
	wholeStep := whole.StepStats()
	whole.Close()

	n := len(wholeGrad)
	bucketed := newEngine(dist.Config{Algo: dist.Tree, BucketElems: n/3 + 1}, 4, factory)
	if _, err := bucketed.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	bGrad := flatGrad(bucketed)
	bStep := bucketed.StepStats()
	bucketed.Close()

	for i := range wholeGrad {
		if bGrad[i] != wholeGrad[i] {
			t.Fatalf("bucketing changed grad coord %d", i)
		}
	}
	if want := 3 * wholeStep.Messages; bStep.Messages != want {
		t.Fatalf("3 buckets moved %d messages, want %d", bStep.Messages, want)
	}
	if bStep.Bytes != wholeStep.Bytes {
		t.Fatalf("bucketing changed total bytes: %d vs %d", bStep.Bytes, wholeStep.Bytes)
	}
}

// TestStepStatsMatchExpected: one engine step's counters equal
// comm.ExpectedStats for the full gradient payload.
func TestStepStatsMatchExpected(t *testing.T) {
	x, labels, factory := testTask(64)
	payload := int64(4 * factory(1).NumParams())
	for _, algo := range algorithms {
		for _, workers := range []int{2, 3, 4, 8} {
			e := newEngine(dist.Config{Algo: algo}, workers, factory)
			if _, err := e.ComputeGradient(x, labels); err != nil {
				t.Fatal(err)
			}
			if err := e.BroadcastWeights(); err != nil {
				t.Fatal(err)
			}
			got := e.StepStats()
			e.Close()
			if want := comm.ExpectedStats(algo, workers, payload); got != want {
				t.Errorf("%v P=%d: step stats %+v, want %+v", algo, workers, got, want)
			}
		}
	}
}

// TestFaultInjectionRecoversDeterministically: a heavily faulty run must
// (a) be bitwise identical to a clean run in values, (b) record recovery
// traffic, and (c) reproduce its own stats exactly when repeated.
func TestFaultInjectionRecoversDeterministically(t *testing.T) {
	x, labels, factory := testTask(64)
	run := func(faults *dist.FaultPlan) ([]float32, float64, dist.CommStats) {
		e := newEngine(dist.Config{Algo: dist.Ring, Faults: faults}, 4, factory)
		defer e.Close()
		var loss float64
		var err error
		for step := 0; step < 5; step++ {
			loss, err = e.ComputeGradient(x, labels)
			if err != nil {
				t.Fatal(err)
			}
			// A toy update so successive steps see changed weights.
			for _, p := range e.Master().Params() {
				p.W.Axpy(-0.05, p.G)
			}
			if err := e.BroadcastWeights(); err != nil {
				t.Fatal(err)
			}
		}
		return flatGrad(e), loss, e.Stats()
	}
	cleanGrad, cleanLoss, cleanStats := run(nil)
	plan := &dist.FaultPlan{Seed: 9, DropRate: 0.5, StallRate: 0.5}
	faultGrad, faultLoss, faultStats := run(plan)
	if faultLoss != cleanLoss {
		t.Fatalf("faults changed the loss: %v vs %v", faultLoss, cleanLoss)
	}
	for i := range cleanGrad {
		if faultGrad[i] != cleanGrad[i] {
			t.Fatalf("faults changed grad coord %d", i)
		}
	}
	if faultStats.Retries == 0 || faultStats.Stalls == 0 {
		t.Fatalf("fault plan injected nothing: %+v", faultStats)
	}
	if faultStats.Messages <= cleanStats.Messages {
		t.Fatal("recovery should resend messages")
	}
	_, _, again := run(plan)
	if again != faultStats {
		t.Fatalf("fault schedule not deterministic: %+v vs %+v", again, faultStats)
	}
}

// TestRetryBytesUseCodecWireSize: fault-recovery resends must be priced at
// the codec's wire size, consistent with the normal reduction accounting.
func TestRetryBytesUseCodecWireSize(t *testing.T) {
	x, labels, factory := testTask(32)
	wire := int64(2 * factory(1).NumParams()) // fp16: 2 bytes per coord
	e := newEngine(dist.Config{
		Algo: dist.Tree, Codec: dist.FP16Codec{},
		Faults: &dist.FaultPlan{Seed: 1, DropRate: 1}, // worker 1 drops every step
	}, 2, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	step := e.StepStats() // reduce (1 msg of wire bytes at P=2) + 1 retry
	if step.Retries != 1 {
		t.Fatalf("retries = %d, want 1", step.Retries)
	}
	if want := 2 * wire; step.Bytes != want {
		t.Fatalf("step bytes = %d, want %d (reduce + resend, both at fp16 wire size)", step.Bytes, want)
	}
}

// TestFP16CodecRoundsPayloads: the FP16 codec halves the wire bytes and
// rounds gradients through half precision (close to, but not equal to, the
// raw exchange).
func TestFP16CodecRoundsPayloads(t *testing.T) {
	x, labels, factory := testTask(64)
	raw := newEngine(dist.Config{Algo: dist.Tree}, 2, factory)
	if _, err := raw.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	rawGrad := flatGrad(raw)
	rawStep := raw.StepStats()
	raw.Close()

	fp16 := newEngine(dist.Config{Algo: dist.Tree, Codec: dist.FP16Codec{}}, 2, factory)
	if _, err := fp16.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	halfGrad := flatGrad(fp16)
	halfStep := fp16.StepStats()
	fp16.Close()

	if halfStep.Bytes != rawStep.Bytes/2 {
		t.Fatalf("fp16 moved %d bytes, want half of %d", halfStep.Bytes, rawStep.Bytes)
	}
	var maxErr, scale float64
	for i := range rawGrad {
		maxErr = math.Max(maxErr, math.Abs(float64(rawGrad[i])-float64(halfGrad[i])))
		scale = math.Max(scale, math.Abs(float64(rawGrad[i])))
	}
	if maxErr == 0 {
		t.Fatal("fp16 rounding should perturb at least one coordinate")
	}
	if maxErr > 1e-3*scale+1e-6 {
		t.Fatalf("fp16 error %v too large for gradient scale %v", maxErr, scale)
	}
}

// TestOneBitCodecCompressesAndConverges: 1-bit payloads shrink the wire
// ~30x, and with error feedback repeated steps still descend the loss.
func TestOneBitCodecCompressesAndConverges(t *testing.T) {
	x, labels, factory := testTask(64)
	e := newEngine(dist.Config{Algo: dist.Central, Codec: dist.NewOneBitCodec()}, 2, factory)
	defer e.Close()
	first, err := e.ComputeGradient(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	step := e.StepStats()
	rawBytes := int64(4*factory(1).NumParams()) * 2 // 2 messages at P=2
	if step.Bytes >= rawBytes/20 {
		t.Fatalf("1-bit wire %d bytes, want ~32x under raw %d", step.Bytes, rawBytes)
	}
	loss := first
	for i := 0; i < 30; i++ {
		for _, p := range e.Master().Params() {
			p.W.Axpy(-0.1, p.G)
		}
		if err := e.BroadcastWeights(); err != nil {
			t.Fatal(err)
		}
		loss, err = e.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
	}
	if loss >= first {
		t.Fatalf("1-bit SGD failed to descend: %v -> %v", first, loss)
	}
}

// TestEvalAccuracyDataParallel: the sharded evaluation equals a direct
// master-replica evaluation for any worker count.
func TestEvalAccuracyDataParallel(t *testing.T) {
	x, labels, factory := testTask(100)
	want := -1.0
	for _, workers := range []int{1, 3} {
		e := newEngine(dist.Config{}, workers, factory)
		got, err := e.EvalAccuracy(x, labels, 32)
		if err != nil {
			t.Fatal(err)
		}
		e.Close()
		if want < 0 {
			// Reference: direct forward on a fresh master-seeded net.
			net := factory(1)
			want = nn.Accuracy(net.Forward(x, false), labels)
		}
		if got != want {
			t.Fatalf("W=%d: eval accuracy %v, want %v", workers, got, want)
		}
	}
}

// TestWorkerPanicBecomesError: bad labels must surface as an error from the
// lockstep barrier, not crash the process.
func TestWorkerPanicBecomesError(t *testing.T) {
	x, labels, factory := testTask(32)
	labels[7] = 99 // out of class range
	e := newEngine(dist.Config{}, 2, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err == nil {
		t.Fatal("expected worker error for out-of-range label")
	}
	// The engine must survive the failed step and accept a corrected one.
	labels[7] = 0
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatalf("engine unusable after recovered error: %v", err)
	}
}

// TestUnevenShards: batch sizes that do not divide the shard count still
// reduce to the exact batch mean (weighted by shard length).
func TestUnevenShards(t *testing.T) {
	x, labels, factory := testTask(50) // 50 rows over 4 shards: 13/13/12/12
	e := newEngine(dist.Config{Shards: 4}, 4, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	got := flatGrad(e)

	net := factory(1)
	loss := &nn.SoftmaxCrossEntropy{}
	net.ZeroGrad()
	loss.Forward(net.Forward(x, true), labels)
	net.Backward(loss.Backward())
	var want []float32
	for _, p := range net.Params() {
		want = append(want, p.G.Data...)
	}
	var maxErr float64
	for i := range want {
		maxErr = math.Max(maxErr, math.Abs(float64(got[i])-float64(want[i])))
	}
	if maxErr > 1e-6 {
		t.Fatalf("uneven-shard gradient off by %v from full-batch reference", maxErr)
	}
}

// TestUnevenBatchAcrossWorkerCounts: batches that divide neither the worker
// count nor the shard count still satisfy the reproducibility contract —
// with Shards pinned, every worker count produces the identical bits.
func TestUnevenBatchAcrossWorkerCounts(t *testing.T) {
	x, labels, factory := testTask(50) // 50 rows over 7 shards: 8/7/7/7/7/7/7
	const shards = 7
	var refGrad []float32
	var refLoss float64
	for _, workers := range []int{1, 3, 4} { // 50 % workers != 0 for 3 and 4
		e := newEngine(dist.Config{Algo: dist.Ring, Shards: shards}, workers, factory)
		loss, err := e.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		grad := flatGrad(e)
		e.Close()
		if refGrad == nil {
			refGrad, refLoss = grad, loss
			continue
		}
		if loss != refLoss {
			t.Fatalf("W=%d: loss %v differs bitwise from W=1's %v", workers, loss, refLoss)
		}
		for i := range grad {
			if grad[i] != refGrad[i] {
				t.Fatalf("W=%d: grad coord %d differs bitwise from W=1", workers, i)
			}
		}
	}
}

// TestMoreShardsThanRows: a shard count exceeding the batch rows leaves the
// surplus shards empty, and the result is bit-identical to the exact-fit
// split (the same live shards reduce in the same canonical order).
func TestMoreShardsThanRows(t *testing.T) {
	x, labels, factory := testTask(5)
	exact := newEngine(dist.Config{Shards: 5}, 4, factory)
	wantLoss, err := exact.ComputeGradient(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := flatGrad(exact)
	exact.Close()

	padded := newEngine(dist.Config{Shards: 12}, 4, factory)
	defer padded.Close()
	gotLoss, err := padded.ComputeGradient(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	got := flatGrad(padded)
	if gotLoss != wantLoss {
		t.Fatalf("empty shards changed the loss: %v vs %v", gotLoss, wantLoss)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("empty shards changed grad coord %d", i)
		}
	}
}

// unevenCodec is a test codec whose wire sizes differ per payload, to
// exercise the non-uniform byte accounting: slot parity decides the size.
type unevenCodec struct{}

func (unevenCodec) Name() string { return "uneven" }
func (unevenCodec) Transform(slot int, data []float32) int64 {
	return int64(len(data) + slot%2) // odd slots report one extra wire byte
}

// TestCodecExactByteAccounting pins the codec accounting fix: with
// non-uniform wire payloads the recorded Bytes must equal the schedule's
// byte factor times the exact summed wire bytes over the mean (multiply
// first, divide last) — not a truncated per-shard mean times the factor.
func TestCodecExactByteAccounting(t *testing.T) {
	x, labels, factory := testTask(60)
	n := factory(1).NumParams()
	for _, algo := range algorithms {
		const workers, shards = 3, 3
		e := newEngine(dist.Config{Algo: algo, Shards: shards, Codec: unevenCodec{}}, workers, factory)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatal(err)
		}
		got := e.StepStats()
		e.Close()
		// One bucket, three shards with wire sizes n, n+1, n (slots 0,1,2).
		wireTotal := int64(3*n + 1)
		var factor int64
		switch algo {
		case dist.Central, dist.Tree:
			factor = workers - 1
		case dist.Ring:
			factor = 2 * (workers - 1)
		}
		if want := factor * wireTotal / shards; got.Bytes != want {
			t.Errorf("%v: accounted %d bytes, want exact %d (factor %d x %d wire bytes / %d shards)",
				algo, got.Bytes, want, factor, wireTotal, shards)
		}
	}
}

// sparseCodec reports wire bytes only for shard 0's payloads — the regime
// where the old truncated per-shard mean (total/shards = 0) zeroed the
// accounted bytes entirely.
type sparseCodec struct{ buckets int }

func (sparseCodec) Name() string { return "sparse" }
func (c sparseCodec) Transform(slot int, data []float32) int64 {
	if slot < c.buckets { // shard 0's slots
		return 1
	}
	return 0
}

// TestTinyPayloadCodecBytesNonZero: one wire byte somewhere must never
// account to zero schedule bytes. The old mean truncation (1/3 shards -> 0
// bytes per bucket) lost it; multiply-first keeps the ring schedule's
// 4x1/3 = 1 byte per bucket.
func TestTinyPayloadCodecBytesNonZero(t *testing.T) {
	x, labels, factory := testTask(60)
	n := factory(1).NumParams()
	buckets := 4
	elems := (n + buckets - 1) / buckets
	e := newEngine(dist.Config{Algo: dist.Ring, Shards: 3, BucketElems: elems, Codec: sparseCodec{buckets: buckets}}, 3, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	got := e.StepStats()
	if got.Bytes == 0 {
		t.Fatalf("codec wire bytes truncated to zero: %+v", got)
	}
	factor := int64(2 * (3 - 1)) // ring byte factor at P=3
	if want := int64(buckets) * (factor * 1 / 3); got.Bytes != want {
		t.Fatalf("accounted %d bytes, want %d (ring factor %d x 1 wire byte / 3 shards per bucket)", got.Bytes, want, factor)
	}
}

// TestCloseIdempotent: double Close must not panic or deadlock.
func TestCloseIdempotent(t *testing.T) {
	_, _, factory := testTask(8)
	e := newEngine(dist.Config{}, 2, factory)
	e.Close()
	e.Close()
}
