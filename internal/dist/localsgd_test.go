package dist_test

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/opt"
)

// flatWeights flattens a network's parameters.
func flatWeights(n *nn.Network) []float32 {
	var out []float32
	for _, p := range n.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

// localEngine builds a local-SGD engine plus one plain-SGD stepper per
// replica (no momentum: a deterministic, state-free local optimizer),
// using the same replica seeds as newEngine.
func localEngine(cfg dist.Config, workers int, factory func(uint64) *nn.Network) *dist.Engine {
	replicas := make([]*nn.Network, workers)
	steppers := make([]dist.Stepper, workers)
	for i := range replicas {
		replicas[i] = factory(1 + uint64(i)*7919)
		steppers[i] = opt.NewSGD(replicas[i].Params(), opt.SGDConfig{})
	}
	e := dist.NewEngine(cfg, replicas)
	e.SetLocalSteppers(steppers)
	return e
}

// TestLocalSGDSyncEveryOneConfigInert: Config.SyncEvery = 1 is pure
// configuration — an engine driven through the every-step gradient path
// produces bit-identical gradients, weights and counters whether or not
// the field is set, across topologies, overlap and reduction arithmetic.
func TestLocalSGDSyncEveryOneConfigInert(t *testing.T) {
	x, labels, factory := testTask(64)
	hier := dist.NewHierarchy(2, 2)
	cases := []struct {
		name string
		cfg  dist.Config
	}{
		{"central", dist.Config{Algo: dist.Central}},
		{"tree", dist.Config{Algo: dist.Tree}},
		{"ring", dist.Config{Algo: dist.Ring}},
		{"hier", dist.Config{Topology: &hier}},
		{"ring/overlap", dist.Config{Algo: dist.Ring, Overlap: true, BucketElems: 64}},
		{"ring/pairwise", dist.Config{Algo: dist.Ring, Reduction: dist.PairwiseF32}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(cfg dist.Config) ([]float32, dist.CommStats, float64) {
				e := newEngine(cfg, 4, factory)
				defer e.Close()
				var loss float64
				for s := 0; s < 3; s++ {
					l, err := e.ComputeGradient(x, labels)
					if err != nil {
						t.Fatal(err)
					}
					loss += l
					if err := e.BroadcastWeights(); err != nil {
						t.Fatal(err)
					}
				}
				return flatGrad(e), e.Stats(), loss
			}
			base := tc.cfg
			tagged := tc.cfg
			tagged.SyncEvery = 1
			g0, s0, l0 := run(base)
			g1, s1, l1 := run(tagged)
			if l0 != l1 {
				t.Fatalf("loss %v with SyncEvery=1 vs %v without", l1, l0)
			}
			if s0 != s1 {
				t.Fatalf("stats %+v with SyncEvery=1 vs %+v without", s1, s0)
			}
			for i := range g0 {
				if g0[i] != g1[i] {
					t.Fatalf("grad coord %d: %v with SyncEvery=1 vs %v without", i, g1[i], g0[i])
				}
			}
		})
	}
}

// TestLocalSGDCountersMatchClosedForm drives LocalStep for H in {1,2,4,8}
// across the flat topologies and checks the measured counters equal
// comm.ExpectedLocalSGDStats counter-for-counter, with bytes scaling as
// exactly 1/H against the measured every-step gradient path.
func TestLocalSGDCountersMatchClosedForm(t *testing.T) {
	x, labels, factory := testTask(64)
	const workers, steps = 4, 8
	for _, algo := range []dist.Algorithm{dist.Central, dist.Tree, dist.Ring} {
		// The every-step gradient path is the H=1 comm baseline.
		base := newEngine(dist.Config{Algo: algo}, workers, factory)
		for s := 0; s < steps; s++ {
			if _, err := base.ComputeGradient(x, labels); err != nil {
				t.Fatal(err)
			}
			if err := base.BroadcastWeights(); err != nil {
				t.Fatal(err)
			}
		}
		baseStats := base.Stats()
		nelems := flatLen(base)
		base.Close()
		for _, h := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/H%d", algo, h), func(t *testing.T) {
				e := localEngine(dist.Config{Algo: algo, SyncEvery: h}, workers, factory)
				defer e.Close()
				for s := 0; s < steps; s++ {
					if _, err := e.LocalStep(x, labels, 0.05); err != nil {
						t.Fatal(err)
					}
				}
				want := comm.ExpectedLocalSGDStats(algo, workers, h, steps, nelems, 0, nil)
				// NewEngine's initial weight sync is the same broadcast in
				// both paths; compare the training-step counters only.
				got := subStats(e.Stats(), initialSync(algo, workers, nelems))
				wantBase := subStats(baseStats, initialSync(algo, workers, nelems))
				if got != want {
					t.Fatalf("H=%d measured %+v, closed form %+v", h, got, want)
				}
				if h > 1 && got.Bytes*int64(h) != wantBase.Bytes {
					t.Fatalf("H=%d bytes %d: want exact 1/H of the every-step %d", h, got.Bytes, wantBase.Bytes)
				}
				lsgd := e.LocalSGD()
				if lsgd.LocalSteps != steps || lsgd.SyncRounds != int64(steps/h) || lsgd.IntraRounds != 0 {
					t.Fatalf("H=%d local-SGD counters %+v", h, lsgd)
				}
			})
		}
	}
}

// flatLen returns the per-replica coordinate count.
func flatLen(e *dist.Engine) int {
	n := 0
	for _, p := range e.Master().Params() {
		n += p.Numel()
	}
	return n
}

// initialSync returns the counters NewEngine's construction-time weight
// broadcast recorded, so tests can compare training-step traffic alone.
func initialSync(algo dist.Algorithm, p, nelems int) dist.CommStats {
	return dist.BroadcastSchedule(algo, p, 4*int64(nelems))
}

// subStats subtracts b from a field by field.
func subStats(a, b dist.CommStats) dist.CommStats {
	return dist.CommStats{
		Messages: a.Messages - b.Messages,
		Bytes:    a.Bytes - b.Bytes,
		Steps:    a.Steps - b.Steps,
		Retries:  a.Retries - b.Retries,
		Stalls:   a.Stalls - b.Stalls,
	}
}

// TestLocalSGDHierarchicalCounters checks the per-tier attribution of a
// hierarchical local-SGD run — full rounds every H steps, intra-only
// rounds every Hi steps in between — against ExpectedLocalSGDTierStats.
func TestLocalSGDHierarchicalCounters(t *testing.T) {
	x, labels, factory := testTask(64)
	hier := dist.NewHierarchy(2, 2)
	const steps = 8
	for _, tc := range []struct{ h, hi int }{{2, 0}, {4, 2}, {8, 2}, {4, 4}} {
		t.Run(fmt.Sprintf("H%d-Hi%d", tc.h, tc.hi), func(t *testing.T) {
			e := localEngine(dist.Config{Topology: &hier, SyncEvery: tc.h, IntraSyncEvery: tc.hi}, 4, factory)
			defer e.Close()
			for s := 0; s < steps; s++ {
				if _, err := e.LocalStep(x, labels, 0.05); err != nil {
					t.Fatal(err)
				}
			}
			nelems := flatLen(e)
			want := comm.ExpectedLocalSGDTierStats(hier, tc.h, tc.hi, steps, nelems, 0, nil)
			got := e.TierStats()
			// Drop the construction-time broadcast from the intra/inter split.
			init := dist.HierBroadcastSchedule(hier, 4*int64(nelems))
			got.Intra = subStats(got.Intra, init.Intra)
			got.Inter = subStats(got.Inter, init.Inter)
			if got != want {
				t.Fatalf("measured tiers %+v, closed form %+v", got, want)
			}
			if total, flat := got.Total(), subStats(e.Stats(), init.Total()); total != flat {
				t.Fatalf("tier total %+v != flat stats %+v", total, flat)
			}
			lsgd := e.LocalSGD()
			wantIntra := comm.LocalSGDIntraRounds(steps, tc.h, tc.hi)
			if lsgd.SyncRounds != int64(steps/tc.h) || lsgd.IntraRounds != wantIntra {
				t.Fatalf("local-SGD counters %+v, want %d sync and %d intra rounds", lsgd, steps/tc.h, wantIntra)
			}
		})
	}
}

// TestLocalSGDCodecCounters: a codec prices the averaging rounds' reduce
// payloads through its wire format — fp16 halves the reduce bytes while
// the weight broadcast stays raw float32 — and the closed form follows
// through the WireSizer.
func TestLocalSGDCodecCounters(t *testing.T) {
	x, labels, factory := testTask(64)
	const workers, steps, h = 4, 8, 4
	e := localEngine(dist.Config{Algo: dist.Ring, Codec: dist.FP16Codec{}, SyncEvery: h}, workers, factory)
	defer e.Close()
	for s := 0; s < steps; s++ {
		if _, err := e.LocalStep(x, labels, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	nelems := flatLen(e)
	want := comm.ExpectedLocalSGDStats(dist.Ring, workers, h, steps, nelems, 0, comm.FP16Wire)
	got := subStats(e.Stats(), initialSync(dist.Ring, workers, nelems))
	if got != want {
		t.Fatalf("fp16 measured %+v, closed form %+v", got, want)
	}
}

// TestLocalSGDNegativeControl: H=4 is *not* the synchronous algorithm —
// the final master weights must differ bitwise from an every-step run with
// the same data, schedule and optimizer arithmetic. (H=1 inertness plus
// this proves SyncEvery actually changes the training dynamics.)
func TestLocalSGDNegativeControl(t *testing.T) {
	x, labels, factory := testTask(64)
	const workers, steps = 4, 8

	sync := newEngine(dist.Config{Algo: dist.Ring}, workers, factory)
	master := opt.NewSGD(sync.Master().Params(), opt.SGDConfig{})
	for s := 0; s < steps; s++ {
		if _, err := sync.ComputeGradient(x, labels); err != nil {
			t.Fatal(err)
		}
		master.Step(0.05)
		if err := sync.BroadcastWeights(); err != nil {
			t.Fatal(err)
		}
	}
	wSync := flatWeights(sync.Master())
	sync.Close()

	local := localEngine(dist.Config{Algo: dist.Ring, SyncEvery: 4}, workers, factory)
	for s := 0; s < steps; s++ {
		if _, err := local.LocalStep(x, labels, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	wLocal := flatWeights(local.Master())
	local.Close()

	same := true
	for i := range wSync {
		if wSync[i] != wLocal[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("H=4 produced bitwise identical weights to the every-step run: local SGD is not engaging")
	}
}

// TestLocalSGDDeterministic: two identical local-SGD runs are bitwise
// equal in weights, loss and counters — at every H, with and without
// overlap-mode gradient flattening.
func TestLocalSGDDeterministic(t *testing.T) {
	x, labels, factory := testTask(64)
	for _, cfg := range []dist.Config{
		{Algo: dist.Ring, SyncEvery: 3},
		{Algo: dist.Ring, SyncEvery: 3, Overlap: true, BucketElems: 64},
		{Algo: dist.Ring, SyncEvery: 3, Reduction: dist.PairwiseF32},
	} {
		run := func() ([]float32, float64, dist.CommStats) {
			e := localEngine(cfg, 4, factory)
			defer e.Close()
			var loss float64
			for s := 0; s < 7; s++ {
				l, err := e.LocalStep(x, labels, 0.05)
				if err != nil {
					t.Fatal(err)
				}
				loss += l
			}
			return flatWeights(e.Master()), loss, e.Stats()
		}
		w0, l0, s0 := run()
		w1, l1, s1 := run()
		if l0 != l1 || s0 != s1 {
			t.Fatalf("reruns diverged: loss %v vs %v, stats %+v vs %+v", l0, l1, s0, s1)
		}
		for i := range w0 {
			if w0[i] != w1[i] {
				t.Fatalf("rerun weight coord %d: %v vs %v", i, w0[i], w1[i])
			}
		}
	}
}

// TestLocalSGDOverlapAllExposed: under Config.Overlap nothing hides in
// local mode — sync rounds run at the window barrier, after the backward
// pass is long finished, so every byte is exposed. This is the documented
// overlap interaction: 1/H fewer bytes, none of them hideable.
func TestLocalSGDOverlapAllExposed(t *testing.T) {
	x, labels, factory := testTask(64)
	e := localEngine(dist.Config{Algo: dist.Ring, SyncEvery: 2, Overlap: true, BucketElems: 64}, 4, factory)
	defer e.Close()
	for s := 0; s < 6; s++ {
		if _, err := e.LocalStep(x, labels, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	ov := e.OverlapStats()
	if ov.HiddenRounds != 0 || ov.HiddenBytes != 0 {
		t.Fatalf("local mode hid traffic: %+v", ov)
	}
	if st := e.Stats(); ov.ExposedBytes != st.Bytes || ov.Rounds() != st.Steps {
		t.Fatalf("overlap split %+v does not cover stats %+v", ov, st)
	}
}

// TestLocalSGDMembershipBoundaries: membership events land on sync
// boundaries only. A worker dead from mid-window advances the eviction
// clock once per sync round (not per step), and a join scheduled
// mid-window defers to the next window start.
func TestLocalSGDMembershipBoundaries(t *testing.T) {
	x, labels, factory := testTask(64)
	const h = 4

	t.Run("evict", func(t *testing.T) {
		e := localEngine(dist.Config{
			Algo:      dist.Ring,
			SyncEvery: h,
			Faults:    &dist.FaultPlan{Dead: map[int]int64{2: 1}},
			Elastic:   &dist.Elastic{EvictAfter: 1},
		}, 4, factory)
		defer e.Close()
		for s := 0; s < 2*h; s++ {
			if _, err := e.LocalStep(x, labels, 0.05); err != nil {
				t.Fatal(err)
			}
			world := e.LiveWorkers()
			if s < h-1 && world != 4 {
				t.Fatalf("step %d: world %d before the boundary, want 4", s, world)
			}
			if s >= h-1 && world != 3 {
				t.Fatalf("step %d: world %d after the boundary, want 3", s, world)
			}
		}
		m := e.Membership()
		if m.Evictions != 1 || len(m.Events) != 1 || m.Events[0].Step != h {
			t.Fatalf("membership %+v: want one eviction effective at step %d", m, h)
		}
		if m.StepsAtWorld[4] != h || m.StepsAtWorld[3] != h {
			t.Fatalf("world timeline %v: want %d steps at 4 and %d at 3", m.StepsAtWorld, h, h)
		}
	})

	t.Run("join-defers-to-boundary", func(t *testing.T) {
		e := localEngine(dist.Config{
			Algo:      dist.Ring,
			SyncEvery: h,
			Faults:    &dist.FaultPlan{Join: map[int]int64{3: 2}}, // mid-window
			Elastic:   &dist.Elastic{},
		}, 4, factory)
		defer e.Close()
		for s := 0; s < 2*h; s++ {
			if _, err := e.LocalStep(x, labels, 0.05); err != nil {
				t.Fatal(err)
			}
			world := e.LiveWorkers()
			if s < h && world != 3 {
				t.Fatalf("step %d: world %d, the join must wait for the boundary", s, world)
			}
			if s >= h && world != 4 {
				t.Fatalf("step %d: world %d, the join should have landed at the window start", s, world)
			}
		}
		m := e.Membership()
		if m.Joins != 1 || len(m.Events) != 1 || m.Events[0].Step != h || !m.Events[0].Join {
			t.Fatalf("membership %+v: want one join effective at step %d", m, h)
		}
	})
}

// TestLocalSGDPostEvictionCounters: after an eviction, a full window's
// traffic equals the closed form at the shrunken world — membership
// surgery re-prices the schedules exactly like the gradient path.
func TestLocalSGDPostEvictionCounters(t *testing.T) {
	x, labels, factory := testTask(64)
	const h = 4
	e := localEngine(dist.Config{
		Algo:      dist.Ring,
		SyncEvery: h,
		Faults:    &dist.FaultPlan{Dead: map[int]int64{3: 0}},
		Elastic:   &dist.Elastic{EvictAfter: 1},
	}, 4, factory)
	defer e.Close()
	for s := 0; s < h; s++ { // first window: worker 3 dies, evicted at the boundary
		if _, err := e.LocalStep(x, labels, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	if e.LiveWorkers() != 3 {
		t.Fatalf("world %d after the first window, want 3", e.LiveWorkers())
	}
	before := e.Stats()
	for s := 0; s < h; s++ { // second window runs whole at P=3
		if _, err := e.LocalStep(x, labels, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	got := subStats(e.Stats(), before)
	want := comm.ExpectedLocalSGDStats(dist.Ring, 3, h, h, flatLen(e), 0, nil)
	if got != want {
		t.Fatalf("post-eviction window %+v, closed form at P=3 %+v", got, want)
	}
}
