package dist

// FaultPlan injects deterministic communication faults into the engine's
// reduction rounds, for scenario diversity: the same plan over the same run
// always drops and stalls the same (step, worker) pairs, so faulty runs are
// exactly reproducible — and, because the synchronous engine re-requests
// dropped payloads and waits out stragglers, they recover to the bitwise
// result of a fault-free run (tested).
//
// Two fault classes are distinguished. Rate faults (DropRate, StallRate)
// are transient: the worker is alive, the resend succeeds, and the step
// completes with the recovery traffic accounted. Permanent deaths (Dead)
// never recover: every recovery attempt fails, and the engine either evicts
// the worker under Config.Elastic or surfaces a typed *WorkerDeadError —
// it must not retry forever.
type FaultPlan struct {
	// Seed keys the fault schedule. Two engines with equal plans inject
	// identical faults.
	Seed uint64
	// DropRate is the per-(step, worker) probability in [0,1] that the
	// worker's reduction payload is lost in transit and must be resent
	// (CommStats.Retries, plus the resent messages and bytes).
	DropRate float64
	// StallRate is the per-(step, worker) probability in [0,1] that the
	// worker straggles, holding the lockstep barrier for one round
	// (CommStats.Stalls).
	StallRate float64
	// Dead marks workers as permanently unreachable: Dead[w] = s means
	// worker w answers nothing from step s on — the preemptible-node
	// scenario. Unlike a rate drop, a dead worker's recovery never
	// succeeds: a survivor recomputes its shards (accounted as a retry
	// plus the resend traffic) and the failed recovery counts toward
	// Elastic.EvictAfter. Worker 0 (the master) cannot be marked dead;
	// NewEngine rejects such plans. An entry in Join later than Dead[w]
	// bounds the outage: the worker answers again from the join step on.
	Dead map[int]int64
	// Join schedules workers to enter the collective: Join[w] = s admits
	// worker w at the step-s boundary, before step s computes — the
	// scale-up half of the preemptible-fleet scenario. Two shapes are
	// distinguished by Dead: a worker with no Dead entry (or one at or
	// after its join) is a fresh replica that sits out steps [0, s) and
	// joins cold; a worker with Dead[w] < Join[w] is an initial member
	// whose outage ends — it returns at step s, rejoining its hierarchy
	// node (leadership restores to the lowest live index) whether or not
	// the outage already got it evicted. Either way the engine warm-starts
	// it with an accounted weight broadcast at the new world size, so
	// every post-join step is bit-identical to a fresh run at the grown
	// world started from the broadcast weights. Joins are membership
	// surgery, not faults: they require Config.Elastic, and Join[w] must
	// be at least 1 (a join at step 0 is just initial membership). Worker
	// 0 (the master) is always an initial member; NewEngine rejects plans
	// that mark it.
	Join map[int]int64
}

// enabled reports whether the plan can ever fire.
func (f *FaultPlan) enabled() bool {
	return f != nil && (f.DropRate > 0 || f.StallRate > 0 || len(f.Dead) > 0)
}

// deadAt reports whether the plan marks worker w unreachable at the given
// step. A Join entry later than the death bounds the outage to the window
// [Dead[w], Join[w]) — the preemptible node that comes back.
func (f *FaultPlan) deadAt(step int64, w int) bool {
	if f == nil || len(f.Dead) == 0 {
		return false
	}
	s, ok := f.Dead[w]
	if !ok || step < s {
		return false
	}
	if j, ok := f.Join[w]; ok && j > s && step >= j {
		return false
	}
	return true
}

// initialMember reports whether worker w is part of the collective at
// construction time (as opposed to a fresh replica that joins mid-run):
// either the plan never schedules it to join, or its join is the return
// from an outage that started earlier (Dead[w] < Join[w]).
func (f *FaultPlan) initialMember(w int) bool {
	if f == nil {
		return true
	}
	j, ok := f.Join[w]
	if !ok {
		return true
	}
	d, dead := f.Dead[w]
	return dead && d < j
}

// roll returns the two fault decisions for a worker at a step. Worker 0 is
// the root/coordinator and never drops its own payload (a parameter server
// does not lose messages to itself), though it can straggle.
func (f *FaultPlan) roll(step int64, worker int) (drop, stall bool) {
	if !f.enabled() {
		return false, false
	}
	h := splitmix(f.Seed ^ uint64(step)*0x9e3779b97f4a7c15 ^ uint64(worker)*0xbf58476d1ce4e5b9)
	const scale = 1.0 / (1 << 53)
	u1 := float64(h>>11) * scale
	u2 := float64(splitmix(h)>>11) * scale
	drop = worker != 0 && u1 < f.DropRate
	stall = u2 < f.StallRate
	return drop, stall
}

// splitmix is the SplitMix64 finalizer — a cheap, well-mixed hash that
// keeps the fault schedule independent across steps and workers.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
