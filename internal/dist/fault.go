package dist

// FaultPlan injects deterministic communication faults into the engine's
// reduction rounds, for scenario diversity: the same plan over the same run
// always drops and stalls the same (step, worker) pairs, so faulty runs are
// exactly reproducible — and, because the synchronous engine re-requests
// dropped payloads and waits out stragglers, they recover to the bitwise
// result of a fault-free run (tested).
//
// Two fault classes are distinguished. Rate faults (DropRate, StallRate)
// are transient: the worker is alive, the resend succeeds, and the step
// completes with the recovery traffic accounted. Permanent deaths (Dead)
// never recover: every recovery attempt fails, and the engine either evicts
// the worker under Config.Elastic or surfaces a typed *WorkerDeadError —
// it must not retry forever.
type FaultPlan struct {
	// Seed keys the fault schedule. Two engines with equal plans inject
	// identical faults.
	Seed uint64
	// DropRate is the per-(step, worker) probability in [0,1] that the
	// worker's reduction payload is lost in transit and must be resent
	// (CommStats.Retries, plus the resent messages and bytes).
	DropRate float64
	// StallRate is the per-(step, worker) probability in [0,1] that the
	// worker straggles, holding the lockstep barrier for one round
	// (CommStats.Stalls).
	StallRate float64
	// Dead marks workers as permanently unreachable: Dead[w] = s means
	// worker w answers nothing from step s on — the preemptible-node
	// scenario. Unlike a rate drop, a dead worker's recovery never
	// succeeds: a survivor recomputes its shards (accounted as a retry
	// plus the resend traffic) and the failed recovery counts toward
	// Elastic.EvictAfter. Worker 0 (the master) cannot be marked dead;
	// NewEngine rejects such plans.
	Dead map[int]int64
}

// enabled reports whether the plan can ever fire.
func (f *FaultPlan) enabled() bool {
	return f != nil && (f.DropRate > 0 || f.StallRate > 0 || len(f.Dead) > 0)
}

// deadAt reports whether the plan marks worker w permanently unreachable at
// the given step.
func (f *FaultPlan) deadAt(step int64, w int) bool {
	if f == nil || len(f.Dead) == 0 {
		return false
	}
	s, ok := f.Dead[w]
	return ok && step >= s
}

// roll returns the two fault decisions for a worker at a step. Worker 0 is
// the root/coordinator and never drops its own payload (a parameter server
// does not lose messages to itself), though it can straggle.
func (f *FaultPlan) roll(step int64, worker int) (drop, stall bool) {
	if !f.enabled() {
		return false, false
	}
	h := splitmix(f.Seed ^ uint64(step)*0x9e3779b97f4a7c15 ^ uint64(worker)*0xbf58476d1ce4e5b9)
	const scale = 1.0 / (1 << 53)
	u1 := float64(h>>11) * scale
	u2 := float64(splitmix(h)>>11) * scale
	drop = worker != 0 && u1 < f.DropRate
	stall = u2 < f.StallRate
	return drop, stall
}

// splitmix is the SplitMix64 finalizer — a cheap, well-mixed hash that
// keeps the fault schedule independent across steps and workers.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
