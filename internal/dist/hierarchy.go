package dist

import "fmt"

// Hierarchy arranges the workers into a two-tier node topology: Nodes
// machines of PerNode workers each, laid out node-major (worker w lives on
// node w/PerNode; the node's first worker, w%PerNode == 0, is its leader).
// A hierarchical allreduce then composes two fabrics, the structure the
// paper's fastest runs exploit (reductions inside a KNL or Skylake node are
// cheap; the cross-node links are the bottleneck) and the one Akiba et al.
// 2017 make explicit:
//
//   - gradient reduction: every node reduces intra-node under Intra (all
//     nodes concurrently, each on its own local fabric), then the node
//     leaders exchange the node sums under Inter across the cluster fabric;
//
//   - weight broadcast: the root sends to the node leaders under Inter,
//     then every leader fans out intra-node under Intra, again with all
//     nodes concurrent.
//
// Per the package's reproducibility contract the hierarchy is pure
// schedule: reduced values stay canonical (float64 accumulation in shard
// order), so a hierarchical run is bit-identical to a flat run with the
// same shard split. What changes is the accounting — TierStats splits the
// schedule into the intra and inter fabrics so each tier can be priced on
// its own alpha-beta profile (comm.ExpectedTierStats is the closed-form
// twin, comm.HierarchicalAllreduceTime the two-fabric price).
type Hierarchy struct {
	// Nodes is the node count — the size of the inter tier.
	Nodes int
	// PerNode is the worker count per node — the size of each intra tier.
	PerNode int
	// Intra is the within-node algorithm (NewHierarchy defaults it to
	// Ring, the bandwidth-optimal choice for fast local fabrics).
	Intra Algorithm
	// Inter is the cross-node algorithm run by the node leaders
	// (NewHierarchy defaults it to Tree, the latency-friendly choice for
	// the slower cluster fabric).
	Inter Algorithm
}

// NewHierarchy returns the default two-tier composition over nodes×perNode
// workers: ring inside each node, tree across node leaders.
func NewHierarchy(nodes, perNode int) Hierarchy {
	return Hierarchy{Nodes: nodes, PerNode: perNode, Intra: Ring, Inter: Tree}
}

// Workers returns the total worker count, Nodes·PerNode.
func (h Hierarchy) Workers() int { return h.Nodes * h.PerNode }

// String renders the layout as "NxM intra/inter", e.g. "2x4 ring/tree".
func (h Hierarchy) String() string {
	return fmt.Sprintf("%dx%d %s/%s", h.Nodes, h.PerNode, h.Intra, h.Inter)
}

// validate panics unless the layout is well-formed.
func (h Hierarchy) validate() {
	if h.Nodes < 1 || h.PerNode < 1 {
		panic(fmt.Sprintf("dist: invalid hierarchy %dx%d: need at least one node and one worker per node", h.Nodes, h.PerNode))
	}
}

// leader reports whether worker w is its node's leader, and w's node index.
func (h Hierarchy) leader(w int) (bool, int) {
	return w%h.PerNode == 0, w / h.PerNode
}

// TierStats splits a hierarchical schedule's counters by fabric tier, so
// intra-node traffic (cheap, concurrent across nodes) and inter-node
// traffic (the scaling bottleneck) can each be priced on their own
// alpha-beta profile. Total recovers the flat aggregate view.
type TierStats struct {
	// Intra is the within-node traffic, summed over all nodes; its Steps
	// count each wave of concurrent per-node rounds once.
	Intra CommStats
	// Inter is the cross-node traffic among the node leaders.
	Inter CommStats
}

// Add accumulates o into t, tier by tier.
func (t *TierStats) Add(o TierStats) {
	t.Intra.Add(o.Intra)
	t.Inter.Add(o.Inter)
}

// Total returns the aggregate schedule across both tiers — the flat
// CommStats view of the same traffic.
func (t TierStats) Total() CommStats {
	total := t.Intra
	total.Add(t.Inter)
	return total
}

// uniformSizes returns the full-strength node layout: Nodes entries of
// PerNode live workers each.
func uniformSizes(h Hierarchy) []int {
	sizes := make([]int, h.Nodes)
	for i := range sizes {
		sizes[i] = h.PerNode
	}
	return sizes
}

// hierReduceSchedule returns the per-tier schedule of one hierarchical
// gradient reduction: Nodes concurrent intra-node reductions (messages and
// bytes sum over nodes; latency rounds are counted once, the nodes being
// concurrent on disjoint fabrics) feeding one inter-node reduction among
// the node leaders.
func hierReduceSchedule(h Hierarchy, payloadBytes int64) TierStats {
	return degradedHierReduceSchedule(h, uniformSizes(h), payloadBytes)
}

// hierBroadcastSchedule returns the per-tier schedule of one hierarchical
// broadcast: root to node leaders on the inter fabric, then every leader
// fanning out within its node concurrently on the intra fabrics.
func hierBroadcastSchedule(h Hierarchy, payloadBytes int64) TierStats {
	return degradedHierBroadcastSchedule(h, uniformSizes(h), payloadBytes)
}

// degradedHierReduceSchedule returns the per-tier schedule of one
// hierarchical gradient reduction over a degraded fleet, sizes listing the
// live-worker count of every surviving (non-empty) node. Intra-node
// reductions still run concurrently on disjoint fabrics, so intra latency
// rounds are the maximum over nodes while messages and bytes sum; the
// inter tier is a flat reduction among the len(sizes) surviving node
// leaders — a node that lost all its workers has left the leader exchange.
// With a full fleet this is exactly hierReduceSchedule.
func degradedHierReduceSchedule(h Hierarchy, sizes []int, payloadBytes int64) TierStats {
	var intra CommStats
	for _, p := range sizes {
		s := reduceSchedule(h.Intra, p, payloadBytes)
		intra.Messages += s.Messages
		intra.Bytes += s.Bytes
		if s.Steps > intra.Steps {
			intra.Steps = s.Steps
		}
	}
	return TierStats{Intra: intra, Inter: reduceSchedule(h.Inter, len(sizes), payloadBytes)}
}

// degradedHierBroadcastSchedule is the broadcast twin of
// degradedHierReduceSchedule: inter-node to the surviving leaders, then
// concurrent intra-node fan-outs sized by each node's live membership.
func degradedHierBroadcastSchedule(h Hierarchy, sizes []int, payloadBytes int64) TierStats {
	var intra CommStats
	for _, p := range sizes {
		s := broadcastSchedule(h.Intra, p, payloadBytes)
		intra.Messages += s.Messages
		intra.Bytes += s.Bytes
		if s.Steps > intra.Steps {
			intra.Steps = s.Steps
		}
	}
	return TierStats{Intra: intra, Inter: broadcastSchedule(h.Inter, len(sizes), payloadBytes)}
}

// degradedIntraBytesFactor returns the intra tier's aggregate bytes per
// payload byte over a degraded fleet — the sum of each surviving node's
// reduction byte factor — used by the engine to account non-uniform codec
// payloads exactly (see reduceBytesFactor).
func degradedIntraBytesFactor(h Hierarchy, sizes []int) int64 {
	var f int64
	for _, p := range sizes {
		f += reduceBytesFactor(h.Intra, p)
	}
	return f
}

// DegradedHierReduceSchedule returns the closed-form per-tier schedule of
// one hierarchical gradient reduction over a degraded fleet — exactly the
// counters the engine records per bucket after elastic evictions, with
// sizes the live-worker counts of the surviving nodes. Pair with
// DegradedHierBroadcastSchedule for a full degraded allreduce.
func DegradedHierReduceSchedule(h Hierarchy, sizes []int, payloadBytes int64) TierStats {
	return degradedHierReduceSchedule(h, sizes, payloadBytes)
}

// DegradedHierBroadcastSchedule returns the closed-form per-tier schedule
// of one hierarchical broadcast over a degraded fleet.
func DegradedHierBroadcastSchedule(h Hierarchy, sizes []int, payloadBytes int64) TierStats {
	return degradedHierBroadcastSchedule(h, sizes, payloadBytes)
}

// HierReduceSchedule returns the closed-form per-tier schedule of one
// hierarchical gradient reduction of a payloadBytes payload — exactly the
// counters the engine records per bucket under a Topology. Pair with
// HierBroadcastSchedule for a full hierarchical allreduce.
func HierReduceSchedule(h Hierarchy, payloadBytes int64) TierStats {
	return hierReduceSchedule(h, payloadBytes)
}

// HierBroadcastSchedule returns the closed-form per-tier schedule of one
// hierarchical broadcast of a payloadBytes payload.
func HierBroadcastSchedule(h Hierarchy, payloadBytes int64) TierStats {
	return hierBroadcastSchedule(h, payloadBytes)
}

// degradedSenderShare returns the tier-attributed resend traffic of one
// live worker's dropped (or dead-and-recomputed) reduction payload in a
// possibly degraded hierarchy: a surviving node leader re-sends its node
// sum on the inter fabric among the liveNodes leaders, a member re-sends
// on its node's intra fabric at the node's live size. The caller accounts
// the Retries event itself, once per drop.
func degradedSenderShare(h Hierarchy, leader bool, nodeSize, liveNodes int, payloadBytes int64) TierStats {
	var t TierStats
	if leader {
		msgs, bytes := senderShare(h.Inter, liveNodes, payloadBytes)
		t.Inter = CommStats{Messages: msgs, Bytes: bytes}
	} else {
		msgs, bytes := senderShare(h.Intra, nodeSize, payloadBytes)
		t.Intra = CommStats{Messages: msgs, Bytes: bytes}
	}
	return t
}

// HierReduce performs the gradient-sum phase of one hierarchical allreduce
// over len(bufs) == h.Workers() equal-length buffers: the canonical sum of
// all buffers lands in bufs[0] (the global root — node 0's leader). When
// Inter is Ring, whose leader exchange leaves the sum on every leader, all
// node leaders receive it. The executed schedule is accounted per tier into
// tiers when non-nil.
//
// The sum is computed exactly as the flat Reduce computes it — canonical
// worker order, float64 accumulation — so hierarchical and flat reductions
// are bitwise identical; only the accounted schedule differs.
// HierReduceWith selects the arithmetic.
func HierReduce(h Hierarchy, bufs [][]float32, tiers *TierStats) {
	HierReduceWith(h, CanonicalF64, bufs, tiers)
}

// HierReduceWith is HierReduce under an explicit reduction policy. As with
// the flat ReduceWith, hierarchical and flat reductions stay bitwise
// identical to each other under either policy — the policy changes the
// summation arithmetic, never the topology's role as pure accounting.
func HierReduceWith(h Hierarchy, policy Reduction, bufs [][]float32, tiers *TierStats) {
	h.validate()
	if len(bufs) != h.Workers() {
		panic(fmt.Sprintf("dist: HierReduce: %d buffers for a %dx%d hierarchy", len(bufs), h.Nodes, h.PerNode))
	}
	n := checkUniform("HierReduce", bufs)
	if len(bufs) > 1 {
		sumInto(policy, bufs)
		if h.Inter == Ring {
			// The leader ring's reduce-scatter + allgather leaves the sum
			// on every node leader, mirroring flat Ring's placement.
			for node := 1; node < h.Nodes; node++ {
				copy(bufs[node*h.PerNode], bufs[0])
			}
		}
	}
	if tiers != nil {
		tiers.Add(hierReduceSchedule(h, 4*int64(n)))
	}
}

// HierBroadcast distributes bufs[0] (the global root's buffer) to every
// worker through the two-tier fan-out — inter-node to the leaders, then
// intra-node — accounting the schedule per tier into tiers when non-nil.
// Paired with HierReduce it completes one hierarchical allreduce.
func HierBroadcast(h Hierarchy, bufs [][]float32, tiers *TierStats) {
	h.validate()
	if len(bufs) != h.Workers() {
		panic(fmt.Sprintf("dist: HierBroadcast: %d buffers for a %dx%d hierarchy", len(bufs), h.Nodes, h.PerNode))
	}
	n := checkUniform("HierBroadcast", bufs)
	if len(bufs) > 1 {
		fanOut(bufs)
	}
	if tiers != nil {
		tiers.Add(hierBroadcastSchedule(h, 4*int64(n)))
	}
}
