package dist

import "fmt"

// Hierarchy arranges the workers into a two-tier node topology: Nodes
// machines of PerNode workers each, laid out node-major (worker w lives on
// node w/PerNode; the node's first worker, w%PerNode == 0, is its leader).
// A hierarchical allreduce then composes two fabrics, the structure the
// paper's fastest runs exploit (reductions inside a KNL or Skylake node are
// cheap; the cross-node links are the bottleneck) and the one Akiba et al.
// 2017 make explicit:
//
//   - gradient reduction: every node reduces intra-node under Intra (all
//     nodes concurrently, each on its own local fabric), then the node
//     leaders exchange the node sums under Inter across the cluster fabric;
//
//   - weight broadcast: the root sends to the node leaders under Inter,
//     then every leader fans out intra-node under Intra, again with all
//     nodes concurrent.
//
// Per the package's reproducibility contract the hierarchy is pure
// schedule: reduced values stay canonical (float64 accumulation in shard
// order), so a hierarchical run is bit-identical to a flat run with the
// same shard split. What changes is the accounting — TierStats splits the
// schedule into the intra and inter fabrics so each tier can be priced on
// its own alpha-beta profile (comm.ExpectedTierStats is the closed-form
// twin, comm.HierarchicalAllreduceTime the two-fabric price).
type Hierarchy struct {
	// Nodes is the node count — the size of the inter tier.
	Nodes int
	// PerNode is the worker count per node — the size of each intra tier.
	PerNode int
	// Intra is the within-node algorithm (NewHierarchy defaults it to
	// Ring, the bandwidth-optimal choice for fast local fabrics).
	Intra Algorithm
	// Inter is the cross-node algorithm run by the node leaders
	// (NewHierarchy defaults it to Tree, the latency-friendly choice for
	// the slower cluster fabric).
	Inter Algorithm
}

// NewHierarchy returns the default two-tier composition over nodes×perNode
// workers: ring inside each node, tree across node leaders.
func NewHierarchy(nodes, perNode int) Hierarchy {
	return Hierarchy{Nodes: nodes, PerNode: perNode, Intra: Ring, Inter: Tree}
}

// Workers returns the total worker count, Nodes·PerNode.
func (h Hierarchy) Workers() int { return h.Nodes * h.PerNode }

// String renders the layout as "NxM intra/inter", e.g. "2x4 ring/tree".
func (h Hierarchy) String() string {
	return fmt.Sprintf("%dx%d %s/%s", h.Nodes, h.PerNode, h.Intra, h.Inter)
}

// validate panics unless the layout is well-formed.
func (h Hierarchy) validate() {
	if h.Nodes < 1 || h.PerNode < 1 {
		panic(fmt.Sprintf("dist: invalid hierarchy %dx%d: need at least one node and one worker per node", h.Nodes, h.PerNode))
	}
}

// leader reports whether worker w is its node's leader, and w's node index.
func (h Hierarchy) leader(w int) (bool, int) {
	return w%h.PerNode == 0, w / h.PerNode
}

// TierStats splits a hierarchical schedule's counters by fabric tier, so
// intra-node traffic (cheap, concurrent across nodes) and inter-node
// traffic (the scaling bottleneck) can each be priced on their own
// alpha-beta profile. Total recovers the flat aggregate view.
type TierStats struct {
	// Intra is the within-node traffic, summed over all nodes; its Steps
	// count each wave of concurrent per-node rounds once.
	Intra CommStats
	// Inter is the cross-node traffic among the node leaders.
	Inter CommStats
}

// Add accumulates o into t, tier by tier.
func (t *TierStats) Add(o TierStats) {
	t.Intra.Add(o.Intra)
	t.Inter.Add(o.Inter)
}

// Total returns the aggregate schedule across both tiers — the flat
// CommStats view of the same traffic.
func (t TierStats) Total() CommStats {
	total := t.Intra
	total.Add(t.Inter)
	return total
}

// hierReduceSchedule returns the per-tier schedule of one hierarchical
// gradient reduction: Nodes concurrent intra-node reductions (messages and
// bytes sum over nodes; latency rounds are counted once, the nodes being
// concurrent on disjoint fabrics) feeding one inter-node reduction among
// the node leaders.
func hierReduceSchedule(h Hierarchy, payloadBytes int64) TierStats {
	intra := reduceSchedule(h.Intra, h.PerNode, payloadBytes)
	intra.Messages *= int64(h.Nodes)
	intra.Bytes *= int64(h.Nodes)
	return TierStats{Intra: intra, Inter: reduceSchedule(h.Inter, h.Nodes, payloadBytes)}
}

// hierBroadcastSchedule returns the per-tier schedule of one hierarchical
// broadcast: root to node leaders on the inter fabric, then every leader
// fanning out within its node concurrently on the intra fabrics.
func hierBroadcastSchedule(h Hierarchy, payloadBytes int64) TierStats {
	intra := broadcastSchedule(h.Intra, h.PerNode, payloadBytes)
	intra.Messages *= int64(h.Nodes)
	intra.Bytes *= int64(h.Nodes)
	return TierStats{Intra: intra, Inter: broadcastSchedule(h.Inter, h.Nodes, payloadBytes)}
}

// HierReduceSchedule returns the closed-form per-tier schedule of one
// hierarchical gradient reduction of a payloadBytes payload — exactly the
// counters the engine records per bucket under a Topology. Pair with
// HierBroadcastSchedule for a full hierarchical allreduce.
func HierReduceSchedule(h Hierarchy, payloadBytes int64) TierStats {
	return hierReduceSchedule(h, payloadBytes)
}

// HierBroadcastSchedule returns the closed-form per-tier schedule of one
// hierarchical broadcast of a payloadBytes payload.
func HierBroadcastSchedule(h Hierarchy, payloadBytes int64) TierStats {
	return hierBroadcastSchedule(h, payloadBytes)
}

// hierSenderShare returns the tier-attributed resend traffic of worker w's
// dropped reduction payload: a non-leader re-sends on its node's intra
// fabric, a node leader re-sends its node sum on the inter fabric. The
// caller accounts the Retries event itself, once per drop.
func hierSenderShare(h Hierarchy, w int, payloadBytes int64) TierStats {
	var t TierStats
	if lead, _ := h.leader(w); lead {
		msgs, bytes := senderShare(h.Inter, h.Nodes, payloadBytes)
		t.Inter = CommStats{Messages: msgs, Bytes: bytes}
	} else {
		msgs, bytes := senderShare(h.Intra, h.PerNode, payloadBytes)
		t.Intra = CommStats{Messages: msgs, Bytes: bytes}
	}
	return t
}

// HierReduce performs the gradient-sum phase of one hierarchical allreduce
// over len(bufs) == h.Workers() equal-length buffers: the canonical sum of
// all buffers lands in bufs[0] (the global root — node 0's leader). When
// Inter is Ring, whose leader exchange leaves the sum on every leader, all
// node leaders receive it. The executed schedule is accounted per tier into
// tiers when non-nil.
//
// The sum is computed exactly as the flat Reduce computes it — canonical
// worker order, float64 accumulation — so hierarchical and flat reductions
// are bitwise identical; only the accounted schedule differs.
func HierReduce(h Hierarchy, bufs [][]float32, tiers *TierStats) {
	h.validate()
	if len(bufs) != h.Workers() {
		panic(fmt.Sprintf("dist: HierReduce: %d buffers for a %dx%d hierarchy", len(bufs), h.Nodes, h.PerNode))
	}
	n := checkUniform("HierReduce", bufs)
	if len(bufs) > 1 {
		canonicalSum(bufs)
		if h.Inter == Ring {
			// The leader ring's reduce-scatter + allgather leaves the sum
			// on every node leader, mirroring flat Ring's placement.
			for node := 1; node < h.Nodes; node++ {
				copy(bufs[node*h.PerNode], bufs[0])
			}
		}
	}
	if tiers != nil {
		tiers.Add(hierReduceSchedule(h, 4*int64(n)))
	}
}

// HierBroadcast distributes bufs[0] (the global root's buffer) to every
// worker through the two-tier fan-out — inter-node to the leaders, then
// intra-node — accounting the schedule per tier into tiers when non-nil.
// Paired with HierReduce it completes one hierarchical allreduce.
func HierBroadcast(h Hierarchy, bufs [][]float32, tiers *TierStats) {
	h.validate()
	if len(bufs) != h.Workers() {
		panic(fmt.Sprintf("dist: HierBroadcast: %d buffers for a %dx%d hierarchy", len(bufs), h.Nodes, h.PerNode))
	}
	n := checkUniform("HierBroadcast", bufs)
	if len(bufs) > 1 {
		fanOut(bufs)
	}
	if tiers != nil {
		tiers.Add(hierBroadcastSchedule(h, 4*int64(n)))
	}
}
