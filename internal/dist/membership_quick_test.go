package dist_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

// membershipScenario is one randomized elastic run: a worker count, an
// eviction policy, and a fault plan mixing deaths, returns and fresh
// joiners. testing/quick generates them via Generate below.
type membershipScenario struct {
	Workers    int
	EvictAfter int
	Steps      int
	Algo       dist.Algorithm
	Dead       map[int]int64
	Join       map[int]int64
}

// Generate draws a random but always-valid scenario: worker 0 stays the
// master, deaths land inside the run, returns land strictly after their
// death, fresh joiners enter from step 1 on (possibly dying afterwards).
func (membershipScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	sc := membershipScenario{
		Workers:    2 + r.Intn(4), // 2..5
		EvictAfter: 1 + r.Intn(2),
		Steps:      6 + r.Intn(6), // 6..11
		Algo:       []dist.Algorithm{dist.Central, dist.Tree, dist.Ring}[r.Intn(3)],
		Dead:       map[int]int64{},
		Join:       map[int]int64{},
	}
	for w := 1; w < sc.Workers; w++ {
		switch r.Intn(3) {
		case 0: // healthy throughout
		case 1: // initial member that dies, and maybe returns
			d := int64(r.Intn(sc.Steps - 1))
			sc.Dead[w] = d
			if r.Intn(2) == 0 {
				sc.Join[w] = d + 1 + int64(r.Intn(sc.Steps))
			}
		case 2: // fresh joiner, maybe preempted after entering
			j := int64(1 + r.Intn(sc.Steps))
			sc.Join[w] = j
			if r.Intn(2) == 0 {
				sc.Dead[w] = j + 1 + int64(r.Intn(3))
			}
		}
	}
	return reflect.ValueOf(sc)
}

// initiallyIn mirrors the engine's construction rule: a worker starts in
// the collective unless its join is a fresh entry still pending at step 0.
func (sc membershipScenario) initiallyIn(w int) bool {
	j, joins := sc.Join[w]
	if !joins {
		return true
	}
	d, dies := sc.Dead[w]
	return dies && d < j
}

// TestMembershipProperties drives random evict/join sequences through the
// engine and checks the invariants no schedule surgery may break: every
// shard is owned by exactly one in-range worker with the load within one
// shard of even, the StepsAtWorld histogram sums to the total step count,
// Timeline() is monotone (worlds strictly decreasing, positive counts),
// and the event timeline replays to a consistent world-size trajectory.
func TestMembershipProperties(t *testing.T) {
	x, labels, factory := testTask(30)
	property := func(sc membershipScenario) bool {
		e := newEngine(dist.Config{
			Algo:    sc.Algo,
			Faults:  &dist.FaultPlan{Dead: sc.Dead, Join: sc.Join},
			Elastic: &dist.Elastic{EvictAfter: sc.EvictAfter},
		}, sc.Workers, factory)
		defer e.Close()
		for step := 0; step < sc.Steps; step++ {
			stepOnce(t, e, x, labels)
			if e.LiveWorkers() < 1 || e.Shards() < 1 {
				t.Logf("%+v: step %d left world %d shards %d", sc, step, e.LiveWorkers(), e.Shards())
				return false
			}
			owners := e.ShardOwners()
			if len(owners) != e.Shards() {
				t.Logf("%+v: step %d: %d owners for %d shards", sc, step, len(owners), e.Shards())
				return false
			}
			counts := map[int]int{}
			for s, w := range owners {
				if w < 0 || w >= sc.Workers {
					t.Logf("%+v: step %d: shard %d owned by out-of-range worker %d", sc, step, s, w)
					return false
				}
				counts[w]++
			}
			if len(counts) > e.LiveWorkers() {
				t.Logf("%+v: step %d: %d distinct owners exceed world %d", sc, step, len(counts), e.LiveWorkers())
				return false
			}
			minC, maxC := sc.Steps*sc.Workers, 0
			for _, c := range counts {
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
			if maxC-minC > 1 {
				t.Logf("%+v: step %d: shard load unbalanced: %v", sc, step, counts)
				return false
			}
		}

		m := e.Membership()
		if m.Steps() != int64(sc.Steps) {
			t.Logf("%+v: histogram sums to %d steps, engine ran %d", sc, m.Steps(), sc.Steps)
			return false
		}
		prevWorld := sc.Workers + 1
		var total int64
		for _, field := range strings.Fields(m.Timeline()) {
			var p int
			var n int64
			if _, err := fmt.Sscanf(field, "%dx%d", &p, &n); err != nil {
				t.Logf("%+v: unparseable timeline field %q", sc, field)
				return false
			}
			if p >= prevWorld || n < 1 {
				t.Logf("%+v: timeline %q is not monotone", sc, m.Timeline())
				return false
			}
			prevWorld = p
			total += n
		}
		if total != m.Steps() {
			t.Logf("%+v: timeline %q sums to %d, histogram says %d", sc, m.Timeline(), total, m.Steps())
			return false
		}

		// Replay the event timeline against an independent membership
		// model: steps nondecreasing, no double evictions, world sizes
		// consistent after every event.
		in := map[int]bool{0: true}
		world := 1
		for w := 1; w < sc.Workers; w++ {
			in[w] = sc.initiallyIn(w)
			if in[w] {
				world++
			}
		}
		var prevStep int64
		for _, ev := range m.Events {
			if ev.Step < prevStep {
				t.Logf("%+v: event timeline %q not monotone in step", sc, m.EventTimeline())
				return false
			}
			prevStep = ev.Step
			if ev.Join {
				if !in[ev.Worker] {
					in[ev.Worker] = true
					world++
				}
			} else {
				if !in[ev.Worker] {
					t.Logf("%+v: event %v evicts a worker that was already out", sc, ev)
					return false
				}
				in[ev.Worker] = false
				world--
			}
			if ev.World != world {
				t.Logf("%+v: event %v reports world %d, replay says %d", sc, ev, ev.World, world)
				return false
			}
		}
		if world != e.LiveWorkers() {
			t.Logf("%+v: replayed world %d != engine world %d", sc, world, e.LiveWorkers())
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
