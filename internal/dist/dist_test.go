package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

// algorithms lists the three topologies in the paper's order.
var algorithms = []dist.Algorithm{dist.Central, dist.Tree, dist.Ring}

// randomBufs builds p independent n-float buffers.
func randomBufs(p, n int, seed uint64) [][]float32 {
	r := rng.New(seed)
	bufs := make([][]float32, p)
	for w := range bufs {
		bufs[w] = make([]float32, n)
		for i := range bufs[w] {
			bufs[w][i] = r.NormFloat32()
		}
	}
	return bufs
}

func cloneBufs(bufs [][]float32) [][]float32 {
	out := make([][]float32, len(bufs))
	for w := range bufs {
		out[w] = append([]float32(nil), bufs[w]...)
	}
	return out
}

// TestReduceIdenticalAcrossAlgorithms is the reproducibility contract: the
// three topologies return bitwise-identical sums, equal to the canonical
// float64-accumulated reference.
func TestReduceIdenticalAcrossAlgorithms(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		src := randomBufs(p, 1000, uint64(p))
		want := make([]float32, 1000)
		for i := range want {
			var acc float64
			for w := 0; w < p; w++ {
				acc += float64(src[w][i])
			}
			want[i] = float32(acc)
		}
		for _, algo := range algorithms {
			bufs := cloneBufs(src)
			dist.Reduce(algo, bufs, nil)
			for i := range want {
				if bufs[0][i] != want[i] {
					t.Fatalf("%v P=%d: coord %d = %v, canonical reference %v", algo, p, i, bufs[0][i], want[i])
				}
			}
		}
	}
}

// TestReduceBroadcastLeavesSumEverywhere: a full allreduce (Reduce +
// Broadcast) must leave every worker holding the root's sum, under every
// topology (Ring's Reduce already fans out; Broadcast must be idempotent
// on it).
func TestReduceBroadcastLeavesSumEverywhere(t *testing.T) {
	for _, algo := range algorithms {
		bufs := randomBufs(5, 257, 3)
		dist.Reduce(algo, bufs, nil)
		dist.Broadcast(algo, bufs, nil)
		for w := 1; w < len(bufs); w++ {
			for i := range bufs[0] {
				if bufs[w][i] != bufs[0][i] {
					t.Fatalf("%v: worker %d coord %d = %v, root %v", algo, w, i, bufs[w][i], bufs[0][i])
				}
			}
		}
	}
}

// TestCommStatsClosedForm pins the executed schedules to the closed forms
// of the paper's analysis (internal/comm cross-checks the same numbers from
// its side):
//
//	Central: 2(P−1) msgs, 2(P−1)·4n bytes, 2(P−1) rounds
//	Tree:    2(P−1) msgs, 2(P−1)·4n bytes, 2⌈log₂P⌉ rounds
//	Ring:    2P(P−1)+(P−1) msgs, 3(P−1)·4n bytes, 2(P−1)+⌈log₂P⌉ rounds
func TestCommStatsClosedForm(t *testing.T) {
	ceilLog2 := func(p int) int64 {
		var n int64
		for v := 1; v < p; v *= 2 {
			n++
		}
		return n
	}
	const n = 100
	payload := int64(4 * n)
	for _, p := range []int{2, 3, 4, 8, 16, 64} {
		pm := int64(p - 1)
		want := map[dist.Algorithm]dist.CommStats{
			dist.Central: {Messages: 2 * pm, Bytes: 2 * pm * payload, Steps: 2 * pm},
			dist.Tree:    {Messages: 2 * pm, Bytes: 2 * pm * payload, Steps: 2 * ceilLog2(p)},
			dist.Ring:    {Messages: 2*int64(p)*pm + pm, Bytes: 3 * pm * payload, Steps: 2*pm + ceilLog2(p)},
		}
		for _, algo := range algorithms {
			bufs := randomBufs(p, n, uint64(p))
			var stats dist.CommStats
			dist.Reduce(algo, bufs, &stats)
			dist.Broadcast(algo, bufs, &stats)
			if stats != want[algo] {
				t.Errorf("%v P=%d: stats %+v, want %+v", algo, p, stats, want[algo])
			}
		}
	}
}

// TestSingleWorkerIsFree: with one worker there is nothing to move.
func TestSingleWorkerIsFree(t *testing.T) {
	for _, algo := range algorithms {
		bufs := randomBufs(1, 64, 1)
		before := append([]float32(nil), bufs[0]...)
		var stats dist.CommStats
		dist.Reduce(algo, bufs, &stats)
		dist.Broadcast(algo, bufs, &stats)
		if stats != (dist.CommStats{}) {
			t.Errorf("%v: single worker moved %+v", algo, stats)
		}
		for i := range before {
			if bufs[0][i] != before[i] {
				t.Fatalf("%v: single-worker reduce changed coord %d", algo, i)
			}
		}
	}
}

// TestAlgorithmString pins the labels used in flags and reports.
func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[dist.Algorithm]string{
		dist.Central: "central", dist.Tree: "tree", dist.Ring: "ring",
	} {
		if algo.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(algo), algo.String(), want)
		}
	}
	if dist.Algorithm(99).String() != "Algorithm(99)" {
		t.Error("unknown algorithm should render its ordinal")
	}
}
