package dist

import (
	"fmt"
	"sort"
)

// DefaultEvictAfter is the eviction threshold used when Elastic.EvictAfter
// is zero: a worker is declared dead after this many consecutive failed
// recoveries.
const DefaultEvictAfter = 3

// Elastic is the engine's elastic-membership policy (ROADMAP: "Elastic
// membership"). Without it the engine recovers every fault in place and a
// permanently dead worker surfaces a *WorkerDeadError; with it the engine
// runs a small membership state machine per worker:
//
//	healthy --fault plan marks worker dead--> suspected
//	suspected --recovery fails EvictAfter consecutive steps--> evicted
//	suspected --fault plan schedules a return--> healthy (resynced)
//	evicted --fault plan schedules a return--> healthy (rejoined)
//	pending --join step reached--> healthy (joined)
//
// (pending is the state of a fresh replica whose FaultPlan.Join step has
// not arrived yet: it holds no shards, runs no goroutine, and occupies no
// hierarchy-node seat.)
//
// Eviction removes the worker from the collective at the end of the step
// that crossed the threshold:
//
//   - the worker's goroutine is released and its gradient-notify hook (the
//     overlap scheduler's input) is unhooked — the scheduler's bucket
//     cover maps depend only on the parameter layout, and its per-step
//     countdowns rescale to the surviving shard count automatically;
//   - the logical shard spans are recomputed over the surviving P−1 workers
//     via data.Spans — with the default split (Config.Shards left zero, no
//     codec) the shard count follows the world size down, so the
//     post-eviction split is exactly the split a fresh P−1 engine would
//     use; an explicitly pinned Shards stays pinned (pinned runs keep
//     their bit-identity promise), as does any run with a Codec (slot-keyed
//     codec state must never remap onto a different shard's data), and then
//     only the shard→worker assignment rebalances;
//   - the topology is rebuilt: flat central/tree/ring schedules re-price at
//     P−1, and a Hierarchy drops the worker from its node — a node losing
//     all its workers shrinks the inter tier (its leader leaves the leader
//     exchange);
//   - the master re-broadcasts the weights to the survivors (the
//     membership-epoch resynchronization), accounted — exposed — into the
//     step's CommStats and into MembershipStats.RebalancedBytes.
//
// Admission is the exact mirror, at the start of the step FaultPlan.Join
// names (so the step itself already runs at the grown world):
//
//   - the worker's goroutine starts (or restarts, for an evicted returner)
//     and its gradient-notify hook is re-installed — the overlap
//     scheduler's per-step countdowns rescale to the grown shard count
//     automatically;
//   - the shard split recomputes over the P+1 workers: the default
//     world-tracking split grows to exactly the split a fresh P+1 engine
//     would use, while pinned and codec-bearing splits keep their shard
//     count (slot-keyed codec residuals never remap) and only reassign
//     owners;
//   - the topology re-forms: flat schedules re-price at P+1, and the
//     worker takes its seat back in its Hierarchy node in ascending worker
//     order — so a node returning from empty rejoins the inter tier, and
//     node leadership deterministically restores to the lowest live index;
//   - the master warm-starts the grown fleet with a weight broadcast at
//     the new world size, accounted — exposed — into the step's CommStats
//     and into MembershipStats.JoinedBytes.
//
// Determinism contract (tested at collective, engine and trainer level):
// given the same fault plan and eviction policy, the run is bit-identical
// across topologies; every post-eviction step is bit-identical to a fresh
// P−1 run started from the rebalanced weights; and every post-join step is
// bit-identical to a fresh P+1 run started from the broadcast weights (for
// a fresh run with the same pinned Shards and codec state when those are
// set — a data-dependent codec's error feedback carries across the
// membership change exactly as it would on the surviving hardware).
// Membership changes are pure schedule surgery — the reduced values never
// depend on which workers carried the shards.
type Elastic struct {
	// EvictAfter is the number of consecutive failed recoveries after
	// which a dead worker is evicted; 0 means DefaultEvictAfter. The
	// master (worker 0) is never evicted.
	EvictAfter int
}

// evictAfter returns the effective threshold.
func (p *Elastic) evictAfter() int {
	if p == nil || p.EvictAfter <= 0 {
		return DefaultEvictAfter
	}
	return p.EvictAfter
}

// MembershipStats accounts the engine's elastic-membership activity: how
// often the world shrank and grew, what the rebalances moved, and how many
// steps ran at each world size. The resynchronization traffic is
// additionally folded into the ordinary CommStats (always exposed —
// membership changes happen at the step barrier), so Engine.StepStats
// reflects a membership change's full schedule cost.
type MembershipStats struct {
	// Evictions is the number of workers removed from the collective.
	Evictions int64
	// Joins is the number of admissions: fresh replicas entering, evicted
	// workers rejoining, and suspected workers whose outage ended before
	// eviction (each resynchronized the same way).
	Joins int64
	// RebalancedShards counts the logical shards that had to find new
	// owners because the world shrank: each evicted worker contributes
	// the shards it owned in the membership assignment at eviction time.
	RebalancedShards int64
	// JoinedShards counts the logical shards that moved onto admitted
	// workers: each joiner contributes the shards it owns in the
	// membership assignment right after admission.
	JoinedShards int64
	// RebalancedBytes is the wire payload of the post-eviction weight
	// resynchronization broadcasts, as accounted by the executed schedule.
	RebalancedBytes int64
	// JoinedBytes is the wire payload of the post-join warm-start
	// broadcasts, as accounted by the executed schedule at the grown
	// world size.
	JoinedBytes int64
	// StepsAtWorld counts completed gradient steps by world size:
	// StepsAtWorld[p] steps ran with p live workers. The slice is sized
	// initial-workers+1; evictions and joins move steps between entries,
	// never past the replica count.
	StepsAtWorld []int64
	// Events is the membership timeline: one entry per eviction or
	// admission, in the order they happened (Step is nondecreasing).
	Events []MembershipEvent
}

// MembershipEvent is one entry of the membership timeline: a worker
// leaving or entering the collective at a step boundary.
type MembershipEvent struct {
	// Step is the first step the changed membership is in effect for.
	Step int64
	// Worker is the worker that left or entered.
	Worker int
	// Join is true for admissions, false for evictions.
	Join bool
	// World is the world size after the change.
	World int
}

// String renders the event compactly: "+3@12" is worker 3 joining in time
// for step 12, "-3@12" worker 3 evicted from step 12 on.
func (ev MembershipEvent) String() string {
	sign := "-"
	if ev.Join {
		sign = "+"
	}
	return fmt.Sprintf("%s%d@%d", sign, ev.Worker, ev.Step)
}

// Add accumulates o into m, growing the world histogram as needed and
// appending o's timeline entries (chronological as long as the summands
// are added in order, the way the trainer accumulates epochs).
func (m *MembershipStats) Add(o MembershipStats) {
	m.Evictions += o.Evictions
	m.Joins += o.Joins
	m.RebalancedShards += o.RebalancedShards
	m.JoinedShards += o.JoinedShards
	m.RebalancedBytes += o.RebalancedBytes
	m.JoinedBytes += o.JoinedBytes
	if len(o.StepsAtWorld) > len(m.StepsAtWorld) {
		grown := make([]int64, len(o.StepsAtWorld))
		copy(grown, m.StepsAtWorld)
		m.StepsAtWorld = grown
	}
	for p, s := range o.StepsAtWorld {
		m.StepsAtWorld[p] += s
	}
	m.Events = append(m.Events, o.Events...)
}

// EventTimeline renders the membership events in order, e.g. "-3@4 +3@9"
// for worker 3 evicted from step 4 and readmitted at step 9; "-" when the
// membership never changed.
func (m MembershipStats) EventTimeline() string {
	if len(m.Events) == 0 {
		return "-"
	}
	out := ""
	for i, ev := range m.Events {
		if i > 0 {
			out += " "
		}
		out += ev.String()
	}
	return out
}

// Steps returns the total steps across all world sizes.
func (m MembershipStats) Steps() int64 {
	var n int64
	for _, s := range m.StepsAtWorld {
		n += s
	}
	return n
}

// Timeline renders the world-size history compactly, largest world first,
// e.g. "4x12 3x8" for twelve steps at P=4 then eight at P=3.
func (m MembershipStats) Timeline() string {
	out := ""
	for p := len(m.StepsAtWorld) - 1; p >= 0; p-- {
		if m.StepsAtWorld[p] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%dx%d", p, m.StepsAtWorld[p])
	}
	if out == "" {
		return "-"
	}
	return out
}

// WorkerDeadError reports a worker whose reduction payload can no longer be
// recovered: the fault plan marked it permanently unreachable and elastic
// membership is disabled, so the engine surfaces the condition instead of
// retrying the worker forever at the step barrier. Enable Config.Elastic to
// have the engine evict the worker and continue on the survivors.
type WorkerDeadError struct {
	// Worker is the unreachable worker's index.
	Worker int
	// Step is the step whose reduction could not be recovered.
	Step int64
}

// Error implements error.
func (e *WorkerDeadError) Error() string {
	return fmt.Sprintf("dist: worker %d is permanently dead at step %d and Config.Elastic is unset: cannot recover its shards (evict it by enabling elastic membership)", e.Worker, e.Step)
}

// LiveWorkers returns the current world size: the replicas currently in
// the collective. It equals Workers() until evictions shrink the fleet or
// pending joiners mean some replicas have not entered yet.
func (e *Engine) LiveWorkers() int { return e.world }

// Shards returns the current logical shard count. It equals Config.Shards
// until elastic evictions (joins) rebalance a world-tracking shard split
// down (up); pinned and codec-bearing splits never move.
func (e *Engine) Shards() int { return e.shards }

// ShardOwners returns the owner of every logical shard slot in the
// assignment the next step would use: shard s is computed by worker
// ShardOwners()[s]. Every shard always has exactly one live owner and the
// per-worker load stays within one shard of even — the conservation
// invariant the membership property tests pin across arbitrary evict/join
// sequences.
func (e *Engine) ShardOwners() []int {
	active := e.activeIDs(e.steps)
	owners := make([]int, e.shards)
	for s := range owners {
		owners[s] = active[s%len(active)]
	}
	return owners
}

// Membership returns the cumulative elastic-membership accounting.
func (e *Engine) Membership() MembershipStats { return e.membership }

// StepMembership returns the membership accounting of the most recent
// training step (evictions and rebalances that closed it, plus its world
// size), the membership view of StepStats.
func (e *Engine) StepMembership() MembershipStats { return e.lastMembership }

// liveIDs returns the indices of the workers still in the collective.
func (e *Engine) liveIDs() []int {
	ids := make([]int, 0, len(e.replicas))
	for w, a := range e.alive {
		if a {
			ids = append(ids, w)
		}
	}
	return ids
}

// activeIDs returns the workers that can do work at the given step: live
// and not marked permanently dead by the fault plan. A dead-but-not-yet-
// evicted worker is excluded from dispatch — its shards are recomputed by
// the survivors, which is the failed-recovery path injectFaults accounts.
func (e *Engine) activeIDs(step int64) []int {
	ids := make([]int, 0, len(e.replicas))
	for w, a := range e.alive {
		if a && !e.cfg.Faults.deadAt(step, w) {
			ids = append(ids, w)
		}
	}
	return ids
}

// slotOwners assigns the logical shard slots round-robin over the active
// workers — shard s belongs to active[s mod len(active)] — keeping the
// per-worker load within one shard of even for any shard/worker ratio, at
// full strength and after evictions alike.
func (e *Engine) slotOwners(active []int) [][]int {
	slots := make([][]int, len(e.replicas))
	for s := 0; s < e.shards; s++ {
		w := active[s%len(active)]
		slots[w] = append(slots[w], s)
	}
	return slots
}

// nodeSizes returns the live-worker count of every non-empty node of the
// hierarchical topology, in node order. Nil for flat engines.
func (e *Engine) nodeSizes() []int {
	if e.nodes == nil {
		return nil
	}
	sizes := make([]int, 0, len(e.nodes))
	for _, members := range e.nodes {
		if len(members) > 0 {
			sizes = append(sizes, len(members))
		}
	}
	return sizes
}

// nodeRole locates live worker w in the degraded hierarchy: whether it
// leads its node (a node's leader is its first surviving member), the
// node's live size, and the count of non-empty nodes (the inter tier's
// world). It panics if w is not a live member of any node.
func (e *Engine) nodeRole(w int) (leader bool, nodeSize, liveNodes int) {
	for _, members := range e.nodes {
		if len(members) == 0 {
			continue
		}
		liveNodes++
		for i, m := range members {
			if m == w {
				leader = i == 0
				nodeSize = len(members)
			}
		}
	}
	if nodeSize == 0 {
		panic(fmt.Sprintf("dist: worker %d is not a live member of any node", w))
	}
	return leader, nodeSize, liveNodes
}

// checkDead enforces the no-forever-retry contract when elasticity is off:
// if the fault plan marks a live worker permanently dead at this step, the
// step surfaces a typed *WorkerDeadError instead of pretending the barrier
// could recover it.
func (e *Engine) checkDead(step int64) error {
	if e.cfg.Elastic != nil {
		return nil
	}
	for _, w := range e.liveIDs() {
		if e.cfg.Faults.deadAt(step, w) {
			return &WorkerDeadError{Worker: w, Step: step}
		}
	}
	return nil
}

// noteStep files the just-completed step under the world size it executed
// at, in both the cumulative and per-step membership accounting.
func (e *Engine) noteStep(world int) {
	e.membership.StepsAtWorld[world]++
	e.lastMembership.StepsAtWorld[world]++
}

// evictDead runs the eviction side of the membership state machine at the
// end of a step: every worker whose consecutive failed recoveries reached
// the policy threshold is removed from the collective (worker-index order,
// for determinism), the shard split and topology are rebuilt over the
// survivors, and the master resynchronizes the fleet with an accounted
// weight broadcast. No-op unless Config.Elastic is set and a worker crossed
// the threshold.
func (e *Engine) evictDead() error {
	if e.cfg.Elastic == nil {
		return nil
	}
	threshold := e.cfg.Elastic.evictAfter()
	evicted := false
	for w := 1; w < len(e.replicas); w++ {
		if !e.alive[w] || e.consecDead[w] < threshold {
			continue
		}
		e.evict(w)
		evicted = true
	}
	if !evicted {
		return nil
	}
	// One membership epoch per step: rebuild the shard split and the
	// overlap cover maps once, then resynchronize the survivors from the
	// master. The broadcast runs at the new world size and is accounted
	// (exposed) like any other barrier traffic, with its payload also
	// filed under RebalancedBytes.
	if e.shardsTrack {
		e.shards = e.world
	}
	before := e.stats.Bytes
	if err := e.BroadcastWeights(); err != nil {
		return err
	}
	moved := e.stats.Bytes - before
	e.membership.RebalancedBytes += moved
	e.lastMembership.RebalancedBytes += moved
	return nil
}

// evict removes worker w from the collective: it counts the shards w owned
// in the membership assignment (they must find new owners), releases w's
// goroutine, unhooks its gradient notifications, and drops it from its
// hierarchy node — a node left empty disappears from the inter tier.
func (e *Engine) evict(w int) {
	members := e.liveIDs()
	var owned int64
	for s := 0; s < e.shards; s++ {
		if members[s%len(members)] == w {
			owned++
		}
	}
	e.membership.Evictions++
	e.membership.RebalancedShards += owned
	e.lastMembership.Evictions++
	e.lastMembership.RebalancedShards += owned

	e.alive[w] = false
	e.started[w] = false
	e.world--
	close(e.jobs[w])
	if e.cfg.Overlap {
		e.replicas[w].SetGradNotify(nil)
	}
	for n, nodeMembers := range e.nodes {
		for i, m := range nodeMembers {
			if m == w {
				e.nodes[n] = append(nodeMembers[:i:i], nodeMembers[i+1:]...)
				break
			}
		}
	}
	// The eviction takes effect for the next step — e.steps was already
	// advanced past the step whose failed recovery crossed the threshold.
	ev := MembershipEvent{Step: e.steps, Worker: w, Join: false, World: e.world}
	e.membership.Events = append(e.membership.Events, ev)
	e.lastMembership.Events = append(e.lastMembership.Events, ev)
}

// admitJoins runs the admission side of the membership state machine at a
// step boundary, before the step's batch is sharded: every worker the
// fault plan schedules to join at this step enters the collective
// (worker-index order, for determinism), the shard split and topology are
// rebuilt over the grown fleet, and the master warm-starts it with an
// accounted weight broadcast at the new world size. No-op unless the plan
// names this step — or, at a local-SGD window start, a step the window
// skipped past: LocalStep checks boundaries only, so a join scheduled
// mid-window defers to the next boundary (sync boundaries are the only
// legal membership-change points). In the every-step modes the two
// conditions coincide, since admission runs each step.
func (e *Engine) admitJoins() error {
	f := e.cfg.Faults
	if f == nil || len(f.Join) == 0 {
		return nil
	}
	var joiners []int
	for w := 1; w < len(e.replicas); w++ {
		if s, ok := f.Join[w]; ok && s <= e.steps && !e.joinDone[w] {
			e.joinDone[w] = true
			e.admit(w)
			joiners = append(joiners, w)
		}
	}
	if len(joiners) == 0 {
		return nil
	}
	// One membership epoch per step, mirroring evictDead: grow a
	// world-tracking shard split to the new world, count the shards that
	// land on the joiners under the new assignment, then resynchronize
	// the fleet from the master. The broadcast runs at the grown world
	// size and is accounted (exposed) like any other barrier traffic,
	// with its payload also filed under JoinedBytes.
	if e.shardsTrack {
		e.shards = e.world
	}
	active := e.activeIDs(e.steps)
	for _, w := range joiners {
		var gained int64
		for s := 0; s < e.shards; s++ {
			if active[s%len(active)] == w {
				gained++
			}
		}
		e.membership.JoinedShards += gained
		e.lastMembership.JoinedShards += gained
	}
	before := e.stats.Bytes
	if err := e.BroadcastWeights(); err != nil {
		return err
	}
	moved := e.stats.Bytes - before
	e.membership.JoinedBytes += moved
	e.lastMembership.JoinedBytes += moved
	return nil
}

// admit brings worker w into the collective at the current step boundary:
// a pending or evicted worker gets a fresh goroutine, its gradient-notify
// hook (when overlapping) and its hierarchy-node seat back — members stay
// in ascending worker order, so node leadership deterministically restores
// to the lowest live index, and a node returning from empty rejoins the
// inter tier. A still-live suspected worker whose outage just ended only
// needs its failure counter cleared (the caller's broadcast resyncs its
// weights). Either way the admission is counted and filed on the timeline.
func (e *Engine) admit(w int) {
	e.consecDead[w] = 0
	if !e.alive[w] {
		e.alive[w] = true
		e.world++
		e.startWorker(w)
		if e.cfg.Overlap {
			e.replicas[w].SetGradNotify(func(param int) { e.gradReady(w, param) })
		}
		if e.nodes != nil {
			n := w / e.cfg.Topology.PerNode
			members := e.nodes[n]
			i := sort.SearchInts(members, w)
			e.nodes[n] = append(members[:i:i], append([]int{w}, members[i:]...)...)
		}
	}
	e.membership.Joins++
	e.lastMembership.Joins++
	ev := MembershipEvent{Step: e.steps, Worker: w, Join: true, World: e.world}
	e.membership.Events = append(e.membership.Events, ev)
	e.lastMembership.Events = append(e.lastMembership.Events, ev)
}
