package dist

import (
	"sort"
	"sync"

	"repro/internal/compress"
)

// Codec compresses reduction payloads on the (simulated) wire. The engine
// passes every logical shard's bucket payload through Transform before
// reduction, so the lossy wire format feeds back into training exactly as
// it would on real hardware, while CommStats.Bytes records the wire size
// instead of the raw 4n float bytes.
//
// Transform is keyed by slot — a stable (shard, bucket) identifier — so
// stateful codecs (1-bit SGD's error feedback) carry per-payload residual
// state across steps. Slots are keyed by the logical shard, not the
// physical worker, which keeps codec numerics independent of the worker
// count like everything else in the engine. Different slots may be
// transformed concurrently; a slot is never used by two goroutines at once.
type Codec interface {
	// Name identifies the codec in logs and stats tables.
	Name() string
	// Transform rounds data through the codec's wire representation in
	// place (lossy) and returns the payload's wire byte count.
	Transform(slot int, data []float32) int64
}

// FP16Codec exchanges gradients in IEEE half precision: 2 bytes per
// coordinate on the wire, values rounded through float16 on the way.
type FP16Codec struct{}

// fp16Scratch pools the encode buffers: Transform runs per shard per
// bucket on every training step, and a fresh allocation there would be
// pure GC churn in the engine's hot reduction path.
var fp16Scratch = sync.Pool{New: func() any { return []uint16(nil) }}

// Name implements Codec.
func (FP16Codec) Name() string { return "fp16" }

// Transform implements Codec.
func (FP16Codec) Transform(_ int, data []float32) int64 {
	buf := fp16Scratch.Get().([]uint16)
	if cap(buf) < len(data) {
		buf = make([]uint16, len(data))
	}
	buf = buf[:len(data)]
	compress.EncodeFP16(data, buf)
	compress.DecodeFP16(buf, data)
	fp16Scratch.Put(buf)
	return 2 * int64(len(data))
}

// OneBitCodec is Seide et al.'s 1-bit SGD as a dist payload codec: one sign
// bit per coordinate plus two scales on the wire (~32x smaller), with the
// quantization error carried per slot as the next step's residual — the
// error feedback that makes the scheme converge.
type OneBitCodec struct {
	mu    sync.Mutex
	slots map[int]*compress.Quantizer
}

// NewOneBitCodec returns a 1-bit codec with empty error-feedback state.
func NewOneBitCodec() *OneBitCodec {
	return &OneBitCodec{slots: make(map[int]*compress.Quantizer)}
}

// Name implements Codec.
func (c *OneBitCodec) Name() string { return "1bit" }

// Slots returns the slot ids currently carrying error-feedback state, in
// ascending order — the state internal/checkpoint snapshots so a 1-bit
// run can resume bit-identically.
func (c *OneBitCodec) Slots() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.slots))
	for slot := range c.slots {
		out = append(out, slot)
	}
	sort.Ints(out)
	return out
}

// SlotResidual returns a copy of the error-feedback residual carried for
// slot, or nil when the slot has no state yet.
func (c *OneBitCodec) SlotResidual(slot int) []float32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	z := c.slots[slot]
	if z == nil {
		return nil
	}
	return append([]float32(nil), z.Residual()...)
}

// RestoreSlot installs a residual for slot (copying it), creating the
// slot's quantizer at the residual's length — the restore half of the
// checkpoint round trip.
func (c *OneBitCodec) RestoreSlot(slot int, residual []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	z := compress.NewQuantizer(len(residual))
	z.SetResidual(residual)
	c.slots[slot] = z
}

// Transform implements Codec.
func (c *OneBitCodec) Transform(slot int, data []float32) int64 {
	c.mu.Lock()
	z := c.slots[slot]
	if z == nil {
		z = compress.NewQuantizer(len(data))
		c.slots[slot] = z
	}
	c.mu.Unlock()
	q := z.Encode(data)
	q.Decode(data)
	return q.Bytes()
}
