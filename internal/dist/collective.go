package dist

import (
	"fmt"

	"repro/internal/par"
)

// Reduce performs the gradient-sum phase of one allreduce over the workers'
// equal-length buffers: the element-wise sum of all buffers lands in
// bufs[0] (the root). Under Ring — whose reduce-scatter + allgather leaves
// the result on every worker — all buffers receive the sum. The executed
// schedule is accounted into stats when non-nil.
//
// Per the package's reproducibility contract the sum is computed in
// canonical worker order with float64 accumulation, so all three algorithms
// return bitwise-identical values.
func Reduce(algo Algorithm, bufs [][]float32, stats *CommStats) {
	p := len(bufs)
	if p == 0 {
		return
	}
	n := checkUniform("Reduce", bufs)
	if p > 1 {
		canonicalSum(bufs)
		if algo == Ring {
			fanOut(bufs)
		}
	}
	if stats != nil {
		stats.Add(reduceSchedule(algo, p, 4*int64(n)))
	}
}

// Broadcast distributes bufs[0] (the root's buffer) to every other worker
// under the given topology, accounting the schedule into stats when
// non-nil. Paired with Reduce it completes one allreduce: afterwards every
// buffer holds the reduced value under any algorithm.
func Broadcast(algo Algorithm, bufs [][]float32, stats *CommStats) {
	p := len(bufs)
	if p == 0 {
		return
	}
	n := checkUniform("Broadcast", bufs)
	if p > 1 {
		fanOut(bufs)
	}
	if stats != nil {
		stats.Add(broadcastSchedule(algo, p, 4*int64(n)))
	}
}

// canonicalSum computes the element-wise sum of all buffers into bufs[0] in
// canonical worker order with float64 accumulation — the one reduction
// arithmetic every topology (flat or hierarchical) shares, which is what
// makes topology choice a pure accounting decision.
func canonicalSum(bufs [][]float32) {
	root := bufs[0]
	p := len(bufs)
	par.ForGrain(len(root), 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := float64(root[i])
			for w := 1; w < p; w++ {
				acc += float64(bufs[w][i])
			}
			root[i] = float32(acc)
		}
	})
}

// fanOut copies bufs[0] into every other buffer, parallelized over workers.
func fanOut(bufs [][]float32) {
	root := bufs[0]
	tasks := make([]func(), 0, len(bufs)-1)
	for w := 1; w < len(bufs); w++ {
		dst := bufs[w]
		tasks = append(tasks, func() { copy(dst, root) })
	}
	par.Do(tasks...)
}

// checkUniform panics unless all buffers share one length, which it returns.
func checkUniform(op string, bufs [][]float32) int {
	n := len(bufs[0])
	for w, b := range bufs {
		if len(b) != n {
			panic(fmt.Sprintf("dist: %s: buffer %d has %d elements, worker 0 has %d", op, w, len(b), n))
		}
	}
	return n
}
