package dist

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/par"
)

// Reduction selects the arithmetic of the gradient-sum phase — the one
// degree of freedom the reproducibility contract leaves open. Both
// disciplines are deterministic and independent of worker count, topology
// and goroutine chunking; they differ in accumulator precision and speed.
type Reduction int

const (
	// CanonicalF64 is the historical default: a strict left-to-right sum
	// in canonical shard order with float64 accumulation. Maximum
	// precision, but the per-coordinate float64 dependency chain is the
	// hot loop's bottleneck at scale.
	CanonicalF64 Reduction = iota
	// PairwiseF32 sums in float32 through a fixed-shape pairwise tree
	// (internal/kernel): the tree depends only on the number of summands,
	// never on worker count or chunking, so results remain bit-identical
	// across P, topologies, shard-to-worker assignments and overlap — the
	// same invariances CanonicalF64 has — while the unrolled
	// multi-accumulator float32 loops run substantially faster and the
	// O(log n)·ε pairwise error stays far below the naive float32 sum's.
	PairwiseF32
)

// String implements fmt.Stringer.
func (r Reduction) String() string {
	switch r {
	case CanonicalF64:
		return "canonical-f64"
	case PairwiseF32:
		return "pairwise-f32"
	default:
		return fmt.Sprintf("Reduction(%d)", int(r))
	}
}

// Reduce performs the gradient-sum phase of one allreduce over the workers'
// equal-length buffers: the element-wise sum of all buffers lands in
// bufs[0] (the root). Under Ring — whose reduce-scatter + allgather leaves
// the result on every worker — all buffers receive the sum. The executed
// schedule is accounted into stats when non-nil.
//
// Per the package's reproducibility contract the sum is computed in
// canonical worker order with float64 accumulation, so all three algorithms
// return bitwise-identical values. ReduceWith selects the arithmetic.
func Reduce(algo Algorithm, bufs [][]float32, stats *CommStats) {
	ReduceWith(algo, CanonicalF64, bufs, stats)
}

// ReduceWith is Reduce under an explicit reduction policy. Either policy
// keeps the three algorithms bitwise identical to each other; what changes
// is the summation arithmetic itself (see Reduction).
func ReduceWith(algo Algorithm, policy Reduction, bufs [][]float32, stats *CommStats) {
	p := len(bufs)
	if p == 0 {
		return
	}
	n := checkUniform("Reduce", bufs)
	if p > 1 {
		sumInto(policy, bufs)
		if algo == Ring {
			fanOut(bufs)
		}
	}
	if stats != nil {
		stats.Add(reduceSchedule(algo, p, 4*int64(n)))
	}
}

// Broadcast distributes bufs[0] (the root's buffer) to every other worker
// under the given topology, accounting the schedule into stats when
// non-nil. Paired with Reduce it completes one allreduce: afterwards every
// buffer holds the reduced value under any algorithm.
func Broadcast(algo Algorithm, bufs [][]float32, stats *CommStats) {
	p := len(bufs)
	if p == 0 {
		return
	}
	n := checkUniform("Broadcast", bufs)
	if p > 1 {
		fanOut(bufs)
	}
	if stats != nil {
		stats.Add(broadcastSchedule(algo, p, 4*int64(n)))
	}
}

// sumInto computes the element-wise sum of all buffers into bufs[0] under
// the selected policy, parallelized over coordinate chunks. Both policies
// are chunking-invariant (CanonicalF64 per coordinate trivially;
// PairwiseF32 because its tree runs over the worker index), which is what
// makes topology — and goroutine count — a pure accounting decision.
func sumInto(policy Reduction, bufs [][]float32) {
	defer kernel.StartPhase(kernel.PhaseReduce).End()
	root := bufs[0]
	par.ForGrain(len(root), 2048, func(lo, hi int) {
		sub := make([][]float32, len(bufs))
		for w, b := range bufs {
			sub[w] = b[lo:hi]
		}
		if policy == PairwiseF32 {
			kernel.PairwiseAccumulate(root[lo:hi], sub, nil)
		} else {
			kernel.CanonicalAccumulate(root[lo:hi], sub, nil)
		}
	})
}

// fanOut copies bufs[0] into every other buffer, parallelized over workers.
func fanOut(bufs [][]float32) {
	root := bufs[0]
	tasks := make([]func(), 0, len(bufs)-1)
	for w := 1; w < len(bufs); w++ {
		dst := bufs[w]
		tasks = append(tasks, func() { copy(dst, root) })
	}
	par.Do(tasks...)
}

// checkUniform panics unless all buffers share one length, which it returns.
func checkUniform(op string, bufs [][]float32) int {
	n := len(bufs[0])
	for w, b := range bufs {
		if len(b) != n {
			panic(fmt.Sprintf("dist: %s: buffer %d has %d elements, worker 0 has %d", op, w, len(b), n))
		}
	}
	return n
}
