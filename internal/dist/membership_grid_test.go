package dist_test

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestMembershipGridBitIdentical is the membership acceptance grid (the
// PR 8 resolution-grid pattern applied to elastic scale): join-after-evict
// and evict-after-join scenarios, across central/tree/ring/hier(2x2) ×
// overlap on/off × f32/f16, with every post-transition step required to be
// bit-identical to a fresh engine at that world size started from the
// current master weights. The fresh comparators run flat, non-overlapped
// central schedules — the engine's values contract says topology, overlap
// and membership history are all invisible to the numerics, so one
// comparator per (precision, world) covers the whole grid row.
func TestMembershipGridBitIdentical(t *testing.T) {
	x, labels, _ := testTask(48)
	hier := dist.NewHierarchy(2, 2)
	// The grid trains MicroConvNet: the bit-identity contract needs a model
	// that is a pure function of its weights, and MicroConvNet deliberately
	// has no dropout RNG or BN batch statistics to smuggle replica-local
	// state past CopyWeightsFrom.
	mkFactory := func(p tensor.Precision) func(uint64) *nn.Network {
		return func(seed uint64) *nn.Network {
			net := models.NewMicroConvNet(models.MicroConfig{Classes: 4, InH: 8, InW: 8, Width: 4, Seed: seed})
			if p != tensor.F32 {
				net.SetPrecision(p)
			}
			return net
		}
	}
	nparams := mkFactory(tensor.F32)(1).NumParams()

	// freshAt builds a flat fresh engine at the given world size whose
	// master weights equal the elastic engine's current ones.
	freshAt := func(world int, factory func(uint64) *nn.Network, master *nn.Network) *dist.Engine {
		replicas := make([]*nn.Network, world)
		for i := range replicas {
			replicas[i] = factory(900 + uint64(i)*7919)
		}
		replicas[0].CopyWeightsFrom(master)
		return dist.NewEngine(dist.Config{Algo: dist.Central}, replicas)
	}
	compareStep := func(t *testing.T, label string, step int, elastic, fresh *dist.Engine) {
		t.Helper()
		gotLoss := stepOnce(t, elastic, x, labels)
		wantLoss := stepOnce(t, fresh, x, labels)
		if gotLoss != wantLoss {
			t.Fatalf("%s step %d: loss %v differs bitwise from the fresh engine's %v", label, step, gotLoss, wantLoss)
		}
		got, want := flatGrad(elastic), flatGrad(fresh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s step %d: grad coord %d differs from the fresh engine", label, step, i)
			}
		}
	}

	type scenario struct {
		name string
		plan *dist.FaultPlan
		// run drives the elastic engine through its transitions, building
		// fresh comparators at each post-transition world size.
		run func(t *testing.T, label string, e *dist.Engine, factory func(uint64) *nn.Network)
	}
	scenarios := []scenario{
		{
			name: "join-after-evict",
			plan: &dist.FaultPlan{Dead: map[int]int64{3: 1}, Join: map[int]int64{3: 3}},
			run: func(t *testing.T, label string, e *dist.Engine, factory func(uint64) *nn.Network) {
				// Steps 0-1 at world 4 (worker 3 dead at 1, evicted
				// closing step 1), step 2 at world 3, steps 3-4 back at 4.
				stepOnce(t, e, x, labels)
				stepOnce(t, e, x, labels)
				if e.LiveWorkers() != 3 {
					t.Fatalf("%s: world %d after eviction, want 3", label, e.LiveWorkers())
				}
				fresh3 := freshAt(3, factory, e.Master())
				defer fresh3.Close()
				compareStep(t, label, 2, e, fresh3)
				fresh4 := freshAt(4, factory, e.Master())
				defer fresh4.Close()
				compareStep(t, label, 3, e, fresh4)
				compareStep(t, label, 4, e, fresh4)
				if e.LiveWorkers() != 4 {
					t.Fatalf("%s: world %d after rejoin, want 4", label, e.LiveWorkers())
				}
			},
		},
		{
			name: "evict-after-join",
			plan: &dist.FaultPlan{Dead: map[int]int64{2: 3}, Join: map[int]int64{3: 2}},
			run: func(t *testing.T, label string, e *dist.Engine, factory func(uint64) *nn.Network) {
				// Steps 0-1 at world 3 (worker 3 pending), steps 2-3 at
				// world 4 (worker 2 dead at 3, recovered in place — the
				// split is unchanged until the eviction closes the step),
				// step 4 at world 3 again.
				if e.LiveWorkers() != 3 {
					t.Fatalf("%s: world %d before join, want 3 (pending joiner)", label, e.LiveWorkers())
				}
				stepOnce(t, e, x, labels)
				stepOnce(t, e, x, labels)
				fresh4 := freshAt(4, factory, e.Master())
				defer fresh4.Close()
				compareStep(t, label, 2, e, fresh4)
				compareStep(t, label, 3, e, fresh4)
				if e.LiveWorkers() != 3 {
					t.Fatalf("%s: world %d after eviction, want 3", label, e.LiveWorkers())
				}
				fresh3 := freshAt(3, factory, e.Master())
				defer fresh3.Close()
				compareStep(t, label, 4, e, fresh3)
			},
		},
	}

	topologies := []struct {
		name string
		algo dist.Algorithm
		topo *dist.Hierarchy
	}{
		{"central", dist.Central, nil},
		{"tree", dist.Tree, nil},
		{"ring", dist.Ring, nil},
		{"hier 2x2", dist.Tree, &hier},
	}
	for _, sc := range scenarios {
		for _, tc := range topologies {
			for _, overlap := range []bool{false, true} {
				for _, p := range []tensor.Precision{tensor.F32, tensor.F16} {
					label := fmt.Sprintf("%s/%s/overlap=%v/%s", sc.name, tc.name, overlap, p)
					factory := mkFactory(p)
					bucket := 0
					if overlap {
						bucket = nparams/4 + 1
					}
					// Copy the plan maps: the engine validates them but the
					// scenarios are shared across the grid.
					plan := &dist.FaultPlan{Dead: map[int]int64{}, Join: map[int]int64{}}
					for w, s := range sc.plan.Dead {
						plan.Dead[w] = s
					}
					for w, s := range sc.plan.Join {
						plan.Join[w] = s
					}
					e := newEngine(dist.Config{
						Algo: tc.algo, Topology: tc.topo,
						BucketElems: bucket, Overlap: overlap,
						Faults:  plan,
						Elastic: &dist.Elastic{EvictAfter: 1},
					}, 4, factory)
					sc.run(t, label, e, factory)
					e.Close()
				}
			}
		}
	}
}
