package dist_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
)

// overlapConfigs are representative engine layouts for the overlap tests:
// every flat topology plus a two-tier hierarchy, with enough buckets that
// most of the schedule is overlap-eligible.
func overlapConfigs(bucketElems int) []dist.Config {
	h := dist.NewHierarchy(2, 2)
	return []dist.Config{
		{Algo: dist.Central, BucketElems: bucketElems},
		{Algo: dist.Tree, BucketElems: bucketElems},
		{Algo: dist.Ring, BucketElems: bucketElems},
		{Topology: &h, BucketElems: bucketElems},
	}
}

// TestOverlapBitIdenticalToSequential is the tentpole's value contract:
// firing bucket reductions inside the backward pass must not change a
// single bit of the reduced gradient or the loss versus reducing after the
// full backward, for every topology.
func TestOverlapBitIdenticalToSequential(t *testing.T) {
	x, labels, factory := testTask(64)
	n := factory(1).NumParams()
	for _, cfg := range overlapConfigs(n/5 + 1) {
		seq := cfg
		seq.Overlap = false
		e := newEngine(seq, 4, factory)
		wantLoss, err := e.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		wantGrad := flatGrad(e)
		wantStats := e.StepStats()
		e.Close()

		ov := cfg
		ov.Overlap = true
		oe := newEngine(ov, 4, factory)
		gotLoss, err := oe.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		gotGrad := flatGrad(oe)
		gotStats := oe.StepStats()
		oe.Close()

		if gotLoss != wantLoss {
			t.Fatalf("%+v: overlap loss %v differs bitwise from sequential %v", cfg, gotLoss, wantLoss)
		}
		for i := range wantGrad {
			if gotGrad[i] != wantGrad[i] {
				t.Fatalf("%+v: overlap changed grad coord %d: %v vs %v", cfg, i, gotGrad[i], wantGrad[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("%+v: overlap changed the schedule counters: %+v vs %+v", cfg, gotStats, wantStats)
		}
	}
}

// TestOverlapBitIdenticalWithCodecAndShards extends the value contract to
// lossy wire codecs (whose error-feedback state is slot-keyed and must not
// care when buckets reduce) and multi-shard workers.
func TestOverlapBitIdenticalWithCodecAndShards(t *testing.T) {
	x, labels, factory := testTask(60)
	n := factory(1).NumParams()
	run := func(overlap bool) ([]float32, dist.CommStats) {
		e := newEngine(dist.Config{
			Algo: dist.Ring, Shards: 6, BucketElems: n/4 + 1,
			Overlap: overlap, Codec: dist.NewOneBitCodec(),
		}, 3, factory)
		defer e.Close()
		var grad []float32
		for step := 0; step < 3; step++ {
			if _, err := e.ComputeGradient(x, labels); err != nil {
				t.Fatal(err)
			}
			// A toy update so the codec's residual state matters.
			for _, p := range e.Master().Params() {
				p.W.Axpy(-0.05, p.G)
			}
			if err := e.BroadcastWeights(); err != nil {
				t.Fatal(err)
			}
			grad = flatGrad(e)
		}
		return grad, e.Stats()
	}
	seqGrad, seqStats := run(false)
	ovGrad, ovStats := run(true)
	for i := range seqGrad {
		if ovGrad[i] != seqGrad[i] {
			t.Fatalf("overlap + 1-bit codec changed grad coord %d after 3 steps", i)
		}
	}
	if ovStats != seqStats {
		t.Fatalf("overlap changed codec schedule counters: %+v vs %+v", ovStats, seqStats)
	}
}

// TestOverlapSplitEqualsStats pins the accounting invariant: per step and
// cumulatively, HiddenRounds+ExposedRounds == Stats().Steps and
// HiddenBytes+ExposedBytes == Stats().Bytes — including broadcasts and
// fault-recovery traffic, which are always exposed.
func TestOverlapSplitEqualsStats(t *testing.T) {
	x, labels, factory := testTask(64)
	// Buckets fine enough that some lie entirely past the MLP's large
	// first parameter — those are the overlap-eligible (hidden) ones.
	for _, cfg := range overlapConfigs(512) {
		cfg.Overlap = true
		cfg.Faults = &dist.FaultPlan{Seed: 3, DropRate: 0.5, StallRate: 0.5}
		e := newEngine(cfg, 4, factory)
		for step := 0; step < 3; step++ {
			if _, err := e.ComputeGradient(x, labels); err != nil {
				t.Fatal(err)
			}
			if err := e.BroadcastWeights(); err != nil {
				t.Fatal(err)
			}
			ov, st := e.StepOverlapStats(), e.StepStats()
			if ov.Rounds() != st.Steps || ov.TotalBytes() != st.Bytes {
				t.Fatalf("%+v step %d: overlap split %+v does not partition step stats %+v", cfg, step, ov, st)
			}
		}
		ov, st := e.OverlapStats(), e.Stats()
		e.Close()
		if ov.Rounds() != st.Steps || ov.TotalBytes() != st.Bytes {
			t.Fatalf("%+v: cumulative overlap split %+v does not partition stats %+v", cfg, ov, st)
		}
		if ov.HiddenRounds == 0 || ov.HiddenBytes == 0 {
			t.Fatalf("%+v: nothing hid behind the backward pass: %+v", cfg, ov)
		}
	}
}

// TestOverlapStatsMatchExpected is the closed-form acceptance criterion:
// one clean overlapped step's measured hidden/exposed split must equal
// comm.ExpectedOverlapStats (or its hierarchical twin) exactly.
func TestOverlapStatsMatchExpected(t *testing.T) {
	x, labels, factory := testTask(64)
	var paramElems []int
	for _, p := range factory(1).Params() {
		paramElems = append(paramElems, p.Numel())
	}
	n := factory(1).NumParams()
	for _, bucketElems := range []int{0, n/5 + 1, n/2 + 1, 7} {
		for _, cfg := range overlapConfigs(bucketElems) {
			cfg.Overlap = true
			e := newEngine(cfg, 4, factory)
			if _, err := e.ComputeGradient(x, labels); err != nil {
				t.Fatal(err)
			}
			if err := e.BroadcastWeights(); err != nil {
				t.Fatal(err)
			}
			got := e.StepOverlapStats()
			e.Close()
			var want dist.OverlapStats
			if cfg.Topology != nil {
				want = comm.ExpectedHierOverlapStats(*cfg.Topology, paramElems, bucketElems)
			} else {
				want = comm.ExpectedOverlapStats(cfg.Algo, 4, paramElems, bucketElems)
			}
			if got != want {
				t.Errorf("%+v bucket=%d: measured overlap %+v, want closed form %+v", cfg, bucketElems, got, want)
			}
		}
	}
}

// TestOverlapSingleBucketAllExposed: with the whole gradient in one bucket
// nothing can fire before the backward ends, so the reduce is exposed too.
func TestOverlapSingleBucketAllExposed(t *testing.T) {
	x, labels, factory := testTask(32)
	e := newEngine(dist.Config{Algo: dist.Tree, Overlap: true}, 2, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	ov := e.StepOverlapStats()
	if ov.HiddenRounds != 0 || ov.HiddenBytes != 0 {
		t.Fatalf("single bucket hid schedule: %+v", ov)
	}
	if ov.ExposedRounds == 0 || ov.ExposedBytes == 0 {
		t.Fatalf("single bucket recorded nothing: %+v", ov)
	}
}

// TestNoOverlapAllExposed: with Config.Overlap unset the split still
// partitions the stats, with everything on the exposed side.
func TestNoOverlapAllExposed(t *testing.T) {
	x, labels, factory := testTask(32)
	n := factory(1).NumParams()
	e := newEngine(dist.Config{Algo: dist.Ring, BucketElems: n/4 + 1}, 2, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	if err := e.BroadcastWeights(); err != nil {
		t.Fatal(err)
	}
	ov, st := e.StepOverlapStats(), e.StepStats()
	if ov.HiddenRounds != 0 || ov.HiddenBytes != 0 {
		t.Fatalf("sequential engine hid schedule: %+v", ov)
	}
	if ov.ExposedRounds != st.Steps || ov.ExposedBytes != st.Bytes {
		t.Fatalf("exposed side %+v does not cover step stats %+v", ov, st)
	}
}

// TestOverlapUnevenAndEmptyShards: the overlap scheduler must handle
// batches that do not divide the shard count and shard counts exceeding the
// batch rows (empty shards never land gradients), staying bit-identical to
// the sequential engine.
func TestOverlapUnevenAndEmptyShards(t *testing.T) {
	for _, tc := range []struct{ batch, shards, workers int }{
		{50, 7, 3}, // uneven shard sizes, uneven worker slots
		{5, 12, 4}, // more shards than batch rows: empty shards
	} {
		x, labels, factory := testTask(tc.batch)
		seq := newEngine(dist.Config{Algo: dist.Tree, Shards: tc.shards, BucketElems: 40}, tc.workers, factory)
		wantLoss, err := seq.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		want := flatGrad(seq)
		seq.Close()

		ov := newEngine(dist.Config{Algo: dist.Tree, Shards: tc.shards, BucketElems: 40, Overlap: true}, tc.workers, factory)
		gotLoss, err := ov.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		got := flatGrad(ov)
		ov.Close()
		if gotLoss != wantLoss {
			t.Fatalf("B=%d S=%d W=%d: overlap loss differs", tc.batch, tc.shards, tc.workers)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("B=%d S=%d W=%d: overlap changed grad coord %d", tc.batch, tc.shards, tc.workers, i)
			}
		}
	}
}

// TestOverlapWorkerErrorRecovers: a worker failure mid-backward must not
// wedge the overlap scheduler — the step errors out accounting nothing
// (matching the sequential path, even if some buckets fired before the
// failure surfaced) and the engine accepts a corrected step afterwards.
func TestOverlapWorkerErrorRecovers(t *testing.T) {
	x, labels, factory := testTask(32)
	n := factory(1).NumParams()
	e := newEngine(dist.Config{Algo: dist.Ring, BucketElems: n/4 + 1, Overlap: true}, 2, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	labels[7] = 99 // out of class range: the loss layer panics
	if _, err := e.ComputeGradient(x, labels); err == nil {
		t.Fatal("expected worker error for out-of-range label")
	}
	if got := e.Stats(); got != before {
		t.Fatalf("failed step polluted the counters: %+v vs %+v", got, before)
	}
	labels[7] = 0
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatalf("overlap engine unusable after recovered error: %v", err)
	}
}
