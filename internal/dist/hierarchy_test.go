package dist_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
)

// hierarchies lists representative two-tier layouts: square, wide nodes,
// many small nodes, non-power-of-two node counts, and degenerate tiers.
var hierarchies = []dist.Hierarchy{
	dist.NewHierarchy(2, 2),
	dist.NewHierarchy(2, 4),
	dist.NewHierarchy(4, 2),
	dist.NewHierarchy(3, 2),
	{Nodes: 2, PerNode: 3, Intra: dist.Central, Inter: dist.Ring},
	{Nodes: 1, PerNode: 4, Intra: dist.Ring, Inter: dist.Tree}, // single node: inter tier is free
	{Nodes: 4, PerNode: 1, Intra: dist.Ring, Inter: dist.Tree}, // one worker per node: intra tier is free
	{Nodes: 2, PerNode: 2, Intra: dist.Tree, Inter: dist.Central},
}

// TestNewHierarchyDefaults pins the paper-style composition: ring inside
// the node, tree across node leaders.
func TestNewHierarchyDefaults(t *testing.T) {
	h := dist.NewHierarchy(3, 4)
	if h.Nodes != 3 || h.PerNode != 4 || h.Intra != dist.Ring || h.Inter != dist.Tree {
		t.Fatalf("NewHierarchy(3,4) = %+v, want 3x4 ring/tree", h)
	}
	if h.Workers() != 12 {
		t.Fatalf("Workers() = %d, want 12", h.Workers())
	}
	if h.String() != "3x4 ring/tree" {
		t.Fatalf("String() = %q", h.String())
	}
}

// TestHierReduceBitIdenticalToFlat is the reproducibility contract extended
// to composed topologies: a hierarchical reduction returns bitwise the same
// sum as every flat topology, whatever the node layout.
func TestHierReduceBitIdenticalToFlat(t *testing.T) {
	for _, h := range hierarchies {
		src := randomBufs(h.Workers(), 513, uint64(h.Workers()))
		flat := cloneBufs(src)
		dist.Reduce(dist.Tree, flat, nil)
		bufs := cloneBufs(src)
		dist.HierReduce(h, bufs, nil)
		for i := range flat[0] {
			if bufs[0][i] != flat[0][i] {
				t.Fatalf("%v: coord %d = %v, flat tree reference %v", h, i, bufs[0][i], flat[0][i])
			}
		}
	}
}

// TestHierAllreduceLeavesSumEverywhere: HierReduce followed by
// HierBroadcast must leave every worker holding the root's sum.
func TestHierAllreduceLeavesSumEverywhere(t *testing.T) {
	for _, h := range hierarchies {
		bufs := randomBufs(h.Workers(), 129, 5)
		dist.HierReduce(h, bufs, nil)
		dist.HierBroadcast(h, bufs, nil)
		for w := 1; w < len(bufs); w++ {
			for i := range bufs[0] {
				if bufs[w][i] != bufs[0][i] {
					t.Fatalf("%v: worker %d coord %d = %v, root %v", h, w, i, bufs[w][i], bufs[0][i])
				}
			}
		}
	}
}

// TestHierTierStatsClosedForm pins the executed two-tier schedule of the
// default composition (ring intra, tree inter) to independently written
// closed forms: the intra tier runs one ring allreduce per node (messages
// and bytes summed over the N concurrent nodes, latency rounds counted
// once), the inter tier one tree allreduce among the N leaders.
func TestHierTierStatsClosedForm(t *testing.T) {
	ceilLog2 := func(p int) int64 {
		var n int64
		for v := 1; v < p; v *= 2 {
			n++
		}
		return n
	}
	const elems = 100
	payload := int64(4 * elems)
	for _, layout := range [][2]int{{2, 2}, {2, 4}, {4, 2}, {3, 3}} {
		nodes, perNode := layout[0], layout[1]
		h := dist.NewHierarchy(nodes, perNode)
		bufs := randomBufs(h.Workers(), elems, 7)
		var tiers dist.TierStats
		dist.HierReduce(h, bufs, &tiers)
		dist.HierBroadcast(h, bufs, &tiers)

		n, m := int64(nodes), int64(perNode)
		wantIntra := dist.CommStats{ // ring reduce-scatter+allgather, then binomial fan-out, per node
			Messages: n * (2*m*(m-1) + (m - 1)),
			Bytes:    n * 3 * (m - 1) * payload,
			Steps:    2*(m-1) + ceilLog2(perNode),
		}
		wantInter := dist.CommStats{ // binomial tree up and down among the leaders
			Messages: 2 * (n - 1),
			Bytes:    2 * (n - 1) * payload,
			Steps:    2 * ceilLog2(nodes),
		}
		if tiers.Intra != wantIntra {
			t.Errorf("%v intra tier %+v, want %+v", h, tiers.Intra, wantIntra)
		}
		if tiers.Inter != wantInter {
			t.Errorf("%v inter tier %+v, want %+v", h, tiers.Inter, wantInter)
		}
		total := tiers.Total()
		sum := wantIntra
		sum.Add(wantInter)
		if total != sum {
			t.Errorf("%v Total() = %+v, want tier sum %+v", h, total, sum)
		}
	}
}

// TestEngineHierStepStatsMatchExpected is the closed-form acceptance
// criterion: one hierarchical engine step's measured per-tier counters must
// equal comm.ExpectedTierStats for the full gradient payload, exactly, over
// every layout and algorithm pairing.
func TestEngineHierStepStatsMatchExpected(t *testing.T) {
	x, labels, factory := testTask(64)
	payload := int64(4 * factory(1).NumParams())
	for _, h := range hierarchies {
		h := h
		e := newEngine(dist.Config{Topology: &h}, h.Workers(), factory)
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatal(err)
		}
		if err := e.BroadcastWeights(); err != nil {
			t.Fatal(err)
		}
		tiers := e.StepTierStats()
		step := e.StepStats()
		e.Close()
		want := comm.ExpectedTierStats(h, payload)
		if tiers != want {
			t.Errorf("%v: measured tiers %+v, want closed form %+v", h, tiers, want)
		}
		if step != want.Total() {
			t.Errorf("%v: aggregate step stats %+v, want tier-sum %+v", h, step, want.Total())
		}
	}
}

// TestEngineHierarchyBitIdenticalToFlat is the acceptance criterion at the
// engine level: with the shard split pinned, a hierarchical engine produces
// bitwise the gradient and loss of flat ring and tree engines.
func TestEngineHierarchyBitIdenticalToFlat(t *testing.T) {
	x, labels, factory := testTask(64)
	const shards = 4
	var refGrad []float32
	var refLoss float64
	for _, algo := range []dist.Algorithm{dist.Ring, dist.Tree} {
		e := newEngine(dist.Config{Algo: algo, Shards: shards}, 4, factory)
		loss, err := e.ComputeGradient(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		refGrad = flatGrad(e)
		refLoss = loss
		e.Close()

		for _, h := range []dist.Hierarchy{dist.NewHierarchy(2, 2), dist.NewHierarchy(4, 1), dist.NewHierarchy(1, 4)} {
			h := h
			he := newEngine(dist.Config{Topology: &h, Shards: shards}, 4, factory)
			hloss, err := he.ComputeGradient(x, labels)
			if err != nil {
				t.Fatal(err)
			}
			hgrad := flatGrad(he)
			he.Close()
			if hloss != refLoss {
				t.Fatalf("%v: loss %v differs bitwise from flat %v's %v", h, hloss, algo, refLoss)
			}
			for i := range hgrad {
				if hgrad[i] != refGrad[i] {
					t.Fatalf("%v: grad coord %d differs bitwise from flat %v", h, i, algo)
				}
			}
		}
	}
}

// TestEngineTierTotalsMatchAggregate: for hierarchical runs the flat
// counters must be exactly the sum of the two tiers, including under
// bucketing and fault injection.
func TestEngineTierTotalsMatchAggregate(t *testing.T) {
	x, labels, factory := testTask(64)
	h := dist.NewHierarchy(2, 2)
	e := newEngine(dist.Config{
		Topology: &h, BucketElems: 50,
		Faults: &dist.FaultPlan{Seed: 3, DropRate: 0.5, StallRate: 0.5},
	}, 4, factory)
	defer e.Close()
	for step := 0; step < 4; step++ {
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatal(err)
		}
		if err := e.BroadcastWeights(); err != nil {
			t.Fatal(err)
		}
		if got, want := e.StepTierStats().Total(), e.StepStats(); got != want {
			t.Fatalf("step %d: tier total %+v != step stats %+v", step, got, want)
		}
	}
	if got, want := e.TierStats().Total(), e.Stats(); got != want {
		t.Fatalf("cumulative tier total %+v != stats %+v", got, want)
	}
	if e.Stats().Retries == 0 || e.Stats().Stalls == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

// TestHierarchyFaultTierAttribution: recovery traffic lands on the tier the
// dropped worker sends on — intra for node members, inter for node leaders.
// In a 2x2 layout with DropRate 1, workers 1 and 3 (node members) drop on
// the intra fabrics and worker 2 (node 1's leader) on the inter fabric;
// worker 0, the global root, never drops.
func TestHierarchyFaultTierAttribution(t *testing.T) {
	x, labels, factory := testTask(32)
	h := dist.NewHierarchy(2, 2)
	e := newEngine(dist.Config{Topology: &h, Faults: &dist.FaultPlan{Seed: 1, DropRate: 1}}, 4, factory)
	defer e.Close()
	if _, err := e.ComputeGradient(x, labels); err != nil {
		t.Fatal(err)
	}
	tiers := e.StepTierStats()
	if tiers.Intra.Retries != 2 {
		t.Errorf("intra retries = %d, want 2 (workers 1 and 3)", tiers.Intra.Retries)
	}
	if tiers.Inter.Retries != 1 {
		t.Errorf("inter retries = %d, want 1 (worker 2, node 1's leader)", tiers.Inter.Retries)
	}
}

// TestEngineHierarchyFaultsRecoverExactly: hierarchical fault recovery
// keeps the reproducibility contract — values bitwise equal to a clean run,
// stats deterministic across repeats.
func TestEngineHierarchyFaultsRecoverExactly(t *testing.T) {
	x, labels, factory := testTask(64)
	run := func(faults *dist.FaultPlan) ([]float32, dist.TierStats) {
		h := dist.NewHierarchy(2, 2)
		e := newEngine(dist.Config{Topology: &h, Faults: faults}, 4, factory)
		defer e.Close()
		for step := 0; step < 3; step++ {
			if _, err := e.ComputeGradient(x, labels); err != nil {
				t.Fatal(err)
			}
			for _, p := range e.Master().Params() {
				p.W.Axpy(-0.05, p.G)
			}
			if err := e.BroadcastWeights(); err != nil {
				t.Fatal(err)
			}
		}
		return flatGrad(e), e.TierStats()
	}
	cleanGrad, _ := run(nil)
	plan := &dist.FaultPlan{Seed: 11, DropRate: 0.6, StallRate: 0.6}
	faultGrad, faultTiers := run(plan)
	for i := range cleanGrad {
		if faultGrad[i] != cleanGrad[i] {
			t.Fatalf("faults changed grad coord %d", i)
		}
	}
	if faultTiers.Intra.Retries+faultTiers.Inter.Retries == 0 {
		t.Fatal("fault plan injected no retries")
	}
	_, again := run(plan)
	if again != faultTiers {
		t.Fatalf("hierarchical fault schedule not deterministic: %+v vs %+v", again, faultTiers)
	}
}

// TestEngineHierarchyWorkerMismatchPanics: a topology that does not cover
// the replica count must be rejected at construction.
func TestEngineHierarchyWorkerMismatchPanics(t *testing.T) {
	_, _, factory := testTask(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2x2 hierarchy over 3 replicas")
		}
	}()
	h := dist.NewHierarchy(2, 2)
	newEngine(dist.Config{Topology: &h}, 3, factory)
}
