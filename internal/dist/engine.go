package dist

import (
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/tensor"
)

// Config configures an Engine.
type Config struct {
	// Algo selects the allreduce topology (default Central, the zero
	// value; Ring is what the paper's large systems use). Ignored when
	// Topology is set.
	Algo Algorithm
	// Topology optionally arranges the workers into a two-tier node
	// hierarchy: reductions then run intra-node first, feeding a
	// cross-node exchange among node leaders, and the schedule is
	// accounted per fabric tier (Engine.TierStats) as well as in the
	// aggregate counters. Topology.Workers() must equal the replica
	// count. nil keeps the flat single-fabric Algo schedule. Values are
	// unaffected either way — hierarchical runs are bit-identical to flat
	// ones with the same shard split.
	Topology *Hierarchy
	// Shards is the number of logical gradient shards each global batch
	// is split into; 0 means one per worker. The shard split — not the
	// worker count — determines the numerical result: two engines with
	// equal Shards produce bit-identical gradients for any worker counts.
	Shards int
	// BucketElems chunks the flat gradient into reduction buckets of at
	// most this many float32 coordinates, each reduced as its own
	// collective (the overlap-friendly granularity real frameworks use;
	// more, smaller messages). 0 reduces the whole gradient as one
	// bucket.
	BucketElems int
	// Codec optionally compresses every reduction payload on the wire
	// (lossy; see FP16Codec and OneBitCodec). nil exchanges raw float32.
	Codec Codec
	// Faults optionally injects deterministic drops and stalls into the
	// reduction schedule. Recovery is exact: values are unaffected.
	Faults *FaultPlan
}

// Engine drives synchronous data-parallel SGD over W model replicas using W
// persistent worker goroutines in lockstep. Per training step the caller
// runs ComputeGradient (shard forward/backward + gradient allreduce into
// the master replica), steps the optimizer on the master's parameters, and
// calls BroadcastWeights to resynchronize the replicas — the exact
// two-phase structure the paper's cost model prices.
//
// The engine is not safe for concurrent use; like the replicas it owns, it
// belongs to one training loop. Close releases the worker goroutines.
type Engine struct {
	cfg      Config
	replicas []*nn.Network
	params   [][]*nn.Param // per-replica parameter lists
	nparams  int           // total float32 coordinates per replica
	buckets  [][2]int      // bucket coordinate ranges

	jobs []chan job
	done chan error
	wg   sync.WaitGroup

	grads  [][]float32 // per logical shard: flat gradient
	losses []float64   // per logical shard: mean loss over the shard
	evalOK []int       // per worker: correct predictions of the last eval

	reduced   []float32 // scratch: canonically reduced flat gradient
	steps     int64
	stats     CommStats
	lastStep  CommStats
	tiers     TierStats // per-fabric split of stats (hierarchical runs only)
	lastTiers TierStats // per-fabric split of lastStep
	closed    bool
}

type jobKind int

const (
	jobGrad jobKind = iota
	jobEval
	jobSync
)

// job is one lockstep command to a worker.
type job struct {
	kind   jobKind
	x      *tensor.Tensor
	labels []int
	spans  [][2]int // row spans, indexed by slot
	slots  []int    // which spans this worker owns
	train  bool
}

// NewEngine builds an engine over the given replicas (one per worker; at
// least one required) and synchronizes their weights to the master
// (replicas[0]) so all workers start from identical parameters.
func NewEngine(cfg Config, replicas []*nn.Network) *Engine {
	if len(replicas) == 0 {
		panic("dist: NewEngine needs at least one replica")
	}
	if cfg.Shards == 0 {
		cfg.Shards = len(replicas)
	}
	if cfg.Shards < len(replicas) {
		panic(fmt.Sprintf("dist: %d shards cannot feed %d workers", cfg.Shards, len(replicas)))
	}
	if h := cfg.Topology; h != nil {
		h.validate()
		if h.Workers() != len(replicas) {
			panic(fmt.Sprintf("dist: %v hierarchy needs %d workers, engine has %d replicas", *h, h.Workers(), len(replicas)))
		}
	}
	e := &Engine{
		cfg:      cfg,
		replicas: replicas,
		params:   make([][]*nn.Param, len(replicas)),
		done:     make(chan error, len(replicas)),
		grads:    make([][]float32, cfg.Shards),
		losses:   make([]float64, cfg.Shards),
		evalOK:   make([]int, len(replicas)),
	}
	for w, r := range replicas {
		e.params[w] = r.Params()
		if len(e.params[w]) != len(e.params[0]) {
			panic(fmt.Sprintf("dist: replica %d has %d params, master has %d", w, len(e.params[w]), len(e.params[0])))
		}
	}
	for _, p := range e.params[0] {
		e.nparams += p.Numel()
	}
	e.buckets = bucketRanges(e.nparams, cfg.BucketElems)
	for s := range e.grads {
		e.grads[s] = make([]float32, e.nparams)
	}
	e.reduced = make([]float32, e.nparams)

	e.jobs = make([]chan job, len(replicas))
	for w := range replicas {
		e.jobs[w] = make(chan job)
		e.wg.Add(1)
		go e.worker(w)
	}
	e.BroadcastWeights()
	return e
}

// bucketRanges splits [0, n) into chunks of at most elems coordinates.
func bucketRanges(n, elems int) [][2]int {
	if elems <= 0 || elems >= n {
		if n == 0 {
			return nil
		}
		return [][2]int{{0, n}}
	}
	var out [][2]int
	for lo := 0; lo < n; lo += elems {
		hi := lo + elems
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// Workers returns the physical worker (replica) count.
func (e *Engine) Workers() int { return len(e.replicas) }

// Master returns the master replica, whose parameters the optimizer steps.
func (e *Engine) Master() *nn.Network { return e.replicas[0] }

// Steps returns the number of gradient reductions performed.
func (e *Engine) Steps() int64 { return e.steps }

// Stats returns the cumulative communication counters.
func (e *Engine) Stats() CommStats { return e.stats }

// StepStats returns the counters of the most recent training step
// (ComputeGradient plus any BroadcastWeights since).
func (e *Engine) StepStats() CommStats { return e.lastStep }

// TierStats returns the cumulative counters split by fabric tier. It is
// zero unless Config.Topology arranged the workers hierarchically, in which
// case TierStats().Total() equals Stats().
func (e *Engine) TierStats() TierStats { return e.tiers }

// StepTierStats returns the per-tier counters of the most recent training
// step, the hierarchical split of StepStats.
func (e *Engine) StepTierStats() TierStats { return e.lastTiers }

// Close shuts down the worker goroutines. The engine must not be used
// afterwards; Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, ch := range e.jobs {
		close(ch)
	}
	e.wg.Wait()
}

// record accounts one schedule into the cumulative and per-step counters.
func (e *Engine) record(s CommStats) {
	e.stats.Add(s)
	e.lastStep.Add(s)
}

// recordTiers accounts a per-tier schedule into the tier counters and its
// aggregate into the flat counters, keeping Stats() == TierStats().Total()
// for hierarchical runs.
func (e *Engine) recordTiers(t TierStats) {
	e.tiers.Add(t)
	e.lastTiers.Add(t)
	e.record(t.Total())
}

// recordReduce accounts one gradient-reduction schedule of a payloadBytes
// bucket, per tier when the engine is hierarchical.
func (e *Engine) recordReduce(payloadBytes int64) {
	if h := e.cfg.Topology; h != nil {
		e.recordTiers(hierReduceSchedule(*h, payloadBytes))
		return
	}
	e.record(reduceSchedule(e.cfg.Algo, len(e.replicas), payloadBytes))
}

// recordBroadcast accounts one weight-broadcast schedule of a payloadBytes
// bucket, per tier when the engine is hierarchical.
func (e *Engine) recordBroadcast(payloadBytes int64) {
	if h := e.cfg.Topology; h != nil {
		e.recordTiers(hierBroadcastSchedule(*h, payloadBytes))
		return
	}
	e.record(broadcastSchedule(e.cfg.Algo, len(e.replicas), payloadBytes))
}

// worker is the lockstep loop of one persistent worker goroutine.
func (e *Engine) worker(w int) {
	defer e.wg.Done()
	net := e.replicas[w]
	loss := &nn.SoftmaxCrossEntropy{}
	for j := range e.jobs[w] {
		e.done <- e.run(w, net, loss, j)
	}
}

// run executes one job, converting panics anywhere below (shape drift, bad
// labels) into errors so a worker failure aborts the step instead of
// crashing the process.
func (e *Engine) run(w int, net *nn.Network, loss *nn.SoftmaxCrossEntropy, j job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: worker %d: %v", w, r)
		}
	}()
	switch j.kind {
	case jobGrad:
		for _, slot := range j.slots {
			lo, hi := j.spans[slot][0], j.spans[slot][1]
			if lo == hi {
				continue
			}
			x, labels := sliceRows(j.x, j.labels, lo, hi)
			net.ZeroGrad()
			out := net.Forward(x, true)
			e.losses[slot] = loss.Forward(out, labels)
			net.Backward(loss.Backward())
			flatten(e.params[w], e.grads[slot])
		}
	case jobEval:
		correct := 0
		for _, slot := range j.slots {
			lo, hi := j.spans[slot][0], j.spans[slot][1]
			if lo == hi {
				continue
			}
			x, labels := sliceRows(j.x, j.labels, lo, hi)
			preds := net.Forward(x, false).ArgMaxRows()
			for i, p := range preds {
				if p == labels[i] {
					correct++
				}
			}
		}
		e.evalOK[w] = correct
	case jobSync:
		if w != 0 {
			net.CopyWeightsFrom(e.replicas[0])
		}
	}
	return nil
}

// sliceRows returns an aliasing view of rows [lo, hi) of a batch tensor and
// its labels.
func sliceRows(x *tensor.Tensor, labels []int, lo, hi int) (*tensor.Tensor, []int) {
	rowLen := x.Numel() / x.Shape[0]
	shape := append([]int{hi - lo}, x.Shape[1:]...)
	return tensor.FromSlice(x.Data[lo*rowLen:hi*rowLen], shape...), labels[lo:hi]
}

// flatten copies every parameter gradient into one flat vector.
func flatten(params []*nn.Param, dst []float32) {
	off := 0
	for _, p := range params {
		copy(dst[off:off+p.Numel()], p.G.Data)
		off += p.Numel()
	}
}

// dispatch sends one job per worker and waits for the lockstep barrier,
// returning the first worker error.
func (e *Engine) dispatch(mk func(w int) job) error {
	if e.closed {
		panic("dist: engine used after Close")
	}
	for w := range e.jobs {
		e.jobs[w] <- mk(w)
	}
	var first error
	for range e.jobs {
		if err := <-e.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ComputeGradient splits the global batch x ([B, ...] with len(labels) == B)
// into the engine's logical shards, runs forward/backward on every shard
// across the worker replicas in lockstep, and allreduces the shard
// gradients — weighted by shard size, canonically ordered — into the master
// replica's parameter gradients. It returns the batch-mean loss. The
// replicas must hold identical weights (NewEngine and BroadcastWeights
// guarantee this in the standard loop).
func (e *Engine) ComputeGradient(x *tensor.Tensor, labels []int) (float64, error) {
	b := x.Shape[0]
	if b == 0 {
		panic("dist: ComputeGradient on an empty batch")
	}
	if len(labels) != b {
		panic(fmt.Sprintf("dist: %d labels for batch of %d", len(labels), b))
	}
	spans := data.Spans(b, e.cfg.Shards)
	e.lastStep = CommStats{}
	e.lastTiers = TierStats{}
	if err := e.dispatch(func(w int) job {
		return job{kind: jobGrad, x: x, labels: labels, spans: spans, slots: e.ownedSlots(w)}
	}); err != nil {
		return 0, err
	}
	payloads := e.reduceShards(spans, b)
	e.injectFaults(payloads)
	e.steps++

	var loss float64
	for s, span := range spans {
		if span[0] == span[1] {
			continue
		}
		loss += float64(span[1]-span[0]) / float64(b) * e.losses[s]
	}
	return loss, nil
}

// ownedSlots returns the logical shard slots worker w processes: shard s
// belongs to worker s mod W, keeping the per-worker load within one shard
// of even for any Shards/Workers ratio.
func (e *Engine) ownedSlots(w int) []int {
	var slots []int
	for s := w; s < e.cfg.Shards; s += len(e.replicas) {
		slots = append(slots, s)
	}
	return slots
}

// reduceShards performs the bucketed allreduce of the shard gradients into
// the master replica's parameter gradients: per bucket, the optional codec
// rounds every shard payload through its wire format, the schedule of the
// configured topology is accounted, and the canonical float64-accumulated
// weighted sum lands in the master. It returns the accounted per-bucket
// wire payload sizes so fault recovery prices resends consistently.
func (e *Engine) reduceShards(spans [][2]int, b int) []int64 {
	weights := make([]float64, len(spans))
	var live []int
	for s, span := range spans {
		if span[0] == span[1] {
			continue
		}
		weights[s] = float64(span[1]-span[0]) / float64(b)
		live = append(live, s)
	}
	payloads := make([]int64, len(e.buckets))
	for bi, bucket := range e.buckets {
		lo, hi := bucket[0], bucket[1]
		payload := 4 * int64(hi-lo)
		if e.cfg.Codec != nil {
			// Per-payload wire sizes may differ for data-dependent
			// codecs; the schedule formulas price one uniform payload,
			// so account the mean wire size across the shards.
			wires := make([]int64, len(live))
			tasks := make([]func(), len(live))
			for i, s := range live {
				slot := s*len(e.buckets) + bi
				seg := e.grads[s][lo:hi]
				i := i
				tasks[i] = func() { wires[i] = e.cfg.Codec.Transform(slot, seg) }
			}
			par.Do(tasks...)
			var total int64
			for _, w := range wires {
				total += w
			}
			payload = total / int64(len(live))
		}
		payloads[bi] = payload
		e.recordReduce(payload)
	}
	par.ForGrain(e.nparams, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var acc float64
			for _, s := range live {
				acc += weights[s] * float64(e.grads[s][i])
			}
			e.reduced[i] = float32(acc)
		}
	})
	off := 0
	for _, p := range e.params[0] {
		copy(p.G.Data, e.reduced[off:off+p.Numel()])
		off += p.Numel()
	}
	return payloads
}

// injectFaults rolls the fault plan for the current step and accounts the
// recovery traffic: a dropped worker payload is re-requested and resent
// (Retries plus that worker's sender share of every bucket), a straggler
// holds the barrier for one round (Stalls). Under a hierarchical topology
// the recovery traffic lands on the tier the worker sends on — intra for
// node members, inter for node leaders. Values are never affected —
// recovery is exact, which is what keeps faulty runs bit-identical to
// clean ones.
func (e *Engine) injectFaults(payloads []int64) {
	f := e.cfg.Faults
	if !f.enabled() || len(e.replicas) == 1 {
		return
	}
	h := e.cfg.Topology
	for w := range e.replicas {
		drop, stall := f.roll(e.steps, w)
		if drop {
			if h != nil {
				var t TierStats
				for _, payload := range payloads {
					t.Add(hierSenderShare(*h, w, payload))
				}
				if lead, _ := h.leader(w); lead {
					t.Inter.Retries = 1
				} else {
					t.Intra.Retries = 1
				}
				e.recordTiers(t)
			} else {
				var st CommStats
				st.Retries = 1
				for _, payload := range payloads {
					msgs, bytes := senderShare(e.cfg.Algo, len(e.replicas), payload)
					st.Messages += msgs
					st.Bytes += bytes
				}
				e.record(st)
			}
		}
		if stall {
			if h != nil {
				var t TierStats
				if lead, _ := h.leader(w); lead {
					t.Inter.Stalls = 1
				} else {
					t.Intra.Stalls = 1
				}
				e.recordTiers(t)
			} else {
				e.record(CommStats{Stalls: 1})
			}
		}
	}
}

// BroadcastWeights resynchronizes every replica's parameters from the
// master — the weight-distribution phase following the optimizer step —
// and accounts the broadcast schedule per bucket.
func (e *Engine) BroadcastWeights() {
	if err := e.dispatch(func(w int) job { return job{kind: jobSync} }); err != nil {
		panic(err) // CopyWeightsFrom only fails on architecture drift
	}
	for _, bucket := range e.buckets {
		e.recordBroadcast(4 * int64(bucket[1]-bucket[0]))
	}
}

// EvalAccuracy computes top-1 accuracy of the master weights over the
// images, processed data-parallel in chunks of at most batch rows assigned
// round-robin to the workers. The replicas must be weight-synchronized, so
// every chunk's logits are identical whichever replica computes them.
func (e *Engine) EvalAccuracy(images *tensor.Tensor, labels []int, batch int) float64 {
	n := images.Shape[0]
	if n == 0 {
		return 0
	}
	if batch <= 0 || batch > n {
		batch = n
	}
	var spans [][2]int
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{lo, hi})
	}
	slots := make([][]int, len(e.replicas))
	for i := range spans {
		w := i % len(e.replicas)
		slots[w] = append(slots[w], i)
	}
	if err := e.dispatch(func(w int) job {
		return job{kind: jobEval, x: images, labels: labels, spans: spans, slots: slots[w]}
	}); err != nil {
		panic(err) // eval shares the forward path already validated in training
	}
	correct := 0
	for _, c := range e.evalOK {
		correct += c
	}
	return float64(correct) / float64(n)
}
