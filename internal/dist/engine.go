package dist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/kernel"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/tensor"
)

// Config configures an Engine.
type Config struct {
	// Algo selects the allreduce topology (default Central, the zero
	// value; Ring is what the paper's large systems use). Ignored when
	// Topology is set.
	Algo Algorithm
	// Topology optionally arranges the workers into a two-tier node
	// hierarchy: reductions then run intra-node first, feeding a
	// cross-node exchange among node leaders, and the schedule is
	// accounted per fabric tier (Engine.TierStats) as well as in the
	// aggregate counters. Topology.Workers() must equal the replica
	// count. nil keeps the flat single-fabric Algo schedule. Values are
	// unaffected either way — hierarchical runs are bit-identical to flat
	// ones with the same shard split.
	Topology *Hierarchy
	// Shards is the number of logical gradient shards each global batch
	// is split into; 0 means one per worker. The shard split — not the
	// worker count — determines the numerical result: two engines with
	// equal Shards produce bit-identical gradients for any worker counts.
	Shards int
	// BucketElems chunks the flat gradient into reduction buckets of at
	// most this many float32 coordinates, each reduced as its own
	// collective (the overlap-friendly granularity real frameworks use;
	// more, smaller messages). 0 reduces the whole gradient as one
	// bucket.
	BucketElems int
	// Overlap fires each bucket's reduction as soon as the gradients it
	// covers are final on every shard — while later layers are still
	// back-propagating — instead of reducing everything after the full
	// backward pass. A per-parameter gradient-ready notification from
	// nn.Network.Backward drives an overlap scheduler that launches a
	// bucket's allreduce the moment its last covering parameter lands.
	// Values stay canonical and bit-identical to the non-overlapped path
	// (same per-coordinate arithmetic, same codec state); what changes is
	// when the collectives run and how they are accounted: OverlapStats
	// splits every step's rounds and bytes into hidden (reduced inside
	// the backward) versus exposed (the bucket covering the first
	// parameter, weight broadcasts, recovery traffic). Pair with
	// BucketElems — with a single bucket nothing can hide.
	Overlap bool
	// Reduction selects the arithmetic of the gradient reduction:
	// CanonicalF64 (the default — strict left-to-right float64
	// accumulation in canonical shard order) or PairwiseF32 (the
	// fixed-tree float32 kernel; faster, still bit-identical across
	// worker counts, topologies, shard-to-worker assignments and
	// overlap, because the tree shape depends only on the live shard
	// count). Changing the policy changes the reduced values slightly
	// (different rounding), so pin it across runs being compared.
	Reduction Reduction
	// Codec optionally compresses every reduction payload on the wire
	// (lossy; see FP16Codec and OneBitCodec). nil exchanges raw float32.
	Codec Codec
	// Profile enables the per-step phase profiler: hot-loop wall time is
	// attributed to gemm/im2col/reduce/codec phases (internal/kernel's
	// global profiler) and surfaced as ProfileStats whose five buckets
	// sum exactly to the measured step wall time. The profiler is
	// process-global — profile one engine at a time.
	Profile bool
	// StartStep sets the engine's initial step counter — the cursor that
	// keys the deterministic fault schedule (FaultPlan rolls are a pure
	// function of the absolute step) and the membership timeline. Resuming
	// a checkpointed run with StartStep = Checkpoint.Step makes the
	// remaining steps' fault rolls, recovery traffic and (with restored
	// codec residuals) reduced values bit-identical to the uninterrupted
	// run. 0 starts fresh.
	StartStep int64
	// Faults optionally injects deterministic drops and stalls into the
	// reduction schedule. Recovery is exact: values are unaffected. A
	// worker the plan marks permanently Dead never recovers — pair with
	// Elastic, or the step loop surfaces a *WorkerDeadError. The plan's
	// Join map schedules workers to enter the collective mid-run (it too
	// requires Elastic).
	Faults *FaultPlan
	// SyncEvery is the local-SGD synchronization period H: workers run H
	// local optimizer steps between collectives, then average *weights*
	// (parameters, not gradients) — Codreanu et al.'s periodic averaging,
	// cutting comm volume by 1/H. 0 and 1 both mean the standard
	// every-step path: the engine is bit-identical to one whose config
	// never mentioned SyncEvery. H > 1 runs are driven through
	// Engine.LocalStep (after SetLocalSteppers) instead of the
	// ComputeGradient/optimizer/BroadcastWeights loop; sync boundaries —
	// every H-th step — are the only points where collectives run and the
	// only legal membership-change points (joins admit at window starts,
	// evictions close windows; the fault-plan eviction clock ticks in sync
	// rounds, since a dead worker is only *observed* at a barrier).
	SyncEvery int
	// IntraSyncEvery layers hierarchical periodic averaging onto local
	// SGD: every IntraSyncEvery steps the members of each Topology node
	// average their weights over the cheap intra-node fabric, while the
	// full two-tier average still runs only every SyncEvery steps —
	// frequent local averaging, rare global averaging. Requires Topology
	// and SyncEvery > 1, and must divide SyncEvery so the tiers nest.
	// Intra-only rounds are accounted exclusively on the intra tier of
	// TierStats. 0 disables the intermediate tier; IntraSyncEvery ==
	// SyncEvery is allowed and degenerates to plain local SGD (every
	// intra boundary is already a full boundary).
	IntraSyncEvery int
	// Elastic enables elastic membership: a worker whose recovery fails
	// Elastic.EvictAfter consecutive steps is evicted from the collective,
	// its shards rebalance over the surviving P−1 workers, the topology
	// shrinks, and training continues in lockstep at the smaller world
	// size; a worker the fault plan schedules to Join enters at its step
	// boundary the same way in reverse — warm-started by an accounted
	// weight broadcast at the grown world (see the Elastic type for the
	// full state machine and the determinism contract). nil keeps the
	// fixed-membership behavior.
	Elastic *Elastic
}

// Engine drives synchronous data-parallel SGD over W model replicas using W
// persistent worker goroutines in lockstep. Per training step the caller
// runs ComputeGradient (shard forward/backward + gradient allreduce into
// the master replica), steps the optimizer on the master's parameters, and
// calls BroadcastWeights to resynchronize the replicas — the exact
// two-phase structure the paper's cost model prices.
//
// The engine is not safe for concurrent use; like the replicas it owns, it
// belongs to one training loop. Close releases the worker goroutines.
type Engine struct {
	cfg      Config
	replicas []*nn.Network
	params   [][]*nn.Param // per-replica parameter lists
	nparams  int           // total float32 coordinates per replica
	buckets  [][2]int      // bucket coordinate ranges

	// Membership state machine (see Elastic). alive marks the replicas
	// currently in the collective; world counts them. started marks the
	// replicas with a running worker goroutine (pending joiners have none
	// yet; evicted workers' goroutines are released). consecDead tracks
	// each worker's consecutive failed recoveries toward eviction. shards
	// is the current logical shard count — it follows the world size down
	// on evictions and up on joins when shardsTrack is set (Config.Shards
	// was left zero with no codec). nodes holds each hierarchy node's
	// live members in ascending worker order (nil when flat).
	alive       []bool
	started     []bool
	joinDone    []bool // fault-plan Join entries already applied (one admission each)
	world       int
	consecDead  []int
	shards      int
	shardsTrack bool
	nodes       [][]int

	// Overlap-scheduler structures (see Config.Overlap). paramOffs maps
	// master parameter index to its flat-gradient offset; paramBuckets
	// lists the buckets each parameter's coordinates fall into;
	// coverCount is the number of parameters covering each bucket; and
	// bucketHidden marks the buckets that become ready strictly before
	// the backward pass ends (they do not cover parameter 0, the last
	// gradient to land).
	paramOffs    []int
	paramBuckets [][]int
	coverCount   []int
	bucketHidden []bool
	curSlot      []int          // per worker: logical shard being back-propagated
	remaining    []atomic.Int64 // per bucket: outstanding (shard, param) landings
	readyCh      chan int       // per step: buckets whose gradients are final

	jobs []chan job
	done chan error
	wg   sync.WaitGroup

	grads  [][]float32 // per logical shard: flat gradient
	losses []float64   // per logical shard: mean loss over the shard
	evalOK []int       // per worker: correct predictions of the last eval

	// Local-SGD machinery (see Config.SyncEvery). localSteppers holds one
	// optimizer per replica, stepped by the worker goroutines inside
	// jobLocal; localBuf is per-worker flat scratch, holding the locally
	// reduced gradient during the step and the flattened weights at sync
	// boundaries; localsgd counts local steps and averaging rounds.
	localSteppers []Stepper
	localBuf      [][]float32
	localsgd      LocalSGDStats
	lastLocal     LocalSGDStats

	reduced        []float32 // scratch: canonically reduced flat gradient
	steps          int64
	stats          CommStats
	lastStep       CommStats
	tiers          TierStats // per-fabric split of stats (hierarchical runs only)
	lastTiers      TierStats // per-fabric split of lastStep
	overlap        OverlapStats
	lastOverlap    OverlapStats
	membership     MembershipStats
	lastMembership MembershipStats
	profile        ProfileStats // cumulative phase profile (Config.Profile only)
	lastProfile    ProfileStats // phase profile of the most recent step
	profActive     bool         // true once construction is done: the profile covers training steps, not setup
	lossScale      float32      // multiplier applied to dL/dy before Backward (0 or 1: off)
	closed         bool
}

// SetLossScale sets the factor every worker multiplies the loss gradient by
// before back-propagating — the producer half of mixed-precision loss
// scaling (the consumer, opt.LossScaler.Update, unscales the reduced
// float32 gradients or skips the step on overflow). 0 and 1 both mean
// unscaled. Call it between steps only: the worker goroutines read it while
// a gradient job is in flight, and the job channels provide the
// happens-before edge for a write made before dispatch.
func (e *Engine) SetLossScale(s float32) { e.lossScale = s }

type jobKind int

const (
	jobGrad jobKind = iota
	jobEval
	jobSync
	jobLocal
)

// job is one lockstep command to a worker.
type job struct {
	kind   jobKind
	x      *tensor.Tensor
	labels []int
	spans  [][2]int // row spans, indexed by slot
	slots  []int    // which spans this worker owns
	lr     float64  // learning rate of a local optimizer step (jobLocal)
	train  bool
}

// NewEngine builds an engine over the given replicas (one per worker; at
// least one required) and synchronizes their weights to the master
// (replicas[0]) so all workers start from identical parameters.
func NewEngine(cfg Config, replicas []*nn.Network) *Engine {
	if len(replicas) == 0 {
		panic("dist: NewEngine needs at least one replica")
	}
	// Only the default per-worker shard split follows the world size down
	// on elastic evictions. An explicitly pinned Shards — even one equal
	// to the worker count — stays pinned, preserving the bit-identity
	// promise of pinned runs; and any codec keeps the split fixed too, so
	// its slot-keyed state (1-bit error feedback) never remaps onto a
	// different shard's data mid-run.
	trackWorld := cfg.Shards == 0 && cfg.Codec == nil
	if cfg.Shards == 0 {
		cfg.Shards = len(replicas)
	}
	if cfg.Shards < len(replicas) {
		panic(fmt.Sprintf("dist: %d shards cannot feed %d workers", cfg.Shards, len(replicas)))
	}
	if h := cfg.Topology; h != nil {
		h.validate()
		if h.Workers() != len(replicas) {
			panic(fmt.Sprintf("dist: %v hierarchy needs %d workers, engine has %d replicas", *h, h.Workers(), len(replicas)))
		}
	}
	if cfg.SyncEvery < 0 {
		panic(fmt.Sprintf("dist: Config.SyncEvery = %d: the synchronization period cannot be negative", cfg.SyncEvery))
	}
	if cfg.IntraSyncEvery < 0 {
		panic(fmt.Sprintf("dist: Config.IntraSyncEvery = %d: the intra-node period cannot be negative", cfg.IntraSyncEvery))
	}
	if cfg.IntraSyncEvery > 0 {
		if cfg.Topology == nil {
			panic("dist: Config.IntraSyncEvery needs Config.Topology (intra-node averaging needs nodes)")
		}
		if cfg.SyncEvery <= 1 {
			panic("dist: Config.IntraSyncEvery needs Config.SyncEvery > 1 (every step already fully synchronizes)")
		}
		if cfg.SyncEvery%cfg.IntraSyncEvery != 0 {
			panic(fmt.Sprintf("dist: Config.IntraSyncEvery = %d must divide Config.SyncEvery = %d so the averaging tiers nest", cfg.IntraSyncEvery, cfg.SyncEvery))
		}
	}
	if f := cfg.Faults; f != nil {
		for w := range f.Dead {
			if w == 0 {
				panic("dist: FaultPlan.Dead cannot mark worker 0 (the master) dead")
			}
			if w < 0 || w >= len(replicas) {
				panic(fmt.Sprintf("dist: FaultPlan.Dead marks worker %d, engine has %d replicas", w, len(replicas)))
			}
		}
		if len(f.Join) > 0 && cfg.Elastic == nil {
			panic("dist: FaultPlan.Join requires Config.Elastic (joins are membership surgery)")
		}
		for w, s := range f.Join {
			if w == 0 {
				panic("dist: FaultPlan.Join cannot mark worker 0 (the master joins at construction)")
			}
			if w < 0 || w >= len(replicas) {
				panic(fmt.Sprintf("dist: FaultPlan.Join marks worker %d, engine has %d replicas", w, len(replicas)))
			}
			if s < 1 {
				panic(fmt.Sprintf("dist: FaultPlan.Join[%d] = %d: a join before step 1 is initial membership", w, s))
			}
			if d, ok := f.Dead[w]; ok && d == s {
				panic(fmt.Sprintf("dist: FaultPlan marks worker %d both dead and joining at step %d", w, s))
			}
		}
	}
	e := &Engine{
		cfg:         cfg,
		replicas:    replicas,
		params:      make([][]*nn.Param, len(replicas)),
		done:        make(chan error, len(replicas)),
		grads:       make([][]float32, cfg.Shards),
		losses:      make([]float64, cfg.Shards),
		evalOK:      make([]int, len(replicas)),
		alive:       make([]bool, len(replicas)),
		started:     make([]bool, len(replicas)),
		joinDone:    make([]bool, len(replicas)),
		consecDead:  make([]int, len(replicas)),
		shards:      cfg.Shards,
		shardsTrack: trackWorld,
		steps:       cfg.StartStep,
	}
	if cfg.Profile {
		kernel.SetProfiling(true)
	}
	// A worker the fault plan schedules to join later (and that is not a
	// returning initial member) starts outside the collective: not alive,
	// no goroutine, no hierarchy-node seat. admitJoins brings it in at its
	// step boundary.
	for w := range e.alive {
		e.alive[w] = true
		if f := cfg.Faults; f != nil {
			if !f.initialMember(w) && f.Join[w] > cfg.StartStep {
				e.alive[w] = false
			}
			if s, ok := f.Join[w]; ok && s <= cfg.StartStep {
				// A resumed run's past joins are already in effect; they
				// must not re-fire as admissions.
				e.joinDone[w] = true
			}
		}
		if e.alive[w] {
			e.world++
		}
	}
	if trackWorld {
		// The default split tracks the live world in both directions, so
		// an engine born with pending joiners shards like the fresh
		// smaller engine it is bit-identical to.
		e.shards = e.world
	}
	e.membership.StepsAtWorld = make([]int64, len(replicas)+1)
	if h := cfg.Topology; h != nil {
		e.nodes = make([][]int, h.Nodes)
		for n := range e.nodes {
			for i := 0; i < h.PerNode; i++ {
				if w := n*h.PerNode + i; e.alive[w] {
					e.nodes[n] = append(e.nodes[n], w)
				}
			}
		}
	}
	for w, r := range replicas {
		e.params[w] = r.Params()
		if len(e.params[w]) != len(e.params[0]) {
			panic(fmt.Sprintf("dist: replica %d has %d params, master has %d", w, len(e.params[w]), len(e.params[0])))
		}
	}
	for _, p := range e.params[0] {
		e.nparams += p.Numel()
	}
	e.buckets = BucketRanges(e.nparams, cfg.BucketElems)
	for s := range e.grads {
		e.grads[s] = make([]float32, e.nparams)
	}
	e.reduced = make([]float32, e.nparams)
	if cfg.Overlap {
		e.mapBuckets()
		e.curSlot = make([]int, len(replicas))
		e.remaining = make([]atomic.Int64, len(e.buckets))
		for w := range replicas {
			w := w
			replicas[w].SetGradNotify(func(param int) { e.gradReady(w, param) })
		}
	}

	e.jobs = make([]chan job, len(replicas))
	for w := range replicas {
		if e.alive[w] {
			e.startWorker(w)
		}
	}
	if err := e.BroadcastWeights(); err != nil {
		panic(err) // replicas were just validated to share the architecture
	}
	e.profActive = true // the profile covers training steps, not construction
	return e
}

// BucketRanges splits [0, n) into chunks of at most elems coordinates — the
// bucket layout the engine reduces (and, under Config.Overlap, the
// granularity at which reductions hide inside the backward pass).
func BucketRanges(n, elems int) [][2]int {
	if elems <= 0 || elems >= n {
		if n == 0 {
			return nil
		}
		return [][2]int{{0, n}}
	}
	var out [][2]int
	for lo := 0; lo < n; lo += elems {
		hi := lo + elems
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// mapBuckets builds the bucket/parameter cover maps the overlap scheduler
// and the hidden/exposed classification use: which buckets each parameter's
// coordinates fall into, how many parameters cover each bucket, and which
// buckets become ready strictly before the backward pass ends. A bucket is
// ready when its lowest-indexed covering parameter lands; since parameters
// land in reverse order, only buckets covering parameter 0 wait for the very
// end of the backward — every other bucket is overlap-eligible (hidden).
func (e *Engine) mapBuckets() {
	e.paramOffs = make([]int, len(e.params[0])+1)
	for i, p := range e.params[0] {
		e.paramOffs[i+1] = e.paramOffs[i] + p.Numel()
	}
	e.paramBuckets = make([][]int, len(e.params[0]))
	e.coverCount = make([]int, len(e.buckets))
	e.bucketHidden = make([]bool, len(e.buckets))
	cursor := 0 // buckets and parameters are both coordinate-sorted
	for bi, b := range e.buckets {
		first := -1
		for pi := cursor; pi < len(e.params[0]); pi++ {
			plo, phi := e.paramOffs[pi], e.paramOffs[pi+1]
			if plo >= b[1] {
				break
			}
			if phi <= b[0] || plo == phi {
				continue
			}
			e.paramBuckets[pi] = append(e.paramBuckets[pi], bi)
			e.coverCount[bi]++
			if first < 0 {
				first = pi
			}
		}
		if first >= 0 {
			cursor = first
		}
		e.bucketHidden[bi] = first > 0
	}
}

// gradReady is the per-parameter notification nn.Network.Backward fires on
// worker w: it copies the now-final parameter gradient of the shard the
// worker is back-propagating into the flat shard gradient, and hands every
// bucket whose last covering (shard, parameter) pair just landed to the
// overlap scheduler. The atomic countdown plus the buffered channel give the
// scheduler a happens-before edge over all shard writes it will read.
func (e *Engine) gradReady(w, pi int) {
	slot := e.curSlot[w]
	off := e.paramOffs[pi]
	copy(e.grads[slot][off:e.paramOffs[pi+1]], e.params[w][pi].G.Data)
	for _, bi := range e.paramBuckets[pi] {
		if e.remaining[bi].Add(-1) == 0 {
			e.readyCh <- bi
		}
	}
}

// Workers returns the physical worker (replica) count.
func (e *Engine) Workers() int { return len(e.replicas) }

// Master returns the master replica, whose parameters the optimizer steps.
func (e *Engine) Master() *nn.Network { return e.replicas[0] }

// Steps returns the number of gradient reductions performed.
func (e *Engine) Steps() int64 { return e.steps }

// Stats returns the cumulative communication counters.
func (e *Engine) Stats() CommStats { return e.stats }

// StepStats returns the counters of the most recent training step
// (ComputeGradient plus any BroadcastWeights since).
func (e *Engine) StepStats() CommStats { return e.lastStep }

// TierStats returns the cumulative counters split by fabric tier. It is
// zero unless Config.Topology arranged the workers hierarchically, in which
// case TierStats().Total() equals Stats().
func (e *Engine) TierStats() TierStats { return e.tiers }

// StepTierStats returns the per-tier counters of the most recent training
// step, the hierarchical split of StepStats.
func (e *Engine) StepTierStats() TierStats { return e.lastTiers }

// OverlapStats returns the cumulative hidden/exposed split of the counters:
// OverlapStats().Rounds() == Stats().Steps and OverlapStats().TotalBytes()
// == Stats().Bytes always. Nothing is hidden unless Config.Overlap is set.
func (e *Engine) OverlapStats() OverlapStats { return e.overlap }

// StepOverlapStats returns the hidden/exposed split of the most recent
// training step, the overlap view of StepStats.
func (e *Engine) StepOverlapStats() OverlapStats { return e.lastOverlap }

// Profile returns the cumulative phase profile: hot-loop wall time split
// into gemm/im2col/reduce/codec/other buckets that sum exactly to the
// measured wall time. Zero unless Config.Profile is set.
func (e *Engine) Profile() ProfileStats { return e.profile }

// StepProfile returns the phase profile of the most recent training step
// (ComputeGradient plus any BroadcastWeights since), the profiled view of
// StepStats.
func (e *Engine) StepProfile() ProfileStats { return e.lastProfile }

// Close shuts down the worker goroutines. The engine must not be used
// afterwards; Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.cfg.Profile {
		kernel.SetProfiling(false)
	}
	for w, ch := range e.jobs {
		// Evicted workers' channels are already closed; pending joiners
		// that never joined have no goroutine (and no channel) at all.
		if e.started[w] {
			close(ch)
		}
	}
	e.wg.Wait()
	if e.cfg.Overlap {
		// Unhook the gradient notifications so the replicas can be used
		// (or rewrapped in a new engine) after shutdown.
		for _, r := range e.replicas {
			r.SetGradNotify(nil)
		}
	}
}

// record accounts one schedule into the cumulative, per-step and overlap
// counters; hidden files the schedule's rounds and bytes under the
// hidden side of the overlap split.
func (e *Engine) record(s CommStats, hidden bool) {
	e.stats.Add(s)
	e.lastStep.Add(s)
	e.overlap.add(s, hidden)
	e.lastOverlap.add(s, hidden)
}

// recordTiers accounts a per-tier schedule into the tier counters and its
// aggregate into the flat counters, keeping Stats() == TierStats().Total()
// for hierarchical runs.
func (e *Engine) recordTiers(t TierStats, hidden bool) {
	e.tiers.Add(t)
	e.lastTiers.Add(t)
	e.record(t.Total(), hidden)
}

// recordReduce accounts one gradient-reduction schedule of a bucket, per
// tier when the engine is hierarchical. wireTotal is the summed wire bytes
// of the bucket across all live shards and shards their count: the
// schedule's byte totals are the schedule factor times the mean shard
// payload, computed multiply-first/divide-last so non-uniform codec payloads
// are accounted exactly (to the byte) instead of through a truncated
// per-shard mean.
func (e *Engine) recordReduce(wireTotal int64, shards int, hidden bool) {
	n := int64(shards)
	if h := e.cfg.Topology; h != nil {
		sizes := e.nodeSizes()
		t := degradedHierReduceSchedule(*h, sizes, 0)
		t.Intra.Bytes = degradedIntraBytesFactor(*h, sizes) * wireTotal / n
		t.Inter.Bytes = reduceBytesFactor(h.Inter, len(sizes)) * wireTotal / n
		e.recordTiers(t, hidden)
		return
	}
	st := reduceSchedule(e.cfg.Algo, e.world, 0)
	st.Bytes = reduceBytesFactor(e.cfg.Algo, e.world) * wireTotal / n
	e.record(st, hidden)
}

// recordBroadcast accounts one weight-broadcast schedule of a payloadBytes
// bucket, per tier when the engine is hierarchical. Broadcasts run after the
// optimizer step, so they are always exposed.
func (e *Engine) recordBroadcast(payloadBytes int64) {
	if h := e.cfg.Topology; h != nil {
		e.recordTiers(degradedHierBroadcastSchedule(*h, e.nodeSizes(), payloadBytes), false)
		return
	}
	e.record(broadcastSchedule(e.cfg.Algo, e.world, payloadBytes), false)
}

// startWorker gives worker w a fresh job channel and a goroutine draining
// it — at construction for the initial members, and again when an evicted
// (or never-started) worker joins the collective. The old goroutine, if
// any, exited when its channel was closed by evict.
func (e *Engine) startWorker(w int) {
	e.jobs[w] = make(chan job)
	e.started[w] = true
	e.wg.Add(1)
	go e.worker(w)
}

// worker is the lockstep loop of one persistent worker goroutine.
func (e *Engine) worker(w int) {
	defer e.wg.Done()
	net := e.replicas[w]
	loss := &nn.SoftmaxCrossEntropy{}
	for j := range e.jobs[w] {
		e.done <- e.run(w, net, loss, j)
	}
}

// run executes one job, converting panics anywhere below (shape drift, bad
// labels) into errors so a worker failure aborts the step instead of
// crashing the process.
func (e *Engine) run(w int, net *nn.Network, loss *nn.SoftmaxCrossEntropy, j job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: worker %d: %v", w, r)
		}
	}()
	switch j.kind {
	case jobGrad:
		for _, slot := range j.slots {
			lo, hi := j.spans[slot][0], j.spans[slot][1]
			if lo == hi {
				continue
			}
			x, labels := sliceRows(j.x, j.labels, lo, hi)
			net.ZeroGrad()
			out := net.Forward(x, true)
			e.losses[slot] = loss.Forward(out, labels)
			dl := loss.Backward()
			if s := e.lossScale; s != 0 && s != 1 {
				// Mixed-precision loss scaling: lift the seed gradient so
				// small values survive binary16 storage downstream. The
				// trainer unscales after reduction.
				for i := range dl.Data {
					dl.Data[i] *= s
				}
			}
			if e.cfg.Overlap {
				// gradReady flattens per parameter as Backward lands
				// them, feeding the overlap scheduler.
				e.curSlot[w] = slot
				net.Backward(dl)
			} else {
				net.Backward(dl)
				flatten(e.params[w], e.grads[slot])
			}
		}
	case jobEval:
		correct := 0
		for _, slot := range j.slots {
			lo, hi := j.spans[slot][0], j.spans[slot][1]
			if lo == hi {
				continue
			}
			x, labels := sliceRows(j.x, j.labels, lo, hi)
			preds := net.Forward(x, false).ArgMaxRows()
			for i, p := range preds {
				if p == labels[i] {
					correct++
				}
			}
		}
		e.evalOK[w] = correct
	case jobSync:
		if w != 0 {
			net.CopyWeightsFrom(e.replicas[0])
		}
	case jobLocal:
		// One local SGD step (Config.SyncEvery): the same per-shard
		// forward/backward as jobGrad, but the gradient stays on the
		// worker — it is reduced over the worker's own shards only and
		// fed straight into the worker's local optimizer. No collective
		// runs until the window's sync boundary averages the weights.
		for _, slot := range j.slots {
			lo, hi := j.spans[slot][0], j.spans[slot][1]
			if lo == hi {
				continue
			}
			x, labels := sliceRows(j.x, j.labels, lo, hi)
			net.ZeroGrad()
			out := net.Forward(x, true)
			e.losses[slot] = loss.Forward(out, labels)
			dl := loss.Backward()
			if s := e.lossScale; s != 0 && s != 1 {
				for i := range dl.Data {
					dl.Data[i] *= s
				}
			}
			if e.cfg.Overlap {
				// The gradient-notify hook still flattens per parameter
				// as Backward lands them — there is no bucket countdown
				// to satisfy in local mode, the flattening is all we use.
				e.curSlot[w] = slot
				net.Backward(dl)
			} else {
				net.Backward(dl)
				flatten(e.params[w], e.grads[slot])
			}
		}
		e.localReduceStep(w, j)
	}
	return nil
}

// sliceRows returns an aliasing view of rows [lo, hi) of a batch tensor and
// its labels.
func sliceRows(x *tensor.Tensor, labels []int, lo, hi int) (*tensor.Tensor, []int) {
	rowLen := x.Numel() / x.Shape[0]
	shape := append([]int{hi - lo}, x.Shape[1:]...)
	return tensor.FromSlice(x.Data[lo*rowLen:hi*rowLen], shape...), labels[lo:hi]
}

// flatten copies every parameter gradient into one flat vector.
func flatten(params []*nn.Param, dst []float32) {
	off := 0
	for _, p := range params {
		copy(dst[off:off+p.Numel()], p.G.Data)
		off += p.Numel()
	}
}

// dispatch sends one job to each of the given workers and waits for the
// lockstep barrier, returning the first worker error. Evicted and
// currently-dead workers are simply not in the list — the barrier only
// waits on workers that can answer.
func (e *Engine) dispatch(workers []int, mk func(w int) job) error {
	if e.closed {
		panic("dist: engine used after Close")
	}
	for _, w := range workers {
		e.jobs[w] <- mk(w)
	}
	var first error
	for range workers {
		if err := <-e.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ComputeGradient splits the global batch x ([B, ...] with len(labels) == B)
// into the engine's logical shards, runs forward/backward on every shard
// across the worker replicas in lockstep, and allreduces the shard
// gradients — weighted by shard size, canonically ordered — into the master
// replica's parameter gradients. Under Config.Overlap each bucket's
// reduction fires the moment the gradients it covers are final on every
// shard, concurrently with the still-running backward pass; otherwise all
// buckets reduce after the barrier. Either way the reduced values are
// bit-identical. It returns the batch-mean loss. The replicas must hold
// identical weights (NewEngine and BroadcastWeights guarantee this in the
// standard loop).
func (e *Engine) ComputeGradient(x *tensor.Tensor, labels []int) (float64, error) {
	b := x.Shape[0]
	if b == 0 {
		panic("dist: ComputeGradient on an empty batch")
	}
	if len(labels) != b {
		panic(fmt.Sprintf("dist: %d labels for batch of %d", len(labels), b))
	}
	if err := e.checkDead(e.steps); err != nil {
		return 0, err
	}
	e.lastStep = CommStats{}
	e.lastTiers = TierStats{}
	e.lastOverlap = OverlapStats{}
	e.lastMembership = MembershipStats{StepsAtWorld: make([]int64, len(e.replicas)+1)}
	if e.cfg.Profile && e.profActive {
		e.lastProfile = ProfileStats{}
	}
	// Membership epoch boundary (join half): workers the plan schedules to
	// join at this step enter before the batch is sharded, so the step
	// itself runs — and is accounted — at the grown world size, warm-started
	// from the admission broadcast.
	if err := e.admitJoins(); err != nil {
		return 0, err
	}
	spans := data.Spans(b, e.shards)
	var profBase [kernel.NumPhases]int64
	var profStart int64
	if e.cfg.Profile && e.profActive {
		profBase, profStart = kernel.ProfileSnapshot()
	}
	weights, live := shardWeights(spans, b)

	// The shard slots rebalance over the workers that can answer this
	// step: the live fleet minus any worker the fault plan holds
	// permanently dead (its shards are recomputed by survivors, the
	// failed recovery injectFaults accounts).
	active := e.activeIDs(e.steps)
	slots := e.slotOwners(active)
	mkJob := func(w int) job {
		return job{kind: jobGrad, x: x, labels: labels, spans: spans, slots: slots[w]}
	}
	payloads := make([]int64, len(e.buckets))
	if e.cfg.Overlap && len(e.buckets) > 0 && len(live) > 0 {
		for bi := range e.buckets {
			e.remaining[bi].Store(int64(e.coverCount[bi]) * int64(len(live)))
		}
		// The scheduler records schedules for buckets that fire before a
		// worker failure surfaces; snapshot the counters so a failed step
		// accounts nothing, matching the sequential path. (A
		// data-dependent codec's error-feedback state may still have
		// advanced for those buckets — the aborted step's values are
		// discarded either way.)
		statsSnap, tiersSnap, overlapSnap := e.stats, e.tiers, e.overlap
		stepSnap, stepTiersSnap, stepOverlapSnap := e.lastStep, e.lastTiers, e.lastOverlap
		// Buffered to the bucket count so gradReady never blocks a
		// worker, even when the scheduler lags or a step aborts.
		e.readyCh = make(chan int, len(e.buckets))
		abort := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for n := 0; n < len(e.buckets); n++ {
				select {
				case bi := <-e.readyCh:
					payloads[bi] = e.reduceBucket(bi, live, weights, e.bucketHidden[bi])
				case <-abort:
					return
				}
			}
		}()
		if err := e.dispatch(active, mkJob); err != nil {
			// A failed worker leaves bucket countdowns unresolved; the
			// scheduler would wait forever without the abort.
			close(abort)
			<-done
			e.stats, e.tiers, e.overlap = statsSnap, tiersSnap, overlapSnap
			e.lastStep, e.lastTiers, e.lastOverlap = stepSnap, stepTiersSnap, stepOverlapSnap
			return 0, err
		}
		<-done
	} else {
		if err := e.dispatch(active, mkJob); err != nil {
			return 0, err
		}
		for bi := range e.buckets {
			payloads[bi] = e.reduceBucket(bi, live, weights, false)
		}
	}
	off := 0
	for _, p := range e.params[0] {
		copy(p.G.Data, e.reduced[off:off+p.Numel()])
		off += p.Numel()
	}
	e.injectFaults(payloads)
	if e.cfg.Profile && e.profActive {
		d := profileDelta(profBase, profStart)
		e.lastProfile.Add(d)
		e.profile.Add(d)
	}
	e.noteStep(e.world) // filed at the world size the step executed at
	e.steps++
	// Membership epoch boundary: evict workers whose recovery has failed
	// Elastic.EvictAfter consecutive steps, rebalance, resynchronize.
	if err := e.evictDead(); err != nil {
		return 0, err
	}

	var loss float64
	for s, span := range spans {
		if span[0] == span[1] {
			continue
		}
		loss += float64(span[1]-span[0]) / float64(b) * e.losses[s]
	}
	return loss, nil
}

// shardWeights returns the batch-mean weight of every shard span and the
// indices of the non-empty (live) ones.
func shardWeights(spans [][2]int, b int) (weights []float64, live []int) {
	weights = make([]float64, len(spans))
	for s, span := range spans {
		if span[0] == span[1] {
			continue
		}
		weights[s] = float64(span[1]-span[0]) / float64(b)
		live = append(live, s)
	}
	return weights, live
}

// reduceBucket reduces one bucket of the shard gradients into e.reduced:
// the optional codec rounds every live shard's payload through its wire
// format, the schedule of the configured topology is accounted (hidden when
// the overlap scheduler fired the bucket inside the backward pass), and the
// shard-weighted sum — canonical float64 or fixed-tree pairwise float32,
// per Config.Reduction — lands in the scratch vector. It returns the
// rounded mean wire payload so fault recovery prices resends consistently.
// Safe to run concurrently with workers still back-propagating other
// buckets' coordinates: it only touches [lo, hi).
func (e *Engine) reduceBucket(bi int, live []int, weights []float64, hidden bool) int64 {
	lo, hi := e.buckets[bi][0], e.buckets[bi][1]
	wireTotal := 4 * int64(hi-lo) * int64(len(live))
	if e.cfg.Codec != nil {
		// Per-payload wire sizes may differ for data-dependent codecs;
		// the schedule formulas price one uniform payload, so account
		// the exact summed wire bytes through the schedule's byte
		// factor (see recordReduce).
		sp := kernel.StartPhase(kernel.PhaseCodec)
		wires := make([]int64, len(live))
		tasks := make([]func(), len(live))
		for i, s := range live {
			slot := s*len(e.buckets) + bi
			seg := e.grads[s][lo:hi]
			i := i
			tasks[i] = func() { wires[i] = e.cfg.Codec.Transform(slot, seg) }
		}
		par.Do(tasks...)
		wireTotal = 0
		for _, w := range wires {
			wireTotal += w
		}
		sp.End()
	}
	e.recordReduce(wireTotal, len(live), hidden)
	sp := kernel.StartPhase(kernel.PhaseReduce)
	// Gather the live shards' bucket rows once; the summation kernels are
	// chunking-invariant, so the parallel decomposition below never
	// affects the reduced bits.
	srcs := make([][]float32, len(live))
	for i, s := range live {
		srcs[i] = e.grads[s][lo:hi]
	}
	if e.cfg.Reduction == PairwiseF32 {
		scales := make([]float32, len(live))
		for i, s := range live {
			scales[i] = float32(weights[s])
		}
		par.ForGrain(hi-lo, 2048, func(l, h int) {
			sub := make([][]float32, len(srcs))
			for i := range srcs {
				sub[i] = srcs[i][l:h]
			}
			kernel.PairwiseAccumulate(e.reduced[lo+l:lo+h], sub, scales)
		})
	} else {
		scales := make([]float64, len(live))
		for i, s := range live {
			scales[i] = weights[s]
		}
		par.ForGrain(hi-lo, 2048, func(l, h int) {
			sub := make([][]float32, len(srcs))
			for i := range srcs {
				sub[i] = srcs[i][l:h]
			}
			kernel.CanonicalAccumulate(e.reduced[lo+l:lo+h], sub, scales)
		})
	}
	sp.End()
	n := int64(len(live))
	return (wireTotal + n/2) / n
}

// injectFaults rolls the fault plan for the current step and accounts the
// recovery traffic: a dropped worker payload is re-requested and resent
// (Retries plus that worker's sender share of every bucket), a straggler
// holds the barrier for one round (Stalls). A permanently dead worker's
// step is a failed recovery: a survivor recomputes its shards, the resend
// is accounted the same way, and the worker's consecutive-failure counter
// advances toward Elastic.EvictAfter instead of resetting. Under a
// hierarchical topology the recovery traffic lands on the tier the worker
// sends on — intra for node members, inter for the surviving node leaders.
// Recovery happens at the step barrier, so it is always exposed. Values are
// never affected — recovery is exact, which is what keeps faulty runs
// bit-identical to clean ones.
func (e *Engine) injectFaults(payloads []int64) {
	f := e.cfg.Faults
	if !f.enabled() || e.world == 1 {
		return
	}
	h := e.cfg.Topology
	accountDrop := func(w int) {
		if h != nil {
			leader, nodeSize, liveNodes := e.nodeRole(w)
			var t TierStats
			for _, payload := range payloads {
				t.Add(degradedSenderShare(*h, leader, nodeSize, liveNodes, payload))
			}
			if leader {
				t.Inter.Retries = 1
			} else {
				t.Intra.Retries = 1
			}
			e.recordTiers(t, false)
			return
		}
		var st CommStats
		st.Retries = 1
		for _, payload := range payloads {
			msgs, bytes := senderShare(e.cfg.Algo, e.world, payload)
			st.Messages += msgs
			st.Bytes += bytes
		}
		e.record(st, false)
	}
	for _, w := range e.liveIDs() {
		if f.deadAt(e.steps, w) {
			// Failed recovery: the re-request goes unanswered and a
			// survivor recomputes and resends the dead worker's shards.
			e.consecDead[w]++
			accountDrop(w)
			continue
		}
		e.consecDead[w] = 0
		drop, stall := f.roll(e.steps, w)
		if drop {
			accountDrop(w)
		}
		if stall {
			if h != nil {
				var t TierStats
				if leader, _, _ := e.nodeRole(w); leader {
					t.Inter.Stalls = 1
				} else {
					t.Intra.Stalls = 1
				}
				e.recordTiers(t, false)
			} else {
				e.record(CommStats{Stalls: 1}, false)
			}
		}
	}
}

// BroadcastWeights resynchronizes every replica's parameters from the
// master — the weight-distribution phase following the optimizer step —
// and accounts the broadcast schedule per bucket. A worker failure
// (architecture drift between replicas) is returned so the training loop
// can abort the step cleanly instead of crashing the process.
func (e *Engine) BroadcastWeights() error {
	var profBase [kernel.NumPhases]int64
	var profStart int64
	if e.cfg.Profile && e.profActive {
		profBase, profStart = kernel.ProfileSnapshot()
	}
	if err := e.dispatch(e.activeIDs(e.steps), func(w int) job { return job{kind: jobSync} }); err != nil {
		return err
	}
	for _, bucket := range e.buckets {
		e.recordBroadcast(4 * int64(bucket[1]-bucket[0]))
	}
	if e.cfg.Profile && e.profActive {
		d := profileDelta(profBase, profStart)
		e.lastProfile.Add(d)
		e.profile.Add(d)
	}
	return nil
}

// EvalAccuracy computes top-1 accuracy of the master weights over the
// images, processed data-parallel in chunks of at most batch rows assigned
// round-robin to the workers. The replicas must be weight-synchronized, so
// every chunk's logits are identical whichever replica computes them. A
// worker failure (bad labels, shape drift) is returned as an error.
func (e *Engine) EvalAccuracy(images *tensor.Tensor, labels []int, batch int) (float64, error) {
	n := images.Shape[0]
	if n == 0 {
		return 0, nil
	}
	if batch <= 0 || batch > n {
		batch = n
	}
	var spans [][2]int
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{lo, hi})
	}
	active := e.activeIDs(e.steps)
	slots := make([][]int, len(e.replicas))
	for i := range spans {
		w := active[i%len(active)]
		slots[w] = append(slots[w], i)
	}
	if err := e.dispatch(active, func(w int) job {
		return job{kind: jobEval, x: images, labels: labels, spans: spans, slots: slots[w]}
	}); err != nil {
		return 0, err
	}
	correct := 0
	for _, w := range active {
		correct += e.evalOK[w]
	}
	return float64(correct) / float64(n), nil
}
