package dist_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/dist"
)

// localSGDScenario is one randomized local-SGD run: a worker count, a
// synchronization period, optionally a hierarchy with an intra-node
// period, and a fault plan mixing deaths, returns and fresh joiners.
type localSGDScenario struct {
	Workers    int
	SyncEvery  int
	IntraEvery int // 0 unless Hier
	Hier       bool
	EvictAfter int
	Steps      int
	Algo       dist.Algorithm
	Dead       map[int]int64
	Join       map[int]int64
}

// Generate draws a random but always-valid scenario, reusing the
// membershipScenario rules for the fault plan: deaths land inside the
// run, returns strictly after their death, fresh joiners from step 1 on.
// The hierarchy (2x2, only when 4 workers were drawn) optionally enables
// an intra-node period dividing the full period.
func (localSGDScenario) Generate(r *rand.Rand, size int) reflect.Value {
	base := membershipScenario{}.Generate(r, size).Interface().(membershipScenario)
	sc := localSGDScenario{
		Workers:    base.Workers,
		SyncEvery:  1 + r.Intn(4), // 1..4
		EvictAfter: base.EvictAfter,
		Steps:      base.Steps,
		Algo:       base.Algo,
		Dead:       base.Dead,
		Join:       base.Join,
	}
	if sc.Workers == 4 && r.Intn(2) == 0 {
		sc.Hier = true
		if sc.SyncEvery > 1 && r.Intn(2) == 0 {
			// Any divisor of H nests; pick the smallest nontrivial one.
			for hi := 1; hi <= sc.SyncEvery; hi++ {
				if sc.SyncEvery%hi == 0 {
					sc.IntraEvery = hi
					break
				}
			}
		}
	}
	return reflect.ValueOf(sc)
}

// TestLocalSGDProperties drives random (H, fault plan) combinations
// through LocalStep and checks the conservation laws no boundary surgery
// may break: every call is one local step, sync rounds fire exactly every
// H-th step (floor conservation: LocalSteps = SyncRounds·H + open-window
// remainder), intra rounds fill the gaps per the closed form, membership
// events land on window boundaries only, the world-size histogram sums to
// the step count, and every shard keeps exactly one in-range owner with
// the load within one shard of even.
func TestLocalSGDProperties(t *testing.T) {
	x, labels, factory := testTask(30)
	property := func(sc localSGDScenario) bool {
		cfg := dist.Config{
			Algo:           sc.Algo,
			SyncEvery:      sc.SyncEvery,
			IntraSyncEvery: sc.IntraEvery,
			Faults:         &dist.FaultPlan{Dead: sc.Dead, Join: sc.Join},
			Elastic:        &dist.Elastic{EvictAfter: sc.EvictAfter},
		}
		if sc.Hier {
			h := dist.NewHierarchy(2, 2)
			cfg.Topology = &h
		}
		e := localEngine(cfg, sc.Workers, factory)
		defer e.Close()
		for step := 0; step < sc.Steps; step++ {
			if _, err := e.LocalStep(x, labels, 0.05); err != nil {
				t.Logf("%+v: step %d: %v", sc, step, err)
				return false
			}
			if e.LiveWorkers() < 1 || e.Shards() < 1 {
				t.Logf("%+v: step %d left world %d shards %d", sc, step, e.LiveWorkers(), e.Shards())
				return false
			}
			owners := e.ShardOwners()
			counts := map[int]int{}
			for s, w := range owners {
				if w < 0 || w >= sc.Workers {
					t.Logf("%+v: step %d: shard %d owned by out-of-range worker %d", sc, step, s, w)
					return false
				}
				counts[w]++
			}
			minC, maxC := sc.Steps*sc.Workers, 0
			for _, c := range counts {
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
			if len(counts) > e.LiveWorkers() || maxC-minC > 1 {
				t.Logf("%+v: step %d: shard assignment %v inconsistent with world %d", sc, step, counts, e.LiveWorkers())
				return false
			}
		}

		// Step/round conservation: the counters account for every call.
		steps := int64(sc.Steps)
		lsgd := e.LocalSGD()
		if lsgd.LocalSteps != steps {
			t.Logf("%+v: %d local steps counted for %d calls", sc, lsgd.LocalSteps, steps)
			return false
		}
		if want := comm.LocalSGDSyncRounds(steps, sc.SyncEvery); lsgd.SyncRounds != want {
			t.Logf("%+v: %d sync rounds, want %d", sc, lsgd.SyncRounds, want)
			return false
		}
		if want := comm.LocalSGDIntraRounds(steps, sc.SyncEvery, sc.IntraEvery); lsgd.IntraRounds != want {
			t.Logf("%+v: %d intra rounds, want %d", sc, lsgd.IntraRounds, want)
			return false
		}
		open := lsgd.LocalSteps - lsgd.SyncRounds*int64(sc.SyncEvery)
		if open != steps%int64(sc.SyncEvery) {
			t.Logf("%+v: %d steps ride the open window, want %d", sc, open, steps%int64(sc.SyncEvery))
			return false
		}

		// World-size bookkeeping: the histogram covers every step, and
		// membership only ever changes on window boundaries.
		m := e.Membership()
		if m.Steps() != steps {
			t.Logf("%+v: histogram sums to %d steps, engine ran %d", sc, m.Steps(), sc.Steps)
			return false
		}
		for _, ev := range m.Events {
			if ev.Step%int64(sc.SyncEvery) != 0 {
				t.Logf("%+v: event %v landed mid-window (H=%d)", sc, ev, sc.SyncEvery)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
