package models

import (
	"testing"

	"repro/internal/rng"
)

func TestResNet18SpecCanonical(t *testing.T) {
	spec := ResNet18Spec()
	// torchvision resnet18: 11,689,512 parameters.
	if got := spec.ParamCount(); got != 11689512 {
		t.Errorf("ResNet-18 params = %d, want 11689512", got)
	}
	// ~1.8 GMACs on 224x224 → ~3.6 GFLOPs.
	flops := spec.FLOPsPerImage()
	if flops < 3.4e9 || flops > 3.9e9 {
		t.Errorf("ResNet-18 FLOPs = %d, want ~3.6e9", flops)
	}
}

func TestResNet34SpecCanonical(t *testing.T) {
	spec := ResNet34Spec()
	// torchvision resnet34: 21,797,672 parameters.
	if got := spec.ParamCount(); got != 21797672 {
		t.Errorf("ResNet-34 params = %d, want 21797672", got)
	}
	flops := spec.FLOPsPerImage()
	if flops < 7.0e9 || flops > 7.7e9 {
		t.Errorf("ResNet-34 FLOPs = %d, want ~7.3e9", flops)
	}
}

func TestResNetFamilyOrdering(t *testing.T) {
	p18 := ResNet18Spec().ParamCount()
	p34 := ResNet34Spec().ParamCount()
	p50 := ResNet50Spec().ParamCount()
	if !(p18 < p34 && p34 < p50) {
		t.Fatalf("family ordering broken: %d, %d, %d", p18, p34, p50)
	}
}

func TestResNet18TrainableMatchesSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates the full 11.7M-parameter network")
	}
	net := NewResNet18(rng.New(1), 1000)
	if got, want := int64(net.NumParams()), ResNet18Spec().ParamCount(); got != want {
		t.Errorf("trainable ResNet-18 has %d params, spec says %d", got, want)
	}
}

func TestResNet34TrainableMatchesSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates the full 21.8M-parameter network")
	}
	net := NewResNet34(rng.New(1), 1000)
	if got, want := int64(net.NumParams()), ResNet34Spec().ParamCount(); got != want {
		t.Errorf("trainable ResNet-34 has %d params, spec says %d", got, want)
	}
}
