package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestAlexNetSpecTable6 validates the Table 6 row for AlexNet:
// ~61M parameters, ~1.5 GFLOPs/image, scaling ratio ~24.6.
func TestAlexNetSpecTable6(t *testing.T) {
	spec := AlexNetSpec()
	if got := spec.ParamCount(); got != 60965224 {
		t.Errorf("AlexNet params = %d, want 60965224 (the canonical grouped AlexNet)", got)
	}
	flops := spec.FLOPsPerImage()
	if flops < 1.40e9 || flops > 1.55e9 {
		t.Errorf("AlexNet FLOPs/image = %d, want ~1.5e9 (Table 6)", flops)
	}
	ratio := spec.ScalingRatio()
	if ratio < 22 || ratio < 0 || ratio > 27 {
		t.Errorf("AlexNet scaling ratio = %.2f, want ~24.6 (Table 6)", ratio)
	}
}

// TestResNet50SpecTable6 validates the Table 6 row for ResNet-50:
// ~25M parameters, ~7.7 GFLOPs/image, scaling ratio ~308.
func TestResNet50SpecTable6(t *testing.T) {
	spec := ResNet50Spec()
	if got := spec.ParamCount(); got != 25557032 {
		t.Errorf("ResNet-50 params = %d, want 25557032 (canonical)", got)
	}
	flops := spec.FLOPsPerImage()
	if flops < 7.4e9 || flops > 8.1e9 {
		t.Errorf("ResNet-50 FLOPs/image = %d, want ~7.7e9 (Table 6)", flops)
	}
	ratio := spec.ScalingRatio()
	if ratio < 290 || ratio > 320 {
		t.Errorf("ResNet-50 scaling ratio = %.1f, want ~308 (Table 6)", ratio)
	}
}

// TestScalingRatioComparison checks the paper's qualitative claim that
// ResNet-50's computation/communication ratio is ~12.5x AlexNet's, which is
// why ResNet-50 weak-scales so much better.
func TestScalingRatioComparison(t *testing.T) {
	a, r := AlexNetSpec(), ResNet50Spec()
	rel := r.ScalingRatio() / a.ScalingRatio()
	if rel < 11 || rel > 14 {
		t.Errorf("ResNet50/AlexNet ratio = %.2f, want ~12.5 (Table 6)", rel)
	}
}

func TestAlexNetBNSpec(t *testing.T) {
	bn := AlexNetBNSpec()
	plain := AlexNetSpec()
	// Removing the tower grouping roughly doubles several conv layers, so
	// AlexNet-BN is a bit heavier than the original.
	if bn.ParamCount() <= plain.ParamCount() {
		t.Errorf("AlexNet-BN params %d should exceed grouped AlexNet %d", bn.ParamCount(), plain.ParamCount())
	}
	if bn.ParamCount() < 62e6 || bn.ParamCount() > 63e6 {
		t.Errorf("AlexNet-BN params = %d, want ~62.4M", bn.ParamCount())
	}
	hasBN, hasLRN := false, false
	for _, l := range bn.Layers {
		switch l.Kind {
		case "bn":
			hasBN = true
		case "lrn":
			hasLRN = true
		}
	}
	if !hasBN || hasLRN {
		t.Error("AlexNet-BN must use batch norm and no LRN")
	}
}

func TestTrainingFLOPsMatchPaperClaim(t *testing.T) {
	// The paper: "If we run 90 epochs for ImageNet dataset, the number of
	// operations is 90 * 1.28 Million * 7.72 Billion (~1e18)".
	spec := ResNet50Spec()
	total := float64(spec.TrainFLOPsPerImage()) * 90 * 1.28e6 / 3
	// (The paper's 1e18 counts forward passes; with the conventional 3x
	// train multiplier it is ~3e18. Check the forward-only figure.)
	if total < 0.8e18 || total > 1.2e18 {
		t.Errorf("90-epoch forward FLOPs = %.3g, want ~1e18", total)
	}
}

func TestResNet50TrainableMatchesSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates the full 25.6M-parameter network")
	}
	r := rng.New(1)
	net := NewResNet50(r, 1000)
	want := ResNet50Spec().ParamCount()
	if got := int64(net.NumParams()); got != want {
		t.Errorf("trainable ResNet-50 has %d params, spec says %d", got, want)
	}
}

func TestAlexNetTrainableMatchesSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates the full 61M-parameter network")
	}
	r := rng.New(1)
	net := NewAlexNet(r, 1000)
	want := AlexNetSpec().ParamCount()
	if got := int64(net.NumParams()); got != want {
		t.Errorf("trainable AlexNet has %d params, spec says %d (the canonical 60,965,224)", got, want)
	}
}

func TestAlexNetBNTrainableMatchesSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates the full 62M-parameter network")
	}
	r := rng.New(1)
	net := NewAlexNetBN(r, 1000)
	want := AlexNetBNSpec().ParamCount()
	if got := int64(net.NumParams()); got != want {
		t.Errorf("trainable AlexNet-BN has %d params, spec says %d", got, want)
	}
}

func TestMicroAlexNetForward(t *testing.T) {
	for _, useLRN := range []bool{false, true} {
		cfg := MicroConfig{Classes: 6, InH: 16, Width: 8, Seed: 3, UseLRN: useLRN}
		net := NewMicroAlexNet(cfg)
		r := rng.New(9)
		x := tensor.RandNormal(r, 1, 4, 3, 16, 16)
		y := net.Forward(x, true)
		if y.Shape[0] != 4 || y.Shape[1] != 6 {
			t.Fatalf("UseLRN=%v: output shape %v, want [4,6]", useLRN, y.Shape)
		}
		if y.HasNaN() {
			t.Fatalf("UseLRN=%v: forward produced NaN", useLRN)
		}
	}
}

func TestMicroAlexNetSpecMatchesTrainable(t *testing.T) {
	for _, useLRN := range []bool{false, true} {
		cfg := MicroConfig{Classes: 6, InH: 16, Width: 8, Seed: 3, UseLRN: useLRN}
		net := NewMicroAlexNet(cfg)
		spec := MicroAlexNetSpec(cfg)
		if got, want := int64(net.NumParams()), spec.ParamCount(); got != want {
			t.Errorf("UseLRN=%v: trainable %d params vs spec %d", useLRN, got, want)
		}
	}
}

func TestMicroResNetForwardBackward(t *testing.T) {
	cfg := MicroConfig{Classes: 5, InH: 16, Width: 8, Seed: 4}
	net := NewMicroResNet(cfg)
	r := rng.New(10)
	x := tensor.RandNormal(r, 1, 2, 3, 16, 16)
	y := net.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 5 {
		t.Fatalf("output shape %v, want [2,5]", y.Shape)
	}
	var loss nn.SoftmaxCrossEntropy
	loss.Forward(y, []int{0, 1})
	net.ZeroGrad()
	net.Backward(loss.Backward())
	// All parameters should receive gradient.
	for _, p := range net.Params() {
		if p.G.Norm2() == 0 && p.Numel() > 0 {
			t.Errorf("parameter %s received no gradient", p.Name)
		}
	}
}

func TestMLPTrainsOnToyProblem(t *testing.T) {
	cfg := MicroConfig{Classes: 2, InC: 1, InH: 4, InW: 4, Width: 4, Seed: 5}
	net := NewMLP(cfg)
	r := rng.New(11)
	// Class 0: negative mean image; class 1: positive mean image.
	n := 32
	x := tensor.New(n, 1, 4, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		sign := float32(-1)
		if i%2 == 1 {
			sign = 1
			labels[i] = 1
		}
		for j := 0; j < 16; j++ {
			x.Data[i*16+j] = sign + 0.3*r.NormFloat32()
		}
	}
	var loss nn.SoftmaxCrossEntropy
	first := 0.0
	for step := 0; step < 60; step++ {
		y := net.Forward(x, true)
		l := loss.Forward(y, labels)
		if step == 0 {
			first = l
		}
		net.ZeroGrad()
		net.Backward(loss.Backward())
		for _, p := range net.Params() {
			p.W.Axpy(-0.1, p.G)
		}
	}
	y := net.Forward(x, false)
	final := loss.Forward(y, labels)
	if final >= first/2 {
		t.Errorf("plain SGD failed to learn: loss %v -> %v", first, final)
	}
	if acc := nn.Accuracy(y, labels); acc < 0.95 {
		t.Errorf("toy accuracy %v, want >= 0.95", acc)
	}
}

func TestSpecStringRenders(t *testing.T) {
	s := AlexNetSpec().String()
	if len(s) == 0 {
		t.Fatal("empty spec string")
	}
}
