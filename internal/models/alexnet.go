package models

import (
	"repro/internal/nn"
	"repro/internal/rng"
)

// AlexNetSpec returns the original (grouped, LRN) AlexNet on 227x227x3 input
// with 1000 classes: ~61M parameters and ~1.45 GFLOPs per image, the numbers
// the paper quotes in Table 6.
func AlexNetSpec() *ModelSpec {
	b := newSpecBuilder("AlexNet", 3, 227, 227, 1000)
	b.conv("conv1", 96, 11, 4, 0, 1, true).relu("relu1").lrn("norm1", 5).maxpool("pool1", 3, 2, 0)
	b.conv("conv2", 256, 5, 1, 2, 2, true).relu("relu2").lrn("norm2", 5).maxpool("pool2", 3, 2, 0)
	b.conv("conv3", 384, 3, 1, 1, 1, true).relu("relu3")
	b.conv("conv4", 384, 3, 1, 1, 2, true).relu("relu4")
	b.conv("conv5", 256, 3, 1, 1, 2, true).relu("relu5").maxpool("pool5", 3, 2, 0)
	b.fc("fc6", 4096, true).relu("relu6").dropout("drop6")
	b.fc("fc7", 4096, true).relu("relu7").dropout("drop7")
	b.fc("fc8", 1000, true)
	return b.build()
}

// AlexNetBNSpec returns Ginsburg's AlexNet-BN refit that the paper uses for
// batch size 32K: every LRN is replaced by a batch normalization after the
// convolution, and grouping is removed (single-tower convolutions), which is
// what makes the model stable under the very large LARS learning rates.
func AlexNetBNSpec() *ModelSpec {
	b := newSpecBuilder("AlexNet-BN", 3, 227, 227, 1000)
	b.conv("conv1", 96, 11, 4, 0, 1, false).bn("bn1").relu("relu1").maxpool("pool1", 3, 2, 0)
	b.conv("conv2", 256, 5, 1, 2, 1, false).bn("bn2").relu("relu2").maxpool("pool2", 3, 2, 0)
	b.conv("conv3", 384, 3, 1, 1, 1, false).bn("bn3").relu("relu3")
	b.conv("conv4", 384, 3, 1, 1, 1, false).bn("bn4").relu("relu4")
	b.conv("conv5", 256, 3, 1, 1, 1, false).bn("bn5").relu("relu5").maxpool("pool5", 3, 2, 0)
	b.fc("fc6", 4096, true).relu("relu6").dropout("drop6")
	b.fc("fc7", 4096, true).relu("relu7").dropout("drop7")
	b.fc("fc8", 1000, true)
	return b.build()
}

// NewAlexNet constructs the trainable original AlexNet: grouped two-tower
// convolutions (groups=2 on conv2/4/5), LRN after conv1/conv2, dropout on
// fc6/fc7. The allocated parameter count matches AlexNetSpec exactly
// (60,965,224 at 1000 classes) — asserted in the tests.
func NewAlexNet(r *rng.Rand, classes int) *nn.Network {
	net := nn.NewNetwork("alexnet")
	net.Add(
		nn.NewConv("conv1", r, 3, 96, 11, 4, 0, nn.ConvOpts{}),
		nn.NewReLU("relu1"),
		nn.NewLRN("norm1"),
		nn.NewMaxPool("pool1", 3, 2, 0),

		nn.NewGroupedConv("conv2", r, 96, 256, 5, 1, 2, 2, nn.ConvOpts{}),
		nn.NewReLU("relu2"),
		nn.NewLRN("norm2"),
		nn.NewMaxPool("pool2", 3, 2, 0),

		nn.NewConv("conv3", r, 256, 384, 3, 1, 1, nn.ConvOpts{}),
		nn.NewReLU("relu3"),

		nn.NewGroupedConv("conv4", r, 384, 384, 3, 1, 1, 2, nn.ConvOpts{}),
		nn.NewReLU("relu4"),

		nn.NewGroupedConv("conv5", r, 384, 256, 3, 1, 1, 2, nn.ConvOpts{}),
		nn.NewReLU("relu5"),
		nn.NewMaxPool("pool5", 3, 2, 0),

		nn.NewFlatten(),
		nn.NewLinear("fc6", r, 256*6*6, 4096),
		nn.NewReLU("relu6"),
		nn.NewDropout("drop6", r.Split(), 0.5),
		nn.NewLinear("fc7", r, 4096, 4096),
		nn.NewReLU("relu7"),
		nn.NewDropout("drop7", r.Split(), 0.5),
		nn.NewLinear("fc8", r, 4096, classes),
	)
	return net
}

// NewAlexNetBN constructs the trainable (ungrouped) AlexNet-BN network. The
// geometry matches AlexNetBNSpec exactly; the test suite asserts that the
// allocated parameter count equals the spec's ParamCount. It is a large
// allocation (~62M weights plus gradients); the measured experiments use the
// micro variants instead.
func NewAlexNetBN(r *rng.Rand, classes int) *nn.Network {
	net := nn.NewNetwork("alexnet-bn")
	net.Add(
		nn.NewConv("conv1", r, 3, 96, 11, 4, 0, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn1", 96),
		nn.NewReLU("relu1"),
		nn.NewMaxPool("pool1", 3, 2, 0),

		nn.NewConv("conv2", r, 96, 256, 5, 1, 2, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn2", 256),
		nn.NewReLU("relu2"),
		nn.NewMaxPool("pool2", 3, 2, 0),

		nn.NewConv("conv3", r, 256, 384, 3, 1, 1, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn3", 384),
		nn.NewReLU("relu3"),

		nn.NewConv("conv4", r, 384, 384, 3, 1, 1, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn4", 384),
		nn.NewReLU("relu4"),

		nn.NewConv("conv5", r, 384, 256, 3, 1, 1, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn5", 256),
		nn.NewReLU("relu5"),
		nn.NewMaxPool("pool5", 3, 2, 0),

		nn.NewFlatten(),
		nn.NewLinear("fc6", r, 256*6*6, 4096),
		nn.NewReLU("relu6"),
		nn.NewDropout("drop6", r.Split(), 0.5),
		nn.NewLinear("fc7", r, 4096, 4096),
		nn.NewReLU("relu7"),
		nn.NewDropout("drop7", r.Split(), 0.5),
		nn.NewLinear("fc8", r, 4096, classes),
	)
	return net
}
