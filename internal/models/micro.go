package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rng"
)

// MicroConfig configures the reduced trainable models used by the measured
// experiments. The full-size networks are faithful to the paper but far too
// expensive to train without the authors' 2048-node cluster; the micro
// variants keep the structural features that matter to the large-batch
// optimization question (conv stacks, BN, residual bottlenecks, dropout)
// at a scale a couple of CPU cores can train in seconds.
type MicroConfig struct {
	Classes int
	InC     int // input channels, typically 3
	InH     int
	InW     int
	Width   int    // base channel width
	Seed    uint64 // weight initialization seed
	UseLRN  bool   // MicroAlexNet only: original LRN instead of BN
}

func (c MicroConfig) withDefaults() MicroConfig {
	if c.Classes == 0 {
		c.Classes = 8
	}
	if c.InC == 0 {
		c.InC = 3
	}
	if c.InH == 0 {
		c.InH = 16
	}
	if c.InW == 0 {
		c.InW = c.InH
	}
	if c.Width == 0 {
		c.Width = 8
	}
	return c
}

// NewMicroAlexNet builds a two-conv-block AlexNet analogue: conv → norm →
// relu → pool twice, then an FC head with dropout. With UseLRN it mirrors
// the original AlexNet normalization; without, the AlexNet-BN refit the
// paper requires for 32K batches.
func NewMicroAlexNet(cfg MicroConfig) *nn.Network {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	w := cfg.Width
	norm := func(name string, c int) nn.Layer {
		if cfg.UseLRN {
			return nn.NewLRN(name)
		}
		return nn.NewBatchNorm(name, c)
	}
	net := nn.NewNetwork(fmt.Sprintf("micro-alexnet-w%d", w),
		nn.NewConv("conv1", r, cfg.InC, w, 3, 1, 1, nn.ConvOpts{NoBias: !cfg.UseLRN}),
		norm("norm1", w),
		nn.NewReLU("relu1"),
		nn.NewMaxPool("pool1", 2, 2, 0),

		nn.NewConv("conv2", r, w, 2*w, 3, 1, 1, nn.ConvOpts{NoBias: !cfg.UseLRN}),
		norm("norm2", 2*w),
		nn.NewReLU("relu2"),
		nn.NewMaxPool("pool2", 2, 2, 0),

		nn.NewFlatten(),
		nn.NewLinear("fc1", r, 2*w*(cfg.InH/4)*(cfg.InW/4), 8*w),
		nn.NewReLU("relu3"),
		nn.NewDropout("drop1", r.Split(), 0.5),
		nn.NewLinear("fc2", r, 8*w, cfg.Classes),
	)
	return net
}

// NewMicroResNet builds a reduced bottleneck ResNet: stem conv+BN, two
// stages of bottleneck blocks (the second strided), global average pooling
// and a linear classifier — ResNet-50's structure at toy scale.
func NewMicroResNet(cfg MicroConfig) *nn.Network {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	w := cfg.Width
	net := nn.NewNetwork(fmt.Sprintf("micro-resnet-w%d", w),
		nn.NewConv("conv1", r, cfg.InC, w, 3, 1, 1, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn1", w),
		nn.NewReLU("relu1"),
	)
	net.Add(
		newBottleneck(r, "res2_1", w, w/2, 1),
		newBottleneck(r, "res3_1", 2*w, w, 2),
	)
	net.Add(
		nn.NewGlobalAvgPool("gap"),
		nn.NewFlatten(),
		nn.NewLinear("fc", r, 4*w, cfg.Classes),
	)
	return net
}

// NewMicroConvNet builds the all-convolutional, GAP-headed micro model used
// by the progressive-resolution experiments: conv-relu stacks with two
// stride-2 downsampling convs, global average pooling, and a linear
// classifier. Every layer computes its geometry from the incoming batch, so
// the same weights train and evaluate at any input resolution the two
// stride-2 stages can absorb (H, W ≥ 4) — unlike MicroAlexNet, whose
// flatten→fc head bakes the canonical H×W into |W|. It deliberately has no
// batch normalization or dropout: BN batch statistics and per-replica
// dropout RNG would break bit-identity across worker counts, and the
// shape-agnostic regression grid trains this model across P/topologies.
func NewMicroConvNet(cfg MicroConfig) *nn.Network {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	w := cfg.Width
	return nn.NewNetwork(fmt.Sprintf("micro-convnet-w%d", w),
		nn.NewConv("conv1", r, cfg.InC, w, 3, 1, 1, nn.ConvOpts{}),
		nn.NewReLU("relu1"),
		nn.NewConv("conv2", r, w, 2*w, 3, 2, 1, nn.ConvOpts{}),
		nn.NewReLU("relu2"),
		nn.NewConv("conv3", r, 2*w, 2*w, 3, 1, 1, nn.ConvOpts{}),
		nn.NewReLU("relu3"),
		nn.NewConv("conv4", r, 2*w, 4*w, 3, 2, 1, nn.ConvOpts{}),
		nn.NewReLU("relu4"),
		nn.NewGlobalAvgPool("gap"),
		nn.NewFlatten(),
		nn.NewLinear("fc", r, 4*w, cfg.Classes),
	)
}

// NewMLP builds a plain two-hidden-layer perceptron baseline. It is the
// cheapest model that still shows the large-batch generalization gap, which
// makes it useful for fast tests of the optimizer machinery.
func NewMLP(cfg MicroConfig) *nn.Network {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	in := cfg.InC * cfg.InH * cfg.InW
	h := 8 * cfg.Width
	return nn.NewNetwork(fmt.Sprintf("mlp-h%d", h),
		nn.NewFlatten(),
		nn.NewLinear("fc1", r, in, h),
		nn.NewReLU("relu1"),
		nn.NewLinear("fc2", r, h, h),
		nn.NewReLU("relu2"),
		nn.NewLinear("fc3", r, h, cfg.Classes),
	)
}

// MicroAlexNetSpec mirrors NewMicroAlexNet for cost accounting in the
// simulator and the communication analysis of the measured experiments.
func MicroAlexNetSpec(cfg MicroConfig) *ModelSpec {
	cfg = cfg.withDefaults()
	w := cfg.Width
	b := newSpecBuilder(fmt.Sprintf("micro-alexnet-w%d", w), cfg.InC, cfg.InH, cfg.InW, cfg.Classes)
	if cfg.UseLRN {
		b.conv("conv1", w, 3, 1, 1, 1, true).lrn("norm1", 5)
	} else {
		b.conv("conv1", w, 3, 1, 1, 1, false).bn("norm1")
	}
	b.relu("relu1").maxpool("pool1", 2, 2, 0)
	if cfg.UseLRN {
		b.conv("conv2", 2*w, 3, 1, 1, 1, true).lrn("norm2", 5)
	} else {
		b.conv("conv2", 2*w, 3, 1, 1, 1, false).bn("norm2")
	}
	b.relu("relu2").maxpool("pool2", 2, 2, 0)
	b.fc("fc1", 8*w, true).relu("relu3").dropout("drop1")
	b.fc("fc2", cfg.Classes, true)
	return b.build()
}

// MicroConvNetSpec mirrors NewMicroConvNet for cost accounting. Being
// all-conv with a GAP head, its ParamCount is the same at every input
// resolution, which is what lets the simulator price a resolution
// curriculum with a constant communication volume.
func MicroConvNetSpec(cfg MicroConfig) *ModelSpec {
	cfg = cfg.withDefaults()
	w := cfg.Width
	b := newSpecBuilder(fmt.Sprintf("micro-convnet-w%d", w), cfg.InC, cfg.InH, cfg.InW, cfg.Classes)
	b.conv("conv1", w, 3, 1, 1, 1, true).relu("relu1")
	b.conv("conv2", 2*w, 3, 2, 1, 1, true).relu("relu2")
	b.conv("conv3", 2*w, 3, 1, 1, 1, true).relu("relu3")
	b.conv("conv4", 4*w, 3, 2, 1, 1, true).relu("relu4")
	b.gap("gap").fc("fc", cfg.Classes, true)
	return b.build()
}
