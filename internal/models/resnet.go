package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rng"
)

// resNet50Stages is the canonical [3,4,6,3] bottleneck layout of ResNet-50
// with bottleneck widths 64/128/256/512 (He et al. 2016).
var resNet50Stages = []int{3, 4, 6, 3}

// bottleneckSpec appends one He-style bottleneck block (stride on the first
// 1x1 convolution, as in the original ResNet paper the authors cite) to the
// builder, including the projection shortcut when the geometry changes.
func bottleneckSpec(b *specBuilder, name string, mid, stride int) {
	inC := b.c
	out := 4 * mid
	entry := b.mark()
	b.conv(name+".conv1", mid, 1, stride, 0, 1, false).bn(name + ".bn1").relu(name + ".relu1")
	b.conv(name+".conv2", mid, 3, 1, 1, 1, false).bn(name + ".bn2").relu(name + ".relu2")
	b.conv(name+".conv3", out, 1, 1, 0, 1, false).bn(name + ".bn3")
	body := b.mark()
	if inC != out || stride != 1 {
		// Projection shortcut: 1x1 conv fed from the block input, so the
		// builder cursor branches back to the entry mark and the replay
		// recipe records the true feeding layer.
		b.restore(entry)
		b.conv(name+".down", out, 1, stride, 0, 1, false).bn(name + ".downbn")
	}
	// The elementwise sum output has the body geometry.
	b.restore(body)
	b.relu(name + ".relu3")
}

// ResNet50Spec returns the exact ResNet-50 architecture on 224x224x3 input:
// ~25.6M parameters and ~7.7 GFLOPs per image (Table 6).
func ResNet50Spec() *ModelSpec {
	b := newSpecBuilder("ResNet-50", 3, 224, 224, 1000)
	b.conv("conv1", 64, 7, 2, 3, 1, false).bn("bn1").relu("relu1").maxpool("pool1", 3, 2, 1)
	mid := 64
	for stage, blocks := range resNet50Stages {
		for blk := 0; blk < blocks; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			bottleneckSpec(b, fmt.Sprintf("conv%d_%d", stage+2, blk+1), mid, stride)
		}
		mid *= 2
	}
	b.gap("gap").fc("fc", 1000, true)
	return b.build()
}

// newBottleneck constructs a trainable bottleneck residual block matching
// bottleneckSpec.
func newBottleneck(r *rng.Rand, name string, inC, mid, stride int) *nn.Residual {
	out := 4 * mid
	body := nn.NewNetwork(name+".body",
		nn.NewConv(name+".conv1", r, inC, mid, 1, stride, 0, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm(name+".bn1", mid),
		nn.NewReLU(name+".relu1"),
		nn.NewConv(name+".conv2", r, mid, mid, 3, 1, 1, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm(name+".bn2", mid),
		nn.NewReLU(name+".relu2"),
		nn.NewConv(name+".conv3", r, mid, out, 1, 1, 0, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm(name+".bn3", out),
	)
	var shortcut *nn.Network
	if inC != out || stride != 1 {
		shortcut = nn.NewNetwork(name+".short",
			nn.NewConv(name+".down", r, inC, out, 1, stride, 0, nn.ConvOpts{NoBias: true}),
			nn.NewBatchNorm(name+".downbn", out),
		)
	}
	return nn.NewResidual(name, body, shortcut)
}

// NewResNet50 constructs the full trainable ResNet-50. The parameter count
// matches ResNet50Spec exactly (asserted in tests). At ~25.6M weights plus
// gradients this allocates ~200MB; measured experiments use NewMicroResNet.
func NewResNet50(r *rng.Rand, classes int) *nn.Network {
	net := nn.NewNetwork("resnet-50",
		nn.NewConv("conv1", r, 3, 64, 7, 2, 3, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn1", 64),
		nn.NewReLU("relu1"),
		nn.NewMaxPool("pool1", 3, 2, 1),
	)
	inC := 64
	mid := 64
	for stage, blocks := range resNet50Stages {
		for blk := 0; blk < blocks; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			net.Add(newBottleneck(r, fmt.Sprintf("conv%d_%d", stage+2, blk+1), inC, mid, stride))
			inC = 4 * mid
		}
		mid *= 2
	}
	net.Add(
		nn.NewGlobalAvgPool("gap"),
		nn.NewFlatten(),
		nn.NewLinear("fc", r, inC, classes),
	)
	return net
}
