// Package models provides the paper's two benchmark networks in two forms:
//
//   - Exact architecture specs for full-size AlexNet (with and without the
//     BN refit) and ResNet-50, with per-layer parameter and FLOP counting.
//     These drive Table 6 (scaling ratio = computation/communication) and the
//     communication-volume analysis of Figures 8-10, where only |W| and the
//     per-image FLOP count matter — not trained weights.
//
//   - Trainable instances: full-size builders (used to validate the specs
//     against real allocations) and reduced "micro" variants suited to the
//     measured experiments on SynthImageNet.
package models

import (
	"fmt"
	"strings"
)

// LayerSpec records the cost-model-relevant facts about one layer.
type LayerSpec struct {
	Name   string
	Kind   string // "conv", "fc", "bn", "lrn", "pool", "relu", "dropout", "gap"
	Params int64  // learnable scalars
	MACs   int64  // multiply-accumulate operations per image
	// Output activation shape (channels, height, width). Fully-connected
	// layers use OutC with OutH = OutW = 1.
	OutC, OutH, OutW int

	// Replay recipe, set by specBuilder: enough to recompute Params, MACs,
	// and output dims when the model input resolution changes (At /
	// FLOPsPerImageAt). In is the index of the feeding layer (-1 = model
	// input) — branches like ResNet projection shortcuts feed from an
	// earlier layer than their list predecessor. K doubles as the LRN
	// window. Replay is only defined for builder-produced specs.
	In     int
	K      int
	Stride int
	Pad    int
	Groups int
	Bias   bool
}

// ModelSpec is an ordered stack of LayerSpecs plus the input geometry.
type ModelSpec struct {
	Name                   string
	InputC, InputH, InputW int
	Classes                int
	Layers                 []LayerSpec
}

// ParamCount returns |W|: the number of learnable scalars, which is also the
// per-iteration communication volume (in words) of synchronous SGD.
func (m *ModelSpec) ParamCount() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Params
	}
	return n
}

// MACsPerImage returns the multiply-accumulates of one forward pass.
func (m *ModelSpec) MACsPerImage() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.MACs
	}
	return n
}

// FLOPsPerImage counts one multiply-accumulate as two floating-point
// operations, matching the paper's "1.5 billion" (AlexNet) and "7.7 billion"
// (ResNet-50) per-image numbers in Table 6.
func (m *ModelSpec) FLOPsPerImage() int64 { return 2 * m.MACsPerImage() }

// TrainFLOPsPerImage approximates the full forward+backward cost as 3x the
// forward pass, the standard accounting the paper's 10^18-operations claim
// for 90-epoch ResNet-50 training is built on.
func (m *ModelSpec) TrainFLOPsPerImage() int64 { return 3 * m.FLOPsPerImage() }

// At replays the spec at a different input resolution: every layer's output
// dims, MACs, and (for layers whose parameters depend on the activation
// size, i.e. fc after flatten) Params are recomputed from the recipe fields
// while channel widths and kernel geometry stay fixed. GAP-headed models
// keep their exact ParamCount at every resolution; flatten→fc models
// change |W| with resolution, which At reports faithfully — callers that
// require a fixed weight vector (the distributed engine, the simulator's
// comm pricing) must check ParamCount invariance. Only defined for specs
// produced by this package's builder (the recipe fields must be set).
func (m *ModelSpec) At(h, w int) *ModelSpec {
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("models: %s: At(%d,%d) input must be positive", m.Name, h, w))
	}
	out := &ModelSpec{Name: m.Name, InputC: m.InputC, InputH: h, InputW: w, Classes: m.Classes,
		Layers: make([]LayerSpec, len(m.Layers))}
	for i, l := range m.Layers {
		inC, inH, inW := m.InputC, h, w
		if l.In >= 0 {
			f := out.Layers[l.In]
			inC, inH, inW = f.OutC, f.OutH, f.OutW
		}
		nl := l
		switch l.Kind {
		case "conv":
			outH := (inH+2*l.Pad-l.K)/l.Stride + 1
			outW := (inW+2*l.Pad-l.K)/l.Stride + 1
			if outH <= 0 || outW <= 0 {
				panic(fmt.Sprintf("models: %s: conv %s output empty at input %dx%d", m.Name, l.Name, h, w))
			}
			nl.Params = int64(l.OutC) * int64(inC/l.Groups) * int64(l.K*l.K)
			if l.Bias {
				nl.Params += int64(l.OutC)
			}
			nl.MACs = int64(inC/l.Groups) * int64(l.K*l.K) * int64(l.OutC) * int64(outH*outW)
			nl.OutH, nl.OutW = outH, outW
		case "fc":
			in := int64(inC) * int64(inH) * int64(inW)
			nl.Params = in * int64(l.OutC)
			if l.Bias {
				nl.Params += int64(l.OutC)
			}
			nl.MACs = in * int64(l.OutC)
		case "bn":
			nl.Params = 2 * int64(inC)
			nl.MACs = 2 * int64(inC) * int64(inH*inW)
			nl.OutC, nl.OutH, nl.OutW = inC, inH, inW
		case "lrn":
			nl.MACs = int64(l.K) * int64(inC) * int64(inH*inW)
			nl.OutC, nl.OutH, nl.OutW = inC, inH, inW
		case "pool":
			outH := (inH+2*l.Pad-l.K)/l.Stride + 1
			outW := (inW+2*l.Pad-l.K)/l.Stride + 1
			if outH <= 0 || outW <= 0 {
				panic(fmt.Sprintf("models: %s: pool %s output empty at input %dx%d", m.Name, l.Name, h, w))
			}
			nl.MACs = int64(l.K*l.K) * int64(inC) * int64(outH*outW) / 2
			nl.OutC, nl.OutH, nl.OutW = inC, outH, outW
		case "gap":
			nl.MACs = int64(inC) * int64(inH*inW) / 2
			nl.OutC, nl.OutH, nl.OutW = inC, 1, 1
		case "relu", "dropout":
			nl.OutC, nl.OutH, nl.OutW = inC, inH, inW
		default:
			panic(fmt.Sprintf("models: %s: cannot replay layer kind %q", m.Name, l.Kind))
		}
		out.Layers[i] = nl
	}
	return out
}

// LayersAt returns the per-layer specs replayed at input resolution h×w.
func (m *ModelSpec) LayersAt(h, w int) []LayerSpec { return m.At(h, w).Layers }

// MACsPerImageAt returns the forward multiply-accumulates at input h×w.
func (m *ModelSpec) MACsPerImageAt(h, w int) int64 { return m.At(h, w).MACsPerImage() }

// FLOPsPerImageAt returns FLOPsPerImage recomputed at input resolution h×w;
// at the canonical (InputH, InputW) it equals FLOPsPerImage exactly.
func (m *ModelSpec) FLOPsPerImageAt(h, w int) int64 { return m.At(h, w).FLOPsPerImage() }

// TrainFLOPsPerImageAt is the 3x forward+backward accounting at input h×w.
func (m *ModelSpec) TrainFLOPsPerImageAt(h, w int) int64 { return 3 * m.FLOPsPerImageAt(h, w) }

// ParamCountAt returns |W| at input h×w. Equal to ParamCount at every
// resolution for GAP-headed models; differs for flatten→fc models.
func (m *ModelSpec) ParamCountAt(h, w int) int64 { return m.At(h, w).ParamCount() }

// ScalingRatio is Table 6's computation-to-communication ratio:
// FLOPs per image divided by parameter count. Models with a higher ratio
// (ResNet-50: ~308) scale more easily than low-ratio models (AlexNet: ~24.6).
func (m *ModelSpec) ScalingRatio() float64 {
	return float64(m.FLOPsPerImage()) / float64(m.ParamCount())
}

// WeightBytes returns the size of one float32 weight (= gradient) message.
func (m *ModelSpec) WeightBytes() int64 { return 4 * m.ParamCount() }

// String renders a layer-by-layer summary table.
func (m *ModelSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (input %dx%dx%d, %d classes)\n", m.Name, m.InputC, m.InputH, m.InputW, m.Classes)
	fmt.Fprintf(&b, "%-18s %-8s %12s %14s %s\n", "layer", "kind", "params", "MACs", "output")
	for _, l := range m.Layers {
		fmt.Fprintf(&b, "%-18s %-8s %12d %14d %dx%dx%d\n", l.Name, l.Kind, l.Params, l.MACs, l.OutC, l.OutH, l.OutW)
	}
	fmt.Fprintf(&b, "total params %d, MACs/image %d, FLOPs/image %d, ratio %.1f\n",
		m.ParamCount(), m.MACsPerImage(), m.FLOPsPerImage(), m.ScalingRatio())
	return b.String()
}

// specBuilder accumulates layers while tracking the activation shape and
// the index of the layer that produced it (the feeding layer recorded in
// each LayerSpec.In so At can replay branches).
type specBuilder struct {
	m       *ModelSpec
	c, h, w int
	from    int // index of the layer producing the current activation; -1 = input
}

func newSpecBuilder(name string, inC, inH, inW, classes int) *specBuilder {
	return &specBuilder{
		m: &ModelSpec{Name: name, InputC: inC, InputH: inH, InputW: inW, Classes: classes},
		c: inC, h: inH, w: inW, from: -1,
	}
}

// specMark is a saved builder cursor: residual branches restore it to
// append a shortcut path fed from the block input.
type specMark struct {
	c, h, w, from int
}

func (b *specBuilder) mark() specMark { return specMark{b.c, b.h, b.w, b.from} }

func (b *specBuilder) restore(m specMark) { b.c, b.h, b.w, b.from = m.c, m.h, m.w, m.from }

// push appends a layer with the feeding-cursor recorded and advances the
// cursor to it.
func (b *specBuilder) push(l LayerSpec) {
	l.In = b.from
	b.m.Layers = append(b.m.Layers, l)
	b.from = len(b.m.Layers) - 1
}

// conv appends a convolution. groups models AlexNet's two-tower grouped
// convolutions: parameters and MACs divide by the group count.
func (b *specBuilder) conv(name string, outC, k, stride, pad, groups int, bias bool) *specBuilder {
	outH := (b.h+2*pad-k)/stride + 1
	outW := (b.w+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("models: %s: conv %s output empty", b.m.Name, name))
	}
	if b.c%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("models: %s: conv %s groups %d do not divide channels", b.m.Name, name, groups))
	}
	params := int64(outC) * int64(b.c/groups) * int64(k*k)
	if bias {
		params += int64(outC)
	}
	macs := int64(b.c/groups) * int64(k*k) * int64(outC) * int64(outH*outW)
	b.push(LayerSpec{
		Name: name, Kind: "conv", Params: params, MACs: macs, OutC: outC, OutH: outH, OutW: outW,
		K: k, Stride: stride, Pad: pad, Groups: groups, Bias: bias,
	})
	b.c, b.h, b.w = outC, outH, outW
	return b
}

// fc appends a fully-connected layer consuming the flattened activation.
func (b *specBuilder) fc(name string, out int, bias bool) *specBuilder {
	in := int64(b.c) * int64(b.h) * int64(b.w)
	params := in * int64(out)
	if bias {
		params += int64(out)
	}
	b.push(LayerSpec{
		Name: name, Kind: "fc", Params: params, MACs: in * int64(out), OutC: out, OutH: 1, OutW: 1,
		Bias: bias,
	})
	b.c, b.h, b.w = out, 1, 1
	return b
}

// bn appends batch normalization: 2 learnable scalars per channel and ~4 ops
// per activation (counted as 2 MACs).
func (b *specBuilder) bn(name string) *specBuilder {
	b.push(LayerSpec{
		Name: name, Kind: "bn", Params: 2 * int64(b.c),
		MACs: 2 * int64(b.c) * int64(b.h*b.w), OutC: b.c, OutH: b.h, OutW: b.w,
	})
	return b
}

// lrn appends local response normalization (no parameters; ~windowSize MACs
// per activation).
func (b *specBuilder) lrn(name string, window int) *specBuilder {
	b.push(LayerSpec{
		Name: name, Kind: "lrn", MACs: int64(window) * int64(b.c) * int64(b.h*b.w),
		OutC: b.c, OutH: b.h, OutW: b.w, K: window,
	})
	return b
}

// relu appends an activation (no parameters, negligible MACs).
func (b *specBuilder) relu(name string) *specBuilder {
	b.push(LayerSpec{Name: name, Kind: "relu", OutC: b.c, OutH: b.h, OutW: b.w})
	return b
}

// dropout appends a dropout layer (no parameters or MACs).
func (b *specBuilder) dropout(name string) *specBuilder {
	b.push(LayerSpec{Name: name, Kind: "dropout", OutC: b.c, OutH: b.h, OutW: b.w})
	return b
}

// maxpool appends max pooling.
func (b *specBuilder) maxpool(name string, k, stride, pad int) *specBuilder {
	outH := (b.h+2*pad-k)/stride + 1
	outW := (b.w+2*pad-k)/stride + 1
	b.push(LayerSpec{
		Name: name, Kind: "pool", MACs: int64(k*k) * int64(b.c) * int64(outH*outW) / 2,
		OutC: b.c, OutH: outH, OutW: outW, K: k, Stride: stride, Pad: pad,
	})
	b.h, b.w = outH, outW
	return b
}

// gap appends global average pooling down to 1x1.
func (b *specBuilder) gap(name string) *specBuilder {
	b.push(LayerSpec{
		Name: name, Kind: "gap", MACs: int64(b.c) * int64(b.h*b.w) / 2, OutC: b.c, OutH: 1, OutW: 1,
	})
	b.h, b.w = 1, 1
	return b
}

func (b *specBuilder) build() *ModelSpec { return b.m }
