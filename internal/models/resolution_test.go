package models

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// allSpecs enumerates every builder-produced spec in the package, so the
// replay contract is checked against the full model zoo including the
// branching ResNet shortcuts and grouped AlexNet convolutions.
func allSpecs() map[string]*ModelSpec {
	micro := MicroConfig{Classes: 6, InH: 16, Width: 8}
	return map[string]*ModelSpec{
		"alexnet":            AlexNetSpec(),
		"alexnet-bn":         AlexNetBNSpec(),
		"resnet-18":          ResNet18Spec(),
		"resnet-34":          ResNet34Spec(),
		"resnet-50":          ResNet50Spec(),
		"micro-alexnet":      MicroAlexNetSpec(micro),
		"micro-alexnet-lrn":  MicroAlexNetSpec(MicroConfig{Classes: 6, InH: 16, Width: 8, UseLRN: true}),
		"micro-convnet":      MicroConvNetSpec(MicroConfig{Classes: 6, InH: 12, Width: 8}),
		"micro-convnet-rect": MicroConvNetSpec(MicroConfig{Classes: 6, InH: 24, InW: 16, Width: 8}),
	}
}

// Replaying any spec at its canonical resolution must reproduce it exactly
// — layer for layer, field for field. This is what makes FLOPsPerImageAt a
// strict generalization of FLOPsPerImage rather than a second accounting.
func TestAtCanonicalEqualsOriginal(t *testing.T) {
	for name, spec := range allSpecs() {
		got := spec.At(spec.InputH, spec.InputW)
		if !reflect.DeepEqual(got, spec) {
			for i := range spec.Layers {
				if !reflect.DeepEqual(got.Layers[i], spec.Layers[i]) {
					t.Errorf("%s: layer %d diverges:\n  replay %+v\n  orig   %+v", name, i, got.Layers[i], spec.Layers[i])
				}
			}
			t.Fatalf("%s: At(canonical) != original", name)
		}
		if got, want := spec.FLOPsPerImageAt(spec.InputH, spec.InputW), spec.FLOPsPerImage(); got != want {
			t.Errorf("%s: FLOPsPerImageAt(canonical) = %d, want %d", name, got, want)
		}
	}
}

// Doubling H and W on the all-conv micro model scales every conv and gap
// layer's MACs by exactly 4x (geometry doubles cleanly through stride-1
// pad-1 and stride-2 pad-1 3x3 convs) while the GAP-headed fc is exactly
// unchanged — the per-layer expectation, not an approximation.
func TestFLOPsPerImageAtDoubling(t *testing.T) {
	spec := MicroConvNetSpec(MicroConfig{Classes: 6, InH: 12, Width: 8})
	base := spec.Layers
	doubled := spec.LayersAt(24, 24)
	var want int64
	for i, l := range base {
		var macs int64
		switch l.Kind {
		case "conv", "gap":
			macs = 4 * l.MACs
		case "fc":
			macs = l.MACs
		case "relu":
			macs = 0
		default:
			t.Fatalf("unexpected layer kind %q in all-conv model", l.Kind)
		}
		if doubled[i].MACs != macs {
			t.Errorf("layer %s: MACs at 24x24 = %d, want exactly %d (canonical %d)", l.Name, doubled[i].MACs, macs, l.MACs)
		}
		want += macs
	}
	if got := spec.MACsPerImageAt(24, 24); got != want {
		t.Errorf("MACsPerImageAt(24,24) = %d, want per-layer sum %d", got, want)
	}
	if got, want := spec.FLOPsPerImageAt(24, 24), 2*want; got != want {
		t.Errorf("FLOPsPerImageAt(24,24) = %d, want %d", got, want)
	}
	if got, want := spec.TrainFLOPsPerImageAt(24, 24), 6*want; got != want {
		t.Errorf("TrainFLOPsPerImageAt(24,24) = %d, want %d", got, want)
	}
}

// GAP-headed models keep |W| at every resolution; flatten→fc models do not.
// The simulator's progressive pricing depends on the former.
func TestParamCountAtInvariance(t *testing.T) {
	conv := MicroConvNetSpec(MicroConfig{Classes: 6, InH: 12, Width: 8})
	for _, hw := range [][2]int{{12, 12}, {24, 24}, {24, 16}, {48, 48}} {
		if got, want := conv.ParamCountAt(hw[0], hw[1]), conv.ParamCount(); got != want {
			t.Errorf("micro-convnet ParamCountAt(%d,%d) = %d, want invariant %d", hw[0], hw[1], got, want)
		}
	}
	r50 := ResNet50Spec()
	if got, want := r50.ParamCountAt(112, 112), r50.ParamCount(); got != want {
		t.Errorf("resnet-50 ParamCountAt(112,112) = %d, want invariant %d", got, want)
	}
	alex := MicroAlexNetSpec(MicroConfig{Classes: 6, InH: 16, Width: 8})
	if got, want := alex.ParamCountAt(32, 32), alex.ParamCount(); got == want {
		t.Errorf("micro-alexnet ParamCountAt(32,32) = %d should differ from canonical %d (flatten→fc head)", got, want)
	}
}

// ResNet-50 at 112x112 — the ENTR half-resolution phase — costs roughly a
// quarter of the canonical forward pass (stem padding keeps it from being
// exactly 4x).
func TestResNet50HalfResolution(t *testing.T) {
	spec := ResNet50Spec()
	ratio := float64(spec.FLOPsPerImage()) / float64(spec.FLOPsPerImageAt(112, 112))
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("224/112 FLOP ratio = %.2f, want ~4", ratio)
	}
}

// The trainable MicroConvNet matches its spec's parameter count and runs
// forward at multiple resolutions with the same weights — including a
// non-square one.
func TestMicroConvNetSpecMatchesTrainable(t *testing.T) {
	cfg := MicroConfig{Classes: 6, InH: 12, Width: 8, Seed: 3}
	net := NewMicroConvNet(cfg)
	spec := MicroConvNetSpec(cfg)
	if got, want := int64(net.NumParams()), spec.ParamCount(); got != want {
		t.Fatalf("trainable %d params vs spec %d", got, want)
	}
	r := rng.New(9)
	for _, hw := range [][2]int{{12, 12}, {24, 24}, {24, 16}} {
		x := tensor.RandNormal(r, 1, 2, 3, hw[0], hw[1])
		y := net.Forward(x, true)
		if y.Shape[0] != 2 || y.Shape[1] != 6 {
			t.Fatalf("%dx%d: output shape %v, want [2,6]", hw[0], hw[1], y.Shape)
		}
		if y.HasNaN() {
			t.Fatalf("%dx%d: forward produced NaN", hw[0], hw[1])
		}
	}
}
