package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rng"
)

// Basic-block ResNets (ResNet-18/34). The paper evaluates ResNet-50 only,
// but the spec machinery generalizes to the whole family, which both
// validates the counting code against more published parameter totals and
// gives users lighter full-size models.

// basicBlockSpec appends one 3x3+3x3 basic residual block.
func basicBlockSpec(b *specBuilder, name string, out, stride int) {
	inC := b.c
	entry := b.mark()
	b.conv(name+".conv1", out, 3, stride, 1, 1, false).bn(name + ".bn1").relu(name + ".relu1")
	b.conv(name+".conv2", out, 3, 1, 1, 1, false).bn(name + ".bn2")
	body := b.mark()
	if inC != out || stride != 1 {
		// Projection shortcut fed from the block input (see bottleneckSpec).
		b.restore(entry)
		b.conv(name+".down", out, 1, stride, 0, 1, false).bn(name + ".downbn")
	}
	b.restore(body)
	b.relu(name + ".relu2")
}

// basicResNetSpec builds an 18/34-style spec from per-stage block counts.
func basicResNetSpec(name string, stages []int) *ModelSpec {
	b := newSpecBuilder(name, 3, 224, 224, 1000)
	b.conv("conv1", 64, 7, 2, 3, 1, false).bn("bn1").relu("relu1").maxpool("pool1", 3, 2, 1)
	out := 64
	for stage, blocks := range stages {
		for blk := 0; blk < blocks; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			basicBlockSpec(b, fmt.Sprintf("conv%d_%d", stage+2, blk+1), out, stride)
		}
		out *= 2
	}
	b.gap("gap").fc("fc", 1000, true)
	return b.build()
}

// ResNet18Spec returns the canonical ResNet-18 (11.69M parameters).
func ResNet18Spec() *ModelSpec { return basicResNetSpec("ResNet-18", []int{2, 2, 2, 2}) }

// ResNet34Spec returns the canonical ResNet-34 (21.80M parameters).
func ResNet34Spec() *ModelSpec { return basicResNetSpec("ResNet-34", []int{3, 4, 6, 3}) }

// newBasicBlock constructs a trainable basic residual block matching
// basicBlockSpec.
func newBasicBlock(r *rng.Rand, name string, inC, out, stride int) *nn.Residual {
	body := nn.NewNetwork(name+".body",
		nn.NewConv(name+".conv1", r, inC, out, 3, stride, 1, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm(name+".bn1", out),
		nn.NewReLU(name+".relu1"),
		nn.NewConv(name+".conv2", r, out, out, 3, 1, 1, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm(name+".bn2", out),
	)
	var shortcut *nn.Network
	if inC != out || stride != 1 {
		shortcut = nn.NewNetwork(name+".short",
			nn.NewConv(name+".down", r, inC, out, 1, stride, 0, nn.ConvOpts{NoBias: true}),
			nn.NewBatchNorm(name+".downbn", out),
		)
	}
	return nn.NewResidual(name, body, shortcut)
}

// NewResNet18 constructs the full trainable ResNet-18; the parameter count
// matches ResNet18Spec exactly.
func NewResNet18(r *rng.Rand, classes int) *nn.Network {
	return newBasicResNet(r, "resnet-18", []int{2, 2, 2, 2}, classes)
}

// NewResNet34 constructs the full trainable ResNet-34.
func NewResNet34(r *rng.Rand, classes int) *nn.Network {
	return newBasicResNet(r, "resnet-34", []int{3, 4, 6, 3}, classes)
}

func newBasicResNet(r *rng.Rand, name string, stages []int, classes int) *nn.Network {
	net := nn.NewNetwork(name,
		nn.NewConv("conv1", r, 3, 64, 7, 2, 3, nn.ConvOpts{NoBias: true}),
		nn.NewBatchNorm("bn1", 64),
		nn.NewReLU("relu1"),
		nn.NewMaxPool("pool1", 3, 2, 1),
	)
	inC := 64
	out := 64
	for stage, blocks := range stages {
		for blk := 0; blk < blocks; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			net.Add(newBasicBlock(r, fmt.Sprintf("conv%d_%d", stage+2, blk+1), inC, out, stride))
			inC = out
		}
		out *= 2
	}
	net.Add(
		nn.NewGlobalAvgPool("gap"),
		nn.NewFlatten(),
		nn.NewLinear("fc", r, inC, classes),
	)
	return net
}
