package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dropout randomly zeroes activations with probability P during training,
// scaling survivors by 1/(1−P) ("inverted dropout") so evaluation is a
// no-op. AlexNet uses P=0.5 on its first two fully-connected layers.
type Dropout struct {
	name string
	P    float32
	r    *rng.Rand
	mask []float32
}

// NewDropout returns a dropout layer with drop probability p, drawing masks
// from r. Each replica should receive an independent generator.
func NewDropout(name string, r *rng.Rand, p float32) *Dropout {
	return &Dropout{name: name, P: p, r: r}
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.name }

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.P <= 0 {
		l.mask = l.mask[:0]
		return x
	}
	n := x.Numel()
	if cap(l.mask) < n {
		l.mask = make([]float32, n)
	}
	l.mask = l.mask[:n]
	keep := 1 - l.P
	scale := 1 / keep
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if l.r.Float32() < keep {
			l.mask[i] = scale
			y.Data[i] = v * scale
		} else {
			l.mask[i] = 0
			y.Data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (l *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if len(l.mask) == 0 {
		return dout
	}
	dx := tensor.New(dout.Shape...)
	for i, v := range dout.Data {
		dx.Data[i] = v * l.mask[i]
	}
	return dx
}
