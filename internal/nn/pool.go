package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// MaxPool2D is max pooling over NCHW activations.
type MaxPool2D struct {
	name             string
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int

	inShape []int
	// argmax holds the flat input index chosen for each output element. It
	// is per-input-shape scratch (the batch dimension folds in, so the key
	// carries n and c too), cached so resolution switches reallocate
	// deterministically and revisited shapes reuse their slot.
	scratch argmaxCache
	argmax  []int32
}

// NewMaxPool returns a square max-pooling layer.
func NewMaxPool(name string, k, stride, pad int) *MaxPool2D {
	return &MaxPool2D{name: name, KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.name }

// Params implements Layer.
func (l *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s: want NCHW input, got %v", l.name, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h+2*l.PadH-l.KH)/l.StrideH + 1
	outW := (w+2*l.PadW-l.KW)/l.StrideW + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: %s: empty output for input %v", l.name, x.Shape))
	}
	l.inShape = append(l.inShape[:0], x.Shape...)
	y := tensor.New(n, c, outH, outW)
	l.argmax = l.scratch.at(shapeKey{n: n, c: c, h: h, w: w}, n*c*outH*outW)
	xd, yd := x.Data, y.Data
	planes := n * c
	par.ForGrain(planes, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			in := xd[p*h*w : (p+1)*h*w]
			outBase := p * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := float32(math.Inf(-1))
					bestIdx := int32(-1)
					for kh := 0; kh < l.KH; kh++ {
						ih := oh*l.StrideH - l.PadH + kh
						if ih < 0 || ih >= h {
							continue
						}
						for kw := 0; kw < l.KW; kw++ {
							iw := ow*l.StrideW - l.PadW + kw
							if iw < 0 || iw >= w {
								continue
							}
							v := in[ih*w+iw]
							if v > best {
								best = v
								bestIdx = int32(p*h*w + ih*w + iw)
							}
						}
					}
					o := outBase + oh*outW + ow
					yd[o] = best
					l.argmax[o] = bestIdx
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.inShape...)
	dd := dx.Data
	for i, v := range dout.Data {
		if idx := l.argmax[i]; idx >= 0 {
			dd[idx] += v
		}
	}
	return dx
}

// GlobalAvgPool2D averages each channel plane to a single value, producing
// [N, C] from [N, C, H, W]. ResNet-50 uses it before the final classifier.
type GlobalAvgPool2D struct {
	name    string
	inShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool2D { return &GlobalAvgPool2D{name: name} }

// Name implements Layer.
func (l *GlobalAvgPool2D) Name() string { return l.name }

// Params implements Layer.
func (l *GlobalAvgPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (l *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s: want NCHW input, got %v", l.name, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	l.inShape = append(l.inShape[:0], x.Shape...)
	y := tensor.New(n, c)
	area := h * w
	inv := 1 / float32(area)
	par.ForGrain(n*c, 8, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			plane := x.Data[p*area : (p+1)*area]
			var s float32
			for _, v := range plane {
				s += v
			}
			y.Data[p] = s * inv
		}
	})
	return y
}

// Backward implements Layer.
func (l *GlobalAvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.inShape...)
	h, w := l.inShape[2], l.inShape[3]
	area := h * w
	inv := 1 / float32(area)
	for p, g := range dout.Data {
		plane := dx.Data[p*area : (p+1)*area]
		gv := g * inv
		for i := range plane {
			plane[i] = gv
		}
	}
	return dx
}

// AvgPool2D is windowed average pooling (used by the original AlexNet-style
// nets in some variants and handy for reduced models).
type AvgPool2D struct {
	name             string
	KH, KW           int
	StrideH, StrideW int

	inShape []int
}

// NewAvgPool returns a square average-pooling layer without padding.
func NewAvgPool(name string, k, stride int) *AvgPool2D {
	return &AvgPool2D{name: name, KH: k, KW: k, StrideH: stride, StrideW: stride}
}

// Name implements Layer.
func (l *AvgPool2D) Name() string { return l.name }

// Params implements Layer.
func (l *AvgPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (l *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s: want NCHW input, got %v", l.name, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h-l.KH)/l.StrideH + 1
	outW := (w-l.KW)/l.StrideW + 1
	l.inShape = append(l.inShape[:0], x.Shape...)
	y := tensor.New(n, c, outH, outW)
	inv := 1 / float32(l.KH*l.KW)
	planes := n * c
	par.ForGrain(planes, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			in := x.Data[p*h*w : (p+1)*h*w]
			outBase := p * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var s float32
					for kh := 0; kh < l.KH; kh++ {
						row := (oh*l.StrideH + kh) * w
						for kw := 0; kw < l.KW; kw++ {
							s += in[row+ow*l.StrideW+kw]
						}
					}
					y.Data[outBase+oh*outW+ow] = s * inv
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (l *AvgPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(l.inShape...)
	h, w := l.inShape[2], l.inShape[3]
	outH := (h-l.KH)/l.StrideH + 1
	outW := (w-l.KW)/l.StrideW + 1
	inv := 1 / float32(l.KH*l.KW)
	planes := l.inShape[0] * l.inShape[1]
	for p := 0; p < planes; p++ {
		out := dout.Data[p*outH*outW : (p+1)*outH*outW]
		in := dx.Data[p*h*w : (p+1)*h*w]
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				g := out[oh*outW+ow] * inv
				for kh := 0; kh < l.KH; kh++ {
					row := (oh*l.StrideH + kh) * w
					for kw := 0; kw < l.KW; kw++ {
						in[row+ow*l.StrideW+kw] += g
					}
				}
			}
		}
	}
	return dx
}
