package nn

import (
	"repro/internal/tensor"
)

// Residual implements a ResNet block: y = ReLU(Body(x) + Shortcut(x)).
// Shortcut may be nil for the identity connection, or a projection
// (1×1 conv + BN) when the block changes resolution or channel count.
type Residual struct {
	name     string
	Body     *Network
	Shortcut *Network // nil means identity

	relu *ReLU
}

// NewResidual builds a residual block.
func NewResidual(name string, body *Network, shortcut *Network) *Residual {
	return &Residual{name: name, Body: body, Shortcut: shortcut, relu: NewReLU(name + ".relu")}
}

// Name implements Layer.
func (l *Residual) Name() string { return l.name }

// Params implements Layer.
func (l *Residual) Params() []*Param {
	ps := l.Body.Params()
	if l.Shortcut != nil {
		ps = append(ps, l.Shortcut.Params()...)
	}
	return ps
}

// Forward implements Layer.
func (l *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := l.Body.Forward(x, train)
	var sc *tensor.Tensor
	if l.Shortcut != nil {
		sc = l.Shortcut.Forward(x, train)
	} else {
		sc = x
	}
	sum := main.Clone()
	sum.Add(sc)
	return l.relu.Forward(sum, train)
}

// Backward implements Layer.
func (l *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dsum := l.relu.Backward(dout)
	dx := l.Body.Backward(dsum)
	if l.Shortcut != nil {
		dsc := l.Shortcut.Backward(dsum)
		dx = dx.Clone()
		dx.Add(dsc)
	} else {
		// Identity shortcut: gradient adds directly.
		dx = dx.Clone()
		dx.Add(dsum)
	}
	return dx
}
