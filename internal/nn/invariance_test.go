package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestBatchNormScaleInvarianceProperty: in training mode, BN output is
// invariant to any positive per-channel affine rescaling of its input —
// the property that makes the network's loss invariant to weight scale in
// BN-equipped layers, which in turn is why LARS's norm-based trust ratio is
// meaningful (the gradient norm shrinks as the weight norm grows, and only
// the ratio matters).
func TestBatchNormScaleInvarianceProperty(t *testing.T) {
	f := func(seed uint64, scaleBits, shiftBits uint8) bool {
		scale := 0.25 + float32(scaleBits)/32 // (0.25, 8.2)
		shift := float32(shiftBits)/64 - 2
		r := rng.New(seed)
		x := tensor.RandNormal(r, 1, 6, 3, 4, 4)
		bn1 := NewBatchNorm("bn1", 3)
		bn2 := NewBatchNorm("bn2", 3)
		y1 := bn1.Forward(x, true)
		scaled := x.Clone()
		scaled.Scale(scale)
		scaled.AddScalar(shift)
		y2 := bn2.Forward(scaled, true)
		for i := range y1.Data {
			if math.Abs(float64(y1.Data[i]-y2.Data[i])) > 2e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSoftmaxShiftInvarianceProperty: the loss is invariant to adding any
// constant to all logits of a row (softmax normalization), which is exactly
// the redundancy the stable implementation exploits.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint64, shiftBits uint8) bool {
		shift := float32(shiftBits) - 128
		r := rng.New(seed)
		logits := tensor.RandNormal(r, 1, 4, 5)
		labels := []int{0, 1, 2, 3}
		var l1, l2 SoftmaxCrossEntropy
		a := l1.Forward(logits, labels)
		shifted := logits.Clone()
		shifted.AddScalar(shift)
		b := l2.Forward(shifted, labels)
		return math.Abs(a-b) < 1e-5*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReLUIdempotentProperty: ReLU(ReLU(x)) == ReLU(x).
func TestReLUIdempotentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.RandNormal(r, 1, 37)
		l1, l2 := NewReLU("a"), NewReLU("b")
		once := l1.Forward(x, true)
		twice := l2.Forward(once, true)
		for i := range once.Data {
			if once.Data[i] != twice.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxPoolDominanceProperty: every pooled output equals some input value
// and is >= all values in its window (spot-checked via global bounds).
func TestMaxPoolDominanceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := tensor.RandNormal(r, 1, 2, 2, 6, 6)
		y := NewMaxPool("p", 2, 2, 0).Forward(x, true)
		maxIn := x.MaxAbs()
		for _, v := range y.Data {
			if v > maxIn {
				return false
			}
		}
		// The global max always survives pooling (window cover is total).
		var globalMax float32 = -1e30
		for _, v := range x.Data {
			if v > globalMax {
				globalMax = v
			}
		}
		var pooledMax float32 = -1e30
		for _, v := range y.Data {
			if v > pooledMax {
				pooledMax = v
			}
		}
		return pooledMax == globalMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDropoutExpectationProperty: inverted dropout preserves the expected
// activation — the mean over many masks approaches the identity.
func TestDropoutExpectationProperty(t *testing.T) {
	l := NewDropout("d", rng.New(1), 0.5)
	x := tensor.Ones(1, 512)
	sum := tensor.New(1, 512)
	const trials = 400
	for i := 0; i < trials; i++ {
		y := l.Forward(x, true)
		sum.Add(y)
	}
	sum.Scale(1.0 / trials)
	var mean float64
	for _, v := range sum.Data {
		mean += float64(v)
	}
	mean /= float64(sum.Numel())
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("dropout expectation %v, want ~1", mean)
	}
}
