package nn

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/tensor"
)

// BatchNorm normalizes activations per channel over the batch (and spatial
// positions for NCHW inputs), then applies a learned affine transform
// y = γ·x̂ + β.
//
// The paper's 32K-batch AlexNet result specifically requires replacing the
// original local response normalization with BatchNorm ("AlexNet-BN",
// Ginsburg's refit): BN keeps activations well-scaled when the per-step
// learning rate is large, which is what makes the LARS trust ratio
// meaningful at extreme batch sizes.
type BatchNorm struct {
	name     string
	C        int
	Eps      float32
	Momentum float32 // running-average retention, typically 0.9

	Gamma, Beta *Param
	// RunningMean and RunningVar are the inference-time statistics.
	RunningMean, RunningVar *tensor.Tensor

	// cached between Forward(train=true) and Backward
	xhat    *tensor.Tensor
	invStd  []float32
	inShape []int
	spatial bool
}

// NewBatchNorm builds a batch-norm layer over c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	bn := &BatchNorm{
		name: name, C: c, Eps: 1e-5, Momentum: 0.9,
		Gamma:       NewParam(name+".gamma", c),
		Beta:        NewParam(name+".beta", c),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c),
	}
	bn.Gamma.W.Fill(1)
	bn.RunningVar.Fill(1)
	bn.Gamma.NoDecay = true
	bn.Beta.NoDecay = true
	return bn
}

// Name implements Layer.
func (l *BatchNorm) Name() string { return l.name }

// Params implements Layer.
func (l *BatchNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// channelViews returns per-channel strided access parameters for x, which
// must be [N, C] or [N, C, H, W] with C == l.C.
func (l *BatchNorm) channelLayout(x *tensor.Tensor) (n, area int) {
	switch x.Dims() {
	case 2:
		if x.Shape[1] != l.C {
			panic(fmt.Sprintf("nn: %s: input %v, want C=%d", l.name, x.Shape, l.C))
		}
		return x.Shape[0], 1
	case 4:
		if x.Shape[1] != l.C {
			panic(fmt.Sprintf("nn: %s: input %v, want C=%d", l.name, x.Shape, l.C))
		}
		return x.Shape[0], x.Shape[2] * x.Shape[3]
	default:
		panic(fmt.Sprintf("nn: %s: want 2-D or 4-D input, got %v", l.name, x.Shape))
	}
}

// Forward implements Layer.
func (l *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, area := l.channelLayout(x)
	l.inShape = append(l.inShape[:0], x.Shape...)
	l.spatial = x.Dims() == 4
	y := tensor.New(x.Shape...)
	if cap(l.invStd) < l.C {
		l.invStd = make([]float32, l.C)
	}
	l.invStd = l.invStd[:l.C]
	l.xhat = tensor.New(x.Shape...)

	count := float64(n * area)
	stride := l.C * area
	gd, bd := l.Gamma.W.Data, l.Beta.W.Data

	par.ForGrain(l.C, 1, func(clo, chi int) {
		// Per-channel statistics reduce through the fixed-tree kernel sums:
		// each sample's contiguous segment collapses first, then the
		// per-sample partials collapse pairwise over the batch — one
		// reduction discipline shared with the rest of the train path, and
		// a pure function of (channel data, n), independent of chunking.
		segSum := make([]float32, n)
		segSq := make([]float32, n)
		for c := clo; c < chi; c++ {
			var mean, variance float64
			if train {
				for s := 0; s < n; s++ {
					base := s*stride + c*area
					seg := x.Data[base : base+area]
					segSum[s] = kernel.PairwiseSum(seg)
					segSq[s] = kernel.PairwiseSumSq(seg)
				}
				mean = float64(kernel.PairwiseSum(segSum)) / count
				variance = float64(kernel.PairwiseSum(segSq))/count - mean*mean
				if variance < 0 {
					variance = 0
				}
				// Update running statistics (safe: one goroutine per channel).
				m := float64(l.Momentum)
				l.RunningMean.Data[c] = float32(m*float64(l.RunningMean.Data[c]) + (1-m)*mean)
				l.RunningVar.Data[c] = float32(m*float64(l.RunningVar.Data[c]) + (1-m)*variance)
			} else {
				mean = float64(l.RunningMean.Data[c])
				variance = float64(l.RunningVar.Data[c])
			}
			inv := float32(1 / math.Sqrt(variance+float64(l.Eps)))
			l.invStd[c] = inv
			mu := float32(mean)
			g, b := gd[c], bd[c]
			for s := 0; s < n; s++ {
				base := s*stride + c*area
				for i := 0; i < area; i++ {
					xh := (x.Data[base+i] - mu) * inv
					l.xhat.Data[base+i] = xh
					y.Data[base+i] = g*xh + b
				}
			}
		}
	})
	return y
}

// Backward implements Layer. Uses the standard batch-norm gradient:
//
//	dx̂ = dy·γ
//	dx = invStd/M · (M·dx̂ − Σdx̂ − x̂·Σ(dx̂·x̂))
//
// where M is the per-channel element count.
func (l *BatchNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := l.inShape[0]
	area := 1
	if l.spatial {
		area = l.inShape[2] * l.inShape[3]
	}
	stride := l.C * area
	m := float32(n * area)
	dx := tensor.New(l.inShape...)
	gd := l.Gamma.W.Data
	dgd, dbd := l.Gamma.G.Data, l.Beta.G.Data

	par.ForGrain(l.C, 1, func(clo, chi int) {
		// Σdy and Σdy·x̂ per channel through the same two-level fixed-tree
		// kernel reduction as the forward statistics.
		segDy := make([]float32, n)
		segDyXhat := make([]float32, n)
		for c := clo; c < chi; c++ {
			for s := 0; s < n; s++ {
				base := s*stride + c*area
				segDy[s] = kernel.PairwiseSum(dout.Data[base : base+area])
				segDyXhat[s] = kernel.PairwiseDot(dout.Data[base:base+area], l.xhat.Data[base:base+area])
			}
			sumDy := kernel.PairwiseSum(segDy)
			sumDyXhat := kernel.PairwiseSum(segDyXhat)
			dgd[c] += sumDyXhat
			dbd[c] += sumDy
			g := gd[c]
			inv := l.invStd[c]
			meanDy := sumDy / m
			meanDyXhat := sumDyXhat / m
			for s := 0; s < n; s++ {
				base := s*stride + c*area
				for i := 0; i < area; i++ {
					xh := l.xhat.Data[base+i]
					dx.Data[base+i] = g * inv * (dout.Data[base+i] - meanDy - xh*meanDyXhat)
				}
			}
		}
	})
	return dx
}
