package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// precNet builds a small network touching every PrecisionLayer kind (plain
// conv, grouped conv, linear) plus f32-only layers in between.
func precNet(seed uint64) *Network {
	r := rng.New(seed)
	return NewNetwork("prec",
		NewConv("c1", r, 2, 4, 3, 1, 1, ConvOpts{}),
		NewReLU("r1"),
		NewGroupedConv("g1", r, 4, 4, 3, 1, 1, 2, ConvOpts{}),
		NewReLU("r2"),
		NewFlatten(),
		NewLinear("fc", r, 4*6*6, 5),
	)
}

func precRun(net *Network, seed uint64) (y, dx *tensor.Tensor) {
	r := rng.New(seed)
	x := tensor.RandNormal(r, 1, 3, 2, 6, 6)
	y = net.Forward(x, true)
	dout := tensor.RandNormal(r, 1, y.Shape...)
	net.ZeroGrad()
	dx = net.Backward(dout)
	return y, dx
}

// TestF16CloseToF32: the F16 path stays within half-precision rounding
// tolerance of the F32 path for outputs, input gradients and parameter
// gradients — accuracy parity at layer granularity.
func TestF16CloseToF32(t *testing.T) {
	full := precNet(3)
	half := precNet(3)
	half.SetPrecision(tensor.F16)
	yf, dxf := precRun(full, 4)
	yh, dxh := precRun(half, 4)

	closeTo := func(label string, a, b *tensor.Tensor) {
		t.Helper()
		var scale float64
		for _, v := range b.Data {
			if m := math.Abs(float64(v)); m > scale {
				scale = m
			}
		}
		for i := range a.Data {
			if diff := math.Abs(float64(a.Data[i] - b.Data[i])); diff > 0.02*(scale+1e-6) {
				t.Fatalf("%s: coord %d: f16 %v vs f32 %v (scale %v)", label, i, a.Data[i], b.Data[i], scale)
			}
		}
	}
	closeTo("output", yh, yf)
	closeTo("dx", dxh, dxf)
	pf, ph := full.Params(), half.Params()
	for i := range pf {
		closeTo("grad "+pf[i].Name, ph[i].G, pf[i].G)
	}
}

// TestF16DiffersFromF32 is the negative control: the F16 path must actually
// change the numbers (a bit-identical result would mean the precision switch
// is dead code).
func TestF16DiffersFromF32(t *testing.T) {
	full := precNet(5)
	half := precNet(5)
	half.SetPrecision(tensor.F16)
	yf, _ := precRun(full, 6)
	yh, _ := precRun(half, 6)
	for i := range yf.Data {
		if math.Float32bits(yf.Data[i]) != math.Float32bits(yh.Data[i]) {
			return
		}
	}
	t.Fatal("F16 forward is bit-identical to F32 — precision path not engaged")
}

// TestF16Deterministic: two independent F16 replicas produce bit-identical
// outputs and gradients — the repo's decomposition-invariance contract holds
// through the packed kernels.
func TestF16Deterministic(t *testing.T) {
	a := precNet(7)
	b := precNet(7)
	a.SetPrecision(tensor.F16)
	b.SetPrecision(tensor.F16)
	ya, dxa := precRun(a, 8)
	yb, dxb := precRun(b, 8)
	bitsEq := func(label string, u, v *tensor.Tensor) {
		t.Helper()
		for i := range u.Data {
			if math.Float32bits(u.Data[i]) != math.Float32bits(v.Data[i]) {
				t.Fatalf("%s: coord %d: %v vs %v", label, i, u.Data[i], v.Data[i])
			}
		}
	}
	bitsEq("output", ya, yb)
	bitsEq("dx", dxa, dxb)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		bitsEq("grad "+pa[i].Name, pa[i].G, pb[i].G)
	}
}
