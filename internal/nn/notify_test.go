package nn

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// notifyNet builds a three-linear-layer network for the notification tests.
func notifyNet() *Network {
	r := rng.New(3)
	return NewNetwork("notify",
		NewFlatten(),
		NewLinear("fc1", r, 12, 8),
		NewReLU("relu"),
		NewLinear("fc2", r, 8, 8),
		NewLinear("fc3", r, 8, 4),
	)
}

// TestGradNotifyOrderAndFinality: the callback must fire exactly once per
// parameter, in reverse Params() order (the order backward finalizes them),
// and at notification time the parameter's gradient must already hold its
// final value for this Backward call.
func TestGradNotifyOrderAndFinality(t *testing.T) {
	net := notifyNet()
	params := net.Params()
	x := tensor.New(2, 3, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i%5) * 0.1
	}
	loss := &SoftmaxCrossEntropy{}

	var order []int
	snapshots := make([][]float32, len(params))
	net.SetGradNotify(func(p int) {
		order = append(order, p)
		snapshots[p] = append([]float32(nil), params[p].G.Data...)
	})
	net.ZeroGrad()
	lv := loss.Forward(net.Forward(x, true), []int{1, 3})
	if lv <= 0 {
		t.Fatalf("degenerate loss %v", lv)
	}
	net.Backward(loss.Backward())

	if len(order) != len(params) {
		t.Fatalf("notified %d params, network has %d", len(order), len(params))
	}
	for i, p := range order {
		if want := len(params) - 1 - i; p != want {
			t.Fatalf("notification %d was param %d, want %d (reverse order)", i, p, want)
		}
	}
	for p := range params {
		for i, g := range params[p].G.Data {
			if snapshots[p][i] != g {
				t.Fatalf("param %d grad coord %d changed after its notification: %v -> %v", p, i, snapshots[p][i], g)
			}
		}
	}
}

// TestGradNotifyUnregister: a nil callback restores the plain backward, and
// gradients are unaffected by notification either way.
func TestGradNotifyUnregister(t *testing.T) {
	x := tensor.New(2, 3, 2, 2)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.05
	}
	loss := &SoftmaxCrossEntropy{}
	grad := func(withNotify bool) []float32 {
		net := notifyNet()
		if withNotify {
			net.SetGradNotify(func(int) {})
		}
		net.ZeroGrad()
		loss.Forward(net.Forward(x, true), []int{0, 2})
		net.Backward(loss.Backward())
		var out []float32
		for _, p := range net.Params() {
			out = append(out, p.G.Data...)
		}
		return out
	}
	plain := grad(false)
	notified := grad(true)
	for i := range plain {
		if plain[i] != notified[i] {
			t.Fatalf("notification changed grad coord %d", i)
		}
	}

	net := notifyNet()
	fired := false
	net.SetGradNotify(func(int) { fired = true })
	net.SetGradNotify(nil)
	net.ZeroGrad()
	loss.Forward(net.Forward(x, true), []int{0, 2})
	net.Backward(loss.Backward())
	if fired {
		t.Fatal("unregistered callback still fired")
	}
}
