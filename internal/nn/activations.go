package nn

import (
	"repro/internal/par"
	"repro/internal/tensor"
)

// ReLU is the rectified linear unit, y = max(x, 0).
type ReLU struct {
	name string
	mask []bool // true where the input was positive
}

// NewReLU returns a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Numel()
	if cap(l.mask) < n {
		l.mask = make([]bool, n)
	}
	l.mask = l.mask[:n]
	y := tensor.New(x.Shape...)
	xd, yd, m := x.Data, y.Data, l.mask
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if xd[i] > 0 {
				yd[i] = xd[i]
				m[i] = true
			} else {
				yd[i] = 0
				m[i] = false
			}
		}
	})
	return y
}

// Backward implements Layer.
func (l *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape...)
	dd, xd, m := dx.Data, dout.Data, l.mask
	par.For(len(dd), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if m[i] {
				dd[i] = xd[i]
			}
		}
	})
	return dx
}
