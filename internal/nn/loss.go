package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// SoftmaxCrossEntropy combines a softmax over class logits with the negative
// log-likelihood loss, averaged over the batch. Combining the two yields the
// numerically stable gradient (softmax(x) − target) / N.
//
// Smoothing, when positive, applies label smoothing: the target becomes
// (1−ε)·onehot + ε/K uniform. Smoothing is the regularizer most follow-up
// large-batch recipes adopt; it is off by default to match the paper.
type SoftmaxCrossEntropy struct {
	// Smoothing is the label-smoothing ε in [0, 1).
	Smoothing float32

	probs  *tensor.Tensor
	labels []int
}

// Forward computes the mean cross-entropy of logits [N, K] against labels
// (len N, values in [0, K)). It caches what Backward needs and also exposes
// Probs for metric computation.
func (l *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: loss wants [N,K] logits, got %v", logits.Shape))
	}
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(labels), n))
	}
	l.probs = tensor.New(n, k)
	l.labels = labels
	losses := make([]float64, n)
	par.ForGrain(n, 16, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			row := logits.Data[s*k : (s+1)*k]
			out := l.probs.Data[s*k : (s+1)*k]
			maxV := row[0]
			for _, v := range row[1:] {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for i, v := range row {
				e := math.Exp(float64(v - maxV))
				out[i] = float32(e)
				sum += e
			}
			inv := 1 / sum
			for i := range out {
				out[i] = float32(float64(out[i]) * inv)
			}
			lab := labels[s]
			if lab < 0 || lab >= k {
				panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lab, k))
			}
			if l.Smoothing > 0 {
				// Cross-entropy against the smoothed target distribution.
				eps := float64(l.Smoothing)
				var ce float64
				for i := range out {
					target := eps / float64(k)
					if i == lab {
						target += 1 - eps
					}
					p := float64(out[i])
					if p < 1e-12 {
						p = 1e-12
					}
					ce -= target * math.Log(p)
				}
				losses[s] = ce
				continue
			}
			p := float64(out[lab])
			if p < 1e-12 {
				p = 1e-12
			}
			losses[s] = -math.Log(p)
		}
	})
	var total float64
	for _, v := range losses {
		total += v
	}
	return total / float64(n)
}

// Backward returns the gradient of the mean loss w.r.t. the logits.
func (l *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	n, k := l.probs.Shape[0], l.probs.Shape[1]
	grad := l.probs.Clone()
	invN := 1 / float32(n)
	uniform := l.Smoothing / float32(k)
	for s := 0; s < n; s++ {
		row := grad.Data[s*k : (s+1)*k]
		if l.Smoothing > 0 {
			for i := range row {
				row[i] -= uniform
			}
			row[l.labels[s]] -= 1 - l.Smoothing
		} else {
			row[l.labels[s]] -= 1
		}
		for i := range row {
			row[i] *= invN
		}
	}
	return grad
}

// Probs returns the cached softmax probabilities from the last Forward.
func (l *SoftmaxCrossEntropy) Probs() *tensor.Tensor { return l.probs }

// Accuracy returns the fraction of rows of logits whose argmax matches the
// label — the paper's "top-1 accuracy".
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	preds := logits.ArgMaxRows()
	if len(preds) != len(labels) {
		panic(fmt.Sprintf("nn: %d predictions vs %d labels", len(preds), len(labels)))
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// TopKAccuracy returns the fraction of rows where the true label is among
// the k highest logits.
func TopKAccuracy(logits *tensor.Tensor, labels []int, k int) float64 {
	n, c := logits.Shape[0], logits.Shape[1]
	if k >= c {
		return 1
	}
	correct := 0
	for s := 0; s < n; s++ {
		row := logits.Data[s*c : (s+1)*c]
		target := row[labels[s]]
		higher := 0
		for _, v := range row {
			if v > target {
				higher++
			}
		}
		if higher < k {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
