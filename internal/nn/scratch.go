package nn

import "repro/internal/tensor"

// Shape-keyed scratch for the dynamic-shape training path.
//
// Layers that lower onto workspaces (Conv2D's im2col panels and f16 packs,
// MaxPool2D's argmax plane) historically sized them for one resolution and
// cap-grew in place. Under a progressive-resolution schedule the input
// shape changes between epochs, so the workspaces live in a small map keyed
// by the input shape instead: the first batch at a new shape allocates that
// shape's slot, later batches — including after switching back — reuse it.
//
// Determinism: allocation is a pure function of the sequence of input
// shapes the layer sees (which the resolution schedule fixes per epoch),
// never of timing, worker count, or topology. The buffers themselves carry
// no state across steps — every element is rewritten before it is read —
// so reuse cannot leak one resolution's values into another's, and the
// fixed-tree reduction discipline downstream is untouched.

// shapeKey identifies one scratch slot. Fields a layer's workspace does not
// depend on stay zero (Conv2D's im2col panel is per-sample, so n and c are
// zero there; MaxPool2D's argmax covers the whole batch).
type shapeKey struct {
	n, c, h, w int
}

// convScratch bundles Conv2D's per-shape workspaces: the im2col panel, the
// gradient panel it is transposed into during Backward, and the binary16
// packs of the f16 compute path (allocated only when the layer runs at F16).
type convScratch struct {
	col, dcol       []float32
	colHalf, dyHalf *tensor.Half
}

// convCache maps input shape → workspace for one Conv2D.
type convCache map[shapeKey]*convScratch

// at returns the slot for key, allocating its float32 panels on first use
// at this shape and its f16 packs on first f16 use at this shape.
func (m *convCache) at(key shapeKey, colLen int, f16 bool) *convScratch {
	if *m == nil {
		*m = make(convCache)
	}
	s := (*m)[key]
	if s == nil {
		s = &convScratch{col: make([]float32, colLen), dcol: make([]float32, colLen)}
		(*m)[key] = s
	}
	if f16 && s.colHalf == nil {
		s.colHalf, s.dyHalf = tensor.NewHalf(), tensor.NewHalf()
	}
	return s
}

// argmaxCache maps input shape → argmax plane for one MaxPool2D.
type argmaxCache map[shapeKey][]int32

func (m *argmaxCache) at(key shapeKey, n int) []int32 {
	if *m == nil {
		*m = make(argmaxCache)
	}
	s := (*m)[key]
	if s == nil {
		s = make([]int32, n)
		(*m)[key] = s
	}
	return s
}
