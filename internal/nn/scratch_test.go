package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// buildConvStack returns a small conv/pool stack with identically-seeded
// weights on every call — the reference construction for scratch-reuse
// bit-identity checks.
func buildConvStack(p tensor.Precision) *Network {
	r := rng.New(77)
	net := NewNetwork("scratch-test",
		NewConv("conv1", r, 3, 4, 3, 1, 1, ConvOpts{}),
		NewReLU("relu1"),
		NewMaxPool("pool1", 2, 2, 0),
		NewConv("conv2", r, 4, 8, 3, 2, 1, ConvOpts{}),
		NewReLU("relu2"),
	)
	if p == tensor.F16 {
		net.SetPrecision(p)
	}
	return net
}

func runStep(net *Network, x *tensor.Tensor) (y, dx *tensor.Tensor) {
	net.ZeroGrad()
	y = net.Forward(x, true)
	dy := tensor.New(y.Shape...)
	for i := range dy.Data {
		dy.Data[i] = float32(i%7) * 0.1
	}
	dx = net.Backward(dy)
	return y, dx
}

func bitsEqual(t *testing.T, label string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: bit divergence at %d: %g vs %g", label, i, a[i], b[i])
		}
	}
}

// A layer whose scratch cache has served other resolutions must produce
// bit-identical outputs, input gradients, and weight gradients to a fresh
// layer that only ever saw the current resolution — at both precisions.
// This is the change-shape-safely contract of the shape-keyed cache.
func TestConvScratchShapeAlternation(t *testing.T) {
	shapes := [][2]int{{12, 12}, {24, 24}, {12, 12}, {24, 16}, {12, 12}, {24, 24}}
	for _, p := range []tensor.Precision{tensor.F32, tensor.F16} {
		r := rng.New(5)
		inputs := map[[2]int]*tensor.Tensor{}
		for _, hw := range shapes {
			if inputs[hw] == nil {
				inputs[hw] = tensor.RandNormal(r, 1, 2, 3, hw[0], hw[1])
			}
		}
		alternating := buildConvStack(p)
		for _, hw := range shapes {
			y, dx := runStep(alternating, inputs[hw])

			fresh := buildConvStack(p)
			wantY, wantDX := runStep(fresh, inputs[hw])

			bitsEqual(t, p.String()+" forward", y.Data, wantY.Data)
			bitsEqual(t, p.String()+" dx", dx.Data, wantDX.Data)
			ap, fp := alternating.Params(), fresh.Params()
			for i := range ap {
				bitsEqual(t, p.String()+" grad "+ap[i].Name, ap[i].G.Data, fp[i].G.Data)
			}
		}
	}
}

// Scratch slots are allocated once per distinct shape and reused on return
// — the deterministic-reallocation contract.
func TestConvScratchSlotReuse(t *testing.T) {
	r := rng.New(9)
	conv := NewConv("c", r, 3, 4, 3, 1, 1, ConvOpts{})
	a := tensor.RandNormal(r, 1, 2, 3, 12, 12)
	b := tensor.RandNormal(r, 1, 2, 3, 24, 24)

	conv.Forward(a, true)
	if len(conv.scratch) != 1 {
		t.Fatalf("one shape seen, %d slots", len(conv.scratch))
	}
	slotA := conv.cur
	conv.Forward(b, true)
	if len(conv.scratch) != 2 {
		t.Fatalf("two shapes seen, %d slots", len(conv.scratch))
	}
	conv.Forward(a, true)
	if len(conv.scratch) != 2 {
		t.Fatalf("revisited shape must not allocate a third slot, got %d", len(conv.scratch))
	}
	if conv.cur != slotA {
		t.Fatal("revisited shape must reuse its original slot")
	}
}
