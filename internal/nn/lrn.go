package nn

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/tensor"
)

// LRN is AlexNet's local response normalization across channels:
//
//	y_c = x_c · d_c^{-β},  d_c = k + (α/n)·Σ_{c' ∈ window(c)} x_{c'}²
//
// where the window spans n adjacent channels centred on c. The paper keeps
// LRN for batch sizes up to 8K and replaces it with BatchNorm for 32K
// (Table 7/8 note); this implementation exists so both model variants can be
// built and compared.
type LRN struct {
	name  string
	N     int     // window size (channels), default 5
	Alpha float32 // default 1e-4
	Beta  float32 // default 0.75
	K     float32 // default 2 (Krizhevsky's constant)

	x       *tensor.Tensor
	scale   *tensor.Tensor // cached d values
	inShape []int
}

// NewLRN returns an LRN layer with AlexNet's published constants.
func NewLRN(name string) *LRN {
	return &LRN{name: name, N: 5, Alpha: 1e-4, Beta: 0.75, K: 2}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// Forward implements Layer.
func (l *LRN) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s: want NCHW input, got %v", l.name, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	l.x = x
	l.inShape = append(l.inShape[:0], x.Shape...)
	l.scale = tensor.New(x.Shape...)
	y := tensor.New(x.Shape...)
	area := h * w
	half := l.N / 2
	coeff := l.Alpha / float32(l.N)

	par.ForGrain(n, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			base := s * c * area
			for pos := 0; pos < area; pos++ {
				// Sliding window over channels at this spatial position.
				var window float32
				for cc := 0; cc < min(half+1, c); cc++ {
					v := x.Data[base+cc*area+pos]
					window += v * v
				}
				for ch := 0; ch < c; ch++ {
					d := l.K + coeff*window
					l.scale.Data[base+ch*area+pos] = d
					y.Data[base+ch*area+pos] = x.Data[base+ch*area+pos] * float32(math.Pow(float64(d), -float64(l.Beta)))
					// Slide: add entering channel, remove leaving channel.
					if enter := ch + half + 1; enter < c {
						v := x.Data[base+enter*area+pos]
						window += v * v
					}
					if leave := ch - half; leave >= 0 {
						v := x.Data[base+leave*area+pos]
						window -= v * v
					}
				}
			}
		}
	})
	return y
}

// Backward implements Layer. With d_c cached from the forward pass,
//
//	dx_j = dy_j·d_j^{-β} − (2αβ/n)·x_j·Σ_{c: j∈window(c)} dy_c·x_c·d_c^{-β-1}
func (l *LRN) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c := l.inShape[0], l.inShape[1]
	area := l.inShape[2] * l.inShape[3]
	dx := tensor.New(l.inShape...)
	half := l.N / 2
	factor := 2 * l.Alpha * l.Beta / float32(l.N)

	par.ForGrain(n, 1, func(lo, hi int) {
		// t_c = dy_c · x_c · d_c^{-β-1}, then windowed sum over c.
		t := make([]float32, c)
		for s := lo; s < hi; s++ {
			base := s * c * area
			for pos := 0; pos < area; pos++ {
				for ch := 0; ch < c; ch++ {
					i := base + ch*area + pos
					d := float64(l.scale.Data[i])
					t[ch] = dout.Data[i] * l.x.Data[i] * float32(math.Pow(d, -float64(l.Beta)-1))
				}
				var window float32
				for cc := 0; cc < min(half+1, c); cc++ {
					window += t[cc]
				}
				for j := 0; j < c; j++ {
					i := base + j*area + pos
					d := float64(l.scale.Data[i])
					dx.Data[i] = dout.Data[i]*float32(math.Pow(d, -float64(l.Beta))) - factor*l.x.Data[i]*window
					if enter := j + half + 1; enter < c {
						window += t[enter]
					}
					if leave := j - half; leave >= 0 {
						window -= t[leave]
					}
				}
			}
		}
	})
	return dx
}
