package nn

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/tensor"
)

// LRN is AlexNet's local response normalization across channels:
//
//	y_c = x_c · d_c^{-β},  d_c = k + (α/n)·Σ_{c' ∈ window(c)} x_{c'}²
//
// where the window spans n adjacent channels centred on c. The paper keeps
// LRN for batch sizes up to 8K and replaces it with BatchNorm for 32K
// (Table 7/8 note); this implementation exists so both model variants can be
// built and compared.
type LRN struct {
	name  string
	N     int     // window size (channels), default 5
	Alpha float32 // default 1e-4
	Beta  float32 // default 0.75
	K     float32 // default 2 (Krizhevsky's constant)

	x       *tensor.Tensor
	scale   *tensor.Tensor // cached d values
	inShape []int
}

// NewLRN returns an LRN layer with AlexNet's published constants.
func NewLRN(name string) *LRN {
	return &LRN{name: name, N: 5, Alpha: 1e-4, Beta: 0.75, K: 2}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// Forward implements Layer.
func (l *LRN) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s: want NCHW input, got %v", l.name, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	l.x = x
	l.inShape = append(l.inShape[:0], x.Shape...)
	l.scale = tensor.New(x.Shape...)
	y := tensor.New(x.Shape...)
	area := h * w
	half := l.N / 2
	coeff := l.Alpha / float32(l.N)

	par.ForGrain(n, 1, func(lo, hi int) {
		// Each window reduces through the fixed-tree kernel sum instead of
		// a sliding add/subtract: the windows are tiny (N channels), and a
		// fresh fixed-shape sum per window keeps every d value a pure
		// function of its window — no accumulated drift across channels,
		// and the same reduction discipline as the rest of the train path.
		win := make([]float32, 2*half+1) // a window spans up to 2·⌊N/2⌋+1 channels (N+1 when N is even)
		for s := lo; s < hi; s++ {
			base := s * c * area
			for pos := 0; pos < area; pos++ {
				for ch := 0; ch < c; ch++ {
					m := 0
					for cc := max(0, ch-half); cc < min(ch+half+1, c); cc++ {
						v := x.Data[base+cc*area+pos]
						win[m] = v * v
						m++
					}
					d := l.K + coeff*kernel.PairwiseSum(win[:m])
					l.scale.Data[base+ch*area+pos] = d
					y.Data[base+ch*area+pos] = x.Data[base+ch*area+pos] * float32(math.Pow(float64(d), -float64(l.Beta)))
				}
			}
		}
	})
	return y
}

// Backward implements Layer. With d_c cached from the forward pass,
//
//	dx_j = dy_j·d_j^{-β} − (2αβ/n)·x_j·Σ_{c: j∈window(c)} dy_c·x_c·d_c^{-β-1}
func (l *LRN) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c := l.inShape[0], l.inShape[1]
	area := l.inShape[2] * l.inShape[3]
	dx := tensor.New(l.inShape...)
	half := l.N / 2
	factor := 2 * l.Alpha * l.Beta / float32(l.N)

	par.ForGrain(n, 1, func(lo, hi int) {
		// t_c = dy_c · x_c · d_c^{-β-1}, then each window sums through the
		// fixed-tree kernel (t is contiguous, so the window is one slice).
		t := make([]float32, c)
		for s := lo; s < hi; s++ {
			base := s * c * area
			for pos := 0; pos < area; pos++ {
				for ch := 0; ch < c; ch++ {
					i := base + ch*area + pos
					d := float64(l.scale.Data[i])
					t[ch] = dout.Data[i] * l.x.Data[i] * float32(math.Pow(d, -float64(l.Beta)-1))
				}
				for j := 0; j < c; j++ {
					i := base + j*area + pos
					d := float64(l.scale.Data[i])
					window := kernel.PairwiseSum(t[max(0, j-half):min(j+half+1, c)])
					dx.Data[i] = dout.Data[i]*float32(math.Pow(d, -float64(l.Beta))) - factor*l.x.Data[i]*window
				}
			}
		}
	})
	return dx
}
