package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestLinearForward(t *testing.T) {
	r := rng.New(1)
	l := NewLinear("fc", r, 3, 2)
	l.Weight.W.CopyFrom(tensor.FromSlice([]float32{1, 0, 0, 0, 1, 0}, 2, 3))
	l.Bias.W.CopyFrom(tensor.FromSlice([]float32{10, 20}, 2))
	x := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	y := l.Forward(x, true)
	if y.Data[0] != 11 || y.Data[1] != 22 {
		t.Fatalf("Linear forward = %v, want [11 22]", y.Data)
	}
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(2)
	l := NewLinear("fc", r, 5, 4)
	x := tensor.RandNormal(r, 1, 3, 5)
	checkGradients(t, l, x, true)
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU("relu")
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 4)
	y := l.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU forward = %v", y.Data)
		}
	}
	d := l.Backward(tensor.FromSlice([]float32{5, 5, 5, 5}, 4))
	wantD := []float32{0, 0, 5, 0}
	for i := range wantD {
		if d.Data[i] != wantD[i] {
			t.Fatalf("ReLU backward = %v", d.Data)
		}
	}
}

func TestReLUGradients(t *testing.T) {
	r := rng.New(3)
	x := tensor.RandNormal(r, 1, 4, 9)
	// Shift away from 0 to avoid the kink in finite differences.
	x.Apply(func(v float32) float32 {
		if v > -0.05 && v < 0.05 {
			return v + 0.2
		}
		return v
	})
	checkGradients(t, NewReLU("relu"), x, true)
}

func TestMaxPoolForward(t *testing.T) {
	l := NewMaxPool("pool", 2, 2, 0)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := l.Forward(x, true)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("MaxPool forward = %v, want %v", y.Data, want)
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	l := NewMaxPool("pool", 2, 2, 0)
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	l.Forward(x, true)
	d := l.Backward(tensor.FromSlice([]float32{7}, 1, 1, 1, 1))
	want := []float32{0, 0, 0, 7}
	for i := range want {
		if d.Data[i] != want[i] {
			t.Fatalf("MaxPool backward = %v, want %v", d.Data, want)
		}
	}
}

func TestMaxPoolGradients(t *testing.T) {
	r := rng.New(4)
	x := tensor.RandNormal(r, 1, 2, 3, 6, 6)
	// MaxPool is piecewise linear; finite differences are valid as long as
	// no two window entries tie, which has probability ~0 for normals.
	checkGradients(t, NewMaxPool("pool", 2, 2, 0), x, true)
}

func TestMaxPoolOverlappingGradients(t *testing.T) {
	r := rng.New(5)
	x := tensor.RandNormal(r, 1, 1, 2, 7, 7)
	// AlexNet-style overlapping pooling: 3x3 window stride 2.
	checkGradients(t, NewMaxPool("pool", 3, 2, 0), x, true)
}

func TestGlobalAvgPool(t *testing.T) {
	l := NewGlobalAvgPool("gap")
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := l.Forward(x, true)
	if y.Shape[0] != 1 || y.Shape[1] != 2 {
		t.Fatalf("GAP shape = %v", y.Shape)
	}
	if y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Fatalf("GAP values = %v", y.Data)
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	r := rng.New(6)
	x := tensor.RandNormal(r, 1, 2, 3, 4, 4)
	checkGradients(t, NewGlobalAvgPool("gap"), x, true)
}

func TestAvgPoolGradients(t *testing.T) {
	r := rng.New(7)
	x := tensor.RandNormal(r, 1, 2, 2, 6, 6)
	checkGradients(t, NewAvgPool("avg", 2, 2), x, true)
}

func TestBatchNormTrainStats(t *testing.T) {
	r := rng.New(8)
	bn := NewBatchNorm("bn", 3)
	x := tensor.RandNormal(r, 5, 16, 3, 4, 4)
	x.AddScalar(2)
	y := bn.Forward(x, true)
	// Per-channel mean ≈ 0, variance ≈ 1 after normalization (γ=1, β=0).
	n, area := 16, 16
	for c := 0; c < 3; c++ {
		var sum, sumSq float64
		for s := 0; s < n; s++ {
			base := s*3*area + c*area
			for i := 0; i < area; i++ {
				v := float64(y.Data[base+i])
				sum += v
				sumSq += v * v
			}
		}
		count := float64(n * area)
		mean := sum / count
		variance := sumSq/count - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d mean %v after BN", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d variance %v after BN", c, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := rng.New(9)
	bn := NewBatchNorm("bn", 2)
	x := tensor.RandNormal(r, 1, 8, 2, 3, 3)
	// Train a few times to populate running stats.
	for i := 0; i < 20; i++ {
		bn.Forward(x, true)
	}
	yTrain := bn.Forward(x, true)
	yEval := bn.Forward(x, false)
	// Eval output should be close to train output once running stats have
	// converged to this (fixed) batch's statistics.
	var maxDiff float64
	for i := range yTrain.Data {
		d := math.Abs(float64(yTrain.Data[i] - yEval.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.2 {
		t.Fatalf("eval differs from train by %v after convergence", maxDiff)
	}
}

func TestBatchNormGradientsSpatial(t *testing.T) {
	r := rng.New(10)
	bn := NewBatchNorm("bn", 3)
	bn.Gamma.W.FillUniform(r, 0.5, 1.5)
	bn.Beta.W.FillUniform(r, -0.5, 0.5)
	x := tensor.RandNormal(r, 1, 4, 3, 3, 3)
	checkGradients(t, bn, x, true)
}

func TestBatchNormGradientsDense(t *testing.T) {
	r := rng.New(11)
	bn := NewBatchNorm("bn", 6)
	x := tensor.RandNormal(r, 1, 8, 6)
	checkGradients(t, bn, x, true)
}

func TestLRNForwardIdentityAtZero(t *testing.T) {
	l := NewLRN("lrn")
	x := tensor.New(1, 4, 2, 2)
	y := l.Forward(x, true)
	for _, v := range y.Data {
		if v != 0 {
			t.Fatalf("LRN(0) = %v, want 0", v)
		}
	}
}

func TestLRNNormalizes(t *testing.T) {
	l := NewLRN("lrn")
	// Large activations should be scaled down by more than small ones.
	big := tensor.Full(10, 1, 5, 1, 1)
	yBig := l.Forward(big, true)
	small := tensor.Full(0.1, 1, 5, 1, 1)
	ySmall := l.Forward(small, true)
	ratioBig := yBig.Data[2] / 10
	ratioSmall := ySmall.Data[2] / 0.1
	if ratioBig >= ratioSmall {
		t.Fatalf("LRN should suppress large activations more: %v vs %v", ratioBig, ratioSmall)
	}
}

func TestLRNGradients(t *testing.T) {
	r := rng.New(12)
	x := tensor.RandNormal(r, 1, 2, 7, 3, 3)
	checkGradients(t, NewLRN("lrn"), x, true)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := rng.New(13)
	l := NewDropout("drop", r, 0.5)
	x := tensor.RandNormal(r, 1, 4, 8)
	y := l.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("dropout must be identity in eval mode")
		}
	}
}

func TestDropoutMaskConsistency(t *testing.T) {
	r := rng.New(14)
	l := NewDropout("drop", r, 0.5)
	x := tensor.Ones(1, 1000)
	y := l.Forward(x, true)
	dropped := 0
	for _, v := range y.Data {
		switch v {
		case 0:
			dropped++
		case 2: // survivors scaled by 1/(1-p) = 2
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if dropped < 350 || dropped > 650 {
		t.Fatalf("dropped %d of 1000 at p=0.5", dropped)
	}
	// Backward must reuse the same mask.
	d := l.Backward(tensor.Ones(1, 1000))
	for i := range d.Data {
		if (y.Data[i] == 0) != (d.Data[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	r := rng.New(15)
	x := tensor.RandNormal(r, 1, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 60 {
		t.Fatalf("Flatten shape %v", y.Shape)
	}
	d := f.Backward(y)
	if len(d.Shape) != 4 || d.Shape[3] != 5 {
		t.Fatalf("Flatten backward shape %v", d.Shape)
	}
}

func TestResidualIdentityGradients(t *testing.T) {
	r := rng.New(16)
	body := NewNetwork("body",
		NewConv("c1", r, 3, 3, 3, 1, 1, ConvOpts{NoBias: true}),
		NewBatchNorm("bn1", 3),
	)
	// Bias the pre-ReLU sum well away from zero: finite differences are
	// invalid at the ReLU kink, and with BN output (mean 0) plus a mean-0
	// input most sums would otherwise sit right at it.
	body.Layers[1].(*BatchNorm).Beta.W.Fill(3)
	block := NewResidual("res", body, nil)
	x := tensor.RandNormal(r, 1, 2, 3, 4, 4)
	x.AddScalar(3)
	checkGradients(t, block, x, true)
}

func TestResidualProjectionGradients(t *testing.T) {
	r := rng.New(17)
	body := NewNetwork("body",
		NewConv("c1", r, 2, 4, 3, 2, 1, ConvOpts{NoBias: true}),
		NewBatchNorm("bn1", 4),
	)
	shortcut := NewNetwork("short",
		NewConv("cs", r, 2, 4, 1, 2, 0, ConvOpts{NoBias: true}),
		NewBatchNorm("bns", 4),
	)
	// Keep pre-ReLU sums away from the kink (see identity test).
	body.Layers[1].(*BatchNorm).Beta.W.Fill(4)
	block := NewResidual("res", body, shortcut)
	x := tensor.RandNormal(r, 1, 2, 2, 6, 6)
	checkGradients(t, block, x, true)
}

func TestNetworkComposition(t *testing.T) {
	r := rng.New(18)
	net := NewNetwork("mlp",
		NewLinear("fc1", r, 10, 8),
		NewReLU("relu1"),
		NewLinear("fc2", r, 8, 4),
	)
	if got := net.NumParams(); got != 10*8+8+8*4+4 {
		t.Fatalf("NumParams = %d", got)
	}
	x := tensor.RandNormal(r, 1, 3, 10)
	y := net.Forward(x, true)
	if y.Shape[0] != 3 || y.Shape[1] != 4 {
		t.Fatalf("network output shape %v", y.Shape)
	}
	net.ZeroGrad()
	for _, p := range net.Params() {
		if p.G.Norm2() != 0 {
			t.Fatal("ZeroGrad left nonzero gradient")
		}
	}
}

func TestNetworkGradients(t *testing.T) {
	r := rng.New(19)
	net := NewNetwork("cnn",
		NewConv("c1", r, 1, 2, 3, 1, 1, ConvOpts{}),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2, 0),
		NewFlatten(),
		NewLinear("fc", r, 2*3*3, 4),
	)
	x := tensor.RandNormal(r, 1, 2, 1, 6, 6)
	checkGradients(t, net, x, true)
}

func TestCopyWeightsFrom(t *testing.T) {
	r1, r2 := rng.New(20), rng.New(21)
	a := NewNetwork("a", NewLinear("fc", r1, 4, 4))
	b := NewNetwork("b", NewLinear("fc", r2, 4, 4))
	b.CopyWeightsFrom(a)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatal("weights not copied")
			}
		}
	}
}

// TestLRNEvenWindow: N is an exported field, so even window sizes must
// work; an even N spans 2·⌊N/2⌋+1 = N+1 channels per window (regression:
// the window scratch was sized N and panicked).
func TestLRNEvenWindow(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		l := NewLRN("lrn")
		l.N = n
		x := tensor.RandNormal(rng.New(uint64(n)), 1, 2, 8, 3, 3)
		y := l.Forward(x, true)
		dx := l.Backward(tensor.Ones(y.Shape...))
		if y.Numel() != x.Numel() || dx.Numel() != x.Numel() {
			t.Fatalf("N=%d: shape drift", n)
		}
		for i, v := range y.Data {
			if math.IsNaN(float64(v)) {
				t.Fatalf("N=%d: NaN at %d", n, i)
			}
		}
	}
}
