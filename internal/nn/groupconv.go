package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// GroupedConv2D is a convolution whose input and output channels are split
// into G independent groups — the structure of the original AlexNet's two
// GPU "towers" (conv2/4/5 use groups=2), which is why the canonical AlexNet
// has 61M rather than ~72M parameters. Each group g convolves input
// channels [g·inC/G, (g+1)·inC/G) to output channels [g·outC/G, (g+1)·outC/G)
// with its own filters; there is no cross-group mixing.
//
// It is implemented as G independent Conv2D layers over channel slices, so
// its gradients inherit the gradient-checked correctness of Conv2D.
type GroupedConv2D struct {
	name      string
	InC, OutC int
	Groups    int
	convs     []*Conv2D

	inShape []int
}

// NewGroupedConv builds a square-kernel grouped convolution. groups must
// divide both inC and outC. He initialization uses the per-group fan-in,
// matching what training one tower sees.
func NewGroupedConv(name string, r *rng.Rand, inC, outC, k, stride, pad, groups int, opts ConvOpts) *GroupedConv2D {
	if groups <= 0 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: %s: groups=%d must divide inC=%d and outC=%d", name, groups, inC, outC))
	}
	g := &GroupedConv2D{name: name, InC: inC, OutC: outC, Groups: groups}
	for i := 0; i < groups; i++ {
		g.convs = append(g.convs, NewConv(
			fmt.Sprintf("%s.g%d", name, i), r,
			inC/groups, outC/groups, k, stride, pad, opts,
		))
	}
	return g
}

// Name implements Layer.
func (g *GroupedConv2D) Name() string { return g.name }

// SetPrecision implements PrecisionLayer, forwarding to every group's conv.
func (g *GroupedConv2D) SetPrecision(p tensor.Precision) {
	for _, c := range g.convs {
		c.SetPrecision(p)
	}
}

// Params implements Layer.
func (g *GroupedConv2D) Params() []*Param {
	var ps []*Param
	for _, c := range g.convs {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// Forward implements Layer: slice input channels per group, convolve, and
// concatenate the output channel blocks.
func (g *GroupedConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Shape[1] != g.InC {
		panic(fmt.Sprintf("nn: %s: want [N,%d,H,W], got %v", g.name, g.InC, x.Shape))
	}
	g.inShape = append(g.inShape[:0], x.Shape...)
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	inPer := g.InC / g.Groups
	outPer := g.OutC / g.Groups

	var y *tensor.Tensor
	for gi, conv := range g.convs {
		xg := sliceChannels(x, gi*inPer, (gi+1)*inPer)
		yg := conv.Forward(xg, train)
		if y == nil {
			y = tensor.New(n, g.OutC, yg.Shape[2], yg.Shape[3])
		}
		writeChannels(y, yg, gi*outPer)
	}
	_ = h
	_ = w
	return y
}

// Backward implements Layer.
func (g *GroupedConv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	outPer := g.OutC / g.Groups
	inPer := g.InC / g.Groups
	dx := tensor.New(g.inShape...)
	for gi, conv := range g.convs {
		dg := sliceChannels(dout, gi*outPer, (gi+1)*outPer)
		dxg := conv.Backward(dg)
		writeChannels(dx, dxg, gi*inPer)
	}
	return dx
}

// sliceChannels copies channels [lo,hi) of a NCHW tensor into a fresh
// contiguous tensor.
func sliceChannels(x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(n, hi-lo, h, w)
	plane := h * w
	for s := 0; s < n; s++ {
		src := x.Data[(s*c+lo)*plane : (s*c+hi)*plane]
		copy(out.Data[s*(hi-lo)*plane:(s+1)*(hi-lo)*plane], src)
	}
	return out
}

// writeChannels copies all channels of src into dst starting at channel off.
func writeChannels(dst, src *tensor.Tensor, off int) {
	n, c, h, w := src.Shape[0], src.Shape[1], src.Shape[2], src.Shape[3]
	dc := dst.Shape[1]
	plane := h * w
	for s := 0; s < n; s++ {
		copy(dst.Data[(s*dc+off)*plane:(s*dc+off+c)*plane], src.Data[s*c*plane:(s+1)*c*plane])
	}
}
