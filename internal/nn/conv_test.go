package nn

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestConvOutputShape(t *testing.T) {
	r := rng.New(1)
	conv := NewConv("c1", r, 3, 8, 3, 1, 1, ConvOpts{})
	x := tensor.RandNormal(r, 1, 2, 3, 8, 8)
	y := conv.Forward(x, true)
	want := []int{2, 8, 8, 8}
	for i, d := range want {
		if y.Shape[i] != d {
			t.Fatalf("output shape %v, want %v", y.Shape, want)
		}
	}
}

func TestConvStridedShape(t *testing.T) {
	r := rng.New(2)
	// ResNet conv1 geometry scaled down: 7x7 stride 2 pad 3.
	conv := NewConv("c1", r, 3, 4, 7, 2, 3, ConvOpts{NoBias: true})
	x := tensor.RandNormal(r, 1, 1, 3, 16, 16)
	y := conv.Forward(x, true)
	if y.Shape[2] != 8 || y.Shape[3] != 8 {
		t.Fatalf("strided output %v, want spatial 8x8", y.Shape)
	}
}

func TestConvBiasApplied(t *testing.T) {
	r := rng.New(3)
	conv := NewConv("c", r, 1, 2, 1, 1, 0, ConvOpts{})
	conv.Weight.W.Zero()
	conv.Bias.W.Data[0] = 1.5
	conv.Bias.W.Data[1] = -0.5
	x := tensor.RandNormal(r, 1, 1, 1, 2, 2)
	y := conv.Forward(x, true)
	for i := 0; i < 4; i++ {
		if y.Data[i] != 1.5 {
			t.Fatalf("channel 0 should be pure bias 1.5, got %v", y.Data[i])
		}
		if y.Data[4+i] != -0.5 {
			t.Fatalf("channel 1 should be pure bias -0.5, got %v", y.Data[4+i])
		}
	}
}

func TestConvGradients(t *testing.T) {
	r := rng.New(4)
	conv := NewConv("c", r, 2, 3, 3, 1, 1, ConvOpts{})
	x := tensor.RandNormal(r, 1, 2, 2, 5, 5)
	checkGradients(t, conv, x, true)
}

func TestConvGradientsStridedNoBias(t *testing.T) {
	r := rng.New(5)
	conv := NewConv("c", r, 3, 2, 3, 2, 1, ConvOpts{NoBias: true})
	x := tensor.RandNormal(r, 1, 2, 3, 7, 7)
	checkGradients(t, conv, x, true)
}

func TestConvGradientAccumulates(t *testing.T) {
	r := rng.New(6)
	conv := NewConv("c", r, 1, 1, 3, 1, 1, ConvOpts{})
	x := tensor.RandNormal(r, 1, 1, 1, 4, 4)
	y := conv.Forward(x, true)
	ones := tensor.Ones(y.Shape...)
	conv.Backward(ones)
	g1 := conv.Weight.G.Clone()
	conv.Forward(x, true)
	conv.Backward(ones)
	for i := range g1.Data {
		if got := conv.Weight.G.Data[i]; got != 2*g1.Data[i] {
			t.Fatalf("gradient did not accumulate: %v vs 2*%v", got, g1.Data[i])
		}
	}
}

func TestConvChannelMismatchPanics(t *testing.T) {
	defer expectPanic(t, "channel mismatch")
	r := rng.New(7)
	conv := NewConv("c", r, 3, 4, 3, 1, 1, ConvOpts{})
	conv.Forward(tensor.New(1, 2, 8, 8), true)
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
