package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// lossOf computes the scalar test loss <Forward(x), c> in float64.
func lossOf(l Layer, x, c *tensor.Tensor, train bool) float64 {
	y := l.Forward(x, train)
	return y.Dot(c)
}

// checkGradients validates a layer's Backward against central finite
// differences of the loss L(x, θ) = <Forward(x, θ), c> for a random fixed c.
// It checks both the input gradient and every parameter gradient.
//
// The step h and tolerance are chosen for float32 forward passes with
// float64 loss accumulation: central differences have O(h²) truncation error
// while float32 rounding contributes ~1e-7·‖y‖/h noise, so h around 1e-2..1e-3
// balances the two at a few percent accuracy.
func checkGradients(t *testing.T, l Layer, x *tensor.Tensor, train bool) {
	t.Helper()
	r := rng.New(999)
	y := l.Forward(x, train)
	c := tensor.RandNormal(r, 1, y.Shape...)

	// Analytic gradients: re-run forward so caches match, then backprop c.
	for _, p := range l.Params() {
		p.G.Zero()
	}
	l.Forward(x, train)
	dx := l.Backward(c.Clone())

	const h = 1e-2
	const tol = 5e-2

	compare := func(kind string, buf []float32, analytic []float32, idxs []int) {
		t.Helper()
		for _, i := range idxs {
			orig := buf[i]
			buf[i] = orig + h
			lp := lossOf(l, x, c, train)
			buf[i] = orig - h
			lm := lossOf(l, x, c, train)
			buf[i] = orig
			numeric := (lp - lm) / (2 * h)
			got := float64(analytic[i])
			scale := math.Abs(numeric) + math.Abs(got) + 1e-3
			if math.Abs(numeric-got)/scale > tol {
				t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g", kind, i, got, numeric)
			}
		}
	}

	// Sample a handful of coordinates rather than the full tensor to keep
	// the O(2·numel) forward passes affordable.
	sample := func(n int) []int {
		if n <= 12 {
			idxs := make([]int, n)
			for i := range idxs {
				idxs[i] = i
			}
			return idxs
		}
		rr := rng.New(uint64(n))
		idxs := make([]int, 12)
		for i := range idxs {
			idxs[i] = rr.Intn(n)
		}
		return idxs
	}

	compare("dx", x.Data, dx.Data, sample(x.Numel()))
	for _, p := range l.Params() {
		compare(p.Name, p.W.Data, p.G.Data, sample(p.Numel()))
	}
}
