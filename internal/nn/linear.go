package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Linear is a fully-connected layer: y = x·Wᵀ + b for x of shape [N, in].
// Weights have shape [out, in] so each output unit's weights are contiguous.
type Linear struct {
	name         string
	In, Out      int
	Weight, Bias *Param

	x *tensor.Tensor // cached input for Backward

	// F16 compute path (see Conv2D): binary16 operand copies, float32
	// master weights and gradients.
	precision tensor.Precision
	wHalf     *tensor.Half // Weight.W packed once per Forward
	xHalf     *tensor.Half // input batch, packed in Forward for Backward's dW
	dyHalf    *tensor.Half // dout, packed in Backward
}

// NewLinear constructs a fully-connected layer with He initialization.
func NewLinear(name string, r *rng.Rand, in, out int) *Linear {
	l := &Linear{name: name, In: in, Out: out}
	l.Weight = NewParam(name+".weight", out, in)
	l.Weight.W.FillNormal(r, 0, tensor.HeStd(in))
	l.Bias = NewParam(name+".bias", out)
	l.Bias.NoDecay = true
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// SetPrecision implements PrecisionLayer.
func (l *Linear) SetPrecision(p tensor.Precision) {
	l.precision = p
	if p == tensor.F16 && l.wHalf == nil {
		l.wHalf, l.xHalf, l.dyHalf = tensor.NewHalf(), tensor.NewHalf(), tensor.NewHalf()
	}
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: %s: want [N,%d] input, got %v", l.name, l.In, x.Shape))
	}
	l.x = x
	n := x.Shape[0]
	y := tensor.New(n, l.Out)
	// y = x · Wᵀ
	if l.precision == tensor.F16 {
		tensor.PackHalf(l.xHalf, x)
		tensor.PackHalf(l.wHalf, l.Weight.W)
		tensor.GemmHalf(false, true, 1, l.xHalf, l.wHalf, 0, y)
	} else {
		tensor.Gemm(false, true, 1, x, l.Weight.W, 0, y)
	}
	bd := l.Bias.W.Data
	for s := 0; s < n; s++ {
		row := y.Data[s*l.Out : (s+1)*l.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n := l.x.Shape[0]
	// dW += doutᵀ · x
	if l.precision == tensor.F16 {
		tensor.PackHalf(l.dyHalf, dout)
		tensor.GemmHalf(true, false, 1, l.dyHalf, l.xHalf, 1, l.Weight.G)
	} else {
		tensor.Gemm(true, false, 1, dout, l.x, 1, l.Weight.G)
	}
	// db += column sums of dout
	gd := l.Bias.G.Data
	for s := 0; s < n; s++ {
		row := dout.Data[s*l.Out : (s+1)*l.Out]
		for j, v := range row {
			gd[j] += v
		}
	}
	// dx = dout · W
	dx := tensor.New(n, l.In)
	if l.precision == tensor.F16 {
		tensor.GemmHalf(false, false, 1, l.dyHalf, l.wHalf, 0, dx)
	} else {
		tensor.Gemm(false, false, 1, dout, l.Weight.W, 0, dx)
	}
	return dx
}
