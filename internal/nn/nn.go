// Package nn implements the neural-network layers used to reproduce the
// paper's models: convolutions, fully-connected layers, batch normalization,
// local response normalization (the AlexNet original; the paper swaps it for
// BN at batch 32K), pooling, ReLU, dropout, residual blocks and the
// softmax-cross-entropy loss.
//
// Every layer implements exact reverse-mode gradients (validated against
// finite differences in the tests). Gradients accumulate into Param.G so a
// batch can be processed in micro-batches; call Network.ZeroGrad between
// optimizer steps.
//
// A Layer instance owns scratch buffers and cached activations, so it must
// not be shared between goroutines. Data-parallel training (internal/dist)
// gives each worker its own replica and synchronizes parameters explicitly,
// which is exactly the structure of the paper's synchronous SGD.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one learnable tensor together with its gradient accumulator.
// LARS operates on Params: each Param gets its own trust ratio computed from
// ‖W‖ and ‖G‖ (the "layer-wise" in Layer-wise Adaptive Rate Scaling).
type Param struct {
	Name string
	W    *tensor.Tensor // value
	G    *tensor.Tensor // gradient accumulator, same shape as W
	// NoDecay marks parameters conventionally excluded from weight decay
	// and from LARS scaling (biases, batch-norm gain/shift).
	NoDecay bool
}

// NewParam allocates a parameter and its gradient with the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), G: tensor.New(shape...)}
}

// Numel returns the number of scalar weights.
func (p *Param) Numel() int { return p.W.Numel() }

// Layer is a differentiable module. Forward caches whatever Backward needs;
// Backward consumes the gradient w.r.t. the layer output and returns the
// gradient w.r.t. the layer input, accumulating parameter gradients on the
// way.
type Layer interface {
	// Name identifies the layer in logs and LARS statistics.
	Name() string
	// Forward computes the layer output. train selects training behaviour
	// (batch statistics, dropout masks).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates dout (gradient w.r.t. the last Forward output)
	// and returns the gradient w.r.t. that Forward's input.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters, possibly empty.
	Params() []*Param
}

// Network is an ordered sequence of layers behaving as a single Layer.
type Network struct {
	name   string
	Layers []Layer

	// gradNotify, when set, is invoked during Backward as parameter
	// gradients become final (see SetGradNotify). notifyBase caches the
	// starting Params() index of each layer for the callback.
	gradNotify func(param int)
	notifyBase []int
}

// NewNetwork builds a sequential network.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{name: name, Layers: layers}
}

// Name returns the network's identifying name.
func (n *Network) Name() string { return n.name }

// Add appends layers.
func (n *Network) Add(layers ...Layer) { n.Layers = append(n.Layers, layers...) }

// Forward runs all layers in order.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order. When a gradient-ready callback
// is registered (SetGradNotify), it fires for each parameter as soon as the
// owning layer's backward completes — the hook distributed engines use to
// overlap gradient reduction with the rest of the backward pass.
func (n *Network) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if n.gradNotify == nil {
		for i := len(n.Layers) - 1; i >= 0; i-- {
			dout = n.Layers[i].Backward(dout)
		}
		return dout
	}
	if len(n.notifyBase) != len(n.Layers)+1 {
		n.notifyBase = make([]int, len(n.Layers)+1)
		for i, l := range n.Layers {
			n.notifyBase[i+1] = n.notifyBase[i] + len(l.Params())
		}
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
		// Parameters land in reverse Params() order: the network's last
		// parameter is ready first, parameter 0 last.
		for p := n.notifyBase[i+1] - 1; p >= n.notifyBase[i]; p-- {
			n.gradNotify(p)
		}
	}
	return dout
}

// SetGradNotify registers fn to be called during every Backward as parameter
// gradients become final, with the parameter's index in Params() order. A
// layer's parameters are reported (highest index first) immediately after
// that layer's Backward returns — while earlier layers are still
// back-propagating — which is the moment a data-parallel engine can start
// reducing them. Because gradients accumulate into Param.G, "final" means
// final for the current Backward call: callers accumulating over
// micro-batches see one notification per call. nil unregisters the hook.
func (n *Network) SetGradNotify(fn func(param int)) {
	n.gradNotify = fn
	n.notifyBase = nil
}

// PrecisionLayer is implemented by layers that own a reduced-precision
// compute path (Conv2D, Linear, GroupedConv2D). SetPrecision selects the
// storage precision of the layer's GEMM operands; parameters themselves
// always stay float32 masters.
type PrecisionLayer interface {
	SetPrecision(p tensor.Precision)
}

// SetPrecision selects the compute precision of every layer that implements
// PrecisionLayer; the remaining layers (activations, pooling, BN, loss)
// always run float32. With tensor.F16 the conv/fc hot path stores its GEMM
// operands as binary16 and accumulates in float32, while the trainer keeps
// float32 master weights — the mixed-precision recipe the paper credits for
// NVIDIA's half-precision DGX-1 result.
func (n *Network) SetPrecision(p tensor.Precision) {
	for _, l := range n.Layers {
		if pl, ok := l.(PrecisionLayer); ok {
			pl.SetPrecision(p)
		}
	}
}

// Params returns the parameters of all layers in order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// NumParams returns the total number of scalar weights, the |W| of the
// paper's communication-volume analysis.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Numel()
	}
	return total
}

// CopyWeightsFrom copies all parameter values (not gradients) from src.
// Both networks must have identical architecture. It is how dist workers
// receive the broadcast global weights.
func (n *Network) CopyWeightsFrom(src *Network) {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		panic(fmt.Sprintf("nn: CopyWeightsFrom: %d params vs %d", len(dst), len(s)))
	}
	for i := range dst {
		dst[i].W.CopyFrom(s[i].W)
	}
}

// Flatten reshapes [N, ...] activations to [N, features]. It is a pure view
// change; gradients flow through as a reshape as well.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	return x.Reshape(x.Shape[0], -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
