package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestGroupedConvShapes(t *testing.T) {
	r := rng.New(1)
	g := NewGroupedConv("gc", r, 4, 6, 3, 1, 1, 2, ConvOpts{})
	x := tensor.RandNormal(r, 1, 2, 4, 5, 5)
	y := g.Forward(x, true)
	want := []int{2, 6, 5, 5}
	for i := range want {
		if y.Shape[i] != want[i] {
			t.Fatalf("output shape %v, want %v", y.Shape, want)
		}
	}
}

func TestGroupedConvParamCount(t *testing.T) {
	r := rng.New(2)
	// groups=2: each group has outC/2 x (inC/2 x k x k) weights + outC/2 biases.
	g := NewGroupedConv("gc", r, 8, 16, 3, 1, 1, 2, ConvOpts{})
	total := 0
	for _, p := range g.Params() {
		total += p.Numel()
	}
	want := 2 * (8 * (4 * 9)) // weights
	want += 16                // biases
	if total != want {
		t.Fatalf("grouped conv params = %d, want %d", total, want)
	}
	// Same layer ungrouped has twice the weights.
	u := NewConv("c", r, 8, 16, 3, 1, 1, ConvOpts{})
	utotal := 0
	for _, p := range u.Params() {
		utotal += p.Numel()
	}
	if utotal <= total {
		t.Fatalf("ungrouped (%d) should exceed grouped (%d)", utotal, total)
	}
}

// TestGroupedConvEqualsBlockDiagonal verifies the defining property: a
// grouped conv equals an ungrouped conv whose weight matrix is block
// diagonal (zero cross-group weights).
func TestGroupedConvEqualsBlockDiagonal(t *testing.T) {
	r := rng.New(3)
	const inC, outC, k, groups = 4, 4, 3, 2
	g := NewGroupedConv("gc", r, inC, outC, k, 1, 1, groups, ConvOpts{})
	u := NewConv("c", rng.New(99), inC, outC, k, 1, 1, ConvOpts{})

	// Build u's weights from g's: group gi covers input channels
	// [gi*inC/G,...) and output channels [gi*outC/G,...); everything else 0.
	u.Weight.W.Zero()
	u.Bias.W.Zero()
	inPer, outPer := inC/groups, outC/groups
	kk := k * k
	for gi := 0; gi < groups; gi++ {
		gw := g.convs[gi].Weight.W // [outPer, inPer*k*k]
		gb := g.convs[gi].Bias.W
		for oc := 0; oc < outPer; oc++ {
			globalOC := gi*outPer + oc
			for ic := 0; ic < inPer; ic++ {
				globalIC := gi*inPer + ic
				for j := 0; j < kk; j++ {
					u.Weight.W.Data[globalOC*(inC*kk)+globalIC*kk+j] = gw.Data[oc*(inPer*kk)+ic*kk+j]
				}
			}
			u.Bias.W.Data[globalOC] = gb.Data[oc]
		}
	}

	x := tensor.RandNormal(r, 1, 2, inC, 6, 6)
	yg := g.Forward(x, true)
	yu := u.Forward(x, true)
	for i := range yu.Data {
		if math.Abs(float64(yg.Data[i]-yu.Data[i])) > 1e-4 {
			t.Fatalf("grouped != block-diagonal at %d: %v vs %v", i, yg.Data[i], yu.Data[i])
		}
	}
}

func TestGroupedConvGradients(t *testing.T) {
	r := rng.New(4)
	g := NewGroupedConv("gc", r, 4, 4, 3, 1, 1, 2, ConvOpts{})
	x := tensor.RandNormal(r, 1, 2, 4, 5, 5)
	checkGradients(t, g, x, true)
}

func TestGroupedConvSingleGroupMatchesConv(t *testing.T) {
	// groups=1 must behave exactly like a plain Conv2D with the same
	// weights.
	r1, r2 := rng.New(5), rng.New(5)
	g := NewGroupedConv("gc", r1, 3, 4, 3, 2, 1, 1, ConvOpts{})
	c := NewConv("c", r2, 3, 4, 3, 2, 1, ConvOpts{})
	// Identical RNG seeds walk identical init streams (one conv each).
	x := tensor.RandNormal(rng.New(6), 1, 2, 3, 7, 7)
	yg := g.Forward(x, true)
	yc := c.Forward(x, true)
	for i := range yc.Data {
		if yg.Data[i] != yc.Data[i] {
			t.Fatalf("groups=1 differs from Conv2D at %d", i)
		}
	}
}

func TestGroupedConvBadGroupsPanics(t *testing.T) {
	defer expectPanic(t, "groups not dividing channels")
	NewGroupedConv("gc", rng.New(1), 3, 4, 3, 1, 1, 2, ConvOpts{})
}
