package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	var l SoftmaxCrossEntropy
	logits := tensor.New(2, 4) // all-zero logits → uniform softmax
	loss := l.Forward(logits, []int{0, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("uniform loss = %v, want ln(4) = %v", loss, want)
	}
	probs := l.Probs()
	for _, p := range probs.Data {
		if math.Abs(float64(p)-0.25) > 1e-6 {
			t.Fatalf("uniform prob = %v", p)
		}
	}
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	var l SoftmaxCrossEntropy
	logits := tensor.FromSlice([]float32{100, 0, 0}, 1, 3)
	loss := l.Forward(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
}

func TestSoftmaxGradientSumsToZero(t *testing.T) {
	var l SoftmaxCrossEntropy
	r := rng.New(1)
	logits := tensor.RandNormal(r, 1, 4, 6)
	l.Forward(logits, []int{0, 1, 2, 3})
	grad := l.Backward()
	// Each row of (softmax − onehot)/N sums to zero.
	for s := 0; s < 4; s++ {
		var sum float64
		for j := 0; j < 6; j++ {
			sum += float64(grad.Data[s*6+j])
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("row %d gradient sums to %v", s, sum)
		}
	}
}

func TestSoftmaxGradientNumeric(t *testing.T) {
	var l SoftmaxCrossEntropy
	r := rng.New(2)
	logits := tensor.RandNormal(r, 1, 3, 5)
	labels := []int{4, 0, 2}
	l.Forward(logits, labels)
	grad := l.Backward()
	const h = 1e-3
	for i := 0; i < logits.Numel(); i++ {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp := l.Forward(logits, labels)
		logits.Data[i] = orig - h
		lm := l.Forward(logits, labels)
		logits.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("logit grad[%d]: analytic %v vs numeric %v", i, grad.Data[i], numeric)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	var l SoftmaxCrossEntropy
	logits := tensor.FromSlice([]float32{1e4, -1e4, 0}, 1, 3)
	loss := l.Forward(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss overflowed: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("extreme confident prediction should have ~0 loss, got %v", loss)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 9, 0, // pred 1
		7, 2, 3, // pred 0
		0, 1, 5, // pred 2
		4, 3, 2, // pred 0
	}, 4, 3)
	acc := Accuracy(logits, []int{1, 0, 0, 1})
	if acc != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", acc)
	}
}

func TestTopKAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		5, 4, 1, 0, // top2 = {0, 1}
		0, 1, 2, 3, // top2 = {3, 2}
	}, 2, 4)
	if got := TopKAccuracy(logits, []int{1, 0}, 2); got != 0.5 {
		t.Fatalf("top-2 accuracy = %v, want 0.5", got)
	}
	if got := TopKAccuracy(logits, []int{1, 0}, 4); got != 1 {
		t.Fatalf("top-4 accuracy = %v, want 1", got)
	}
}

func TestLabelOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "label out of range")
	var l SoftmaxCrossEntropy
	l.Forward(tensor.New(1, 3), []int{7})
}
