package nn

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW activations, lowered onto GEMM via
// im2col. Weights have shape [outC, inC·kh·kw]; bias has shape [outC].
type Conv2D struct {
	name             string
	InC, OutC        int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Weight, Bias     *Param
	useBias          bool

	// cached between Forward and Backward
	x    *tensor.Tensor
	geom tensor.ConvGeom

	// Per-input-shape workspaces (im2col panels, f16 packs), keyed by the
	// spatial dims so a resolution schedule reallocates deterministically
	// on change and reuses slots on return. cur is the slot of the shape
	// Forward last saw, consumed by Backward.
	scratch convCache
	cur     *convScratch

	// F16 compute path: binary16 copies of the GEMM operands, repacked
	// each call (weights change every step; activations every batch). The
	// float32 master weights in Weight are never touched by precision.
	// wHalf is shape-independent and so lives on the layer, not the cache.
	precision tensor.Precision
	wHalf     *tensor.Half // Weight.W packed once per Forward
}

// ConvOpts configures optional Conv2D behaviour.
type ConvOpts struct {
	// NoBias omits the additive bias (standard when BN follows the conv).
	NoBias bool
}

// NewConv2D constructs a square-ish convolution. Weights are He-initialized
// from r (appropriate for the ReLU networks in this repo).
func NewConv2D(name string, r *rng.Rand, inC, outC, kh, kw, strideH, strideW, padH, padW int, opts ConvOpts) *Conv2D {
	c := &Conv2D{
		name: name, InC: inC, OutC: outC,
		KH: kh, KW: kw, StrideH: strideH, StrideW: strideW, PadH: padH, PadW: padW,
		useBias: !opts.NoBias,
	}
	k := inC * kh * kw
	c.Weight = NewParam(name+".weight", outC, k)
	c.Weight.W.FillNormal(r, 0, tensor.HeStd(k))
	c.Bias = NewParam(name+".bias", outC)
	c.Bias.NoDecay = true
	return c
}

// NewConv builds a square-kernel convolution with symmetric stride/padding.
func NewConv(name string, r *rng.Rand, inC, outC, k, stride, pad int, opts ConvOpts) *Conv2D {
	return NewConv2D(name, r, inC, outC, k, k, stride, stride, pad, pad, opts)
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// SetPrecision implements PrecisionLayer.
func (c *Conv2D) SetPrecision(p tensor.Precision) {
	c.precision = p
	if p == tensor.F16 && c.wHalf == nil {
		c.wHalf = tensor.NewHalf()
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.useBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

func (c *Conv2D) geometry(x *tensor.Tensor) tensor.ConvGeom {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s: want NCHW input, got shape %v", c.name, x.Shape))
	}
	if x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: %s: input has %d channels, layer wants %d", c.name, x.Shape[1], c.InC))
	}
	g := tensor.ConvGeom{
		InC: c.InC, InH: x.Shape[2], InW: x.Shape[3],
		KH: c.KH, KW: c.KW,
		StrideH: c.StrideH, StrideW: c.StrideW,
		PadH: c.PadH, PadW: c.PadW,
	}
	g.Check()
	return g
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geometry(x)
	c.x, c.geom = x, g
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	k := c.InC * c.KH * c.KW
	l := outH * outW
	c.cur = c.scratch.at(shapeKey{h: g.InH, w: g.InW}, k*l, c.precision == tensor.F16)
	col := c.cur.col
	y := tensor.New(n, c.OutC, outH, outW)
	imLen := c.InC * g.InH * g.InW
	colM := tensor.FromSlice(col, k, l)
	if c.precision == tensor.F16 {
		tensor.PackHalf(c.wHalf, c.Weight.W)
	}
	for s := 0; s < n; s++ {
		tensor.Im2Col(g, x.Data[s*imLen:(s+1)*imLen], col)
		ym := tensor.FromSlice(y.Data[s*c.OutC*l:(s+1)*c.OutC*l], c.OutC, l)
		if c.precision == tensor.F16 {
			tensor.PackHalf(c.cur.colHalf, colM)
			tensor.GemmHalf(false, false, 1, c.wHalf, c.cur.colHalf, 0, ym)
		} else {
			tensor.Gemm(false, false, 1, c.Weight.W, colM, 0, ym)
		}
	}
	if c.useBias {
		bd := c.Bias.W.Data
		yd := y.Data
		for s := 0; s < n; s++ {
			base := s * c.OutC * l
			for oc := 0; oc < c.OutC; oc++ {
				b := bd[oc]
				row := yd[base+oc*l : base+(oc+1)*l]
				for i := range row {
					row[i] += b
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	g := c.geom
	x := c.x
	n := x.Shape[0]
	outH, outW := g.OutH(), g.OutW()
	k := c.InC * c.KH * c.KW
	l := outH * outW
	col := c.cur.col
	colM := tensor.FromSlice(col, k, l)
	// dcol rides the same shape slot as col: the beta=0 GEMM below rewrites
	// every element before Col2Im reads it.
	dcol := c.cur.dcol
	dcolM := tensor.FromSlice(dcol, k, l)
	dx := tensor.New(x.Shape...)
	imLen := c.InC * g.InH * g.InW

	for s := 0; s < n; s++ {
		dym := tensor.FromSlice(dout.Data[s*c.OutC*l:(s+1)*c.OutC*l], c.OutC, l)
		// dW += dy · colᵀ  (recompute the im2col of the cached input).
		tensor.Im2Col(g, x.Data[s*imLen:(s+1)*imLen], col)
		if c.precision == tensor.F16 {
			// Ride the binary16 kernels on packed dy and col; wHalf still
			// holds this step's weights from Forward. Gradients (G, dcol)
			// stay float32.
			tensor.PackHalf(c.cur.colHalf, colM)
			tensor.PackHalf(c.cur.dyHalf, dym)
			tensor.GemmHalf(false, true, 1, c.cur.dyHalf, c.cur.colHalf, 1, c.Weight.G)
			tensor.GemmHalf(true, false, 1, c.wHalf, c.cur.dyHalf, 0, dcolM)
		} else {
			tensor.Gemm(false, true, 1, dym, colM, 1, c.Weight.G)
			// dx = col2im(Wᵀ · dy)
			tensor.Gemm(true, false, 1, c.Weight.W, dym, 0, dcolM)
		}
		tensor.Col2Im(g, dcol, dx.Data[s*imLen:(s+1)*imLen])
	}
	if c.useBias {
		// Each spatial row reduces through the fixed-tree kernel sum, the
		// same discipline as the gradient reduction in internal/dist.
		gd := c.Bias.G.Data
		for s := 0; s < n; s++ {
			base := s * c.OutC * l
			for oc := 0; oc < c.OutC; oc++ {
				gd[oc] += kernel.PairwiseSum(dout.Data[base+oc*l : base+(oc+1)*l])
			}
		}
	}
	return dx
}
