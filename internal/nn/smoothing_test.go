package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestSmoothingZeroMatchesPlain(t *testing.T) {
	r := rng.New(1)
	logits := tensor.RandNormal(r, 1, 3, 5)
	labels := []int{0, 2, 4}
	plain := &SoftmaxCrossEntropy{}
	smooth := &SoftmaxCrossEntropy{Smoothing: 0}
	if plain.Forward(logits, labels) != smooth.Forward(logits, labels) {
		t.Fatal("Smoothing=0 must match the plain loss")
	}
}

func TestSmoothedLossHigherOnConfidentCorrect(t *testing.T) {
	// A perfectly confident correct prediction has ~0 plain loss but a
	// positive smoothed loss (the uniform component penalizes certainty).
	logits := tensor.FromSlice([]float32{100, 0, 0, 0}, 1, 4)
	plain := &SoftmaxCrossEntropy{}
	if l := plain.Forward(logits, []int{0}); l > 1e-6 {
		t.Fatalf("plain loss = %v", l)
	}
	smooth := &SoftmaxCrossEntropy{Smoothing: 0.1}
	if l := smooth.Forward(logits, []int{0}); l < 1 {
		t.Fatalf("smoothed loss on overconfident logits = %v, want >= 1", l)
	}
}

func TestSmoothedGradientNumeric(t *testing.T) {
	l := &SoftmaxCrossEntropy{Smoothing: 0.2}
	r := rng.New(2)
	logits := tensor.RandNormal(r, 1, 2, 4)
	labels := []int{3, 1}
	l.Forward(logits, labels)
	grad := l.Backward()
	const h = 1e-3
	for i := 0; i < logits.Numel(); i++ {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp := l.Forward(logits, labels)
		logits.Data[i] = orig - h
		lm := l.Forward(logits, labels)
		logits.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("smoothed grad[%d]: analytic %v vs numeric %v", i, grad.Data[i], numeric)
		}
	}
}

func TestSmoothedGradientRowSumsZero(t *testing.T) {
	l := &SoftmaxCrossEntropy{Smoothing: 0.3}
	r := rng.New(3)
	logits := tensor.RandNormal(r, 1, 4, 6)
	l.Forward(logits, []int{0, 1, 2, 3})
	grad := l.Backward()
	for s := 0; s < 4; s++ {
		var sum float64
		for j := 0; j < 6; j++ {
			sum += float64(grad.Data[s*6+j])
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("row %d sums to %v", s, sum)
		}
	}
}

func TestSmoothedOptimumIsSmoothedTarget(t *testing.T) {
	// Minimizing the smoothed loss over logits should drive the softmax
	// toward (1-eps)+eps/K on the label and eps/K elsewhere.
	const k = 4
	const eps = 0.2
	l := &SoftmaxCrossEntropy{Smoothing: eps}
	logits := tensor.New(1, k)
	labels := []int{1}
	for step := 0; step < 4000; step++ {
		l.Forward(logits, labels)
		g := l.Backward()
		logits.Axpy(-1.0, g)
	}
	l.Forward(logits, labels)
	p := l.Probs()
	wantLabel := 1 - eps + eps/k
	if math.Abs(float64(p.Data[1])-wantLabel) > 0.01 {
		t.Fatalf("optimal label prob = %v, want %v", p.Data[1], wantLabel)
	}
	if math.Abs(float64(p.Data[0])-eps/k) > 0.01 {
		t.Fatalf("optimal off-label prob = %v, want %v", p.Data[0], eps/k)
	}
}
