package kernel

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func ramp(h, w int) []float32 {
	p := make([]float32, h*w)
	for i := range p {
		p[i] = float32(i)
	}
	return p
}

// Integer-factor area shrink is the exact mean of each s×s block.
func TestResizeAreaIntegerShrink(t *testing.T) {
	const sh, sw = 24, 16
	src := ramp(sh, sw)
	dst := make([]float32, 12*8)
	ResizeAreaPlane(dst, 12, 8, src, sh, sw)
	for oy := 0; oy < 12; oy++ {
		for ox := 0; ox < 8; ox++ {
			var sum float64
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sum += float64(src[(2*oy+dy)*sw+2*ox+dx])
				}
			}
			want := float32(sum / 4)
			if got := dst[oy*8+ox]; got != want {
				t.Fatalf("dst[%d,%d] = %g, want block mean %g", oy, ox, got, want)
			}
		}
	}
}

// Fractional-coverage area shrink preserves the mean of a constant plane
// exactly and the global mean of any plane to float64 accuracy.
func TestResizeAreaFractional(t *testing.T) {
	const sh, sw = 10, 7
	src := make([]float32, sh*sw)
	for i := range src {
		src[i] = 3.25
	}
	dst := make([]float32, 4*3)
	ResizeAreaPlane(dst, 4, 3, src, sh, sw)
	for i, v := range dst {
		if v != 3.25 {
			t.Fatalf("constant plane not preserved at %d: %g", i, v)
		}
	}

	r := rng.New(7)
	for i := range src {
		src[i] = r.NormFloat32()
	}
	ResizeAreaPlane(dst, 4, 3, src, sh, sw)
	// Output cells tile the source area, so the area-weighted output mean
	// must equal the source mean (each cell has equal area here: 10/4 x 7/3).
	var srcMean, dstMean float64
	for _, v := range src {
		srcMean += float64(v)
	}
	for _, v := range dst {
		dstMean += float64(v)
	}
	srcMean /= float64(len(src))
	dstMean /= float64(len(dst))
	if math.Abs(srcMean-dstMean) > 1e-6 {
		t.Fatalf("mean not preserved: src %g dst %g", srcMean, dstMean)
	}
}

// Bilinear upscale of a linear ramp reproduces the ramp at the sampled
// half-pixel centers; constants stay constant.
func TestResizeBilinear(t *testing.T) {
	const sh, sw = 4, 4
	src := make([]float32, sh*sw)
	for y := 0; y < sh; y++ {
		for x := 0; x < sw; x++ {
			src[y*sw+x] = float32(x) // horizontal ramp
		}
	}
	const dh, dw = 4, 8
	dst := make([]float32, dh*dw)
	ResizeBilinearPlane(dst, dh, dw, src, sh, sw)
	for ox := 0; ox < dw; ox++ {
		// Source x-coordinate of this output column, clamped to taps.
		s := (float64(ox)+0.5)*0.5 - 0.5
		if s < 0 {
			s = 0
		}
		if s > sw-1 {
			s = sw - 1
		}
		want := float32(s)
		if got := dst[ox]; math.Abs(float64(got-want)) > 1e-6 {
			t.Fatalf("col %d = %g, want %g", ox, got, want)
		}
	}

	for i := range src {
		src[i] = -1.5
	}
	ResizeBilinearPlane(dst, dh, dw, src, sh, sw)
	for i, v := range dst {
		if v != -1.5 {
			t.Fatalf("constant plane not preserved at %d: %g", i, v)
		}
	}
}

// The dispatcher picks identity copy / area / bilinear and both paths are
// deterministic: repeated calls produce identical bytes.
func TestResizePlaneDispatchAndDeterminism(t *testing.T) {
	r := rng.New(11)
	src := make([]float32, 24*16)
	for i := range src {
		src[i] = r.NormFloat32()
	}

	same := make([]float32, 24*16)
	ResizePlane(same, 24, 16, src, 24, 16)
	for i := range src {
		if same[i] != src[i] {
			t.Fatalf("identity resize changed element %d", i)
		}
	}

	for _, d := range []struct{ dh, dw int }{{12, 8}, {48, 32}, {17, 9}, {31, 24}} {
		a := make([]float32, d.dh*d.dw)
		b := make([]float32, d.dh*d.dw)
		ResizePlane(a, d.dh, d.dw, src, 24, 16)
		ResizePlane(b, d.dh, d.dw, src, 24, 16)
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%dx%d: resize not bit-deterministic at %d", d.dh, d.dw, i)
			}
		}
	}
}

// Downscale→upscale round-trip of a smooth plane stays close: a sanity
// bound, not a precision claim.
func TestResizeRoundTrip(t *testing.T) {
	const sh, sw = 24, 24
	src := make([]float32, sh*sw)
	for y := 0; y < sh; y++ {
		for x := 0; x < sw; x++ {
			src[y*sw+x] = float32(math.Sin(float64(x)/6) * math.Cos(float64(y)/6))
		}
	}
	small := make([]float32, 12*12)
	ResizePlane(small, 12, 12, src, sh, sw)
	back := make([]float32, sh*sw)
	ResizePlane(back, sh, sw, small, 12, 12)
	var maxErr float64
	for i := range src {
		if e := math.Abs(float64(src[i] - back[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("round-trip error %g too large for a smooth plane", maxErr)
	}
}
