package kernel

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// refGemm is a float64 reference for accuracy bounds.
func refGemm(m, n, k int, alpha float32, at func(i, l int) float32, bt func(l, j int) float32, beta float32, c []float32) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += float64(at(i, l)) * float64(bt(l, j))
			}
			out[i*n+j] = beta*c[i*n+j] + alpha*float32(s)
		}
	}
	return out
}

func approxEq(a, b []float32, tol float64, t *testing.T, label string) {
	t.Helper()
	for i := range a {
		if diff := math.Abs(float64(a[i] - b[i])); diff > tol*(1+math.Abs(float64(b[i]))) {
			t.Fatalf("%s: coord %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func TestGemmNNMatchesReference(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {4, 8, 256}, {9, 6, 300}, {17, 33, 515}} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := randVec(r, m*k), randVec(r, k*n)
		c := randVec(r, m*n)
		got := append([]float32(nil), c...)
		GemmNN(m, n, k, 0.7, a, b, 0.3, got)
		want := refGemm(m, n, k, 0.7,
			func(i, l int) float32 { return a[i*k+l] },
			func(l, j int) float32 { return b[l*n+j] }, 0.3, c)
		approxEq(got, want, 1e-4, t, "GemmNN")
	}
}

func TestGemmTNMatchesReference(t *testing.T) {
	r := rng.New(2)
	// op(A) is the transpose of a [k, M] array; exercise a non-zero column
	// offset, as tensor.Gemm's row-range parallelism produces.
	const M, m, n, k, i0 = 13, 6, 9, 300, 4
	a, b := randVec(r, k*M), randVec(r, k*n)
	c := randVec(r, m*n)
	got := append([]float32(nil), c...)
	GemmTN(m, n, k, 1.5, a, M, i0, b, 0.5, got)
	want := refGemm(m, n, k, 1.5,
		func(i, l int) float32 { return a[l*M+i0+i] },
		func(l, j int) float32 { return b[l*n+j] }, 0.5, c)
	approxEq(got, want, 1e-4, t, "GemmTN")
}

func TestGemmNTMatchesReference(t *testing.T) {
	r := rng.New(3)
	const m, n, k = 7, 11, 400
	a, b := randVec(r, m*k), randVec(r, n*k)
	c := randVec(r, m*n)
	got := append([]float32(nil), c...)
	GemmNT(m, n, k, 0.9, a, b, 1, got)
	want := refGemm(m, n, k, 0.9,
		func(i, l int) float32 { return a[i*k+l] },
		func(l, j int) float32 { return b[j*k+l] }, 1, c)
	approxEq(got, want, 1e-4, t, "GemmNT")
}

func TestGemmTTMatchesReference(t *testing.T) {
	r := rng.New(4)
	const M, m, n, k = 5, 5, 8, 60
	a, b := randVec(r, k*M), randVec(r, n*k)
	c := randVec(r, m*n)
	got := append([]float32(nil), c...)
	GemmTT(m, n, k, 1, a, M, 0, b, k, 0, got)
	want := refGemm(m, n, k, 1,
		func(i, l int) float32 { return a[l*M+i] },
		func(l, j int) float32 { return b[j*k+l] }, 0, c)
	approxEq(got, want, 1e-4, t, "GemmTT")
}

// TestGemmNNRowRangeInvariance: every output row is a pure function of its
// inputs, so computing the block whole or in arbitrary row ranges (the
// caller's parallel decomposition) gives identical bits.
func TestGemmNNRowRangeInvariance(t *testing.T) {
	r := rng.New(5)
	const m, n, k = 13, 17, 300
	a, b := randVec(r, m*k), randVec(r, k*n)
	whole := make([]float32, m*n)
	GemmNN(m, n, k, 1, a, b, 0, whole)
	for _, bounds := range [][]int{{0, 1, m}, {0, 4, 5, m}, {0, 3, 6, 9, 12, m}} {
		chunked := make([]float32, m*n)
		for bi := 0; bi+1 < len(bounds); bi++ {
			lo, hi := bounds[bi], bounds[bi+1]
			GemmNN(hi-lo, n, k, 1, a[lo*k:hi*k], b, 0, chunked[lo*n:hi*n])
		}
		for i := range whole {
			if whole[i] != chunked[i] {
				t.Fatalf("bounds %v: coord %d differs across row chunking", bounds, i)
			}
		}
	}
}

// TestGemmNNZeroRowsSkipped: rows of A that are entirely zero leave beta·C
// untouched (the sparse-activation fast path).
func TestGemmNNZeroRowsSkipped(t *testing.T) {
	const m, n, k = 4, 3, 5
	a := make([]float32, m*k) // all zero
	b := randVec(rng.New(6), k*n)
	c := make([]float32, m*n)
	for i := range c {
		c[i] = float32(i)
	}
	GemmNN(m, n, k, 1, a, b, 1, c)
	for i := range c {
		if c[i] != float32(i) {
			t.Fatalf("zero A perturbed C at %d: %v", i, c[i])
		}
	}
}

// TestGemmNNZeroRowChunkInvariantWithInf: a zero A-row must skip its
// update whatever rows share its register block — 0·Inf would otherwise
// mint a NaN whose appearance depends on the caller's row chunking.
func TestGemmNNZeroRowChunkInvariantWithInf(t *testing.T) {
	const m, n, k = 5, 3, 4
	a := make([]float32, m*k)
	for j := 0; j < k; j++ {
		a[0*k+j] = 1 // row 0 nonzero, rows 1-4 all zero
	}
	b := make([]float32, k*n)
	inf := float32(math.Inf(1))
	for i := range b {
		b[i] = inf
	}
	for _, bounds := range [][]int{{0, m}, {0, 1, m}, {0, 2, 4, m}, {0, 1, 2, 3, 4, m}} {
		c := make([]float32, m*n)
		for bi := 0; bi+1 < len(bounds); bi++ {
			lo, hi := bounds[bi], bounds[bi+1]
			GemmNN(hi-lo, n, k, 1, a[lo*k:hi*k], b, 0, c[lo*n:hi*n])
		}
		for i := 1; i < m; i++ {
			for j := 0; j < n; j++ {
				if v := c[i*n+j]; v != 0 {
					t.Fatalf("bounds %v: zero row %d picked up %v from its block neighbors", bounds, i, v)
				}
			}
		}
		for j := 0; j < n; j++ {
			if c[j] != inf {
				t.Fatalf("bounds %v: nonzero row lost its Inf: %v", bounds, c[j])
			}
		}
	}
}
