package kernel

import (
	"math"
	"sync"
)

// Half-precision (IEEE 754 binary16) storage kernels. Values are *stored* as
// uint16 halves but every arithmetic operation widens to float32 first and
// accumulates in float32 — binary16→binary32 widening is exact, so the only
// precision loss in the f16 compute path is the one rounding applied when a
// tensor is packed to half storage. The GEMM kernels below therefore inherit
// the float32 kernels' determinism contract: per output element the
// accumulation order over l is ascending regardless of blocking, and each C
// row is a pure function of the operands, so results are bit-identical under
// any caller-side row chunking, worker count, or reduction topology.
//
// The conversion scalars use the branch-light "magic number" algorithms
// (round-to-nearest-even on encode, exact on decode, subnormals and NaN
// included); the batched EncodeHalf/DecodeHalf inline the common normal-value
// path and are the entry points every higher layer (tensor packing, the
// compress FP16 codec) funnels through.

// halfSubMagic is 2^-14, the smallest normal binary16 magnitude. Subtracting
// it renormalizes a decoded subnormal exactly; adding 0.5 (its bits appear in
// the encode path as 0x3f000000) lets the FPU's own round-to-nearest-even
// perform the encode-side subnormal shift.
const halfSubMagic = float32(1.0 / (1 << 14))

// Float32ToHalf converts one float32 to its nearest binary16 representation
// (round-to-nearest-even), handling subnormals, infinities and NaN (any NaN
// maps to the quiet NaN 0x7e00, preserving sign).
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	u := bits & 0x7fffffff
	if u >= 0x47800000 { // ≥ 2^16 after rounding: overflow, Inf or NaN
		if u > 0x7f800000 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	}
	if u < 0x38800000 { // < 2^-14: subnormal or zero in half precision
		// Adding 0.5 lands the value's significand in the low bits of
		// 0.5's, pre-shifted exactly where the half subnormal wants them;
		// the float add's own round-to-nearest-even does the rounding.
		v := math.Float32frombits(u) + 0.5
		return sign | uint16(math.Float32bits(v)-0x3f000000)
	}
	// Normal: rebias the exponent and round the 13 dropped mantissa bits to
	// nearest even (0xfff plus the pre-add low bit of the kept mantissa).
	odd := (u >> 13) & 1
	u += 0xc8000fff // ((15-127)<<23) + 0xfff, as unsigned wraparound
	u += odd
	return sign | uint16(u>>13)
}

// HalfToFloat32 converts a binary16 value back to float32 exactly.
func HalfToFloat32(h uint16) float32 {
	o := uint32(h&0x7fff) << 13
	exp := o & 0x0f800000 // the shifted half exponent field
	o += (127 - 15) << 23 // rebias
	switch exp {
	case 0x0f800000: // Inf/NaN: push the exponent on up to 255
		o += (128 - 16) << 23
	case 0: // zero or subnormal: renormalize with one exact float subtract
		o += 1 << 23
		o = math.Float32bits(math.Float32frombits(o) - halfSubMagic)
	}
	return math.Float32frombits(o | uint32(h&0x8000)<<16)
}

// EncodeHalf packs src into binary16 (round-to-nearest-even), one element per
// slot. Lengths must match. The normal-value path is inlined so the batched
// form is substantially faster than a loop over scalar conversions.
func EncodeHalf(dst []uint16, src []float32) {
	if len(dst) != len(src) {
		panic("kernel: EncodeHalf length mismatch")
	}
	for i, v := range src {
		bits := math.Float32bits(v)
		u := bits & 0x7fffffff
		if u-0x38800000 < 0x47800000-0x38800000 { // normal half range
			odd := (u >> 13) & 1
			u += 0xc8000fff
			u += odd
			dst[i] = uint16(u>>13) | uint16(bits>>16)&0x8000
		} else {
			dst[i] = Float32ToHalf(v)
		}
	}
}

// DecodeHalf widens binary16 src into dst exactly. Lengths must match. As
// with EncodeHalf the normal-value path is inlined.
func DecodeHalf(dst []float32, src []uint16) {
	if len(dst) != len(src) {
		panic("kernel: DecodeHalf length mismatch")
	}
	for i, h := range src {
		if e := h & 0x7c00; e != 0 && e != 0x7c00 { // normal
			dst[i] = math.Float32frombits(uint32(h&0x7fff)<<13 + 0x38000000 | uint32(h&0x8000)<<16)
		} else {
			dst[i] = HalfToFloat32(h)
		}
	}
}

// halfScratch pools the decoded-panel buffers of the half GEMM kernels; the
// kernels run per layer per shard per step, so fresh allocations would be
// pure GC churn, exactly as with the pairwise tree's accScratch.
var halfScratch = sync.Pool{New: func() any { return new([]float32) }}

func getPanel(n int) (*[]float32, []float32) {
	tp := halfScratch.Get().(*[]float32)
	s := *tp
	if cap(s) < n {
		s = make([]float32, n)
	}
	return tp, s[:n]
}

func putPanel(tp *[]float32, s []float32) {
	*tp = s
	halfScratch.Put(tp)
}

// GemmNNHalf computes C[m×n] = alpha·A[m×k]·B[k×n] + beta·C where A and B
// are stored as binary16 and C is float32. Per k-tile the B panel is decoded
// once into float32 scratch and the four A row tiles are decoded into a
// packed panel, then the register-accumulating micro-kernel runs on the
// widened values; accumulation per output element is ascending l in float32,
// so the result is bit-identical to GemmNN over the widened operands and
// deterministic under any caller-side row chunking.
func GemmNNHalf(m, n, k int, alpha float32, a, b []uint16, beta float32, c []float32) {
	applyBeta(c[:m*n], beta)
	if n == 0 || k == 0 {
		return
	}
	kcap := gemmKC
	if k < kcap {
		kcap = k
	}
	tp, panel := getPanel(kcap * n)
	defer putPanel(tp, panel)
	var pk [4 * gemmKC]float32
	var ar [gemmKC]float32
	for kt := 0; kt < k; kt += gemmKC {
		kh := kt + gemmKC
		if kh > k {
			kh = k
		}
		kc := kh - kt
		bpanel := panel[:kc*n]
		DecodeHalf(bpanel, b[kt*n:kh*n])
		i := 0
		for ; i+4 <= m; i += 4 {
			// Decode the four rows' tiles and pack them interleaved:
			// pk[4·l' + r] = widen(A[i+r][kt+l']).
			for r := 0; r < 4; r++ {
				DecodeHalf(ar[:kc], a[(i+r)*k+kt:(i+r)*k+kh])
				q := r
				for _, v := range ar[:kc] {
					pk[q] = v
					q += 4
				}
			}
			gemmRowBlock(n, kc, alpha, pk[:4*kc], bpanel, c[i*n:(i+4)*n])
		}
		for ; i < m; i++ {
			DecodeHalf(ar[:kc], a[i*k+kt:i*k+kh])
			crow := c[i*n : (i+1)*n]
			for l, av := range ar[:kc] {
				axpyRow(crow, alpha*av, bpanel[l*n:(l+1)*n])
			}
		}
	}
}

// GemmTNHalf computes C[m×n] = alpha·op(A)·B[k×n] + beta·C over binary16
// storage where op(A) row i is column i0+i of the row-major array a with row
// stride lda, exactly as in GemmTN. Panels decode to float32 as in
// GemmNNHalf; accumulation order matches GemmTN over widened operands.
func GemmTNHalf(m, n, k int, alpha float32, a []uint16, lda, i0 int, b []uint16, beta float32, c []float32) {
	applyBeta(c[:m*n], beta)
	if n == 0 || k == 0 {
		return
	}
	kcap := gemmKC
	if k < kcap {
		kcap = k
	}
	tp, panel := getPanel(kcap * n)
	defer putPanel(tp, panel)
	var pk [4 * gemmKC]float32
	for kt := 0; kt < k; kt += gemmKC {
		kh := kt + gemmKC
		if kh > k {
			kh = k
		}
		kc := kh - kt
		bpanel := panel[:kc*n]
		DecodeHalf(bpanel, b[kt*n:kh*n])
		i := 0
		for ; i+4 <= m; i += 4 {
			// Pack the four columns' tile: pk[4·l' + r] = widen(op(A)[i+r][kt+l']).
			for l := kt; l < kh; l++ {
				off := l*lda + i0 + i
				q := 4 * (l - kt)
				pk[q+0] = HalfToFloat32(a[off])
				pk[q+1] = HalfToFloat32(a[off+1])
				pk[q+2] = HalfToFloat32(a[off+2])
				pk[q+3] = HalfToFloat32(a[off+3])
			}
			gemmRowBlock(n, kc, alpha, pk[:4*kc], bpanel, c[i*n:(i+4)*n])
		}
		for ; i < m; i++ {
			crow := c[i*n : (i+1)*n]
			for l := kt; l < kh; l++ {
				axpyRow(crow, alpha*HalfToFloat32(a[l*lda+i0+i]), bpanel[(l-kt)*n:(l-kt+1)*n])
			}
		}
	}
}

// gemmRowBlock is the shared 4-row micro-kernel of the half GEMM paths: c is
// four contiguous rows of C, pk the packed widened A tile (pk[4·l + r]
// scales row r at step l), bp the decoded kc×n B panel. It keeps exactly the
// GemmNN/GemmTN update structure — per l, the four rows accumulate s_r·B[l]
// with per-row zero skips — but the non-zero fast path runs through
// axpyQuad, the four-row fused update that the amd64 build vectorizes
// four-wide (element-wise IEEE mul/add, so results are bit-identical to the
// scalar loop). Per element the adds happen in ascending l, so every C row
// stays a pure function of the operands under any caller-side chunking.
func gemmRowBlock(n, kc int, alpha float32, pk, bp, c []float32) {
	c0 := c[0*n : 1*n]
	c1 := c[1*n : 2*n]
	c2 := c[2*n : 3*n]
	c3 := c[3*n : 4*n]
	for l := 0; l < kc; l++ {
		pq := pk[4*l : 4*l+4]
		s0 := alpha * pq[0]
		s1 := alpha * pq[1]
		s2 := alpha * pq[2]
		s3 := alpha * pq[3]
		brow := bp[l*n : (l+1)*n]
		if s0 == 0 || s1 == 0 || s2 == 0 || s3 == 0 {
			// Per-row skips, as in GemmNN: a zero row must not touch its
			// output (0·Inf would mint a NaN, 0 + -0 would flip a sign a
			// lone row never sees), or results would vary with chunking.
			axpyRow(c0, s0, brow)
			axpyRow(c1, s1, brow)
			axpyRow(c2, s2, brow)
			axpyRow(c3, s3, brow)
			continue
		}
		axpyQuad(c0, c1, c2, c3, brow, s0, s1, s2, s3)
	}
}

// GemmNTHalf computes C[m×n] = alpha·A[m×k]·op(B) + beta·C over binary16
// storage where op(B) column j is row j of b, as in GemmNT. The whole B
// block and each A row decode to float32 once, then every output element is
// the same fixed-tree pairwise dot product as GemmNT over the widened
// operands — bit-identical to it, and deterministic under any chunking.
func GemmNTHalf(m, n, k int, alpha float32, a, b []uint16, beta float32, c []float32) {
	tb, bf := getPanel(n * k)
	defer putPanel(tb, bf)
	DecodeHalf(bf, b[:n*k])
	ta, af := getPanel(k)
	defer putPanel(ta, af)
	for i := 0; i < m; i++ {
		DecodeHalf(af, a[i*k:(i+1)*k])
		crow := c[i*n : (i+1)*n]
		for j := range crow {
			s := pairwiseDot(af, bf[j*k:(j+1)*k])
			if beta == 0 {
				crow[j] = alpha * s
			} else {
				crow[j] = beta*crow[j] + alpha*s
			}
		}
	}
}

// PairwiseDotHalf returns the fixed-tree pairwise dot product
// Σ widen(x[i])·y[i] for a binary16 x against a float32 y — bit-identical to
// PairwiseDot over the widened x, with the identical tree-shape contract.
func PairwiseDotHalf(x []uint16, y []float32) float32 {
	if len(x) != len(y) {
		panic("kernel: PairwiseDotHalf length mismatch")
	}
	return pairwiseDotHalf(x, y)
}

func pairwiseDotHalf(x []uint16, y []float32) float32 {
	if len(x) <= blockN {
		var buf [blockN]float32
		DecodeHalf(buf[:len(x)], x)
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= len(x); i += 4 {
			s0 += buf[i] * y[i]
			s1 += buf[i+1] * y[i+1]
			s2 += buf[i+2] * y[i+2]
			s3 += buf[i+3] * y[i+3]
		}
		for ; i < len(x); i++ {
			s0 += buf[i] * y[i]
		}
		return (s0 + s1) + (s2 + s3)
	}
	h := splitPoint(len(x))
	return pairwiseDotHalf(x[:h], y[:h]) + pairwiseDotHalf(x[h:], y[h:])
}
