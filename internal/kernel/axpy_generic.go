//go:build !amd64

package kernel

// axpyQuad computes c_r[j] += s_r·b[j] for r = 0..3 over j = 0..len(b)-1 —
// the fused four-row update behind gemmRowBlock. This is the portable scalar
// form; axpy_amd64.s carries a four-wide SSE version that performs the same
// element-wise IEEE multiply and add, so both produce identical bits. All
// scales must be non-zero (the caller routes zero scales through axpyRow's
// skip path); c rows and b must have equal length.
func axpyQuad(c0, c1, c2, c3, b []float32, s0, s1, s2, s3 float32) {
	for j, bv := range b {
		c0[j] += s0 * bv
		c1[j] += s1 * bv
		c2[j] += s2 * bv
		c3[j] += s3 * bv
	}
}
