// Package kernel holds the repository's hot numeric inner loops — the
// float32 summation and GEMM micro-kernels every higher layer (tensor, nn,
// dist, compress) funnels through — plus the per-step phase profiler that
// attributes hot-loop wall time to gemm/im2col/reduce/codec phases.
//
// Two reduction disciplines live here:
//
//   - CanonicalAccumulate — the engine's historical semantics: a strict
//     left-to-right sum in source order with float64 accumulation. It is
//     bit-compatible with the scalar loops it replaced; the speedup comes
//     from restructuring the per-coordinate source loop (a serial float64
//     dependency chain) into blocked row-wise passes the CPU can pipeline.
//
//   - PairwiseSum / PairwiseSumSq / PairwiseDot / PairwiseAccumulate — a
//     fixed-shape pairwise-tree float32 summation with unrolled
//     multi-accumulator base blocks. The tree shape is a pure function of
//     the input length (for the vector sums) or the source count (for
//     Accumulate) — never of worker count, goroutine chunking, or slice
//     position — so results are bit-identical however the surrounding code
//     parallelizes or shards, while the error stays O(log n)·ε instead of
//     the naive sum's O(n)·ε.
//
// Everything in this package is serial and allocation-free on the hot path
// (a small pooled scratch backs the pairwise tree); callers own the
// parallel decomposition and may invoke the kernels concurrently on
// disjoint outputs.
package kernel

import "sync"

// blockN is the pairwise tree's base-case length: blocks this short are
// summed directly with four independent accumulators (breaking the serial
// dependency chain), and longer inputs split at a blockN-aligned midpoint.
// It is part of the tree-shape contract: changing it changes results.
const blockN = 128

// splitPoint returns where a pairwise tree over n > blockN elements splits:
// the left child takes ⌈blocks/2⌉ full base blocks. A pure function of n.
func splitPoint(n int) int {
	blocks := (n + blockN - 1) / blockN
	return (blocks + 1) / 2 * blockN
}

// PairwiseSum returns the fixed-tree pairwise float32 sum of x. The
// summation tree depends only on len(x), so the result is a pure function
// of the values — independent of where the slice sits in a larger buffer
// and of any parallel chunking the caller performs around it.
func PairwiseSum(x []float32) float32 {
	if len(x) <= blockN {
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= len(x); i += 4 {
			s0 += x[i]
			s1 += x[i+1]
			s2 += x[i+2]
			s3 += x[i+3]
		}
		for ; i < len(x); i++ {
			s0 += x[i]
		}
		return (s0 + s1) + (s2 + s3)
	}
	h := splitPoint(len(x))
	return PairwiseSum(x[:h]) + PairwiseSum(x[h:])
}

// PairwiseSumSq returns the fixed-tree pairwise sum of x[i]², with the same
// tree-shape contract as PairwiseSum.
func PairwiseSumSq(x []float32) float32 {
	if len(x) <= blockN {
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= len(x); i += 4 {
			s0 += x[i] * x[i]
			s1 += x[i+1] * x[i+1]
			s2 += x[i+2] * x[i+2]
			s3 += x[i+3] * x[i+3]
		}
		for ; i < len(x); i++ {
			s0 += x[i] * x[i]
		}
		return (s0 + s1) + (s2 + s3)
	}
	h := splitPoint(len(x))
	return PairwiseSumSq(x[:h]) + PairwiseSumSq(x[h:])
}

// PairwiseDot returns the fixed-tree pairwise dot product Σ x[i]·y[i] for
// equal-length slices, with the same tree-shape contract as PairwiseSum.
func PairwiseDot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("kernel: PairwiseDot length mismatch")
	}
	return pairwiseDot(x, y)
}

func pairwiseDot(x, y []float32) float32 {
	if len(x) <= blockN {
		var s0, s1, s2, s3 float32
		i := 0
		for ; i+4 <= len(x); i += 4 {
			s0 += x[i] * y[i]
			s1 += x[i+1] * y[i+1]
			s2 += x[i+2] * y[i+2]
			s3 += x[i+3] * y[i+3]
		}
		for ; i < len(x); i++ {
			s0 += x[i] * y[i]
		}
		return (s0 + s1) + (s2 + s3)
	}
	h := splitPoint(len(x))
	return pairwiseDot(x[:h], y[:h]) + pairwiseDot(x[h:], y[h:])
}

// accScratch pools the temporary rows the pairwise source tree combines
// through; Accumulate runs per bucket per step in the engine's hot
// reduction path, and a fresh allocation there would be pure GC churn.
var accScratch = sync.Pool{New: func() any { return new([]float32) }}

// PairwiseAccumulate sets dst[i] = Σ_s scales[s]·srcs[s][i], combining the
// sources in a fixed pairwise tree over the source index: sources split
// ⌈p/2⌉/⌊p/2⌋ recursively and leaves combine in order. The tree depends
// only on len(srcs), and each coordinate is computed independently, so
// results are bit-identical however the caller chunks the coordinate range
// (parallel workers may call it on disjoint subranges of dst and the
// matching subslices of srcs). A nil scales means unscaled (all ones).
// dst may alias srcs[0]; every source must have len(dst) elements.
func PairwiseAccumulate(dst []float32, srcs [][]float32, scales []float32) {
	if scales != nil && len(scales) != len(srcs) {
		panic("kernel: PairwiseAccumulate needs one scale per source")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("kernel: PairwiseAccumulate source/dst length mismatch")
		}
	}
	pairAcc(dst, srcs, scales)
}

// scaleAt returns the s-th scale, defaulting to exactly 1 (1·x == x
// bitwise, so the nil-scales path is a pure tree sum).
func scaleAt(scales []float32, s int) float32 {
	if scales == nil {
		return 1
	}
	return scales[s]
}

func pairAcc(dst []float32, srcs [][]float32, scales []float32) {
	switch len(srcs) {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		s0, a := scaleAt(scales, 0), srcs[0]
		for i := range dst {
			dst[i] = s0 * a[i]
		}
	case 2:
		s0, s1 := scaleAt(scales, 0), scaleAt(scales, 1)
		a, b := srcs[0], srcs[1]
		for i := range dst {
			dst[i] = s0*a[i] + s1*b[i]
		}
	case 3:
		// Same shape as the general split (⌈3/2⌉ = pair + single).
		s0, s1, s2 := scaleAt(scales, 0), scaleAt(scales, 1), scaleAt(scales, 2)
		a, b, c := srcs[0], srcs[1], srcs[2]
		for i := range dst {
			dst[i] = (s0*a[i] + s1*b[i]) + s2*c[i]
		}
	case 4:
		// Same shape as the general split (pair + pair).
		s0, s1 := scaleAt(scales, 0), scaleAt(scales, 1)
		s2, s3 := scaleAt(scales, 2), scaleAt(scales, 3)
		a, b, c, d := srcs[0], srcs[1], srcs[2], srcs[3]
		for i := range dst {
			dst[i] = (s0*a[i] + s1*b[i]) + (s2*c[i] + s3*d[i])
		}
	default:
		h := (len(srcs) + 1) / 2
		var lhsScales, rhsScales []float32
		if scales != nil {
			lhsScales, rhsScales = scales[:h], scales[h:]
		}
		pairAcc(dst, srcs[:h], lhsScales)
		tp := accScratch.Get().(*[]float32)
		tmp := *tp
		if cap(tmp) < len(dst) {
			tmp = make([]float32, len(dst))
		}
		tmp = tmp[:len(dst)]
		pairAcc(tmp, srcs[h:], rhsScales)
		for i := range dst {
			dst[i] += tmp[i]
		}
		*tp = tmp
		accScratch.Put(tp)
	}
}

// canonBlock is the row-blocking width of the canonical float64 pass: big
// enough to amortize the loop structure, small enough that the float64
// accumulator block lives on the stack and in L1.
const canonBlock = 512

// CanonicalAccumulate sets dst[i] = Σ_s scales[s]·float64(srcs[s][i]) in
// source order with float64 accumulation — the engine's canonical reduction
// semantics, bit-identical to the scalar per-coordinate loop it replaced.
// With nil scales the sum is unweighted and seeded from srcs[0] (matching
// the historical collective, where the root's own value starts the chain);
// with scales it starts from zero and accumulates every source. dst may
// alias srcs[0]; every source must have len(dst) elements.
//
// The restructuring — blocked row-wise passes over a float64 scratch block
// instead of a per-coordinate loop over sources — turns a serial
// float64-add dependency chain of length P per coordinate into independent
// streaming adds, which is where the measured speedup over the old
// canonicalSum comes from.
func CanonicalAccumulate(dst []float32, srcs [][]float32, scales []float64) {
	if scales != nil && len(scales) != len(srcs) {
		panic("kernel: CanonicalAccumulate needs one scale per source")
	}
	if scales == nil && len(srcs) == 0 {
		panic("kernel: CanonicalAccumulate with nil scales needs a seed source")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("kernel: CanonicalAccumulate source/dst length mismatch")
		}
	}
	var acc [canonBlock]float64
	n := len(dst)
	for lo := 0; lo < n; lo += canonBlock {
		hi := lo + canonBlock
		if hi > n {
			hi = n
		}
		blk := acc[:hi-lo]
		start := 0
		if scales == nil {
			seed := srcs[0][lo:hi]
			for j, v := range seed {
				blk[j] = float64(v)
			}
			start = 1
		} else {
			for j := range blk {
				blk[j] = 0
			}
		}
		for s := start; s < len(srcs); s++ {
			row := srcs[s][lo:hi]
			if scales == nil {
				for j, v := range row {
					blk[j] += float64(v)
				}
			} else {
				w := scales[s]
				for j, v := range row {
					blk[j] += w * float64(v)
				}
			}
		}
		out := dst[lo:hi]
		for j := range out {
			out[j] = float32(blk[j])
		}
	}
}
