package kernel

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one hot-loop phase for the profiler.
type Phase int

// The profiled phases, in attribution priority order (highest first): when
// phases overlap across goroutines — a codec transform while workers still
// run GEMM under Config.Overlap — each instant is attributed to the
// highest-priority active phase, so the phase totals never double-count
// wall time.
const (
	PhaseCodec Phase = iota
	PhaseReduce
	PhaseConvert
	PhaseIm2col
	PhaseGemm
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseCodec:
		return "codec"
	case PhaseReduce:
		return "reduce"
	case PhaseConvert:
		return "convert"
	case PhaseIm2col:
		return "im2col"
	case PhaseGemm:
		return "gemm"
	default:
		return "phase?"
	}
}

// prof is the process-global profiler. Profiling is opt-in and off by
// default: StartPhase costs one atomic load when disabled, so the
// instrumentation in tensor and dist is free in normal runs. When enabled,
// every phase transition settles the elapsed time since the previous
// transition onto the highest-priority phase active during it (exclusive
// attribution), which guarantees the per-phase totals of any window sum to
// at most the window's wall time. The state is global — one profiled
// engine at a time; concurrent profiled engines would blend their phases.
var prof struct {
	enabled atomic.Bool
	mu      sync.Mutex
	active  [NumPhases]int
	lastNS  int64
	acc     [NumPhases]int64
}

// profEpoch anchors the profiler's monotonic clock.
var profEpoch = time.Now()

func profNow() int64 { return int64(time.Since(profEpoch)) }

// settle attributes the time since the last transition to the
// highest-priority active phase (idle time is left unattributed) and
// advances the transition clock. Callers hold prof.mu.
func settle(now int64) {
	dt := now - prof.lastNS
	prof.lastNS = now
	if dt <= 0 {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		if prof.active[p] > 0 {
			prof.acc[p] += dt
			return
		}
	}
}

// SetProfiling turns the global profiler on or off. Turning it on resets
// the active-span bookkeeping (spans straddling the toggle are dropped);
// accumulated totals persist until snapshotted, so callers diff snapshots
// rather than reading absolutes.
func SetProfiling(on bool) {
	prof.mu.Lock()
	defer prof.mu.Unlock()
	settle(profNow())
	for p := range prof.active {
		prof.active[p] = 0
	}
	prof.enabled.Store(on)
}

// Span is one active phase interval returned by StartPhase.
type Span struct {
	p  Phase
	on bool
}

// StartPhase opens a phase span on the global profiler. The returned span
// must be closed with End on the same goroutine's exit from the phase
// (typically via defer). When profiling is disabled this is a single
// atomic load.
func StartPhase(p Phase) Span {
	if !prof.enabled.Load() {
		return Span{}
	}
	now := profNow()
	prof.mu.Lock()
	settle(now)
	prof.active[p]++
	prof.mu.Unlock()
	return Span{p: p, on: true}
}

// End closes the span.
func (s Span) End() {
	if !s.on {
		return
	}
	now := profNow()
	prof.mu.Lock()
	settle(now)
	if prof.active[s.p] > 0 { // guard against a toggle mid-span
		prof.active[s.p]--
	}
	prof.mu.Unlock()
}

// ProfileSnapshot settles and returns the cumulative per-phase totals
// together with the profiler clock's current reading. Consumers measure a
// window by diffing two snapshots; using the returned clock as the
// window's wall time guarantees the phase deltas sum to at most it.
func ProfileSnapshot() (acc [NumPhases]int64, nowNS int64) {
	now := profNow()
	prof.mu.Lock()
	settle(now)
	acc = prof.acc
	prof.mu.Unlock()
	return acc, now
}
