package kernel

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// refFloat32ToHalf is the plainly-written round-to-nearest-even conversion
// (the switch-based scalar that used to live in internal/compress) kept here
// as the specification the branch-light kernel encoder must match.
func refFloat32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff
	switch {
	case exp >= 0x1f:
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp <= 0:
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// refHalfToFloat32 is the matching specification decoder.
func refHalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// TestHalfToFloat32Exhaustive checks the decoder against the specification
// for every one of the 65536 binary16 values.
func TestHalfToFloat32Exhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		got := HalfToFloat32(uint16(h))
		want := refHalfToFloat32(uint16(h))
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("half %#04x: decoded %v (%#08x), want %v (%#08x)",
				h, got, math.Float32bits(got), want, math.Float32bits(want))
		}
	}
}

// encodeProbes returns float32 bit patterns that exercise every encoder
// branch: all exactly-representable halves, rounding boundaries around them,
// subnormal/overflow thresholds, ties, specials, and random patterns across
// the full exponent range.
func encodeProbes() []uint32 {
	var probes []uint32
	for h := 0; h < 1<<16; h++ {
		b := math.Float32bits(refHalfToFloat32(uint16(h)))
		// The value itself and its f32 neighbors (rounding boundaries),
		// plus the exact tie pattern 13 bits below the half mantissa.
		probes = append(probes, b, b+1, b-1, b+0x1000, b+0xfff, b+0x1001)
	}
	probes = append(probes,
		0x00000000, 0x80000000, // ±0
		0x7f800000, 0xff800000, // ±Inf
		0x7fc00000, 0xffc00001, 0x7f800001, // NaNs
		0x38800000, 0x387fffff, // 2^-14 and just below
		0x33800000, 0x33800001, 0x337fffff, // around 2^-24 (smallest subnormal tie)
		0x33000000, 0x32ffffff, // around 2^-25 (rounds to zero vs not)
		0x477fefff, 0x477ff000, 0x477ff001, // around 65520 (overflow tie)
		0x47800000, 0x477fffff, // 65536 and just below
	)
	r := rng.New(99)
	for i := 0; i < 1<<20; i++ {
		probes = append(probes, uint32(r.Uint64()))
	}
	return probes
}

func TestFloat32ToHalfMatchesReference(t *testing.T) {
	for _, b := range encodeProbes() {
		f := math.Float32frombits(b)
		got, want := Float32ToHalf(f), refFloat32ToHalf(f)
		if got != want {
			t.Fatalf("encode %v (%#08x): got %#04x, want %#04x", f, b, got, want)
		}
	}
}

// TestHalfRoundTripExhaustive: decode-then-encode restores every non-NaN
// half bit pattern (NaNs collapse to the canonical quiet NaN but stay NaN).
func TestHalfRoundTripExhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		f := HalfToFloat32(uint16(h))
		back := Float32ToHalf(f)
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 { // NaN
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("half NaN %#04x round-tripped to non-NaN %#04x", h, back)
			}
			continue
		}
		if back != uint16(h) {
			t.Fatalf("half %#04x round-tripped to %#04x via %v", h, back, f)
		}
	}
}

// TestBatchedConvertersMatchScalar: the batched fast paths agree with the
// scalar entry points element for element, specials included.
func TestBatchedConvertersMatchScalar(t *testing.T) {
	r := rng.New(7)
	src := make([]float32, 4096)
	for i := range src {
		src[i] = math.Float32frombits(uint32(r.Uint64()))
	}
	src = append(src, 0, float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()), 65504, 65520, 1e-8, -1e-8, halfSubMagic)
	enc := make([]uint16, len(src))
	EncodeHalf(enc, src)
	for i, v := range src {
		if want := Float32ToHalf(v); enc[i] != want {
			t.Fatalf("EncodeHalf[%d] = %#04x, scalar gives %#04x for %v", i, enc[i], want, v)
		}
	}
	dec := make([]float32, len(enc))
	DecodeHalf(dec, enc)
	for i, h := range enc {
		if want := HalfToFloat32(h); math.Float32bits(dec[i]) != math.Float32bits(want) {
			t.Fatalf("DecodeHalf[%d] = %v, scalar gives %v for %#04x", i, dec[i], want, h)
		}
	}
}

// randHalves returns n random binary16 values (widened from normals, so the
// distribution matches packed training tensors).
func randHalves(r *rng.Rand, n int) []uint16 {
	v := make([]uint16, n)
	for i := range v {
		v[i] = Float32ToHalf(r.NormFloat32())
	}
	return v
}

func widen(x []uint16) []float32 {
	f := make([]float32, len(x))
	DecodeHalf(f, x)
	return f
}

func bitsEqual(a, b []float32) int {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}

// TestGemmNNHalfMatchesWidened: the half kernel is bit-identical to the f32
// kernel run on the widened operands — the oracle that pins both accuracy
// and the accumulation-order contract. Geometries cover k below/at/above the
// kc tile, odd k against the tile, single-row C, register-block remainders
// in both m and n, and empty panels.
func TestGemmNNHalfMatchesWidened(t *testing.T) {
	r := rng.New(11)
	for _, dims := range [][3]int{
		{1, 1, 1}, {1, 9, 257}, {4, 8, 256}, {5, 7, 255}, {6, 4, 300},
		{13, 17, 511}, {8, 3, 513}, {3, 5, 64}, {2, 6, 0}, {4, 0, 32}, {0, 5, 9},
	} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := randHalves(r, m*k), randHalves(r, k*n)
		c0 := randVec(r, m*n)
		got := append([]float32(nil), c0...)
		GemmNNHalf(m, n, k, 0.7, a, b, 0.3, got)
		want := append([]float32(nil), c0...)
		GemmNN(m, n, k, 0.7, widen(a), widen(b), 0.3, want)
		if i := bitsEqual(got, want); i >= 0 {
			t.Fatalf("dims %v: coord %d: half %v vs widened %v", dims, i, got[i], want[i])
		}
	}
}

func TestGemmTNHalfMatchesWidened(t *testing.T) {
	r := rng.New(12)
	for _, geo := range [][5]int{
		// {M, m, n, k, i0}: op(A) rows are columns i0.. of a [k, M] array.
		{13, 6, 9, 300, 4}, {8, 4, 4, 256, 0}, {9, 5, 3, 257, 2},
		{4, 1, 7, 511, 3}, {6, 6, 5, 31, 0}, {5, 2, 0, 64, 1}, {7, 3, 6, 0, 0},
	} {
		M, m, n, k, i0 := geo[0], geo[1], geo[2], geo[3], geo[4]
		a, b := randHalves(r, k*M), randHalves(r, k*n)
		c0 := randVec(r, m*n)
		got := append([]float32(nil), c0...)
		GemmTNHalf(m, n, k, 1.5, a, M, i0, b, 0.5, got)
		want := append([]float32(nil), c0...)
		GemmTN(m, n, k, 1.5, widen(a), M, i0, widen(b), 0.5, want)
		if i := bitsEqual(got, want); i >= 0 {
			t.Fatalf("geo %v: coord %d: half %v vs widened %v", geo, i, got[i], want[i])
		}
	}
}

func TestGemmNTHalfMatchesWidened(t *testing.T) {
	r := rng.New(13)
	for _, dims := range [][3]int{
		{7, 11, 400}, {1, 3, 257}, {4, 4, 128}, {5, 2, 515}, {3, 6, 0}, {0, 4, 9},
	} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := randHalves(r, m*k), randHalves(r, n*k)
		c0 := randVec(r, m*n)
		got := append([]float32(nil), c0...)
		GemmNTHalf(m, n, k, 0.9, a, b, 1, got)
		want := append([]float32(nil), c0...)
		GemmNT(m, n, k, 0.9, widen(a), widen(b), 1, want)
		if i := bitsEqual(got, want); i >= 0 {
			t.Fatalf("dims %v: coord %d: half %v vs widened %v", dims, i, got[i], want[i])
		}
	}
}

// TestGemmNNHalfChunkInvariance: arbitrary caller-side row splits (the par
// decomposition) produce identical bits — the half kernel keeps the per-row
// purity contract of the float32 kernels.
func TestGemmNNHalfChunkInvariance(t *testing.T) {
	r := rng.New(14)
	const m, n, k = 13, 17, 300
	a, b := randHalves(r, m*k), randHalves(r, k*n)
	whole := make([]float32, m*n)
	GemmNNHalf(m, n, k, 1, a, b, 0, whole)
	for _, bounds := range [][]int{{0, 1, m}, {0, 4, 5, m}, {0, 3, 6, 9, 12, m}, {0, 7, m}} {
		chunked := make([]float32, m*n)
		for bi := 0; bi+1 < len(bounds); bi++ {
			lo, hi := bounds[bi], bounds[bi+1]
			GemmNNHalf(hi-lo, n, k, 1, a[lo*k:hi*k], b, 0, chunked[lo*n:hi*n])
		}
		if i := bitsEqual(whole, chunked); i >= 0 {
			t.Fatalf("bounds %v: coord %d differs across row chunking", bounds, i)
		}
	}
}

// TestGemmNNHalfZeroRowChunkInvariantWithInf: a zero A-row skips its update
// whatever rows share its register block, exactly as in the f32 kernel —
// 0·Inf must not mint chunking-dependent NaNs in the register-tiled path.
func TestGemmNNHalfZeroRowChunkInvariantWithInf(t *testing.T) {
	const m, n, k = 5, 6, 4
	a := make([]uint16, m*k) // +0 in half is bit pattern 0
	for j := 0; j < k; j++ {
		a[0*k+j] = 0x3c00 // row 0 is ones, rows 1-4 all zero
	}
	b := make([]uint16, k*n)
	for i := range b {
		b[i] = 0x7c00 // +Inf
	}
	inf := float32(math.Inf(1))
	for _, bounds := range [][]int{{0, m}, {0, 1, m}, {0, 2, 4, m}, {0, 1, 2, 3, 4, m}} {
		c := make([]float32, m*n)
		for bi := 0; bi+1 < len(bounds); bi++ {
			lo, hi := bounds[bi], bounds[bi+1]
			GemmNNHalf(hi-lo, n, k, 1, a[lo*k:hi*k], b, 0, c[lo*n:hi*n])
		}
		for i := 1; i < m; i++ {
			for j := 0; j < n; j++ {
				if v := c[i*n+j]; v != 0 {
					t.Fatalf("bounds %v: zero row %d picked up %v from its block neighbors", bounds, i, v)
				}
			}
		}
		for j := 0; j < n; j++ {
			if c[j] != inf {
				t.Fatalf("bounds %v: nonzero row lost its Inf: %v", bounds, c[j])
			}
		}
	}
}

// TestPairwiseDotHalfMatchesWidened pins the dot kernel's tree shape to
// PairwiseDot over the widened operand across base/split lengths.
func TestPairwiseDotHalfMatchesWidened(t *testing.T) {
	r := rng.New(15)
	for _, n := range []int{0, 1, 5, 127, 128, 129, 255, 256, 257, 1000} {
		x := randHalves(r, n)
		y := randVec(r, n)
		got := PairwiseDotHalf(x, y)
		want := PairwiseDot(widen(x), y)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("n=%d: %v vs %v", n, got, want)
		}
	}
}

// BenchmarkHalfConvert compares the batched converters against a loop over
// the specification scalars — the dedup satellite's claim that hoisting the
// conversion into the kernel layer bought measurable speed.
func BenchmarkHalfConvert(b *testing.B) {
	r := rng.New(16)
	src := randVec(r, 1<<16)
	enc := make([]uint16, len(src))
	dec := make([]float32, len(src))
	EncodeHalf(enc, src)
	b.Run("encode/batched", func(b *testing.B) {
		b.SetBytes(int64(4 * len(src)))
		for i := 0; i < b.N; i++ {
			EncodeHalf(enc, src)
		}
	})
	b.Run("encode/scalar-ref", func(b *testing.B) {
		b.SetBytes(int64(4 * len(src)))
		for i := 0; i < b.N; i++ {
			for j, v := range src {
				enc[j] = refFloat32ToHalf(v)
			}
		}
	})
	b.Run("decode/batched", func(b *testing.B) {
		b.SetBytes(int64(4 * len(src)))
		for i := 0; i < b.N; i++ {
			DecodeHalf(dec, enc)
		}
	})
	b.Run("decode/scalar-ref", func(b *testing.B) {
		b.SetBytes(int64(4 * len(src)))
		for i := 0; i < b.N; i++ {
			for j, h := range enc {
				dec[j] = refHalfToFloat32(h)
			}
		}
	})
}
