package kernel

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// refPairwiseSum is the tree-shape specification written as plainly as
// possible: base blocks of blockN summed with four strided accumulators,
// longer inputs split at a blockN-aligned midpoint. The optimized kernel
// must match it bit for bit — this is what pins the fixed-tree contract.
func refPairwiseSum(x []float32) float32 {
	if len(x) <= blockN {
		var s [4]float32
		i := 0
		for ; i+4 <= len(x); i += 4 {
			s[0] += x[i]
			s[1] += x[i+1]
			s[2] += x[i+2]
			s[3] += x[i+3]
		}
		for ; i < len(x); i++ { // the ragged tail rides accumulator 0
			s[0] += x[i]
		}
		return (s[0] + s[1]) + (s[2] + s[3])
	}
	blocks := (len(x) + blockN - 1) / blockN
	h := (blocks + 1) / 2 * blockN
	return refPairwiseSum(x[:h]) + refPairwiseSum(x[h:])
}

// refTreeAt evaluates PairwiseAccumulate's source tree for one coordinate.
func refTreeAt(srcs [][]float32, scales []float32, i int) float32 {
	if len(srcs) == 0 {
		return 0
	}
	if len(srcs) == 1 {
		return scaleAt(scales, 0) * srcs[0][i]
	}
	h := (len(srcs) + 1) / 2
	var ls, rs []float32
	if scales != nil {
		ls, rs = scales[:h], scales[h:]
	}
	return refTreeAt(srcs[:h], ls, i) + refTreeAt(srcs[h:], rs, i)
}

func randVec(r *rng.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = r.NormFloat32()
	}
	return v
}

func TestPairwiseSumMatchesReferenceShape(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 31, 127, 128, 129, 255, 256, 257, 1000, 4096, 10000} {
		x := randVec(r, n)
		if got, want := PairwiseSum(x), refPairwiseSum(x); got != want {
			t.Fatalf("n=%d: PairwiseSum = %v, reference tree = %v", n, got, want)
		}
		xsq := make([]float32, n)
		for i, v := range x {
			xsq[i] = v * v
		}
		if got, want := PairwiseSumSq(x), refPairwiseSum(xsq); got != want {
			t.Fatalf("n=%d: PairwiseSumSq = %v, reference tree = %v", n, got, want)
		}
		y := randVec(r, n)
		xy := make([]float32, n)
		for i := range xy {
			xy[i] = x[i] * y[i]
		}
		if got, want := PairwiseDot(x, y), refPairwiseSum(xy); got != want {
			t.Fatalf("n=%d: PairwiseDot = %v, reference tree = %v", n, got, want)
		}
	}
}

// TestPairwiseSumSliceInvariance: the tree shape depends only on length, so
// the same values summed from any position inside a larger backing array —
// any offset, any spare capacity — give the same bits.
func TestPairwiseSumSliceInvariance(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 100, 129, 777, 5000} {
		x := randVec(r, n)
		want := PairwiseSum(x)
		for _, off := range []int{1, 7, 64, 129} {
			backing := randVec(r, off+n+off)
			copy(backing[off:off+n], x)
			if got := PairwiseSum(backing[off : off+n]); got != want {
				t.Fatalf("n=%d off=%d: sliced sum %v != %v", n, off, got, want)
			}
		}
	}
}

func TestPairwiseSumAccuracy(t *testing.T) {
	r := rng.New(3)
	const n = 1 << 20
	x := randVec(r, n)
	var exact float64
	for _, v := range x {
		exact += float64(v)
	}
	got := float64(PairwiseSum(x))
	// Pairwise error grows O(log n)·ε; allow a generous absolute bound
	// scaled by the L1 mass of the input.
	var l1 float64
	for _, v := range x {
		l1 += math.Abs(float64(v))
	}
	if diff := math.Abs(got - exact); diff > 1e-5*l1 {
		t.Fatalf("pairwise sum drifted from exact: |%v - %v| = %v", got, exact, diff)
	}
}

func TestPairwiseAccumulateMatchesReferenceTree(t *testing.T) {
	r := rng.New(4)
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 16} {
		const n = 300
		srcs := make([][]float32, p)
		scales := make([]float32, p)
		for s := range srcs {
			srcs[s] = randVec(r, n)
			scales[s] = 0.25 + float32(s)
		}
		dst := make([]float32, n)
		PairwiseAccumulate(dst, srcs, scales)
		for i := range dst {
			if want := refTreeAt(srcs, scales, i); dst[i] != want {
				t.Fatalf("p=%d coord %d: %v != reference tree %v", p, i, dst[i], want)
			}
		}
		// nil scales is the unscaled tree.
		PairwiseAccumulate(dst, srcs, nil)
		for i := range dst {
			if want := refTreeAt(srcs, nil, i); dst[i] != want {
				t.Fatalf("p=%d coord %d (unscaled): %v != %v", p, i, dst[i], want)
			}
		}
	}
}

// TestPairwiseAccumulateChunkInvariance: the tree runs over the source
// index per coordinate, so accumulating a range in one call or in many
// arbitrary chunks gives identical bits — what makes the caller's parallel
// chunking (par.ForGrain) irrelevant to the result.
func TestPairwiseAccumulateChunkInvariance(t *testing.T) {
	r := rng.New(5)
	const n, p = 1009, 7
	srcs := make([][]float32, p)
	scales := make([]float32, p)
	for s := range srcs {
		srcs[s] = randVec(r, n)
		scales[s] = 1 / float32(s+1)
	}
	whole := make([]float32, n)
	PairwiseAccumulate(whole, srcs, scales)
	chunked := make([]float32, n)
	for _, bounds := range [][]int{{0, 1, n}, {0, 100, 613, n}, {0, 2048 % n, n}} {
		for b := 0; b+1 < len(bounds); b++ {
			lo, hi := bounds[b], bounds[b+1]
			sub := make([][]float32, p)
			for s := range srcs {
				sub[s] = srcs[s][lo:hi]
			}
			PairwiseAccumulate(chunked[lo:hi], sub, scales)
		}
		for i := range whole {
			if whole[i] != chunked[i] {
				t.Fatalf("bounds %v: coord %d differs after chunked accumulate", bounds, i)
			}
		}
	}
}

func TestPairwiseAccumulateAliasesRoot(t *testing.T) {
	r := rng.New(6)
	const n, p = 500, 5
	srcs := make([][]float32, p)
	for s := range srcs {
		srcs[s] = randVec(r, n)
	}
	want := make([]float32, n)
	PairwiseAccumulate(want, srcs, nil)
	// dst == srcs[0], the collective's in-place root reduction.
	PairwiseAccumulate(srcs[0], srcs, nil)
	for i := range want {
		if srcs[0][i] != want[i] {
			t.Fatalf("coord %d: in-place root %v != out-of-place %v", i, srcs[0][i], want[i])
		}
	}
}

// TestCanonicalAccumulateBitCompat pins CanonicalAccumulate to the scalar
// per-coordinate loops it replaced, in both seeding modes.
func TestCanonicalAccumulateBitCompat(t *testing.T) {
	r := rng.New(7)
	for _, p := range []int{1, 2, 3, 8} {
		const n = 1300 // spans multiple canonBlock rows
		srcs := make([][]float32, p)
		for s := range srcs {
			srcs[s] = randVec(r, n)
		}
		// nil scales: seeded from srcs[0], the historical collective loop.
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			acc := float64(srcs[0][i])
			for s := 1; s < p; s++ {
				acc += float64(srcs[s][i])
			}
			want[i] = float32(acc)
		}
		dst := make([]float32, n)
		CanonicalAccumulate(dst, srcs, nil)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("p=%d coord %d: %v != scalar reference %v", p, i, dst[i], want[i])
			}
		}
		// In-place on the root, as the collective calls it.
		root := append([]float32(nil), srcs[0]...)
		aliased := append([][]float32{root}, srcs[1:]...)
		CanonicalAccumulate(root, aliased, nil)
		for i := range want {
			if root[i] != want[i] {
				t.Fatalf("p=%d coord %d: in-place %v != %v", p, i, root[i], want[i])
			}
		}
		// Weighted: zero-seeded, the engine's shard-weighted loop.
		scales := make([]float64, p)
		for s := range scales {
			scales[s] = float64(s+1) / float64(p)
		}
		for i := 0; i < n; i++ {
			var acc float64
			for s := 0; s < p; s++ {
				acc += scales[s] * float64(srcs[s][i])
			}
			want[i] = float32(acc)
		}
		CanonicalAccumulate(dst, srcs, scales)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("p=%d coord %d (weighted): %v != scalar reference %v", p, i, dst[i], want[i])
			}
		}
	}
}

func TestPairwiseDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PairwiseDot accepted mismatched lengths")
		}
	}()
	PairwiseDot(make([]float32, 3), make([]float32, 4))
}
