package kernel

import (
	"sync"
	"testing"
	"time"
)

func TestProfilerDisabledIsInert(t *testing.T) {
	SetProfiling(false)
	before, _ := ProfileSnapshot()
	sp := StartPhase(PhaseGemm)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	after, _ := ProfileSnapshot()
	if before != after {
		t.Fatalf("disabled profiler accumulated: %v -> %v", before, after)
	}
}

func TestProfilerAttributesPhases(t *testing.T) {
	SetProfiling(true)
	defer SetProfiling(false)
	base, start := ProfileSnapshot()
	sp := StartPhase(PhaseGemm)
	time.Sleep(5 * time.Millisecond)
	sp.End()
	sp = StartPhase(PhaseReduce)
	time.Sleep(3 * time.Millisecond)
	sp.End()
	acc, end := ProfileSnapshot()
	wall := end - start
	gemm := acc[PhaseGemm] - base[PhaseGemm]
	reduce := acc[PhaseReduce] - base[PhaseReduce]
	if gemm < int64(4*time.Millisecond) {
		t.Fatalf("gemm span under-attributed: %v", time.Duration(gemm))
	}
	if reduce < int64(2*time.Millisecond) {
		t.Fatalf("reduce span under-attributed: %v", time.Duration(reduce))
	}
	var total int64
	for p := Phase(0); p < NumPhases; p++ {
		total += acc[p] - base[p]
	}
	if total > wall {
		t.Fatalf("attributed %v exceeds window wall %v", time.Duration(total), time.Duration(wall))
	}
}

// TestProfilerExclusiveAttribution: concurrent spans from many goroutines
// never attribute more total time than the window's wall clock — the
// property the engine's sums-to-wall ProfileStats invariant rests on.
func TestProfilerExclusiveAttribution(t *testing.T) {
	SetProfiling(true)
	defer SetProfiling(false)
	base, start := ProfileSnapshot()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			phase := Phase(g % int(NumPhases))
			for i := 0; i < 50; i++ {
				sp := StartPhase(phase)
				time.Sleep(100 * time.Microsecond)
				sp.End()
			}
		}()
	}
	wg.Wait()
	acc, end := ProfileSnapshot()
	wall := end - start
	var total int64
	for p := Phase(0); p < NumPhases; p++ {
		total += acc[p] - base[p]
	}
	if total > wall {
		t.Fatalf("exclusive attribution violated: %v attributed in a %v window",
			time.Duration(total), time.Duration(wall))
	}
	if total == 0 {
		t.Fatal("nothing attributed despite active spans")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{PhaseGemm: "gemm", PhaseIm2col: "im2col", PhaseReduce: "reduce", PhaseCodec: "codec"} {
		if p.String() != want {
			t.Fatalf("Phase(%d).String() = %q, want %q", p, p, want)
		}
	}
}
