package kernel

// Deterministic plane resampling for the progressive-resolution data path.
//
// Both kernels walk output pixels in row-major order and, per output pixel,
// accumulate source taps in a fixed row-major order into a float64
// accumulator, rounding to float32 exactly once at the store. The result is
// therefore a pure function of (src, source dims, destination dims) — never
// of chunking or caller parallelism — which keeps resized batches inside
// the repo's bit-identity contract: any two runs that resize the same plane
// to the same shape see the same bytes.
//
// ResizeAreaPlane is exact box (pixel-area) averaging: each output pixel
// covers the continuous source rectangle
//
//	[oy·sh/dh, (oy+1)·sh/dh) × [ox·sw/dw, (ox+1)·sw/dw)
//
// and averages source pixels weighted by fractional overlap. For integer
// shrink factors this degenerates to the exact mean of an s×s block. It is
// the right kernel for downscaling (every source pixel contributes).
//
// ResizeBilinearPlane samples at half-pixel-aligned centers
// (align_corners=false): source coordinate (o+0.5)·s/d − 0.5, clamped
// 4-tap interpolation with float64 weights. It is the right kernel for
// upscaling (area degenerates to nearest-neighbour there).
//
// ResizePlane dispatches: identity copy when dims match, area when neither
// dimension grows, bilinear otherwise.

// ResizeAreaPlane box-resamples an sh×sw row-major plane into the dh×dw
// plane dst. dst must have length dh*dw and src length sh*sw; all dims
// must be positive. Accumulation is float64 in row-major source order.
func ResizeAreaPlane(dst []float32, dh, dw int, src []float32, sh, sw int) {
	if dh <= 0 || dw <= 0 || sh <= 0 || sw <= 0 {
		panic("kernel: ResizeAreaPlane dims must be positive")
	}
	if len(dst) < dh*dw || len(src) < sh*sw {
		panic("kernel: ResizeAreaPlane buffer too short")
	}
	if dh == sh && dw == sw {
		copy(dst[:dh*dw], src[:sh*sw])
		return
	}
	scaleY := float64(sh) / float64(dh)
	scaleX := float64(sw) / float64(dw)
	for oy := 0; oy < dh; oy++ {
		y0 := float64(oy) * scaleY
		y1 := float64(oy+1) * scaleY
		iy0, iy1 := spanBounds(y0, y1, sh)
		for ox := 0; ox < dw; ox++ {
			x0 := float64(ox) * scaleX
			x1 := float64(ox+1) * scaleX
			ix0, ix1 := spanBounds(x0, x1, sw)
			var acc, area float64
			for iy := iy0; iy < iy1; iy++ {
				wy := overlap1D(float64(iy), y0, y1)
				row := src[iy*sw:]
				for ix := ix0; ix < ix1; ix++ {
					w := wy * overlap1D(float64(ix), x0, x1)
					acc += w * float64(row[ix])
					area += w
				}
			}
			dst[oy*dw+ox] = float32(acc / area)
		}
	}
}

// spanBounds returns the half-open integer pixel range [i0, i1) covering
// the continuous interval [a, b) within [0, n).
func spanBounds(a, b float64, n int) (int, int) {
	i0 := int(a)
	if i0 < 0 {
		i0 = 0
	}
	i1 := int(b)
	if b > float64(i1) {
		i1++
	}
	if i1 > n {
		i1 = n
	}
	if i1 <= i0 {
		i1 = i0 + 1
	}
	return i0, i1
}

// overlap1D is the length of the intersection of source pixel [i, i+1)
// with the continuous span [a, b).
func overlap1D(i, a, b float64) float64 {
	lo, hi := i, i+1
	if a > lo {
		lo = a
	}
	if b < hi {
		hi = b
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// ResizeBilinearPlane resamples an sh×sw row-major plane into the dh×dw
// plane dst with half-pixel-center bilinear interpolation
// (align_corners=false), edge-clamped. Weights and accumulation are
// float64; each output is rounded to float32 once.
func ResizeBilinearPlane(dst []float32, dh, dw int, src []float32, sh, sw int) {
	if dh <= 0 || dw <= 0 || sh <= 0 || sw <= 0 {
		panic("kernel: ResizeBilinearPlane dims must be positive")
	}
	if len(dst) < dh*dw || len(src) < sh*sw {
		panic("kernel: ResizeBilinearPlane buffer too short")
	}
	if dh == sh && dw == sw {
		copy(dst[:dh*dw], src[:sh*sw])
		return
	}
	scaleY := float64(sh) / float64(dh)
	scaleX := float64(sw) / float64(dw)
	for oy := 0; oy < dh; oy++ {
		sy := (float64(oy)+0.5)*scaleY - 0.5
		y0, fy := tapAt(sy, sh)
		y1 := y0 + 1
		if y1 > sh-1 {
			y1 = sh - 1
		}
		r0 := src[y0*sw:]
		r1 := src[y1*sw:]
		for ox := 0; ox < dw; ox++ {
			sx := (float64(ox)+0.5)*scaleX - 0.5
			x0, fx := tapAt(sx, sw)
			x1 := x0 + 1
			if x1 > sw-1 {
				x1 = sw - 1
			}
			top := (1-fx)*float64(r0[x0]) + fx*float64(r0[x1])
			bot := (1-fx)*float64(r1[x0]) + fx*float64(r1[x1])
			dst[oy*dw+ox] = float32((1-fy)*top + fy*bot)
		}
	}
}

// tapAt clamps a continuous source coordinate to the valid tap range and
// returns the lower tap index and the fractional weight toward the upper.
func tapAt(s float64, n int) (int, float64) {
	if s < 0 {
		return 0, 0
	}
	i := int(s)
	if i > n-1 {
		return n - 1, 0
	}
	return i, s - float64(i)
}

// ResizePlane resamples an sh×sw plane to dh×dw: identity copy at equal
// dims, area averaging when neither dimension grows, bilinear otherwise.
// This is the dispatcher the data layer uses for schedule resizes.
func ResizePlane(dst []float32, dh, dw int, src []float32, sh, sw int) {
	switch {
	case dh == sh && dw == sw:
		copy(dst[:dh*dw], src[:sh*sw])
	case dh <= sh && dw <= sw:
		ResizeAreaPlane(dst, dh, dw, src, sh, sw)
	default:
		ResizeBilinearPlane(dst, dh, dw, src, sh, sw)
	}
}
