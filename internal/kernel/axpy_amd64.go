//go:build amd64

package kernel

// axpyQuad computes c_r[j] += s_r·b[j] for r = 0..3 over j = 0..len(b)-1 —
// the fused four-row update behind gemmRowBlock, implemented four-wide with
// SSE in axpy_amd64.s. MULPS/ADDPS are element-wise IEEE binary32
// operations, so every output bit matches the portable scalar loop in
// axpy_generic.go; only the visitation order of independent j columns
// differs, which no element's result depends on. All scales must be non-zero
// (the caller routes zero scales through axpyRow's skip path); c rows and b
// must have equal length.
//
//go:noescape
func axpyQuad(c0, c1, c2, c3, b []float32, s0, s1, s2, s3 float32)
