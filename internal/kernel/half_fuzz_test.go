package kernel

import (
	"math"
	"math/bits"
	"testing"
)

// FuzzHalfConverters fuzzes the binary16 conversion kernels over arbitrary
// float32 bit patterns and arbitrary half words:
//
//   - encode→decode→encode is idempotent (one rounding, then fixed point),
//   - decode→encode reproduces any non-NaN half exactly (decode is exact,
//     encode of an exactly-representable value is identity), and any NaN
//     half canonicalizes to the quiet NaN 0x7e00 with its sign,
//   - the batched EncodeHalf/DecodeHalf agree with the scalar converters
//     element-wise on every lane, including the non-inlined edge lanes,
//   - no input — NaN payloads, infinities, subnormals, negative zero —
//     panics or produces a non-canonical class.
//
// The committed corpus under testdata/fuzz/FuzzHalfConverters seeds the
// boundary cases (subnormal thresholds, overflow threshold, rounding ties,
// NaN payloads); `go test` replays it on every run, `go test
// -fuzz=FuzzHalfConverters ./internal/kernel` explores from it.
func FuzzHalfConverters(f *testing.F) {
	// Float32 edges: zeros, subnormal/normal/overflow thresholds, rounding
	// ties, infinities, NaN payloads. Half edges ride along in the second
	// argument.
	seeds := []struct {
		bits uint32
		h    uint16
	}{
		{0x00000000, 0x0000}, // +0, +0
		{0x80000000, 0x8000}, // -0, -0
		{0x3f800000, 0x3c00}, // 1.0, 1.0
		{0x33000000, 0x0001}, // 2^-25 (ties to even at zero), min subnormal
		{0x33000001, 0x03ff}, // just above the tie, max subnormal
		{0x387fffff, 0x0400}, // just below 2^-14, min normal
		{0x38800000, 0x7bff}, // 2^-14 exactly, max finite half
		{0x477fefff, 0x7c00}, // just below half overflow, +Inf
		{0x477ff000, 0xfc00}, // rounds to Inf, -Inf
		{0x47800000, 0x7e00}, // 2^16: overflow, canonical quiet NaN
		{0x7f800000, 0x7c01}, // +Inf, signaling-NaN payload
		{0xff800000, 0xfdff}, // -Inf, another NaN payload
		{0x7fc00000, 0x7fff}, // quiet NaN, max NaN payload
		{0x7f800001, 0x8001}, // signaling NaN, -min subnormal
		{0x38801000, 0x3c01}, // rounding tie in the normal range
		{0x38803000, 0x3555}, // odd mantissa tie (rounds up)
	}
	for _, s := range seeds {
		f.Add(s.bits, s.h)
	}
	f.Fuzz(func(t *testing.T, fbits uint32, h uint16) {
		v := math.Float32frombits(fbits)

		// Round-trip idempotence: the first conversion rounds, after that
		// the value is a fixed point.
		h1 := Float32ToHalf(v)
		v1 := HalfToFloat32(h1)
		if h2 := Float32ToHalf(v1); h2 != h1 {
			t.Fatalf("encode not idempotent: %08x -> %04x -> %v -> %04x", fbits, h1, v1, h2)
		}
		// Class preservation: NaN stays NaN, and a finite input can only
		// map to a finite or overflowed half, never NaN.
		vIsNaN := v != v
		rtIsNaN := v1 != v1
		if vIsNaN != rtIsNaN {
			t.Fatalf("NaN class not preserved: %08x -> %04x -> %v", fbits, h1, v1)
		}
		// Sign survives every path: subnormal, overflow to Inf, and the
		// flush-to-zero tail all keep the signed zero/infinity.
		if !vIsNaN && math.Signbit(float64(v)) != math.Signbit(float64(v1)) {
			t.Fatalf("sign lost: %08x (%v) -> %04x (%v)", fbits, v, h1, v1)
		}

		// Decode→encode: exact for every non-NaN half; NaN payloads
		// canonicalize to the signed quiet NaN.
		d := HalfToFloat32(h)
		re := Float32ToHalf(d)
		if h&0x7c00 == 0x7c00 && h&0x03ff != 0 { // NaN payload
			if want := h&0x8000 | 0x7e00; re != want {
				t.Fatalf("NaN half %04x re-encoded to %04x, want canonical %04x", h, re, want)
			}
		} else if re != h {
			t.Fatalf("half %04x -> %v -> %04x, decode/encode not exact", h, d, re)
		}

		// Batched converters agree with the scalar path element-wise. The
		// vector mixes the fuzzed value with rotations of its bits and the
		// decoded half so every lane exercises a different range, and its
		// length (7) is not a multiple of the unrolled widths.
		src := []float32{
			v, -v, d,
			math.Float32frombits(bits.RotateLeft32(fbits, 7)),
			math.Float32frombits(bits.RotateLeft32(fbits, 19)),
			math.Float32frombits(fbits ^ 0x00000fff),
			math.Float32frombits(^fbits),
		}
		enc := make([]uint16, len(src))
		EncodeHalf(enc, src)
		for i, x := range src {
			if want := Float32ToHalf(x); enc[i] != want {
				t.Fatalf("EncodeHalf lane %d: %04x, scalar %04x (input %08x)", i, enc[i], want, math.Float32bits(x))
			}
		}
		dec := make([]float32, len(enc))
		DecodeHalf(dec, enc)
		for i, hb := range enc {
			want := HalfToFloat32(hb)
			if math.Float32bits(dec[i]) != math.Float32bits(want) {
				t.Fatalf("DecodeHalf lane %d: %v (%08x), scalar %v (%08x)", i, dec[i], math.Float32bits(dec[i]), want, math.Float32bits(want))
			}
		}
	})
}
