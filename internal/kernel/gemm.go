package kernel

// gemmKC is the k-tile width of the blocked GEMM kernels: the B (or packed
// A) panel touched by one tile is gemmKC rows, small enough to stay
// cache-resident across the whole row range of the block.
const gemmKC = 256

// GemmNN computes C[m×n] = alpha·A[m×k]·B[k×n] + beta·C over contiguous
// row-major blocks. It is the serial micro-kernel behind tensor.Gemm's
// no-transpose case: the caller parallelizes over disjoint row ranges and
// hands each goroutine its contiguous A/C sub-blocks. Per output row the
// accumulation order over l is ascending regardless of blocking, so every
// row of C is deterministic for any caller-side chunking.
//
// The kernel k-tiles the l loop (the B panel of one tile stays hot across
// all rows of the block) and register-blocks four rows of C at a time, so
// each streamed row of B is reused fourfold.
func GemmNN(m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	applyBeta(c[:m*n], beta)
	if n == 0 {
		return
	}
	for kt := 0; kt < k; kt += gemmKC {
		kh := kt + gemmKC
		if kh > k {
			kh = k
		}
		i := 0
		for ; i+4 <= m; i += 4 {
			a0 := a[(i+0)*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			a2 := a[(i+2)*k : (i+3)*k]
			a3 := a[(i+3)*k : (i+4)*k]
			c0 := c[(i+0)*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			c2 := c[(i+2)*n : (i+3)*n]
			c3 := c[(i+3)*n : (i+4)*n]
			for l := kt; l < kh; l++ {
				s0 := alpha * a0[l]
				s1 := alpha * a1[l]
				s2 := alpha * a2[l]
				s3 := alpha * a3[l]
				brow := b[l*n : (l+1)*n]
				if s0 == 0 || s1 == 0 || s2 == 0 || s3 == 0 {
					// Mixed or all-zero scales: drop to per-row updates so
					// a zero row skips exactly as in the scalar path. Each
					// row's arithmetic must not depend on its block
					// neighbors (0·Inf would mint a NaN a lone row never
					// sees), or results would vary with the caller's row
					// chunking.
					axpyRow(c0, s0, brow)
					axpyRow(c1, s1, brow)
					axpyRow(c2, s2, brow)
					axpyRow(c3, s3, brow)
					continue
				}
				for j, bv := range brow {
					c0[j] += s0 * bv
					c1[j] += s1 * bv
					c2[j] += s2 * bv
					c3[j] += s3 * bv
				}
			}
		}
		for ; i < m; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for l := kt; l < kh; l++ {
				axpyRow(crow, alpha*arow[l], b[l*n:(l+1)*n])
			}
		}
	}
}

// axpyRow computes c += s·b, skipping entirely when s is zero — the one
// per-row update semantics every GemmNN/GemmTN path shares, so a row's
// result never depends on which rows share its register block or on the
// caller's row chunking.
func axpyRow(c []float32, s float32, b []float32) {
	if s == 0 {
		return
	}
	for j, bv := range b {
		c[j] += s * bv
	}
}

// GemmTN computes C[m×n] = alpha·op(A)·B[k×n] + beta·C where op(A) row i is
// column i0+i of the row-major array a with row stride lda (i.e. element
// (i, l) is a[l*lda + i0 + i]). Each k-tile of four A columns is packed
// into a contiguous panel first, so the inner loops run the same
// register-blocked micro-kernel as GemmNN instead of striding through a.
// Accumulation order per output row is ascending l, as in GemmNN.
func GemmTN(m, n, k int, alpha float32, a []float32, lda, i0 int, b []float32, beta float32, c []float32) {
	applyBeta(c[:m*n], beta)
	if n == 0 {
		return
	}
	var pk [4 * gemmKC]float32
	for kt := 0; kt < k; kt += gemmKC {
		kh := kt + gemmKC
		if kh > k {
			kh = k
		}
		i := 0
		for ; i+4 <= m; i += 4 {
			// Pack the four columns' tile: pk[4·l' + r] = op(A)[i+r][kt+l'].
			for l := kt; l < kh; l++ {
				off := l*lda + i0 + i
				q := 4 * (l - kt)
				pk[q+0] = a[off]
				pk[q+1] = a[off+1]
				pk[q+2] = a[off+2]
				pk[q+3] = a[off+3]
			}
			c0 := c[(i+0)*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			c2 := c[(i+2)*n : (i+3)*n]
			c3 := c[(i+3)*n : (i+4)*n]
			for l := kt; l < kh; l++ {
				q := 4 * (l - kt)
				s0 := alpha * pk[q+0]
				s1 := alpha * pk[q+1]
				s2 := alpha * pk[q+2]
				s3 := alpha * pk[q+3]
				brow := b[l*n : (l+1)*n]
				if s0 == 0 || s1 == 0 || s2 == 0 || s3 == 0 {
					// Per-row skips, as in GemmNN: block composition must
					// not leak into any single row's arithmetic.
					axpyRow(c0, s0, brow)
					axpyRow(c1, s1, brow)
					axpyRow(c2, s2, brow)
					axpyRow(c3, s3, brow)
					continue
				}
				for j, bv := range brow {
					c0[j] += s0 * bv
					c1[j] += s1 * bv
					c2[j] += s2 * bv
					c3[j] += s3 * bv
				}
			}
		}
		for ; i < m; i++ {
			crow := c[i*n : (i+1)*n]
			for l := kt; l < kh; l++ {
				axpyRow(crow, alpha*a[l*lda+i0+i], b[l*n:(l+1)*n])
			}
		}
	}
}

// GemmNT computes C[m×n] = alpha·A[m×k]·op(B) + beta·C where op(B) column j
// is row j of the row-major array b (so element (l, j) is b[j*k + l]).
// Both operands of each output element are contiguous, so every element is
// one fixed-tree multi-accumulator dot product (PairwiseDot) — breaking the
// single-accumulator dependency chain of the naive loop while keeping each
// output a pure function of its inputs.
func GemmNT(m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := range crow {
			s := pairwiseDot(arow, b[j*k:(j+1)*k])
			if beta == 0 {
				crow[j] = alpha * s
			} else {
				crow[j] = beta*crow[j] + alpha*s
			}
		}
	}
}

// GemmTT computes C[m×n] = alpha·op(A)·op(B) + beta·C with both operands
// transposed: op(A)(i, l) = a[l*lda + i0 + i], op(B)(l, j) = b[j*ldb + l].
// The doubly-transposed case sits on no hot path (no layer lowers onto
// it), so it keeps the simple strided loop.
func GemmTT(m, n, k int, alpha float32, a []float32, lda, i0 int, b []float32, ldb int, beta float32, c []float32) {
	for i := 0; i < m; i++ {
		crow := c[i*n : (i+1)*n]
		for j := range crow {
			var s float32
			for l := 0; l < k; l++ {
				s += a[l*lda+i0+i] * b[j*ldb+l]
			}
			if beta == 0 {
				crow[j] = alpha * s
			} else {
				crow[j] = beta*crow[j] + alpha*s
			}
		}
	}
}

// applyBeta scales the output block by beta before accumulation: beta == 0
// overwrites (never multiplies pre-existing NaNs), beta == 1 is a no-op.
func applyBeta(c []float32, beta float32) {
	switch beta {
	case 0:
		for j := range c {
			c[j] = 0
		}
	case 1:
	default:
		for j := range c {
			c[j] *= beta
		}
	}
}
