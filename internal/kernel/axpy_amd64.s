//go:build amd64

#include "textflag.h"

// func axpyQuad(c0, c1, c2, c3, b []float32, s0, s1, s2, s3 float32)
//
// Four-row fused axpy: c_r[j] += s_r·b[j]. Each B vector is loaded once and
// reused across the four output rows; the vector ops are element-wise IEEE
// binary32 multiply/add, bit-identical to the scalar fallback. Lengths are
// taken from b (the caller guarantees the c rows match).
TEXT ·axpyQuad(SB), NOSPLIT, $0-136
	MOVQ  c0_base+0(FP), DI
	MOVQ  c1_base+24(FP), SI
	MOVQ  c2_base+48(FP), DX
	MOVQ  c3_base+72(FP), CX
	MOVQ  b_base+96(FP), BX
	MOVQ  b_len+104(FP), AX
	MOVSS s0+120(FP), X4
	MOVSS s1+124(FP), X5
	MOVSS s2+128(FP), X6
	MOVSS s3+132(FP), X7
	SHUFPS $0x00, X4, X4 // broadcast each scale across the four lanes
	SHUFPS $0x00, X5, X5
	SHUFPS $0x00, X6, X6
	SHUFPS $0x00, X7, X7
	CMPQ  AX, $4
	JLT   tail

vec:
	MOVUPS (BX), X0      // four B values, reused by all four rows

	MOVAPS X0, X1
	MULPS  X4, X1
	MOVUPS (DI), X2
	ADDPS  X1, X2
	MOVUPS X2, (DI)

	MOVAPS X0, X1
	MULPS  X5, X1
	MOVUPS (SI), X2
	ADDPS  X1, X2
	MOVUPS X2, (SI)

	MOVAPS X0, X1
	MULPS  X6, X1
	MOVUPS (DX), X2
	ADDPS  X1, X2
	MOVUPS X2, (DX)

	MOVAPS X0, X1
	MULPS  X7, X1
	MOVUPS (CX), X2
	ADDPS  X1, X2
	MOVUPS X2, (CX)

	ADDQ  $16, BX
	ADDQ  $16, DI
	ADDQ  $16, SI
	ADDQ  $16, DX
	ADDQ  $16, CX
	SUBQ  $4, AX
	CMPQ  AX, $4
	JGE   vec

tail:
	TESTQ AX, AX
	JEQ   done

tailloop:
	MOVSS  (BX), X0

	MOVAPS X0, X1
	MULSS  X4, X1
	MOVSS  (DI), X2
	ADDSS  X1, X2
	MOVSS  X2, (DI)

	MOVAPS X0, X1
	MULSS  X5, X1
	MOVSS  (SI), X2
	ADDSS  X1, X2
	MOVSS  X2, (SI)

	MOVAPS X0, X1
	MULSS  X6, X1
	MOVSS  (DX), X2
	ADDSS  X1, X2
	MOVSS  X2, (DX)

	MOVAPS X0, X1
	MULSS  X7, X1
	MOVSS  (CX), X2
	ADDSS  X1, X2
	MOVSS  X2, (CX)

	ADDQ  $4, BX
	ADDQ  $4, DI
	ADDQ  $4, SI
	ADDQ  $4, DX
	ADDQ  $4, CX
	DECQ  AX
	JNE   tailloop

done:
	RET
