package kernel

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// benchShapes are the GEMM geometries the micro models actually feed:
// a conv-lowered panel (outC x outH·outW with k = inC·kh·kw), a square
// reference point, and a fully-connected batch.
var benchShapes = []struct {
	name    string
	m, n, k int
}{
	{"conv-lowered", 32, 256, 27},
	{"square", 256, 256, 256},
	{"fc", 64, 512, 1024},
}

// BenchmarkGemm compares the float32 GEMM against the binary16-storage GEMM
// at the micro-model shapes. The f16 kernels decode panels once and run the
// SSE axpy quad, so they should beat f32 despite the widening — the ratio
// recorded in BENCH_gemm.json is the mixed-precision speedup claim.
func BenchmarkGemm(b *testing.B) {
	for _, sh := range benchShapes {
		r := rng.New(42)
		a32 := make([]float32, sh.m*sh.k)
		b32 := make([]float32, sh.k*sh.n)
		for i := range a32 {
			a32[i] = r.NormFloat32()
		}
		for i := range b32 {
			b32[i] = r.NormFloat32()
		}
		a16 := make([]uint16, len(a32))
		b16 := make([]uint16, len(b32))
		EncodeHalf(a16, a32)
		EncodeHalf(b16, b32)
		c := make([]float32, sh.m*sh.n)
		flops := 2 * int64(sh.m) * int64(sh.n) * int64(sh.k)
		b.Run(fmt.Sprintf("%s/%dx%dx%d/f32", sh.name, sh.m, sh.n, sh.k), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				GemmNN(sh.m, sh.n, sh.k, 1, a32, b32, 0, c)
			}
		})
		b.Run(fmt.Sprintf("%s/%dx%dx%d/f16", sh.name, sh.m, sh.n, sh.k), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				GemmNNHalf(sh.m, sh.n, sh.k, 1, a16, b16, 0, c)
			}
		})
	}
}

// BenchmarkResize times the progressive-resolution resampling kernels on
// the schedule transitions the studies actually run (24→12 shrink, 12→24
// grow) plus an ImageNet-like 224→112 plane (input bytes/sec).
func BenchmarkResize(b *testing.B) {
	shapes := []struct {
		name           string
		sh, sw, dh, dw int
	}{
		{"area", 24, 24, 12, 12},
		{"bilinear", 12, 12, 24, 24},
		{"area", 224, 224, 112, 112},
	}
	r := rng.New(42)
	for _, sh := range shapes {
		src := make([]float32, sh.sh*sh.sw)
		for i := range src {
			src[i] = r.NormFloat32()
		}
		dst := make([]float32, sh.dh*sh.dw)
		b.Run(fmt.Sprintf("%s/%dx%d-to-%dx%d", sh.name, sh.sh, sh.sw, sh.dh, sh.dw), func(b *testing.B) {
			b.SetBytes(4 * int64(sh.sh) * int64(sh.sw))
			for i := 0; i < b.N; i++ {
				ResizePlane(dst, sh.dh, sh.dw, src, sh.sh, sh.sw)
			}
		})
	}
}

// BenchmarkReduction times the two gradient-reduction policies over an
// 8-shard, 256k-coordinate buffer set (input bytes/sec).
func BenchmarkReduction(b *testing.B) {
	const shards, n = 8, 1 << 18
	r := rng.New(7)
	srcs := make([][]float32, shards)
	for s := range srcs {
		srcs[s] = make([]float32, n)
		for i := range srcs[s] {
			srcs[s][i] = r.NormFloat32()
		}
	}
	dst := make([]float32, n)
	b.Run("pairwise-f32", func(b *testing.B) {
		b.SetBytes(int64(shards) * 4 * n)
		for i := 0; i < b.N; i++ {
			PairwiseAccumulate(dst, srcs, nil)
		}
	})
	b.Run("canonical-f64", func(b *testing.B) {
		b.SetBytes(int64(shards) * 4 * n)
		for i := 0; i < b.N; i++ {
			CanonicalAccumulate(dst, srcs, nil)
		}
	})
}
