// Package checkpoint serializes model weights and optimizer state so long
// training runs can stop and resume bit-exactly. The format is a small
// self-describing binary container (magic, version, named float32 sections)
// written with encoding/binary — no external dependencies, stable across
// platforms (little-endian on disk).
//
// Resuming matters for the paper's setting: the 90-epoch runs the authors
// time are hours long even on 2048 nodes, and synchronous SGD requires all
// replicas to restart from the same state. The tests verify that a run
// interrupted and resumed from a checkpoint is bit-identical to an
// uninterrupted one.
//
// Beyond weights, a checkpoint can carry the extra pieces of engine state a
// mixed-precision or faulty compressed run needs to resume exactly:
//
//   - the dynamic loss scaler’s scale and counters
//     (CaptureLossScale/RestoreLossScale) — the scale is part of a
//     mixed-precision trajectory, since it decides which steps overflow;
//
//   - the 1-bit codec's per-slot error-feedback residuals
//     (CaptureOneBit/RestoreOneBit) — without them the first post-resume
//     quantization loses the carried error and every later step diverges
//     from the uninterrupted run;
//
//   - the fault-plan cursor: Checkpoint.Step is the engine's absolute step
//     counter, which keys dist.FaultPlan's deterministic schedule. Pass it
//     as dist.Config.StartStep when rebuilding the engine so the remaining
//     steps roll the same drops, stalls and deaths as the uninterrupted
//     run (and eviction timelines line up under Config.Elastic).
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/opt"
)

// magic identifies checkpoint files; version gates format changes.
const (
	magic   = 0x4c415253 // "LARS"
	version = 1
)

// Section is one named float32 tensor in a checkpoint.
type Section struct {
	Name string
	Data []float32
}

// Checkpoint is an ordered collection of named sections plus a step
// counter, sufficient to restore model + optimizer + schedule position.
type Checkpoint struct {
	Step     int64
	Sections []Section
}

// Add appends a section. Data is referenced, not copied.
func (c *Checkpoint) Add(name string, data []float32) {
	c.Sections = append(c.Sections, Section{Name: name, Data: data})
}

// Find returns the section with the given name, or nil.
func (c *Checkpoint) Find(name string) []float32 {
	for _, s := range c.Sections {
		if s.Name == name {
			return s.Data
		}
	}
	return nil
}

// FromNetwork captures all parameter values of net.
func FromNetwork(net *nn.Network, step int64) *Checkpoint {
	c := &Checkpoint{Step: step}
	for _, p := range net.Params() {
		c.Add("param:"+p.Name, p.W.Data)
	}
	return c
}

// ApplyToNetwork restores parameter values into net. Every parameter must
// be present with the right size.
func (c *Checkpoint) ApplyToNetwork(net *nn.Network) error {
	for _, p := range net.Params() {
		data := c.Find("param:" + p.Name)
		if data == nil {
			return fmt.Errorf("checkpoint: missing parameter %q", p.Name)
		}
		if len(data) != len(p.W.Data) {
			return fmt.Errorf("checkpoint: parameter %q has %d values, model wants %d",
				p.Name, len(data), len(p.W.Data))
		}
		copy(p.W.Data, data)
	}
	return nil
}

// ApplyToReplicas restores the same parameters into every network — the
// serve-side load path, where a pool of replicas must all carry the
// trained weights. Each network must match the checkpoint exactly, as in
// ApplyToNetwork.
func (c *Checkpoint) ApplyToReplicas(nets ...*nn.Network) error {
	for i, net := range nets {
		if err := c.ApplyToNetwork(net); err != nil {
			return fmt.Errorf("checkpoint: replica %d: %w", i, err)
		}
	}
	return nil
}

// oneBitPrefix names the sections carrying 1-bit codec residuals; the
// suffix is the codec slot id.
const oneBitPrefix = "codec1bit:slot:"

// CaptureOneBit appends the codec's per-slot error-feedback residuals as
// sections, one per slot. Pair with Checkpoint.Step (the engine's step
// counter at snapshot time) so a compressed faulty run can resume
// bit-identically: restore the residuals into a fresh codec with
// RestoreOneBit and rebuild the engine with dist.Config.StartStep set.
func (c *Checkpoint) CaptureOneBit(z *dist.OneBitCodec) {
	for _, slot := range z.Slots() {
		c.Add(oneBitPrefix+strconv.Itoa(slot), z.SlotResidual(slot))
	}
}

// RestoreOneBit installs every captured residual section into z. Sections
// with other names are ignored; a checkpoint without codec sections leaves
// z untouched (a run that never quantized has no state to restore).
func (c *Checkpoint) RestoreOneBit(z *dist.OneBitCodec) error {
	for _, s := range c.Sections {
		if !strings.HasPrefix(s.Name, oneBitPrefix) {
			continue
		}
		slot, err := strconv.Atoi(s.Name[len(oneBitPrefix):])
		if err != nil {
			return fmt.Errorf("checkpoint: bad codec section name %q: %w", s.Name, err)
		}
		z.RestoreSlot(slot, s.Data)
	}
	return nil
}

// lossScaleSection names the section carrying the dynamic loss scaler's
// state (see opt.LossScaler.State).
const lossScaleSection = "lossscale:state"

// CaptureLossScale appends the dynamic loss scaler's state — the current
// scale exponent and its overflow/growth counters — so a mixed-precision
// run can resume with the scaler exactly where it left off (the scale value
// affects which future steps overflow, so it is part of the trajectory).
func (c *Checkpoint) CaptureLossScale(s *opt.LossScaler) {
	c.Add(lossScaleSection, s.State())
}

// RestoreLossScale installs a captured scaler state into s. A checkpoint
// without the section leaves s untouched (a full-precision run has no
// scaler state to restore).
func (c *Checkpoint) RestoreLossScale(s *opt.LossScaler) error {
	data := c.Find(lossScaleSection)
	if data == nil {
		return nil
	}
	if err := s.SetState(data); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Write serializes the checkpoint.
func (c *Checkpoint) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := writeU32(magic); err != nil {
		return err
	}
	if err := writeU32(version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.Step); err != nil {
		return err
	}
	if err := writeU32(uint32(len(c.Sections))); err != nil {
		return err
	}
	for _, s := range c.Sections {
		nameBytes := []byte(s.Name)
		if err := writeU32(uint32(len(nameBytes))); err != nil {
			return err
		}
		if _, err := bw.Write(nameBytes); err != nil {
			return err
		}
		if err := writeU32(uint32(len(s.Data))); err != nil {
			return err
		}
		for _, v := range s.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a checkpoint.
func Read(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var u32 uint32
	readU32 := func() (uint32, error) {
		err := binary.Read(br, binary.LittleEndian, &u32)
		return u32, err
	}
	m, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	v, err := readU32()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	c := &Checkpoint{}
	if err := binary.Read(br, binary.LittleEndian, &c.Step); err != nil {
		return nil, err
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxSections = 1 << 20
	if count > maxSections {
		return nil, fmt.Errorf("checkpoint: implausible section count %d", count)
	}
	for i := uint32(0); i < count; i++ {
		nameLen, err := readU32()
		if err != nil {
			return nil, err
		}
		if nameLen > 4096 {
			return nil, fmt.Errorf("checkpoint: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		n, err := readU32()
		if err != nil {
			return nil, err
		}
		data := make([]float32, n)
		raw := make([]byte, 4*int(n))
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		for j := range data {
			data[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
		}
		c.Add(string(name), data)
	}
	return c, nil
}

// Save writes the checkpoint to path atomically (write to temp + rename).
func (c *Checkpoint) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a checkpoint from path.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
