package checkpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestRoundTripBytes(t *testing.T) {
	c := &Checkpoint{Step: 42}
	c.Add("a", []float32{1, 2, 3})
	c.Add("b", []float32{-0.5})
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 || len(got.Sections) != 2 {
		t.Fatalf("roundtrip: step %d sections %d", got.Step, len(got.Sections))
	}
	if got.Sections[0].Name != "a" || got.Sections[0].Data[2] != 3 {
		t.Fatal("section a corrupted")
	}
	if got.Sections[1].Data[0] != -0.5 {
		t.Fatal("section b corrupted")
	}
}

// Property: arbitrary float32 payloads (including NaN bit patterns from the
// uint32 space) survive a write/read cycle bitwise.
func TestRoundTripProperty(t *testing.T) {
	f := func(step int64, bits []uint32) bool {
		data := make([]float32, len(bits))
		for i, b := range bits {
			data[i] = math.Float32frombits(b)
		}
		c := &Checkpoint{Step: step}
		c.Add("x", data)
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Step != step {
			return false
		}
		out := got.Find("x")
		if len(out) != len(data) {
			return false
		}
		for i := range out {
			if math.Float32bits(out[i]) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted as checkpoint")
	}
}

func TestTruncatedRejected(t *testing.T) {
	c := &Checkpoint{Step: 1}
	c.Add("w", make([]float32, 100))
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 12, 20, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	mk := func(seed uint64) *nn.Network {
		return models.NewMicroAlexNet(models.MicroConfig{Classes: 4, InH: 8, Width: 4, Seed: seed})
	}
	src := mk(1)
	dst := mk(2) // different init
	c := FromNetwork(src, 7)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.ApplyToNetwork(dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("param %s differs after restore", sp[i].Name)
			}
		}
	}
}

func TestApplyMissingParam(t *testing.T) {
	net := models.NewMLP(models.MicroConfig{Classes: 2, InC: 1, InH: 2, InW: 2, Width: 2, Seed: 1})
	c := &Checkpoint{}
	if err := c.ApplyToNetwork(net); err == nil {
		t.Fatal("missing parameters must error")
	}
}

func TestApplySizeMismatch(t *testing.T) {
	net := models.NewMLP(models.MicroConfig{Classes: 2, InC: 1, InH: 2, InW: 2, Width: 2, Seed: 1})
	c := FromNetwork(net, 0)
	c.Sections[0].Data = c.Sections[0].Data[:1]
	if err := c.ApplyToNetwork(net); err == nil || !strings.Contains(err.Error(), "values") {
		t.Fatalf("size mismatch not reported: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.lars")
	c := &Checkpoint{Step: 3}
	c.Add("w", []float32{1.5, 2.5})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 3 || got.Find("w")[1] != 2.5 {
		t.Fatal("file roundtrip corrupted")
	}
}

// TestResumeIsBitIdentical is the invariant that makes checkpoints useful
// for the paper's long synchronous runs: (train 2k steps) equals
// (train k, checkpoint, restore, train k) bit-for-bit. Optimizer momentum
// is saved alongside the weights via the velocity sections.
func TestResumeIsBitIdentical(t *testing.T) {
	r := rng.New(3)
	x := tensor.RandNormal(r, 1, 16, 1, 4, 4)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 2
	}
	mk := func(seed uint64) *nn.Network {
		return models.NewMLP(models.MicroConfig{Classes: 2, InC: 1, InH: 4, InW: 4, Width: 2, Seed: seed})
	}
	trainSteps := func(net *nn.Network, o *opt.SGD, steps int) {
		var loss nn.SoftmaxCrossEntropy
		for s := 0; s < steps; s++ {
			logits := net.Forward(x, true)
			loss.Forward(logits, labels)
			net.ZeroGrad()
			net.Backward(loss.Backward())
			o.Step(0.05)
		}
	}

	// Uninterrupted run.
	netA := mk(1)
	optA := opt.NewSGD(netA.Params(), opt.SGDConfig{Momentum: 0.9})
	trainSteps(netA, optA, 20)

	// Interrupted run: 10 steps, checkpoint weights + momentum, restore
	// into a fresh model/optimizer, 10 more steps.
	netB := mk(1)
	optB := opt.NewSGD(netB.Params(), opt.SGDConfig{Momentum: 0.9})
	trainSteps(netB, optB, 10)
	ck := FromNetwork(netB, 10)
	for i := range netB.Params() {
		ck.Add("velocity:"+netB.Params()[i].Name, optB.Velocity(i).Data)
	}
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	netC := mk(99) // fresh, differently seeded
	optC := opt.NewSGD(netC.Params(), opt.SGDConfig{Momentum: 0.9})
	if err := loaded.ApplyToNetwork(netC); err != nil {
		t.Fatal(err)
	}
	for i, p := range netC.Params() {
		v := loaded.Find("velocity:" + p.Name)
		if v == nil {
			t.Fatalf("missing velocity for %s", p.Name)
		}
		copy(optC.Velocity(i).Data, v)
	}
	trainSteps(netC, optC, 10)

	pa, pc := netA.Params(), netC.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pc[i].W.Data[j] {
				t.Fatalf("resumed run diverged at %s[%d]: %v vs %v",
					pa[i].Name, j, pc[i].W.Data[j], pa[i].W.Data[j])
			}
		}
	}
}

// TestFaultyCompressedRunResumesBitIdentical is the engine-state round
// trip: a run with 1-bit compression (stateful error feedback) and a
// deterministic fault plan is interrupted mid-flight, its codec residuals
// and fault-plan cursor checkpointed, and the resumed run must match the
// uninterrupted one bit for bit — both the reduced values (which the
// residuals feed) and the per-step recovery schedule (which the step
// cursor keys).
func TestFaultyCompressedRunResumesBitIdentical(t *testing.T) {
	r := rng.New(7)
	x := tensor.RandNormal(r, 1, 24, 1, 4, 4)
	labels := make([]int, 24)
	for i := range labels {
		labels[i] = i % 3
	}
	mk := func(seed uint64) *nn.Network {
		return models.NewMLP(models.MicroConfig{Classes: 3, InC: 1, InH: 4, InW: 4, Width: 2, Seed: seed})
	}
	newEngine := func(codec *dist.OneBitCodec, startStep int64) *dist.Engine {
		replicas := []*nn.Network{mk(1), mk(2), mk(3)}
		return dist.NewEngine(dist.Config{
			Algo:        dist.Tree,
			Shards:      3,
			BucketElems: 40, // several buckets, several codec slots
			Codec:       codec,
			Faults:      &dist.FaultPlan{Seed: 11, DropRate: 0.4, StallRate: 0.3},
			StartStep:   startStep,
		}, replicas)
	}
	step := func(e *dist.Engine, o *opt.SGD) dist.CommStats {
		if _, err := e.ComputeGradient(x, labels); err != nil {
			t.Fatal(err)
		}
		o.Step(0.05)
		if err := e.BroadcastWeights(); err != nil {
			t.Fatal(err)
		}
		return e.StepStats()
	}

	const total, cut = 8, 4

	// Uninterrupted reference: weights and per-step schedules of all steps.
	refCodec := dist.NewOneBitCodec()
	ref := newEngine(refCodec, 0)
	refOpt := opt.NewSGD(ref.Master().Params(), opt.SGDConfig{Momentum: 0.9})
	var refStats []dist.CommStats
	for s := 0; s < total; s++ {
		refStats = append(refStats, step(ref, refOpt))
	}

	// Interrupted run: cut steps, then snapshot weights + optimizer
	// velocity + codec residuals + the step cursor.
	codecB := dist.NewOneBitCodec()
	runB := newEngine(codecB, 0)
	optB := opt.NewSGD(runB.Master().Params(), opt.SGDConfig{Momentum: 0.9})
	for s := 0; s < cut; s++ {
		step(runB, optB)
	}
	ck := FromNetwork(runB.Master(), cut)
	for i, p := range runB.Master().Params() {
		ck.Add("velocity:"+p.Name, optB.Velocity(i).Data)
	}
	ck.CaptureOneBit(codecB)
	runB.Close()
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Resume: fresh replicas, restored weights/velocity/residuals, and the
	// engine's step counter at the checkpointed cursor so the remaining
	// fault rolls line up.
	codecC := dist.NewOneBitCodec()
	if err := loaded.RestoreOneBit(codecC); err != nil {
		t.Fatal(err)
	}
	runC := newEngine(codecC, loaded.Step)
	defer runC.Close()
	if err := loaded.ApplyToNetwork(runC.Master()); err != nil {
		t.Fatal(err)
	}
	optC := opt.NewSGD(runC.Master().Params(), opt.SGDConfig{Momentum: 0.9})
	for i, p := range runC.Master().Params() {
		v := loaded.Find("velocity:" + p.Name)
		if v == nil {
			t.Fatalf("missing velocity for %s", p.Name)
		}
		copy(optC.Velocity(i).Data, v)
	}
	if err := runC.BroadcastWeights(); err != nil { // push restored weights to all replicas
		t.Fatal(err)
	}
	for s := cut; s < total; s++ {
		got := step(runC, optC)
		if got != refStats[s] {
			t.Fatalf("step %d schedule diverged after resume: %+v vs %+v", s, got, refStats[s])
		}
	}
	pa, pc := ref.Master().Params(), runC.Master().Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pc[i].W.Data[j] {
				t.Fatalf("resumed faulty run diverged at %s[%d]: %v vs %v",
					pa[i].Name, j, pc[i].W.Data[j], pa[i].W.Data[j])
			}
		}
	}
	ref.Close()

	// Negative control: resuming without the residuals (fresh codec state)
	// must NOT reproduce the uninterrupted run — the carried error is real
	// state, which is why the checkpoint captures it.
	codecD := dist.NewOneBitCodec()
	runD := newEngine(codecD, loaded.Step)
	defer runD.Close()
	if err := loaded.ApplyToNetwork(runD.Master()); err != nil {
		t.Fatal(err)
	}
	optD := opt.NewSGD(runD.Master().Params(), opt.SGDConfig{Momentum: 0.9})
	for i, p := range runD.Master().Params() {
		copy(optD.Velocity(i).Data, loaded.Find("velocity:"+p.Name))
	}
	if err := runD.BroadcastWeights(); err != nil {
		t.Fatal(err)
	}
	for s := cut; s < total; s++ {
		step(runD, optD)
	}
	same := true
	pd := runD.Master().Params()
	for i := range pc {
		for j := range pc[i].W.Data {
			if pc[i].W.Data[j] != pd[i].W.Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("dropping the codec residuals changed nothing — the capture is vacuous")
	}
}

// TestLossScaleRoundTrip: the scaler section survives serialization and
// restores the scaler to the exact scale and counters, and a checkpoint
// without the section leaves the target scaler untouched.
func TestLossScaleRoundTrip(t *testing.T) {
	s := opt.NewLossScaler(4096, 2)
	p := nn.NewParam("w", 8)
	p.G.Data[3] = float32(math.Inf(1))
	s.Update([]*nn.Param{p}) // overflow: halve to 2048
	p.G.Data[3] = 1e-3
	s.Update([]*nn.Param{p})
	s.Update([]*nn.Param{p}) // growth interval reached: back to 4096

	c := &Checkpoint{Step: 3}
	c.CaptureLossScale(s)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.NewLossScaler(0, 2)
	if err := got.RestoreLossScale(r); err != nil {
		t.Fatal(err)
	}
	if r.Scale() != s.Scale() || r.Stats() != s.Stats() {
		t.Fatalf("restored scaler %+v, want %+v", r.Stats(), s.Stats())
	}

	// No section: the scaler keeps its fresh state.
	fresh := opt.NewLossScaler(0, 2)
	want := fresh.Stats()
	if err := (&Checkpoint{}).RestoreLossScale(fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats() != want {
		t.Fatal("empty checkpoint modified the scaler")
	}

	// A corrupt section surfaces as an error.
	bad := &Checkpoint{}
	bad.Add("lossscale:state", []float32{99, 0, 0, 0})
	if err := bad.RestoreLossScale(opt.NewLossScaler(0, 2)); err == nil {
		t.Fatal("out-of-range scale state accepted")
	}
}
