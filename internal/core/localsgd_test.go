package core

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// localBase returns the shared recipe of the local-SGD trainer tests:
// 4 workers on the tiny task, 2 epochs of batch 64 (8 steps).
func localBase() Config {
	return Config{
		Model: mlpFactory(4), Workers: 4, Batch: 64, Epochs: 2,
		Method: BaselineSGD, BaseLR: 0.1, Seed: 11,
	}
}

// TestLocalSGDSyncEveryOneBitIdentical: SyncEvery=1 is the synchronous
// path — setting it must not perturb a single bit of the trajectory, across
// algorithms, hierarchy, overlap, reduction policy and storage precision.
func TestLocalSGDSyncEveryOneBitIdentical(t *testing.T) {
	ds := tinyDataset()
	hier := dist.NewHierarchy(2, 2)
	grid := []struct {
		name string
		mut  func(*Config)
	}{
		{"central", func(c *Config) { c.Algo = dist.Central }},
		{"tree", func(c *Config) { c.Algo = dist.Tree }},
		{"ring-overlap", func(c *Config) { c.Algo = dist.Ring; c.Overlap = true; c.Bucket = 16 }},
		{"hier", func(c *Config) { c.Topology = &hier }},
		{"pairwise", func(c *Config) { c.Algo = dist.Ring; c.Reduction = dist.PairwiseF32 }},
		{"f16", func(c *Config) { c.Algo = dist.Ring; c.Precision = tensor.F16 }},
	}
	for _, g := range grid {
		t.Run(g.name, func(t *testing.T) {
			base := localBase()
			g.mut(&base)
			withH := base
			withH.SyncEvery = 1
			a, err := Train(base, ds)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Train(withH, ds)
			if err != nil {
				t.Fatal(err)
			}
			if a.FinalLoss != b.FinalLoss || a.TestAcc != b.TestAcc {
				t.Fatalf("SyncEvery=1 perturbed the run: (%v,%v) vs (%v,%v)",
					b.FinalLoss, b.TestAcc, a.FinalLoss, a.TestAcc)
			}
			for e := range a.History {
				if a.History[e].TrainLoss != b.History[e].TrainLoss {
					t.Fatalf("epoch %d: %v vs %v", e, b.History[e].TrainLoss, a.History[e].TrainLoss)
				}
			}
			if a.Comm != b.Comm {
				t.Fatalf("SyncEvery=1 changed the schedule: %+v vs %+v", b.Comm, a.Comm)
			}
		})
	}
}

// TestLocalSGDNegativeControl: H=4 takes genuinely different steps — if the
// local path quietly fell back to every-step synchronization, the
// divergence study would be measuring nothing.
func TestLocalSGDNegativeControl(t *testing.T) {
	ds := tinyDataset()
	sync := localBase()
	loc := localBase()
	loc.SyncEvery = 4
	a, err := Train(sync, ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(loc, ds)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss == b.FinalLoss {
		t.Fatalf("H=4 reproduced the synchronous loss %v exactly — local steps are not local", a.FinalLoss)
	}
	if b.Diverged {
		t.Fatal("H=4 diverged on the tiny task")
	}
}

// TestLocalSGDDeterministic: the local path keeps the repo's determinism
// contract — reruns are bitwise identical.
func TestLocalSGDDeterministic(t *testing.T) {
	ds := tinyDataset()
	cfg := localBase()
	cfg.SyncEvery = 4
	cfg.Algo = dist.Ring
	a, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss || a.TestAcc != b.TestAcc || a.Comm != b.Comm {
		t.Fatalf("non-deterministic local run: (%v,%v,%+v) vs (%v,%v,%+v)",
			a.FinalLoss, a.TestAcc, a.Comm, b.FinalLoss, b.TestAcc, b.Comm)
	}
}

// TestLocalSGDLedgerAndClosedForm: the trainer surfaces the engine's
// step/round ledger, and the run's measured counters (minus the
// construction broadcast) match comm.ExpectedLocalSGDStats exactly.
func TestLocalSGDLedgerAndClosedForm(t *testing.T) {
	ds := tinyDataset()
	cfg := localBase()
	cfg.SyncEvery = 4
	cfg.Algo = dist.Ring
	res, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	steps := res.Iterations // 2 epochs x 4 batches
	if res.LocalSGD.LocalSteps != steps {
		t.Fatalf("ledger counts %d local steps for %d iterations", res.LocalSGD.LocalSteps, steps)
	}
	if want := comm.LocalSGDSyncRounds(steps, 4); res.LocalSGD.SyncRounds != want {
		t.Fatalf("%d sync rounds, want %d", res.LocalSGD.SyncRounds, want)
	}
	nelems := 0
	for _, p := range cfg.Model(1).Params() {
		nelems += p.Numel()
	}
	want := comm.ExpectedLocalSGDStats(dist.Ring, cfg.Workers, 4, steps, nelems, 0, nil)
	want.Add(dist.BroadcastSchedule(dist.Ring, cfg.Workers, 4*int64(nelems))) // construction sync
	if res.Comm != want {
		t.Fatalf("measured %+v, closed form %+v", res.Comm, want)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("local SGD stopped learning: accuracy %v", res.TestAcc)
	}
}

// TestLocalSGDHierTierComm: the hierarchical trainer's per-tier counters
// match the hierarchical closed form, intra rounds and all.
func TestLocalSGDHierTierComm(t *testing.T) {
	ds := tinyDataset()
	hier := dist.NewHierarchy(2, 2)
	cfg := localBase()
	cfg.Topology = &hier
	cfg.SyncEvery = 4
	cfg.IntraSyncEvery = 2
	res, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	nelems := 0
	for _, p := range cfg.Model(1).Params() {
		nelems += p.Numel()
	}
	want := comm.ExpectedLocalSGDTierStats(hier, 4, 2, res.Iterations, nelems, 0, nil)
	init := dist.HierBroadcastSchedule(hier, 4*int64(nelems)) // construction sync
	want.Add(init)
	if res.TierComm != want {
		t.Fatalf("measured tiers %+v, closed form %+v", res.TierComm, want)
	}
	if res.TierComm.Total() != res.Comm {
		t.Fatalf("tier split %+v does not sum to %+v", res.TierComm, res.Comm)
	}
	if want := comm.LocalSGDIntraRounds(res.Iterations, 4, 2); res.LocalSGD.IntraRounds != want {
		t.Fatalf("%d intra rounds, want %d", res.LocalSGD.IntraRounds, want)
	}
}

// TestLocalSGDF16Trains: the F16 storage path composes with local mode
// (unscaled — the ledger runs, the loss stays finite, no scaler activity).
func TestLocalSGDF16Trains(t *testing.T) {
	ds := tinyDataset()
	cfg := localBase()
	cfg.SyncEvery = 2
	cfg.Precision = tensor.F16
	res, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || math.IsNaN(res.FinalLoss) {
		t.Fatalf("F16 local run diverged: loss %v", res.FinalLoss)
	}
	if res.Scale != (Result{}).Scale {
		t.Fatalf("local mode engaged the loss scaler: %+v", res.Scale)
	}
	if res.LocalSGD.SyncRounds != res.Iterations/2 {
		t.Fatalf("%d sync rounds for %d steps at H=2", res.LocalSGD.SyncRounds, res.Iterations)
	}
}

// TestLocalSGDRejectsIncompatibleConfigs pins the trainer-level contract:
// gradient accumulation and dynamic loss scaling need the master-optimizer
// barrier local mode removes.
func TestLocalSGDRejectsIncompatibleConfigs(t *testing.T) {
	ds := tinyDataset()
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		Train(cfg, ds) //nolint:errcheck
	}
	micro := localBase()
	micro.SyncEvery = 2
	micro.MicroBatch = 16
	mustPanic("MicroBatch", micro)
	scaled := localBase()
	scaled.SyncEvery = 2
	scaled.LossScale = 1024
	mustPanic("LossScale", scaled)
}
