package core

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// resolutionDataset is native 24x24 so the schedule can halve to 12x12 and
// the micro-convnet (two stride-2 stages + GAP) still has room to pool.
func resolutionDataset() *data.Synth {
	return data.GenerateSynth(data.SynthConfig{
		Classes: 4, TrainSize: 128, TestSize: 64,
		C: 3, H: 24, W: 24, Noise: 0.25, MaxShift: 1, Flip: false, Seed: 7,
	})
}

// convNetFactory builds the GAP-headed all-conv micro model: its parameter
// count is resolution-invariant (the schedule's precondition) and it has no
// batch norm or dropout, so cross-worker bit-identity is attainable.
func convNetFactory(width int) func(uint64) *nn.Network {
	return func(seed uint64) *nn.Network {
		return models.NewMicroConvNet(models.MicroConfig{
			Classes: 4, InC: 3, InH: 24, InW: 24, Width: width, Seed: seed,
		})
	}
}

func parseSched(t *testing.T, s string) *data.ResolutionSchedule {
	t.Helper()
	sched, err := data.ParseResolutionSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func historiesBitIdentical(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if len(ref.History) != len(got.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(ref.History), len(got.History))
	}
	for e := range ref.History {
		a, b := ref.History[e], got.History[e]
		if a.TrainLoss != b.TrainLoss {
			t.Fatalf("%s: epoch %d loss %v differs bitwise from reference %v", label, e, b.TrainLoss, a.TrainLoss)
		}
		if !(math.IsNaN(a.TestAcc) && math.IsNaN(b.TestAcc)) && a.TestAcc != b.TestAcc {
			t.Fatalf("%s: epoch %d accuracy %v differs bitwise from reference %v", label, e, b.TestAcc, a.TestAcc)
		}
		if a.ResH != b.ResH || a.ResW != b.ResW {
			t.Fatalf("%s: epoch %d trained at %dx%d, reference at %dx%d — replicas not in lockstep",
				label, e, b.ResH, b.ResW, a.ResH, a.ResW)
		}
	}
	if ref.FinalLoss != got.FinalLoss || ref.TestAcc != got.TestAcc {
		t.Fatalf("%s: final results differ: (%v,%v) vs (%v,%v)",
			label, got.FinalLoss, got.TestAcc, ref.FinalLoss, ref.TestAcc)
	}
}

// TestProgressiveResolutionGridBitIdentical is the dynamic-shape acceptance
// grid: a P=4 run that switches resolution mid-training (12x12 for epoch 0,
// native 24x24 after) reproduces the P=1 trajectory bit-for-bit across
// central/tree/ring/hierarchical topologies and overlap on/off, at both
// precisions. Every replica derives the epoch's (h,w) from the same
// schedule, and batches are resized before dispatch, so physical
// decomposition stays invisible to the numerics even while shapes change.
func TestProgressiveResolutionGridBitIdentical(t *testing.T) {
	ds := resolutionDataset()
	hier := dist.NewHierarchy(2, 2)
	sched := parseSched(t, "12x12@0-0,24x24@1+")
	run := func(p tensor.Precision, workers int, algo dist.Algorithm, topo *dist.Hierarchy, bucket int, overlap bool) *Result {
		res, err := Train(Config{
			Model: convNetFactory(4), Workers: workers, Shards: 4,
			Algo: algo, Topology: topo, Bucket: bucket, Overlap: overlap,
			Precision: p, Resolutions: sched,
			Batch: 64, Epochs: 3, Method: LARSWarmup,
			BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, p := range []tensor.Precision{tensor.F32, tensor.F16} {
		ref := run(p, 1, dist.Ring, nil, 0, false)
		if ref.Diverged {
			t.Fatalf("%s reference run diverged", p)
		}
		if got := [2]int{ref.History[0].ResH, ref.History[0].ResW}; got != [2]int{12, 12} {
			t.Fatalf("%s: epoch 0 trained at %v, want 12x12", p, got)
		}
		for e := 1; e < len(ref.History); e++ {
			if ref.History[e].ResH != 24 || ref.History[e].ResW != 24 {
				t.Fatalf("%s: epoch %d trained at %dx%d, want 24x24",
					p, e, ref.History[e].ResH, ref.History[e].ResW)
			}
		}
		for _, tc := range []struct {
			label string
			algo  dist.Algorithm
			topo  *dist.Hierarchy
		}{
			{"central", dist.Central, nil},
			{"tree", dist.Tree, nil},
			{"ring", dist.Ring, nil},
			{"hier 2x2", dist.Tree, &hier},
		} {
			for _, overlap := range []bool{false, true} {
				label := p.String() + " P=4 " + tc.label
				bucket := 0
				if overlap {
					label += " overlap"
					bucket = 33
				}
				historiesBitIdentical(t, label, ref, run(p, 4, tc.algo, tc.topo, bucket, overlap))
			}
		}
	}
}

// TestProgressiveResolutionNegativeControl proves the schedule reaches the
// numerics: constant 12x12 and constant 24x24 runs from the same seed must
// produce different trajectories, and the progressive run must match
// neither baseline bit-for-bit.
func TestProgressiveResolutionNegativeControl(t *testing.T) {
	ds := resolutionDataset()
	run := func(sched *data.ResolutionSchedule) *Result {
		res, err := Train(Config{
			Model: convNetFactory(4), Resolutions: sched,
			Batch: 64, Epochs: 3, Method: LARSWarmup,
			BaseLR: 0.1, WarmupEpochs: 1, Trust: 0.05, Seed: 9,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	low := run(parseSched(t, "12x12"))
	native := run(parseSched(t, "24x24"))
	prog := run(parseSched(t, "12x12@0-0,24x24@1+"))
	unsched := run(nil)

	differs := func(a, b *Result) bool {
		for e := range a.History {
			if a.History[e].TrainLoss != b.History[e].TrainLoss {
				return true
			}
		}
		return false
	}
	if !differs(low, native) {
		t.Fatal("12x12 and 24x24 trajectories agree bitwise — resizing is not reaching the model")
	}
	if !differs(prog, low) || !differs(prog, native) {
		t.Fatal("progressive trajectory matches a constant baseline — the mid-training switch is not happening")
	}
	// A constant schedule at the native resolution is exactly no schedule.
	historiesBitIdentical(t, "native-constant vs nil-schedule", unsched, native)
}
